// E21: flight-recorder ablation. The recorder is always-on by design,
// so its cost on the sequenced ingest path must be provably negligible:
// the benchmark pair runs the E18 frame-ingest shape with the journal
// enabled (default sampling, 1 in 64 frames traced) and with the kill
// switch thrown, and EXPERIMENTS.md requires the delta to stay within
// 3%. A third benchmark isolates the raw journal append.
package clusterworx

import (
	"sync/atomic"
	"testing"

	"clusterworx/internal/core"
	"clusterworx/internal/flight"
	"clusterworx/internal/transmit"
)

// benchFlightIngest is the E18 single-node frame-ingest loop with trace
// sampling at the default 1-in-64 rate: frame 64k carries a trace id,
// the rest pay only the zero-branch.
func benchFlightIngest(b *testing.B, journalOn bool) {
	prev := flight.Default().SetEnabled(journalOn)
	defer flight.Default().SetEnabled(prev)
	srv := core.NewServer(core.ServerConfig{Cluster: "bench"})
	deltas := ingestDeltaSets()
	full := ingestFullSet()
	const node = "fnode0001"
	if err := srv.HandleFrame(transmit.Frame{Node: node, Seq: 1, Kind: transmit.FrameSnapshot, Values: full}); err != nil {
		b.Fatal(err)
	}
	salt := flight.Salt(node)
	var seq uint64 = 1
	i := 0
	b.ReportAllocs()
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		seq++
		f := transmit.Frame{Node: node, Seq: seq, Kind: transmit.FrameDelta, Values: deltas[i%len(deltas)]}
		if id := flight.NextTrace(salt, seq); id != 0 {
			f.TraceID = id
		}
		if err := srv.HandleFrame(f); err != nil {
			b.Fatal(err)
		}
		i++
	}
}

func BenchmarkE21FlightIngestOn(b *testing.B)  { benchFlightIngest(b, true) }
func BenchmarkE21FlightIngestOff(b *testing.B) { benchFlightIngest(b, false) }

// BenchmarkE21JournalAppend isolates the recorder's unit cost: one
// CAS-claimed slot write, contended across GOMAXPROCS appenders on
// distinct stripes (the ingest path stripes by node shard).
func BenchmarkE21JournalAppend(b *testing.B) {
	j := flight.NewJournal()
	node := j.Sym("fnode0001")
	var stripe atomic.Int64
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		s := int(stripe.Add(1))
		e := flight.Entry{Kind: flight.KindStage, Stage: 3, Node: node, Trace: 0xfeed, TimeNs: 1, A: 2, B: 3}
		for pb.Next() {
			j.Append(s, e)
		}
	})
}
