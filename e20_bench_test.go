// E20 benchmarks: the serving plane's generation-gated query cache
// against the uncached ablation that rebuilds every rendering from the
// live registry. Three claims are measured — single-verb read latency
// (a hit must be ≥5× cheaper than a rebuild and allocation-free), the
// same for a history-windowed aggregate (compare), and a mixed workload
// (64 writers ingesting while ~1k readers poll) where the cache bounds
// read-side recomputation by generation changes instead of request
// count.
package clusterworx

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"clusterworx/internal/consolidate"
	"clusterworx/internal/core"
)

const (
	e20Nodes   = 64
	e20Samples = 64 // history points per node before measuring
)

func e20NodeName(i int) string { return fmt.Sprintf("snode%04d", i) }

// e20Server boots a registry on a frozen clock (so liveness deadlines
// never pass mid-measurement) with e20Nodes nodes carrying the standard
// monitor metrics plus a history window worth of samples.
func e20Server() *core.Server {
	var nowNs atomic.Int64
	srv := core.NewServer(core.ServerConfig{
		Cluster: "e20",
		Now:     func() time.Duration { return time.Duration(nowNs.Load()) },
	})
	for s := 0; s < e20Samples; s++ {
		nowNs.Add(int64(time.Second))
		for i := 0; i < e20Nodes; i++ {
			srv.HandleValues(e20NodeName(i), []consolidate.Value{
				consolidate.NumValue("load.1", consolidate.Dynamic, float64((s+i)%8)),
				consolidate.NumValue("cpu.idle.pct", consolidate.Dynamic, float64((s*7+i)%100)),
				consolidate.NumValue("mem.used.pct", consolidate.Dynamic, float64((s*3+i)%90)),
				consolidate.NumValue("hw.temp.cpu", consolidate.Dynamic, 40+float64(i%20)),
			})
		}
	}
	return srv
}

func benchE20Verb(b *testing.B, verb string, handle func(*core.Server, string) string) {
	srv := e20Server()
	if resp := handle(srv, verb); len(resp) < 2 || resp[:2] != "OK" {
		b.Fatalf("%s failed: %.80s", verb, resp)
	}
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			handle(srv, verb)
		}
	})
}

func BenchmarkE20StatusHit(b *testing.B) {
	benchE20Verb(b, "status", (*core.Server).HandleCtl)
}

func BenchmarkE20StatusUncached(b *testing.B) {
	benchE20Verb(b, "status", (*core.Server).HandleCtlUncached)
}

func BenchmarkE20CompareHit(b *testing.B) {
	benchE20Verb(b, "compare load.1", (*core.Server).HandleCtl)
}

func BenchmarkE20CompareUncached(b *testing.B) {
	benchE20Verb(b, "compare load.1", (*core.Server).HandleCtlUncached)
}

// benchE20Mixed is the serving plane's target shape: 64 writer
// goroutines ingest change sets continuously while ~1k reader
// goroutines poll the monitoring verbs. The writers are deliberately
// unpaced — the generation moves faster than any rebuild completes, so
// a strict "entry generation == current generation" cache would miss on
// every read and serialize all readers behind the coalescing mutex.
// What keeps this regime sane is the Gate's freshness-relative-to-
// request contract: a waiter accepts any entry built at a generation ≥
// the one it observed on entry, so one rebuild satisfies the whole
// queue and the build rate is bounded by the ingest rate, not the
// request rate. Uncached, every reader rebuilds every answer.
func benchE20Mixed(b *testing.B, handle func(*core.Server, string) string) {
	srv := e20Server()
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < e20Nodes; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			node := e20NodeName(id)
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				srv.HandleValues(node, []consolidate.Value{
					consolidate.NumValue("load.1", consolidate.Dynamic, float64(i%8)),
					consolidate.NumValue("cpu.idle.pct", consolidate.Dynamic, float64(i%100)),
				})
			}
		}(w)
	}
	verbs := [...]string{"status", "compare load.1", "values snode0004", "efficiency"}
	var rid atomic.Int64
	// ~1k concurrent readers regardless of core count.
	b.SetParallelism(1024/runtime.GOMAXPROCS(0) + 1)
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		id := int(rid.Add(1))
		for i := 0; pb.Next(); i++ {
			handle(srv, verbs[(id+i)%len(verbs)])
		}
	})
	b.StopTimer()
	close(stop)
	wg.Wait()
}

func BenchmarkE20MixedReadWriteCached(b *testing.B) {
	benchE20Mixed(b, (*core.Server).HandleCtl)
}

func BenchmarkE20MixedReadWriteUncached(b *testing.B) {
	benchE20Mixed(b, (*core.Server).HandleCtlUncached)
}
