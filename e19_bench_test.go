// E19 benchmarks: the compressed block-based history engine against a
// naive []Point ring ablation. Three claims are measured — append
// throughput (the head block must not cost more than the raw ring),
// bytes/sample on a monitor-shaped stream (the ≥8× compression claim),
// and aggregate-query latency (Stats/Compare answered from block
// summaries in O(blocks) instead of decoding every point).
package clusterworx

import (
	"fmt"
	"testing"
	"time"

	"clusterworx/internal/history"
)

// e19Points is the working-set size: 16 full blocks' worth of samples,
// a realistic per-metric retention window.
const e19Points = 1 << 13

// e19Fill appends a monitor-shaped stream: 1 s cadence with occasional
// jitter, quantized values that dwell and step — the shape §5.3.2
// change suppression leaves behind.
func e19Fill(appendFn func(time.Duration, float64), n int) {
	ts := time.Duration(0)
	for i := 0; i < n; i++ {
		ts += time.Second
		if i%97 == 0 {
			ts += time.Duration(i%7) * time.Millisecond
		}
		appendFn(ts, 40+float64((i/64)%32)*0.5)
	}
}

// e19Ring is the pre-E19 engine: a raw []Point ring, 16 B/sample, with
// O(points) scans. Kept here as the ablation baseline.
type e19Ring struct {
	buf   []history.Point
	start int
	size  int
}

func newE19Ring(capacity int) *e19Ring { return &e19Ring{buf: make([]history.Point, capacity)} }

func (r *e19Ring) append(t time.Duration, v float64) {
	if r.size < len(r.buf) {
		r.buf[(r.start+r.size)%len(r.buf)] = history.Point{T: t, V: v}
		r.size++
		return
	}
	r.buf[r.start] = history.Point{T: t, V: v}
	r.start = (r.start + 1) % len(r.buf)
}

func (r *e19Ring) stats(t0, t1 time.Duration) history.Stats {
	var st history.Stats
	for i := 0; i < r.size; i++ {
		p := r.buf[(r.start+i)%len(r.buf)]
		if p.T < t0 || p.T > t1 {
			continue
		}
		if st.N == 0 {
			st.Min, st.Max, st.First = p.V, p.V, p
		}
		if p.V < st.Min {
			st.Min = p.V
		}
		if p.V > st.Max {
			st.Max = p.V
		}
		st.Mean += p.V
		st.LastPoint = p
		st.N++
	}
	if st.N > 0 {
		st.Mean /= float64(st.N)
	}
	return st
}

// --- append throughput ------------------------------------------------------------

func BenchmarkE19HistoryAppend(b *testing.B) {
	s := history.NewSeries(e19Points)
	ts := time.Duration(0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ts += time.Second
		s.Append(ts, 40+float64((i/64)%32)*0.5)
	}
}

func BenchmarkE19HistoryAppendNaiveRing(b *testing.B) {
	r := newE19Ring(e19Points)
	ts := time.Duration(0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ts += time.Second
		r.append(ts, 40+float64((i/64)%32)*0.5)
	}
}

// --- memory footprint -------------------------------------------------------------

// BenchmarkE19HistoryBytesPerSample reports the engine's measured
// bytes/sample on the monitor stream next to the ring's flat 16.
func BenchmarkE19HistoryBytesPerSample(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := history.NewSeries(e19Points)
		e19Fill(s.Append, e19Points)
		b.ReportMetric(float64(s.Bytes())/float64(s.Len()), "B/sample")
		b.ReportMetric(16, "naive_B/sample")
	}
}

// --- aggregate queries ------------------------------------------------------------

func BenchmarkE19HistoryStatsFull(b *testing.B) {
	s := history.NewSeries(e19Points)
	e19Fill(s.Append, e19Points)
	span := time.Duration(e19Points+64) * time.Second
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if st := s.Stats(0, span); st.N != e19Points {
			b.Fatalf("Stats.N = %d", st.N)
		}
	}
}

func BenchmarkE19HistoryStatsFullNaiveRing(b *testing.B) {
	r := newE19Ring(e19Points)
	e19Fill(r.append, e19Points)
	span := time.Duration(e19Points+64) * time.Second
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if st := r.stats(0, span); st.N != e19Points {
			b.Fatalf("stats.N = %d", st.N)
		}
	}
}

// --- Compare across a cluster -----------------------------------------------------

const e19CompareNodes = 64

func e19Store(b *testing.B) *history.Store {
	b.Helper()
	st := history.NewStore(e19Points)
	names := make([]string, e19CompareNodes)
	for i := range names {
		names[i] = fmt.Sprintf("n%04d", i)
	}
	ts := time.Duration(0)
	for i := 0; i < e19Points; i++ {
		ts += time.Second
		v := 40 + float64((i/64)%32)*0.5
		for _, n := range names {
			st.Append(n, "load.1", ts, v)
		}
	}
	return st
}

// BenchmarkE19HistoryCompare measures the §5.1 compare-nodes view over
// a 64-node cluster: per-node Stats from block summaries, aggregated
// outside the stripe lock.
func BenchmarkE19HistoryCompare(b *testing.B) {
	st := e19Store(b)
	span := time.Duration(e19Points+64) * time.Second
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if m := st.Compare("load.1", 0, span); len(m) != e19CompareNodes {
			b.Fatalf("Compare returned %d nodes", len(m))
		}
	}
}

func BenchmarkE19HistoryCompareNaiveRing(b *testing.B) {
	rings := make([]*e19Ring, e19CompareNodes)
	for i := range rings {
		rings[i] = newE19Ring(e19Points)
		e19Fill(rings[i].append, e19Points)
	}
	span := time.Duration(e19Points+64) * time.Second
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, r := range rings {
			if st := r.stats(0, span); st.N != e19Points {
				b.Fatalf("stats.N = %d", st.N)
			}
		}
	}
}
