// Rolling update: the §4 improvement in practice. A 30-node production
// cluster under SLURM load gets a kernel security update. Instead of a
// full reclone, the incremental cloner ships only the changed kernel
// segment — and instead of taking the whole cluster down, the update rolls
// through it in thirds, draining each batch from the scheduler first, so
// the cluster keeps computing throughout.
package main

import (
	"fmt"
	"log"
	"time"

	"clusterworx/internal/cloning"
	"clusterworx/internal/core"
	"clusterworx/internal/image"
	"clusterworx/internal/node"
	"clusterworx/internal/slurm"
)

func main() {
	const nodes = 30
	sim, err := core.NewSim(core.SimConfig{Nodes: nodes, Cluster: "prod"})
	if err != nil {
		log.Fatal(err)
	}
	defer sim.Stop()
	sim.PowerOnAll()
	sim.Advance(time.Minute)
	bridge := sim.AttachSlurm()

	// Keep a stream of short jobs flowing during the whole update.
	submitted, completed := 0, 0
	bridge.Cluster.OnComplete(func(j slurm.Job) {
		if j.State == slurm.Completed {
			completed++
		}
	})
	feedJobs := func(k int) {
		for i := 0; i < k; i++ {
			if _, err := bridge.Cluster.Submit(slurm.Spec{
				Name: fmt.Sprintf("work%d", submitted), Nodes: 2,
				Duration: 3 * time.Minute, Exclusive: true, Requeue: true,
			}); err == nil {
				submitted++
			}
		}
	}
	feedJobs(12)
	sim.Advance(2 * time.Minute)

	// The two image versions: v2.2 upgrades the kernel package only.
	build := func(version, kernel string) *image.Image {
		return image.NewBuilder("prod-os", version, image.BootDisk, 384<<20).
			AddPackage(kernel, 24<<20).
			AddPackage("glibc-2.2.5", 80<<20).
			AddPackage("mpich-1.2.4", 48<<20).
			Build()
	}
	v21 := build("2.1", "kernel-2.4.18")
	v22 := build("2.2", "kernel-2.4.18-sec1") // the security fix
	delta := v22.Diff(v21)
	fmt.Printf("image v2.2: %d MB total, delta vs v2.1 = %d chunks (%d MB)\n\n",
		v22.Size>>20, len(delta), int64(len(delta))*int64(v22.ChunkSize)>>20)

	// Roll through the cluster in three batches of ten.
	for batch := 0; batch < 3; batch++ {
		var targets []string
		for i := batch * 10; i < (batch+1)*10; i++ {
			targets = append(targets, fmt.Sprintf("node%03d", i))
		}
		fmt.Printf("batch %d: draining %s..%s\n", batch+1, targets[0], targets[len(targets)-1])
		// Sim.Update powers the targets off (into the clone environment);
		// the slurm bridge sees them leave and requeues their jobs onto
		// the rest of the cluster.
		res, err := sim.Update(v21, v22, targets, 0.01, cloning.Params{})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("batch %d: %d nodes updated in %s (%d MB multicast, %d repair chunks)\n",
			batch+1, len(res.NodeUp), res.AllUp.Round(time.Second),
			res.MulticastBytes>>20, res.RepairChunks)
		sim.Advance(time.Minute)
		feedJobs(4)
	}

	// Let the queue drain.
	for i := 0; i < 40 && completed < submitted; i++ {
		sim.Advance(time.Minute)
	}

	up := 0
	for _, n := range sim.Nodes {
		if n.State() == node.Up {
			up++
		}
	}
	fmt.Printf("\nresult: %d/%d nodes up on %s; jobs completed %d/%d through the rolling update\n",
		up, nodes, v22.ID(), completed, submitted)
	for i := 0; i < nodes; i++ {
		name := fmt.Sprintf("node%03d", i)
		if sim.NodeImage(name) != v22.ID() {
			log.Fatalf("%s still on %q", name, sim.NodeImage(name))
		}
	}
	if completed != submitted {
		log.Fatalf("jobs lost: %d/%d", completed, submitted)
	}
	fmt.Println("every node updated; no job lost (requeue carried drained work)")
}
