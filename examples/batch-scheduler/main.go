// Batch scheduler: the §6 SLURM substrate. Submit a mixed workload of
// exclusive MPI jobs and shared serial jobs to a 32-node cluster, plug in
// an external (Maui-style) backfill scheduler through the API, and kill
// the primary controller mid-run to demonstrate tolerance of control
// failure.
package main

import (
	"fmt"
	"log"
	"time"

	"clusterworx/internal/clock"
	"clusterworx/internal/slurm"
)

func main() {
	clk := clock.New()
	names := make([]string, 32)
	for i := range names {
		names[i] = fmt.Sprintf("node%03d", i)
	}
	c := slurm.New(clk, names)

	done := 0
	c.OnComplete(func(j slurm.Job) {
		fmt.Printf("t=%-8s job %-3d %-10s %-9s on %d node(s)\n",
			clk.Now().Round(time.Second), j.ID, j.Spec.Name, j.State, len(j.Allocated))
		done++
	})

	fmt.Println("== submitting 14 jobs (FIFO arbitration) ==")
	specs := []slurm.Spec{
		{Name: "mpi-weather", User: "alice", Nodes: 16, Duration: 8 * time.Minute, Exclusive: true},
		{Name: "mpi-qcd", User: "bob", Nodes: 16, Duration: 6 * time.Minute, Exclusive: true},
		{Name: "serial-post", User: "alice", Nodes: 1, Duration: 2 * time.Minute},
		{Name: "serial-post2", User: "alice", Nodes: 1, Duration: 2 * time.Minute},
		{Name: "mpi-big", User: "carol", Nodes: 32, Duration: 5 * time.Minute, Exclusive: true, Requeue: true},
	}
	for i := 0; i < 9; i++ {
		specs = append(specs, slurm.Spec{
			Name: fmt.Sprintf("sweep-%d", i), User: "dave",
			Nodes: 2 + i%4, Duration: time.Duration(2+i%3) * time.Minute, Exclusive: true,
		})
	}
	for _, s := range specs {
		id, err := c.Submit(s)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  job %-3d %-12s wants %2d nodes for %s\n", id, s.Name, s.Nodes, s.Duration)
	}
	fmt.Printf("queue depth after submit: %d\n\n", len(c.Queue()))

	clk.Advance(4 * time.Minute)

	fmt.Println("\n== switching to the external backfill scheduler (Maui-style API) ==")
	c.SetScheduler(slurm.Backfill{})
	clk.Advance(2 * time.Minute)

	fmt.Println("\n== killing the primary controller mid-run ==")
	c.KillController(0)
	fmt.Printf("active controller: %q (control gap)\n", c.Active())
	if _, err := c.Submit(slurm.Spec{Name: "rejected", Nodes: 1, Duration: time.Minute}); err != nil {
		fmt.Printf("submit during gap: %v\n", err)
	}
	clk.Advance(slurm.DefaultHeartbeat)
	fmt.Printf("after heartbeat timeout: %q took over (failovers=%d)\n\n", c.Active(), c.Failovers())

	fmt.Println("== draining the queue through the backup controller ==")
	clk.RunUntilIdle()

	fmt.Printf("\njobs completed: %d/%d\n", done, len(specs))
	for _, n := range c.Nodes() {
		if !n.Idle() {
			log.Fatalf("node %s not idle at the end: %+v", n.Name, n)
		}
	}
	fmt.Println("all nodes idle; queue empty; controller fail-over transparent to running jobs")
}
