// Quickstart: bring up a 16-node simulated cluster under ClusterWorX,
// watch the monitoring screen populate, pull one node's history, and use
// the ICE Box path to power-cycle a node — the five-minute tour of the
// public API.
package main

import (
	"fmt"
	"log"
	"time"

	"clusterworx/internal/core"
	"clusterworx/internal/node"
)

func main() {
	// One call builds nodes, ICE boxes, agents and the management server
	// on a shared virtual clock.
	sim, err := core.NewSim(core.SimConfig{Nodes: 16, Cluster: "quickstart"})
	if err != nil {
		log.Fatal(err)
	}
	defer sim.Stop()

	fmt.Println("== sequenced power-up via the ICE boxes ==")
	sim.PowerOnAll()
	sim.Advance(30 * time.Second)

	// Put some work on the cluster so the numbers move.
	for i, n := range sim.Nodes {
		n.SetLoad(0.25 * float64(i%5))
	}
	sim.Advance(5 * time.Minute)

	fmt.Println(sim.Server.HandleCtl("status"))

	fmt.Println("\n== monitor values on node007 (first 12) ==")
	vals := sim.Server.NodeValues("node007")
	for _, v := range vals[:12] {
		fmt.Printf("  %-26s %s\n", v.Name, v.Render())
	}
	fmt.Printf("  ... %d values total\n", len(vals))

	fmt.Println("\n== load.1 history on node004 ==")
	series := sim.Server.History().Series("node004", "load.1")
	for _, p := range series.Downsample(0, sim.Clk.Now(), 6) {
		fmt.Printf("  t=%-8s load=%.2f\n", p.T.Round(time.Second), p.V)
	}

	fmt.Println("\n== remote power-cycle of node002 ==")
	if err := sim.Server.PowerCycle("node002"); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  just after cycle: %v\n", sim.Node("node002").State())
	sim.Advance(15 * time.Second)
	fmt.Printf("  15s later:        %v\n", sim.Node("node002").State())
	if sim.Node("node002").State() != node.Up {
		log.Fatal("node002 did not come back")
	}

	fmt.Println("\n== post-mortem console tail of node002 (last 3 lines) ==")
	dump, err := sim.Server.Console("node002")
	if err != nil {
		log.Fatal(err)
	}
	lines := splitTail(string(dump), 3)
	for _, l := range lines {
		fmt.Println("  |", l)
	}
}

func splitTail(s string, n int) []string {
	var lines []string
	for _, l := range splitLines(s) {
		if l != "" {
			lines = append(lines, l)
		}
	}
	if len(lines) > n {
		lines = lines[len(lines)-n:]
	}
	return lines
}

func splitLines(s string) []string {
	var out []string
	start := 0
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			out = append(out, s[start:i])
			start = i + 1
		}
	}
	if start < len(s) {
		out = append(out, s[start:])
	}
	return out
}
