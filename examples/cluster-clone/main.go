// Cluster clone: the paper's §4 image-distribution story. An administrator
// builds a new system image with the Image Manager, then clones it to a
// large cluster over a single Fast Ethernet using reliable multicast —
// "even a single fast ethernet is sufficient to clone several hundred
// nodes simultaneously" — and compares against the unicast baseline.
package main

import (
	"fmt"
	"log"

	"clusterworx/internal/cloning"
	"clusterworx/internal/image"
)

func main() {
	// Build an image the way the GUI does: base OS, then packages.
	img := image.NewBuilder("compute", "2.2", image.BootDisk, 256<<20).
		AddPackage("kernel-2.4.18", 24<<20).
		AddPackage("glibc-2.2.5", 80<<20).
		AddPackage("mpich-1.2.4", 48<<20).
		AddPackage("cwx-agent-2.1", 8<<20).
		Build()
	fmt.Printf("image %s: %d MB in %d chunks of %d KiB, packages %v\n\n",
		img.ID(), img.Size>>20, img.NumChunks(), img.ChunkSize>>10, img.Packages())

	store := image.NewStore()
	if err := store.Put(img); err != nil {
		log.Fatal(err)
	}
	for _, kind := range []string{"harddisk", "nfsboot"} {
		pre, err := image.Prebuilt(kind)
		if err != nil {
			log.Fatal(err)
		}
		if err := store.Put(pre); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("image library: %v\n\n", store.List())

	const loss = 0.01 // 1% packet loss on the multicast path
	fmt.Println("nodes  multicast(total/burst/repair-chunks)      unicast(total)   speedup")
	for _, n := range []int{10, 50, 100, 200, 400} {
		mc := cloning.RunMulticast(img, n, loss, 7, cloning.Params{})
		if len(mc.NodeUp) != n {
			log.Fatalf("multicast clone of %d nodes did not converge", n)
		}
		line := fmt.Sprintf("%5d  %9s / %8s / %6d chunks", n,
			mc.AllUp.Round(0), mc.BurstDone.Round(0), mc.RepairChunks)
		if n <= 50 {
			uc := cloning.RunUnicast(img, n, loss, 7, cloning.Params{})
			line += fmt.Sprintf("  %14s  %6.1fx", uc.AllUp.Round(0),
				float64(uc.AllUp)/float64(mc.AllUp))
		} else {
			line += fmt.Sprintf("  %14s  %7s", "(skipped)", "-")
		}
		fmt.Println(line)
	}

	fmt.Println("\nper-node completion spread at 100 nodes, 5% loss:")
	r := cloning.RunMulticast(img, 100, 0.05, 11, cloning.Params{})
	ups := r.SortedUpTimes()
	fmt.Printf("  first node up:  %s\n", ups[0].Round(0))
	fmt.Printf("  median node up: %s\n", ups[len(ups)/2].Round(0))
	fmt.Printf("  last node up:   %s\n", ups[len(ups)-1].Round(0))
	fmt.Printf("  master sent %d MB total (%d MB multicast, %d MB repair)\n",
		r.TotalBytes()>>20, r.MulticastBytes>>20, r.RepairBytes>>20)
	fmt.Printf("  round-robin acknowledgement rounds: %d\n", r.Rounds)
}
