// Thermal runaway: the paper's motivating event-engine scenario (§5.2) —
// "powering down a node on CPU fan failure to prevent the CPU from
// burning". A compute node's fan dies under full load; the administrator's
// threshold rule powers the node down through its ICE Box before the
// silicon reaches the damage temperature, and exactly one notification
// goes out. A control run without the rule shows the counterfactual.
package main

import (
	"fmt"
	"log"
	"time"

	"clusterworx/internal/core"
	"clusterworx/internal/events"
	"clusterworx/internal/node"
)

func main() {
	fmt.Println("=== arm 1: no event rule (what the paper is protecting against) ===")
	burn(false)
	fmt.Println()
	fmt.Println("=== arm 2: rule 'hw.temp.cpu > 85 -> power-off' armed ===")
	burn(true)
}

func burn(protected bool) {
	sim, err := core.NewSim(core.SimConfig{Nodes: 8, Cluster: "thermal"})
	if err != nil {
		log.Fatal(err)
	}
	defer sim.Stop()

	if protected {
		if err := sim.Server.Engine().AddRule(events.Rule{
			Name:      "fan-overtemp",
			Metric:    "hw.temp.cpu",
			Op:        events.GT,
			Threshold: 85,
			Action:    events.ActPowerOff,
			Notify:    true,
		}); err != nil {
			log.Fatal(err)
		}
	}

	sim.PowerOnAll()
	sim.Advance(30 * time.Second)

	victim := sim.Node("node003")
	victim.SetLoad(1) // full tilt: steady state ~70 °C with a working fan
	sim.Advance(5 * time.Minute)
	fmt.Printf("t=%-6s node003 %-8s temp=%.1f°C (fan ok, full load)\n",
		sim.Clk.Now().Round(time.Second), victim.State(), victim.Temperature())

	victim.FailFan()
	fmt.Println("        *** CPU fan fails ***")

	for i := 0; i < 8; i++ {
		sim.Advance(30 * time.Second)
		fmt.Printf("t=%-6s node003 %-8s temp=%.1f°C damaged=%v\n",
			sim.Clk.Now().Round(time.Second), victim.State(), victim.Temperature(), victim.Damaged())
		if victim.State() == node.PowerOff {
			break
		}
	}
	sim.Advance(10 * time.Minute)

	fmt.Printf("outcome: state=%v damaged=%v peak-rule-log=%d notifications=%d\n",
		victim.State(), victim.Damaged(), len(sim.Server.Engine().Log()), sim.Mailer.Count())
	for _, m := range sim.Mailer.Messages() {
		fmt.Printf("--- notification ---\n%s\n%s", m.Subject, indent(m.Body))
	}
	if protected {
		if victim.Damaged() {
			log.Fatal("BUG: protected node burned")
		}
		// The admin replaces the fan and brings the node back — the event
		// re-arms automatically for next time.
		victim.RepairFan()
		if err := sim.Server.PowerOn("node003"); err != nil {
			log.Fatal(err)
		}
		sim.Advance(time.Minute)
		fmt.Printf("after fan replacement and power-on: %v\n", victim.State())
	}
}

func indent(s string) string {
	out := ""
	for _, line := range splitLines(s) {
		out += "    " + line + "\n"
	}
	return out
}

func splitLines(s string) []string {
	var out []string
	start := 0
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			out = append(out, s[start:i])
			start = i + 1
		}
	}
	if start < len(s) {
		out = append(out, s[start:])
	}
	return out
}
