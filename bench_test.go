// Benchmark harness: one benchmark (or benchmark family) per experiment in
// DESIGN.md's E1–E14 index. Micro-costs (E1–E6) are measured per
// operation; cluster-scale scenarios (E7–E14) run a full simulation per
// iteration and report virtual-time results via b.ReportMetric, since the
// interesting quantity is simulated cluster time, not wall time.
//
// Regenerate everything with:
//
//	go test -bench=. -benchmem
//
// The human-readable tables (the paper-vs-measured comparison) come from
// `go run ./cmd/cwxsim -experiment all`.
package clusterworx

import (
	"bytes"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"clusterworx/internal/clock"
	"clusterworx/internal/cloning"
	"clusterworx/internal/consolidate"
	"clusterworx/internal/core"
	"clusterworx/internal/events"
	"clusterworx/internal/experiments"
	"clusterworx/internal/firmware"
	"clusterworx/internal/gather"
	"clusterworx/internal/image"
	"clusterworx/internal/monitor"
	"clusterworx/internal/node"
	"clusterworx/internal/notify"
	"clusterworx/internal/procfs"
	"clusterworx/internal/slurm"
	"clusterworx/internal/transmit"
)

// evolvingFS is the standard benchmark /proc: content changes every read,
// as on a live node.
func evolvingFS() *procfs.FS {
	fs := procfs.NewFS()
	syn := procfs.NewSynthetic(1)
	procfs.RegisterStd(fs, syn.Stat)
	return fs
}

// --- E1: the §5.3.1 gathering ladder -------------------------------------------

func BenchmarkE1GatherMeminfoNaive(b *testing.B) {
	fs := evolvingFS()
	g := gather.NewNaiveMeminfo(fs)
	var m gather.MemStats
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := g.Gather(&m); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE1GatherMeminfoBuffered(b *testing.B) {
	fs := evolvingFS()
	g := gather.NewBufferedMeminfo(fs)
	var m gather.MemStats
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := g.Gather(&m); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE1GatherMeminfoApriori(b *testing.B) {
	fs := evolvingFS()
	g := gather.NewAprioriMeminfo(fs)
	var m gather.MemStats
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := g.Gather(&m); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE1GatherMeminfoKeepOpen(b *testing.B) {
	fs := evolvingFS()
	g, err := gather.NewKeepOpenMeminfo(fs)
	if err != nil {
		b.Fatal(err)
	}
	defer g.Close()
	var m gather.MemStats
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := g.Gather(&m); err != nil {
			b.Fatal(err)
		}
	}
}

// --- E2: per-file costs with the final strategy --------------------------------

func BenchmarkE2GatherStat(b *testing.B) {
	fs := evolvingFS()
	g, err := gather.NewStatGatherer(fs)
	if err != nil {
		b.Fatal(err)
	}
	defer g.Close()
	var s gather.CPUStats
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := g.Gather(&s); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE2GatherLoadavg(b *testing.B) {
	fs := evolvingFS()
	g, err := gather.NewLoadavgGatherer(fs)
	if err != nil {
		b.Fatal(err)
	}
	defer g.Close()
	var l gather.LoadStats
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := g.Gather(&l); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE2GatherUptime(b *testing.B) {
	fs := evolvingFS()
	g, err := gather.NewUptimeGatherer(fs)
	if err != nil {
		b.Fatal(err)
	}
	defer g.Close()
	var u gather.UptimeStats
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := g.Gather(&u); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE2GatherNetDev(b *testing.B) {
	fs := evolvingFS()
	g, err := gather.NewNetDevGatherer(fs)
	if err != nil {
		b.Fatal(err)
	}
	defer g.Close()
	var n gather.NetDevStats
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := g.Gather(&n); err != nil {
			b.Fatal(err)
		}
	}
}

// --- E3: parser-only comparison ---------------------------------------------------

func e3Text(b *testing.B, path string) []byte {
	b.Helper()
	fs := procfs.NewFS()
	procfs.RegisterStd(fs, procfs.Frozen())
	data, err := fs.ReadFile(path)
	if err != nil {
		b.Fatal(err)
	}
	return data
}

func BenchmarkE3ParseMeminfoApriori(b *testing.B) {
	text := e3Text(b, "/proc/meminfo")
	var m gather.MemStats
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := gather.ParseMeminfoApriori(text, &m); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE3ParseMeminfoGeneric(b *testing.B) {
	text := e3Text(b, "/proc/meminfo")
	var m gather.MemStats
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := gather.ParseMeminfoGeneric(text, &m); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE3ParseStatApriori(b *testing.B) {
	text := e3Text(b, "/proc/stat")
	var s gather.CPUStats
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := gather.ParseStatApriori(text, &s); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE3ParseStatGeneric(b *testing.B) {
	text := e3Text(b, "/proc/stat")
	var s gather.CPUStats
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := gather.ParseStatGeneric(text, &s); err != nil {
			b.Fatal(err)
		}
	}
}

// --- E4: CPU budget at 50 samples/s ------------------------------------------------

func BenchmarkE4OverheadBudget(b *testing.B) {
	fs := evolvingFS()
	g, err := gather.NewKeepOpenMeminfo(fs)
	if err != nil {
		b.Fatal(err)
	}
	defer g.Close()
	var m gather.MemStats
	start := time.Now()
	for i := 0; i < b.N; i++ {
		if err := g.Gather(&m); err != nil {
			b.Fatal(err)
		}
	}
	perCall := time.Since(start) / time.Duration(b.N)
	// Paper arithmetic: per-call cost x 50 samples/s x 3600 s.
	b.ReportMetric(perCall.Seconds()*50*3600, "cpu_s/hour@50Hz")
}

// --- E5: consolidation change suppression -------------------------------------------

func BenchmarkE5Consolidation(b *testing.B) {
	clk := clock.New()
	n := node.New(clk, node.Config{Name: "bench"})
	n.PowerOn()
	clk.Advance(10 * time.Second)
	set, err := monitor.NewSet(monitor.Config{
		FS: n.FS(), Hostname: n.Name(), Now: clk.Now, Probes: n, Echo: n.Reachable,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer set.Close()
	cons := consolidate.New()
	if err := set.Install(cons); err != nil {
		b.Fatal(err)
	}
	var full, delta int64
	var buf []byte
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		clk.Advance(time.Second)
		cons.Tick()
		buf = transmit.MarshalValues(buf[:0], cons.Snapshot())
		full += int64(len(buf))
		buf = transmit.MarshalValues(buf[:0], cons.Delta())
		delta += int64(len(buf))
	}
	if full > 0 {
		b.ReportMetric(100*(1-float64(delta)/float64(full)), "data_reduction_%")
	}
}

// --- E6: wire compression -------------------------------------------------------------

// BenchmarkE6Compression measures the full wire path per update: frame +
// deflate on the agent side, decode + inflate on the server side. With the
// pooled compressors/decompressors and reusable scratch buffers the
// steady-state path is allocation-free.
func BenchmarkE6Compression(b *testing.B) {
	fs := evolvingFS()
	var sample []byte
	for _, f := range []string{"/proc/meminfo", "/proc/stat", "/proc/net/dev"} {
		data, err := fs.ReadFile(f)
		if err != nil {
			b.Fatal(err)
		}
		sample = append(sample, data...)
	}
	var buf []byte
	var wire bytes.Buffer
	w := transmit.NewWriter(&wire, true)
	r := transmit.NewReader(&wire)
	b.SetBytes(int64(len(sample)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = append(buf[:0], sample...)
		if err := w.WriteFrame(buf); err != nil {
			b.Fatal(err)
		}
		out, err := r.ReadFrame()
		if err != nil {
			b.Fatal(err)
		}
		if len(out) != len(sample) {
			b.Fatalf("roundtrip returned %d bytes, want %d", len(out), len(sample))
		}
	}
	b.StopTimer()
	if w.RawBytes() > 0 {
		b.ReportMetric(float64(w.RawBytes())/float64(w.WireBytes()), "compression_x")
	}
}

type discard struct{}

func (discard) Write(p []byte) (int, error) { return len(p), nil }

// --- E7: cloning scalability ------------------------------------------------------------

func benchClone(b *testing.B, nodes int, unicast bool) {
	img := image.New("bench-os", "1.0", image.BootDisk, 32<<20)
	var total time.Duration
	for i := 0; i < b.N; i++ {
		var r cloning.Result
		if unicast {
			r = cloning.RunUnicast(img, nodes, 0.01, int64(i), cloning.Params{})
		} else {
			r = cloning.RunMulticast(img, nodes, 0.01, int64(i), cloning.Params{})
		}
		if len(r.NodeUp) != nodes {
			b.Fatalf("only %d/%d nodes cloned", len(r.NodeUp), nodes)
		}
		total += r.AllUp
	}
	b.ReportMetric(total.Seconds()/float64(b.N), "vtime_s")
}

func BenchmarkE7CloneMulticast10(b *testing.B)  { benchClone(b, 10, false) }
func BenchmarkE7CloneMulticast50(b *testing.B)  { benchClone(b, 50, false) }
func BenchmarkE7CloneMulticast200(b *testing.B) { benchClone(b, 200, false) }
func BenchmarkE7CloneUnicast10(b *testing.B)    { benchClone(b, 10, true) }
func BenchmarkE7CloneUnicast50(b *testing.B)    { benchClone(b, 50, true) }

// --- E8: cloning under loss -----------------------------------------------------------

func benchCloneLoss(b *testing.B, loss float64) {
	img := image.New("bench-os", "1.0", image.BootDisk, 16<<20)
	var repair int64
	for i := 0; i < b.N; i++ {
		r := cloning.RunMulticast(img, 12, loss, int64(i), cloning.Params{})
		if len(r.NodeUp) != 12 {
			b.Fatal("clone under loss did not converge")
		}
		repair += r.RepairBytes
	}
	b.ReportMetric(float64(repair)/float64(b.N), "repair_bytes")
}

func BenchmarkE8CloneLoss1pct(b *testing.B)  { benchCloneLoss(b, 0.01) }
func BenchmarkE8CloneLoss10pct(b *testing.B) { benchCloneLoss(b, 0.10) }
func BenchmarkE8CloneLoss25pct(b *testing.B) { benchCloneLoss(b, 0.25) }

// --- E9: boot time -----------------------------------------------------------------------

func benchBoot(b *testing.B, fw firmware.Firmware) {
	var total time.Duration
	for i := 0; i < b.N; i++ {
		clk := clock.New()
		n := node.New(clk, node.Config{Name: "bench", Firmware: fw})
		n.PowerOn()
		clk.RunUntilIdle()
		if n.State() != node.Up {
			b.Fatalf("node state %v", n.State())
		}
		total += clk.Now() // boot completion is the last event
	}
	b.ReportMetric(total.Seconds()/float64(b.N), "boot_vtime_s")
}

func BenchmarkE9BootLinuxBIOS(b *testing.B)  { benchBoot(b, firmware.NewLinuxBIOS("1.0.1")) }
func BenchmarkE9BootLegacyBIOS(b *testing.B) { benchBoot(b, firmware.NewLegacyBIOS()) }

// --- E10: notification dedup ---------------------------------------------------------------

func BenchmarkE10Notification(b *testing.B) {
	mails := 0
	for i := 0; i < b.N; i++ {
		clk := clock.New()
		rec := &notify.Recording{}
		ntf := notify.New(clk, rec, notify.Config{Cluster: "bench"})
		eng := events.New(nil, ntf, clk.Now)
		eng.AddRule(events.Rule{Name: "hot", Metric: "t", Op: events.GT, Threshold: 85, Notify: true})
		for nd := 0; nd < 100; nd++ {
			eng.ObserveMap(fmt.Sprintf("n%03d", nd), map[string]float64{"t": 95})
		}
		mails += rec.Count()
	}
	b.ReportMetric(float64(mails)/float64(b.N), "mails_per_100node_storm")
}

// --- E11: thermal runaway rescue -------------------------------------------------------------

func BenchmarkE11ThermalRescue(b *testing.B) {
	saved := 0
	for i := 0; i < b.N; i++ {
		tab, err := experiments.E11ThermalRunaway()
		if err != nil {
			b.Fatal(err)
		}
		if tab.Rows[1][3] == "false" { // protected arm undamaged
			saved++
		}
	}
	b.ReportMetric(float64(saved)/float64(b.N), "rescue_rate")
}

// --- E12: power sequencing ---------------------------------------------------------------------

func BenchmarkE12PowerSequencing(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.E12PowerSequencing(); err != nil {
			b.Fatal(err)
		}
	}
}

// --- E13: console post-mortem --------------------------------------------------------------------

func BenchmarkE13Console(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.E13Console(); err != nil {
			b.Fatal(err)
		}
	}
}

// --- E14: SLURM ------------------------------------------------------------------------------------

func BenchmarkE14SlurmWorkload(b *testing.B) {
	for i := 0; i < b.N; i++ {
		clk := clock.New()
		names := make([]string, 32)
		for j := range names {
			names[j] = fmt.Sprintf("n%03d", j)
		}
		c := slurm.New(clk, names)
		for j := 0; j < 100; j++ {
			if _, err := c.Submit(slurm.Spec{
				Nodes: 1 + j%8, Duration: time.Duration(1+j%7) * time.Minute, Exclusive: j%2 == 0,
			}); err != nil {
				b.Fatal(err)
			}
		}
		clk.Advance(20 * time.Minute)
		c.KillController(0)
		clk.RunUntilIdle()
		for _, j := range c.Jobs() {
			if j.State != slurm.Completed {
				b.Fatalf("job %d = %v", j.ID, j.State)
			}
		}
	}
}

// --- E15: incremental update vs full reclone -----------------------------------------

func BenchmarkE15IncrementalUpdate(b *testing.B) {
	v1 := image.NewBuilder("prod", "2.0", image.BootDisk, 48<<20).
		AddPackage("kernel-2.4.18", 4<<20).Build()
	v2 := image.NewBuilder("prod", "2.1", image.BootDisk, 48<<20).
		AddPackage("kernel-2.4.19", 4<<20).Build()
	var vt time.Duration
	for i := 0; i < b.N; i++ {
		r := cloning.RunUpdate(v1, v2, 12, 0.01, int64(i), cloning.Params{})
		if len(r.NodeUp) != 12 {
			b.Fatal("update did not converge")
		}
		vt += r.AllUp
	}
	b.ReportMetric(vt.Seconds()/float64(b.N), "vtime_s")
}

func BenchmarkE15FullReclone(b *testing.B) {
	v2 := image.NewBuilder("prod", "2.1", image.BootDisk, 48<<20).
		AddPackage("kernel-2.4.19", 4<<20).Build()
	var vt time.Duration
	for i := 0; i < b.N; i++ {
		r := cloning.RunMulticast(v2, 12, 0.01, int64(i), cloning.Params{})
		if len(r.NodeUp) != 12 {
			b.Fatal("clone did not converge")
		}
		vt += r.AllUp
	}
	b.ReportMetric(vt.Seconds()/float64(b.N), "vtime_s")
}

// --- E15 (ingest): concurrent server ingest scaling --------------------------------
//
// The paper's §5.3 overhead claim is per-node; at the roadmap's scale the
// binding constraint moves to the management server, which must absorb
// thousands of concurrent agent transmissions. This family hammers
// Server.HandleValues from parallelism×GOMAXPROCS goroutines over a
// pre-seeded node population and reports updates/s. The matching
// global-lock ablation lives in ablation_bench_test.go.

const (
	ingestNodes      = 1024 // distinct reporting nodes
	ingestFullValues = 96   // standing value set per node (§5.3.2 full state)
	ingestDeltaSize  = 8    // values per update (§5.3.2 change set)
)

func ingestNodeNames() []string {
	names := make([]string, ingestNodes)
	for i := range names {
		names[i] = fmt.Sprintf("n%04d", i)
	}
	return names
}

// ingestFullSet is the one-time registration payload: the node's full
// monitored state, mostly numeric with a couple of static text values.
func ingestFullSet() []consolidate.Value {
	vals := make([]consolidate.Value, 0, ingestFullValues)
	for i := 0; i < ingestFullValues-2; i++ {
		vals = append(vals, consolidate.NumValue(fmt.Sprintf("metric.%02d", i), consolidate.Dynamic, float64(i)))
	}
	vals = append(vals,
		consolidate.TextValue("os.kernel", consolidate.Static, "2.4.18"),
		consolidate.TextValue("cpu.model", consolidate.Static, "Pentium III (Coppermine)"))
	return vals
}

// ingestDeltaSets are the steady-state change sets: a few variants so
// consecutive updates carry different numbers, each touching a small
// subset of the standing values — the shape consolidation produces.
func ingestDeltaSets() [][]consolidate.Value {
	out := make([][]consolidate.Value, 4)
	for v := range out {
		d := make([]consolidate.Value, ingestDeltaSize)
		for i := range d {
			d[i] = consolidate.NumValue(fmt.Sprintf("metric.%02d", (i*7)%(ingestFullValues-2)),
				consolidate.Dynamic, float64(v*100+i))
		}
		out[v] = d
	}
	return out
}

// runIngestBench seeds the node population through handle, then drives
// steady-state deltas from parallelism×GOMAXPROCS goroutines.
func runIngestBench(b *testing.B, parallelism int, handle func(string, []consolidate.Value)) {
	b.Helper()
	names := ingestNodeNames()
	full := ingestFullSet()
	for _, name := range names {
		handle(name, full)
	}
	deltas := ingestDeltaSets()
	var worker atomic.Int64
	b.SetParallelism(parallelism)
	b.ReportAllocs()
	b.ResetTimer()
	start := time.Now()
	b.RunParallel(func(pb *testing.PB) {
		id := int(worker.Add(1))
		i := 0
		for pb.Next() {
			handle(names[(id*127+i)%ingestNodes], deltas[i%len(deltas)])
			i++
		}
	})
	b.StopTimer()
	if el := time.Since(start).Seconds(); el > 0 {
		b.ReportMetric(float64(b.N)/el, "updates/s")
	}
}

func benchIngestParallel(b *testing.B, parallelism int) {
	srv := core.NewServer(core.ServerConfig{Cluster: "bench"})
	runIngestBench(b, parallelism, srv.HandleValues)
}

func BenchmarkE15IngestParallel1(b *testing.B)   { benchIngestParallel(b, 1) }
func BenchmarkE15IngestParallel8(b *testing.B)   { benchIngestParallel(b, 8) }
func BenchmarkE15IngestParallel64(b *testing.B)  { benchIngestParallel(b, 64) }
func BenchmarkE15IngestParallel512(b *testing.B) { benchIngestParallel(b, 512) }

// --- E18: sequenced-frame ingest (the loss-tolerant protocol's happy path) -----
//
// Same shape as E15, but through HandleFrame with in-order sequence
// numbers: the gap-detection bookkeeping must cost integer compares under
// the per-node lock already held, keeping the lossless path at zero
// allocations per update. Each worker owns a private node because an
// agent is single-threaded per node — that is what makes "in order"
// meaningful.
func benchIngestFramesParallel(b *testing.B, parallelism int) {
	srv := core.NewServer(core.ServerConfig{Cluster: "bench"})
	deltas := ingestDeltaSets()
	full := ingestFullSet()
	workers := parallelism * runtime.GOMAXPROCS(0)
	names := make([]string, workers+1)
	for w := 1; w <= workers; w++ {
		names[w] = fmt.Sprintf("fnode%04d", w)
		// Seed each node with a snapshot, off the timed path.
		err := srv.HandleFrame(transmit.Frame{Node: names[w], Seq: 1, Kind: transmit.FrameSnapshot, Values: full})
		if err != nil {
			b.Fatal(err)
		}
	}
	var worker atomic.Int64
	b.SetParallelism(parallelism)
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		id := int(worker.Add(1))
		name := names[id]
		seq := uint64(1)
		i := 0
		for pb.Next() {
			seq++
			f := transmit.Frame{Node: name, Seq: seq, Kind: transmit.FrameDelta, Values: deltas[i%len(deltas)]}
			if err := srv.HandleFrame(f); err != nil {
				b.Fatal(err)
			}
			i++
		}
	})
}

func BenchmarkE18IngestFrames1(b *testing.B)  { benchIngestFramesParallel(b, 1) }
func BenchmarkE18IngestFrames64(b *testing.B) { benchIngestFramesParallel(b, 64) }
