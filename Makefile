# Standard pre-merge gate. `make check` is what CI (and humans) run
# before merging: formatting, vet, a full build, the repo's invariant
# linter, and the test suite under the race detector.

GO ?= go

.PHONY: check fmt vet build lint lint-escape lockgraph test race bench bench-smoke fuzz-smoke faultinject

check: fmt vet build lint race

# The `|| { ...; exit 1; }` matters: without it a gofmt crash (e.g. a
# parse error) leaves $$out empty and the gate silently passes.
fmt:
	@out="$$(gofmt -l .)" || { echo "gofmt itself failed"; exit 1; }; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

# cwxlint: the dependency-free invariant analyzers — per-function
# (hotpath, clockdet, lockscope, atomicmix) and whole-program
# (lockorder, golife, staticalloc) — see internal/lint. Runs all seven:
# the staticalloc escape gate is on by default (-escapes). Accepted
# pre-existing findings live in .cwxlint-baseline; regenerate it with
# `go run ./cmd/cwxlint -update-baseline`. Exit codes: 0 clean,
# 1 findings, 2 analysis failed.
lint:
	$(GO) run ./cmd/cwxlint

# Escape-regression gate in isolation: staticalloc against a fresh
# -gcflags=-m build, with the six source analyzers still applied (they
# are cheap; the build dominates). CI runs this as its own step so an
# escape regression is named in the job list, not buried in `check`.
lint-escape:
	$(GO) run ./cmd/cwxlint -escapes

# Render the whole-program lock-acquisition graph (lock classes with
# their //cwx:lockrank levels, acquired-while-held edges, inversions in
# red). CI uploads the DOT as a build artifact on every run.
lockgraph:
	$(GO) run ./cmd/cwxlint -lockgraph cwx-lockorder.dot

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Regenerate the benchmark tables behind EXPERIMENTS.md.
bench:
	$(GO) test -bench=. -benchmem .

# Fast CI sanity pass over the hot-path benchmarks: proves the ingest
# path still runs with 0 allocs/update and the telemetry ablation pair
# still compiles and executes. Not a performance measurement (-benchtime
# 10x), just a smoke test.
bench-smoke:
	$(GO) test -run NONE -bench 'E15IngestParallel64$$|AblationTelemetry|E20StatusHit$$|E20MixedReadWriteCached$$|E21Flight|E21JournalAppend$$|E22Wire|E23FedPropagationSmall$$|E23FlatPropagationSmall$$|E23UplinkEncode' -benchtime 10x -benchmem .

# Short fuzz run over the wire-protocol parsers: each target gets ~10s,
# long enough to re-cover the grammar from the checked-in seeds without
# stalling CI. The saved corpus under internal/transmit/testdata/fuzz
# replays on every plain `go test` as regression inputs.
fuzz-smoke:
	$(GO) test ./internal/transmit/ -fuzz FuzzParseFrame -fuzztime 10s -run NONE
	$(GO) test ./internal/transmit/ -fuzz FuzzReadWireValues -fuzztime 10s -run NONE
	$(GO) test ./internal/transmit/ -fuzz FuzzDecodeFrameV2 -fuzztime 10s -run NONE
	$(GO) test ./internal/transmit/ -fuzz FuzzDecodeBatchV2 -fuzztime 10s -run NONE
	$(GO) test ./internal/history/ -fuzz FuzzBlockCodec -fuzztime 10s -run NONE

# Fault-injection suite for the loss-tolerant delta protocol: seeded
# loss/blackhole/partition schedules over simnet, under the race
# detector. Seeds are fixed in the tests, so failures reproduce exactly.
faultinject:
	$(GO) test -race -count=1 -v \
		-run 'TestLossToleranceConverges|TestLegacyProtocolDivergesUnderLoss|TestPartitionHealRetransmits|TestMixedVersionClusterConverges|TestHandleFrameConcurrent|TestFedLossKillRejoinConverges|TestBlackholeDropsEverything|TestScheduleAtDrivesFaults|TestLossDropsFraction' \
		./internal/core/ ./internal/simnet/
