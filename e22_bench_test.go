// E22: wire-protocol ablation. The same steady-state agent stream —
// snapshot once, then numeric delta frames on a 15 s cadence — is driven
// through the full roundtrip (marshal, frame onto the wire, read back,
// decode, sequenced ingest) in both wire formats: v1 text + deflate, and
// the negotiated v2 binary columnar form (dictionary names,
// delta-of-delta timestamps, Gorilla XOR values). EXPERIMENTS.md
// requires v2 to win on bytes/frame AND ns/frame with zero steady-state
// allocations; the "wireB/frame" metric is the on-wire cost including
// the 6-byte frame header.
package clusterworx

import (
	"bytes"
	"testing"

	"clusterworx/internal/consolidate"
	"clusterworx/internal/core"
	"clusterworx/internal/transmit"
)

// benchE22Frame builds the steady-state delta frame for iteration seq.
func benchE22Frame(deltas [][]consolidate.Value, seq uint64) transmit.Frame {
	return transmit.Frame{
		Node: "fnode0001", Seq: seq, Kind: transmit.FrameDelta,
		Values: deltas[int(seq)%len(deltas)],
		SentNs: int64(seq) * 15_000_000_000,
	}
}

// BenchmarkE22WireV1Deflate is the baseline: text marshal, deflate,
// frame, inflate, text parse, ingest.
func BenchmarkE22WireV1Deflate(b *testing.B) {
	srv := core.NewServer(core.ServerConfig{Cluster: "bench"})
	deltas := ingestDeltaSets()
	var wire bytes.Buffer
	w := transmit.NewWriter(&wire, true)
	r := transmit.NewReader(&wire)
	var buf []byte
	roundtrip := func(f transmit.Frame) {
		buf = transmit.MarshalFrame(buf[:0], f)
		if err := w.WriteFrame(buf); err != nil {
			b.Fatal(err)
		}
		payload, err := r.ReadFrame()
		if err != nil {
			b.Fatal(err)
		}
		pf, err := transmit.ParseFrame(payload)
		if err != nil {
			b.Fatal(err)
		}
		if err := srv.HandleFrame(pf); err != nil {
			b.Fatal(err)
		}
	}
	roundtrip(transmit.Frame{Node: "fnode0001", Seq: 1, Kind: transmit.FrameSnapshot, Values: ingestFullSet()})
	seq := uint64(1)
	b.ReportAllocs()
	b.ResetTimer()
	start := w.WireBytes()
	for n := 0; n < b.N; n++ {
		seq++
		roundtrip(benchE22Frame(deltas, seq))
	}
	b.StopTimer()
	b.ReportMetric(float64(w.WireBytes()-start)/float64(b.N), "wireB/frame")
}

// BenchmarkE22WireV2 is the negotiated binary path: dictionary +
// DoD/XOR encode, raw frame, binary decode, ingest.
func BenchmarkE22WireV2(b *testing.B) {
	srv := core.NewServer(core.ServerConfig{Cluster: "bench"})
	deltas := ingestDeltaSets()
	enc := transmit.NewEncoderV2()
	dec := transmit.NewDecoderV2()
	var wire bytes.Buffer
	w := transmit.NewWriter(&wire, false)
	r := transmit.NewReader(&wire)
	var buf []byte
	roundtrip := func(f transmit.Frame) {
		buf = enc.Encode(buf[:0], f)
		if err := w.WriteFrameRaw(buf); err != nil {
			b.Fatal(err)
		}
		payload, err := r.ReadFrame()
		if err != nil {
			b.Fatal(err)
		}
		df, err := dec.Decode(payload)
		if err != nil {
			b.Fatal(err)
		}
		if n, ok := dec.PendingAck(); ok {
			enc.Ack(n)
		}
		if err := srv.HandleFrame(df); err != nil {
			b.Fatal(err)
		}
	}
	roundtrip(transmit.Frame{Node: "fnode0001", Seq: 1, Kind: transmit.FrameSnapshot, Values: ingestFullSet()})
	seq := uint64(1)
	b.ReportAllocs()
	b.ResetTimer()
	start := w.WireBytes()
	for n := 0; n < b.N; n++ {
		seq++
		roundtrip(benchE22Frame(deltas, seq))
	}
	b.StopTimer()
	b.ReportMetric(float64(w.WireBytes()-start)/float64(b.N), "wireB/frame")
}
