module clusterworx

go 1.22
