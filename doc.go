// Package clusterworx is a from-scratch reproduction of "ClusterWorX®: A
// Framework to Manage Large Clusters Effectively" (Warschko, IPPS 2003):
// a complete Linux-cluster management stack — monitoring pipeline
// (gathering / consolidation / transmission), event engine with smart
// notification, ICE Box power/console management, LinuxBIOS vs legacy
// firmware boot, reliable-multicast disk cloning, and a SLURM-style
// resource manager — built on a deterministic discrete-event simulation of
// the cluster hardware.
//
// See DESIGN.md for the system inventory, EXPERIMENTS.md for paper-vs-
// measured results, and bench_test.go in this directory for the benchmark
// harness that regenerates every quantitative claim in the paper.
package clusterworx
