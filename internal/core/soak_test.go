package core

import (
	"math/rand"
	"testing"
	"time"

	"clusterworx/internal/events"
	"clusterworx/internal/node"
)

// Soak: a 40-node cluster runs for four simulated hours under random
// faults (kernel panics, fan failures, power losses, load swings) with the
// standard protective rule set. Invariants checked throughout:
//
//   - no node ever suffers thermal damage (the overtemp rule must win);
//   - the monitoring screen never shows a node alive that is not Up;
//   - notification volume stays proportional to incidents, not samples;
//   - the cluster is fully recoverable at the end.
func TestSoakRandomFaults(t *testing.T) {
	if testing.Short() {
		t.Skip("soak skipped with -short")
	}
	rng := rand.New(rand.NewSource(2003))
	sim, err := NewSim(SimConfig{Nodes: 40, Cluster: "soak", Seed: 2003})
	if err != nil {
		t.Fatal(err)
	}
	defer sim.Stop()
	for _, r := range []events.Rule{
		{Name: "overtemp", Metric: "hw.temp.cpu", Op: events.GT, Threshold: 85,
			Action: events.ActPowerOff, Notify: true},
		{Name: "dead-node", Metric: "net.echo.ok", Op: events.LT, Threshold: 1,
			Sustain: 3, Action: events.ActPowerCycle, Notify: true},
	} {
		if err := sim.Server.Engine().AddRule(r); err != nil {
			t.Fatal(err)
		}
	}
	sim.PowerOnAll()
	sim.Advance(time.Minute)

	checkInvariants := func(step int) {
		t.Helper()
		for i, n := range sim.Nodes {
			if n.Damaged() {
				t.Fatalf("step %d: node %d thermally damaged at %.1f°C", step, i, n.Temperature())
			}
		}
		for _, st := range sim.Server.Status() {
			if st.Alive && sim.Node(st.Name).State() != node.Up {
				// Alive means data within DownAfter; a very recent death
				// is allowed, but only within the staleness window.
				if sim.Clk.Now()-st.LastSeen > DownAfter {
					t.Fatalf("step %d: %s alive on screen but %v", step, st.Name, sim.Node(st.Name).State())
				}
			}
		}
	}

	const steps = 240 // 4 simulated hours in 1-minute steps
	for step := 0; step < steps; step++ {
		victim := sim.Nodes[rng.Intn(len(sim.Nodes))]
		switch rng.Intn(10) {
		case 0:
			victim.Crash("soak panic")
		case 1:
			victim.FailFan()
		case 2:
			victim.RepairFan()
		case 3, 4, 5:
			victim.SetLoad(rng.Float64() * 2)
		default:
			// quiet minute
		}
		sim.Advance(time.Minute)
		if step%20 == 0 {
			checkInvariants(step)
		}
	}

	// Recovery sweep: repair fans, reset any breakers that mass
	// power-cycles tripped during the soak, then bring racks back with the
	// ICE Boxes' *sequenced* power-up — powering 25 outlets in the same
	// instant is exactly how the breakers tripped in the first place.
	for _, n := range sim.Nodes {
		n.RepairFan()
	}
	for _, b := range sim.Boxes {
		b.ResetBreaker(0)
		b.ResetBreaker(1)
		b.PowerOnAll()
	}
	sim.Advance(5 * time.Minute)

	up := 0
	for _, n := range sim.Nodes {
		if n.State() == node.Up {
			up++
		}
	}
	if up != len(sim.Nodes) {
		states := map[string]int{}
		for _, n := range sim.Nodes {
			states[n.State().String()]++
		}
		t.Fatalf("after recovery only %d/%d up: %v", up, len(sim.Nodes), states)
	}

	// Sanity on volumes: every firing produced at most one mail-incident,
	// and the engine fired at least once over four faulty hours.
	firings := len(sim.Server.Engine().Log())
	mails := sim.Mailer.Count()
	if firings == 0 {
		t.Fatal("four hours of faults produced no events")
	}
	if mails > firings {
		t.Fatalf("mails (%d) exceed firings (%d); dedup broken", mails, firings)
	}
	t.Logf("soak: %d firings, %d mails, all %d nodes recovered", firings, mails, up)
}
