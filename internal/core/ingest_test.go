package core

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"clusterworx/internal/consolidate"
	"clusterworx/internal/events"
	"clusterworx/internal/telemetry"
)

// ingestUpdate builds a small agent-style change set.
func ingestUpdate(load float64) []consolidate.Value {
	return []consolidate.Value{
		consolidate.NumValue("load.1", consolidate.Dynamic, load),
		consolidate.NumValue("hw.temp.cpu", consolidate.Dynamic, 40+load),
		consolidate.NumValue("mem.used.pct", consolidate.Dynamic, 10*load),
		consolidate.TextValue("os.kernel", consolidate.Static, "2.4.18"),
	}
}

// TestIngestUnregisteredNode verifies HandleValues auto-registers nodes it
// has never seen: the update must land in the registry, history, and the
// event engine without RegisterNode having been called.
func TestIngestUnregisteredNode(t *testing.T) {
	srv := NewServer(ServerConfig{Cluster: "t"})
	if err := srv.Engine().AddRule(events.Rule{
		Name: "hot", Metric: "hw.temp.cpu", Op: events.GT, Threshold: 90,
	}); err != nil {
		t.Fatal(err)
	}

	srv.HandleValues("fresh-node", ingestUpdate(55)) // temp = 95 > 90

	if v, ok := srv.NodeValue("fresh-node", "load.1"); !ok || v.Num != 55 {
		t.Fatalf("NodeValue(fresh-node, load.1) = %v, %v", v, ok)
	}
	names := srv.NodeNames()
	if len(names) != 1 || names[0] != "fresh-node" {
		t.Fatalf("NodeNames = %v", names)
	}
	rows := srv.Status()
	if len(rows) != 1 || rows[0].Name != "fresh-node" || !rows[0].Alive {
		t.Fatalf("Status = %+v", rows)
	}
	if s := srv.History().Series("fresh-node", "load.1"); s == nil || s.Len() != 1 {
		t.Fatalf("history series missing for auto-registered node")
	}
	if !srv.Engine().Triggered("hot", "fresh-node") {
		t.Fatal("event rule did not fire for auto-registered node")
	}
}

// TestIngestSampleTracksTextTransition verifies the incrementally
// maintained event sample forgets a metric that switches from numeric to
// text (the rule must stop matching on the stale number).
func TestIngestSampleTracksTextTransition(t *testing.T) {
	srv := NewServer(ServerConfig{Cluster: "t"})
	if err := srv.Engine().AddRule(events.Rule{
		Name: "hi", Metric: "m", Op: events.GT, Threshold: 1,
	}); err != nil {
		t.Fatal(err)
	}
	srv.HandleValues("n0", []consolidate.Value{consolidate.NumValue("m", consolidate.Dynamic, 5)})
	if !srv.Engine().Triggered("hi", "n0") {
		t.Fatal("rule should trigger on numeric value")
	}
	// The metric turns textual; later updates must not keep re-evaluating
	// the stale numeric reading. The rule stays triggered (absence of a
	// metric is not a violation) but a clear must be possible via a fresh
	// numeric value.
	srv.HandleValues("n0", []consolidate.Value{consolidate.TextValue("m", consolidate.Dynamic, "n/a")})
	srv.HandleValues("n0", []consolidate.Value{consolidate.NumValue("m", consolidate.Dynamic, 0)})
	if srv.Engine().Triggered("hi", "n0") {
		t.Fatal("rule should have cleared after numeric value returned below threshold")
	}
}

// TestIngestPluginReadsServerState pins the locking contract for event
// plugins: a rule plugin fired from the ingest path may read server state
// — including the very node being ingested — without deadlocking. (Event
// evaluation runs on a private snapshot with no server lock held.)
func TestIngestPluginReadsServerState(t *testing.T) {
	srv := NewServer(ServerConfig{Cluster: "t"})
	var sawLoad float64
	var sawRows int
	if err := srv.Engine().AddRule(events.Rule{
		Name: "probe", Metric: "load.1", Op: events.GT, Threshold: 10,
		Action: events.ActPlugin,
		Plugin: func(node string) error {
			if v, ok := srv.NodeValue(node, "load.1"); ok {
				sawLoad = v.Num
			}
			sawRows = len(srv.Status())
			return nil
		},
	}); err != nil {
		t.Fatal(err)
	}

	done := make(chan struct{})
	go func() {
		srv.HandleValues("n0", ingestUpdate(42))
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("ingest deadlocked with a plugin reading server state")
	}
	if sawLoad != 42 {
		t.Fatalf("plugin read load.1 = %v, want 42", sawLoad)
	}
	if sawRows != 1 {
		t.Fatalf("plugin saw %d status rows, want 1", sawRows)
	}
}

// TestIngestPluginReingestsSameNode pins the stronger half of the plugin
// contract: a rule plugin may synchronously re-ingest values for the SAME
// node it fired on (a remediation plugin recording its own marker metric)
// without self-deadlocking, because event evaluation holds no server or
// record lock.
func TestIngestPluginReingestsSameNode(t *testing.T) {
	srv := NewServer(ServerConfig{Cluster: "t"})
	if err := srv.Engine().AddRule(events.Rule{
		Name: "mark", Metric: "load.1", Op: events.GT, Threshold: 10,
		Action: events.ActPlugin,
		Plugin: func(node string) error {
			srv.HandleValues(node, []consolidate.Value{
				consolidate.NumValue("heal.attempts", consolidate.Dynamic, 1),
			})
			return nil
		},
	}); err != nil {
		t.Fatal(err)
	}

	done := make(chan struct{})
	go func() {
		srv.HandleValues("n0", ingestUpdate(42))
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("plugin re-ingesting for its own node deadlocked")
	}
	if v, ok := srv.NodeValue("n0", "heal.attempts"); !ok || v.Num != 1 {
		t.Fatalf("NodeValue(n0, heal.attempts) = %v, %v; want 1", v, ok)
	}
}

// TestIngestConcurrentHammer drives HandleValues, Status, NodeValue,
// NodeValues, NodeNames, the history read side (Compare, Downsample —
// the dashboard's queries), telemetry scraping (WriteTelemetry, span
// snapshots, registry walks), and the meta-monitor's self-ingest from 32
// goroutines over 256 nodes. Run under -race this is the regression gate
// for the sharded ingest path: no global-lock serialization means every
// interleaving must still be clean, including history reads racing
// appends to the same series and telemetry scrapes racing the striped
// counters they sum.
func TestIngestConcurrentHammer(t *testing.T) {
	srv := NewServer(ServerConfig{Cluster: "t"})
	if err := srv.Engine().AddRule(events.Rule{
		Name: "hot", Metric: "hw.temp.cpu", Op: events.GT, Threshold: 1000, // never fires
	}); err != nil {
		t.Fatal(err)
	}
	meta := NewMetaMonitor(srv)

	const (
		workers = 32
		nodes   = 256
		iters   = 300
	)
	names := make([]string, nodes)
	for i := range names {
		names[i] = fmt.Sprintf("node%03d", i)
	}

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				name := names[(w*31+i)%nodes]
				switch i % 13 {
				case 0, 1, 2, 3, 4:
					srv.HandleValues(name, ingestUpdate(float64(w)))
				case 5:
					if _, ok := srv.NodeValue(name, "load.1"); ok {
						srv.NodeValues(name)
					}
				case 6:
					srv.Status()
				case 7:
					srv.NodeNames()
				case 8:
					srv.History().Compare("load.1", 0, 1<<62)
				case 9:
					if s := srv.History().Series(name, "load.1"); s != nil {
						s.Downsample(0, 1<<62, 8)
						s.Last()
					}
				case 10:
					var sb strings.Builder
					if err := srv.WriteTelemetry(&sb); err != nil {
						panic(err)
					}
				case 11:
					telemetry.Spans.Snapshot()
					telemetry.Default().Walk(func(string, float64) {})
				case 12:
					meta.Tick()
				}
			}
		}(w)
	}
	wg.Wait()

	// The meta-monitor registered itself as one extra node.
	rows := srv.Status()
	if len(rows) != nodes+1 {
		t.Fatalf("Status has %d rows, want %d", len(rows), nodes+1)
	}
	for _, row := range rows {
		if row.Values == 0 {
			t.Fatalf("node %s ingested no values", row.Name)
		}
	}
	if got := len(srv.NodeNames()); got != nodes+1 {
		t.Fatalf("NodeNames has %d entries, want %d", got, nodes+1)
	}
	if _, ok := srv.NodeValue(MetaNodeName, "cwx.ingest.updates.total"); !ok {
		t.Fatalf("meta node %s has no self-monitoring values", MetaNodeName)
	}
}

// TestIngestReadDuringSlowIngest verifies read-side APIs on one node are
// not blocked by ingest on another node (the per-node locking contract).
func TestIngestReadDuringSlowIngest(t *testing.T) {
	srv := NewServer(ServerConfig{Cluster: "t"})
	srv.HandleValues("a", ingestUpdate(1))
	srv.HandleValues("b", ingestUpdate(2))

	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 2000; i++ {
			srv.HandleValues("a", ingestUpdate(float64(i)))
		}
	}()
	deadline := time.Now().Add(10 * time.Second)
	for i := 0; i < 2000; i++ {
		if _, ok := srv.NodeValue("b", "load.1"); !ok {
			t.Fatal("node b lost its value during ingest on node a")
		}
		if time.Now().After(deadline) {
			t.Fatal("read side starved by ingest")
		}
	}
	<-done
}
