package core

import (
	"testing"
	"time"

	"clusterworx/internal/events"
	"clusterworx/internal/node"
)

// The paper's scaling claim: "the cluster management solution ClusterWorX
// scales to meet the needs of any size system" and the introduction's
// thousand-node framing ("imagine walking around ... every one of the 1000
// nodes"). One server monitors a 1000-node cluster, detects the one
// overheating node among them, and acts on exactly that node.
func TestScaleThousandNodes(t *testing.T) {
	if testing.Short() {
		t.Skip("1000-node simulation skipped with -short")
	}
	const nodes = 1000
	sim, err := NewSim(SimConfig{
		Nodes:   nodes,
		Cluster: "bigiron",
		// Slower sampling keeps the event volume proportionate; a real
		// deployment samples a thousand nodes at this kind of rate too.
		Period:    5 * time.Second,
		Heartbeat: 10 * time.Second,
		EchoSweep: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sim.Stop()
	if err := sim.Server.Engine().AddRule(events.Rule{
		Name: "overtemp", Metric: "hw.temp.cpu", Op: events.GT, Threshold: 85,
		Action: events.ActPowerOff, Notify: true,
	}); err != nil {
		t.Fatal(err)
	}
	if len(sim.Boxes) != nodes/10 {
		t.Fatalf("boxes = %d", len(sim.Boxes))
	}

	sim.PowerOnAll()
	sim.Advance(2 * time.Minute) // sequenced power-up of 100 boxes

	status := sim.Server.Status()
	if len(status) != nodes {
		t.Fatalf("status rows = %d", len(status))
	}
	alive := 0
	for _, st := range status {
		if st.Alive {
			alive++
		}
	}
	if alive != nodes {
		t.Fatalf("alive = %d/%d after power-up", alive, nodes)
	}

	// One failing node among a thousand.
	victim := sim.Node("node666")
	victim.SetLoad(1)
	sim.Advance(3 * time.Minute)
	victim.FailFan()
	sim.Advance(10 * time.Minute)

	if victim.Damaged() {
		t.Fatal("victim burned at scale")
	}
	if victim.State() != node.PowerOff {
		t.Fatalf("victim = %v", victim.State())
	}
	log := sim.Server.Engine().Log()
	if len(log) != 1 || log[0].Node != "node666" {
		t.Fatalf("event log = %+v", log)
	}
	if sim.Mailer.Count() != 1 {
		t.Fatalf("mails = %d", sim.Mailer.Count())
	}
	// No bystander was touched.
	up := 0
	for _, n := range sim.Nodes {
		if n.State() == node.Up {
			up++
		}
	}
	if up != nodes-1 {
		t.Fatalf("up = %d, want %d", up, nodes-1)
	}
	// History accumulated for the whole cluster.
	if got := len(sim.Server.History().Nodes()); got != nodes {
		t.Fatalf("history nodes = %d", got)
	}
}
