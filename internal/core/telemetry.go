package core

import (
	"fmt"
	"io"
	"strings"
	"time"

	"clusterworx/internal/telemetry"
)

// Self-monitoring series for the management server. The ingest series
// are striped by the node table's shard index — the same hash that
// spreads the locks spreads the counters — so 64 concurrent agents do
// not re-serialize on a metric cache line that PR 1 just unshared.
var (
	mIngestUpdates    = telemetry.Default().Counter("cwx_ingest_updates_total")
	mIngestValues     = telemetry.Default().Counter("cwx_ingest_values_total")
	mIngestRegistered = telemetry.Default().Counter("cwx_ingest_node_registrations_total")
	mIngestLatencyNs  = telemetry.Default().Histogram("cwx_ingest_latency_ns")
	mIngestBatch      = telemetry.Default().Histogram("cwx_ingest_batch_values")
	mEventsDwellNs    = telemetry.Default().Histogram("cwx_ingest_events_dwell_ns")
	mDownDetections   = telemetry.Default().Counter("cwx_server_down_detections_total")
	gNodes            = telemetry.Default().Gauge("cwx_server_nodes")
	gNodesDown        = telemetry.Default().Gauge("cwx_server_nodes_down")

	// Loss-tolerant delta protocol (§5.3 transmission over flaky
	// networks): server-side gap/regression detection and resync
	// requests, plus the agent-side retransmit and snapshot counters.
	mIngestSeqGaps        = telemetry.Default().Counter("cwx_ingest_seq_gaps_total")
	mIngestSeqRegressions = telemetry.Default().Counter("cwx_ingest_seq_regressions_total")
	mIngestResyncReqs     = telemetry.Default().Counter("cwx_ingest_resync_requests_total")
	mIngestSnapshots      = telemetry.Default().Counter("cwx_ingest_snapshot_frames_total")
	mAgentSendFailures    = telemetry.Default().Counter("cwx_agent_send_failures_total")
	mAgentRetransmits     = telemetry.Default().Counter("cwx_agent_retransmits_total")
	mAgentResyncSnapshots = telemetry.Default().Counter("cwx_agent_resync_snapshots_total")

	// Hierarchical federation (PR 10): the child side's uplink flush
	// counters and the parent side's batch ingest counters.
	mUplinkFrames    = telemetry.Default().Counter("cwx_uplink_frames_total")
	mUplinkNodes     = telemetry.Default().Counter("cwx_uplink_nodes_forwarded_total")
	mUplinkBytes     = telemetry.Default().Counter("cwx_uplink_bytes_total")
	mUplinkSendFails = telemetry.Default().Counter("cwx_uplink_send_failures_total")
	mUplinkSnapAlls  = telemetry.Default().Counter("cwx_uplink_snap_all_total")
	mUplinkInFrames  = telemetry.Default().Counter("cwx_uplink_ingest_frames_total")
	mUplinkInNodes   = telemetry.Default().Counter("cwx_uplink_ingest_nodes_total")
	mUplinkInDesyncs = telemetry.Default().Counter("cwx_uplink_desyncs_total")
)

// WriteTelemetry emits the process's entire self-monitoring state in the
// Prometheus text exposition format, refreshing the server-level gauges
// first so a scrape always carries current node counts.
func (s *Server) WriteTelemetry(w io.Writer) error {
	s.Status()
	return telemetry.Default().WritePrometheus(w)
}

// renderSpans renders per-node pipeline span breakdowns as an aligned
// table, one column per stage showing duration/size.
func renderSpans(snaps []telemetry.SpanSnapshot) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-16s %5s", "node", "seq")
	for st := 0; st < telemetry.NumStages; st++ {
		fmt.Fprintf(&b, " %14s", telemetry.Stage(st).String())
	}
	b.WriteByte('\n')
	for _, sp := range snaps {
		fmt.Fprintf(&b, "%-16s %5d", sp.Node, sp.Seq)
		for st := 0; st < telemetry.NumStages; st++ {
			sample := sp.Stages[st]
			if sample.Dur == 0 && sample.Size == 0 {
				fmt.Fprintf(&b, " %14s", "-")
				continue
			}
			fmt.Fprintf(&b, " %14s", fmtDur(sample.Dur)+"/"+fmt.Sprintf("%d", sample.Size))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// fmtDur renders a duration at the resolution an operator reads at a
// glance: ns below a microsecond, then µs, ms, s.
func fmtDur(d time.Duration) string {
	switch {
	case d < time.Microsecond:
		return fmt.Sprintf("%dns", d.Nanoseconds())
	case d < time.Millisecond:
		return fmt.Sprintf("%.1fµs", float64(d.Nanoseconds())/1e3)
	case d < time.Second:
		return fmt.Sprintf("%.1fms", float64(d.Nanoseconds())/1e6)
	default:
		return fmt.Sprintf("%.2fs", d.Seconds())
	}
}
