package core

import (
	"fmt"
	"math"
	"strings"
	"testing"
	"time"

	"clusterworx/internal/flight"
	"clusterworx/internal/serve"
	"clusterworx/internal/telemetry"
)

// This file is the correctness suite for hierarchical federation: every
// tier must mirror its subtree byte for byte, subtree rollups must be
// exact at every level, the serving plane at an upper tier must stream
// leaf-originated changes, trace ids must survive the uplink hop with a
// journal record per forwarded traced sub-frame, and a v1-pinned leaf
// must converge over the per-node fallback wire. The fault schedules
// (loss, leaf kill/rejoin) live in faultinject_test.go.

// fedNodeNum returns a node's numeric metric at one tier's server, or
// fails the test.
func fedNodeNum(t *testing.T, srv *Server, node, metric string) float64 {
	t.Helper()
	for _, v := range srv.NodeValues(node) {
		if v.Name == metric {
			if v.IsText {
				t.Fatalf("%s %s is text %q, want numeric", node, metric, v.Text)
			}
			return v.Num
		}
	}
	t.Fatalf("%s has no %s at %s", node, metric, srv.cluster)
	return 0
}

// fedSettle runs quiet uplink periods so in-flight flushes land.
func fedSettle(f *FedSim, periods int) {
	f.Advance(time.Duration(periods) * 100 * time.Millisecond)
}

// TestFedSyntheticMirrorsAndAggregates drives a 2x2-fanout 3-tier
// federation (16 synthetic nodes) through several monitoring rounds and
// requires (a) the root's mirror of every raw node to hold that node's
// latest value, (b) every tier's rollup chain — rack, row, grid — to
// fold its subtree exactly, and (c) an idle cluster to cost zero uplink
// bytes (per-hop suppression).
func TestFedSyntheticMirrorsAndAggregates(t *testing.T) {
	fed, err := NewFedSim(FedConfig{Fanout: 2, Tiers: 3, NodesPerLeaf: 4, Synthetic: true, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	const rounds = 5
	for r := 0; r < rounds; r++ {
		fed.InjectRound()
		fed.Advance(100 * time.Millisecond)
	}
	fedSettle(fed, 2)

	total := fed.TotalNodes()
	if total != 16 {
		t.Fatalf("topology built %d nodes, want 16", total)
	}
	// (a) Root mirrors every raw node's latest state, statics included.
	for g := 0; g < total; g++ {
		node := fmt.Sprintf("node%03d", g)
		if got, want := fedNodeNum(t, fed.Root.Server, node, "cpu.load"), SynthValue(g, rounds); got != want {
			t.Errorf("root mirror %s cpu.load = %v, want %v", node, got, want)
		}
		if got := fedNodeNum(t, fed.Root.Server, node, "mem.total"); got != 1024 {
			t.Errorf("root mirror %s mem.total = %v, want 1024 (round-1 static lost?)", node, got)
		}
	}
	// Mid tier mirrors exactly its half of the tree.
	mid0 := fed.Levels[1][0].Server
	if got := fedNodeNum(t, mid0, "node000", "cpu.load"); got != SynthValue(0, rounds) {
		t.Errorf("mid00 mirror node000 = %v, want %v", got, SynthValue(0, rounds))
	}
	if vals := mid0.NodeValues("node008"); vals != nil {
		t.Errorf("mid00 mirrors node008 (other subtree): %v", vals)
	}

	// (b) Rollup chain. Leaf racks fold 4 raw nodes; rows compose 2
	// racks; the grid composes 2 rows. Counts, mins, and maxes are exact;
	// sums are compared with a float tolerance because the hierarchical
	// fold reassociates the additions.
	for li, leaf := range fed.Leaves {
		agg := "rack/" + leaf.Name
		if got := fedNodeNum(t, fed.Root.Server, agg, "cpu.load.cnt"); got != 4 {
			t.Errorf("root %s cpu.load.cnt = %v, want 4", agg, got)
		}
		_ = li
	}
	cnt := fedNodeNum(t, fed.Root.Server, RootAggNode, "cpu.load.cnt")
	minV := fedNodeNum(t, fed.Root.Server, RootAggNode, "cpu.load.min")
	maxV := fedNodeNum(t, fed.Root.Server, RootAggNode, "cpu.load.max")
	sum := fedNodeNum(t, fed.Root.Server, RootAggNode, "cpu.load.sum")
	wantMin, wantMax, wantSum := math.Inf(1), math.Inf(-1), 0.0
	for g := 0; g < total; g++ {
		v := SynthValue(g, rounds)
		wantMin = math.Min(wantMin, v)
		wantMax = math.Max(wantMax, v)
		wantSum += v
	}
	if cnt != float64(total) || minV != wantMin || maxV != wantMax {
		t.Errorf("grid/root fold = cnt %v min %v max %v, want %d %v %v", cnt, minV, maxV, total, wantMin, wantMax)
	}
	if math.Abs(sum-wantSum) > 1e-9 {
		t.Errorf("grid/root cpu.load.sum = %v, want %v", sum, wantSum)
	}
	// mem.total rolls up too (4 * 1024 per rack, 16 * 1024 at the grid).
	if got := fedNodeNum(t, fed.Root.Server, RootAggNode, "mem.total.sum"); got != float64(total)*1024 {
		t.Errorf("grid/root mem.total.sum = %v, want %v", got, float64(total)*1024)
	}

	// (c) Idle per-hop suppression: with no new rounds, further flush
	// periods must move zero uplink bytes anywhere in the tree.
	before := make([]UplinkStats, 0, len(fed.Leaves)+len(fed.Levels[1]))
	for _, tier := range fed.Levels[:2] {
		for _, fs := range tier {
			before = append(before, fs.Uplink.Stats())
		}
	}
	fedSettle(fed, 5)
	i := 0
	for _, tier := range fed.Levels[:2] {
		for _, fs := range tier {
			if after := fs.Uplink.Stats(); after.Bytes != before[i].Bytes {
				t.Errorf("%s uplink moved %d bytes while the cluster was idle", fs.Name, after.Bytes-before[i].Bytes)
			}
			i++
		}
	}
	if in := fed.Root.Server.UplinkInStats(); in.Frames == 0 || in.RawNodes == 0 || in.Desyncs != 0 {
		t.Errorf("root uplink ingest counters off: %+v", in)
	}
}

// TestFedRealAgentsConverge runs full simulated agents under a 2-leaf
// federation and requires the root's mirror of every node to match the
// agent's own consolidator state byte for byte — the same invariant the
// single-tier fault suite pins, now across two hops.
func TestFedRealAgentsConverge(t *testing.T) {
	fed, err := NewFedSim(FedConfig{
		Fanout: 2, Tiers: 2, NodesPerLeaf: 3,
		EchoSweep: -1, AntiEntropy: 20 * time.Second,
		Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(fed.Stop)
	fed.PowerOnAll()
	fed.Advance(30 * time.Second)
	fed.Stop()
	// Agents are frozen; drain in-flight frames and a few uplink periods.
	fed.Advance(5 * time.Second)

	for _, leaf := range fed.Leaves {
		st := leaf.Uplink.Stats()
		if !st.V2 || st.Frames == 0 {
			t.Errorf("%s uplink never negotiated the batch wire: %+v", leaf.Name, st)
		}
		for i, agent := range leaf.Sim.Agents {
			name := leaf.Sim.Nodes[i].Name()
			agentVals := agent.Consolidator().Snapshot()
			if diffs := syncDiff(leaf.Server, name, agentVals); len(diffs) > 0 {
				t.Errorf("leaf diverged from agent:\n%s", joinDiffs(diffs))
			}
			if diffs := syncDiff(fed.Root.Server, name, agentVals); len(diffs) > 0 {
				t.Errorf("root mirror diverged from agent across the hop:\n%s", joinDiffs(diffs))
			}
		}
	}
	in := fed.Root.Server.UplinkInStats()
	if in.RawNodes == 0 || in.Desyncs != 0 || in.Resets != 0 {
		t.Errorf("lossless run bent the uplink chain: %+v", in)
	}
}

// TestFedWatchAtRootStreams subscribes a watch client at the ROOT tier
// and requires a change injected at a leaf to reach the client as an
// incremental diff whose reconstruction matches what a polling client
// would read — serve-plane fan-out per hop, end to end.
func TestFedWatchAtRootStreams(t *testing.T) {
	fed, err := NewFedSim(FedConfig{Fanout: 2, Tiers: 2, NodesPerLeaf: 2, Synthetic: true, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	fed.InjectRound()
	fed.Advance(100 * time.Millisecond)

	cl := pipeClient(t, fed.Root.Server)
	if err := cl.Send("watch status"); err != nil {
		t.Fatal(err)
	}
	kind, lines := readWatchBlock(t, cl, 2*time.Second)
	if kind != "OK" {
		t.Fatalf("initial block kind %q, want OK", kind)
	}
	var v serve.View
	v.SetFull(lines)
	if got := v.Render(); !strings.Contains(got, "node000") || !strings.Contains(got, "node003") {
		t.Fatalf("root watch snapshot is missing mirrored nodes:\n%s", got)
	}

	// A fresh round at the leaves must flow leaf -> root -> watch client.
	fed.InjectRound()
	fed.Advance(100 * time.Millisecond)
	want := strings.Join(ctlBody(fed.Root.Server.HandleCtl("status")), "\n")
	deadline := time.Now().Add(5 * time.Second)
	for v.Render() != want {
		if time.Now().After(deadline) {
			t.Fatalf("root watch never converged:\ngot:\n%s\nwant:\n%s", v.Render(), want)
		}
		kind, lines := readWatchBlock(t, cl, 2*time.Second)
		applyWatchBlock(t, &v, kind, lines)
	}
}

// TestFedJournalDifferential is the flight-recorder side of federation:
// with every frame sampled, each traced sub-frame the uplinks forward
// must leave exactly one KindUplinkForward journal record (counted
// against the uplinks' own TracedForwards counters), each snap-all
// flush exactly one KindUplinkResync record, and a forwarded trace id
// must reappear in an ingest-stage record on the parent tier — the
// causal chain crosses the hop intact.
func TestFedJournalDifferential(t *testing.T) {
	base := flight.Default().Cursor()
	prevRate := flight.SetRate(1)
	defer flight.SetRate(prevRate)

	fed, err := NewFedSim(FedConfig{
		Fanout: 2, Tiers: 2, NodesPerLeaf: 2,
		EchoSweep: -1, Seed: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(fed.Stop)
	fed.PowerOnAll()
	fed.Advance(12 * time.Second)
	fed.Stop()
	fed.Advance(2 * time.Second)

	recs := flightRecsSince(base)
	var wantForwards, wantSnapAlls int64
	for _, leaf := range fed.Leaves {
		st := leaf.Uplink.Stats()
		wantForwards += st.TracedForwards
		wantSnapAlls += st.SnapAlls
	}
	if wantForwards == 0 {
		t.Fatal("no traced sub-frames crossed the uplinks at sample rate 1")
	}
	if got := countKind(recs, flight.KindUplinkForward); got != wantForwards {
		t.Errorf("journal has %d uplink-forward records, uplink counters say %d", got, wantForwards)
	}
	var snapAllRecs int64
	for _, r := range recs {
		if r.Kind == flight.KindUplinkResync && r.A == 1 {
			snapAllRecs++
		}
	}
	if snapAllRecs != wantSnapAlls {
		t.Errorf("journal has %d snap-all records, uplink counters say %d", snapAllRecs, wantSnapAlls)
	}

	// Trace continuity: a forwarded trace id must carry at least two
	// ingest-stage records — the leaf's ingest and the root's.
	checked := false
	for _, r := range recs {
		if r.Kind != flight.KindUplinkForward || r.Trace == 0 {
			continue
		}
		ingests := 0
		for _, tr := range flight.Default().TraceRecords(r.Trace) {
			if tr.Kind == flight.KindStage && tr.Stage == uint8(telemetry.StageIngest) {
				ingests++
			}
		}
		if ingests >= 2 {
			checked = true
			break
		}
	}
	if !checked {
		t.Error("no forwarded trace id shows ingest stages on both sides of the hop")
	}
}

// TestFedV1PinnedUplinkConverges pins one leaf's uplink to the v1
// per-node wire (a parent that predates the batch format, or an
// operator escape hatch) and requires the mixed tree to converge all
// the same: the pinned leaf ships sequenced per-node frames, the other
// leaf batches, and the root's mirror is right either way.
func TestFedV1PinnedUplinkConverges(t *testing.T) {
	fed, err := NewFedSim(FedConfig{
		Fanout: 2, Tiers: 2, NodesPerLeaf: 2, Synthetic: true,
		UplinkV1: func(leaf int) bool { return leaf == 0 },
		Seed:     11,
	})
	if err != nil {
		t.Fatal(err)
	}
	const rounds = 3
	for r := 0; r < rounds; r++ {
		fed.InjectRound()
		fed.Advance(100 * time.Millisecond)
	}
	fedSettle(fed, 2)

	pinned := fed.Leaves[0].Uplink.Stats()
	if pinned.V2 || pinned.Frames != 0 || pinned.V1Frames == 0 {
		t.Errorf("pinned leaf should speak only v1: %+v", pinned)
	}
	batched := fed.Leaves[1].Uplink.Stats()
	if !batched.V2 || batched.Frames == 0 {
		t.Errorf("unpinned leaf should upgrade to the batch wire: %+v", batched)
	}
	for g := 0; g < fed.TotalNodes(); g++ {
		node := fmt.Sprintf("node%03d", g)
		if got, want := fedNodeNum(t, fed.Root.Server, node, "cpu.load"), SynthValue(g, rounds); got != want {
			t.Errorf("root mirror %s = %v, want %v", node, got, want)
		}
	}
}
