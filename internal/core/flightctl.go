package core

import (
	"encoding/json"
	"sort"
	"strconv"
	"strings"
	"time"

	"clusterworx/internal/dashboard"
	"clusterworx/internal/flight"
	"clusterworx/internal/telemetry"
)

// This file is the control-plane surface of the flight recorder
// (internal/flight): the "journal" and "flight" ctl verbs, their -json
// forms, and the JSON form of "trace". Everything here is cold path —
// hot-path appends live with the code being recorded.

// fjournal is the process-wide flight journal every core subsystem
// appends to, bound once so call sites stay short.
var fjournal = flight.Default()

// journalDefaultMax bounds a plain "journal" response; "journal since
// <seq>" is cursor-driven and returns everything retained past the
// cursor, which the ring itself bounds.
const journalDefaultMax = 200

// stripJSONFlag removes a "-json" token (any position, case-insensitive)
// from fields, reporting whether it was present.
func stripJSONFlag(fields []string) ([]string, bool) {
	for i, f := range fields {
		if strings.EqualFold(f, "-json") {
			return append(fields[:i:i], fields[i+1:]...), true
		}
	}
	return fields, false
}

// journalRecordJSON is the scripting view of one flight record. Trace
// ids render as the 16-hex form "flight <id>" accepts, not as decimals
// nothing else displays.
type journalRecordJSON struct {
	Seq    uint64 `json:"seq"`
	TimeNs int64  `json:"t_ns"`
	Kind   string `json:"kind"`
	Stage  string `json:"stage,omitempty"`
	Trace  string `json:"trace,omitempty"`
	Node   string `json:"node,omitempty"`
	Detail string `json:"detail,omitempty"`
	A      int64  `json:"a"`
	B      int64  `json:"b"`
}

func journalJSON(recs []flight.Record) []journalRecordJSON {
	out := make([]journalRecordJSON, len(recs))
	for i, r := range recs {
		out[i] = journalRecordJSON{
			Seq:    r.Seq,
			TimeNs: r.TimeNs,
			Kind:   r.Kind.String(),
			Node:   r.Node,
			Detail: r.Detail,
			A:      r.A,
			B:      r.B,
		}
		if r.Kind == flight.KindStage {
			out[i].Stage = telemetry.Stage(r.Stage).String()
		}
		if r.Trace != 0 {
			out[i].Trace = flight.FormatTrace(r.Trace)
		}
	}
	return out
}

func marshalOK(v any) string {
	b, err := json.Marshal(v)
	if err != nil {
		return "ERR encoding response: " + err.Error()
	}
	return "OK\n" + string(b)
}

// ctlJournal handles "journal [-json] [since <seq>]": the flight
// recorder's ring, oldest first, each line led by the zero-padded global
// sequence number so watch streams can diff the view.
func (s *Server) ctlJournal(fields []string) string {
	fields, asJSON := stripJSONFlag(fields)
	since := uint64(0)
	max := journalDefaultMax
	switch {
	case len(fields) == 0:
	case len(fields) == 2 && strings.EqualFold(fields[0], "since"):
		parsed, err := strconv.ParseUint(fields[1], 10, 64)
		if err != nil {
			return "ERR usage: journal [-json] [since <seq>]"
		}
		since, max = parsed, 0
	default:
		return "ERR usage: journal [-json] [since <seq>]"
	}
	recs := fjournal.Since(since, max)
	if asJSON {
		return marshalOK(struct {
			Cursor  uint64              `json:"cursor"`
			Records []journalRecordJSON `json:"records"`
		}{fjournal.Cursor(), journalJSON(recs)})
	}
	head := "OK journal cursor=" + strconv.FormatUint(fjournal.Cursor(), 10) +
		" records=" + strconv.Itoa(len(recs))
	return head + "\n" + strings.TrimRight(dashboard.FlightPanel(recs), "\n")
}

// ctlFlight handles "flight [-json] <trace-id|node>": the span tree of
// one sampled frame — every journal record stamped with the trace id,
// pipeline hops first in stage order, then the detours in journal
// order. A node name argument resolves to the node's most recent trace.
func (s *Server) ctlFlight(fields []string) string {
	fields, asJSON := stripJSONFlag(fields)
	if len(fields) != 1 {
		return "ERR usage: flight [-json] <trace-id|node>"
	}
	arg := fields[0]
	id, isID := flight.ParseTrace(arg)
	if !isID {
		id = fjournal.LastTrace(arg)
		if id == 0 {
			return "ERR no trace records for " + arg
		}
	}
	recs := fjournal.TraceRecords(id)
	if len(recs) == 0 {
		return "ERR no records retained for trace " + arg
	}
	// Pipeline hops in stage order tell the story top to bottom
	// (gather→…→notify) even though with an in-process transport the
	// server-side hops were journaled inside the agent's transmit hop;
	// non-stage records (the detours) keep their causal journal order
	// after them.
	sort.SliceStable(recs, func(i, j int) bool {
		si, sj := recs[i].Kind == flight.KindStage, recs[j].Kind == flight.KindStage
		if si != sj {
			return si
		}
		if si && recs[i].Stage != recs[j].Stage {
			return recs[i].Stage < recs[j].Stage
		}
		return recs[i].Seq < recs[j].Seq
	})
	if asJSON {
		return marshalOK(struct {
			Trace   string              `json:"trace"`
			Records []journalRecordJSON `json:"records"`
		}{flight.FormatTrace(id), journalJSON(recs)})
	}
	head := "OK flight " + flight.FormatTrace(id) + " records=" + strconv.Itoa(len(recs))
	return head + "\n" + strings.TrimRight(dashboard.FlightPanel(recs), "\n")
}

// spanJSON is the scripting view of one node's pipeline span for
// "trace -json".
type spanJSON struct {
	Node   string          `json:"node"`
	Seq    int64           `json:"seq"`
	Stages []spanStageJSON `json:"stages"`
}

type spanStageJSON struct {
	Stage string `json:"stage"`
	DurNs int64  `json:"dur_ns"`
	Size  int64  `json:"size"`
	Trace string `json:"trace,omitempty"`
}

func spansJSON(snaps []telemetry.SpanSnapshot) []spanJSON {
	out := make([]spanJSON, len(snaps))
	for i, sn := range snaps {
		sp := spanJSON{Node: sn.Node, Seq: sn.Seq, Stages: make([]spanStageJSON, telemetry.NumStages)}
		for st := 0; st < telemetry.NumStages; st++ {
			sample := sn.Stages[st]
			sp.Stages[st] = spanStageJSON{
				Stage: telemetry.Stage(st).String(),
				DurNs: int64(sample.Dur),
				Size:  sample.Size,
			}
			if sample.Trace != 0 {
				sp.Stages[st].Trace = flight.FormatTrace(sample.Trace)
			}
		}
		out[i] = sp
	}
	return out
}

// ctlTraceJSON is the -json form of the trace verb: the span snapshots
// plus the ingest-latency exemplar (the worst traced observation and
// its trace id, the drill-down target for "flight <trace>").
func ctlTraceJSON(snaps []telemetry.SpanSnapshot) string {
	resp := struct {
		Spans    []spanJSON `json:"spans"`
		Exemplar *struct {
			Metric  string `json:"metric"`
			ValueNs int64  `json:"value_ns"`
			Trace   string `json:"trace"`
		} `json:"exemplar,omitempty"`
	}{Spans: spansJSON(snaps)}
	if v, tr := mIngestLatencyNs.Exemplar(); tr != 0 {
		resp.Exemplar = &struct {
			Metric  string `json:"metric"`
			ValueNs int64  `json:"value_ns"`
			Trace   string `json:"trace"`
		}{"cwx_ingest_latency_ns", v, flight.FormatTrace(tr)}
	}
	return marshalOK(resp)
}

// traceExemplarFooter is the human form of the exemplar link appended to
// "trace" output: the p99 outlier's exact frame, one verb away.
func traceExemplarFooter() string {
	v, tr := mIngestLatencyNs.Exemplar()
	if tr == 0 {
		return ""
	}
	return "\nworst traced ingest " + fmtDur(time.Duration(v)) +
		"  trace " + flight.FormatTrace(tr) +
		"  (drill down: flight " + flight.FormatTrace(tr) + ")"
}
