package core

import (
	"sync"

	"clusterworx/internal/node"
	"clusterworx/internal/slurm"
)

// SlurmBridge binds a slurm.Cluster to the simulated cluster so that the
// §6 resource manager runs against the same nodes ClusterWorX monitors:
//
//   - a launching job puts its work onto its allocated nodes (their load —
//     and therefore their /proc statistics, temperatures, and the
//     monitoring screen — rises for the job's duration);
//   - a node leaving the Up state (crash, power-off, thermal event action)
//     is reported down to the scheduler, failing or requeueing its jobs;
//   - a node returning to Up rejoins the allocation pool.
//
// This closes the loop the paper sketches: "the data is used to schedule
// tasks, load-balance devices and services" (§5.3).
type SlurmBridge struct {
	Cluster *slurm.Cluster

	mu   sync.Mutex         //cwx:lockrank bridge 4
	load map[string]float64 // per-node load contributed by jobs
	sim  *Sim
}

// jobLoad is the run-queue depth one job contributes to each of its nodes.
const jobLoad = 1.0

// AttachSlurm creates a slurm.Cluster over the sim's nodes and wires the
// two systems together. Call it once, after NewSim.
func (s *Sim) AttachSlurm() *SlurmBridge {
	names := make([]string, len(s.Nodes))
	for i, n := range s.Nodes {
		names[i] = n.Name()
	}
	br := &SlurmBridge{
		Cluster: slurm.New(s.Clk, names),
		load:    make(map[string]float64, len(names)),
		sim:     s,
	}

	// Jobs drive node load while they run.
	br.Cluster.OnStart(func(j slurm.Job) {
		br.addLoad(j.Allocated, +jobLoad)
	})
	br.Cluster.OnComplete(func(j slurm.Job) {
		br.addLoad(j.Allocated, -jobLoad)
	})

	// Node lifecycle feeds scheduler availability. Initial state: only Up
	// nodes are in service.
	for _, n := range s.Nodes {
		n := n
		if n.State() != node.Up {
			br.Cluster.NodeDown(n.Name())
		}
		n.OnStateChange(func(st node.State) {
			if st == node.Up {
				br.Cluster.NodeUp(n.Name())
			} else {
				br.Cluster.NodeDown(n.Name())
			}
		})
	}
	return br
}

// addLoad adjusts the job-driven load on a set of nodes.
func (b *SlurmBridge) addLoad(nodeNames []string, delta float64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	for _, name := range nodeNames {
		n := b.sim.byName[name]
		if n == nil {
			continue
		}
		l := b.load[name] + delta
		if l < 0 {
			l = 0
		}
		b.load[name] = l
		n.SetLoad(l)
	}
}

// JobLoad returns the job-driven load currently assigned to a node.
func (b *SlurmBridge) JobLoad(nodeName string) float64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.load[nodeName]
}
