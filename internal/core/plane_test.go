package core

import (
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"clusterworx/internal/consolidate"
	"clusterworx/internal/serve"
)

// planeServer builds a server on a hand-cranked clock so every test in
// this file is deterministic: time moves only when the test says so.
func planeServer() (*Server, *atomic.Int64) {
	var nowNs atomic.Int64
	s := NewServer(ServerConfig{
		Cluster: "plane",
		Now:     func() time.Duration { return time.Duration(nowNs.Load()) },
	})
	return s, &nowNs
}

func planeIngest(s *Server, node string, load, idle, mem float64) {
	s.HandleValues(node, []consolidate.Value{
		consolidate.NumValue("load.1", consolidate.Dynamic, load),
		consolidate.NumValue("cpu.idle.pct", consolidate.Dynamic, idle),
		consolidate.NumValue("mem.used.pct", consolidate.Dynamic, mem),
	})
}

// TestPlaneCachedMatchesUncached is the serving plane's differential
// test: random ingest interleaved with reads, every cached answer
// byte-identical to the uncached ablation that rebuilds from the live
// registry. Any divergence — a stale entry surviving a generation move,
// a window end drifting off the ingest timestamp — fails here.
func TestPlaneCachedMatchesUncached(t *testing.T) {
	s, nowNs := planeServer()
	rng := rand.New(rand.NewSource(1))
	nodes := []string{"node000", "node001", "node002", "node003", "node004"}
	verbs := []string{
		"status", "nodes", "values node002", "values nosuch",
		"compare load.1", "chart node001 load.1", "spark node003 load.1",
		"efficiency", "sync", "selfmon",
	}
	for i := 0; i < 300; i++ {
		// A random burst of ingest on a random subset of the cluster.
		for _, n := range nodes {
			if rng.Intn(3) == 0 {
				planeIngest(s, n, rng.Float64()*8, rng.Float64()*100, rng.Float64()*100)
			}
		}
		nowNs.Add(rng.Int63n(int64(3 * time.Second)))
		verb := verbs[rng.Intn(len(verbs))]
		got := s.HandleCtl(verb)
		want := s.HandleCtlUncached(verb)
		if got != want {
			t.Fatalf("iteration %d: cached %q diverged from uncached:\ncached:\n%s\nuncached:\n%s",
				i, verb, got, want)
		}
	}
}

// TestPlaneStatusLiveness: the status cache must not outlive a liveness
// deadline — a node that falls silent flips to DOWN purely by the clock
// passing lastSeen+DownAfter, with no ingest to move the generation.
func TestPlaneStatusLiveness(t *testing.T) {
	s, nowNs := planeServer()
	planeIngest(s, "node000", 1, 50, 20)
	if rows := s.Status(); len(rows) != 1 || !rows[0].Alive {
		t.Fatalf("fresh node not alive: %+v", rows)
	}
	// Within the window the cached snapshot keeps answering.
	nowNs.Store(int64(DownAfter))
	if rows := s.Status(); !rows[0].Alive {
		t.Fatal("node DOWN before the deadline passed")
	}
	// One tick past the deadline the Stale hook forces a rebuild.
	nowNs.Store(int64(DownAfter) + 1)
	if rows := s.Status(); rows[0].Alive {
		t.Fatal("cached status snapshot outlived the liveness deadline")
	}
	if !strings.Contains(s.HandleCtl("status"), "DOWN") {
		t.Fatal("ctl status rendering missed the down transition")
	}
}

// TestPlaneCoalescing: concurrent identical misses collapse onto one
// rebuild (acceptance bar: ≥90% collapsed; this allows at most 2 builds
// for 100 readers to tolerate scheduling skew around the bump).
func TestPlaneCoalescing(t *testing.T) {
	s, _ := planeServer()
	for i := 0; i < 32; i++ {
		planeIngest(s, fmt.Sprintf("node%03d", i), float64(i), 50, 20)
	}
	s.HandleCtl("status") // warm, then invalidate once
	planeIngest(s, "node000", 9, 50, 20)
	before := serve.ReadStats()
	const readers = 100
	start := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < readers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			s.HandleCtl("status")
		}()
	}
	close(start)
	wg.Wait()
	after := serve.ReadStats()
	if builds := after.Misses - before.Misses; builds > 2 {
		t.Fatalf("%d identical concurrent misses ran %d rebuilds, want ≤2 (≥90%% coalesced)", readers, builds)
	}
}

// TestPlaneChartShortCircuit: chart/spark ride their one series' append
// counter, so ingest on other nodes (which moves the global generation)
// leaves the cached rendering untouched — hits, not rebuilds.
func TestPlaneChartShortCircuit(t *testing.T) {
	s, nowNs := planeServer()
	for i := 0; i < 4; i++ {
		nowNs.Add(int64(time.Second))
		planeIngest(s, "node000", float64(i), 50, 20)
		planeIngest(s, "node001", float64(i*2), 50, 20)
	}
	first := s.HandleCtl("chart node000 load.1")
	if !strings.HasPrefix(first, "OK") {
		t.Fatalf("chart failed: %s", first)
	}
	pre := serve.ReadStats()
	// Ingest on a *different* node: global generation moves, node000's
	// load.1 series does not.
	nowNs.Add(int64(time.Second))
	planeIngest(s, "node001", 42, 50, 20)
	if got := s.HandleCtl("chart node000 load.1"); got != first {
		t.Fatal("chart changed without its series changing")
	}
	mid := serve.ReadStats()
	if mid.Misses != pre.Misses {
		t.Fatalf("chart rebuilt on unrelated ingest: misses %d -> %d", pre.Misses, mid.Misses)
	}
	if mid.Hits == pre.Hits {
		t.Fatal("chart re-read did not register as a cache hit")
	}
	// Ingest on the charted series invalidates it.
	nowNs.Add(int64(time.Second))
	planeIngest(s, "node000", 99, 50, 20)
	if got := s.HandleCtl("chart node000 load.1"); got == first {
		t.Fatal("chart survived its own series changing")
	}
	if post := serve.ReadStats(); post.Misses == mid.Misses {
		t.Fatal("changed chart served without a rebuild")
	}
}

// TestPlaneValuesShardGating: a node's values answer survives ingest on
// nodes in other shards and tracks its own updates.
func TestPlaneValuesShardGating(t *testing.T) {
	s, _ := planeServer()
	planeIngest(s, "node000", 1, 50, 20)
	first := s.HandleCtl("values node000")
	want := s.HandleCtlUncached("values node000")
	if first != want {
		t.Fatalf("cached values diverged:\n%s\nvs\n%s", first, want)
	}
	planeIngest(s, "node000", 7, 50, 20)
	if got := s.HandleCtl("values node000"); got == first {
		t.Fatal("values survived the node's own update")
	} else if want := s.HandleCtlUncached("values node000"); got != want {
		t.Fatalf("post-update values diverged:\n%s\nvs\n%s", got, want)
	}
}

// TestServeConcurrentHammer drives writers and cached readers together;
// its value is under -race, where it must stay silent.
func TestServeConcurrentHammer(t *testing.T) {
	s, nowNs := planeServer()
	const writers = 8
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			node := fmt.Sprintf("node%03d", id)
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				nowNs.Add(int64(time.Millisecond))
				planeIngest(s, node, float64(i%10), 50, 20)
			}
		}(w)
	}
	for r := 0; r < 8; r++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			verbs := []string{"status", "nodes", "values node003", "compare load.1", "efficiency", "spark node001 load.1"}
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				resp := s.HandleCtl(verbs[(id+i)%len(verbs)])
				if strings.HasPrefix(resp, "ERR unknown request") {
					t.Errorf("bad verb: %s", resp)
					return
				}
			}
		}(r)
	}
	time.Sleep(300 * time.Millisecond)
	close(stop)
	wg.Wait()
	// And the end state still agrees with the oracle.
	if got, want := s.HandleCtl("status"), s.HandleCtlUncached("status"); got != want {
		t.Fatalf("post-hammer status diverged:\n%s\nvs\n%s", got, want)
	}
}
