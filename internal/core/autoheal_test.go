package core

import (
	"testing"
	"time"

	"clusterworx/internal/events"
	"clusterworx/internal/node"
)

// The §5.2 self-healing loop end to end: a server-side connectivity rule
// power-cycles a node whose kernel wedged, with no administrator involved.
func TestAutoHealCrashedNode(t *testing.T) {
	sim := bootSim(t, 4)
	if err := sim.Server.Engine().AddRule(events.Rule{
		Name:      "dead-node",
		Metric:    "net.echo.ok",
		Op:        events.LT,
		Threshold: 1,
		Sustain:   3, // three failed sweeps: not just a slow boot
		Action:    events.ActPowerCycle,
		Notify:    true,
	}); err != nil {
		t.Fatal(err)
	}
	sim.Advance(time.Minute) // sweeps see everyone alive; rule stays armed
	if got := len(sim.Server.Engine().Log()); got != 0 {
		t.Fatalf("rule fired %d times on a healthy cluster", got)
	}

	victim := sim.Node("node002")
	victim.Crash("scheduler deadlock")
	if victim.State() != node.Crashed {
		t.Fatal("crash failed")
	}

	// Three 5s sweeps to trigger, then the cycle (1s) and boot (~3s).
	sim.Advance(time.Minute)
	if victim.State() != node.Up {
		t.Fatalf("victim = %v; auto-heal failed", victim.State())
	}
	log := sim.Server.Engine().Log()
	if len(log) != 1 || log[0].Action != events.ActPowerCycle || log[0].Node != "node002" {
		t.Fatalf("event log = %+v", log)
	}
	if sim.Mailer.Count() != 1 {
		t.Fatalf("mails = %d", sim.Mailer.Count())
	}

	// Healthy again: the rule re-arms. A second crash heals again and
	// notifies again (automatic re-fire, §5.2).
	sim.Advance(time.Minute)
	victim.Crash("deadlock again")
	sim.Advance(time.Minute)
	if victim.State() != node.Up {
		t.Fatalf("second heal failed: %v", victim.State())
	}
	if got := len(sim.Server.Engine().Log()); got != 2 {
		t.Fatalf("event log after second crash = %d entries", got)
	}
	if sim.Mailer.Count() != 2 {
		t.Fatalf("mails after refire = %d", sim.Mailer.Count())
	}
}

// The sweep must not resurrect lastSeen: a dead node stays DOWN on the
// status screen even while the probe keeps reporting about it.
func TestSweepDoesNotMaskDeadNode(t *testing.T) {
	sim := bootSim(t, 2)
	sim.Node("node000").Crash("gone")
	sim.Advance(time.Minute)
	for _, st := range sim.Server.Status() {
		if st.Name == "node000" && st.Alive {
			t.Fatal("probe traffic made a dead node look alive")
		}
	}
	// And the probe value is visible to clients.
	v, ok := sim.Server.NodeValue("node000", "net.echo.ok")
	if !ok || v.Num != 0 {
		t.Fatalf("echo value = %+v, %v", v, ok)
	}
}

func TestEchoSweepDisabled(t *testing.T) {
	sim, err := NewSim(SimConfig{Nodes: 1, EchoSweep: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer sim.Stop()
	sim.PowerOnAll()
	sim.Advance(30 * time.Second)
	sim.Node("node000").Crash("x")
	sim.Advance(time.Minute)
	// Without the sweep, only the agent-side echo value exists, frozen at
	// its last (alive) reading.
	v, ok := sim.Server.NodeValue("node000", "net.echo.ok")
	if ok && v.Num == 0 {
		t.Fatal("echo turned 0 with the sweep disabled; who probed?")
	}
}

// A failing NIC accumulates receive errors; a rule on the error counter
// flags the node — the intro's "locations of the network bottlenecks".
func TestNetErrorRule(t *testing.T) {
	sim := bootSim(t, 2)
	if err := sim.Server.Engine().AddRule(events.Rule{
		Name: "nic-errors", Metric: "net.eth0.rx.errs", Op: events.GT, Threshold: 100,
		Notify: true,
	}); err != nil {
		t.Fatal(err)
	}
	sim.Node("node001").InjectNetErrors(10)
	sim.Advance(5 * time.Second) // ~50 errors: still under threshold
	if len(sim.Server.Engine().Log()) != 0 {
		t.Fatal("rule fired before the counter crossed the threshold")
	}
	sim.Advance(2 * time.Minute)
	log := sim.Server.Engine().Log()
	if len(log) != 1 || log[0].Node != "node001" {
		t.Fatalf("event log = %+v", log)
	}
	if sim.Mailer.Count() != 1 {
		t.Fatalf("mails = %d", sim.Mailer.Count())
	}
}
