// Package core is ClusterWorX itself: the 3-tier management framework
// (paper §5) tying every substrate together. Node agents gather and
// consolidate monitor data and transmit change sets; the management server
// keeps the cluster registry, historical store and event engine, fronts
// the ICE Boxes for corrective actions and console access, and drives disk
// cloning; clients (the CLI, the examples, and in the original product the
// Java GUI) talk to the server's control API.
package core

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"clusterworx/internal/consolidate"
	"clusterworx/internal/events"
	"clusterworx/internal/firmware"
	"clusterworx/internal/flight"
	"clusterworx/internal/history"
	"clusterworx/internal/icebox"
	"clusterworx/internal/image"
	"clusterworx/internal/notify"
	"clusterworx/internal/serve"
	"clusterworx/internal/telemetry"
	"clusterworx/internal/transmit"
)

// DownAfter is how long without agent data before a node is presumed down.
const DownAfter = 15 * time.Second

// NodeStatus is one row of the main monitoring screen.
type NodeStatus struct {
	Name     string
	Alive    bool // agent data within DownAfter
	LastSeen time.Duration
	Values   int // monitor values known
	Load1    float64
	TempC    float64
	MemPct   float64
}

// ingestShards is the lock-stripe count for the node table. A power of
// two so the name hash folds with a mask. 64 stripes keep the chance of
// two concurrent agents landing on the same stripe small even with every
// core of the management server ingesting at once.
const ingestShards = 64

// nodeShard is one stripe of the node table. The shard lock only guards
// map membership; per-node state is behind each nodeRec's own lock, so
// two agents updating different nodes never contend even within a stripe.
type nodeShard struct {
	mu    sync.RWMutex //cwx:lockrank shard 10
	nodes map[string]*nodeRec
}

// shardGen is one stripe of the ingest generation vector, padded so 64
// concurrent agents bumping different shards never share a cache line.
type shardGen struct {
	v atomic.Uint64
	_ [56]byte
}

// Server is the ClusterWorX management server.
type Server struct {
	now     func() time.Duration
	cluster string

	shards [ingestShards]nodeShard
	hist   *history.Store

	// The serving plane's invalidation state (PR 6). gens is the
	// per-shard ingest generation vector: every applied frame bumps its
	// node's stripe, and the derived global generation — the sum — moves
	// iff any stripe moved (each stripe is monotone), so cached answers
	// tagged with the sum are valid exactly until some input changed. No
	// timers anywhere: validity is "the data is the same data".
	gens [ingestShards]shardGen
	// regGen counts node registrations only; the "nodes" verb's cache
	// rides it so steady-state ingest never invalidates the name list.
	regGen atomic.Uint64
	// lastDataNs is s.now() at the most recently ingested value: the
	// read plane's history windows end here rather than at the caller's
	// wall clock, so a cached aggregate equals its uncached ablation
	// byte for byte and simulated runs render deterministically.
	lastDataNs atomic.Int64
	// watchSig wakes the watch hub's dispatcher after a generation bump.
	watchSig serve.Signal

	// wireV1Only, when set, makes the receive paths ignore v2 wire
	// offers so every session stays on the v1 text protocol — the
	// operator escape hatch behind cwxd's -wire-v1 flag (see wire.go).
	wireV1Only atomic.Bool

	// uplink, when set, is this server's session to a parent tier: every
	// applied frame notes its node dirty there so the next flush forwards
	// the change set upstream (uplink.go). Atomic pointer so the ingest
	// hot path pays one load when federation is off.
	uplink atomic.Pointer[Uplink]
	// upIn counts uplink traffic arriving FROM child tiers (this server
	// as the parent side); see UplinkInStats.
	upIn uplinkInCounters

	plane *plane

	engine   *events.Engine
	notifier *notify.Notifier

	// mu guards the cold administrative state below; the ingest hot path
	// never takes it.
	mu      sync.Mutex //cwx:lockrank admin 12
	boxes   []*icebox.Box
	boxByID map[string]*icebox.Box

	images   *image.Store
	firmware map[string]firmware.Firmware
	cloner   func(imageID string, nodes []string) (string, error)
}

type nodeRec struct {
	// mu guards the record fields below with short critical sections. It
	// is never held while the event engine runs: ingest hands the engine a
	// pooled private copy of sample, so rule plugins and notifier
	// callbacks may call any server API — including synchronously
	// re-ingesting values for this same node — without deadlocking.
	mu       sync.RWMutex //cwx:lockrank record 20
	name     string
	lastSeen time.Duration
	seen     bool
	values   map[string]consolidate.Value
	// shard is the record's stripe index, cached so telemetry on the
	// ingest path can stripe its counters without re-hashing the name.
	shard uint32
	// span is the node's pipeline trace slot, resolved once at
	// registration; recording through it is atomics only, preserving the
	// no-new-locks contract of the sharded path.
	span *telemetry.Span
	// fsym is the node's interned flight-journal symbol, resolved once at
	// registration so journal appends on the ingest path never touch the
	// intern table (or any string).
	fsym flight.Sym
	// down tracks the presumed-down edge (for the down-detection counter);
	// atomic so Status can flip it under the record's read lock.
	down atomic.Bool
	// sample mirrors the numeric entries of values and is maintained
	// incrementally as updates arrive, so event evaluation never rebuilds
	// the full numeric state on the hot path. Guarded by mu; the engine
	// only ever sees snapshots of it, never the map itself.
	sample map[string]float64

	// Loss-tolerant delta protocol state (guarded by mu). wireSeq is the
	// highest sequence number applied; diverged is set between a detected
	// gap (a lost delta means the registry no longer mirrors the agent)
	// and the healing snapshot. The small counters feed the ctl "sync"
	// verb; process-wide totals live in the striped telemetry counters.
	wireSeq     uint64
	diverged    bool
	gaps        int64
	regressions int64
	resyncReqs  int64
	snapshots   int64
}

// ErrResyncNeeded is returned by HandleFrame when a sequence gap (or an
// agent restart) means the server's view of the node may have silently
// diverged: the transport should relay a resync request so the agent
// ships a full snapshot.
var ErrResyncNeeded = errors.New("core: node state diverged, full snapshot needed")

// probeMetric is the one server-side metric stored alongside agent data
// (written by ProbeConnectivity); snapshot replacement must not drop it,
// because the agent does not know about it.
const probeMetric = "net.echo.ok"

// SyncState is one node's loss-tolerant protocol state, for the ctl
// "sync" verb and the fault-injection harness.
type SyncState struct {
	Node        string
	Seq         uint64 // highest applied sequence number (0: unsequenced)
	Synced      bool   // false between a detected gap and the healing snapshot
	Gaps        int64  // sequence gaps observed (lost frames)
	Regressions int64  // sequence regressions observed (agent restarts)
	ResyncReqs  int64  // resync requests issued
	Snapshots   int64  // snapshot frames applied
}

// samplePool recycles the observation snapshots handed to the event
// engine, keeping the ingest hot path allocation-free without holding any
// server lock across rule plugins or notifier callbacks.
var samplePool = sync.Pool{
	New: func() any { return make(map[string]float64, 16) },
}

// shardIndex hashes a node name to its stripe with FNV-1a.
//
//cwx:hotpath
func shardIndex(name string) uint32 {
	const (
		offset32 = 2166136261
		prime32  = 16777619
	)
	h := uint32(offset32)
	for i := 0; i < len(name); i++ {
		h ^= uint32(name[i])
		h *= prime32
	}
	return h & (ingestShards - 1)
}

// ServerConfig configures a Server.
type ServerConfig struct {
	Cluster  string
	Now      func() time.Duration // time source (virtual in simulation)
	Notifier *notify.Notifier     // optional; engine runs without it
	// HistoryCapacity is the default head-block capacity for new history
	// series (0 = history.DefaultCapacity). Federated tiers mirroring
	// large subtrees shrink it and deepen only their aggregate series via
	// History().SetCapacityFunc.
	HistoryCapacity int
}

// NewServer builds a server with an empty registry.
func NewServer(cfg ServerConfig) *Server {
	if cfg.Now == nil {
		start := time.Now()
		cfg.Now = func() time.Duration { return time.Since(start) }
	}
	if cfg.Cluster == "" {
		cfg.Cluster = "cluster"
	}
	s := &Server{
		now:      cfg.Now,
		cluster:  cfg.Cluster,
		hist:     history.NewStore(cfg.HistoryCapacity),
		notifier: cfg.Notifier,
		boxByID:  make(map[string]*icebox.Box),
		images:   image.NewStore(),
		firmware: make(map[string]firmware.Firmware),
	}
	for i := range s.shards {
		s.shards[i].nodes = make(map[string]*nodeRec)
	}
	var ntf events.Notifier
	if cfg.Notifier != nil {
		ntf = cfg.Notifier
	}
	s.engine = events.New(serverActuator{s}, ntf, cfg.Now)
	s.plane = newPlane(s)
	return s
}

// Generation is the global serving-plane generation: the sum of the
// per-shard ingest counters. Each stripe is monotone, so the sum is
// unchanged iff no stripe changed; a cached answer tagged with it is
// valid exactly as long as no input anywhere has moved.
//
//cwx:hotpath
func (s *Server) Generation() uint64 {
	var g uint64
	for i := range s.gens {
		g += s.gens[i].v.Load()
	}
	return g
}

// bumpIngest publishes an ingest for nodeName's stripe to the serving
// plane. Callers must invoke it strictly after the data mutation is
// visible (after releasing the record lock): a reader that observes the
// new generation then rebuilds against the new values, so a cached
// answer can never be stale forever.
//
//cwx:hotpath
func (s *Server) bumpIngest(shard uint32, now time.Duration) {
	s.lastDataNs.Store(int64(now))
	s.gens[shard].v.Add(1)
	s.watchSig.Wake()
}

// Cluster returns the cluster name.
func (s *Server) Cluster() string { return s.cluster }

// SetWireV1Only pins all agent sessions to the v1 text wire protocol:
// when on, receive paths stop answering v2 offers, so new sessions never
// upgrade. Sessions already speaking v2 are unaffected.
func (s *Server) SetWireV1Only(on bool) { s.wireV1Only.Store(on) }

// Engine exposes the event engine for rule administration.
func (s *Server) Engine() *events.Engine { return s.engine }

// History exposes the historical store.
func (s *Server) History() *history.Store { return s.hist }

// Images exposes the image library.
func (s *Server) Images() *image.Store { return s.images }

// AddICEBox registers a management device.
func (s *Server) AddICEBox(b *icebox.Box) {
	s.mu.Lock()
	s.boxes = append(s.boxes, b)
	s.boxByID[b.ID()] = b
	s.mu.Unlock()
}

// ICEBoxes returns the registered devices.
func (s *Server) ICEBoxes() []*icebox.Box {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]*icebox.Box(nil), s.boxes...)
}

// RegisterNode pre-creates a registry entry (agents also auto-register on
// first data).
func (s *Server) RegisterNode(name string) {
	s.node(name)
}

// node returns the record for name, creating it if needed. The fast path
// is a single read-locked map lookup on the name's stripe.
func (s *Server) node(name string) *nodeRec {
	idx := shardIndex(name)
	sh := &s.shards[idx]
	sh.mu.RLock()
	rec := sh.nodes[name]
	sh.mu.RUnlock()
	if rec != nil {
		return rec
	}
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if rec = sh.nodes[name]; rec == nil {
		rec = &nodeRec{
			name:   name,
			values: make(map[string]consolidate.Value),
			sample: make(map[string]float64),
			shard:  idx,
			span:   telemetry.Spans.Slot(name),
			fsym:   fjournal.Sym(name),
		}
		sh.nodes[name] = rec
		mIngestRegistered.Inc()
		// A registration changes every roster-derived view; readers racing
		// this bump serialize on the stripe lock and see the new record.
		s.regGen.Add(1)
		s.gens[idx].v.Add(1)
		s.watchSig.Wake()
	}
	return rec
}

// lookup returns the record for name without creating it.
//
//cwx:hotpath
func (s *Server) lookup(name string) (*nodeRec, bool) {
	sh := &s.shards[shardIndex(name)]
	sh.mu.RLock()
	rec := sh.nodes[name]
	sh.mu.RUnlock()
	return rec, rec != nil
}

// HandleValues ingests one unsequenced agent transmission (a change
// set). It is the legacy entry point: HandleFrame with a zero sequence
// number, which never detects gaps and never requests a resync.
//
//cwx:hotpath
func (s *Server) HandleValues(nodeName string, values []consolidate.Value) {
	s.HandleFrame(transmit.Frame{Node: nodeName, Kind: transmit.FrameDelta, Values: values}) //nolint:errcheck // unsequenced frames never need resync
}

// HandleFrame ingests one agent transmission: it updates the live
// registry, appends numeric values to history, and runs the event engine
// over the node's updated state. Unregistered nodes auto-register; the
// record mutation holds only the node's own lock (plus a read-locked
// stripe lookup), so concurrent updates for different nodes never contend
// and read-side APIs stay responsive during ingest. Event evaluation runs
// with no server lock held at all, so rule plugins and notifier callbacks
// may call back into the server freely — including re-ingesting values
// for the very node under evaluation.
//
// Sequenced frames (Seq > 0) get gap detection: a delta arriving out of
// order means at least one change set was lost in flight, and — because
// change suppression never resends an unchanged value — the registry
// would silently diverge from the node forever. The frame is still
// applied (fresh data beats none), but the node is marked diverged and
// HandleFrame returns ErrResyncNeeded until a snapshot frame restores a
// byte-identical view. Snapshot frames replace the node's agent-side
// state wholesale.
//
//cwx:hotpath
func (s *Server) HandleFrame(f transmit.Frame) error {
	// Telemetry on this path is atomics only, striped by the node's shard
	// index so concurrent agents land on distinct counter cache lines;
	// latency is wall-clock (s.now is virtual in simulation).
	on := telemetry.On()
	var t0 time.Time
	if on {
		t0 = time.Now() //cwx:allow clockdet -- ingest latency measures real CPU cost; s.now is the virtual clock
	}
	now := s.now()
	rec := s.node(f.Node)
	rec.mu.Lock()
	rec.lastSeen = now
	rec.seen = true
	resync := false
	if f.Seq > 0 {
		prev := rec.wireSeq
		switch {
		case f.Kind == transmit.FrameSnapshot:
			// Authoritative full state: heals any divergence and adopts
			// the agent's numbering, wherever it is.
			rec.wireSeq = f.Seq
			rec.diverged = false
			rec.snapshots++
		case f.Seq == rec.wireSeq+1:
			rec.wireSeq = f.Seq
			// An in-order delta on a diverged node does not heal it: the
			// lost values are still lost. Keep asking, in case the
			// earlier resync request itself was dropped.
			resync = rec.diverged
		case f.Seq > rec.wireSeq+1:
			rec.gaps++
			rec.wireSeq = f.Seq
			rec.diverged = true
			resync = true
			mIngestSeqGaps.IncAt(int(rec.shard))
			fjournal.Append(int(rec.shard), flight.Entry{Kind: flight.KindGap, Node: rec.fsym, Trace: f.TraceID, TimeNs: int64(now), A: int64(prev), B: int64(f.Seq)})
		default: // f.Seq <= rec.wireSeq: the agent restarted its numbering
			rec.regressions++
			rec.wireSeq = f.Seq
			rec.diverged = true
			resync = true
			mIngestSeqRegressions.IncAt(int(rec.shard))
			fjournal.Append(int(rec.shard), flight.Entry{Kind: flight.KindRegression, Node: rec.fsym, Trace: f.TraceID, TimeNs: int64(now), A: int64(prev), B: int64(f.Seq)})
		}
		if resync {
			rec.resyncReqs++
		}
	}
	if f.Kind == transmit.FrameSnapshot {
		// An authoritative snapshot heals divergence whether or not it is
		// sequenced: batch-uplink sub-frames carry Seq 0 (continuity is
		// link-level there), and a v1 uplink session that upgraded to
		// batches mid-divergence must not stay marked unsynced forever.
		rec.diverged = false
		s.applySnapshotLocked(rec, f.Node, f.Values, now)
		mIngestSnapshots.IncAt(int(rec.shard))
		fjournal.Append(int(rec.shard), flight.Entry{Kind: flight.KindSnapApplied, Node: rec.fsym, Trace: f.TraceID, TimeNs: int64(now), A: int64(len(f.Values))})
	} else {
		for _, v := range f.Values {
			rec.values[v.Name] = v
			if !v.IsText {
				rec.sample[v.Name] = v.Num
				s.hist.Append(f.Node, v.Name, now, v.Num)
			} else {
				// A metric that switched to text no longer has a numeric
				// reading for the rules to evaluate.
				delete(rec.sample, v.Name)
			}
		}
	}
	snap := s.observationSnapshot(rec)
	rec.mu.Unlock()
	s.bumpIngest(rec.shard, now)
	if u := s.uplink.Load(); u != nil {
		// Federation: note the change set dirty for the next uplink flush
		// (per-hop suppression — only what changed here flows upstream).
		u.noteFrame(&f)
	}
	// t1 doubles as ingest-latency end and events-dwell start — one
	// clock read, not two.
	var t1 time.Time
	var lat time.Duration
	if on {
		t1 = time.Now() //cwx:allow clockdet,hotpath -- one deliberate second read: ingest-latency end doubles as events-dwell start
		lat = t1.Sub(t0)
		stripe := int(rec.shard)
		mIngestUpdates.IncAt(stripe)
		mIngestValues.AddAt(stripe, int64(len(f.Values)))
		mIngestLatencyNs.ObserveTraceAt(stripe, int64(lat), f.TraceID)
		mIngestBatch.ObserveAt(stripe, int64(len(f.Values)))
		rec.span.RecordTraced(telemetry.StageIngest, lat, int64(len(f.Values)), f.TraceID)
	}
	if f.TraceID != 0 {
		// The sampled frame's ingest hop. lat is 0 with telemetry off —
		// the journal still places the hop in the tree, just unmeasured.
		fjournal.Append(int(rec.shard), flight.Entry{Kind: flight.KindStage, Stage: uint8(telemetry.StageIngest), Node: rec.fsym, Trace: f.TraceID, TimeNs: int64(now), A: int64(lat), B: int64(len(f.Values))})
	}
	s.observe(f.Node, rec, snap, t1, on, f.TraceID)
	if resync {
		mIngestResyncReqs.IncAt(int(rec.shard))
		// The back-channel resync request leaves here (as ErrResyncNeeded
		// to the transport); paired with the agent's resync-recv record it
		// shows whether the request survived the return path.
		fjournal.Append(int(rec.shard), flight.Entry{Kind: flight.KindResyncSent, Node: rec.fsym, Trace: f.TraceID, TimeNs: int64(now)})
		return ErrResyncNeeded
	}
	return nil
}

// applySnapshotLocked replaces rec's agent-side state with a full
// snapshot: present values are upserted (history only records actual
// changes, so an anti-entropy refresh of an idle node appends nothing),
// and metrics the snapshot no longer carries are dropped — they vanished
// on the agent — except the server-side probe metric. Caller holds
// rec.mu.
func (s *Server) applySnapshotLocked(rec *nodeRec, nodeName string, values []consolidate.Value, now time.Duration) {
	for _, v := range values {
		old, seen := rec.values[v.Name]
		rec.values[v.Name] = v
		if !v.IsText {
			rec.sample[v.Name] = v.Num
			if !seen || !old.Equal(v) {
				s.hist.Append(nodeName, v.Name, now, v.Num)
			}
		} else {
			delete(rec.sample, v.Name)
		}
	}
	if len(rec.values) == len(values) {
		return // nothing extra to drop
	}
	present := make(map[string]struct{}, len(values))
	for _, v := range values {
		present[v.Name] = struct{}{}
	}
	for name := range rec.values {
		if _, ok := present[name]; !ok && name != probeMetric {
			delete(rec.values, name)
			delete(rec.sample, name)
		}
	}
}

// SyncStates reports every node's delta-protocol state, sorted by name.
func (s *Server) SyncStates() []SyncState {
	recs := s.allRecs()
	out := make([]SyncState, 0, len(recs))
	for _, rec := range recs {
		rec.mu.RLock()
		out = append(out, SyncState{
			Node:        rec.name,
			Seq:         rec.wireSeq,
			Synced:      !rec.diverged,
			Gaps:        rec.gaps,
			Regressions: rec.regressions,
			ResyncReqs:  rec.resyncReqs,
			Snapshots:   rec.snapshots,
		})
		rec.mu.RUnlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Node < out[j].Node })
	return out
}

// observationSnapshot copies rec.sample into a pooled map so the engine
// can evaluate the node's full current numeric state (rules on metrics
// that did not change this round still hold) after every lock is
// released. Caller must hold rec.mu. Returns nil when no rules are
// installed — the engine would not look at the snapshot anyway.
//
//cwx:hotpath
func (s *Server) observationSnapshot(rec *nodeRec) map[string]float64 {
	if !s.engine.HasRules() {
		return nil
	}
	snap := samplePool.Get().(map[string]float64)
	for name, num := range rec.sample {
		snap[name] = num
	}
	return snap
}

// observe runs the event engine over a snapshot and recycles it. The
// engine does not retain the map past ObserveMap, so it can go straight
// back to the pool. The dwell — how long rule evaluation (including any
// inline actions) held up this ingest goroutine, measured from e0 (the
// caller's post-ingest timestamp, when on) — lands in the node's
// pipeline span and a striped histogram.
//
//cwx:hotpath
func (s *Server) observe(nodeName string, rec *nodeRec, snap map[string]float64, e0 time.Time, on bool, trace uint64) {
	if snap == nil {
		return
	}
	var dwell time.Duration
	if on {
		s.engine.ObserveMap(nodeName, snap)
		dwell = time.Since(e0) //cwx:allow clockdet -- dwell measures real rule-evaluation cost, paired with HandleFrame's t1
		mEventsDwellNs.ObserveAt(int(rec.shard), int64(dwell))
		rec.span.RecordTraced(telemetry.StageEvents, dwell, int64(len(snap)), trace)
	} else {
		s.engine.ObserveMap(nodeName, snap)
	}
	if trace != 0 {
		fjournal.Append(int(rec.shard), flight.Entry{Kind: flight.KindStage, Stage: uint8(telemetry.StageEvents), Node: rec.fsym, Trace: trace, TimeNs: int64(s.now()), A: int64(dwell), B: int64(len(snap))})
	}
	clear(snap)
	samplePool.Put(snap)
}

// ProbeConnectivity runs the server-side UDP-echo connectivity sweep
// (§5.1: "the UDP echo port is used to ensure network connectivity").
// Unlike agent data this is measured *at* the server, so it is the one
// monitor value that keeps arriving for a dead node — which is exactly
// what lets an event rule like "net.echo.ok < 1 -> power-cycle" heal a
// wedged node automatically. The probe result does not refresh the node's
// lastSeen: only agent data proves the OS is alive.
func (s *Server) ProbeConnectivity(probe func(node string) bool) {
	now := s.now()
	for _, name := range s.NodeNames() {
		ok := probe(name)
		v := consolidate.NumValue(probeMetric, consolidate.Dynamic, 0)
		if ok {
			v.Num = 1
		}
		rec := s.node(name)
		rec.mu.Lock()
		old, had := rec.values[v.Name]
		changed := !had || !old.Equal(v)
		rec.values[v.Name] = v
		rec.sample[v.Name] = v.Num
		s.hist.Append(name, v.Name, now, v.Num)
		snap := s.observationSnapshot(rec)
		rec.mu.Unlock()
		s.bumpIngest(rec.shard, now)
		if u := s.uplink.Load(); u != nil && changed {
			// Probe flips are change-gated so a healthy subtree's sweep adds
			// zero uplink traffic (per-hop suppression holds server-side too).
			u.noteValue(name, probeMetric)
		}
		on := telemetry.On()
		var e0 time.Time
		if on {
			e0 = time.Now() //cwx:allow clockdet -- events-dwell telemetry; probe scheduling itself uses s.now
		}
		s.observe(name, rec, snap, e0, on, 0)
	}
}

// allRecs collects every record across the stripes (unsorted). Each
// stripe is only read-locked for the duration of its own scan, so ingest
// proceeds on the other stripes meanwhile.
func (s *Server) allRecs() []*nodeRec {
	out := make([]*nodeRec, 0, 64)
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		for _, rec := range sh.nodes {
			out = append(out, rec)
		}
		sh.mu.RUnlock()
	}
	return out
}

// NodeNames returns all registered nodes, sorted.
func (s *Server) NodeNames() []string {
	recs := s.allRecs()
	out := make([]string, 0, len(recs))
	for _, rec := range recs {
		out = append(out, rec.name)
	}
	sort.Strings(out)
	return out
}

// NodeValue returns a node's current value for a metric.
func (s *Server) NodeValue(nodeName, metric string) (consolidate.Value, bool) {
	rec, ok := s.lookup(nodeName)
	if !ok {
		return consolidate.Value{}, false
	}
	rec.mu.RLock()
	defer rec.mu.RUnlock()
	v, ok := rec.values[metric]
	return v, ok
}

// NodeValues returns a sorted snapshot of a node's current values.
func (s *Server) NodeValues(nodeName string) []consolidate.Value {
	rec, ok := s.lookup(nodeName)
	if !ok {
		return nil
	}
	rec.mu.RLock()
	out := make([]consolidate.Value, 0, len(rec.values))
	for _, v := range rec.values {
		out = append(out, v)
	}
	rec.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Status renders the monitoring screen rows. It answers from the serving
// plane's generation-gated snapshot: a hit is a lock-free atomic load
// sharing one immutable row slice (read-only to callers) across every
// reader, rebuilt only when ingest moved the generation or a liveness
// deadline passed. Down transitions are counted inside the rebuild, so
// a node seen alive that falls silent past DownAfter still bumps the
// detection counter exactly once per outage.
//
//cwx:hotpath
func (s *Server) Status() []NodeStatus {
	return s.plane.statusSnapshot().rows
}

// --- ICE Box fronting ------------------------------------------------------------

// findPort locates the ICE Box and port controlling a node.
func (s *Server) findPort(nodeName string) (*icebox.Box, int, error) {
	s.mu.Lock()
	boxes := append([]*icebox.Box(nil), s.boxes...)
	s.mu.Unlock()
	for _, b := range boxes {
		if port, ok := b.FindPort(nodeName); ok {
			return b, port, nil
		}
	}
	return nil, 0, fmt.Errorf("core: no ICE Box port for node %s", nodeName)
}

// PowerOn energizes a node's outlet.
func (s *Server) PowerOn(nodeName string) error {
	b, port, err := s.findPort(nodeName)
	if err != nil {
		return err
	}
	return b.PowerOn(port)
}

// PowerOff cuts a node's outlet.
func (s *Server) PowerOff(nodeName string) error {
	b, port, err := s.findPort(nodeName)
	if err != nil {
		return err
	}
	return b.PowerOff(port)
}

// PowerCycle cycles a node's outlet.
func (s *Server) PowerCycle(nodeName string) error {
	b, port, err := s.findPort(nodeName)
	if err != nil {
		return err
	}
	return b.PowerCycle(port)
}

// Reset pulses a node's reset line.
func (s *Server) Reset(nodeName string) error {
	b, port, err := s.findPort(nodeName)
	if err != nil {
		return err
	}
	return b.Reset(port)
}

// Console returns a node's post-mortem serial buffer.
func (s *Server) Console(nodeName string) ([]byte, error) {
	b, port, err := s.findPort(nodeName)
	if err != nil {
		return nil, err
	}
	return b.Console(port)
}

// SetCloner installs the disk-cloning backend invoked by the control
// protocol's "clone" request. The callback returns a human-readable
// summary. In the simulation it is Sim.Clone; a hardware deployment would
// boot targets into the cloning environment here.
func (s *Server) SetCloner(fn func(imageID string, nodes []string) (string, error)) {
	s.mu.Lock()
	s.cloner = fn
	s.mu.Unlock()
}

// CloneNodes runs the installed cloner.
func (s *Server) CloneNodes(imageID string, nodes []string) (string, error) {
	s.mu.Lock()
	fn := s.cloner
	s.mu.Unlock()
	if fn == nil {
		return "", fmt.Errorf("core: no cloning backend installed")
	}
	if _, ok := s.images.Get(imageID); !ok {
		return "", fmt.Errorf("core: unknown image %s (see 'images')", imageID)
	}
	return fn(imageID, nodes)
}

// RegisterFirmware records which firmware a node runs so the remote BIOS
// management commands (§2) can reach it.
func (s *Server) RegisterFirmware(nodeName string, fw firmware.Firmware) {
	s.mu.Lock()
	s.firmware[nodeName] = fw
	s.mu.Unlock()
}

// biosFor returns a node's remotely-manageable firmware. A legacy BIOS is
// the paper's §2 pain point: "imagine walking around with a keyboard and
// monitor to every one of the 1000 nodes" — it cannot be managed here.
func (s *Server) biosFor(nodeName string) (*firmware.LinuxBIOS, error) {
	s.mu.Lock()
	fw, ok := s.firmware[nodeName]
	s.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("core: no firmware registered for %s", nodeName)
	}
	lb, ok := fw.(*firmware.LinuxBIOS)
	if !ok {
		return nil, fmt.Errorf("core: %s runs %s, which is not remotely configurable (bring a keyboard and monitor)", nodeName, fw.Name())
	}
	return lb, nil
}

// BIOSSettings dumps a node's firmware settings.
func (s *Server) BIOSSettings(nodeName string) ([]string, error) {
	lb, err := s.biosFor(nodeName)
	if err != nil {
		return nil, err
	}
	return append([]string{"version=" + lb.Version()}, lb.Settings()...), nil
}

// BIOSSet changes a firmware setting remotely; it becomes active "as soon
// as the nodes are rebooted" (§2).
func (s *Server) BIOSSet(nodeName, key, value string) error {
	lb, err := s.biosFor(nodeName)
	if err != nil {
		return err
	}
	lb.Set(key, value)
	return nil
}

// BIOSFlash installs a new firmware release on a node remotely.
func (s *Server) BIOSFlash(nodeName, version string) error {
	lb, err := s.biosFor(nodeName)
	if err != nil {
		return err
	}
	lb.Flash(version)
	return nil
}

// serverActuator adapts the server's ICE Box fronting to events.Actuator.
// Halt is delivered as a power-off: with the OS possibly wedged, the
// outlet is the only reliable lever.
type serverActuator struct{ s *Server }

func (a serverActuator) PowerOff(node string) error   { return a.s.PowerOff(node) }
func (a serverActuator) PowerCycle(node string) error { return a.s.PowerCycle(node) }
func (a serverActuator) Reset(node string) error      { return a.s.Reset(node) }
func (a serverActuator) Halt(node string) error       { return a.s.PowerOff(node) }
