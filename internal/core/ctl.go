package core

import (
	"bufio"
	"fmt"
	"net"
	"slices"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"clusterworx/internal/dashboard"
	"clusterworx/internal/flight"
	"clusterworx/internal/serve"
	"clusterworx/internal/telemetry"
)

// This file implements the control protocol the CLI (and, in the original
// product, the Java GUI tier) speaks to the server: one request line, one
// response block terminated by a lone "." line. The first response line is
// "OK" or "ERR <reason>".
//
// Requests:
//
//	ping
//	status                      monitoring screen rows
//	nodes                       registered node names
//	values <node>               current monitor values
//	value <node> <metric>       one monitor value
//	history <node> <metric> [n] most recent n points (default 20)
//	trend <node> <metric>       least-squares slope per hour
//	power on|off|cycle <node>   outlet control via the node's ICE Box
//	reset <node>                reset line
//	console <node>              post-mortem serial buffer
//	rules                       event rules
//	eventlog [n]                most recent firings
//	images                      image library
//	chart <node> <metric>       ASCII historical graph (the GUI view)
//	spark <node> <metric>       one-line sparkline
//	compare <metric>            per-node stats + mean bars
//	efficiency                  cluster utilization report
//	correlate <node> <m1> <m2>  Pearson correlation of two metrics
//	bios settings|set|flash ... remote LinuxBIOS management (§2)
//	clone <imageID> <node...>   multicast-clone an image to nodes (§4)
//	telemetry                   self-monitoring metrics (Prometheus text)
//	trace [-json] [node]        latest pipeline span breakdown per node,
//	                            with the worst-traced-ingest exemplar link
//	journal [-json] [since <seq>]  flight-recorder ring: structured records
//	                            of traced hops, gaps, resyncs, firings,
//	                            retries, gate rebuilds (internal/flight)
//	flight [-json] <trace|node> span tree of one sampled frame: every
//	                            journal record under a trace id (or the
//	                            node's most recent trace)
//	selfmon                     meta-monitor series panel (sparklines)
//	histmem [n]                 history memory ledger (top n series, default 20)
//	sync                        per-node delta-protocol sync state
//	watch <verb> [args]         subscribe to a view; the server pushes a
//	                            block whenever it changes (streaming
//	                            connections only). Key-sorted views
//	                            (status, nodes, values, compare, selfmon,
//	                            sync, journal) push change-only "UPDATE" diffs;
//	                            efficiency and chart push "REFRESH" full
//	                            renderings; after a slow-consumer overflow
//	                            the next push is a full "RESYNC". Send
//	                            "quit" to stop watching.
//
// Read verbs answer from the serving plane (internal/serve): renderings
// are cached behind generation gates and a hit returns the prebuilt
// string without parsing, locking, or allocating. HandleCtlUncached
// bypasses the plane (the benchmarks' ablation and the differential
// test's oracle).

// ServeCtl accepts control connections until the listener closes.
func (s *Server) ServeCtl(l net.Listener) error {
	var wg sync.WaitGroup
	defer wg.Wait()
	for {
		conn, err := l.Accept()
		if err != nil {
			return err
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer conn.Close()
			s.serveCtlConn(conn)
		}()
	}
}

func (s *Server) serveCtlConn(conn net.Conn) {
	sc := bufio.NewScanner(conn)
	sc.Buffer(make([]byte, 4096), 1<<20)
	w := bufio.NewWriter(conn)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.EqualFold(line, "quit") {
			fmt.Fprintf(w, "OK bye\n.\n")
			w.Flush()
			return
		}
		if f := strings.Fields(line); strings.EqualFold(f[0], "watch") {
			if s.serveWatch(sc, w, strings.Join(f[1:], " ")) {
				return // the watch stream consumed the connection
			}
			continue // rejected with an ERR block; keep serving requests
		}
		resp := s.HandleCtl(line)
		fmt.Fprintf(w, "%s\n.\n", strings.ReplaceAll(resp, "\n.", "\n.."))
		w.Flush()
	}
}

// watchMode classifies a verb for watching: diffable views are key-sorted
// line lists (first field a stable node/metric key) pushed as change-only
// diffs; refresh views (efficiency's value-sorted ranking, chart's grid)
// are re-pushed wholesale when their bytes change.
func watchMode(verb string) (diffable, ok bool) {
	switch verb {
	case "status", "nodes", "values", "compare", "selfmon", "sync", "journal":
		return true, true
	case "efficiency", "chart":
		return false, true
	}
	return false, false
}

// ctlBody splits a response into its payload lines — everything below
// the "OK" status line (ERR text is its own payload, so a view that
// starts failing mid-watch still streams coherently).
func ctlBody(resp string) []string {
	lines := strings.Split(resp, "\n")
	if lines[0] == "OK" || strings.HasPrefix(lines[0], "OK ") {
		return lines[1:]
	}
	return lines
}

// serveWatch runs one watch subscription until the client sends "quit"
// or hangs up. It reports false when the request was rejected (an ERR
// block has been written and the request loop should continue).
func (s *Server) serveWatch(sc *bufio.Scanner, w *bufio.Writer, inner string) bool {
	writeBlock := func(block string) bool {
		_, err := fmt.Fprintf(w, "%s\n.\n", strings.ReplaceAll(block, "\n.", "\n.."))
		if err == nil {
			err = w.Flush()
		}
		return err == nil
	}
	fields := strings.Fields(inner)
	if len(fields) == 0 {
		writeBlock("ERR usage: watch <verb> [args]")
		return false
	}
	diffable, ok := watchMode(strings.ToLower(fields[0]))
	if !ok {
		writeBlock("ERR verb " + fields[0] + " is not watchable")
		return false
	}
	// Subscribe before rendering the initial snapshot: a generation bump
	// racing the snapshot then queues a notification and the first loop
	// turn re-renders, so the client can never be left one change behind.
	hub := s.plane.watchHub()
	sub := hub.Register()
	defer hub.Unregister(sub)
	first := s.HandleCtl(inner)
	if strings.HasPrefix(first, "ERR") {
		writeBlock(first)
		return false
	}
	// The subscription outlives the request loop; watch the connection
	// for EOF or a "quit" line from a goroutine that owns the scanner
	// from here on.
	connStop := make(chan struct{})
	go func() {
		defer close(connStop)
		for sc.Scan() {
			if strings.EqualFold(strings.TrimSpace(sc.Text()), "quit") {
				return
			}
		}
	}()
	last := ctlBody(first)
	if !writeBlock(watchBlock("OK watch "+inner, s.Generation(), last)) {
		return true
	}
	for {
		gen, lost, ok := sub.Next(connStop)
		if !ok {
			return true
		}
		cur := ctlBody(s.HandleCtl(inner))
		var kind string
		var payload []string
		switch {
		case lost:
			// Continuity lost (bounded queue overflowed): the client's
			// view may have silently diverged, push the full rendering.
			kind, payload = serve.BlockResync, cur
			serve.NoteWatchResync()
			fjournal.Append(0, flight.Entry{Kind: flight.KindWatchResync, Detail: fjournal.Sym(strings.ToLower(fields[0])), TimeNs: int64(s.now())})
		case !diffable:
			if slices.Equal(last, cur) {
				continue
			}
			kind, payload = serve.BlockRefresh, cur
		default:
			ops := serve.Diff(last, cur)
			if ops == nil {
				continue // generation moved but this view did not
			}
			kind, payload = serve.BlockUpdate, ops
		}
		last = cur
		if !writeBlock(watchBlock(kind, gen, payload)) {
			return true
		}
		serve.NoteWatchPush()
	}
}

// watchBlock assembles one pushed block: a header carrying the
// generation, then the payload lines.
func watchBlock(head string, gen uint64, payload []string) string {
	var b strings.Builder
	b.WriteString(head)
	b.WriteString(" gen=")
	b.WriteString(strconv.FormatUint(gen, 10))
	for _, l := range payload {
		b.WriteByte('\n')
		b.WriteString(l)
	}
	return b.String()
}

// HandleCtl executes one control request and returns the response block
// (without the terminating dot line). Read verbs answer from the serving
// plane: the exact request line is tried against the rendering cache
// before any parsing, so the steady-state hit costs a map read and an
// atomic load — no fields split, no allocation.
//
//cwx:hotpath
func (s *Server) HandleCtl(line string) string {
	if resp, ok := s.plane.cached(line); ok {
		return resp
	}
	return s.handleCtl(line, true)
}

// HandleCtlUncached executes one control request with the serving plane
// bypassed: every rendering is rebuilt from the live registry and
// history. It is the benchmarks' ablation arm and the differential
// test's oracle — cached answers must match it byte for byte.
func (s *Server) HandleCtlUncached(line string) string {
	return s.handleCtl(line, false)
}

func (s *Server) handleCtl(line string, cacheable bool) string {
	fields := strings.Fields(line)
	if len(fields) == 0 {
		return "ERR empty request"
	}
	cmd := strings.ToLower(fields[0])
	switch cmd {
	case "ping":
		return "OK pong"

	case "status":
		if cacheable {
			return s.plane.statusSnapshot().rendered
		}
		return s.plane.buildStatus().rendered

	case "nodes":
		if cacheable {
			return s.plane.nodes.Get()
		}
		return s.plane.buildNodes()

	case "values":
		if len(fields) != 2 {
			return "ERR usage: values <node>"
		}
		if cacheable {
			if g := s.plane.ensureKeyed(line, cmd, fields); g != nil {
				return g.Get()
			}
		}
		return s.plane.buildValues(fields[1])

	case "value":
		if len(fields) != 3 {
			return "ERR usage: value <node> <metric>"
		}
		v, ok := s.NodeValue(fields[1], fields[2])
		if !ok {
			return fmt.Sprintf("ERR no value %s on %s", fields[2], fields[1])
		}
		return "OK " + v.Render()

	case "history":
		if len(fields) < 3 || len(fields) > 4 {
			return "ERR usage: history <node> <metric> [n]"
		}
		n := 20
		if len(fields) == 4 {
			parsed, err := strconv.Atoi(fields[3])
			if err != nil || parsed <= 0 {
				return "ERR bad count " + fields[3]
			}
			n = parsed
		}
		series := s.hist.Series(fields[1], fields[2])
		if series == nil {
			return fmt.Sprintf("ERR no history for %s %s", fields[1], fields[2])
		}
		pts := series.Range(0, 1<<62)
		if len(pts) > n {
			pts = pts[len(pts)-n:]
		}
		var b strings.Builder
		b.WriteString("OK")
		for _, p := range pts {
			fmt.Fprintf(&b, "\n%.3f %g", p.T.Seconds(), p.V)
		}
		return b.String()

	case "trend":
		if len(fields) != 3 {
			return "ERR usage: trend <node> <metric>"
		}
		series := s.hist.Series(fields[1], fields[2])
		if series == nil {
			return fmt.Sprintf("ERR no history for %s %s", fields[1], fields[2])
		}
		slope, ok := series.Trend(0, 1<<62)
		if !ok {
			return "ERR not enough points"
		}
		return fmt.Sprintf("OK %g per hour", slope)

	case "power":
		if len(fields) != 3 {
			return "ERR usage: power on|off|cycle <node>"
		}
		var err error
		switch strings.ToLower(fields[1]) {
		case "on":
			err = s.PowerOn(fields[2])
		case "off":
			err = s.PowerOff(fields[2])
		case "cycle":
			err = s.PowerCycle(fields[2])
		default:
			return "ERR unknown power verb " + fields[1]
		}
		if err != nil {
			return "ERR " + err.Error()
		}
		return fmt.Sprintf("OK %s power %s", fields[2], strings.ToLower(fields[1]))

	case "reset":
		if len(fields) != 2 {
			return "ERR usage: reset <node>"
		}
		if err := s.Reset(fields[1]); err != nil {
			return "ERR " + err.Error()
		}
		return "OK " + fields[1] + " reset"

	case "console":
		if len(fields) != 2 {
			return "ERR usage: console <node>"
		}
		data, err := s.Console(fields[1])
		if err != nil {
			return "ERR " + err.Error()
		}
		return "OK console dump follows\n" + string(data)

	case "rules":
		var b strings.Builder
		b.WriteString("OK")
		for _, r := range s.engine.Rules() {
			fmt.Fprintf(&b, "\n%s", r)
		}
		return b.String()

	case "eventlog":
		n := 20
		if len(fields) == 2 {
			parsed, err := strconv.Atoi(fields[1])
			if err != nil || parsed <= 0 {
				return "ERR bad count " + fields[1]
			}
			n = parsed
		}
		log := s.engine.Log()
		if len(log) > n {
			log = log[len(log)-n:]
		}
		var b strings.Builder
		b.WriteString("OK")
		for _, f := range log {
			fmt.Fprintf(&b, "\n%.1fs %s %s value=%g action=%s", f.At.Seconds(), f.Rule, f.Node, f.Value, f.Action)
			if f.ActionErr != nil {
				fmt.Fprintf(&b, " error=%q", f.ActionErr)
			}
		}
		return b.String()

	case "images":
		ids := s.images.List()
		sort.Strings(ids)
		return "OK\n" + strings.Join(ids, "\n")

	case "chart":
		if len(fields) != 3 {
			return "ERR usage: chart <node> <metric>"
		}
		if cacheable {
			if g := s.plane.ensureKeyed(line, cmd, fields); g != nil {
				return g.Get()
			}
		}
		return s.plane.buildChart(fields[1], fields[2])

	case "spark":
		if len(fields) != 3 {
			return "ERR usage: spark <node> <metric>"
		}
		if cacheable {
			if g := s.plane.ensureKeyed(line, cmd, fields); g != nil {
				return g.Get()
			}
		}
		return s.plane.buildSpark(fields[1], fields[2])

	case "compare":
		if len(fields) != 2 {
			return "ERR usage: compare <metric>"
		}
		if cacheable {
			if g := s.plane.ensureKeyed(line, cmd, fields); g != nil {
				return g.Get()
			}
		}
		return s.plane.buildCompare(fields[1])

	case "correlate":
		if len(fields) != 4 {
			return "ERR usage: correlate <node> <metric1> <metric2>"
		}
		r, err := dashboard.Correlate(s.hist, fields[1], fields[2], fields[3], 0, s.now())
		if err != nil {
			return "ERR " + err.Error()
		}
		return fmt.Sprintf("OK r=%.3f", r)

	case "clone":
		if len(fields) < 3 {
			return "ERR usage: clone <imageID> <node> [node...]"
		}
		summary, err := s.CloneNodes(fields[1], fields[2:])
		if err != nil {
			return "ERR " + err.Error()
		}
		return "OK " + summary

	case "efficiency":
		if cacheable {
			return s.plane.efficiency.Get()
		}
		return s.plane.buildEfficiency()

	case "telemetry":
		var b strings.Builder
		b.WriteString("OK\n")
		s.WriteTelemetry(&b) //nolint:errcheck // strings.Builder cannot fail
		return strings.TrimRight(b.String(), "\n")

	case "trace":
		args, asJSON := stripJSONFlag(fields[1:])
		if len(args) > 1 {
			return "ERR usage: trace [-json] [node]"
		}
		var snaps []telemetry.SpanSnapshot
		if len(args) == 1 {
			snap, ok := telemetry.Spans.Lookup(args[0])
			if !ok {
				return "ERR no trace for node " + args[0]
			}
			snaps = []telemetry.SpanSnapshot{snap}
		} else {
			snaps = telemetry.Spans.Snapshot()
		}
		if asJSON {
			return ctlTraceJSON(snaps)
		}
		if len(snaps) == 0 {
			return "OK (no spans recorded)"
		}
		return "OK\n" + strings.TrimRight(renderSpans(snaps), "\n") + traceExemplarFooter()

	case "journal":
		return s.ctlJournal(fields[1:])

	case "flight":
		return s.ctlFlight(fields[1:])

	case "sync":
		if cacheable {
			return s.plane.syncv.Get()
		}
		return s.plane.buildSync()

	case "selfmon":
		if cacheable {
			return s.plane.selfmon.Get()
		}
		return s.plane.buildSelfmon()

	case "histmem":
		n := 20
		if len(fields) == 2 {
			parsed, err := strconv.Atoi(fields[1])
			if err != nil || parsed < 1 {
				return "ERR usage: histmem [n]"
			}
			n = parsed
		} else if len(fields) > 2 {
			return "ERR usage: histmem [n]"
		}
		out := dashboard.HistoryFootprint(s.hist, n)
		return "OK\n" + strings.TrimRight(out, "\n")

	case "bios":
		if len(fields) < 3 {
			return "ERR usage: bios settings|set|flash <node> [...]"
		}
		switch strings.ToLower(fields[1]) {
		case "settings":
			settings, err := s.BIOSSettings(fields[2])
			if err != nil {
				return "ERR " + err.Error()
			}
			return "OK\n" + strings.Join(settings, "\n")
		case "set":
			if len(fields) != 5 {
				return "ERR usage: bios set <node> <key> <value>"
			}
			if err := s.BIOSSet(fields[2], fields[3], fields[4]); err != nil {
				return "ERR " + err.Error()
			}
			return "OK set; active after next reboot"
		case "flash":
			if len(fields) != 4 {
				return "ERR usage: bios flash <node> <version>"
			}
			if err := s.BIOSFlash(fields[2], fields[3]); err != nil {
				return "ERR " + err.Error()
			}
			return "OK flashed; active after next reboot"
		default:
			return "ERR unknown bios verb " + fields[1]
		}

	case "watch":
		return "ERR watch needs a streaming connection (use cwxctl watch)"

	default:
		return "ERR unknown request " + cmd
	}
}

// CtlClient is the client side of the control protocol.
type CtlClient struct {
	conn net.Conn
	br   *bufio.Reader
}

// DialCtl connects to a server's control port.
func DialCtl(addr string, timeout time.Duration) (*CtlClient, error) {
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, err
	}
	return &CtlClient{conn: conn, br: bufio.NewReader(conn)}, nil
}

// Send writes one request line without waiting for a response. Watch
// clients use it to enter streaming mode (and to send the "quit" that
// leaves it); request/response callers use Do.
func (c *CtlClient) Send(req string) error {
	_, err := fmt.Fprintf(c.conn, "%s\n", req)
	return err
}

// ReadBlock reads one dot-terminated block, raw: pushed watch blocks and
// "ERR" responses are returned as content, not converted to errors.
func (c *CtlClient) ReadBlock() (string, error) {
	var b strings.Builder
	for {
		line, err := c.br.ReadString('\n')
		if err != nil {
			return "", err
		}
		line = strings.TrimRight(line, "\n")
		if line == "." {
			break
		}
		if strings.HasPrefix(line, "..") {
			line = line[1:]
		}
		if b.Len() > 0 {
			b.WriteByte('\n')
		}
		b.WriteString(line)
	}
	return b.String(), nil
}

// Do sends one request and returns the response body (first line "OK..."
// stripped of nothing — callers get the raw block minus the dot
// terminator). An "ERR" first line is returned as an error.
func (c *CtlClient) Do(req string) (string, error) {
	if err := c.Send(req); err != nil {
		return "", err
	}
	resp, err := c.ReadBlock()
	if err != nil {
		return "", err
	}
	if strings.HasPrefix(resp, "ERR") {
		return "", fmt.Errorf("core: server: %s", strings.TrimPrefix(strings.TrimPrefix(resp, "ERR"), " "))
	}
	return resp, nil
}

// Close ends the session.
func (c *CtlClient) Close() error {
	fmt.Fprintf(c.conn, "quit\n") //nolint:errcheck // best-effort goodbye
	return c.conn.Close()
}
