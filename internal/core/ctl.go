package core

import (
	"bufio"
	"fmt"
	"net"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"clusterworx/internal/dashboard"
	"clusterworx/internal/telemetry"
)

// This file implements the control protocol the CLI (and, in the original
// product, the Java GUI tier) speaks to the server: one request line, one
// response block terminated by a lone "." line. The first response line is
// "OK" or "ERR <reason>".
//
// Requests:
//
//	ping
//	status                      monitoring screen rows
//	nodes                       registered node names
//	values <node>               current monitor values
//	value <node> <metric>       one monitor value
//	history <node> <metric> [n] most recent n points (default 20)
//	trend <node> <metric>       least-squares slope per hour
//	power on|off|cycle <node>   outlet control via the node's ICE Box
//	reset <node>                reset line
//	console <node>              post-mortem serial buffer
//	rules                       event rules
//	eventlog [n]                most recent firings
//	images                      image library
//	chart <node> <metric>       ASCII historical graph (the GUI view)
//	spark <node> <metric>       one-line sparkline
//	compare <metric>            per-node stats + mean bars
//	efficiency                  cluster utilization report
//	correlate <node> <m1> <m2>  Pearson correlation of two metrics
//	bios settings|set|flash ... remote LinuxBIOS management (§2)
//	clone <imageID> <node...>   multicast-clone an image to nodes (§4)
//	telemetry                   self-monitoring metrics (Prometheus text)
//	trace [node]                latest pipeline span breakdown per node
//	selfmon                     meta-monitor series panel (sparklines)
//	histmem [n]                 history memory ledger (top n series, default 20)
//	sync                        per-node delta-protocol sync state

// ServeCtl accepts control connections until the listener closes.
func (s *Server) ServeCtl(l net.Listener) error {
	var wg sync.WaitGroup
	defer wg.Wait()
	for {
		conn, err := l.Accept()
		if err != nil {
			return err
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer conn.Close()
			s.serveCtlConn(conn)
		}()
	}
}

func (s *Server) serveCtlConn(conn net.Conn) {
	sc := bufio.NewScanner(conn)
	sc.Buffer(make([]byte, 4096), 1<<20)
	w := bufio.NewWriter(conn)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.EqualFold(line, "quit") {
			fmt.Fprintf(w, "OK bye\n.\n")
			w.Flush()
			return
		}
		resp := s.HandleCtl(line)
		fmt.Fprintf(w, "%s\n.\n", strings.ReplaceAll(resp, "\n.", "\n.."))
		w.Flush()
	}
}

// HandleCtl executes one control request and returns the response block
// (without the terminating dot line).
func (s *Server) HandleCtl(line string) string {
	fields := strings.Fields(line)
	if len(fields) == 0 {
		return "ERR empty request"
	}
	cmd := strings.ToLower(fields[0])
	switch cmd {
	case "ping":
		return "OK pong"

	case "status":
		var b strings.Builder
		b.WriteString("OK")
		for _, st := range s.Status() {
			state := "DOWN"
			if st.Alive {
				state = "up"
			}
			fmt.Fprintf(&b, "\n%-12s %-5s values=%-3d load=%-6.2f temp=%-6.1f mem%%=%.1f",
				st.Name, state, st.Values, st.Load1, st.TempC, st.MemPct)
		}
		return b.String()

	case "nodes":
		return "OK\n" + strings.Join(s.NodeNames(), "\n")

	case "values":
		if len(fields) != 2 {
			return "ERR usage: values <node>"
		}
		vals := s.NodeValues(fields[1])
		if vals == nil {
			return "ERR unknown node " + fields[1]
		}
		var b strings.Builder
		b.WriteString("OK")
		for _, v := range vals {
			fmt.Fprintf(&b, "\n%-28s %s", v.Name, v.Render())
		}
		return b.String()

	case "value":
		if len(fields) != 3 {
			return "ERR usage: value <node> <metric>"
		}
		v, ok := s.NodeValue(fields[1], fields[2])
		if !ok {
			return fmt.Sprintf("ERR no value %s on %s", fields[2], fields[1])
		}
		return "OK " + v.Render()

	case "history":
		if len(fields) < 3 || len(fields) > 4 {
			return "ERR usage: history <node> <metric> [n]"
		}
		n := 20
		if len(fields) == 4 {
			parsed, err := strconv.Atoi(fields[3])
			if err != nil || parsed <= 0 {
				return "ERR bad count " + fields[3]
			}
			n = parsed
		}
		series := s.hist.Series(fields[1], fields[2])
		if series == nil {
			return fmt.Sprintf("ERR no history for %s %s", fields[1], fields[2])
		}
		pts := series.Range(0, 1<<62)
		if len(pts) > n {
			pts = pts[len(pts)-n:]
		}
		var b strings.Builder
		b.WriteString("OK")
		for _, p := range pts {
			fmt.Fprintf(&b, "\n%.3f %g", p.T.Seconds(), p.V)
		}
		return b.String()

	case "trend":
		if len(fields) != 3 {
			return "ERR usage: trend <node> <metric>"
		}
		series := s.hist.Series(fields[1], fields[2])
		if series == nil {
			return fmt.Sprintf("ERR no history for %s %s", fields[1], fields[2])
		}
		slope, ok := series.Trend(0, 1<<62)
		if !ok {
			return "ERR not enough points"
		}
		return fmt.Sprintf("OK %g per hour", slope)

	case "power":
		if len(fields) != 3 {
			return "ERR usage: power on|off|cycle <node>"
		}
		var err error
		switch strings.ToLower(fields[1]) {
		case "on":
			err = s.PowerOn(fields[2])
		case "off":
			err = s.PowerOff(fields[2])
		case "cycle":
			err = s.PowerCycle(fields[2])
		default:
			return "ERR unknown power verb " + fields[1]
		}
		if err != nil {
			return "ERR " + err.Error()
		}
		return fmt.Sprintf("OK %s power %s", fields[2], strings.ToLower(fields[1]))

	case "reset":
		if len(fields) != 2 {
			return "ERR usage: reset <node>"
		}
		if err := s.Reset(fields[1]); err != nil {
			return "ERR " + err.Error()
		}
		return "OK " + fields[1] + " reset"

	case "console":
		if len(fields) != 2 {
			return "ERR usage: console <node>"
		}
		data, err := s.Console(fields[1])
		if err != nil {
			return "ERR " + err.Error()
		}
		return "OK console dump follows\n" + string(data)

	case "rules":
		var b strings.Builder
		b.WriteString("OK")
		for _, r := range s.engine.Rules() {
			fmt.Fprintf(&b, "\n%s", r)
		}
		return b.String()

	case "eventlog":
		n := 20
		if len(fields) == 2 {
			parsed, err := strconv.Atoi(fields[1])
			if err != nil || parsed <= 0 {
				return "ERR bad count " + fields[1]
			}
			n = parsed
		}
		log := s.engine.Log()
		if len(log) > n {
			log = log[len(log)-n:]
		}
		var b strings.Builder
		b.WriteString("OK")
		for _, f := range log {
			fmt.Fprintf(&b, "\n%.1fs %s %s value=%g action=%s", f.At.Seconds(), f.Rule, f.Node, f.Value, f.Action)
			if f.ActionErr != nil {
				fmt.Fprintf(&b, " error=%q", f.ActionErr)
			}
		}
		return b.String()

	case "images":
		ids := s.images.List()
		sort.Strings(ids)
		return "OK\n" + strings.Join(ids, "\n")

	case "chart":
		if len(fields) != 3 {
			return "ERR usage: chart <node> <metric>"
		}
		series := s.hist.Series(fields[1], fields[2])
		if series == nil {
			return fmt.Sprintf("ERR no history for %s %s", fields[1], fields[2])
		}
		last, _ := series.Last()
		return "OK " + fields[1] + " " + fields[2] + "\n" +
			strings.TrimRight(dashboard.Chart(series, 0, last.T, 60, 12), "\n")

	case "spark":
		if len(fields) != 3 {
			return "ERR usage: spark <node> <metric>"
		}
		series := s.hist.Series(fields[1], fields[2])
		if series == nil {
			return fmt.Sprintf("ERR no history for %s %s", fields[1], fields[2])
		}
		last, _ := series.Last()
		return "OK " + dashboard.Sparkline(series, 0, last.T, 40)

	case "compare":
		if len(fields) != 2 {
			return "ERR usage: compare <metric>"
		}
		out := dashboard.CompareNodes(s.hist, fields[1], 0, s.now(), 30)
		return "OK\n" + strings.TrimRight(out, "\n")

	case "correlate":
		if len(fields) != 4 {
			return "ERR usage: correlate <node> <metric1> <metric2>"
		}
		r, err := dashboard.Correlate(s.hist, fields[1], fields[2], fields[3], 0, s.now())
		if err != nil {
			return "ERR " + err.Error()
		}
		return fmt.Sprintf("OK r=%.3f", r)

	case "clone":
		if len(fields) < 3 {
			return "ERR usage: clone <imageID> <node> [node...]"
		}
		summary, err := s.CloneNodes(fields[1], fields[2:])
		if err != nil {
			return "ERR " + err.Error()
		}
		return "OK " + summary

	case "efficiency":
		out := dashboard.EfficiencyReport(s.hist, 0, s.now(), 30)
		return "OK\n" + strings.TrimRight(out, "\n")

	case "telemetry":
		var b strings.Builder
		b.WriteString("OK\n")
		s.WriteTelemetry(&b) //nolint:errcheck // strings.Builder cannot fail
		return strings.TrimRight(b.String(), "\n")

	case "trace":
		if len(fields) > 2 {
			return "ERR usage: trace [node]"
		}
		if len(fields) == 2 {
			snap, ok := telemetry.Spans.Lookup(fields[1])
			if !ok {
				return "ERR no trace for node " + fields[1]
			}
			return "OK\n" + strings.TrimRight(renderSpans([]telemetry.SpanSnapshot{snap}), "\n")
		}
		snaps := telemetry.Spans.Snapshot()
		if len(snaps) == 0 {
			return "OK (no spans recorded)"
		}
		return "OK\n" + strings.TrimRight(renderSpans(snaps), "\n")

	case "sync":
		var b strings.Builder
		b.WriteString("OK")
		fmt.Fprintf(&b, "\n%-12s %8s %-8s %5s %5s %7s %5s",
			"node", "seq", "state", "gaps", "regr", "resyncs", "snaps")
		for _, st := range s.SyncStates() {
			state := "synced"
			if !st.Synced {
				state = "DIVERGED"
			}
			fmt.Fprintf(&b, "\n%-12s %8d %-8s %5d %5d %7d %5d",
				st.Node, st.Seq, state, st.Gaps, st.Regressions, st.ResyncReqs, st.Snapshots)
		}
		return b.String()

	case "selfmon":
		out := dashboard.TelemetryPanel(s.hist, MetaNodeName, 0, s.now(), 32)
		return "OK\n" + strings.TrimRight(out, "\n")

	case "histmem":
		n := 20
		if len(fields) == 2 {
			parsed, err := strconv.Atoi(fields[1])
			if err != nil || parsed < 1 {
				return "ERR usage: histmem [n]"
			}
			n = parsed
		} else if len(fields) > 2 {
			return "ERR usage: histmem [n]"
		}
		out := dashboard.HistoryFootprint(s.hist, n)
		return "OK\n" + strings.TrimRight(out, "\n")

	case "bios":
		if len(fields) < 3 {
			return "ERR usage: bios settings|set|flash <node> [...]"
		}
		switch strings.ToLower(fields[1]) {
		case "settings":
			settings, err := s.BIOSSettings(fields[2])
			if err != nil {
				return "ERR " + err.Error()
			}
			return "OK\n" + strings.Join(settings, "\n")
		case "set":
			if len(fields) != 5 {
				return "ERR usage: bios set <node> <key> <value>"
			}
			if err := s.BIOSSet(fields[2], fields[3], fields[4]); err != nil {
				return "ERR " + err.Error()
			}
			return "OK set; active after next reboot"
		case "flash":
			if len(fields) != 4 {
				return "ERR usage: bios flash <node> <version>"
			}
			if err := s.BIOSFlash(fields[2], fields[3]); err != nil {
				return "ERR " + err.Error()
			}
			return "OK flashed; active after next reboot"
		default:
			return "ERR unknown bios verb " + fields[1]
		}

	default:
		return "ERR unknown request " + cmd
	}
}

// CtlClient is the client side of the control protocol.
type CtlClient struct {
	conn net.Conn
	br   *bufio.Reader
}

// DialCtl connects to a server's control port.
func DialCtl(addr string, timeout time.Duration) (*CtlClient, error) {
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, err
	}
	return &CtlClient{conn: conn, br: bufio.NewReader(conn)}, nil
}

// Do sends one request and returns the response body (first line "OK..."
// stripped of nothing — callers get the raw block minus the dot
// terminator). An "ERR" first line is returned as an error.
func (c *CtlClient) Do(req string) (string, error) {
	if _, err := fmt.Fprintf(c.conn, "%s\n", req); err != nil {
		return "", err
	}
	var b strings.Builder
	for {
		line, err := c.br.ReadString('\n')
		if err != nil {
			return "", err
		}
		line = strings.TrimRight(line, "\n")
		if line == "." {
			break
		}
		if strings.HasPrefix(line, "..") {
			line = line[1:]
		}
		if b.Len() > 0 {
			b.WriteByte('\n')
		}
		b.WriteString(line)
	}
	resp := b.String()
	if strings.HasPrefix(resp, "ERR") {
		return "", fmt.Errorf("core: server: %s", strings.TrimPrefix(strings.TrimPrefix(resp, "ERR"), " "))
	}
	return resp, nil
}

// Close ends the session.
func (c *CtlClient) Close() error {
	fmt.Fprintf(c.conn, "quit\n") //nolint:errcheck // best-effort goodbye
	return c.conn.Close()
}
