package core

import (
	"errors"
	"math/rand"
	"sort"
	"sync/atomic"
	"time"

	"clusterworx/internal/clock"
	"clusterworx/internal/consolidate"
	"clusterworx/internal/flight"
	"clusterworx/internal/monitor"
	"clusterworx/internal/node"
	"clusterworx/internal/telemetry"
	"clusterworx/internal/transmit"
)

// Transport ships one change set from an agent to the server. In-process
// simulation wires it straight to Server.HandleValues; the network daemon
// wires it through the framed, compressed wire protocol.
//
// The values slice is backed by the consolidator's reusable scratch
// buffer (see Consolidator.Delta) and is only valid for the duration of
// the call: implementations must marshal or deliver it synchronously, and
// must copy it before retaining it or handing it to another goroutine
// (e.g. an asynchronous send queue).
type Transport func(nodeName string, values []consolidate.Value) error

// FrameTransport ships one sequenced wire frame from an agent to the
// server — the loss-tolerant §5.3.3 protocol. The same scratch-backing
// caveat as Transport applies to f.Values.
type FrameTransport func(f transmit.Frame) error

// AgentConfig configures a node agent.
type AgentConfig struct {
	Node *node.Node
	// Period is the consolidation tick (default one second; the paper's
	// pipeline benchmarks sample far faster, but one hertz is the
	// practical monitoring default).
	Period time.Duration
	// Heartbeat forces a transmission even with no changes, so the server
	// can distinguish "idle node" from "dead node" (default 5 s).
	Heartbeat time.Duration
	// Plugins is the optional administrator plug-in set.
	Plugins *monitor.PluginSet
	// Transport delivers change sets (the legacy unsequenced protocol).
	// Ignored when SendFrame is set.
	Transport Transport
	// SendFrame delivers sequenced frames. With it set the agent runs the
	// loss-tolerant protocol: per-frame sequence numbers, full-snapshot
	// resyncs on request (RequestResync), and a periodic anti-entropy
	// snapshot refresh.
	SendFrame FrameTransport
	// AntiEntropy is the period of the unconditional full-snapshot
	// refresh that heals server-side divergence even when every resync
	// request is lost in flight (default 60 s; negative disables). Only
	// meaningful with SendFrame.
	AntiEntropy time.Duration
	// RetryBase and RetryMax bound the jittered exponential backoff
	// between attempts after a failed send (defaults 1 s and 30 s).
	RetryBase, RetryMax time.Duration
	// RetrySeed seeds the backoff jitter (default: a hash of the node
	// name, so a fleet that fails together still spreads its retries).
	RetrySeed int64
}

// Agent is the per-node monitoring daemon: gathering + consolidation +
// transmission, driven by the virtual clock. The agent only runs while the
// node's OS runs — when the node dies, so does its agent, which is exactly
// how the server notices.
//
// Failed transmissions do not lose data: the change set is banked in a
// pending buffer and merged into the next attempt, which is delayed by a
// jittered exponential backoff so a down server is not hammered once per
// period by the whole fleet.
type Agent struct {
	cfg     AgentConfig
	clk     *clock.Clock
	cons    *consolidate.Consolidator
	set     *monitor.Set
	timer   *clock.Timer
	stopped bool
	// span is the node's pipeline trace slot; the agent writes the three
	// §5.3 stages, the server side fills in the rest. In in-process
	// simulation both halves meet in the same span, giving a full
	// six-stage breakdown per node.
	span *telemetry.Span

	lastSent time.Duration
	sendErrs int
	sent     int

	// Loss-tolerant protocol state. seq only advances on successful
	// hand-off, so an erroring transport never burns sequence numbers and
	// the retransmitted union arrives in order. needResync is atomic
	// because a resync request may arrive from a network reader goroutine
	// while the clock goroutine ticks.
	seq          uint64
	needResync   atomic.Bool
	lastSnap     time.Duration
	fails        int           // consecutive send failures
	nextTryAt    time.Duration // virtual-time gate while backing off
	rng          *rand.Rand
	pending      map[string]consolidate.Value // values awaiting retransmit
	pendingNames []string                     // merge scratch: sorted names
	pendingBuf   []consolidate.Value          // merge scratch: combined set
	retransmits  int
	resyncsSent  int

	// Causal tracing state (internal/flight). ticks counts agent periods;
	// together with salt it drives the deterministic 1-in-N trace sampling
	// decision. traceID/traceNs are the pending trace context: minted on a
	// sampled tick, carried through banking and backoff, stamped onto the
	// frame, and cleared when the send succeeds — so a trace born on a
	// tick that banked still covers the eventual delivery.
	ticks   uint64
	salt    uint32
	fsym    flight.Sym
	traceID uint64
	traceNs int64
}

// NewAgent builds and starts an agent on the node's clock.
func NewAgent(clk *clock.Clock, cfg AgentConfig) (*Agent, error) {
	if cfg.Period <= 0 {
		cfg.Period = time.Second
	}
	if cfg.Heartbeat <= 0 {
		cfg.Heartbeat = 5 * time.Second
	}
	if cfg.AntiEntropy == 0 {
		cfg.AntiEntropy = 60 * time.Second
	}
	if cfg.RetryBase <= 0 {
		cfg.RetryBase = time.Second
	}
	if cfg.RetryMax <= 0 {
		cfg.RetryMax = 30 * time.Second
	}
	n := cfg.Node
	if cfg.RetrySeed == 0 {
		for i := 0; i < len(n.Name()); i++ {
			cfg.RetrySeed = cfg.RetrySeed*131 + int64(n.Name()[i])
		}
	}
	set, err := monitor.NewSet(monitor.Config{
		FS:       n.FS(),
		Hostname: n.Name(),
		Now:      clk.Now,
		Probes:   n,
		Echo:     n.Reachable,
		Plugins:  cfg.Plugins,
	})
	if err != nil {
		return nil, err
	}
	cons := consolidate.New()
	if err := set.Install(cons); err != nil {
		set.Close()
		return nil, err
	}
	a := &Agent{cfg: cfg, clk: clk, cons: cons, set: set,
		rng:  rand.New(rand.NewSource(cfg.RetrySeed)),
		span: telemetry.Spans.Slot(n.Name()),
		salt: flight.Salt(n.Name()),
		fsym: fjournal.Sym(n.Name())}
	a.timer = clk.AfterFunc(cfg.Period, a.tick)
	return a, nil
}

// Consolidator exposes the agent's consolidation stage (for stats).
func (a *Agent) Consolidator() *consolidate.Consolidator { return a.cons }

// SendErrors returns the number of failed transmissions.
func (a *Agent) SendErrors() int { return a.sendErrs }

// Transmissions returns the number of change sets shipped.
func (a *Agent) Transmissions() int { return a.sent }

// Retransmits returns the number of sends that carried previously failed
// (banked) change sets.
func (a *Agent) Retransmits() int { return a.retransmits }

// ResyncsSent returns the number of full-snapshot frames shipped
// (requested resyncs plus anti-entropy refreshes).
func (a *Agent) ResyncsSent() int { return a.resyncsSent }

// Seq returns the last successfully handed-off sequence number.
func (a *Agent) Seq() uint64 { return a.seq }

// PendingRetransmit returns the number of values banked for retransmit.
func (a *Agent) PendingRetransmit() int { return len(a.pending) }

// RequestResync asks the agent to ship a full snapshot on its next tick.
// The server sends this (through the transport's back-channel) when it
// detects a sequence gap. Safe to call from any goroutine.
func (a *Agent) RequestResync() {
	a.needResync.Store(true)
	// Journal the arrival of the request itself: paired with the server's
	// resync-sent record it shows whether the back-channel survived.
	fjournal.Append(int(a.salt), flight.Entry{Kind: flight.KindResyncRecv, Node: a.fsym, TimeNs: int64(a.clk.Now())})
}

// Stop halts the agent loop and releases gatherer files.
func (a *Agent) Stop() {
	if a.stopped {
		return
	}
	a.stopped = true
	if a.timer != nil {
		a.timer.Stop()
	}
	a.set.Close() //nolint:errcheck // shutdown path
}

// tick is one agent period: consolidate, then transmit changes (or a
// heartbeat). The agent process only exists while the OS runs.
func (a *Agent) tick() {
	if a.stopped {
		return
	}
	a.timer = a.clk.AfterFunc(a.cfg.Period, a.tick)
	if a.cfg.Node.State() != node.Up {
		return // dead agent: no gathering, no transmission
	}
	on := telemetry.On()
	a.cons.Tick()
	now := a.clk.Now()
	delta := a.cons.Delta()
	framed := a.cfg.SendFrame != nil
	// Trace sampling happens at gather time: a sampled tick mints the
	// trace id that every downstream hop — including the server side of
	// the wire — will journal under. Only framed transports can carry the
	// context (the legacy header has no option field).
	a.ticks++
	newTrace := false
	if framed {
		if id := flight.NextTrace(a.salt, a.ticks); id != 0 {
			a.traceID, a.traceNs, newTrace = id, int64(now), true
		}
	}
	var gather, cons time.Duration
	var collected int
	if on {
		gather, cons, collected = a.cons.TickTelemetry()
		a.span.RecordTraced(telemetry.StageGather, gather, int64(collected), a.traceID)
		a.span.RecordTraced(telemetry.StageConsolidate, cons, int64(len(delta)), a.traceID)
	}
	if newTrace {
		// The agent-local hops of the sampled tick. Durations are zero
		// when telemetry is off; the hops still anchor the span tree.
		fjournal.Append(int(a.salt), flight.Entry{Kind: flight.KindStage, Stage: uint8(telemetry.StageGather), Node: a.fsym, Trace: a.traceID, TimeNs: int64(now), A: int64(gather), B: int64(collected)})
		fjournal.Append(int(a.salt), flight.Entry{Kind: flight.KindStage, Stage: uint8(telemetry.StageConsolidate), Node: a.fsym, Trace: a.traceID, TimeNs: int64(now), A: int64(cons), B: int64(len(delta))})
	}
	if !framed && a.cfg.Transport == nil {
		return
	}
	// Backoff gate: while waiting out a failed send, bank this tick's
	// changes so the eventual retransmit carries them too.
	if a.fails > 0 && now < a.nextTryAt {
		a.bank(delta)
		if len(delta) > 0 {
			fjournal.Append(int(a.salt), flight.Entry{Kind: flight.KindBank, Node: a.fsym, Trace: a.traceID, TimeNs: int64(now), A: int64(len(delta)), B: int64(a.fails)})
		}
		return
	}
	resyncRequested := a.needResync.Load()
	resync := framed && (resyncRequested ||
		(a.cfg.AntiEntropy > 0 && now-a.lastSnap >= a.cfg.AntiEntropy))
	retrans := len(a.pending) > 0
	if len(delta) == 0 && !resync && !retrans && now-a.lastSent < a.cfg.Heartbeat {
		return
	}
	values := delta
	kind := transmit.FrameDelta
	switch {
	case resync:
		// A snapshot is a superset of both the delta and anything banked,
		// so it heals every form of divergence at once. The delta was
		// still consumed above: its changes are in the snapshot.
		values = a.cons.Snapshot()
		kind = transmit.FrameSnapshot
	case retrans:
		values = a.mergedPending(delta)
	}
	// Transmit timing covers delivery end to end: over the wire that is
	// marshal + compress + send; with the in-process transport it also
	// includes the server's synchronous ingest.
	var t0 time.Time
	if on {
		t0 = time.Now() //cwx:allow clockdet -- transmit-latency telemetry measures real delivery cost
	}
	var err error
	if framed {
		err = a.cfg.SendFrame(transmit.Frame{
			Node: a.cfg.Node.Name(), Seq: a.seq + 1, Kind: kind, Values: values,
			TraceID: a.traceID, TraceNs: a.traceNs, SentNs: int64(now),
		})
	} else {
		err = a.cfg.Transport(a.cfg.Node.Name(), values)
	}
	if err != nil {
		a.sendErrs++
		mAgentSendFailures.Inc()
		fjournal.Append(int(a.salt), flight.Entry{Kind: flight.KindSendFail, Node: a.fsym, Trace: a.traceID, TimeNs: int64(now), A: int64(len(values)), B: int64(a.fails + 1)})
		if kind == transmit.FrameSnapshot {
			// The snapshot still owes the server its state; retry as a
			// snapshot (it subsumes the pending set, which stays banked
			// for the case where the resync flag is cleared elsewhere).
			a.needResync.Store(true)
		} else {
			a.bank(values)
		}
		a.fails++
		a.nextTryAt = now + a.backoff()
		return
	}
	var sendDur time.Duration
	if on {
		sendDur = time.Since(t0) //cwx:allow clockdet -- closes the wall-clock transmit span
		a.span.RecordTraced(telemetry.StageTransmit, sendDur, int64(len(values)), a.traceID)
	}
	if framed {
		a.seq++
	}
	a.sent++
	a.lastSent = now
	a.fails = 0
	a.nextTryAt = 0
	switch {
	case kind == transmit.FrameSnapshot:
		a.needResync.Store(false)
		a.lastSnap = now
		a.resyncsSent++
		mAgentResyncSnapshots.Inc()
		a.clearPending()
		fjournal.Append(int(a.salt), flight.Entry{Kind: flight.KindResyncSnap, Node: a.fsym, Trace: a.traceID, TimeNs: int64(now), A: int64(len(values)), B: boolToInt64(resyncRequested)})
	case retrans:
		a.retransmits++
		mAgentRetransmits.Inc()
		a.clearPending()
		fjournal.Append(int(a.salt), flight.Entry{Kind: flight.KindRetransmit, Node: a.fsym, Trace: a.traceID, TimeNs: int64(now), A: int64(len(values))})
	}
	if a.traceID != 0 {
		// Close out the sampled frame's transmit hop. With the in-process
		// transport the server's ingest ran inside SendFrame, so its
		// journal records precede this one; sendDur covers them.
		fjournal.Append(int(a.salt), flight.Entry{Kind: flight.KindStage, Stage: uint8(telemetry.StageTransmit), Node: a.fsym, Trace: a.traceID, TimeNs: int64(now), A: int64(sendDur), B: int64(len(values))})
		a.traceID, a.traceNs = 0, 0
	}
}

func boolToInt64(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

// bank copies values into the pending-retransmit buffer (newest payload
// wins per name). Only failure and backoff paths pay its allocations; the
// happy path never touches it.
func (a *Agent) bank(values []consolidate.Value) {
	if len(values) == 0 {
		return
	}
	if a.pending == nil {
		a.pending = make(map[string]consolidate.Value, len(values))
	}
	for _, v := range values {
		a.pending[v.Name] = v
	}
}

// mergedPending folds delta into the banked set and returns the union in
// stable name order, reusing the merge scratch buffers.
func (a *Agent) mergedPending(delta []consolidate.Value) []consolidate.Value {
	a.bank(delta)
	names := a.pendingNames[:0]
	for name := range a.pending {
		names = append(names, name)
	}
	sort.Strings(names)
	out := a.pendingBuf[:0]
	for _, name := range names {
		out = append(out, a.pending[name])
	}
	a.pendingNames, a.pendingBuf = names, out
	return out
}

func (a *Agent) clearPending() {
	if len(a.pending) > 0 {
		clear(a.pending)
	}
}

// backoff is the delay before the next attempt after a.fails consecutive
// failures: RetryBase doubled per failure, capped at RetryMax, with ±25%
// deterministic jitter so a fleet that failed together (a server restart)
// does not retry in lockstep.
func (a *Agent) backoff() time.Duration {
	d := a.cfg.RetryBase
	for i := 1; i < a.fails && d < a.cfg.RetryMax; i++ {
		d *= 2
	}
	if d > a.cfg.RetryMax {
		d = a.cfg.RetryMax
	}
	return time.Duration(float64(d) * (0.75 + 0.5*a.rng.Float64()))
}

// ErrLinkDown is returned by transports whose local link is down; the
// agent reacts with banking + backoff like any other send failure.
var ErrLinkDown = errors.New("core: local network link down")

// WireTransport builds a Transport that frames and compresses change sets
// through a transmit.Writer (the §5.3.3 wire path); the receiving side
// decodes with ReadWireValues. This is the legacy unsequenced protocol —
// new deployments should use WireFrameTransport.
func WireTransport(w *transmit.Writer) Transport {
	var buf []byte
	return func(nodeName string, values []consolidate.Value) error {
		buf = transmit.MarshalFrame(buf[:0], transmit.Frame{Node: nodeName, Values: values})
		return w.WriteFrame(buf)
	}
}

// WireFrameTransport builds a FrameTransport over a transmit.Writer: the
// sequenced, loss-tolerant wire path.
func WireFrameTransport(w *transmit.Writer) FrameTransport {
	var buf []byte
	return func(f transmit.Frame) error {
		buf = transmit.MarshalFrame(buf[:0], f)
		return w.WriteFrame(buf)
	}
}

// ReadWireValues decodes one frame produced by WireTransport (either
// header form), returning the node and values. Malformed frames —
// truncated headers, corrupt payloads, node names that are not printable
// hostnames — return an error rather than a garbage node name.
func ReadWireValues(frame []byte) (nodeName string, values []consolidate.Value, err error) {
	f, err := transmit.ParseFrame(frame)
	if err != nil {
		return "", nil, err
	}
	return f.Node, f.Values, nil
}
