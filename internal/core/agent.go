package core

import (
	"time"

	"clusterworx/internal/clock"
	"clusterworx/internal/consolidate"
	"clusterworx/internal/monitor"
	"clusterworx/internal/node"
	"clusterworx/internal/telemetry"
	"clusterworx/internal/transmit"
)

// Transport ships one change set from an agent to the server. In-process
// simulation wires it straight to Server.HandleValues; the network daemon
// wires it through the framed, compressed wire protocol.
//
// The values slice is backed by the consolidator's reusable scratch
// buffer (see Consolidator.Delta) and is only valid for the duration of
// the call: implementations must marshal or deliver it synchronously, and
// must copy it before retaining it or handing it to another goroutine
// (e.g. an asynchronous send queue).
type Transport func(nodeName string, values []consolidate.Value) error

// AgentConfig configures a node agent.
type AgentConfig struct {
	Node *node.Node
	// Period is the consolidation tick (default one second; the paper's
	// pipeline benchmarks sample far faster, but one hertz is the
	// practical monitoring default).
	Period time.Duration
	// Heartbeat forces a transmission even with no changes, so the server
	// can distinguish "idle node" from "dead node" (default 5 s).
	Heartbeat time.Duration
	// Plugins is the optional administrator plug-in set.
	Plugins *monitor.PluginSet
	// Transport delivers change sets.
	Transport Transport
}

// Agent is the per-node monitoring daemon: gathering + consolidation +
// transmission, driven by the virtual clock. The agent only runs while the
// node's OS runs — when the node dies, so does its agent, which is exactly
// how the server notices.
type Agent struct {
	cfg     AgentConfig
	clk     *clock.Clock
	cons    *consolidate.Consolidator
	set     *monitor.Set
	timer   *clock.Timer
	stopped bool
	// span is the node's pipeline trace slot; the agent writes the three
	// §5.3 stages, the server side fills in the rest. In in-process
	// simulation both halves meet in the same span, giving a full
	// six-stage breakdown per node.
	span *telemetry.Span

	lastSent time.Duration
	sendErrs int
	sent     int
}

// NewAgent builds and starts an agent on the node's clock.
func NewAgent(clk *clock.Clock, cfg AgentConfig) (*Agent, error) {
	if cfg.Period <= 0 {
		cfg.Period = time.Second
	}
	if cfg.Heartbeat <= 0 {
		cfg.Heartbeat = 5 * time.Second
	}
	n := cfg.Node
	set, err := monitor.NewSet(monitor.Config{
		FS:       n.FS(),
		Hostname: n.Name(),
		Now:      clk.Now,
		Probes:   n,
		Echo:     n.Reachable,
		Plugins:  cfg.Plugins,
	})
	if err != nil {
		return nil, err
	}
	cons := consolidate.New()
	if err := set.Install(cons); err != nil {
		set.Close()
		return nil, err
	}
	a := &Agent{cfg: cfg, clk: clk, cons: cons, set: set,
		span: telemetry.Spans.Slot(n.Name())}
	a.timer = clk.AfterFunc(cfg.Period, a.tick)
	return a, nil
}

// Consolidator exposes the agent's consolidation stage (for stats).
func (a *Agent) Consolidator() *consolidate.Consolidator { return a.cons }

// SendErrors returns the number of failed transmissions.
func (a *Agent) SendErrors() int { return a.sendErrs }

// Transmissions returns the number of change sets shipped.
func (a *Agent) Transmissions() int { return a.sent }

// Stop halts the agent loop and releases gatherer files.
func (a *Agent) Stop() {
	if a.stopped {
		return
	}
	a.stopped = true
	if a.timer != nil {
		a.timer.Stop()
	}
	a.set.Close() //nolint:errcheck // shutdown path
}

// tick is one agent period: consolidate, then transmit changes (or a
// heartbeat). The agent process only exists while the OS runs.
func (a *Agent) tick() {
	if a.stopped {
		return
	}
	a.timer = a.clk.AfterFunc(a.cfg.Period, a.tick)
	if a.cfg.Node.State() != node.Up {
		return // dead agent: no gathering, no transmission
	}
	on := telemetry.On()
	a.cons.Tick()
	now := a.clk.Now()
	delta := a.cons.Delta()
	if on {
		gather, cons, collected := a.cons.TickTelemetry()
		a.span.Record(telemetry.StageGather, gather, int64(collected))
		a.span.Record(telemetry.StageConsolidate, cons, int64(len(delta)))
	}
	if len(delta) == 0 && now-a.lastSent < a.cfg.Heartbeat {
		return
	}
	if a.cfg.Transport == nil {
		return
	}
	// Transmit timing covers delivery end to end: over the wire that is
	// marshal + compress + send; with the in-process transport it also
	// includes the server's synchronous ingest.
	var t0 time.Time
	if on {
		t0 = time.Now()
	}
	if err := a.cfg.Transport(a.cfg.Node.Name(), delta); err != nil {
		a.sendErrs++
		return
	}
	if on {
		a.span.Record(telemetry.StageTransmit, time.Since(t0), int64(len(delta)))
	}
	a.sent++
	a.lastSent = now
}

// WireTransport builds a Transport that frames and compresses change sets
// through a transmit.Writer (the §5.3.3 wire path); the receiving side
// decodes with ReadWireValues.
func WireTransport(w *transmit.Writer) Transport {
	var buf []byte
	return func(nodeName string, values []consolidate.Value) error {
		buf = buf[:0]
		buf = append(buf, nodeName...)
		buf = append(buf, '\n')
		buf = transmit.MarshalValues(buf, values)
		return w.WriteFrame(buf)
	}
}

// ReadWireValues decodes one frame produced by WireTransport.
func ReadWireValues(frame []byte) (nodeName string, values []consolidate.Value, err error) {
	for i, b := range frame {
		if b == '\n' {
			nodeName = string(frame[:i])
			values, err = transmit.UnmarshalValues(frame[i+1:])
			return nodeName, values, err
		}
	}
	values, err = transmit.UnmarshalValues(nil)
	return string(frame), values, err
}
