package core

import (
	"net"
	"strings"
	"sync"
	"testing"
	"time"
)

// The §5.1 three-tier claim: "The 3-tier design allows multiple clients to
// access the ClusterWorX server at the same time without conflict." Twenty
// concurrent control clients hammer one server over TCP while it keeps
// ingesting agent data.
func TestManyConcurrentClients(t *testing.T) {
	sim := bootSim(t, 4)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go sim.Server.ServeCtl(l) //nolint:errcheck // ends with listener

	// Keep the cluster alive in the background while clients query: the
	// virtual clock is advanced from another goroutine, exactly like the
	// cwxd daemon does.
	stop := make(chan struct{})
	var wgClock sync.WaitGroup
	wgClock.Add(1)
	go func() {
		defer wgClock.Done()
		for {
			select {
			case <-stop:
				return
			default:
				sim.Advance(200 * time.Millisecond)
				time.Sleep(time.Millisecond)
			}
		}
	}()

	const clients = 20
	const requests = 25
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			cl, err := DialCtl(l.Addr().String(), 2*time.Second)
			if err != nil {
				errs <- err
				return
			}
			defer cl.Close()
			reqs := []string{"ping", "status", "nodes", "values node000", "history node001 load.1 5", "rules"}
			for i := 0; i < requests; i++ {
				req := reqs[(id+i)%len(reqs)]
				resp, err := cl.Do(req)
				if err != nil {
					errs <- err
					return
				}
				if req == "ping" && !strings.Contains(resp, "pong") {
					errs <- err
					return
				}
			}
			errs <- nil
		}(c)
	}
	wg.Wait()
	close(stop)
	wgClock.Wait()
	for c := 0; c < clients; c++ {
		if err := <-errs; err != nil {
			t.Fatalf("client failed: %v", err)
		}
	}
}
