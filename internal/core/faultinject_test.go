package core

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"clusterworx/internal/consolidate"
	"clusterworx/internal/transmit"
)

// This file is the fault-injection harness for the loss-tolerant delta
// protocol: it drives the full agent→simnet→server stack through seeded
// loss, blackhole, latency, and partition schedules, then requires the
// server's view of every node to match the agent's consolidator state
// byte for byte. A control run over the legacy unsequenced protocol
// demonstrates the silent divergence the sequenced protocol exists to
// fix.

// syncDiff compares the server's stored values for a node against the
// agent's own snapshot, returning one description per mismatch. The
// sims here disable the server-side echo sweep, so every stored value —
// including the agent's own net.echo.ok probe — must come from, and
// match, the agent.
func syncDiff(srv *Server, name string, agentVals []consolidate.Value) []string {
	var diffs []string
	server := make(map[string]consolidate.Value)
	for _, v := range srv.NodeValues(name) {
		server[v.Name] = v
	}
	for _, want := range agentVals {
		got, ok := server[want.Name]
		if !ok {
			diffs = append(diffs, fmt.Sprintf("%s: %s missing on server", name, want.Name))
			continue
		}
		if got.Render() != want.Render() {
			diffs = append(diffs, fmt.Sprintf("%s: %s = %q on server, %q on agent",
				name, want.Name, got.Render(), want.Render()))
		}
		delete(server, want.Name)
	}
	for stale := range server {
		diffs = append(diffs, fmt.Sprintf("%s: stale metric %s on server", name, stale))
	}
	return diffs
}

// faultSim builds a simulated cluster on the monitoring plane transport
// under test, boots it, and lets it settle losslessly so every node is
// registered and reporting before faults begin.
func faultSim(t *testing.T, nodes int, transport SimTransport, antiEntropy time.Duration, seed int64) *Sim {
	t.Helper()
	sim, err := NewSim(SimConfig{
		Nodes:       nodes,
		Cluster:     "faultlab",
		Transport:   transport,
		AntiEntropy: antiEntropy,
		EchoSweep:   -1, // keep server-side probe writes out of the comparison
		Seed:        seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(sim.Stop)
	sim.PowerOnAll()
	return sim
}

// settleAndCompare stops the agents, drains in-flight packets, and
// returns the concatenated per-node diffs between server and agents.
func settleAndCompare(sim *Sim) []string {
	sim.Stop()
	// Agents no longer tick, so their consolidators are frozen; anything
	// already on the wire still needs to land.
	sim.Advance(5 * time.Second)
	var diffs []string
	for i, agent := range sim.Agents {
		name := sim.Nodes[i].Name()
		diffs = append(diffs, syncDiff(sim.Server, name, agent.Consolidator().Snapshot())...)
	}
	return diffs
}

// TestLossToleranceConverges is the acceptance test: 12 nodes through a
// 15% loss regime with a blackhole phase, a latency shift, and a
// monitoring-plane partition, and after the network heals the server
// converges to a byte-identical view of every agent.
func TestLossToleranceConverges(t *testing.T) {
	sim := faultSim(t, 12, TransportSimnet, 20*time.Second, 42)
	sim.Advance(30 * time.Second) // boot + first lossless reports

	// Phase 1: 15% random loss across the fabric.
	sim.Net.SetLoss(0.15)
	sim.Advance(60 * time.Second)
	// Phase 2: ten-second total blackhole.
	sim.Net.SetLoss(1)
	sim.Advance(10 * time.Second)
	// Phase 3: back to lossy, with degraded latency, plus one node's
	// monitoring link physically down for 20 s.
	sim.Net.SetLoss(0.15)
	sim.Net.SetLatency(2 * time.Millisecond)
	mon := sim.Net.Endpoint("node003.mon")
	mon.SetUp(false)
	sim.Advance(20 * time.Second)
	mon.SetUp(true)
	sim.Advance(20 * time.Second)
	// Heal and settle for longer than anti-entropy + max retry backoff.
	sim.Net.SetLoss(0)
	sim.Advance(90 * time.Second)

	states := sim.Server.SyncStates()
	var gaps, snapshots, resyncReqs int64
	for _, st := range states {
		gaps += st.Gaps
		snapshots += st.Snapshots
		resyncReqs += st.ResyncReqs
		if !st.Synced {
			t.Errorf("node %s still diverged after heal: %+v", st.Node, st)
		}
	}
	if gaps == 0 {
		t.Fatal("fault schedule produced no sequence gaps: the protocol was not exercised")
	}
	if snapshots == 0 || resyncReqs == 0 {
		t.Fatalf("no healing traffic observed: snapshots=%d resyncReqs=%d", snapshots, resyncReqs)
	}
	var sendErrs, resyncsSent int
	for _, a := range sim.Agents {
		sendErrs += a.SendErrors()
		resyncsSent += a.ResyncsSent()
		if a.PendingRetransmit() != 0 {
			t.Errorf("agent still has %d values banked after heal", a.PendingRetransmit())
		}
	}
	if sendErrs == 0 {
		t.Error("the partitioned node should have seen link-down send failures")
	}
	if resyncsSent == 0 {
		t.Error("no agent shipped a resync snapshot")
	}
	// The operator's view of all of the above: the ctl "sync" verb.
	out := sim.Server.HandleCtl("sync")
	if !strings.Contains(out, "synced") || strings.Contains(out, "DIVERGED") {
		t.Errorf("ctl sync should show every node synced:\n%s", out)
	}
	if diffs := settleAndCompare(sim); len(diffs) > 0 {
		t.Fatalf("server diverged from agents after heal (%d diffs):\n%s",
			len(diffs), joinDiffs(diffs))
	}
}

// TestLegacyProtocolDivergesUnderLoss is the control run: the same stack
// minus sequence numbers. Loss from the first transmission means some
// node's initial full change set — statics included — is dropped, and
// change suppression guarantees those values are never sent again. The
// server must be demonstrably, permanently wrong.
func TestLegacyProtocolDivergesUnderLoss(t *testing.T) {
	sim := faultSim(t, 16, TransportSimnetLegacy, 0, 7)
	sim.Net.SetLoss(0.2) // lossy from the very first frame
	sim.Advance(60 * time.Second)
	sim.Net.SetLoss(0)
	sim.Advance(60 * time.Second) // plenty of lossless heartbeats to "recover"

	diffs := settleAndCompare(sim)
	if len(diffs) == 0 {
		t.Fatal("legacy protocol converged under 20% loss; the control run should diverge " +
			"(if a protocol change made this reliable, the sequenced path is redundant)")
	}
	t.Logf("legacy protocol diverged as expected: %d mismatches, e.g. %s", len(diffs), diffs[0])
}

// TestPartitionHealRetransmits pins down the agent-side banking path: a
// down local link is a visible send error, so the agent must bank the
// change set, back off, and deliver the union in-order after the link
// heals — no sequence gap, no snapshot needed.
func TestPartitionHealRetransmits(t *testing.T) {
	// Anti-entropy off: convergence here must come from retransmission
	// alone, not be rescued by a periodic snapshot.
	sim := faultSim(t, 3, TransportSimnet, -1, 11)
	sim.Advance(30 * time.Second)

	mon := sim.Net.Endpoint("node001.mon")
	mon.SetUp(false)
	sim.Node("node001").SetLoad(4) // state changes while unreachable
	sim.Advance(25 * time.Second)
	mon.SetUp(true)
	sim.Advance(60 * time.Second) // past max retry backoff

	a := sim.Agents[1]
	if a.SendErrors() == 0 {
		t.Fatal("partitioned agent saw no send errors")
	}
	if a.Retransmits() == 0 {
		t.Fatal("healed agent never shipped its banked change sets")
	}
	for _, st := range sim.Server.SyncStates() {
		if st.Gaps != 0 {
			t.Errorf("node %s: %d gaps — link-down failures must not burn sequence numbers", st.Node, st.Gaps)
		}
		if !st.Synced {
			t.Errorf("node %s diverged", st.Node)
		}
	}
	if diffs := settleAndCompare(sim); len(diffs) > 0 {
		t.Fatalf("server diverged after partition heal:\n%s", joinDiffs(diffs))
	}
}

// TestHandleFrameConcurrent hammers the sequenced ingest path from many
// goroutines — gaps, regressions, and snapshots interleaved with the
// read-side APIs — to hold the PR 1 guarantee that protocol state rides
// the per-node locks, not a new global one. Run with -race.
func TestHandleFrameConcurrent(t *testing.T) {
	srv := NewServer(ServerConfig{Cluster: "race"})
	const workers = 8
	const frames = 400
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			node := fmt.Sprintf("node%03d", w)
			vals := []consolidate.Value{consolidate.NumValue("load.1", consolidate.Dynamic, float64(w))}
			seq := uint64(0)
			for i := 0; i < frames; i++ {
				seq++
				switch i % 10 {
				case 3: // lose a frame: next delta gaps
					seq++
					srv.HandleFrame(transmit.Frame{Node: node, Seq: seq, Kind: transmit.FrameDelta, Values: vals}) //nolint:errcheck
				case 7: // heal with a snapshot
					srv.HandleFrame(transmit.Frame{Node: node, Seq: seq, Kind: transmit.FrameSnapshot, Values: vals}) //nolint:errcheck
				default:
					srv.HandleFrame(transmit.Frame{Node: node, Seq: seq, Kind: transmit.FrameDelta, Values: vals}) //nolint:errcheck
				}
			}
			// Agent restart: sequence regression.
			srv.HandleFrame(transmit.Frame{Node: node, Seq: 1, Kind: transmit.FrameDelta, Values: vals}) //nolint:errcheck
		}()
	}
	// Read-side churn while ingest runs.
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 200; i++ {
			srv.SyncStates()
			srv.Status()
		}
	}()
	wg.Wait()
	<-done
	states := srv.SyncStates()
	if len(states) != workers {
		t.Fatalf("nodes = %d, want %d", len(states), workers)
	}
	for _, st := range states {
		if st.Gaps == 0 || st.Snapshots == 0 || st.Regressions == 0 {
			t.Fatalf("node %s missed protocol transitions: %+v", st.Node, st)
		}
		if st.Synced {
			t.Fatalf("node %s synced after a trailing regression: %+v", st.Node, st)
		}
	}
}

func joinDiffs(diffs []string) string {
	if len(diffs) > 12 {
		diffs = append(diffs[:12:12], fmt.Sprintf("... and %d more", len(diffs)-12))
	}
	out := ""
	for _, d := range diffs {
		out += "  " + d + "\n"
	}
	return out
}

// TestMixedVersionClusterConverges is the v2 rollout's differential
// acceptance run: half the agents are pinned to the v1 text protocol
// (old builds), half negotiate the binary v2 format, and the whole
// cluster rides the same seeded loss/blackhole/partition schedule as
// TestLossToleranceConverges. After the heal the server must hold a
// byte-identical view of every agent regardless of which wire each
// session spoke — v2's predictor chains and dictionary resync must be
// exactly as loss-tolerant as v1's deflated text.
func TestMixedVersionClusterConverges(t *testing.T) {
	sim, err := NewSim(SimConfig{
		Nodes:       12,
		Cluster:     "faultlab",
		Transport:   TransportSimnet,
		AntiEntropy: 20 * time.Second,
		EchoSweep:   -1,
		WireV1:      func(i int) bool { return i%2 == 0 },
		Seed:        42,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(sim.Stop)
	sim.PowerOnAll()
	sim.Advance(30 * time.Second)

	sim.Net.SetLoss(0.15)
	sim.Advance(60 * time.Second)
	sim.Net.SetLoss(1)
	sim.Advance(10 * time.Second)
	sim.Net.SetLoss(0.15)
	sim.Net.SetLatency(2 * time.Millisecond)
	mon := sim.Net.Endpoint("node003.mon")
	mon.SetUp(false)
	sim.Advance(20 * time.Second)
	mon.SetUp(true)
	sim.Advance(20 * time.Second)
	sim.Net.SetLoss(0)
	sim.Advance(90 * time.Second)

	// The version split must have taken: pinned agents stayed v1, and
	// every unpinned agent upgraded (offers ride every v1 frame, so even
	// the lossy phases cannot starve the negotiation forever).
	var v1, v2 int
	for i, wc := range sim.wires {
		switch {
		case i%2 == 0:
			if wc.V2() {
				t.Errorf("agent %d was pinned to v1 but negotiated v2", i)
			}
			v1++
		default:
			if !wc.V2() {
				t.Errorf("agent %d never negotiated v2", i)
			}
			v2++
		}
	}
	if v1 == 0 || v2 == 0 {
		t.Fatalf("not a mixed cluster: %d v1, %d v2", v1, v2)
	}

	states := sim.Server.SyncStates()
	var gaps int64
	for _, st := range states {
		gaps += st.Gaps
		if !st.Synced {
			t.Errorf("node %s still diverged after heal: %+v", st.Node, st)
		}
	}
	if gaps == 0 {
		t.Fatal("fault schedule produced no sequence gaps: the protocol was not exercised")
	}
	if diffs := settleAndCompare(sim); len(diffs) > 0 {
		t.Fatalf("mixed-version cluster diverged after heal (%d diffs):\n%s",
			len(diffs), joinDiffs(diffs))
	}
}

// fedFaultSchedule drives one federation (or the flat control) through
// the shared fault timeline: boot, 15% fabric loss with a 20 s fault
// window mid-loss, heal, settle. The timeline is identical for every
// topology — down/up only toggle state, never advance the clock — so
// the runs end at the same virtual instant with identical
// (clock-driven) agent state.
func fedFaultSchedule(fed *FedSim, down, up func(*FedSim)) {
	fed.PowerOnAll()
	fed.Advance(30 * time.Second) // lossless boot: registration + first uplink snap-alls
	fed.Net.SetLoss(0.15)
	fed.Advance(40 * time.Second)
	if down != nil {
		down(fed) // topology-specific fault begins
	}
	fed.Advance(20 * time.Second)
	if up != nil {
		up(fed)
	}
	fed.Advance(40 * time.Second)
	fed.Net.SetLoss(0)
	fed.Advance(90 * time.Second) // past agent AND uplink anti-entropy
	fed.Stop()
	fed.Advance(5 * time.Second) // drain in-flight frames and final flushes
}

// TestFedLossKillRejoinConverges is federation's fault acceptance run: a
// 2-leaf tree (one leaf's uplink pinned to v1) rides 15% fabric loss
// while the batching leaf's uplink process is killed and rejoined
// mid-schedule. After the heal the root must hold a byte-identical view
// of every agent — and byte-identical to a flat single-server control
// run over the same seeds and timeline, proving the extra hop and the
// healing machinery (link desync -> "!uresync" -> snap-all, per-node
// resync on the v1 leaf, restart renegotiation) add no divergence.
func TestFedLossKillRejoinConverges(t *testing.T) {
	fed, err := NewFedSim(FedConfig{
		Fanout: 2, Tiers: 2, NodesPerLeaf: 3,
		EchoSweep: -1, AntiEntropy: 20 * time.Second,
		UplinkAntiEntropy: 20 * time.Second,
		UplinkV1:          func(leaf int) bool { return leaf == 1 },
		Seed:              42,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(fed.Stop)
	// Kill the batching leaf's forwarder for the 20 s fault window, then
	// rejoin as a fresh process (Restart drops all session state —
	// negotiation, sequences, dictionary).
	fedFaultSchedule(fed,
		func(f *FedSim) { f.Leaves[0].UpEp.SetUp(false) },
		func(f *FedSim) {
			f.Leaves[0].UpEp.SetUp(true)
			f.Leaves[0].Uplink.Restart()
		})

	// The flat control: the same six agents, same seeds, same timeline,
	// one server, no federation. Its converged state is the ground truth
	// the federated root must reproduce byte for byte.
	flat, err := NewFedSim(FedConfig{
		Tiers: 1, NodesPerLeaf: 6,
		EchoSweep: -1, AntiEntropy: 20 * time.Second,
		Seed: 42,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(flat.Stop)
	fedFaultSchedule(flat, nil, nil)

	// The schedule must actually have hurt: link-down send failures on
	// the killed leaf, loss-induced batch desyncs healed by snap-alls,
	// and per-node resyncs on the v1-pinned leaf.
	killed := fed.Leaves[0].Uplink.Stats()
	if killed.SendFails == 0 {
		t.Error("killed leaf saw no uplink send failures")
	}
	if !killed.V2 || killed.Frames == 0 {
		t.Errorf("rejoined leaf never renegotiated the batch wire: %+v", killed)
	}
	pinned := fed.Leaves[1].Uplink.Stats()
	if pinned.V2 || pinned.V1Frames == 0 {
		t.Errorf("pinned leaf should have stayed on v1 frames: %+v", pinned)
	}
	if pinned.NodeResyncs == 0 {
		t.Error("15% loss produced no per-node resync requests on the v1 uplink")
	}
	in := fed.Root.Server.UplinkInStats()
	if in.Desyncs == 0 {
		t.Errorf("15%% loss produced no batch chain breaks: %+v", in)
	}
	snapAlls := killed.SnapAlls
	if snapAlls < 2 {
		t.Errorf("kill/rejoin + desyncs should force repeated snap-alls, got %d", snapAlls)
	}

	// Convergence, three ways: root matches each agent, the flat control
	// matches each agent, and root matches the flat control byte for
	// byte on every raw node.
	var diffs []string
	for _, leaf := range fed.Leaves {
		for i, agent := range leaf.Sim.Agents {
			name := leaf.Sim.Nodes[i].Name()
			diffs = append(diffs, syncDiff(fed.Root.Server, name, agent.Consolidator().Snapshot())...)
		}
	}
	if len(diffs) > 0 {
		t.Fatalf("federated root diverged from agents after heal (%d diffs):\n%s", len(diffs), joinDiffs(diffs))
	}
	flatSrv := flat.Root.Server
	for i, agent := range flat.Root.Sim.Agents {
		name := flat.Root.Sim.Nodes[i].Name()
		if d := syncDiff(flatSrv, name, agent.Consolidator().Snapshot()); len(d) > 0 {
			t.Fatalf("flat control diverged from its own agents:\n%s", joinDiffs(d))
		}
		if d := syncDiff(fed.Root.Server, name, flatSrv.NodeValues(name)); len(d) > 0 {
			t.Fatalf("federated root != flat control for %s:\n%s", name, joinDiffs(d))
		}
	}
}
