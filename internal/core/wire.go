package core

import (
	"strings"
	"sync"

	"clusterworx/internal/flight"
	"clusterworx/internal/transmit"
)

// This file is the session layer of the v2 wire negotiation (see
// internal/transmit/framev2.go for the format): wireClient rides inside
// the agent-side transports (AgentConn over TCP, the simnet SendFrame
// closures), wireServer inside the server-side receive loops. Both the
// real socket path and the simulated fabric share these, so the
// fault-injection harness exercises the exact state machine production
// runs.
//
// The protocol choice is per-session and monotone: every v1 frame offers
// "w=2" (an ignorable header option — old servers skip it); a v2-capable
// server answers each offer with "!wire 2" (an unknown control payload —
// old agents ignore it); the client switches on the first answer it
// understands and speaks v2 for the rest of the session. Either side
// being old leaves the session on v1 with zero extra round trips.

// wireClient is one agent connection's negotiation state and v2 encoder.
// marshal runs on the agent's clock goroutine; control on the
// transport's receive goroutine — hence the mutex.
type wireClient struct {
	mu    sync.Mutex //cwx:lockrank wire 8
	offer bool       // still offering v2 (enabled by config, not yet switched)
	v2    bool
	enc   *transmit.EncoderV2
	buf   []byte // marshal scratch
	sym   flight.Sym
}

// newWireClient builds the session state. offerV2 false pins the session
// to the v1 text protocol (the -wire-v1 escape hatch). node may be empty
// for transports that learn it from the first frame (TCP dial).
func newWireClient(node string, offerV2 bool) *wireClient {
	c := &wireClient{offer: offerV2}
	if node != "" {
		c.sym = fjournal.Sym(node)
	}
	return c
}

// marshal renders f in the session's negotiated wire version into an
// internal scratch buffer, valid until the next call. Check the payload
// with transmit.IsV2Payload to pick the raw or deflate write path.
func (c *wireClient) marshal(f transmit.Frame) []byte {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.sym == 0 {
		c.sym = fjournal.Sym(f.Node)
	}
	if c.v2 {
		c.buf = c.enc.Encode(c.buf[:0], f)
	} else {
		if c.offer {
			f.WireOffer = transmit.WireV2
		}
		c.buf = transmit.MarshalFrame(c.buf[:0], f)
	}
	return c.buf
}

// V2 reports whether the session switched to the binary v2 format.
func (c *wireClient) V2() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.v2
}

// disable pins the session to v1 (stops offering). Only meaningful
// before the first answer arrives.
func (c *wireClient) disable() {
	c.mu.Lock()
	c.offer = false
	c.mu.Unlock()
}

// sendFailed tells the encoder the receiver may not have seen the last
// frame: the next one must carry a chain reset so it decodes regardless.
func (c *wireClient) sendFailed() {
	c.mu.Lock()
	if c.v2 {
		c.enc.Rebase()
	}
	c.mu.Unlock()
}

// control dispatches one server→agent control payload: version answers,
// dictionary acks, and dictionary resets are consumed here; resync
// reports whether the payload was a resync request the agent loop must
// act on. nowNs timestamps the journal records (0 when the transport has
// no clock, like the TCP reader goroutine).
func (c *wireClient) control(payload []byte, nowNs int64) (resync bool) {
	if _, ok := transmit.ParseResync(payload); ok {
		return true
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	switch {
	case transmit.IsWireReset(payload):
		if c.v2 {
			c.enc.ResetTable()
			fjournal.Append(int(c.sym), flight.Entry{Kind: flight.KindWireReset, Node: c.sym, TimeNs: nowNs})
		}
	default:
		if ver, ok := transmit.ParseWireAnswer(payload); ok {
			// Switch only onto a version we actually speak; an answer
			// naming a version we do not know leaves the session on v1
			// (the same fallback rule the server applies to offers).
			if c.offer && !c.v2 && ver == transmit.WireV2 {
				c.v2 = true
				c.offer = false
				if c.enc == nil {
					c.enc = transmit.NewEncoderV2()
				}
				fjournal.Append(int(c.sym), flight.Entry{Kind: flight.KindWireUpgrade, Node: c.sym, TimeNs: nowNs, A: int64(ver)})
			}
		} else if n, ok := transmit.ParseDictAck(payload); ok {
			if c.v2 {
				c.enc.Ack(n)
			}
		}
	}
	return false
}

// wireServer is one agent session's server-side receive state: the v2
// decoder (lazily built on the first v2 payload) plus the negotiation
// back-channel. Not safe for concurrent use — one per TCP connection or
// per datagram source.
type wireServer struct {
	s        *Server
	dec      *transmit.DecoderV2
	ctl      []byte // control marshal scratch
	answered bool   // journal the upgrade answer once, re-send it per offer

	// Batch uplink ingest state (federation: this server as the parent
	// side of a child tier's uplink). The emit closure is bound once so
	// the steady-state decode path allocates nothing.
	bdec   *transmit.BatchDecoderV2
	bemit  func(transmit.Frame)
	bnodes int // sub-frames in the current batch
	braw   int // of those, raw (non-aggregate) nodes
}

// handle processes one arriving frame payload in either wire version:
// decode, ingest through the sequenced machinery, and emit whatever
// control traffic the session owes (version answers, dict acks and
// resets, resync requests). send ships a control payload back to the
// agent; the payload is scratch-backed and must be consumed (or copied)
// synchronously. fatal reports a protocol violation after which the
// transport should drop the session, exactly as v1 readers always did
// with unparseable frames.
func (ws *wireServer) handle(payload []byte, send func([]byte)) (fatal bool) {
	if transmit.IsV2BatchPayload(payload) {
		// Checked before the single-frame v2 path: a batch payload is a
		// v2 payload with an extra flag bit the single decoder rejects.
		return ws.handleBatch(payload, send)
	}
	var f transmit.Frame
	if transmit.IsV2Payload(payload) {
		if ws.dec == nil {
			ws.dec = transmit.NewDecoderV2()
		}
		var err error
		f, err = ws.dec.Decode(payload)
		switch err {
		case nil:
		case transmit.ErrV2Desync:
			// Header-only frame: the predictor chain broke on a lost
			// frame. The seq still feeds HandleFrame below, so the
			// gap→diverge→resync flow runs unchanged and the healing
			// snapshot (a chain-reset frame) fixes both layers at once.
		case transmit.ErrV2NeedReset:
			fjournal.Append(0, flight.Entry{Kind: flight.KindWireReset, TimeNs: int64(ws.s.now())})
			ws.ctl = transmit.MarshalWireReset(ws.ctl[:0])
			send(ws.ctl)
			return false
		default:
			return true
		}
		if n, ok := ws.dec.PendingAck(); ok {
			ws.ctl = transmit.MarshalDictAck(ws.ctl[:0], n)
			send(ws.ctl)
		}
	} else {
		var err error
		f, err = transmit.ParseFrame(payload)
		if err != nil {
			return true
		}
		if f.WireOffer >= transmit.WireV2 && !ws.s.wireV1Only.Load() {
			// Answer every offer (not just the first): on a lossy fabric
			// a dropped answer then costs one frame interval, not the
			// upgrade. The client stops offering once switched.
			if !ws.answered {
				ws.answered = true
				fjournal.Append(0, flight.Entry{Kind: flight.KindWireUpgrade, Node: fjournal.Sym(f.Node), TimeNs: int64(ws.s.now()), A: transmit.WireV2})
			}
			ws.ctl = transmit.MarshalWireAnswer(ws.ctl[:0], transmit.WireV2)
			send(ws.ctl)
		}
	}
	if err := ws.s.HandleFrame(f); err == ErrResyncNeeded {
		ws.ctl = transmit.MarshalResync(ws.ctl[:0], f.Node)
		send(ws.ctl)
	}
	return false
}

// initBatch builds the lazy batch-ingest state (kept out of the hot
// decode path so its one-time allocations never land there).
func (ws *wireServer) initBatch() {
	ws.bdec = transmit.NewBatchDecoderV2()
	ws.bemit = func(f transmit.Frame) {
		ws.bnodes++
		if strings.IndexByte(f.Node, '/') < 0 {
			ws.braw++
		}
		// Sub-frames are unsequenced (Seq 0 — continuity is link-level),
		// so HandleFrame never requests a per-node resync here.
		ws.s.HandleFrame(f) //nolint:errcheck
	}
}

// handleBatch ingests one uplink batch frame from a child tier. The
// all-or-nothing decode contract keeps recovery simple: a chain break
// emits nothing and the "!uresync" answer makes the child snap-all, so
// partial batches never need unwinding.
//
//cwx:hotpath
func (ws *wireServer) handleBatch(payload []byte, send func([]byte)) (fatal bool) {
	if ws.bdec == nil {
		ws.initBatch() //cwx:allow staticalloc -- inlined one-time session setup (decoder + emit closure); every later frame takes the non-nil path
	}
	ws.bnodes, ws.braw = 0, 0
	_, err := ws.bdec.Decode(payload, ws.bemit)
	switch err {
	case nil:
		ws.s.upIn.frames.Add(1)
		ws.s.upIn.nodes.Add(int64(ws.bnodes))
		ws.s.upIn.rawNodes.Add(int64(ws.braw))
		mUplinkInFrames.Inc()
		mUplinkInNodes.Add(int64(ws.bnodes))
	case transmit.ErrV2Desync:
		// A lost batch broke the link chain; nothing was emitted. The
		// "!uresync" answer makes the child rebase and forward full state
		// for every node, healing all suppressed deltas in one round trip.
		ws.s.upIn.desyncs.Add(1)
		mUplinkInDesyncs.Inc()
		fjournal.Append(0, flight.Entry{Kind: flight.KindUplinkResync, TimeNs: int64(ws.s.now())})
		ws.ctl = transmit.MarshalUplinkResync(ws.ctl[:0])
		send(ws.ctl)
	case transmit.ErrV2NeedReset:
		// The child's dictionary references entries this (restarted)
		// server never saw: ask for a full table resend.
		ws.s.upIn.resets.Add(1)
		fjournal.Append(0, flight.Entry{Kind: flight.KindWireReset, TimeNs: int64(ws.s.now())})
		ws.ctl = transmit.MarshalWireReset(ws.ctl[:0])
		send(ws.ctl)
	default:
		return true
	}
	if n, ok := ws.bdec.PendingAck(); ok {
		ws.ctl = transmit.MarshalDictAck(ws.ctl[:0], n)
		send(ws.ctl)
	}
	return false
}
