package core

import (
	"net"
	"sync"
	"time"

	"clusterworx/internal/transmit"
)

// This file carries agent traffic over real TCP for the daemons: agents
// dial the server's agent port and stream framed change sets (the
// §5.3.3 transmission stage on an actual socket) — deflate-compressed
// v1 text until the session negotiates the v2 binary format (wire.go),
// which ships raw since it is already dictionary/XOR-coded. The server
// writes control frames (resync requests, wire answers, dict acks) back
// down the same connection.

// ServeAgents accepts agent connections until the listener closes. Each
// frame is decoded and fed to HandleFrame.
func (s *Server) ServeAgents(l net.Listener) error {
	var wg sync.WaitGroup
	defer wg.Wait()
	for {
		conn, err := l.Accept()
		if err != nil {
			return err
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer conn.Close()
			s.serveAgentConn(conn)
		}()
	}
}

func (s *Server) serveAgentConn(conn net.Conn) {
	r := transmit.NewReader(conn)
	// Control frames are a few bytes; compression would only inflate them.
	w := transmit.NewWriter(conn, false)
	ws := &wireServer{s: s}
	send := func(ctl []byte) {
		if w.WriteFrame(ctl) != nil {
			conn.Close() // unblocks ReadFrame below; session ends
		}
	}
	for {
		frame, err := r.ReadFrame()
		if err != nil {
			return // io.EOF on clean agent shutdown, anything else likewise ends the session
		}
		if ws.handle(frame, send) {
			return // protocol violation: drop the connection
		}
	}
}

// AgentConn is a server connection from the agent side.
type AgentConn struct {
	conn net.Conn
	w    *transmit.Writer
	ws   *wireClient
}

// DialAgent connects an agent to the server's agent port with wire
// compression enabled and the v2 wire upgrade on offer.
func DialAgent(addr string, timeout time.Duration) (*AgentConn, error) {
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, err
	}
	return &AgentConn{conn: conn, w: transmit.NewWriter(conn, true), ws: newWireClient("", true)}, nil
}

// DisableWireV2 pins the connection to the v1 text protocol (the
// -wire-v1 escape hatch). Call before the first SendFrame.
func (a *AgentConn) DisableWireV2() { a.ws.disable() }

// WireV2 reports whether the session has negotiated the binary v2 wire
// format.
func (a *AgentConn) WireV2() bool { return a.ws.V2() }

// Transport returns the legacy unsequenced Transport shipping through
// this connection.
func (a *AgentConn) Transport() Transport { return WireTransport(a.w) }

// SendFrame ships one sequenced frame — wire AgentConfig.SendFrame to it
// for the loss-tolerant protocol, and install OnResync so the server's
// gap detection (and the wire negotiation) can reach the agent.
func (a *AgentConn) SendFrame(f transmit.Frame) error {
	payload := a.ws.marshal(f)
	var err error
	if transmit.IsV2Payload(payload) {
		err = a.w.WriteFrameRaw(payload)
	} else {
		err = a.w.WriteFrame(payload)
	}
	if err != nil {
		a.ws.sendFailed()
	}
	return err
}

// OnResync starts the connection's read side: a goroutine decoding
// server control frames and invoking fn for each resync request (fn must
// be safe to call from that goroutine — Agent.RequestResync is). Wire
// negotiation answers and dictionary acks are consumed here too, so
// install it even on sessions that never expect a resync. Call at most
// once; the goroutine exits when the connection closes.
func (a *AgentConn) OnResync(fn func(node string)) {
	go func() {
		r := transmit.NewReader(a.conn)
		for {
			frame, err := r.ReadFrame()
			if err != nil {
				return
			}
			if a.ws.control(frame, 0) {
				if node, ok := transmit.ParseResync(frame); ok {
					fn(node)
				}
			}
		}
	}()
}

// Stats returns raw and on-wire byte counts (the compression win).
func (a *AgentConn) Stats() (raw, wire int64) { return a.w.RawBytes(), a.w.WireBytes() }

// Close ends the connection.
func (a *AgentConn) Close() error { return a.conn.Close() }

// UplinkClientConfig configures a TCP federation session (cwxd -uplink).
type UplinkClientConfig struct {
	// Addr is the parent server's agent-port address. Uplink batches ride
	// the same port as agent frames; the parent routes on the payload.
	Addr string
	// Period is the flush cadence (0 = 1s).
	Period time.Duration
	// V1Only pins the session to v1 per-node frames (-uplink-v1).
	V1Only bool
	// AntiEntropy forces periodic snap-all flushes (0 disables).
	AntiEntropy time.Duration
	// MaxBatch bounds node sections per batch frame (0 = default).
	MaxBatch int
	// Rollup, if set, is Ticked immediately before every flush so the
	// tier's subtree aggregate rides the same uplink batch as the raw
	// deltas it summarizes (cwxd -rollup; FedSim orders its virtual
	// timer chains the same way).
	Rollup *Rollup
}

// UplinkClient maintains a child server's federation session to a parent
// over TCP: it dials the parent's agent port, attaches an Uplink to the
// server, flushes it every period, feeds parent control traffic back,
// and redials — with a session restart, so negotiation and full state
// re-establish — whenever the connection drops. The connection fields
// are confined to the run goroutine (dial, Flush, and teardown all
// execute there), so they need no lock; the Uplink's own session lock
// serializes Flush against the reader's HandleControl calls.
type UplinkClient struct {
	s   *Server
	u   *Uplink
	cfg UplinkClientConfig

	conn net.Conn
	w    *transmit.Writer

	stop chan struct{}
	done chan struct{}
}

// errUplinkDown is returned by the Send hook between connections; the
// uplink re-marks the affected nodes and the next flush retries.
var errUplinkDown = net.ErrClosed

// StartUplink attaches a federation uplink to s and starts the forwarder
// goroutine. Stop it with Close.
func StartUplink(s *Server, cfg UplinkClientConfig) *UplinkClient {
	if cfg.Period <= 0 {
		cfg.Period = time.Second
	}
	c := &UplinkClient{
		s:    s,
		cfg:  cfg,
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}
	c.u = NewUplink(s, UplinkConfig{
		Send:        c.send,
		V1Only:      cfg.V1Only,
		AntiEntropy: cfg.AntiEntropy,
		MaxBatch:    cfg.MaxBatch,
	})
	s.SetUplink(c.u)
	go c.run()
	return c
}

// Uplink exposes the session for stats.
func (c *UplinkClient) Uplink() *Uplink { return c.u }

// send ships one payload on the current connection. Batch and v2 frames
// are already dictionary/XOR-coded, so they skip wire compression just
// as agent v2 traffic does.
func (c *UplinkClient) send(payload []byte) error {
	if c.w == nil {
		return errUplinkDown
	}
	if transmit.IsV2Payload(payload) {
		return c.w.WriteFrameRaw(payload)
	}
	return c.w.WriteFrame(payload)
}

// run is the forwarder loop: one Flush per period, dialing (or redialing
// after a send failure) at most once per period so a dead parent costs
// one connect attempt per second, not a hot loop.
func (c *UplinkClient) run() {
	defer close(c.done)
	t := time.NewTicker(c.cfg.Period) //cwx:allow clockdet -- daemon-only transport (cwxd -uplink): flush cadence is real wall time; simulations drive uplinks from FedSim's virtual timer chains instead
	defer t.Stop()
	for {
		select {
		case <-c.stop:
			c.drop()
			return
		case <-t.C:
			if c.cfg.Rollup != nil {
				c.cfg.Rollup.Tick()
			}
			if c.conn == nil && !c.dial() {
				continue
			}
			if _, err := c.u.Flush(int64(c.s.now())); err != nil {
				c.drop()
			}
		}
	}
}

// dial opens a fresh connection and restarts the uplink session: the
// parent's receive state is per-connection, so negotiation and the full
// snapshot must re-run from scratch.
func (c *UplinkClient) dial() bool {
	conn, err := net.DialTimeout("tcp", c.cfg.Addr, c.cfg.Period)
	if err != nil {
		return false
	}
	c.conn = conn
	c.w = transmit.NewWriter(conn, true)
	c.u.Restart()
	u, s := c.u, c.s
	// Per-connection control reader; exits when the connection closes
	// (locally via drop, or remotely when the parent goes away — the next
	// flush's send error then triggers the redial).
	go func() {
		r := transmit.NewReader(conn)
		for {
			ctl, err := r.ReadFrame()
			if err != nil {
				return
			}
			u.HandleControl(ctl, int64(s.now()))
		}
	}()
	return true
}

// drop closes the current connection (unblocking its reader goroutine).
func (c *UplinkClient) drop() {
	if c.conn != nil {
		c.conn.Close()
		c.conn, c.w = nil, nil
	}
}

// Close stops the forwarder, waits for it to exit, and detaches the
// uplink from the server.
func (c *UplinkClient) Close() {
	close(c.stop)
	<-c.done
	c.s.SetUplink(nil)
}

// RollupRunner drives a tier's Rollup on a wall-clock cadence for
// servers with no uplink to piggyback on (the root of a daemon tree, or
// a standalone server that wants subtree aggregates). Uplinked tiers
// should instead set UplinkClientConfig.Rollup so the aggregate rides
// the same flush as the deltas it summarizes.
type RollupRunner struct {
	stop chan struct{}
	done chan struct{}
}

// StartRollup ticks r every period (0 = 1s). Stop it with Close.
func StartRollup(r *Rollup, period time.Duration) *RollupRunner {
	if period <= 0 {
		period = time.Second
	}
	rr := &RollupRunner{stop: make(chan struct{}), done: make(chan struct{})}
	go func() {
		defer close(rr.done)
		t := time.NewTicker(period) //cwx:allow clockdet -- daemon-only (cwxd -rollup without -uplink): aggregate cadence is real wall time; simulations drive rollups from FedSim's virtual timer chains instead
		defer t.Stop()
		for {
			select {
			case <-rr.stop:
				return
			case <-t.C:
				r.Tick()
			}
		}
	}()
	return rr
}

// Close stops the runner and waits for it to exit.
func (rr *RollupRunner) Close() {
	close(rr.stop)
	<-rr.done
}
