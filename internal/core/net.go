package core

import (
	"net"
	"sync"
	"time"

	"clusterworx/internal/transmit"
)

// This file carries agent traffic over real TCP for the daemons: agents
// dial the server's agent port and stream framed, deflate-compressed
// change sets (the §5.3.3 transmission stage on an actual socket).

// ServeAgents accepts agent connections until the listener closes. Each
// frame is decoded and fed to HandleValues.
func (s *Server) ServeAgents(l net.Listener) error {
	var wg sync.WaitGroup
	defer wg.Wait()
	for {
		conn, err := l.Accept()
		if err != nil {
			return err
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer conn.Close()
			s.serveAgentConn(conn)
		}()
	}
}

func (s *Server) serveAgentConn(conn net.Conn) {
	r := transmit.NewReader(conn)
	for {
		frame, err := r.ReadFrame()
		if err != nil {
			return // io.EOF on clean agent shutdown, anything else likewise ends the session
		}
		nodeName, values, err := ReadWireValues(frame)
		if err != nil {
			return // protocol violation: drop the connection
		}
		s.HandleValues(nodeName, values)
	}
}

// AgentConn is a server connection from the agent side.
type AgentConn struct {
	conn net.Conn
	w    *transmit.Writer
}

// DialAgent connects an agent to the server's agent port with wire
// compression enabled.
func DialAgent(addr string, timeout time.Duration) (*AgentConn, error) {
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, err
	}
	return &AgentConn{conn: conn, w: transmit.NewWriter(conn, true)}, nil
}

// Transport returns the Transport shipping through this connection.
func (a *AgentConn) Transport() Transport { return WireTransport(a.w) }

// Stats returns raw and on-wire byte counts (the compression win).
func (a *AgentConn) Stats() (raw, wire int64) { return a.w.RawBytes(), a.w.WireBytes() }

// Close ends the connection.
func (a *AgentConn) Close() error { return a.conn.Close() }
