package core

import (
	"net"
	"sync"
	"time"

	"clusterworx/internal/transmit"
)

// This file carries agent traffic over real TCP for the daemons: agents
// dial the server's agent port and stream framed change sets (the
// §5.3.3 transmission stage on an actual socket) — deflate-compressed
// v1 text until the session negotiates the v2 binary format (wire.go),
// which ships raw since it is already dictionary/XOR-coded. The server
// writes control frames (resync requests, wire answers, dict acks) back
// down the same connection.

// ServeAgents accepts agent connections until the listener closes. Each
// frame is decoded and fed to HandleFrame.
func (s *Server) ServeAgents(l net.Listener) error {
	var wg sync.WaitGroup
	defer wg.Wait()
	for {
		conn, err := l.Accept()
		if err != nil {
			return err
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer conn.Close()
			s.serveAgentConn(conn)
		}()
	}
}

func (s *Server) serveAgentConn(conn net.Conn) {
	r := transmit.NewReader(conn)
	// Control frames are a few bytes; compression would only inflate them.
	w := transmit.NewWriter(conn, false)
	ws := &wireServer{s: s}
	send := func(ctl []byte) {
		if w.WriteFrame(ctl) != nil {
			conn.Close() // unblocks ReadFrame below; session ends
		}
	}
	for {
		frame, err := r.ReadFrame()
		if err != nil {
			return // io.EOF on clean agent shutdown, anything else likewise ends the session
		}
		if ws.handle(frame, send) {
			return // protocol violation: drop the connection
		}
	}
}

// AgentConn is a server connection from the agent side.
type AgentConn struct {
	conn net.Conn
	w    *transmit.Writer
	ws   *wireClient
}

// DialAgent connects an agent to the server's agent port with wire
// compression enabled and the v2 wire upgrade on offer.
func DialAgent(addr string, timeout time.Duration) (*AgentConn, error) {
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, err
	}
	return &AgentConn{conn: conn, w: transmit.NewWriter(conn, true), ws: newWireClient("", true)}, nil
}

// DisableWireV2 pins the connection to the v1 text protocol (the
// -wire-v1 escape hatch). Call before the first SendFrame.
func (a *AgentConn) DisableWireV2() { a.ws.disable() }

// WireV2 reports whether the session has negotiated the binary v2 wire
// format.
func (a *AgentConn) WireV2() bool { return a.ws.V2() }

// Transport returns the legacy unsequenced Transport shipping through
// this connection.
func (a *AgentConn) Transport() Transport { return WireTransport(a.w) }

// SendFrame ships one sequenced frame — wire AgentConfig.SendFrame to it
// for the loss-tolerant protocol, and install OnResync so the server's
// gap detection (and the wire negotiation) can reach the agent.
func (a *AgentConn) SendFrame(f transmit.Frame) error {
	payload := a.ws.marshal(f)
	var err error
	if transmit.IsV2Payload(payload) {
		err = a.w.WriteFrameRaw(payload)
	} else {
		err = a.w.WriteFrame(payload)
	}
	if err != nil {
		a.ws.sendFailed()
	}
	return err
}

// OnResync starts the connection's read side: a goroutine decoding
// server control frames and invoking fn for each resync request (fn must
// be safe to call from that goroutine — Agent.RequestResync is). Wire
// negotiation answers and dictionary acks are consumed here too, so
// install it even on sessions that never expect a resync. Call at most
// once; the goroutine exits when the connection closes.
func (a *AgentConn) OnResync(fn func(node string)) {
	go func() {
		r := transmit.NewReader(a.conn)
		for {
			frame, err := r.ReadFrame()
			if err != nil {
				return
			}
			if a.ws.control(frame, 0) {
				if node, ok := transmit.ParseResync(frame); ok {
					fn(node)
				}
			}
		}
	}()
}

// Stats returns raw and on-wire byte counts (the compression win).
func (a *AgentConn) Stats() (raw, wire int64) { return a.w.RawBytes(), a.w.WireBytes() }

// Close ends the connection.
func (a *AgentConn) Close() error { return a.conn.Close() }
