package core

import (
	"net"
	"sync"
	"time"

	"clusterworx/internal/transmit"
)

// This file carries agent traffic over real TCP for the daemons: agents
// dial the server's agent port and stream framed, deflate-compressed
// change sets (the §5.3.3 transmission stage on an actual socket). The
// server writes resync-request control frames back down the same
// connection when it detects a sequence gap, closing the loss-tolerance
// loop.

// ServeAgents accepts agent connections until the listener closes. Each
// frame is decoded and fed to HandleFrame.
func (s *Server) ServeAgents(l net.Listener) error {
	var wg sync.WaitGroup
	defer wg.Wait()
	for {
		conn, err := l.Accept()
		if err != nil {
			return err
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer conn.Close()
			s.serveAgentConn(conn)
		}()
	}
}

func (s *Server) serveAgentConn(conn net.Conn) {
	r := transmit.NewReader(conn)
	// Control frames are a few bytes; compression would only inflate them.
	w := transmit.NewWriter(conn, false)
	var ctl []byte
	for {
		frame, err := r.ReadFrame()
		if err != nil {
			return // io.EOF on clean agent shutdown, anything else likewise ends the session
		}
		f, err := transmit.ParseFrame(frame)
		if err != nil {
			return // protocol violation: drop the connection
		}
		if err := s.HandleFrame(f); err == ErrResyncNeeded {
			ctl = transmit.MarshalResync(ctl[:0], f.Node)
			if err := w.WriteFrame(ctl); err != nil {
				return
			}
		}
	}
}

// AgentConn is a server connection from the agent side.
type AgentConn struct {
	conn net.Conn
	w    *transmit.Writer
	buf  []byte // SendFrame marshal scratch
}

// DialAgent connects an agent to the server's agent port with wire
// compression enabled.
func DialAgent(addr string, timeout time.Duration) (*AgentConn, error) {
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, err
	}
	return &AgentConn{conn: conn, w: transmit.NewWriter(conn, true)}, nil
}

// Transport returns the legacy unsequenced Transport shipping through
// this connection.
func (a *AgentConn) Transport() Transport { return WireTransport(a.w) }

// SendFrame ships one sequenced frame — wire AgentConfig.SendFrame to it
// for the loss-tolerant protocol, and install OnResync so the server's
// gap detection can reach the agent.
func (a *AgentConn) SendFrame(f transmit.Frame) error {
	a.buf = transmit.MarshalFrame(a.buf[:0], f)
	return a.w.WriteFrame(a.buf)
}

// OnResync starts the connection's read side: a goroutine decoding
// server control frames and invoking fn for each resync request (fn must
// be safe to call from that goroutine — Agent.RequestResync is). Call at
// most once; the goroutine exits when the connection closes.
func (a *AgentConn) OnResync(fn func(node string)) {
	go func() {
		r := transmit.NewReader(a.conn)
		for {
			frame, err := r.ReadFrame()
			if err != nil {
				return
			}
			if node, ok := transmit.ParseResync(frame); ok {
				fn(node)
			}
		}
	}()
}

// Stats returns raw and on-wire byte counts (the compression win).
func (a *AgentConn) Stats() (raw, wire int64) { return a.w.RawBytes(), a.w.WireBytes() }

// Close ends the connection.
func (a *AgentConn) Close() error { return a.conn.Close() }
