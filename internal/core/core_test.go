package core

import (
	"bytes"
	"fmt"
	"net"
	"strings"
	"testing"
	"time"

	"clusterworx/internal/clock"
	"clusterworx/internal/cloning"
	"clusterworx/internal/consolidate"
	"clusterworx/internal/events"
	"clusterworx/internal/image"
	"clusterworx/internal/node"
	"clusterworx/internal/transmit"
)

// bootSim builds an n-node sim, powers everything up, and settles.
func bootSim(t *testing.T, n int) *Sim {
	t.Helper()
	sim, err := NewSim(SimConfig{Nodes: n, Cluster: "test"})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(sim.Stop)
	sim.PowerOnAll()
	sim.Advance(30 * time.Second)
	return sim
}

func TestSimBootsAndReports(t *testing.T) {
	sim := bootSim(t, 12)
	status := sim.Server.Status()
	if len(status) != 12 {
		t.Fatalf("status rows = %d", len(status))
	}
	for _, st := range status {
		if !st.Alive {
			t.Fatalf("node %s not alive: %+v", st.Name, st)
		}
		if st.Values < 40 {
			t.Fatalf("node %s has %d values, want >40", st.Name, st.Values)
		}
	}
	if len(sim.Boxes) != 2 {
		t.Fatalf("boxes = %d for 12 nodes", len(sim.Boxes))
	}
}

func TestServerSeesLoadChange(t *testing.T) {
	sim := bootSim(t, 2)
	sim.Node("node001").SetLoad(3)
	sim.Advance(5 * time.Minute)
	v, ok := sim.Server.NodeValue("node001", "load.1")
	if !ok || v.Num < 2 {
		t.Fatalf("load.1 = %+v", v)
	}
	// History accumulated.
	series := sim.Server.History().Series("node001", "load.1")
	if series == nil || series.Len() < 10 {
		t.Fatal("no load history")
	}
	slope, ok := series.Trend(0, sim.Clk.Now())
	if !ok || slope <= 0 {
		t.Fatalf("trend = %v, %v", slope, ok)
	}
}

func TestDeadNodeGoesStale(t *testing.T) {
	sim := bootSim(t, 2)
	sim.Node("node000").Crash("wedged")
	sim.Advance(time.Minute)
	for _, st := range sim.Server.Status() {
		switch st.Name {
		case "node000":
			if st.Alive {
				t.Fatal("crashed node still alive on server")
			}
		case "node001":
			if !st.Alive {
				t.Fatal("healthy node marked down")
			}
		}
	}
}

func TestEventEnginePowersDownOverheatingNode(t *testing.T) {
	sim := bootSim(t, 4)
	sim.Server.Engine().AddRule(events.Rule{
		Name: "overtemp", Metric: "hw.temp.cpu", Op: events.GT, Threshold: 85,
		Action: events.ActPowerOff, Notify: true,
	})
	victim := sim.Node("node002")
	victim.SetLoad(1)
	sim.Advance(3 * time.Minute)
	victim.FailFan()
	// The temperature climbs toward 105 °C; damage at 95 °C. The rule must
	// cut power first.
	sim.Advance(20 * time.Minute)
	if victim.Damaged() {
		t.Fatalf("node burned at %.1f°C despite the event engine", victim.Temperature())
	}
	if victim.State() != node.PowerOff {
		t.Fatalf("victim state = %v, want off", victim.State())
	}
	// Exactly one notification for the incident.
	if got := sim.Mailer.Count(); got != 1 {
		t.Fatalf("mails = %d", got)
	}
	msg := sim.Mailer.Messages()[0]
	if !strings.Contains(msg.Body, "node002") || !strings.Contains(msg.Body, "power-off") {
		t.Fatalf("mail body:\n%s", msg.Body)
	}
	// Other nodes untouched.
	if sim.Node("node001").State() != node.Up {
		t.Fatal("bystander node affected")
	}
}

func TestConsoleThroughServer(t *testing.T) {
	sim := bootSim(t, 1)
	sim.Node("node000").Crash("post-mortem me")
	data, err := sim.Server.Console("node000")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "post-mortem me") {
		t.Fatal("console dump missing panic")
	}
	if _, err := sim.Server.Console("ghost"); err == nil {
		t.Fatal("console for unknown node succeeded")
	}
}

func TestPowerControlThroughServer(t *testing.T) {
	sim := bootSim(t, 2)
	if err := sim.Server.PowerOff("node001"); err != nil {
		t.Fatal(err)
	}
	if sim.Node("node001").State() != node.PowerOff {
		t.Fatal("power off failed")
	}
	if err := sim.Server.PowerOn("node001"); err != nil {
		t.Fatal(err)
	}
	sim.Advance(10 * time.Second)
	if sim.Node("node001").State() != node.Up {
		t.Fatal("power on failed")
	}
	if err := sim.Server.Reset("node001"); err != nil {
		t.Fatal(err)
	}
	sim.Advance(10 * time.Second)
	if sim.Node("node001").State() != node.Up {
		t.Fatal("reset failed")
	}
	if err := sim.Server.PowerCycle("node001"); err != nil {
		t.Fatal(err)
	}
	sim.Advance(15 * time.Second)
	if sim.Node("node001").State() != node.Up {
		t.Fatal("cycle failed")
	}
	if err := sim.Server.PowerOn("ghost"); err == nil {
		t.Fatal("power to unknown node succeeded")
	}
}

func TestSimClone(t *testing.T) {
	sim := bootSim(t, 5)
	img, err := image.Prebuilt("nfsboot")
	if err != nil {
		t.Fatal(err)
	}
	targets := []string{"node001", "node002", "node003"}
	res, err := sim.Clone(img, targets, 0.02, cloningParamsForTest())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.NodeUp) != 3 {
		t.Fatalf("cloned %d nodes", len(res.NodeUp))
	}
	for _, name := range targets {
		if sim.NodeImage(name) != img.ID() {
			t.Fatalf("node %s image = %q", name, sim.NodeImage(name))
		}
	}
	sim.Advance(30 * time.Second)
	for _, name := range targets {
		if sim.Node(name).State() != node.Up {
			t.Fatalf("cloned node %s = %v", name, sim.Node(name).State())
		}
	}
	// Untouched node kept its (empty) image.
	if sim.NodeImage("node000") != "" {
		t.Fatal("non-target node cloned")
	}
	if _, err := sim.Clone(img, []string{"ghost"}, 0, cloningParamsForTest()); err == nil {
		t.Fatal("clone of unknown node succeeded")
	}
	if _, err := sim.Clone(img, nil, 0, cloningParamsForTest()); err == nil {
		t.Fatal("clone without targets succeeded")
	}
}

func TestAgentStopsWithNode(t *testing.T) {
	sim := bootSim(t, 1)
	a := sim.Agents[0]
	before := a.Transmissions()
	sim.Advance(10 * time.Second)
	if a.Transmissions() <= before {
		t.Fatal("agent not transmitting while node up")
	}
	sim.Node("node000").PowerOff()
	mid := a.Transmissions()
	sim.Advance(time.Minute)
	if a.Transmissions() != mid {
		t.Fatal("agent transmitted while node off")
	}
	sim.Node("node000").PowerOn()
	sim.Advance(30 * time.Second)
	if a.Transmissions() <= mid {
		t.Fatal("agent did not resume after reboot")
	}
}

func TestChangeOnlyTransmission(t *testing.T) {
	sim := bootSim(t, 1)
	sim.Advance(2 * time.Minute)
	st := sim.Agents[0].Consolidator().Stats()
	if st.Suppressed == 0 {
		t.Fatal("no suppression on an idle node")
	}
	if st.Collected != st.Changed+st.Suppressed {
		t.Fatal("consolidation stats unbalanced")
	}
}

func TestHandleCtl(t *testing.T) {
	sim := bootSim(t, 2)
	cases := []struct {
		req     string
		wantPfx string
		want    string
	}{
		{"ping", "OK", "pong"},
		{"status", "OK", "node000"},
		{"nodes", "OK", "node001"},
		{"values node000", "OK", "load.1"},
		{"value node000 host.name", "OK", "node000"},
		{"history node000 load.1 5", "OK", ""},
		{"trend node000 uptime.sec", "OK", "per hour"},
		{"power off node001", "OK", ""},
		{"power on node001", "OK", ""},
		{"reset node000", "OK", ""},
		{"console node000", "OK", "LinuxBIOS"},
		{"rules", "OK", ""},
		{"eventlog", "OK", ""},
		{"images", "OK", ""},
		{"value ghost x", "ERR", ""},
		{"values ghost", "ERR", ""},
		{"history node000 load.1 bogus", "ERR", ""},
		{"history node000 nothere", "ERR", ""},
		{"trend node000 nothere", "ERR", ""},
		{"power fry node000", "ERR", ""},
		{"power on", "ERR", "usage"},
		{"reset", "ERR", "usage"},
		{"console ghost", "ERR", ""},
		{"eventlog x", "ERR", ""},
		{"wat", "ERR", "unknown"},
		{"", "ERR", ""},
	}
	for _, tc := range cases {
		resp := sim.Server.HandleCtl(tc.req)
		if !strings.HasPrefix(resp, tc.wantPfx) {
			t.Errorf("%q -> %q, want prefix %s", tc.req, firstLine(resp), tc.wantPfx)
		}
		if tc.want != "" && !strings.Contains(resp, tc.want) {
			t.Errorf("%q -> missing %q in %q", tc.req, tc.want, firstLine(resp))
		}
		sim.Advance(time.Second)
	}
}

func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i]
	}
	return s
}

func TestCtlOverTCP(t *testing.T) {
	sim := bootSim(t, 1)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go sim.Server.ServeCtl(l) //nolint:errcheck // ends with listener

	c, err := DialCtl(l.Addr().String(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	resp, err := c.Do("ping")
	if err != nil || !strings.Contains(resp, "pong") {
		t.Fatalf("ping: %q %v", resp, err)
	}
	resp, err = c.Do("status")
	if err != nil || !strings.Contains(resp, "node000") {
		t.Fatalf("status: %q %v", resp, err)
	}
	if _, err := c.Do("definitely not a command"); err == nil {
		t.Fatal("bad request returned no error")
	}
}

func TestAgentOverTCP(t *testing.T) {
	srv := NewServer(ServerConfig{Cluster: "net"})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go srv.ServeAgents(l) //nolint:errcheck // ends with listener

	ac, err := DialAgent(l.Addr().String(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer ac.Close()
	tr := ac.Transport()
	vals := []consolidate.Value{
		consolidate.NumValue("load.1", consolidate.Dynamic, 0.75),
		consolidate.TextValue("cpu.type", consolidate.Static, "Pentium III"),
	}
	if err := tr("netnode", vals); err != nil {
		t.Fatal(err)
	}
	// The server processes asynchronously; poll briefly.
	deadline := time.Now().Add(2 * time.Second)
	for {
		if v, ok := srv.NodeValue("netnode", "load.1"); ok && v.Num == 0.75 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("value never arrived over TCP")
		}
		time.Sleep(5 * time.Millisecond)
	}
	raw, wire := ac.Stats()
	if raw <= 0 || wire <= 0 {
		t.Fatalf("stats = %d/%d", raw, wire)
	}
}

// TestResyncOverTCP exercises the sequenced protocol's TCP back-channel:
// a sequence gap on the wire must come back to the agent side as a
// resync request, and a snapshot frame must clear the divergence.
func TestResyncOverTCP(t *testing.T) {
	srv := NewServer(ServerConfig{Cluster: "net"})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go srv.ServeAgents(l) //nolint:errcheck // ends with listener

	ac, err := DialAgent(l.Addr().String(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer ac.Close()
	resyncs := make(chan string, 4)
	ac.OnResync(func(node string) { resyncs <- node })

	vals := []consolidate.Value{consolidate.NumValue("load.1", consolidate.Dynamic, 0.5)}
	if err := ac.SendFrame(transmit.Frame{Node: "netnode", Seq: 1, Kind: transmit.FrameDelta, Values: vals}); err != nil {
		t.Fatal(err)
	}
	// Seq 3: frame 2 "was lost" — the server must ask for a resync.
	if err := ac.SendFrame(transmit.Frame{Node: "netnode", Seq: 3, Kind: transmit.FrameDelta, Values: vals}); err != nil {
		t.Fatal(err)
	}
	select {
	case node := <-resyncs:
		if node != "netnode" {
			t.Fatalf("resync for %q", node)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("no resync request arrived over TCP")
	}
	// Heal with a snapshot and confirm the server agrees.
	if err := ac.SendFrame(transmit.Frame{Node: "netnode", Seq: 4, Kind: transmit.FrameSnapshot, Values: vals}); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		states := srv.SyncStates()
		if len(states) == 1 && states[0].Synced && states[0].Snapshots == 1 {
			if states[0].Gaps != 1 {
				t.Fatalf("gaps = %d, want 1", states[0].Gaps)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("snapshot never healed the node: %+v", states)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestReadWireValuesEdge(t *testing.T) {
	// Frame without newline: name only, no values.
	name, vals, err := ReadWireValues([]byte("lonely"))
	if err != nil || name != "lonely" || len(vals) != 0 {
		t.Fatalf("%q %v %v", name, vals, err)
	}
}

func TestReadWireValuesMalformed(t *testing.T) {
	// A truncated or corrupted frame must surface as an error, never as a
	// registry entry under a garbage node name.
	cases := []struct {
		name  string
		frame []byte
	}{
		{"empty", nil},
		{"truncated sequenced header", []byte("node042 17\n")},
		{"missing value separator", []byte("node042\nload.1Dn1.5\n")},
		{"truncated value line", []byte("node042\nload.1 D\n")},
		{"binary garbage", []byte{0x1f, 0x8b, 0x00, 0xff, 0xfe}},
		{"whitespace node name", []byte("\nload.1 D n 1.5\n")},
		{"corrupt quoted text", []byte("node042\nos.rel S t \"Lin\n")},
	}
	for _, tc := range cases {
		name, _, err := ReadWireValues(tc.frame)
		if err == nil {
			t.Errorf("%s: accepted malformed frame, node = %q", tc.name, name)
		}
	}
}

// TestCorruptCompressedWireFrame drives corrupted deflate bodies through
// the full wire path. Raw deflate carries no checksum, so a flipped byte
// can decode "successfully" into garbage — the decode+parse pipeline as
// a whole must reject the frame rather than yield a mangled node name.
func TestCorruptCompressedWireFrame(t *testing.T) {
	vals := make([]consolidate.Value, 0, 64)
	for i := 0; i < 64; i++ {
		vals = append(vals, consolidate.NumValue(fmt.Sprintf("metric.%02d.value", i), consolidate.Dynamic, float64(i)))
	}
	for flip := 6; flip < 20; flip++ {
		var buf bytes.Buffer
		send := WireFrameTransport(transmit.NewWriter(&buf, true))
		if err := send(transmit.Frame{Node: "node042", Seq: 3, Kind: transmit.FrameDelta, Values: vals}); err != nil {
			t.Fatal(err)
		}
		wire := buf.Bytes()
		wire[flip] ^= 0xff
		payload, err := transmit.NewReader(bytes.NewReader(wire)).ReadFrame()
		if err != nil {
			continue // rejected at the framing layer: fine
		}
		if name, _, err := ReadWireValues(payload); err == nil && name != "node042" {
			t.Fatalf("flip at %d: corrupt frame accepted with node name %q", flip, name)
		}
	}
}

func TestNewSimValidation(t *testing.T) {
	if _, err := NewSim(SimConfig{Nodes: 0}); err == nil {
		t.Fatal("empty sim accepted")
	}
}

// cloningParamsForTest keeps clone tests quick.
func cloningParamsForTest() cloning.Params {
	return cloning.Params{}
}

func TestServerAccessors(t *testing.T) {
	sim := bootSim(t, 1)
	if sim.Server.Cluster() != "test" {
		t.Fatalf("Cluster = %q", sim.Server.Cluster())
	}
	if len(sim.Server.ICEBoxes()) != 1 {
		t.Fatal("ICEBoxes wrong")
	}
	if sim.Server.Images() == nil || sim.Server.History() == nil || sim.Server.Engine() == nil {
		t.Fatal("nil subsystem accessor")
	}
}

func TestActuatorResetAndHalt(t *testing.T) {
	sim := bootSim(t, 1)
	// Drive the Reset and Halt actions through the event engine, which
	// uses the serverActuator adapter.
	sim.Server.Engine().AddRule(events.Rule{
		Name: "wedge-reset", Metric: "plugin.watchdog.wedged", Op: events.GE, Threshold: 1,
		Action: events.ActReset,
	})
	sim.Server.Engine().AddRule(events.Rule{
		Name: "drain-halt", Metric: "plugin.admin.drain", Op: events.GE, Threshold: 1,
		Action: events.ActHalt,
	})
	sim.Server.Engine().ObserveMap("node000", map[string]float64{"plugin.watchdog.wedged": 1})
	sim.Advance(10 * time.Second)
	if sim.Node("node000").State() != node.Up {
		t.Fatalf("after reset action: %v", sim.Node("node000").State())
	}
	sim.Server.Engine().ObserveMap("node000", map[string]float64{"plugin.admin.drain": 1})
	sim.Advance(time.Second)
	// Halt is delivered as a power-off (the outlet is the reliable lever).
	if st := sim.Node("node000").State(); st != node.PowerOff {
		t.Fatalf("after halt action: %v", st)
	}
}

func TestAgentSendErrorsCounted(t *testing.T) {
	clk := sims(t)
	n := node.New(clk, node.Config{Name: "err"})
	n.PowerOn()
	clk.Advance(10 * time.Second)
	fails := 0
	a, err := NewAgent(clk, AgentConfig{
		Node: n,
		Transport: func(string, []consolidate.Value) error {
			fails++
			return errTransport
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Stop()
	clk.Advance(10 * time.Second)
	if a.SendErrors() == 0 || a.Transmissions() != 0 {
		t.Fatalf("errors=%d sent=%d", a.SendErrors(), a.Transmissions())
	}
}

var errTransport = fmt.Errorf("transport down")

func sims(t *testing.T) *clock.Clock {
	t.Helper()
	return clock.New()
}

func TestSimIncrementalUpdate(t *testing.T) {
	sim := bootSim(t, 3)
	v1 := image.NewBuilder("os", "1.0", image.BootDisk, 32<<20).
		AddPackage("kernel-a", 4<<20).Build()
	v2 := image.NewBuilder("os", "1.1", image.BootDisk, 32<<20).
		AddPackage("kernel-b", 4<<20).Build()
	targets := []string{"node001", "node002"}
	if _, err := sim.Clone(v1, targets, 0, cloning.Params{}); err != nil {
		t.Fatal(err)
	}
	res, err := sim.Update(v1, v2, targets, 0.01, cloning.Params{})
	if err != nil {
		t.Fatal(err)
	}
	if res.MulticastBytes > 8<<20 {
		t.Fatalf("update moved %d bytes for a 4 MB kernel", res.MulticastBytes)
	}
	for _, name := range targets {
		if sim.NodeImage(name) != v2.ID() {
			t.Fatalf("%s image = %q", name, sim.NodeImage(name))
		}
	}
	sim.Advance(30 * time.Second)
	for _, name := range targets {
		if sim.Node(name).State() != node.Up {
			t.Fatalf("%s = %v after update", name, sim.Node(name).State())
		}
	}
}
