package core

import (
	"runtime"
	"sync"

	"clusterworx/internal/consolidate"
	"clusterworx/internal/monitor"
)

// MetaNodeName is the registry entry under which the management server
// monitors itself. The meta-monitor's values land here through the same
// ingest path as any node's, so the dashboard charts them, history
// stores them, and event rules fire on them — "monitor the monitor"
// dogfooded through the paper's own pipeline.
const MetaNodeName = "cwx-server"

// MetaMonitor feeds the server's own telemetry back through the normal
// monitoring pipeline: a consolidator (change suppression and all) over
// the telemetry registry plus server/runtime vitals, ingested as the
// MetaNodeName node.
type MetaMonitor struct {
	mu   sync.Mutex //cwx:lockrank meta 2
	srv  *Server
	cons *consolidate.Consolidator
}

// NewMetaMonitor builds the self-monitoring loop for srv. Call Tick on
// whatever cadence the deployment wants (cwxd defaults to 10 s; the
// simulation wires it to the virtual clock via SimConfig.SelfMonitor).
func NewMetaMonitor(srv *Server) *MetaMonitor {
	cons := consolidate.New()
	cons.AddSource(monitor.TelemetrySource{}, 1)
	cons.AddSource(serverVitalsSource{srv}, 1)
	return &MetaMonitor{srv: srv, cons: cons}
}

// Tick runs one self-monitoring round: consolidate the current
// telemetry and ingest the change set like any agent transmission.
// Safe for concurrent use; rounds are serialized.
func (m *MetaMonitor) Tick() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.cons.Tick()
	if delta := m.cons.Delta(); len(delta) > 0 {
		m.srv.HandleValues(MetaNodeName, delta)
	}
}

// Consolidator exposes the meta-monitor's consolidation stage (for
// stats and tests).
func (m *MetaMonitor) Consolidator() *consolidate.Consolidator { return m.cons }

// serverVitalsSource contributes the management process's own vitals —
// the numbers a telemetry registry walk cannot see.
type serverVitalsSource struct{ s *Server }

// Name implements consolidate.Source.
func (serverVitalsSource) Name() string { return "server" }

// Collect implements consolidate.Source.
func (src serverVitalsSource) Collect(dst []consolidate.Value) ([]consolidate.Value, error) {
	rows := src.s.Status()
	down := 0
	for _, r := range rows {
		if !r.Alive {
			down++
		}
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	d := consolidate.Dynamic
	return append(dst,
		consolidate.NumValue("cwx.server.nodes", d, float64(len(rows))),
		consolidate.NumValue("cwx.server.nodes.down", d, float64(down)),
		consolidate.NumValue("cwx.server.goroutines", d, float64(runtime.NumGoroutine())),
		consolidate.NumValue("cwx.server.heap.kb", d, float64(ms.HeapAlloc/1024)),
		consolidate.NumValue("cwx.server.history.kb", d, float64(src.s.hist.Bytes()/1024)),
	), nil
}
