package core

import (
	"net"
	"sync"
	"testing"
	"time"

	"clusterworx/internal/consolidate"
	"clusterworx/internal/transmit"
)

// recListener records accepted connections so the test can sever them —
// the "parent dropped us" fault the uplink client must heal by
// redialing with a fresh session.
type recListener struct {
	net.Listener
	mu    sync.Mutex
	conns []net.Conn
}

func (r *recListener) Accept() (net.Conn, error) {
	c, err := r.Listener.Accept()
	if err == nil {
		r.mu.Lock()
		r.conns = append(r.conns, c)
		r.mu.Unlock()
	}
	return c, err
}

func (r *recListener) killAll() {
	r.mu.Lock()
	for _, c := range r.conns {
		c.Close()
	}
	r.conns = r.conns[:0]
	r.mu.Unlock()
}

// TestUplinkOverTCP federates two servers over a real socket: the child
// ingests a frame, the uplink client batches it upstream, the parent
// mirror converges, and a severed connection heals through redial +
// session restart (anti-entropy covers the write that died in the
// socket buffer).
func TestUplinkOverTCP(t *testing.T) {
	parent := NewServer(ServerConfig{Cluster: "parent"})
	inner, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer inner.Close()
	l := &recListener{Listener: inner}
	go parent.ServeAgents(l) //nolint:errcheck // ends with listener

	child := NewServer(ServerConfig{Cluster: "child"})
	uc := StartUplink(child, UplinkClientConfig{
		Addr:        l.Addr().String(),
		Period:      10 * time.Millisecond,
		AntiEntropy: 100 * time.Millisecond,
		Rollup:      NewRollup(child, "rack/child", ""),
	})
	rootRoll := StartRollup(NewRollup(parent, "grid/root", "rack/"), 10*time.Millisecond)
	defer rootRoll.Close()

	vals := []consolidate.Value{consolidate.NumValue("load.1", consolidate.Dynamic, 0.25)}
	if err := child.HandleFrame(transmit.Frame{Node: "fednode", Seq: 1, Kind: transmit.FrameSnapshot, Values: vals}); err != nil {
		t.Fatal(err)
	}
	waitVal := func(want float64) {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for {
			if v, ok := parent.NodeValue("fednode", "load.1"); ok && v.Num == want {
				return
			}
			if time.Now().After(deadline) {
				t.Fatalf("parent never converged to load.1 = %g", want)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
	waitFor := func(what string, ok func() bool) {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for !ok() {
			if time.Now().After(deadline) {
				t.Fatalf("timed out waiting for %s", what)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
	waitVal(0.25)
	// The daemon-path rollup chain: the child's rollup ticks with its
	// flush and publishes rack/child upstream; the parent's standalone
	// runner composes those mirrors into grid/root.
	waitFor("rack/child aggregate at parent", func() bool {
		v, ok := parent.NodeValue("rack/child", "load.1"+consolidate.RollupSum)
		return ok && v.Num == 0.25
	})
	waitFor("grid/root composed aggregate", func() bool {
		v, ok := parent.NodeValue("grid/root", "load.1"+consolidate.RollupSum)
		return ok && v.Num == 0.25
	})
	waitFor("batch-wire upgrade", func() bool { return uc.Uplink().Stats().V2 })
	waitFor("first batch ingested", func() bool {
		st := parent.UplinkInStats()
		return st.Frames > 0 && st.RawNodes > 0
	})

	// Sever the parent-side connection, then change the value. The flush
	// that hits the dead socket re-marks (or dies silently in the send
	// buffer — the anti-entropy snap-all covers that case); the client
	// must redial, restart the session, and re-converge.
	l.killAll()
	vals[0].Num = 0.5
	if err := child.HandleFrame(transmit.Frame{Node: "fednode", Seq: 2, Kind: transmit.FrameDelta, Values: vals}); err != nil {
		t.Fatal(err)
	}
	waitVal(0.5)
	// The replacement session must renegotiate the batch wire too
	// (Restart reset the flag; the fresh offer re-upgrades it).
	waitFor("batch-wire re-upgrade", func() bool { return uc.Uplink().Stats().V2 })

	uc.Close()
	if child.UplinkSession() != nil {
		t.Fatal("Close left the uplink attached")
	}
}
