package core

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"clusterworx/internal/dashboard"
	"clusterworx/internal/serve"
	"clusterworx/internal/telemetry"
)

// The serving plane: the read side of the management server. Every hot
// query verb (status, nodes, values, compare, chart, spark, efficiency,
// selfmon, sync) answers from an immutable rendering cached behind a
// serve.Gate, tagged with the generation of the data it was computed
// from. A hit is an atomic pointer load returning a shared string — no
// lock on the single-verb gates, no allocation, no timer anywhere:
// validity is "the inputs have not changed", tracked by the per-shard
// ingest generation vector in Server.
//
// History-windowed views (compare, efficiency, selfmon) end their window
// at the last ingest timestamp rather than the caller's clock, so a
// cached answer equals its uncached ablation byte for byte, and a
// simulated run renders identically no matter when the queries land.
//
// The one time-dependent answer is status: a node flips DOWN purely by
// the clock passing lastSeen+DownAfter with no ingest to move the
// generation. The status snapshot therefore carries the earliest such
// deadline, and its gate's Stale hook forces a rebuild once the clock
// passes it — liveness stays exact without any background timer.

// maxKeyedEntries bounds the per-argument gate table (values <node>,
// compare <metric>, chart/spark <node> <metric>). Past the cap, new
// argument combinations are still served — just rebuilt per request —
// so a scanner enumerating the argument space cannot grow server
// memory without bound.
const maxKeyedEntries = 16384

// statusSnap is one immutable status answer: the API rows, the ctl
// rendering, and the earliest alive→DOWN flip time (0: no alive nodes).
type statusSnap struct {
	rows     []NodeStatus
	rendered string
	deadline time.Duration
}

type plane struct {
	s *Server

	status     *serve.Gate[*statusSnap]
	nodes      *serve.Gate[string]
	efficiency *serve.Gate[string]
	selfmon    *serve.Gate[string]
	syncv      *serve.Gate[string]

	// keyed maps a raw request line ("values node007", "chart node3
	// load.1") to its gate, so a hit never parses the request at all.
	kmu   sync.RWMutex //cwx:lockrank keyed 35
	keyed map[string]*serve.Gate[string]

	hubOnce sync.Once
	hub     *serve.Hub
}

func newPlane(s *Server) *plane {
	p := &plane{s: s, keyed: make(map[string]*serve.Gate[string])}
	p.status = &serve.Gate[*statusSnap]{
		Name:  "status",
		GenFn: s.Generation,
		Stale: func(sn *statusSnap) bool { return sn.deadline > 0 && s.now() > sn.deadline },
		Build: p.buildStatus,
	}
	// The roster only changes on registration, so the name list rides
	// the registration generation: steady-state ingest never evicts it.
	p.nodes = &serve.Gate[string]{Name: "nodes", GenFn: s.regGen.Load, Build: p.buildNodes}
	p.efficiency = &serve.Gate[string]{Name: "efficiency", GenFn: s.Generation, Build: p.buildEfficiency}
	p.selfmon = &serve.Gate[string]{Name: "selfmon", GenFn: s.Generation, Build: p.buildSelfmon}
	p.syncv = &serve.Gate[string]{Name: "sync", GenFn: s.Generation, Build: p.buildSync}
	return p
}

// lastData is the serving plane's history-window end: the ingest
// timestamp of the most recent value anywhere in the cluster.
func (p *plane) lastData() time.Duration { return time.Duration(p.s.lastDataNs.Load()) }

// statusSnapshot returns the current generation's status snapshot,
// rebuilding at most once per generation (or liveness deadline).
//
//cwx:hotpath
func (p *plane) statusSnapshot() *statusSnap { return p.status.Get() }

// cached answers a ctl request from the serving plane, keyed by the raw
// request line so a hit does no parsing. The bool reports whether the
// verb is served here at all; a false send the caller to the parsing
// slow path (which also handles cacheable verbs written with unusual
// spacing or case).
//
//cwx:hotpath
func (p *plane) cached(line string) (string, bool) {
	switch line {
	case "status":
		return p.status.Get().rendered, true
	case "nodes":
		return p.nodes.Get(), true
	case "efficiency":
		return p.efficiency.Get(), true
	case "selfmon":
		return p.selfmon.Get(), true
	case "sync":
		return p.syncv.Get(), true
	}
	p.kmu.RLock()
	g := p.keyed[line]
	p.kmu.RUnlock()
	if g != nil {
		return g.Get(), true
	}
	return "", false
}

// ensureKeyed returns (creating if needed) the gate for a parsed
// argument-carrying request, registered under its raw line. Returns nil
// when the verb takes no gate or the table is at capacity — the caller
// then builds the answer directly, uncached.
func (p *plane) ensureKeyed(line, verb string, fields []string) *serve.Gate[string] {
	p.kmu.RLock()
	g := p.keyed[line]
	p.kmu.RUnlock()
	if g != nil {
		return g
	}
	switch verb {
	case "values":
		// A node's current values change only with its own stripe, so the
		// gate rides the shard generation: ingest elsewhere is invisible.
		node := fields[1]
		gen := &p.s.gens[shardIndex(node)].v
		g = &serve.Gate[string]{Name: verb, GenFn: gen.Load, Build: func() string { return p.buildValues(node) }}
	case "compare":
		metric := fields[1]
		g = &serve.Gate[string]{Name: verb, GenFn: p.s.Generation, Build: func() string { return p.buildCompare(metric) }}
	case "chart":
		node, metric := fields[1], fields[2]
		g = &serve.Gate[string]{Name: verb, GenFn: p.seriesGen(node, metric), Build: func() string { return p.buildChart(node, metric) }}
	case "spark":
		node, metric := fields[1], fields[2]
		g = &serve.Gate[string]{Name: verb, GenFn: p.seriesGen(node, metric), Build: func() string { return p.buildSpark(node, metric) }}
	default:
		return nil
	}
	p.kmu.Lock()
	if cur := p.keyed[line]; cur != nil {
		g = cur // lost a registration race; adopt the winner
	} else if len(p.keyed) < maxKeyedEntries {
		p.keyed[line] = g
	}
	p.kmu.Unlock()
	return g
}

// seriesGen gates a chart/spark rendering on its one series' append
// counter, so the rendering survives ingest on every other series. The
// high bit tags the series-generation space: entries cached while the
// series did not yet exist ride the (low, small) global generation and
// must not collide with series counters once it appears.
func (p *plane) seriesGen(node, metric string) func() uint64 {
	return func() uint64 {
		if ser := p.s.hist.Series(node, metric); ser != nil {
			return 1<<63 | ser.Gen()
		}
		return p.s.Generation()
	}
}

// watchHub lazily creates the watch dispatcher (no goroutine, no hub at
// all, until the first watch subscriber).
func (p *plane) watchHub() *serve.Hub {
	p.hubOnce.Do(func() { p.hub = serve.NewHub(p.s.Generation, &p.s.watchSig) })
	return p.hub
}

// --- builders ---------------------------------------------------------------
//
// Each builder produces the exact byte string its verb historically
// returned; the differential test asserts cached == uncached == legacy.

func (p *plane) buildStatus() *statusSnap {
	on := telemetry.On()
	s := p.s
	now := s.now()
	recs := s.allRecs()
	sort.Slice(recs, func(i, j int) bool { return recs[i].name < recs[j].name })
	snap := &statusSnap{rows: make([]NodeStatus, 0, len(recs))}
	var b strings.Builder
	b.WriteString("OK")
	downCount := 0
	for _, rec := range recs {
		rec.mu.RLock()
		st := NodeStatus{
			Name:     rec.name,
			Alive:    rec.seen && now-rec.lastSeen <= DownAfter,
			LastSeen: rec.lastSeen,
			Values:   len(rec.values),
		}
		// Liveness bookkeeping runs regardless of the telemetry kill
		// switch — down/alive transitions are state, not instrumentation;
		// only the detection counter increment is conditional.
		if st.Alive {
			rec.down.Store(false)
			if d := rec.lastSeen + DownAfter; snap.deadline == 0 || d < snap.deadline {
				snap.deadline = d
			}
		} else {
			downCount++
			if rec.seen && !rec.down.Swap(true) && on {
				mDownDetections.Inc()
			}
		}
		if v, ok := rec.values["load.1"]; ok {
			st.Load1 = v.Num
		}
		if v, ok := rec.values["hw.temp.cpu"]; ok {
			st.TempC = v.Num
		}
		if v, ok := rec.values["mem.used.pct"]; ok {
			st.MemPct = v.Num
		}
		rec.mu.RUnlock()
		snap.rows = append(snap.rows, st)
		state := "DOWN"
		if st.Alive {
			state = "up"
		}
		fmt.Fprintf(&b, "\n%-12s %-5s values=%-3d load=%-6.2f temp=%-6.1f mem%%=%.1f",
			st.Name, state, st.Values, st.Load1, st.TempC, st.MemPct)
	}
	gNodes.Set(float64(len(snap.rows)))
	gNodesDown.Set(float64(downCount))
	snap.rendered = b.String()
	return snap
}

func (p *plane) buildNodes() string {
	return "OK\n" + strings.Join(p.s.NodeNames(), "\n")
}

func (p *plane) buildValues(node string) string {
	vals := p.s.NodeValues(node)
	if vals == nil {
		return "ERR unknown node " + node
	}
	var b strings.Builder
	b.WriteString("OK")
	for _, v := range vals {
		fmt.Fprintf(&b, "\n%-28s %s", v.Name, v.Render())
	}
	return b.String()
}

func (p *plane) buildCompare(metric string) string {
	out := dashboard.CompareNodes(p.s.hist, metric, 0, p.lastData(), 30)
	return "OK\n" + strings.TrimRight(out, "\n")
}

func (p *plane) buildChart(node, metric string) string {
	series := p.s.hist.Series(node, metric)
	if series == nil {
		return fmt.Sprintf("ERR no history for %s %s", node, metric)
	}
	last, _ := series.Last()
	return "OK " + node + " " + metric + "\n" +
		strings.TrimRight(dashboard.Chart(series, 0, last.T, 60, 12), "\n")
}

func (p *plane) buildSpark(node, metric string) string {
	series := p.s.hist.Series(node, metric)
	if series == nil {
		return fmt.Sprintf("ERR no history for %s %s", node, metric)
	}
	last, _ := series.Last()
	return "OK " + dashboard.Sparkline(series, 0, last.T, 40)
}

func (p *plane) buildEfficiency() string {
	out := dashboard.EfficiencyReport(p.s.hist, 0, p.lastData(), 30)
	return "OK\n" + strings.TrimRight(out, "\n")
}

func (p *plane) buildSelfmon() string {
	out := dashboard.TelemetryPanel(p.s.hist, MetaNodeName, 0, p.lastData(), 32)
	return "OK\n" + strings.TrimRight(out, "\n")
}

func (p *plane) buildSync() string {
	var b strings.Builder
	b.WriteString("OK")
	fmt.Fprintf(&b, "\n%-12s %8s %-8s %5s %5s %7s %5s",
		"node", "seq", "state", "gaps", "regr", "resyncs", "snaps")
	for _, st := range p.s.SyncStates() {
		state := "synced"
		if !st.Synced {
			state = "DIVERGED"
		}
		fmt.Fprintf(&b, "\n%-12s %8d %-8s %5d %5d %7d %5d",
			st.Node, st.Seq, state, st.Gaps, st.Regressions, st.ResyncReqs, st.Snapshots)
	}
	return b.String()
}
