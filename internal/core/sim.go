package core

import (
	"fmt"
	"time"

	"clusterworx/internal/clock"
	"clusterworx/internal/cloning"
	"clusterworx/internal/consolidate"
	"clusterworx/internal/firmware"
	"clusterworx/internal/icebox"
	"clusterworx/internal/image"
	"clusterworx/internal/monitor"
	"clusterworx/internal/node"
	"clusterworx/internal/notify"
	"clusterworx/internal/simnet"
	"clusterworx/internal/transmit"
)

// SimTransport selects how simulated agents reach the server.
type SimTransport int

const (
	// TransportDirect calls Server.HandleValues in-process: no network
	// between agent and server, nothing can be lost. The default, and the
	// configuration every pre-existing test and benchmark runs.
	TransportDirect SimTransport = iota
	// TransportSimnet carries sequenced frames over the simulated fabric
	// on a dedicated monitoring plane ("<node>.mon" -> "master.mon"
	// endpoints, separate from the cloning data plane), with the server's
	// resync requests riding the reverse path. This is the loss-tolerant
	// protocol under test in the fault-injection harness.
	TransportSimnet
	// TransportSimnetLegacy carries the unsequenced legacy protocol over
	// the same fabric: lost change sets are never detected, reproducing
	// the silent-divergence bug the sequenced protocol fixes. Exists so
	// the harness can demonstrate the failure, not for deployment.
	TransportSimnetLegacy
)

// simMonAddr is the server's monitoring-plane endpoint address.
const simMonAddr simnet.Addr = "master.mon"

// monOverheadBytes approximates per-packet header cost (IP + UDP) on the
// monitoring plane, so frame sizes on the simulated wire are not zero
// even for empty heartbeats.
const monOverheadBytes = 28

// SimConfig sizes an in-process simulated cluster.
type SimConfig struct {
	Nodes   int
	Cluster string
	// Firmware selects per-node firmware (default LinuxBIOS 1.0.1).
	Firmware func(i int) firmware.Firmware
	// Period and Heartbeat configure the agents.
	Period    time.Duration
	Heartbeat time.Duration
	// Transport selects the agent-to-server path (default TransportDirect).
	Transport SimTransport
	// AntiEntropy overrides the agents' periodic full-snapshot refresh
	// interval (TransportSimnet only; zero keeps the agent default,
	// negative disables).
	AntiEntropy time.Duration
	// Mailer receives notifications (default: a Recording inspectable via
	// Sim.Mailer).
	Mailer notify.Mailer
	// NotifyBatch is the notification batching window.
	NotifyBatch time.Duration
	// Plugins supplies optional per-node plug-in sets.
	Plugins func(i int) *monitor.PluginSet
	// EchoSweep is the server-side connectivity probe period
	// (default 5 s; negative disables).
	EchoSweep time.Duration
	// SelfMonitor is the meta-monitor period: every SelfMonitor of virtual
	// time the server consolidates its own telemetry and ingests it as the
	// MetaNodeName node. Zero disables (unlike EchoSweep there is no
	// default-on: the extra registry entry would surprise node-count
	// assertions in existing deployments and tests).
	SelfMonitor time.Duration
	// WireV1 pins selected agents to the v1 text wire protocol
	// (TransportSimnet only; nil offers the v2 upgrade everywhere). The
	// fault harness uses it to run mixed-version clusters.
	WireV1 func(i int) bool
	Seed   int64

	// Federation plumbing (fedsim.go): a multi-tier topology builds one
	// Sim per leaf server, all sharing a clock and fabric. Defaults
	// reproduce the classic standalone sim exactly.

	// Clock, when non-nil, is shared instead of creating a new one.
	Clock *clock.Clock
	// Net, when non-nil, is the shared fabric; it is not reseeded (the
	// owner seeds once).
	Net *simnet.Network
	// MasterAddr renames the server's cloning-plane endpoint (default
	// "master") so several servers can share a fabric.
	MasterAddr simnet.Addr
	// MonAddr renames the server's monitoring-plane endpoint (default
	// "master.mon").
	MonAddr simnet.Addr
	// FirstNode offsets node numbering: node names and per-node seeds
	// derive from the global index FirstNode+i, so a federated run and a
	// flat control with the same Seed produce byte-identical value
	// streams for every node regardless of how they are partitioned into
	// leaves.
	FirstNode int
	// HistoryCapacity is passed through to ServerConfig.
	HistoryCapacity int
}

// Sim is a complete simulated cluster: nodes in ICE Boxes, agents feeding
// a management server, and a Fast Ethernet fabric for cloning — all on one
// virtual clock.
type Sim struct {
	Clk    *clock.Clock
	Server *Server
	Nodes  []*node.Node
	Boxes  []*icebox.Box
	Agents []*Agent
	Net    *simnet.Network
	// Mailer is the recording mailbox when SimConfig.Mailer was nil.
	Mailer *notify.Recording
	// Meta is the self-monitoring loop, non-nil when SimConfig.SelfMonitor
	// was set.
	Meta *MetaMonitor

	byName     map[string]*node.Node
	nodeImage  map[string]string
	masterAddr simnet.Addr
	// wires holds each agent's wire-negotiation state, indexed like
	// Agents (nil outside TransportSimnet) — the mixed-version harness
	// asserts on it.
	wires []*wireClient
}

// NewSim builds the cluster powered off; call PowerOnAll (or power nodes
// individually through Server) and then Advance the clock.
func NewSim(cfg SimConfig) (*Sim, error) {
	if cfg.Nodes <= 0 {
		return nil, fmt.Errorf("core: sim needs at least one node")
	}
	if cfg.Cluster == "" {
		cfg.Cluster = "simcluster"
	}
	if cfg.MasterAddr == "" {
		cfg.MasterAddr = "master"
	}
	if cfg.MonAddr == "" {
		cfg.MonAddr = simMonAddr
	}
	clk := cfg.Clock
	if clk == nil {
		clk = clock.New()
	}

	var rec *notify.Recording
	mailer := cfg.Mailer
	if mailer == nil {
		rec = &notify.Recording{}
		mailer = rec
	}
	notifier := notify.New(clk, mailer, notify.Config{
		Cluster: cfg.Cluster,
		Admin:   "admin@" + cfg.Cluster,
		Batch:   cfg.NotifyBatch,
	})
	srv := NewServer(ServerConfig{Cluster: cfg.Cluster, Now: clk.Now, Notifier: notifier, HistoryCapacity: cfg.HistoryCapacity})

	net := cfg.Net
	if net == nil {
		net = simnet.New(clk, 100*time.Microsecond)
		net.Seed(cfg.Seed + 99)
	}
	net.Attach(cfg.MasterAddr, simnet.FastEthernet)

	// The monitoring plane gets its own endpoints so fault injection on
	// agent traffic cannot disturb the cloning data plane's handlers (and
	// vice versa). The master side decodes every arriving frame and, for
	// the sequenced protocol, answers gap detection with a resync-request
	// control frame to the frame's source.
	var masterMon *simnet.Endpoint
	switch cfg.Transport {
	case TransportSimnet:
		masterMon = net.Attach(cfg.MonAddr, simnet.FastEthernet)
		// One wireServer per source endpoint: each agent session gets its
		// own decoder and negotiation state, exactly like one TCP
		// connection would.
		servers := make(map[simnet.Addr]*wireServer)
		masterMon.OnReceive(func(p simnet.Packet) {
			b, ok := p.Payload.([]byte)
			if !ok {
				return
			}
			ws := servers[p.Src]
			if ws == nil {
				ws = &wireServer{s: srv}
				servers[p.Src] = ws
			}
			src := p.Src
			// fatal (corrupt frame) just drops the datagram — the
			// sequence gap will tell. Control payloads are scratch-backed
			// and delivery is asynchronous, so copy before Send.
			ws.handle(b, func(ctl []byte) {
				cb := append([]byte(nil), ctl...)
				masterMon.Send(src, cb, len(cb)+monOverheadBytes)
			})
		})
	case TransportSimnetLegacy:
		masterMon = net.Attach(cfg.MonAddr, simnet.FastEthernet)
		masterMon.OnReceive(func(p simnet.Packet) {
			b, ok := p.Payload.([]byte)
			if !ok {
				return
			}
			f, err := transmit.ParseFrame(b)
			if err != nil {
				return // corrupt frame: drop, the sequence gap will tell
			}
			srv.HandleFrame(f) //nolint:errcheck // legacy protocol has no back channel
		})
	}

	sim := &Sim{
		Clk:        clk,
		Server:     srv,
		Net:        net,
		Mailer:     rec,
		byName:     make(map[string]*node.Node, cfg.Nodes),
		nodeImage:  make(map[string]string, cfg.Nodes),
		masterAddr: cfg.MasterAddr,
	}

	// Stock the image library and wire the cloning backend, so the control
	// protocol's "images" and "clone" requests work out of the box.
	for _, kind := range []string{"harddisk", "nfsboot"} {
		if im, err := image.Prebuilt(kind); err == nil {
			srv.Images().Put(im) //nolint:errcheck // fresh store cannot collide
		}
	}
	srv.SetCloner(func(imageID string, nodeNames []string) (string, error) {
		im, ok := srv.Images().Get(imageID)
		if !ok {
			return "", fmt.Errorf("core: unknown image %s", imageID)
		}
		res, err := sim.Clone(im, nodeNames, 0.01, cloning.Params{})
		if err != nil {
			return "", err
		}
		return fmt.Sprintf("cloned %s to %d node(s) in %s (%d MB multicast, %d repair chunks)",
			imageID, len(res.NodeUp), res.AllUp.Round(time.Second), res.MulticastBytes>>20, res.RepairChunks), nil
	})

	for i := 0; i < cfg.Nodes; i++ {
		global := cfg.FirstNode + i
		name := fmt.Sprintf("node%03d", global)
		ncfg := node.Config{Name: name, Seed: cfg.Seed + int64(global)}
		if cfg.Firmware != nil {
			ncfg.Firmware = cfg.Firmware(i)
		}
		n := node.New(clk, ncfg)
		sim.Nodes = append(sim.Nodes, n)
		sim.byName[name] = n
		srv.RegisterNode(name)
		srv.RegisterFirmware(name, n.Firmware())
		net.Attach(simnet.Addr(name), simnet.FastEthernet)

		// Boxes and ports follow the GLOBAL node number so a federated
		// leaf hosting nodes 30-39 puts them on ice03's ports 0-9 — the
		// same outlets, hence the same power-up stagger and boot
		// instants, as a flat sim over the whole range. That physical
		// determinism is what lets fault tests compare a federated tree
		// byte for byte against its flat control.
		if i == 0 || global%icebox.NodePorts == 0 {
			box := icebox.New(clk, fmt.Sprintf("ice%02d", global/icebox.NodePorts))
			sim.Boxes = append(sim.Boxes, box)
			srv.AddICEBox(box)
		}
		box := sim.Boxes[len(sim.Boxes)-1]
		if err := box.Connect(global%icebox.NodePorts, n); err != nil {
			return nil, err
		}

		var plugins *monitor.PluginSet
		if cfg.Plugins != nil {
			plugins = cfg.Plugins(i)
		}
		acfg := AgentConfig{
			Node:      n,
			Period:    cfg.Period,
			Heartbeat: cfg.Heartbeat,
			Plugins:   plugins,
		}
		var mon *simnet.Endpoint
		var wc *wireClient
		switch cfg.Transport {
		case TransportDirect:
			acfg.Transport = func(nodeName string, values []consolidate.Value) error {
				srv.HandleValues(nodeName, values)
				return nil
			}
		case TransportSimnet:
			mon = net.Attach(simnet.Addr(name+".mon"), simnet.FastEthernet)
			acfg.AntiEntropy = cfg.AntiEntropy
			wc = newWireClient(name, cfg.WireV1 == nil || !cfg.WireV1(i))
			sendWC := wc
			monAddr := cfg.MonAddr
			acfg.SendFrame = func(f transmit.Frame) error {
				// A down local link is an error the agent can see (bank +
				// back off); in-flight loss is silent — that is the gap
				// detection's job. The link check runs before marshal so a
				// visible failure never advances the v2 predictor chain.
				// The payload is copied to a fresh buffer because delivery
				// is asynchronous and the marshal scratch (like f.Values)
				// is reused by the next frame.
				if !mon.Up() {
					return ErrLinkDown
				}
				payload := sendWC.marshal(f)
				b := append([]byte(nil), payload...)
				mon.Send(monAddr, b, len(b)+monOverheadBytes)
				return nil
			}
		case TransportSimnetLegacy:
			mon = net.Attach(simnet.Addr(name+".mon"), simnet.FastEthernet)
			monAddr := cfg.MonAddr
			acfg.Transport = func(nodeName string, values []consolidate.Value) error {
				if !mon.Up() {
					return ErrLinkDown
				}
				b := transmit.MarshalFrame(nil, transmit.Frame{Node: nodeName, Values: values})
				mon.Send(monAddr, b, len(b)+monOverheadBytes)
				return nil
			}
		default:
			return nil, fmt.Errorf("core: unknown sim transport %d", cfg.Transport)
		}
		agent, err := NewAgent(clk, acfg)
		if err != nil {
			return nil, err
		}
		if cfg.Transport == TransportSimnet {
			agent := agent
			recvWC := wc
			mon.OnReceive(func(p simnet.Packet) {
				b, ok := p.Payload.([]byte)
				if !ok {
					return
				}
				// The wire session consumes version answers, dict acks,
				// and dict resets; resync requests surface to the agent.
				if recvWC.control(b, int64(clk.Now())) {
					agent.RequestResync()
				}
			})
		}
		sim.Agents = append(sim.Agents, agent)
		sim.wires = append(sim.wires, wc)
	}

	// Server-side UDP-echo sweep: the one probe that works on dead nodes.
	sweep := cfg.EchoSweep
	if sweep == 0 {
		sweep = 5 * time.Second
	}
	if sweep > 0 {
		var tick func()
		tick = func() {
			srv.ProbeConnectivity(func(name string) bool {
				n := sim.byName[name]
				return n != nil && n.Reachable()
			})
			clk.AfterFunc(sweep, tick)
		}
		clk.AfterFunc(sweep, tick)
	}

	// Self-monitoring loop: the server's own telemetry re-enters the
	// pipeline as the MetaNodeName node.
	if cfg.SelfMonitor > 0 {
		sim.Meta = NewMetaMonitor(srv)
		var mtick func()
		mtick = func() {
			sim.Meta.Tick()
			clk.AfterFunc(cfg.SelfMonitor, mtick)
		}
		clk.AfterFunc(cfg.SelfMonitor, mtick)
	}
	return sim, nil
}

// PowerOnAll starts a sequenced power-up on every ICE Box.
func (s *Sim) PowerOnAll() {
	for _, b := range s.Boxes {
		b.PowerOnAll()
	}
}

// Advance moves virtual time.
func (s *Sim) Advance(d time.Duration) { s.Clk.Advance(d) }

// Node returns a node by name.
func (s *Sim) Node(name string) *node.Node { return s.byName[name] }

// NodeImage returns the image ID last cloned onto a node.
func (s *Sim) NodeImage(name string) string { return s.nodeImage[name] }

// Clone distributes img to the named nodes with the reliable-multicast
// protocol over the sim's Fast Ethernet, taking the targets out of service
// for the duration. It runs to completion on the virtual clock and
// returns the session result.
func (s *Sim) Clone(img *image.Image, nodeNames []string, loss float64, params cloning.Params) (cloning.Result, error) {
	return s.clone(img, nil, nodeNames, loss, params)
}

// Update distributes only the delta between each target's current image
// (which must be old) and img — the §4 parallel kernel/package update.
func (s *Sim) Update(old, img *image.Image, nodeNames []string, loss float64, params cloning.Params) (cloning.Result, error) {
	return s.clone(img, old, nodeNames, loss, params)
}

func (s *Sim) clone(img, old *image.Image, nodeNames []string, loss float64, params cloning.Params) (cloning.Result, error) {
	if len(nodeNames) == 0 {
		return cloning.Result{}, fmt.Errorf("core: clone needs target nodes")
	}
	master := s.Net.Endpoint(s.masterAddr)
	group := "clone"
	addrs := make([]simnet.Addr, 0, len(nodeNames))
	for _, name := range nodeNames {
		n := s.byName[name]
		if n == nil {
			return cloning.Result{}, fmt.Errorf("core: unknown node %s", name)
		}
		// Nodes reboot into the cloning environment: OS (and agent) stop.
		n.PowerOff()
		addr := simnet.Addr(name)
		s.Net.Join(group, addr)
		addrs = append(addrs, addr)
	}
	s.Net.SetLoss(loss)
	defer s.Net.SetLoss(0)

	sess := cloning.NewUpdateSession(s.Clk, s.Net, master, group, img, old, addrs, params)
	for _, name := range nodeNames {
		name := name
		n := s.byName[name]
		ep := s.Net.Endpoint(simnet.Addr(name))
		// Each client flashes at its own node's disk rate and reboots with
		// its own firmware's cold-start time.
		clientParams := params
		clientParams.DiskBandwidth = n.DiskBandwidth()
		clientParams.RebootTime = n.BootTime()
		client := cloning.NewUpdateClient(s.Clk, ep, img, old, clientParams)
		client.ReportUpTo("master")
		client.OnUp(func() {
			s.nodeImage[name] = img.ID()
			n.PowerOn() // boots the freshly written image
		})
	}
	sess.Start()
	// Step (not RunUntilIdle): agent timers perpetually reschedule, so the
	// queue never drains; the session's completion is the stop condition.
	for !sess.Done() {
		if !s.Clk.Step() {
			return sess.Result(), fmt.Errorf("core: cloning session did not converge")
		}
	}
	for _, addr := range addrs {
		s.Net.Leave(group, addr)
	}
	return sess.Result(), nil
}

// Stop shuts down all agents (test hygiene).
func (s *Sim) Stop() {
	for _, a := range s.Agents {
		a.Stop()
	}
}
