package core

import (
	"clusterworx/internal/consolidate"
	"clusterworx/internal/transmit"
)

// Rollup materializes one tier's subtree aggregate: each Tick folds the
// current numeric values of this server's child nodes into
// count/min/max/sum series and ingests them as a snapshot frame under a
// single aggregate node name ("rack/leaf00", "row/mid00", "grid/root").
// Riding the ordinary ingest path buys everything for free: the
// aggregates land in history (trend graphs per subtree), in the serving
// plane (status/watch streams see them), and — via noteFrame — in the
// uplink dirty set, so only *changed* aggregates cross the next hop.
//
// Two modes, selected by ChildPrefix:
//
//   - raw (""): children are plain nodes (no '/' in the name); their raw
//     metrics are folded directly. This is the leaf tier.
//   - compose (e.g. "rack/"): children are themselves aggregates whose
//     names carry the prefix; their suffixed rollup metrics are combined
//     (counts and sums add, mins and maxes fold), so the tier never
//     needs raw values it does not have.
//
// Tick suppresses no-op updates: if the fold equals the previous one the
// frame is not ingested at all, so an idle subtree moves no generation,
// invalidates no cache, and sends no uplink bytes.
type Rollup struct {
	s           *Server
	agg         string // aggregate node name this rollup publishes
	childPrefix string // "" = raw children; else compose over this prefix

	acc  *consolidate.RollupAcc
	vbuf []consolidate.Value
	last []consolidate.Value // previous emission, for change suppression
}

// NewRollup builds a rollup publishing agg from this server's children.
func NewRollup(s *Server, agg, childPrefix string) *Rollup {
	return &Rollup{s: s, agg: agg, childPrefix: childPrefix, acc: consolidate.NewRollupAcc()}
}

// Agg returns the aggregate node name.
func (r *Rollup) Agg() string { return r.agg }

// Tick folds the children's current values and ingests the aggregate
// snapshot if it changed. It returns the number of children folded.
func (r *Rollup) Tick() int {
	r.acc.Reset()
	children := 0
	for _, rec := range r.s.allRecs() {
		name := rec.name
		if name == MetaNodeName || name == r.agg {
			continue
		}
		if r.childPrefix == "" {
			if consolidate.HasRollupPrefix(name) {
				continue
			}
		} else if len(name) <= len(r.childPrefix) || name[:len(r.childPrefix)] != r.childPrefix {
			continue
		}
		rec.mu.RLock()
		if !rec.seen {
			rec.mu.RUnlock()
			continue
		}
		if r.childPrefix == "" {
			for metric, num := range rec.sample {
				if metric != probeMetric {
					r.acc.Observe(metric, num)
				}
			}
		} else {
			for metric, num := range rec.sample {
				r.acc.ObserveRolled(metric, num)
			}
		}
		rec.mu.RUnlock()
		children++
	}
	if children == 0 {
		return 0
	}
	r.vbuf = r.acc.AppendValues(r.vbuf[:0])
	if rollupEqual(r.vbuf, r.last) {
		return children
	}
	r.last = append(r.last[:0], r.vbuf...)
	//nolint:errcheck // snapshot frames never request resync
	r.s.HandleFrame(transmit.Frame{
		Node:   r.agg,
		Kind:   transmit.FrameSnapshot,
		SentNs: int64(r.s.now()),
		Values: r.vbuf,
	})
	return children
}

// rollupEqual compares two emissions (both sorted by metric name).
func rollupEqual(a, b []consolidate.Value) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Name != b[i].Name || !a[i].Equal(b[i]) {
			return false
		}
	}
	return true
}
