package core

import (
	"bufio"
	"net"
	"strings"
	"testing"
	"time"

	"clusterworx/internal/serve"
)

// pipeClient wires a CtlClient to an in-process server connection over a
// synchronous net.Pipe: no kernel socket buffering, so a client that
// stops reading exerts immediate backpressure on the push loop — exactly
// the slow-consumer shape the bounded watch queues exist for.
func pipeClient(t *testing.T, s *Server) *CtlClient {
	t.Helper()
	srvConn, cliConn := net.Pipe()
	go func() {
		defer srvConn.Close()
		s.serveCtlConn(srvConn)
	}()
	t.Cleanup(func() { cliConn.Close() })
	return &CtlClient{conn: cliConn, br: bufio.NewReader(cliConn)}
}

// readWatchBlock reads one pushed block with a deadline.
func readWatchBlock(t *testing.T, cl *CtlClient, timeout time.Duration) (kind string, lines []string) {
	t.Helper()
	cl.conn.SetReadDeadline(time.Now().Add(timeout)) //nolint:errcheck // net.Pipe deadlines cannot fail
	block, err := cl.ReadBlock()
	if err != nil {
		t.Fatalf("reading watch block: %v", err)
	}
	kind, _, lines, err = serve.ParseBlock(block)
	if err != nil {
		t.Fatalf("parsing watch block %q: %v", block, err)
	}
	return kind, lines
}

// applyWatchBlock folds one pushed block into the client's view.
func applyWatchBlock(t *testing.T, v *serve.View, kind string, lines []string) {
	t.Helper()
	switch kind {
	case serve.BlockUpdate:
		if err := v.Apply(lines); err != nil {
			t.Fatalf("applying diff: %v", err)
		}
	case serve.BlockResync, serve.BlockRefresh:
		v.SetFull(lines)
	default:
		t.Fatalf("unexpected block kind %q", kind)
	}
}

// TestWatchStatusConverges: a watch client applying change-only diffs
// reconstructs, byte for byte, what a polling client would read — across
// value changes, node additions, and a liveness flip.
func TestWatchStatusConverges(t *testing.T) {
	s, nowNs := planeServer()
	for i := 0; i < 4; i++ {
		planeIngest(s, nodeName(i), float64(i), 50, 20)
	}
	cl := pipeClient(t, s)
	if err := cl.Send("watch status"); err != nil {
		t.Fatal(err)
	}
	kind, lines := readWatchBlock(t, cl, 2*time.Second)
	if kind != "OK" {
		t.Fatalf("initial block kind %q, want OK", kind)
	}
	var v serve.View
	v.SetFull(lines)
	if got, want := v.Render(), strings.Join(ctlBody(s.HandleCtl("status")), "\n"); got != want {
		t.Fatalf("initial snapshot diverged:\n%s\nvs\n%s", got, want)
	}

	rounds := []func(){
		func() { planeIngest(s, "node001", 7.25, 40, 60) }, // value change
		func() { planeIngest(s, "node009", 1, 99, 5) },     // node appears
		func() {
			nowNs.Add(int64(DownAfter) + int64(time.Second)) // everyone but node000 falls silent
			planeIngest(s, "node000", 2, 50, 20)
		},
	}
	for ri, mutate := range rounds {
		mutate()
		want := strings.Join(ctlBody(s.HandleCtl("status")), "\n")
		deadline := time.Now().Add(5 * time.Second)
		for v.Render() != want {
			if time.Now().After(deadline) {
				t.Fatalf("round %d: watch view never converged:\ngot:\n%s\nwant:\n%s", ri, v.Render(), want)
			}
			kind, lines := readWatchBlock(t, cl, 2*time.Second)
			applyWatchBlock(t, &v, kind, lines)
		}
	}

	// quit ends the stream and releases the subscription.
	if err := cl.Send("quit"); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for s.plane.watchHub().Subscribers() != 0 {
		if time.Now().After(deadline) {
			t.Fatal("watch subscription leaked after quit")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestWatchSlowConsumerResync: a subscriber that stops draining overflows
// its bounded queue; when it comes back it gets a full RESYNC block and
// its reconstruction matches the polled rendering again.
func TestWatchSlowConsumerResync(t *testing.T) {
	s, _ := planeServer()
	planeIngest(s, "node000", 1, 50, 20)
	cl := pipeClient(t, s)
	if err := cl.Send("watch status"); err != nil {
		t.Fatal(err)
	}
	kind, lines := readWatchBlock(t, cl, 2*time.Second)
	if kind != "OK" {
		t.Fatalf("initial block kind %q", kind)
	}
	var v serve.View
	v.SetFull(lines)

	// Stall: the pipe is synchronous, so the push loop blocks on its
	// first write while further generation bumps pile into the bounded
	// queue and overflow it.
	before := serve.ReadStats()
	deadline := time.Now().Add(5 * time.Second)
	for i := 0; serve.ReadStats().WatchOverflows == before.WatchOverflows; i++ {
		if time.Now().After(deadline) {
			t.Fatal("subscriber queue never overflowed")
		}
		planeIngest(s, "node000", float64(i), 50, 20)
		time.Sleep(2 * time.Millisecond) // let the dispatcher handle each wake separately
	}

	// Drain: a RESYNC block must arrive, and after applying it the view
	// matches the polled rendering.
	sawResync := false
	for i := 0; i < SubQueueDrainBlocks; i++ {
		kind, lines := readWatchBlock(t, cl, 2*time.Second)
		applyWatchBlock(t, &v, kind, lines)
		if kind == serve.BlockResync {
			sawResync = true
			break
		}
	}
	if !sawResync {
		t.Fatal("overflowed watcher never received a RESYNC block")
	}
	want := strings.Join(ctlBody(s.HandleCtl("status")), "\n")
	for v.Render() != want {
		kind, lines := readWatchBlock(t, cl, 2*time.Second)
		applyWatchBlock(t, &v, kind, lines)
	}
	if after := serve.ReadStats(); after.WatchResyncs == before.WatchResyncs {
		t.Fatal("resync delivery not counted")
	}
}

// SubQueueDrainBlocks bounds the drain loop above: the stalled write plus
// a full queue's worth of pushes, with headroom.
const SubQueueDrainBlocks = serve.SubQueue + 4

// TestWatchRejectsBadRequests: non-watchable verbs and bad arity are
// refused with an ERR block and the connection keeps serving requests.
func TestWatchRejectsBadRequests(t *testing.T) {
	s, _ := planeServer()
	planeIngest(s, "node000", 1, 50, 20)
	cl := pipeClient(t, s)
	for _, req := range []string{"watch", "watch ping", "watch values"} {
		if err := cl.Send(req); err != nil {
			t.Fatal(err)
		}
		cl.conn.SetReadDeadline(time.Now().Add(2 * time.Second)) //nolint:errcheck // net.Pipe deadlines cannot fail
		resp, err := cl.ReadBlock()
		if err != nil {
			t.Fatalf("%q: %v", req, err)
		}
		if !strings.HasPrefix(resp, "ERR") {
			t.Fatalf("%q accepted: %s", req, resp)
		}
	}
	// The connection is still in request/response mode.
	cl.conn.SetReadDeadline(time.Time{}) //nolint:errcheck // net.Pipe deadlines cannot fail
	if resp, err := cl.Do("ping"); err != nil || resp != "OK pong" {
		t.Fatalf("connection unusable after rejected watch: %q %v", resp, err)
	}
}

func nodeName(i int) string {
	return [...]string{"node000", "node001", "node002", "node003"}[i]
}
