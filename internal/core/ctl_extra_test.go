package core

import (
	"strings"
	"testing"
	"testing/quick"
	"time"

	"clusterworx/internal/firmware"
	"clusterworx/internal/node"
)

func TestCtlChartAndSpark(t *testing.T) {
	sim := bootSim(t, 2)
	sim.Node("node000").SetLoad(2)
	sim.Advance(5 * time.Minute)

	resp := sim.Server.HandleCtl("chart node000 load.1")
	if !strings.HasPrefix(resp, "OK") || !strings.Contains(resp, "*") {
		t.Fatalf("chart response:\n%s", resp)
	}
	if !strings.Contains(resp, "+---") {
		t.Fatalf("chart missing axis:\n%s", resp)
	}
	resp = sim.Server.HandleCtl("spark node000 load.1")
	if !strings.HasPrefix(resp, "OK ") || len(resp) < 10 {
		t.Fatalf("spark response: %q", resp)
	}
	for _, bad := range []string{"chart ghost load.1", "chart node000", "spark ghost x", "spark x"} {
		if resp := sim.Server.HandleCtl(bad); !strings.HasPrefix(resp, "ERR") {
			t.Fatalf("%q -> %q", bad, firstLine(resp))
		}
	}
}

func TestCtlCompare(t *testing.T) {
	sim := bootSim(t, 3)
	sim.Node("node002").SetLoad(3)
	sim.Advance(5 * time.Minute)
	resp := sim.Server.HandleCtl("compare load.1")
	if !strings.HasPrefix(resp, "OK") {
		t.Fatalf("compare: %s", firstLine(resp))
	}
	for _, n := range []string{"node000", "node001", "node002"} {
		if !strings.Contains(resp, n) {
			t.Fatalf("compare missing %s:\n%s", n, resp)
		}
	}
	if resp := sim.Server.HandleCtl("compare"); !strings.HasPrefix(resp, "ERR") {
		t.Fatal("compare without metric accepted")
	}
}

func TestCtlCorrelate(t *testing.T) {
	sim := bootSim(t, 1)
	// Ramp the load so load.1 and cpu temperature co-vary.
	for i := 0; i < 30; i++ {
		sim.Node("node000").SetLoad(float64(i%10) / 3)
		sim.Advance(30 * time.Second)
	}
	resp := sim.Server.HandleCtl("correlate node000 load.1 hw.temp.cpu")
	if !strings.HasPrefix(resp, "OK r=") {
		t.Fatalf("correlate: %s", firstLine(resp))
	}
	if resp := sim.Server.HandleCtl("correlate node000 load.1"); !strings.HasPrefix(resp, "ERR") {
		t.Fatal("short correlate accepted")
	}
	if resp := sim.Server.HandleCtl("correlate ghost a b"); !strings.HasPrefix(resp, "ERR") {
		t.Fatal("correlate on ghost accepted")
	}
}

func TestCtlHistMem(t *testing.T) {
	sim := bootSim(t, 2)
	sim.Advance(5 * time.Minute)
	resp := sim.Server.HandleCtl("histmem")
	if !strings.HasPrefix(resp, "OK") {
		t.Fatalf("histmem: %s", firstLine(resp))
	}
	for _, want := range []string{"B/sample", "node000", "total:", "vs raw ring"} {
		if !strings.Contains(resp, want) {
			t.Fatalf("histmem missing %q:\n%s", want, resp)
		}
	}
	if resp := sim.Server.HandleCtl("histmem 1"); !strings.Contains(resp, "more series") {
		t.Fatalf("histmem 1 did not truncate:\n%s", resp)
	}
	for _, bad := range []string{"histmem 0", "histmem x", "histmem 1 2"} {
		if resp := sim.Server.HandleCtl(bad); !strings.HasPrefix(resp, "ERR") {
			t.Fatalf("%q -> %q", bad, firstLine(resp))
		}
	}
}

func TestCtlBIOS(t *testing.T) {
	sim := bootSim(t, 2)
	resp := sim.Server.HandleCtl("bios settings node000")
	if !strings.Contains(resp, "version=") || !strings.Contains(resp, "console=ttyS0,115200") {
		t.Fatalf("bios settings:\n%s", resp)
	}
	if resp := sim.Server.HandleCtl("bios set node000 boot_order disk,net"); !strings.HasPrefix(resp, "OK") {
		t.Fatalf("bios set: %s", resp)
	}
	if resp := sim.Server.HandleCtl("bios settings node000"); !strings.Contains(resp, "boot_order=disk,net") {
		t.Fatalf("setting did not stick:\n%s", resp)
	}
	if resp := sim.Server.HandleCtl("bios flash node000 1.1.4"); !strings.HasPrefix(resp, "OK") {
		t.Fatalf("bios flash: %s", resp)
	}
	if resp := sim.Server.HandleCtl("bios settings node000"); !strings.Contains(resp, "version=1.1.4") {
		t.Fatalf("flash did not stick:\n%s", resp)
	}
	for _, bad := range []string{"bios settings ghost", "bios set node000 k", "bios flash node000", "bios fry node000", "bios"} {
		if resp := sim.Server.HandleCtl(bad); !strings.HasPrefix(resp, "ERR") {
			t.Fatalf("%q -> %q", bad, firstLine(resp))
		}
	}
}

func TestBIOSManagementRequiresLinuxBIOS(t *testing.T) {
	// A node on a legacy BIOS cannot be managed remotely — the paper's §2
	// keyboard-and-monitor problem.
	srv := NewServer(ServerConfig{Cluster: "legacy"})
	srv.RegisterFirmware("old-node", firmware.NewLegacyBIOS())
	if _, err := srv.BIOSSettings("old-node"); err == nil || !strings.Contains(err.Error(), "not remotely configurable") {
		t.Fatalf("legacy BIOS settings err = %v", err)
	}
	if err := srv.BIOSSet("old-node", "k", "v"); err == nil {
		t.Fatal("legacy BIOS set succeeded")
	}
	if err := srv.BIOSFlash("old-node", "2"); err == nil {
		t.Fatal("legacy BIOS flash succeeded")
	}
	if _, err := srv.BIOSSettings("unknown"); err == nil {
		t.Fatal("unknown node BIOS succeeded")
	}
}

func TestBIOSFlashVisibleOnNextBoot(t *testing.T) {
	sim := bootSim(t, 1)
	if err := sim.Server.BIOSFlash("node000", "9.9.9"); err != nil {
		t.Fatal(err)
	}
	if err := sim.Server.PowerCycle("node000"); err != nil {
		t.Fatal(err)
	}
	sim.Advance(15 * time.Second)
	if sim.Node("node000").State() != node.Up {
		t.Fatal("node did not reboot")
	}
	if !strings.Contains(string(sim.Node("node000").Serial().PostMortem()), "LinuxBIOS-9.9.9") {
		t.Fatal("flashed version not active after reboot")
	}
}

func TestCtlEfficiency(t *testing.T) {
	sim := bootSim(t, 2)
	sim.Node("node001").SetLoad(2)
	sim.Advance(5 * time.Minute)
	resp := sim.Server.HandleCtl("efficiency")
	if !strings.Contains(resp, "cluster efficiency:") || !strings.Contains(resp, "node001") {
		t.Fatalf("efficiency:\n%s", resp)
	}
}

// Property: the control protocol never panics on arbitrary request lines.
func TestPropertyCtlNeverPanics(t *testing.T) {
	sim := bootSim(t, 1)
	f := func(line string) bool {
		resp := sim.Server.HandleCtl(line)
		return strings.HasPrefix(resp, "OK") || strings.HasPrefix(resp, "ERR")
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
	for _, line := range []string{
		"history node000 load.1 99999999999999999999",
		"power on \x00", "values " + strings.Repeat("x", 10000),
		"correlate a b c d e f", "bios set",
	} {
		resp := sim.Server.HandleCtl(line)
		if !strings.HasPrefix(resp, "OK") && !strings.HasPrefix(resp, "ERR") {
			t.Fatalf("%q -> %q", line, firstLine(resp))
		}
	}
}

func TestCtlClone(t *testing.T) {
	sim := bootSim(t, 3)
	resp := sim.Server.HandleCtl("clone lnxi-nfs@2.1 node001 node002")
	if !strings.HasPrefix(resp, "OK cloned") {
		t.Fatalf("clone: %s", firstLine(resp))
	}
	if sim.NodeImage("node001") != "lnxi-nfs@2.1" || sim.NodeImage("node002") != "lnxi-nfs@2.1" {
		t.Fatal("image not recorded")
	}
	sim.Advance(30 * time.Second)
	if sim.Node("node001").State() != node.Up {
		t.Fatalf("cloned node = %v", sim.Node("node001").State())
	}
	for _, bad := range []string{"clone", "clone onlyimage", "clone ghost@1 node001", "clone lnxi-nfs@2.1 ghostnode"} {
		if resp := sim.Server.HandleCtl(bad); !strings.HasPrefix(resp, "ERR") {
			t.Fatalf("%q -> %q", bad, firstLine(resp))
		}
	}
	// The image library is stocked.
	if resp := sim.Server.HandleCtl("images"); !strings.Contains(resp, "lnxi-node@2.1") {
		t.Fatalf("images: %s", resp)
	}
}

func TestCloneWithoutBackend(t *testing.T) {
	srv := NewServer(ServerConfig{})
	if _, err := srv.CloneNodes("x@1", []string{"n"}); err == nil {
		t.Fatal("clone without backend succeeded")
	}
}
