package core

import (
	"testing"
	"time"

	"clusterworx/internal/cloning"
	"clusterworx/internal/image"
)

func TestDiagUpdate(t *testing.T) {
	sim := bootSim(t, 3)
	v1 := image.NewBuilder("os", "1.0", image.BootDisk, 32<<20).
		AddPackage("kernel-a", 4<<20).Build()
	v2 := image.NewBuilder("os", "1.1", image.BootDisk, 32<<20).
		AddPackage("kernel-b", 4<<20).Build()
	targets := []string{"node001"}
	r1, err := sim.Clone(v1, targets, 0, cloning.Params{})
	t.Logf("clone v1: err=%v up=%d img=%q", err, len(r1.NodeUp), sim.NodeImage("node001"))
	res, err := sim.Update(v1, v2, targets, 0, cloning.Params{})
	t.Logf("update: err=%v up=%d mc=%d burst=%v allup=%v img=%q diff=%d",
		err, len(res.NodeUp), res.MulticastBytes, res.BurstDone, res.AllUp, sim.NodeImage("node001"), len(v2.Diff(v1)))
	sim.Advance(30 * time.Second)
	t.Logf("state=%v", sim.Node("node001").State())
}
