package core

import (
	"testing"
	"time"

	"clusterworx/internal/events"
	"clusterworx/internal/node"
	"clusterworx/internal/slurm"
)

func TestSlurmJobsDriveMonitoredLoad(t *testing.T) {
	sim := bootSim(t, 4)
	br := sim.AttachSlurm()

	id, err := br.Cluster.Submit(slurm.Spec{
		Name: "mpi", Nodes: 2, Duration: 10 * time.Minute, Exclusive: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	j, _ := br.Cluster.Job(id)
	if j.State != slurm.Running || len(j.Allocated) != 2 {
		t.Fatalf("job = %+v", j)
	}
	sim.Advance(5 * time.Minute) // load averages ramp

	// The allocated nodes show the job's load on the monitoring screen.
	allocated := map[string]bool{j.Allocated[0]: true, j.Allocated[1]: true}
	for _, st := range sim.Server.Status() {
		v, ok := sim.Server.NodeValue(st.Name, "load.1")
		if !ok {
			t.Fatalf("no load.1 for %s", st.Name)
		}
		if allocated[st.Name] && v.Num < 0.6 {
			t.Fatalf("allocated node %s load.1 = %v", st.Name, v.Num)
		}
		if !allocated[st.Name] && v.Num > 0.3 {
			t.Fatalf("idle node %s load.1 = %v", st.Name, v.Num)
		}
	}

	// Job completion releases the load.
	sim.Advance(10 * time.Minute)
	if j, _ := br.Cluster.Job(id); j.State != slurm.Completed {
		t.Fatalf("job = %v", j.State)
	}
	sim.Advance(10 * time.Minute)
	for name := range allocated {
		if v, _ := sim.Server.NodeValue(name, "load.1"); v.Num > 0.3 {
			t.Fatalf("%s load.1 = %v after completion", name, v.Num)
		}
		if br.JobLoad(name) != 0 {
			t.Fatalf("%s job load = %v after completion", name, br.JobLoad(name))
		}
	}
}

func TestNodeCrashPropagatesToScheduler(t *testing.T) {
	sim := bootSim(t, 3)
	br := sim.AttachSlurm()
	id, _ := br.Cluster.Submit(slurm.Spec{
		Name: "tough", Nodes: 1, Duration: time.Hour, Requeue: true,
	})
	j, _ := br.Cluster.Job(id)
	victim := j.Allocated[0]

	sim.Node(victim).Crash("hardware")
	// The bridge reports the node down; the job requeues onto another.
	j, _ = br.Cluster.Job(id)
	if j.State != slurm.Running {
		t.Fatalf("requeued job = %v", j.State)
	}
	if j.Allocated[0] == victim {
		t.Fatal("job still on the crashed node")
	}
	// Scheduler's view matches.
	for _, n := range br.Cluster.Nodes() {
		if n.Name == victim && n.Up {
			t.Fatal("crashed node still up in slurm")
		}
	}

	// Heal the node (reset via ICE Box); it rejoins the pool.
	if err := sim.Server.Reset(victim); err != nil {
		t.Fatal(err)
	}
	sim.Advance(10 * time.Second)
	for _, n := range br.Cluster.Nodes() {
		if n.Name == victim && !n.Up {
			t.Fatal("healed node did not rejoin slurm")
		}
	}
}

func TestEventActionFailsJobsThroughBridge(t *testing.T) {
	// The full loop: overtemp rule powers a node off via the ICE Box; the
	// bridge tells slurm; the exclusive job on it dies with NODE_FAIL.
	sim := bootSim(t, 2)
	br := sim.AttachSlurm()
	sim.Server.Engine().AddRule(events.Rule{
		Name: "overtemp", Metric: "hw.temp.cpu", Op: events.GT, Threshold: 85,
		Action: events.ActPowerOff,
	})

	id, _ := br.Cluster.Submit(slurm.Spec{Name: "hot", Nodes: 1, Duration: time.Hour, Exclusive: true})
	j, _ := br.Cluster.Job(id)
	victim := sim.Node(j.Allocated[0])
	sim.Advance(3 * time.Minute)
	victim.FailFan()
	sim.Advance(20 * time.Minute)

	if victim.State() != node.PowerOff {
		t.Fatalf("victim = %v", victim.State())
	}
	if j, _ := br.Cluster.Job(id); j.State != slurm.NodeFailed {
		t.Fatalf("job = %v, want NODE_FAIL", j.State)
	}
}
