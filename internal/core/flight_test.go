package core

import (
	"encoding/json"
	"strconv"
	"strings"
	"testing"
	"time"

	"clusterworx/internal/events"
	"clusterworx/internal/flight"
	"clusterworx/internal/telemetry"
)

// This file is the differential test for the flight recorder: the
// journal's records must agree with what the counters claim happened,
// and a sampled frame's trace id must reconstruct the full
// gather→consolidate→transmit→ingest→events→notify span tree —
// including the resync detour when the frame rode a healing snapshot.

// flightRecsSince reads the journal past base. The default journal is
// process-wide and earlier tests in this package have written to it, so
// every assertion here filters by the cursor captured at test start.
func flightRecsSince(base uint64) []flight.Record {
	return flight.Default().Since(base, 0)
}

func countKind(recs []flight.Record, k flight.Kind) int64 {
	var n int64
	for _, r := range recs {
		if r.Kind == k {
			n++
		}
	}
	return n
}

// traceStages returns the set of pipeline stages journaled under one
// trace id.
func traceStages(recs []flight.Record, trace uint64) map[uint8]bool {
	stages := make(map[uint8]bool)
	for _, r := range recs {
		if r.Trace == trace && r.Kind == flight.KindStage {
			stages[r.Stage] = true
		}
	}
	return stages
}

// TestFlightDifferential drives a 3-node simulated cluster through a
// seeded blackhole and requires journal record counts to equal the
// ingest counters (gaps, resync requests, snapshots applied, resync
// snapshots sent, retransmits), then picks sampled traces out of the
// journal and checks their span trees stage by stage.
func TestFlightDifferential(t *testing.T) {
	base := flight.Default().Cursor()
	prevRate := flight.SetRate(1) // sample every tick: every frame is traced
	defer flight.SetRate(prevRate)
	if !flight.Default().Enabled() {
		t.Fatal("flight recorder must be enabled by default")
	}

	sim := faultSim(t, 3, TransportSimnet, 20*time.Second, 7)
	// An immediately-firing notifying rule so sampled frames reach the
	// notify hop (hw.temp.cpu is always present on simulated nodes).
	if err := sim.Server.Engine().AddRule(events.Rule{
		Name: "flight-probe", Metric: "hw.temp.cpu", Op: events.GT,
		Threshold: -1000, Sustain: 1, Action: events.ActNone, Notify: true,
	}); err != nil {
		t.Fatal(err)
	}

	sim.Advance(10 * time.Second) // lossless: traced frames reach notify
	sim.Net.SetLoss(1)            // blackhole: gaps on heal
	sim.Advance(5 * time.Second)
	sim.Net.SetLoss(0) // heal: gap detection, resync request, snapshot
	sim.Advance(30 * time.Second)
	sim.Stop()
	sim.Advance(5 * time.Second) // drain in-flight frames

	recs := flightRecsSince(base)
	if len(recs) == 0 {
		t.Fatal("journal empty after a traced run")
	}

	// Differential, server side: every counter bump on the ingest path
	// has exactly one journal record.
	var gaps, regressions, resyncReqs, snapshots int64
	for _, st := range sim.Server.SyncStates() {
		gaps += st.Gaps
		regressions += st.Regressions
		resyncReqs += st.ResyncReqs
		snapshots += st.Snapshots
	}
	if gaps == 0 {
		t.Fatal("blackhole produced no sequence gaps: detour not exercised")
	}
	if got := countKind(recs, flight.KindGap); got != gaps {
		t.Errorf("gap records = %d, counters claim %d", got, gaps)
	}
	if got := countKind(recs, flight.KindRegression); got != regressions {
		t.Errorf("regression records = %d, counters claim %d", got, regressions)
	}
	if got := countKind(recs, flight.KindResyncSent); got != resyncReqs {
		t.Errorf("resync-sent records = %d, counters claim %d", got, resyncReqs)
	}
	if got := countKind(recs, flight.KindSnapApplied); got != snapshots {
		t.Errorf("snap-applied records = %d, counters claim %d", got, snapshots)
	}

	// Differential, agent side.
	var resyncsSent, retransmits int
	for _, a := range sim.Agents {
		resyncsSent += a.ResyncsSent()
		retransmits += a.Retransmits()
	}
	if got := countKind(recs, flight.KindResyncSnap); got != int64(resyncsSent) {
		t.Errorf("resync-snap records = %d, agents claim %d", got, resyncsSent)
	}
	if got := countKind(recs, flight.KindRetransmit); got != int64(retransmits) {
		t.Errorf("retransmit records = %d, agents claim %d", got, retransmits)
	}

	// A trace that reached the notify hop must carry the complete
	// six-stage pipeline tree.
	var notifyTrace uint64
	for _, r := range recs {
		if r.Kind == flight.KindStage && r.Stage == uint8(telemetry.StageNotify) && r.Trace != 0 {
			notifyTrace = r.Trace
			break
		}
	}
	if notifyTrace == 0 {
		t.Fatal("no traced notify hop journaled")
	}
	stages := traceStages(recs, notifyTrace)
	for st := telemetry.Stage(0); int(st) < telemetry.NumStages; st++ {
		if !stages[uint8(st)] {
			t.Errorf("trace %s span tree missing stage %s", flight.FormatTrace(notifyTrace), st)
		}
	}

	// The resync detour: a traced healing snapshot must show both ends —
	// the agent's resync-snap send and the server applying that same
	// snapshot under the same trace id.
	var detourTrace uint64
	for _, r := range recs {
		if r.Kind == flight.KindResyncSnap && r.Trace != 0 {
			detourTrace = r.Trace
			break
		}
	}
	if detourTrace == 0 {
		t.Fatal("no traced resync snapshot journaled")
	}
	var applied bool
	for _, r := range recs {
		if r.Trace == detourTrace && r.Kind == flight.KindSnapApplied {
			applied = true
		}
	}
	if !applied {
		t.Errorf("trace %s: resync snapshot sent but no snap-applied record under the same trace",
			flight.FormatTrace(detourTrace))
	}

	// An event firing journaled under a sampled frame's trace.
	if countKind(recs, flight.KindEventFired) == 0 {
		t.Error("rule fired but no event-fired journal record")
	}

	// ctl surface: "flight <id>" renders the span tree in pipeline order.
	out := sim.Server.HandleCtl("flight " + flight.FormatTrace(notifyTrace))
	if !strings.HasPrefix(out, "OK flight "+flight.FormatTrace(notifyTrace)) {
		t.Fatalf("flight verb: %q", out)
	}
	gatherAt := strings.Index(out, "stage:gather")
	notifyAt := strings.Index(out, "stage:notify")
	if gatherAt < 0 || notifyAt < 0 || gatherAt > notifyAt {
		t.Errorf("flight output not in pipeline order (gather@%d notify@%d):\n%s", gatherAt, notifyAt, out)
	}
	// Node-name form resolves to the node's most recent trace.
	if out := sim.Server.HandleCtl("flight node001"); !strings.HasPrefix(out, "OK flight ") {
		t.Errorf("flight by node: %q", out)
	}
	if out := sim.Server.HandleCtl("flight"); !strings.HasPrefix(out, "ERR usage") {
		t.Errorf("bare flight: %q", out)
	}
	if out := sim.Server.HandleCtl("flight 0000000000000000"); !strings.HasPrefix(out, "ERR") {
		t.Errorf("zero trace id: %q", out)
	}
}

// TestCtlJournalVerb exercises the journal verb's text, cursor, and
// JSON forms against a small live sim.
func TestCtlJournalVerb(t *testing.T) {
	base := flight.Default().Cursor()
	prevRate := flight.SetRate(1)
	defer flight.SetRate(prevRate)
	sim := faultSim(t, 2, TransportSimnet, -1, 11)
	sim.Advance(5 * time.Second)

	out := sim.Server.HandleCtl("journal")
	if !strings.HasPrefix(out, "OK journal cursor=") {
		t.Fatalf("journal: %q", out)
	}
	// Lines lead with the zero-padded sequence (the watch diff key).
	lines := strings.Split(out, "\n")
	if len(lines) < 2 || len(lines[1]) < 12 {
		t.Fatalf("no journal lines:\n%s", out)
	}
	if _, err := strconv.ParseUint(lines[1][:12], 10, 64); err != nil {
		t.Errorf("line key not a sequence number: %q", lines[1])
	}

	out = sim.Server.HandleCtl("journal since " + strconv.FormatUint(base, 10))
	if !strings.HasPrefix(out, "OK journal cursor=") {
		t.Fatalf("journal since: %q", out)
	}

	out = sim.Server.HandleCtl("journal -json")
	if !strings.HasPrefix(out, "OK\n") {
		t.Fatalf("journal -json: %q", out)
	}
	var resp struct {
		Cursor  uint64 `json:"cursor"`
		Records []struct {
			Seq   uint64 `json:"seq"`
			Kind  string `json:"kind"`
			Trace string `json:"trace"`
		} `json:"records"`
	}
	if err := json.Unmarshal([]byte(out[3:]), &resp); err != nil {
		t.Fatalf("journal -json unparseable: %v\n%s", err, out)
	}
	if resp.Cursor == 0 || len(resp.Records) == 0 {
		t.Fatalf("journal -json empty: cursor=%d records=%d", resp.Cursor, len(resp.Records))
	}

	if out := sim.Server.HandleCtl("journal since x"); !strings.HasPrefix(out, "ERR usage") {
		t.Errorf("bad since arg: %q", out)
	}

	// trace -json: spans plus (when present) the ingest exemplar.
	out = sim.Server.HandleCtl("trace -json")
	if !strings.HasPrefix(out, "OK\n") {
		t.Fatalf("trace -json: %q", out)
	}
	var tresp struct {
		Spans []struct {
			Node   string `json:"node"`
			Stages []struct {
				Stage string `json:"stage"`
				Trace string `json:"trace"`
			} `json:"stages"`
		} `json:"spans"`
		Exemplar *struct {
			ValueNs int64  `json:"value_ns"`
			Trace   string `json:"trace"`
		} `json:"exemplar"`
	}
	if err := json.Unmarshal([]byte(out[3:]), &tresp); err != nil {
		t.Fatalf("trace -json unparseable: %v\n%s", err, out)
	}
	if len(tresp.Spans) == 0 {
		t.Fatal("trace -json returned no spans")
	}
	if tresp.Exemplar != nil {
		if _, ok := flight.ParseTrace(tresp.Exemplar.Trace); !ok {
			t.Errorf("exemplar trace not a valid id: %q", tresp.Exemplar.Trace)
		}
		// The human rendition links the same exemplar.
		human := sim.Server.HandleCtl("trace")
		if !strings.Contains(human, "drill down: flight "+tresp.Exemplar.Trace) {
			t.Errorf("trace text missing exemplar footer:\n%s", human)
		}
	}
}
