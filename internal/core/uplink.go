package core

import (
	"sync"
	"sync/atomic"
	"time"

	"clusterworx/internal/consolidate"
	"clusterworx/internal/flight"
	"clusterworx/internal/transmit"
)

// This file is the child side of hierarchical federation: a leaf (or
// mid-tier) Server ingests its local agents normally, and an attached
// Uplink forwards the *consolidated* change stream to a parent Server
// one tier up. The design goals, in order:
//
//   - Per-hop delta suppression. Ingest marks exactly the values a frame
//     changed dirty (noteFrame below, called from HandleFrame after the
//     record lock is released); a periodic Flush forwards only those.
//     Idle nodes cost zero uplink bytes, and a value that changed five
//     times between flushes crosses the hop once — the same consolidation
//     the paper applies between agent and server, reapplied between tiers.
//
//   - Batching. One v2 batch frame carries hundreds of node sections
//     (internal/transmit/batchv2.go) sharing a single dictionary,
//     predictor chain, and timestamp column, so the per-node wire cost is
//     a few bytes instead of a full frame header and dictionary handshake.
//
//   - Loss tolerance without per-node sequencing. The batch chain is
//     sequenced per *link*; when the parent detects a break it answers
//     "!uresync" and the child arms a snap-all — every node's full state
//     goes up in the next flush, healing any suppressed-delta loss in one
//     round trip. A v1-pinned parent falls back to per-node sequenced
//     frames and the classic gap→resync→snapshot machinery.
//
// Locking: the dirty stripes (uplinkdirty, 17) are taken from the ingest
// path with no other lock held (HandleFrame releases the record lock
// first) and sit above the session lock (uplinksess, 16) so Flush may
// re-mark failed nodes while winding down a send. Flush reads record
// state (record, 20) strictly before taking the session lock.

// uplinkStripes matches ingestShards so noteFrame can reuse the node's
// shard hash as its dirty-stripe index.
const uplinkStripes = ingestShards

// defaultMaxBatch bounds node sections per batch frame: big enough to
// amortize the header, small enough that one frame is not megabytes on a
// 10k-leaf subtree.
const defaultMaxBatch = 512

// uplinkDirtyNode accumulates one node's not-yet-forwarded changes. The
// entry persists for the node's lifetime (maps and slices are reused),
// so steady-state marking allocates nothing.
type uplinkDirtyNode struct {
	name string
	// snap forces a full snapshot upstream: set on local snapshot ingest
	// (the change set is unknowable — the frame replaced state wholesale)
	// and on parent-requested per-node resyncs.
	snap    bool
	names   map[string]struct{} // changed value names since the last flush
	traceID uint64              // most recent trace context through this node
	traceNs int64
	queued  bool // already on the stripe's pending list
}

// resetLocked clears the accumulated change set after a drain. Caller
// holds the stripe lock.
func (dn *uplinkDirtyNode) resetLocked() {
	clear(dn.names)
	dn.snap = false
	dn.traceID, dn.traceNs = 0, 0
	dn.queued = false
}

// uplinkStripe is one shard of the dirty set, striped like the node
// table so concurrent ingest marks different stripes without contention.
type uplinkStripe struct {
	mu      sync.Mutex //cwx:lockrank uplinkdirty 17
	nodes   map[string]*uplinkDirtyNode
	pending []*uplinkDirtyNode
}

// getLocked returns the persistent dirty entry for name, creating it on
// first sight. Kept out of the hot marking functions so their steady
// state stays allocation-free. Caller holds the stripe lock.
func (st *uplinkStripe) getLocked(name string) *uplinkDirtyNode {
	dn := st.nodes[name]
	if dn == nil {
		dn = &uplinkDirtyNode{name: name, names: make(map[string]struct{}, 8)}
		st.nodes[name] = dn
	}
	return dn
}

// UplinkConfig configures a child→parent federation session.
type UplinkConfig struct {
	// Name identifies this child in flight-journal records (defaults to
	// the server's cluster name).
	Name string
	// Send ships one wire payload to the parent. The payload is scratch-
	// backed and must be consumed (or copied) synchronously. An error
	// means the parent may not have seen the frame; the uplink rebases
	// and re-marks the affected nodes for snapshots.
	Send func(payload []byte) error
	// V1Only pins the session to v1 per-node sequenced frames (the
	// escape hatch mirroring cwxd's -wire-v1, for a parent that predates
	// the batch wire).
	V1Only bool
	// MaxBatch bounds node sections per batch frame (0 = 512).
	MaxBatch int
	// AntiEntropy, when non-zero, forces a periodic snap-all flush so a
	// silently wedged parent re-converges without waiting for a chain
	// break to be noticed.
	AntiEntropy time.Duration
}

// UplinkStats is a counter snapshot of a session's forwarding activity.
type UplinkStats struct {
	Frames         int64 // v2 batch frames sent
	V1Frames       int64 // v1 per-node frames sent
	Nodes          int64 // node sub-frames forwarded (all wire versions)
	Bytes          int64 // payload bytes handed to Send
	SendFails      int64
	TracedForwards int64 // sub-frames forwarded carrying a trace id
	SnapAlls       int64 // snap-all flushes (start, "!uresync", anti-entropy)
	ResyncsRecv    int64 // "!uresync" / "!wreset" controls received
	NodeResyncs    int64 // per-node "!resync" requests received (v1 sessions)
	V2             bool  // session upgraded to the batch wire
}

// Uplink is one child server's session to its parent tier. Attach with
// Server.SetUplink; drive with periodic Flush calls (one goroutine — or
// one timer chain — at a time; the marking side is fully concurrent).
type Uplink struct {
	s   *Server
	cfg UplinkConfig
	sym flight.Sym

	stripes [uplinkStripes]uplinkStripe

	// mu guards the wire-session state: negotiation, encoder chain,
	// sequence numbers, and the stats the control plane reads.
	mu         sync.Mutex //cwx:lockrank uplinksess 16
	offer      bool       // still offering v2 via v1 frame options
	v2         bool       // parent answered; batch wire active
	enc        *transmit.BatchEncoderV2
	seq        uint64            // batch link sequence (last sent)
	nodeSeq    map[string]uint64 // v1 fallback per-node sequences
	snapAll    bool              // next flush forwards full state for every node
	lastSnapNs int64
	stats      UplinkStats

	// Flush scratch, reused across calls (single-flusher contract).
	ents   []flushEnt
	nbuf   []string
	vbuf   []consolidate.Value
	frames []transmit.Frame
	buf    []byte
	remark []string
}

// flushEnt is one node's slot in the flush scratch: the drained dirty
// metadata plus index ranges into the shared name/value buffers (ranges,
// not slices, because the buffers may reallocate while later entries are
// appended).
type flushEnt struct {
	name         string
	snap         bool
	traceID      uint64
	traceNs      int64
	nstart, nend int // dirty value names in nbuf (delta entries)
	vstart, vend int // collected values in vbuf
}

// NewUplink builds a session forwarding s's ingest stream upstream. The
// first flush is always a snap-all: the parent starts from nothing.
func NewUplink(s *Server, cfg UplinkConfig) *Uplink {
	if cfg.Send == nil {
		panic("core: UplinkConfig.Send is required")
	}
	if cfg.MaxBatch <= 0 {
		cfg.MaxBatch = defaultMaxBatch
	}
	if cfg.Name == "" {
		cfg.Name = s.cluster
	}
	u := &Uplink{
		s:       s,
		cfg:     cfg,
		sym:     fjournal.Sym(cfg.Name),
		offer:   !cfg.V1Only,
		snapAll: true,
		nodeSeq: make(map[string]uint64),
	}
	for i := range u.stripes {
		u.stripes[i].nodes = make(map[string]*uplinkDirtyNode)
	}
	return u
}

// SetUplink attaches (or with nil detaches) the server's parent session.
// Ingest begins marking the dirty set immediately.
func (s *Server) SetUplink(u *Uplink) { s.uplink.Store(u) }

// UplinkSession returns the attached parent session, or nil.
func (s *Server) UplinkSession() *Uplink { return s.uplink.Load() }

// noteFrame marks an applied frame's change set dirty. Called from the
// ingest path with no locks held; the self-monitor node stays local —
// every tier has its own, and forwarding it would collide upstream.
//
//cwx:hotpath
func (u *Uplink) noteFrame(f *transmit.Frame) {
	if f.Node == MetaNodeName {
		return
	}
	st := &u.stripes[shardIndex(f.Node)]
	st.mu.Lock()
	dn := st.getLocked(f.Node) //cwx:allow staticalloc -- inlined first-sight registration; the entry persists for the node's lifetime and steady-state marking hits the map
	if !dn.queued {
		dn.queued = true
		st.pending = append(st.pending, dn) //cwx:allow hotpath -- pending's capacity is reused across flushes (drain reslices to zero), so growth is amortized setup
	}
	if f.Kind == transmit.FrameSnapshot {
		// A snapshot replaced state wholesale; the precise change set is
		// unknowable, so the node goes up as a snapshot too.
		dn.snap = true
	} else if !dn.snap {
		for i := range f.Values {
			dn.names[f.Values[i].Name] = struct{}{}
		}
	}
	if f.TraceID != 0 {
		dn.traceID, dn.traceNs = f.TraceID, f.TraceNs
	}
	st.mu.Unlock()
}

// noteValue marks a single server-side value change dirty (the
// connectivity probe path).
//
//cwx:hotpath
func (u *Uplink) noteValue(node, metric string) {
	st := &u.stripes[shardIndex(node)]
	st.mu.Lock()
	dn := st.getLocked(node) //cwx:allow staticalloc -- inlined first-sight registration; the entry persists for the node's lifetime and steady-state marking hits the map
	if !dn.queued {
		dn.queued = true
		st.pending = append(st.pending, dn) //cwx:allow hotpath -- pending's capacity is reused across flushes (drain reslices to zero), so growth is amortized setup
	}
	if !dn.snap {
		dn.names[metric] = struct{}{}
	}
	st.mu.Unlock()
}

// markSnapNode queues a full-snapshot forward for one node (parent
// resync requests, failed sends).
func (u *Uplink) markSnapNode(node string) {
	st := &u.stripes[shardIndex(node)]
	st.mu.Lock()
	dn := st.getLocked(node)
	if !dn.queued {
		dn.queued = true
		st.pending = append(st.pending, dn)
	}
	dn.snap = true
	st.mu.Unlock()
}

// Flush drains the dirty set and forwards it upstream, batched. nowNs is
// the child's virtual-clock reading (stamped into the shared timestamp
// column upstream). It returns the number of node sub-frames sent and
// the first send error. Call from one goroutine at a time.
func (u *Uplink) Flush(nowNs int64) (int, error) {
	u.mu.Lock()
	snapAll := u.snapAll
	if !snapAll && u.cfg.AntiEntropy > 0 && nowNs-u.lastSnapNs >= int64(u.cfg.AntiEntropy) {
		snapAll = true
	}
	if snapAll {
		u.snapAll = false
		u.lastSnapNs = nowNs
		u.stats.SnapAlls++
		mUplinkSnapAlls.Inc()
		fjournal.Append(int(u.sym), flight.Entry{Kind: flight.KindUplinkResync, Node: u.sym, TimeNs: nowNs, A: 1})
	}
	v2 := u.v2 && !u.cfg.V1Only
	u.mu.Unlock()

	u.drain(snapAll)
	u.build()
	if len(u.frames) == 0 {
		return 0, nil
	}
	var sent int
	var err error
	if v2 {
		sent, err = u.sendBatches(nowNs)
	} else {
		sent, err = u.sendV1(nowNs)
	}
	for _, name := range u.remark {
		u.markSnapNode(name)
	}
	u.remark = u.remark[:0]
	return sent, err
}

// drain moves the dirty set into the flush scratch and clears it. With
// snapAll it instead enumerates the full registry (subsuming any finer
// dirty state, which is discarded).
func (u *Uplink) drain(snapAll bool) {
	u.ents = u.ents[:0]
	u.nbuf = u.nbuf[:0]
	for i := range u.stripes {
		st := &u.stripes[i]
		st.mu.Lock()
		for _, dn := range st.pending {
			if !snapAll {
				ent := flushEnt{name: dn.name, snap: dn.snap, traceID: dn.traceID, traceNs: dn.traceNs}
				if !dn.snap {
					ent.nstart = len(u.nbuf)
					for vn := range dn.names {
						u.nbuf = append(u.nbuf, vn)
					}
					ent.nend = len(u.nbuf)
				}
				u.ents = append(u.ents, ent)
			}
			dn.resetLocked()
		}
		st.pending = st.pending[:0]
		st.mu.Unlock()
	}
	if !snapAll {
		return
	}
	for i := range u.s.shards {
		sh := &u.s.shards[i]
		sh.mu.RLock()
		for name := range sh.nodes {
			if name == MetaNodeName {
				continue
			}
			u.ents = append(u.ents, flushEnt{name: name, snap: true})
		}
		sh.mu.RUnlock()
	}
}

// build reads the drained nodes' current values out of the registry into
// the flush scratch and assembles the sub-frames. Dirty names whose
// values vanished meanwhile (a snapshot dropped them) are skipped; a
// node with nothing left to say is dropped unless it is a snapshot —
// an empty snapshot still registers the node upstream.
func (u *Uplink) build() {
	u.vbuf = u.vbuf[:0]
	kept := u.ents[:0]
	for _, ent := range u.ents {
		rec, ok := u.s.lookup(ent.name)
		if !ok {
			continue
		}
		ent.vstart = len(u.vbuf)
		rec.mu.RLock()
		if ent.snap {
			for _, v := range rec.values {
				u.vbuf = append(u.vbuf, v)
			}
		} else {
			for _, vn := range u.nbuf[ent.nstart:ent.nend] {
				if v, ok := rec.values[vn]; ok {
					u.vbuf = append(u.vbuf, v)
				}
			}
		}
		rec.mu.RUnlock()
		ent.vend = len(u.vbuf)
		if ent.vend == ent.vstart && !ent.snap {
			continue
		}
		kept = append(kept, ent)
	}
	u.ents = kept
	u.frames = u.frames[:0]
	for i := range u.ents {
		ent := &u.ents[i]
		f := transmit.Frame{Node: ent.name, TraceID: ent.traceID, TraceNs: ent.traceNs, Values: u.vbuf[ent.vstart:ent.vend:ent.vend]}
		if ent.snap {
			f.Kind = transmit.FrameSnapshot
		}
		u.frames = append(u.frames, f)
	}
}

// sendBatches ships the assembled sub-frames as v2 batch frames, at most
// MaxBatch node sections each. A failed send rebases the chain (the next
// frame decodes standalone) and queues the chunk's nodes for re-marking.
func (u *Uplink) sendBatches(nowNs int64) (int, error) {
	u.mu.Lock()
	defer u.mu.Unlock()
	if u.enc == nil {
		u.enc = transmit.NewBatchEncoderV2()
	}
	var firstErr error
	sent := 0
	for lo := 0; lo < len(u.frames); lo += u.cfg.MaxBatch {
		hi := min(lo+u.cfg.MaxBatch, len(u.frames))
		chunk := u.frames[lo:hi]
		u.seq++
		u.buf = u.enc.Encode(u.buf[:0], u.seq, nowNs, chunk)
		if err := u.cfg.Send(u.buf); err != nil { //cwx:allow lockscope -- Send is a transport sink (socket/fabric write) contractually barred from re-entering the server; it must run under the session lock so HandleControl cannot rebase the chain between encode and send
			u.enc.Rebase()
			u.stats.SendFails++
			mUplinkSendFails.Inc()
			if firstErr == nil {
				firstErr = err
			}
			for i := range chunk {
				u.remark = append(u.remark, chunk[i].Node)
			}
			continue
		}
		sent += len(chunk)
		u.stats.Frames++
		u.stats.Nodes += int64(len(chunk))
		u.stats.Bytes += int64(len(u.buf))
		mUplinkFrames.Inc()
		mUplinkNodes.Add(int64(len(chunk)))
		mUplinkBytes.Add(int64(len(u.buf)))
		for i := range chunk {
			if chunk[i].TraceID != 0 {
				u.stats.TracedForwards++
				fjournal.Append(int(u.sym), flight.Entry{Kind: flight.KindUplinkForward, Node: fjournal.Sym(chunk[i].Node), Trace: chunk[i].TraceID, TimeNs: nowNs, A: int64(len(chunk[i].Values))})
			}
		}
	}
	return sent, firstErr
}

// sendV1 ships the assembled sub-frames as classic per-node sequenced
// frames, each offering the v2 upgrade while the session still may take
// it. A failed send leaves the node's sequence unadvanced and queues a
// snapshot re-mark, so the suppressed deltas cannot be lost.
func (u *Uplink) sendV1(nowNs int64) (int, error) {
	u.mu.Lock()
	defer u.mu.Unlock()
	var firstErr error
	sent := 0
	for i := range u.frames {
		f := u.frames[i]
		f.Seq = u.nodeSeq[f.Node] + 1
		f.SentNs = nowNs
		if u.offer {
			f.WireOffer = transmit.WireV2
		}
		u.buf = transmit.MarshalFrame(u.buf[:0], f)
		if err := u.cfg.Send(u.buf); err != nil { //cwx:allow lockscope -- Send is a transport sink (socket/fabric write) contractually barred from re-entering the server; per-node sequences must not advance concurrently with a control-plane restart
			u.stats.SendFails++
			mUplinkSendFails.Inc()
			if firstErr == nil {
				firstErr = err
			}
			u.remark = append(u.remark, f.Node)
			continue
		}
		u.nodeSeq[f.Node] = f.Seq
		sent++
		u.stats.V1Frames++
		u.stats.Nodes++
		u.stats.Bytes += int64(len(u.buf))
		mUplinkNodes.Add(1)
		mUplinkBytes.Add(int64(len(u.buf)))
		if f.TraceID != 0 {
			u.stats.TracedForwards++
			fjournal.Append(int(u.sym), flight.Entry{Kind: flight.KindUplinkForward, Node: fjournal.Sym(f.Node), Trace: f.TraceID, TimeNs: nowNs, A: int64(len(f.Values))})
		}
	}
	return sent, firstErr
}

// HandleControl consumes one parent→child control payload: version
// answers, dictionary acks and resets, link resyncs ("!uresync"), and
// per-node resync requests. nowNs timestamps the journal records.
func (u *Uplink) HandleControl(payload []byte, nowNs int64) {
	if node, ok := transmit.ParseResync(payload); ok {
		u.markSnapNode(node)
		u.mu.Lock()
		u.stats.NodeResyncs++
		u.mu.Unlock()
		fjournal.Append(int(u.sym), flight.Entry{Kind: flight.KindResyncRecv, Node: fjournal.Sym(node), TimeNs: nowNs})
		return
	}
	u.mu.Lock()
	defer u.mu.Unlock()
	switch {
	case transmit.IsUplinkResync(payload):
		// The parent lost a batch (or restarted mid-chain): snap-all so
		// every suppressed delta is re-established, and rebase so the
		// carrying frame decodes regardless of the gap.
		u.snapAll = true
		u.stats.ResyncsRecv++
		if u.v2 && u.enc != nil {
			u.enc.Rebase()
		}
		fjournal.Append(int(u.sym), flight.Entry{Kind: flight.KindUplinkResync, Node: u.sym, TimeNs: nowNs})
	case transmit.IsWireReset(payload):
		if u.v2 && u.enc != nil {
			// The parent's dictionary is gone (restart): resend everything
			// and re-establish state wholesale.
			u.enc.ResetTable()
			u.snapAll = true
			u.stats.ResyncsRecv++
			fjournal.Append(int(u.sym), flight.Entry{Kind: flight.KindWireReset, Node: u.sym, TimeNs: nowNs})
		}
	default:
		if ver, ok := transmit.ParseWireAnswer(payload); ok {
			if u.offer && !u.v2 && ver == transmit.WireV2 {
				u.v2, u.offer = true, false
				if u.enc == nil {
					u.enc = transmit.NewBatchEncoderV2()
				}
				// Switch formats from a clean baseline: the v1 per-node
				// numbering is abandoned, so the first batch carries full
				// state for everything.
				u.snapAll = true
				u.stats.V2 = true
				fjournal.Append(int(u.sym), flight.Entry{Kind: flight.KindWireUpgrade, Node: u.sym, TimeNs: nowNs, A: int64(ver)})
			}
		} else if n, ok := transmit.ParseDictAck(payload); ok {
			if u.v2 && u.enc != nil {
				u.enc.Ack(n)
			}
		}
	}
}

// Restart models a forwarder process restart (the leaf kill/rejoin fault
// case): all session state is dropped exactly as a fresh process would
// start — negotiation from scratch, sequences reset, snap-all armed.
// The dirty set survives only incidentally; correctness comes from the
// snap-all.
func (u *Uplink) Restart() {
	u.mu.Lock()
	u.offer = !u.cfg.V1Only
	u.v2 = false
	u.stats.V2 = false
	u.enc = nil
	u.seq = 0
	clear(u.nodeSeq)
	u.snapAll = true
	u.mu.Unlock()
}

// Stats returns a snapshot of the session counters.
func (u *Uplink) Stats() UplinkStats {
	u.mu.Lock()
	defer u.mu.Unlock()
	return u.stats
}

// uplinkInCounters tracks uplink traffic arriving from child tiers —
// this server as the parent side (wire.go's batch ingest branch).
// Atomics: bumped on per-session receive paths with no shared lock.
type uplinkInCounters struct {
	frames   atomic.Int64
	nodes    atomic.Int64
	rawNodes atomic.Int64 // node sections naming raw nodes (no '/' — not subtree aggregates)
	desyncs  atomic.Int64
	resets   atomic.Int64
}

// UplinkInStats is a snapshot of the parent-side uplink ingest counters.
type UplinkInStats struct {
	Frames   int64 // batch frames applied
	Nodes    int64 // node sub-frames applied
	RawNodes int64 // of those, raw (non-aggregate) nodes
	Desyncs  int64 // batch chain breaks ("!uresync" sent)
	Resets   int64 // dictionary resets requested ("!wreset" sent)
}

// UplinkInStats reports uplink traffic this server has ingested from
// child tiers.
func (s *Server) UplinkInStats() UplinkInStats {
	return UplinkInStats{
		Frames:   s.upIn.frames.Load(),
		Nodes:    s.upIn.nodes.Load(),
		RawNodes: s.upIn.rawNodes.Load(),
		Desyncs:  s.upIn.desyncs.Load(),
		Resets:   s.upIn.resets.Load(),
	}
}
