package core

import (
	"strings"
	"testing"
	"time"

	"clusterworx/internal/dashboard"
	"clusterworx/internal/telemetry"
)

// telemetrySubsystems is the coverage contract for the exposition: at
// least one series from every stage of the pipeline must show up on a
// scrape of a working cluster.
var telemetrySubsystems = []string{
	"cwx_gather_",
	"cwx_consolidate_",
	"cwx_transmit_",
	"cwx_ingest_",
	"cwx_events_",
	"cwx_notify_",
	"cwx_history_",
}

// TestWriteTelemetryCoversPipeline scrapes a booted sim and checks the
// Prometheus text output is well-formed and spans every pipeline stage
// with a healthy number of distinct series.
func TestWriteTelemetryCoversPipeline(t *testing.T) {
	sim := bootSim(t, 4)
	sim.Advance(time.Minute)

	var sb strings.Builder
	if err := sim.Server.WriteTelemetry(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()

	series := map[string]bool{}
	for _, line := range strings.Split(out, "\n") {
		if rest, ok := strings.CutPrefix(line, "# TYPE "); ok {
			name, _, found := strings.Cut(rest, " ")
			if !found {
				t.Fatalf("malformed TYPE line: %q", line)
			}
			series[name] = true
		}
	}
	if len(series) < 12 {
		t.Fatalf("scrape exposes %d distinct series, want >= 12:\n%s", len(series), out)
	}
	for _, prefix := range telemetrySubsystems {
		found := false
		for name := range series {
			if strings.HasPrefix(name, prefix) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("no series with prefix %s in scrape", prefix)
		}
	}

	// Spot-check well-formedness: every non-comment line is "name value"
	// or "name{labels} value", and the pipeline actually moved data.
	for _, line := range strings.Split(strings.TrimRight(out, "\n"), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		if strings.Count(line, " ") != 1 {
			t.Fatalf("malformed sample line: %q", line)
		}
	}
	for _, want := range []string{"cwx_ingest_updates_total", "cwx_server_nodes 4"} {
		if !strings.Contains(out, want) {
			t.Errorf("scrape missing %q", want)
		}
	}
}

// TestCtlTelemetryAndTrace exercises the new control verbs end to end on
// a live sim: telemetry returns a Prometheus document, trace renders the
// per-node span table, and bad arguments get ERR.
func TestCtlTelemetryAndTrace(t *testing.T) {
	sim := bootSim(t, 2)
	sim.Advance(time.Minute)

	resp := sim.Server.HandleCtl("telemetry")
	if !strings.HasPrefix(resp, "OK\n") || !strings.Contains(resp, "# TYPE cwx_ingest_updates_total counter") {
		t.Fatalf("telemetry response:\n%s", firstLine(resp))
	}

	resp = sim.Server.HandleCtl("trace")
	if !strings.HasPrefix(resp, "OK") {
		t.Fatalf("trace response:\n%s", resp)
	}
	for _, col := range []string{"node", "gather", "consolidate", "transmit", "ingest", "events", "node000"} {
		if !strings.Contains(resp, col) {
			t.Fatalf("trace output missing %q:\n%s", col, resp)
		}
	}

	resp = sim.Server.HandleCtl("trace node001")
	if !strings.HasPrefix(resp, "OK") || !strings.Contains(resp, "node001") {
		t.Fatalf("trace node001 response:\n%s", resp)
	}
	if strings.Contains(resp, "node000") {
		t.Fatalf("trace node001 leaked other nodes:\n%s", resp)
	}
	if resp := sim.Server.HandleCtl("trace ghost"); !strings.HasPrefix(resp, "ERR") {
		t.Fatalf("trace ghost: %q", firstLine(resp))
	}
	if resp := sim.Server.HandleCtl("trace a b"); !strings.HasPrefix(resp, "ERR") {
		t.Fatalf("trace a b: %q", firstLine(resp))
	}
}

// TestSelfMonitorChartsLikeANode runs a sim with the meta-monitor on and
// proves the paper's "monitor the monitor" claim: the server's own
// telemetry lands in the registry and history under MetaNodeName and is
// chartable through the exact same paths as any compute node.
func TestSelfMonitorChartsLikeANode(t *testing.T) {
	sim, err := NewSim(SimConfig{Nodes: 3, Cluster: "test", SelfMonitor: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(sim.Stop)
	sim.PowerOnAll()
	sim.Advance(2 * time.Minute)

	if sim.Meta == nil {
		t.Fatal("Sim.Meta not wired despite SelfMonitor")
	}
	names := sim.Server.NodeNames()
	found := false
	for _, n := range names {
		if n == MetaNodeName {
			found = true
		}
	}
	if !found {
		t.Fatalf("meta node missing from NodeNames: %v", names)
	}

	if v, ok := sim.Server.NodeValue(MetaNodeName, "cwx.ingest.updates.total"); !ok || v.Num <= 0 {
		t.Fatalf("cwx.ingest.updates.total = %v, %v; want > 0", v, ok)
	}
	if v, ok := sim.Server.NodeValue(MetaNodeName, "cwx.server.nodes"); !ok || v.Num != 4 {
		t.Fatalf("cwx.server.nodes = %v, %v; want 4 (3 sim + meta)", v, ok)
	}

	// The counter grows every tick, so its history series accumulates
	// points despite change suppression — and charts like any node metric.
	s := sim.Server.History().Series(MetaNodeName, "cwx.ingest.updates.total")
	if s == nil || s.Len() < 5 {
		t.Fatalf("meta history series missing or short: %v", s)
	}
	chart := dashboard.Chart(s, 0, sim.Clk.Now(), 40, 8)
	if !strings.Contains(chart, "*") || !strings.Contains(chart, "+---") {
		t.Fatalf("meta series did not chart:\n%s", chart)
	}
	resp := sim.Server.HandleCtl("chart " + MetaNodeName + " cwx.ingest.updates.total")
	if !strings.HasPrefix(resp, "OK") || !strings.Contains(resp, "*") {
		t.Fatalf("ctl chart of meta series failed:\n%s", firstLine(resp))
	}

	// And the dedicated panel view.
	resp = sim.Server.HandleCtl("selfmon")
	if !strings.HasPrefix(resp, "OK") || !strings.Contains(resp, "cwx.ingest.updates.total") {
		t.Fatalf("selfmon response:\n%s", firstLine(resp))
	}
}

// TestTelemetryDisabledStillScrapes pins the kill switch: with recording
// off the scrape still succeeds (metrics exist, frozen), and hot paths
// stop accumulating.
func TestTelemetryDisabledStillScrapes(t *testing.T) {
	prev := telemetry.SetEnabled(false)
	defer telemetry.SetEnabled(prev)

	srv := NewServer(ServerConfig{Cluster: "t"})
	before := counterValue(t, srv, "cwx_ingest_updates_total")
	srv.HandleValues("n0", ingestUpdate(1))
	srv.HandleValues("n0", ingestUpdate(2))
	after := counterValue(t, srv, "cwx_ingest_updates_total")
	if after != before {
		t.Fatalf("cwx_ingest_updates_total moved %v -> %v with telemetry disabled", before, after)
	}
	// The data path itself is unaffected.
	if v, ok := srv.NodeValue("n0", "load.1"); !ok || v.Num != 2 {
		t.Fatalf("ingest broken with telemetry disabled: %v, %v", v, ok)
	}
}

// counterValue scrapes srv and returns the sample for the named series.
func counterValue(t *testing.T, srv *Server, name string) string {
	t.Helper()
	var sb strings.Builder
	if err := srv.WriteTelemetry(&sb); err != nil {
		t.Fatal(err)
	}
	for _, line := range strings.Split(sb.String(), "\n") {
		if rest, ok := strings.CutPrefix(line, name+" "); ok {
			return rest
		}
	}
	t.Fatalf("series %s not in scrape", name)
	return ""
}
