package core

import (
	"fmt"
	"sync/atomic"
	"time"

	"clusterworx/internal/clock"
	"clusterworx/internal/consolidate"
	"clusterworx/internal/history"
	"clusterworx/internal/simnet"
	"clusterworx/internal/transmit"
)

// FedSim builds a hierarchical federation on one virtual clock and one
// simulated fabric: a tree of Servers where the bottom tier ingests
// (simulated or synthetic) agents and every tier forwards its
// consolidated change stream upstream over batched uplinks, while
// materializing per-subtree rollup aggregates. Tiers == 1 degenerates
// to a single flat server — the ablation control the E23 experiment
// measures against.
//
// Tier naming, bottom up: leaf servers "leafNNN" publish "rack/leafNNN"
// aggregates, mid servers "midNN" publish "row/midNN", and the root
// publishes "grid/root". Every tier mirrors its full subtree (raw nodes
// included), so status, watch streams, and history work at any tier for
// that tier's scope; the rollups exist so upper-tier dashboards can
// answer subtree questions without touching 100k raw series.

// AggPrefix returns the aggregate-node namespace for a tier level
// (0 = the agent-facing tier).
func AggPrefix(level int) string {
	switch level {
	case 0:
		return "rack/"
	case 1:
		return "row/"
	default:
		return fmt.Sprintf("t%d/", level)
	}
}

// RootAggNode is the root tier's aggregate node name.
const RootAggNode = "grid/root"

// FedConfig sizes a federated simulated cluster.
type FedConfig struct {
	// Fanout is the number of children under each upper-tier server.
	Fanout int
	// Tiers is the number of server tiers (1 = flat single server).
	Tiers int
	// NodesPerLeaf is the number of monitored nodes per bottom-tier
	// server. Total nodes = Fanout^(Tiers-1) * NodesPerLeaf.
	NodesPerLeaf int
	// Synthetic skips the full per-node simulation (node.Node, ICE
	// boxes, agents): monitored nodes exist only as sender endpoints,
	// and the caller drives rounds with InjectRound. This is the 100k
	// benchmark mode; correctness tests use real agents.
	Synthetic bool

	// Agent-tier knobs, passed through to SimConfig in real-agent mode.
	Period      time.Duration
	Heartbeat   time.Duration
	AntiEntropy time.Duration
	EchoSweep   time.Duration
	WireV1      func(globalNode int) bool

	// UplinkPeriod is the flush cadence of every tier's uplink (default
	// 100ms). Tiers are phase-staggered within the period so a change
	// crosses one hop per sub-phase instead of waiting a full period at
	// each tier.
	UplinkPeriod time.Duration
	// UplinkAntiEntropy forces periodic snap-all flushes (0 disables).
	UplinkAntiEntropy time.Duration
	// UplinkMaxBatch bounds node sections per batch frame (0 = default).
	UplinkMaxBatch int
	// UplinkV1 pins selected leaf uplinks to v1 per-node frames (the
	// mixed-version fault case; mid-tier uplinks always batch).
	UplinkV1 func(leaf int) bool

	// MirrorCapacity is the history head capacity for mirrored raw-node
	// series at upper tiers (0 = full DefaultCapacity). Aggregates
	// always get full depth — they are the series upper tiers exist to
	// serve; the mirrors are for drill-down and can be shallow.
	MirrorCapacity int

	Seed int64
}

// synthNode is one synthetic monitored node: a sender endpoint and its
// wire sequence.
type synthNode struct {
	name   string
	ep     *simnet.Endpoint
	global int
	seq    uint64
}

// FedServer is one tier member.
type FedServer struct {
	Name   string
	Level  int // 0 = agent-facing tier, Tiers-1 = root
	Server *Server
	Uplink *Uplink // nil at the root
	Rollup *Rollup
	// Sim is the full agent simulation under a bottom-tier server
	// (real-agent mode only).
	Sim *Sim
	// Mon is the server's monitoring-plane endpoint (agent frames and
	// child uplink batches share it).
	Mon *simnet.Endpoint
	// UpEp is the child-side endpoint its uplink sends from (nil at the
	// root).
	UpEp *simnet.Endpoint

	// rxPackets counts monitoring-plane packets delivered to this
	// server — the flat control's propagation counter.
	rxPackets atomic.Int64

	synth []synthNode
	buf   []byte
}

// RxPackets reports monitoring-plane packets delivered to this server.
func (fs *FedServer) RxPackets() int64 { return fs.rxPackets.Load() }

// FedSim is the assembled federation.
type FedSim struct {
	Clk *clock.Clock
	Net *simnet.Network
	// Levels[0] is the agent-facing tier, Levels[Tiers-1] == {Root}.
	Levels [][]*FedServer
	Leaves []*FedServer
	Root   *FedServer

	cfg   FedConfig
	round uint64
}

// NewFedSim builds the federation powered off (real-agent mode: call
// PowerOnAll) and installs the rollup/flush timer chains.
func NewFedSim(cfg FedConfig) (*FedSim, error) {
	if cfg.Tiers < 1 {
		return nil, fmt.Errorf("core: fedsim needs at least one tier")
	}
	if cfg.Tiers > 1 && cfg.Fanout < 1 {
		return nil, fmt.Errorf("core: fedsim fanout must be positive")
	}
	if cfg.NodesPerLeaf < 1 {
		return nil, fmt.Errorf("core: fedsim needs nodes per leaf")
	}
	if cfg.UplinkPeriod <= 0 {
		cfg.UplinkPeriod = 100 * time.Millisecond
	}

	clk := clock.New()
	net := simnet.New(clk, 100*time.Microsecond)
	net.Seed(cfg.Seed + 99)

	f := &FedSim{Clk: clk, Net: net, cfg: cfg}

	// Build bottom-up: level l has Fanout^(Tiers-1-l) servers.
	count := 1
	for l := 0; l < cfg.Tiers-1; l++ {
		count *= cfg.Fanout
	}
	for l := 0; l < cfg.Tiers; l++ {
		tier := make([]*FedServer, 0, count)
		for i := 0; i < count; i++ {
			fs, err := f.buildServer(l, i, count)
			if err != nil {
				return nil, err
			}
			tier = append(tier, fs)
		}
		f.Levels = append(f.Levels, tier)
		if count > 1 {
			count /= cfg.Fanout
		}
	}
	f.Leaves = f.Levels[0]
	f.Root = f.Levels[cfg.Tiers-1][0]

	// Uplinks: child i at level l feeds parent i/Fanout at level l+1.
	for l := 0; l < cfg.Tiers-1; l++ {
		for i, child := range f.Levels[l] {
			parent := f.Levels[l+1][i/cfg.Fanout]
			f.connectUplink(child, parent, l == 0 && cfg.UplinkV1 != nil && cfg.UplinkV1(i))
		}
	}

	// Rollup + flush timer chains, phase-staggered by level: with period
	// P and T tiers, level l acts at k*P + (l+1)*P/(T+1), so a change
	// injected at k*P crosses every hop within one period.
	period := cfg.UplinkPeriod
	for l := 0; l < cfg.Tiers; l++ {
		phase := period * time.Duration(l+1) / time.Duration(cfg.Tiers+1)
		for _, fs := range f.Levels[l] {
			fs := fs
			var tick func()
			tick = func() {
				fs.Rollup.Tick()
				if fs.Uplink != nil {
					fs.Uplink.Flush(int64(clk.Now())) //nolint:errcheck // send failures re-mark; stats carry the count
				}
				clk.AfterFunc(period, tick)
			}
			clk.AfterFunc(phase, tick)
		}
	}
	return f, nil
}

// buildServer constructs one tier member. tierSize is the member count
// of its level (for name formatting).
func (f *FedSim) buildServer(level, idx, tierSize int) (*FedServer, error) {
	cfg := f.cfg
	root := level == cfg.Tiers-1
	var name string
	switch {
	case root:
		name = "root"
	case level == 0:
		name = fmt.Sprintf("leaf%03d", idx)
	default:
		name = fmt.Sprintf("mid%02d", idx)
	}
	fs := &FedServer{Name: name, Level: level}

	if level == 0 {
		// Agent-facing tier: a full Sim (real agents) or a bare server
		// with synthetic sender endpoints.
		first := idx * cfg.NodesPerLeaf
		if cfg.Synthetic {
			fs.Server = NewServer(ServerConfig{Cluster: name, Now: f.Clk.Now})
			fs.Mon = attachWireReceiver(f.Net, simnet.Addr(name+".mon"), fs.Server, &fs.rxPackets)
			for i := 0; i < cfg.NodesPerLeaf; i++ {
				global := first + i
				nname := fmt.Sprintf("node%03d", global)
				ep := f.Net.Attach(simnet.Addr(nname+".mon"), simnet.FastEthernet)
				fs.synth = append(fs.synth, synthNode{name: nname, ep: ep, global: global})
			}
		} else {
			sim, err := NewSim(SimConfig{
				Nodes:       cfg.NodesPerLeaf,
				Cluster:     name,
				Period:      cfg.Period,
				Heartbeat:   cfg.Heartbeat,
				Transport:   TransportSimnet,
				AntiEntropy: cfg.AntiEntropy,
				EchoSweep:   cfg.EchoSweep,
				Seed:        cfg.Seed,
				Clock:       f.Clk,
				Net:         f.Net,
				MasterAddr:  simnet.Addr(name + ".data"),
				MonAddr:     simnet.Addr(name + ".mon"),
				FirstNode:   first,
				WireV1: func(i int) bool {
					return cfg.WireV1 != nil && cfg.WireV1(first+i)
				},
			})
			if err != nil {
				return nil, err
			}
			fs.Sim = sim
			fs.Server = sim.Server
			fs.Mon = f.Net.Endpoint(simnet.Addr(name + ".mon"))
		}
		fs.Rollup = NewRollup(fs.Server, AggPrefix(0)+name, "")
		return fs, nil
	}

	// Upper tiers: a bare server mirroring its subtree. Raw-node mirror
	// series can be shallow (MirrorCapacity); aggregate series — the
	// reason this tier exists — keep full depth.
	fs.Server = NewServer(ServerConfig{Cluster: name, Now: f.Clk.Now, HistoryCapacity: cfg.MirrorCapacity})
	if cfg.MirrorCapacity > 0 {
		fs.Server.History().SetCapacityFunc(func(nodeName string) int {
			if consolidate.HasRollupPrefix(nodeName) {
				return history.DefaultCapacity
			}
			return 0 // store default (MirrorCapacity)
		})
	}
	fs.Mon = attachWireReceiver(f.Net, simnet.Addr(name+".mon"), fs.Server, &fs.rxPackets)
	if root {
		childPrefix := ""
		if cfg.Tiers > 1 {
			childPrefix = AggPrefix(cfg.Tiers - 2)
		}
		fs.Rollup = NewRollup(fs.Server, RootAggNode, childPrefix)
	} else {
		fs.Rollup = NewRollup(fs.Server, AggPrefix(level)+name, AggPrefix(level-1))
	}
	return fs, nil
}

// connectUplink wires child→parent: a dedicated sender endpoint, the
// Send closure (link-down aware, copying because fabric delivery is
// asynchronous), and the control back-channel.
func (f *FedSim) connectUplink(child, parent *FedServer, v1Only bool) {
	upEp := f.Net.Attach(simnet.Addr(child.Name+".up"), simnet.FastEthernet)
	child.UpEp = upEp
	parentMon := simnet.Addr(parent.Name + ".mon")
	u := NewUplink(child.Server, UplinkConfig{
		Name:        child.Name,
		V1Only:      v1Only,
		MaxBatch:    f.cfg.UplinkMaxBatch,
		AntiEntropy: f.cfg.UplinkAntiEntropy,
		Send: func(payload []byte) error {
			if !upEp.Up() {
				return ErrLinkDown
			}
			b := append([]byte(nil), payload...)
			upEp.Send(parentMon, b, len(b)+monOverheadBytes)
			return nil
		},
	})
	clk := f.Clk
	uplink := u
	upEp.OnReceive(func(p simnet.Packet) {
		b, ok := p.Payload.([]byte)
		if !ok {
			return
		}
		uplink.HandleControl(b, int64(clk.Now()))
	})
	child.Uplink = u
	child.Server.SetUplink(u)
}

// attachWireReceiver attaches addr to the fabric and dispatches arriving
// payloads to per-source wire sessions feeding srv — the same receive
// loop NewSim installs for agent traffic, reused by every federation
// tier (agent frames and uplink batches share the entry point; handle
// routes on the payload). counter, when non-nil, counts delivered
// packets.
func attachWireReceiver(net *simnet.Network, addr simnet.Addr, srv *Server, counter *atomic.Int64) *simnet.Endpoint {
	ep := net.Attach(addr, simnet.FastEthernet)
	sessions := make(map[simnet.Addr]*wireServer)
	ep.OnReceive(func(p simnet.Packet) {
		b, ok := p.Payload.([]byte)
		if !ok {
			return
		}
		if counter != nil {
			counter.Add(1)
		}
		ws := sessions[p.Src]
		if ws == nil {
			ws = &wireServer{s: srv}
			sessions[p.Src] = ws
		}
		src := p.Src
		ws.handle(b, func(ctl []byte) {
			cb := append([]byte(nil), ctl...)
			ep.Send(src, cb, len(cb)+monOverheadBytes)
		})
	})
	return ep
}

// TotalNodes is the monitored-node count across all leaves.
func (f *FedSim) TotalNodes() int {
	return len(f.Leaves) * f.cfg.NodesPerLeaf
}

// PowerOnAll powers every simulated node (real-agent mode).
func (f *FedSim) PowerOnAll() {
	for _, leaf := range f.Leaves {
		if leaf.Sim != nil {
			leaf.Sim.PowerOnAll()
		}
	}
}

// Advance moves virtual time.
func (f *FedSim) Advance(d time.Duration) { f.Clk.Advance(d) }

// Stop shuts down all leaf agents (test hygiene).
func (f *FedSim) Stop() {
	for _, leaf := range f.Leaves {
		if leaf.Sim != nil {
			leaf.Sim.Stop()
		}
	}
}

// InjectRound drives one synthetic monitoring round: every node sends
// one frame (a sequenced snapshot on the first round, then single-value
// deltas whose value changes every round, so per-hop suppression has
// exactly one change per node to forward). Returns frames sent. Must be
// called between clock advances (the fabric is clock-threaded).
func (f *FedSim) InjectRound() int {
	f.round++
	sent := 0
	for _, leaf := range f.Leaves {
		for i := range leaf.synth {
			sn := &leaf.synth[i]
			sn.seq++
			fr := transmit.Frame{
				Node: sn.name,
				Seq:  sn.seq,
				Values: []consolidate.Value{
					consolidate.NumValue("cpu.load", consolidate.Dynamic, SynthValue(sn.global, f.round)),
				},
			}
			if sn.seq == 1 {
				fr.Kind = transmit.FrameSnapshot
				fr.Values = append(fr.Values,
					consolidate.NumValue("mem.total", consolidate.Static, 1024),
				)
			}
			leaf.buf = transmit.MarshalFrame(leaf.buf[:0], fr)
			b := append([]byte(nil), leaf.buf...)
			sn.ep.Send(simnet.Addr(leaf.Name+".mon"), b, len(b)+monOverheadBytes)
			sent++
		}
	}
	return sent
}

// SynthValue is the deterministic per-node workload: it changes for
// every node on every round, so a federated run and a flat control
// inject byte-identical value streams.
func SynthValue(global int, round uint64) float64 {
	return float64((uint64(global)*7+round*13)%1000) / 1000
}

// Round reports the number of injected synthetic rounds.
func (f *FedSim) Round() uint64 { return f.round }
