package image

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestNumChunksAndLens(t *testing.T) {
	im := newWithChunk("t", "1", BootDisk, 1000, 256)
	if im.NumChunks() != 4 {
		t.Fatalf("NumChunks = %d, want 4", im.NumChunks())
	}
	for i := 0; i < 3; i++ {
		if im.ChunkLen(i) != 256 {
			t.Fatalf("chunk %d len %d", i, im.ChunkLen(i))
		}
	}
	if im.ChunkLen(3) != 232 {
		t.Fatalf("tail chunk len %d, want 232", im.ChunkLen(3))
	}
}

func TestExactMultipleChunks(t *testing.T) {
	im := newWithChunk("t", "1", BootDisk, 1024, 256)
	if im.NumChunks() != 4 || im.ChunkLen(3) != 256 {
		t.Fatalf("exact multiple: chunks %d, tail %d", im.NumChunks(), im.ChunkLen(3))
	}
}

func TestChunkDeterministicAndDistinct(t *testing.T) {
	im := newWithChunk("t", "1", BootDisk, 4096, 1024)
	a1, a2 := im.Chunk(0), im.Chunk(0)
	if string(a1) != string(a2) {
		t.Fatal("chunk content not deterministic")
	}
	if string(im.Chunk(0)) == string(im.Chunk(1)) {
		t.Fatal("distinct chunks have identical content")
	}
	// Version is administrative identity: rebuilding the same content
	// under a new version shares chunks (that is what enables incremental
	// updates). A different image name is different content.
	rebuild := newWithChunk("t", "2", BootDisk, 4096, 1024)
	if string(im.Chunk(0)) != string(rebuild.Chunk(0)) {
		t.Fatal("identical content differs across versions")
	}
	other := newWithChunk("other", "1", BootDisk, 4096, 1024)
	if string(im.Chunk(0)) == string(other.Chunk(0)) {
		t.Fatal("different images share chunk content")
	}
}

func TestChunkSumMatchesContent(t *testing.T) {
	im := newWithChunk("t", "1", BootNFS, 5000, 512)
	for i := 0; i < im.NumChunks(); i++ {
		if got, want := len(im.Chunk(i)), im.ChunkLen(i); got != want {
			t.Fatalf("chunk %d content len %d, want %d", i, got, want)
		}
	}
	// Sums are stable across calls (lazy manifest).
	if im.ChunkSum(2) != im.ChunkSum(2) {
		t.Fatal("sum not stable")
	}
}

func TestChunkBounds(t *testing.T) {
	im := newWithChunk("t", "1", BootDisk, 100, 50)
	for _, bad := range []int{-1, 2, 100} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("ChunkLen(%d) did not panic", bad)
				}
			}()
			im.ChunkLen(bad)
		}()
	}
}

func TestInvalidSizesPanic(t *testing.T) {
	for _, fn := range []func(){
		func() { New("x", "1", BootDisk, 0) },
		func() { New("x", "1", BootDisk, -5) },
		func() { newWithChunk("x", "1", BootDisk, 10, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("invalid size did not panic")
				}
			}()
			fn()
		}()
	}
}

func TestBuilder(t *testing.T) {
	im := NewBuilder("compute", "3.0", BootDisk, 100<<20).
		AddPackage("mpich", 50<<20).
		AddPackage("atlas", 30<<20).
		Build()
	if im.Size != 180<<20 {
		t.Fatalf("built size %d", im.Size)
	}
	if im.ID() != "compute@3.0" {
		t.Fatalf("ID = %q", im.ID())
	}
	pkgs := im.Packages()
	if len(pkgs) != 2 || pkgs[0] != "atlas" || pkgs[1] != "mpich" {
		t.Fatalf("packages = %v (must be sorted)", pkgs)
	}
}

func TestBuildOrderIndependentIdentity(t *testing.T) {
	a := NewBuilder("n", "1", BootDisk, 1<<20).AddPackage("x", 0).AddPackage("y", 0).Build()
	b := NewBuilder("n", "1", BootDisk, 1<<20).AddPackage("y", 0).AddPackage("x", 0).Build()
	if a.ChunkSum(0) != b.ChunkSum(0) {
		t.Fatal("package install order changed image content")
	}
}

func TestBuilderMisuse(t *testing.T) {
	b := NewBuilder("n", "1", BootDisk, 10)
	b.Build()
	defer func() {
		if recover() == nil {
			t.Fatal("AddPackage after Build did not panic")
		}
	}()
	b.AddPackage("late", 1)
}

func TestPackageContentChangesImage(t *testing.T) {
	plain := NewBuilder("n", "1", BootDisk, 1<<20).Build()
	withPkg := NewBuilder("n", "2", BootDisk, 1<<20).AddPackage("extra", 256<<10).Build()
	diff := withPkg.Diff(plain)
	if len(diff) == 0 {
		t.Fatal("adding a package left image content unchanged")
	}
	// The base is shared: the delta is about the package size, not the
	// whole image.
	if len(diff) >= withPkg.NumChunks()/2 {
		t.Fatalf("delta %d of %d chunks; base not shared", len(diff), withPkg.NumChunks())
	}
}

func TestDiffSemantics(t *testing.T) {
	v1 := NewBuilder("os", "1.0", BootDisk, 64<<20).
		AddPackage("kernel-2.4.18", 4<<20).
		AddPackage("mpich", 8<<20).
		Build()
	// v1.1: kernel upgraded (same size, different label), mpich kept.
	v2 := NewBuilder("os", "1.1", BootDisk, 64<<20).
		AddPackage("kernel-2.4.19", 4<<20).
		AddPackage("mpich", 8<<20).
		Build()
	full := v2.Diff(nil)
	if len(full) != v2.NumChunks() {
		t.Fatalf("Diff(nil) = %d chunks", len(full))
	}
	delta := v2.Diff(v1)
	if len(delta) == 0 {
		t.Fatal("kernel upgrade produced empty delta")
	}
	// Only the kernel segment (~4 MB of 76 MB) plus boundary chunks move.
	kernelChunks := int(4<<20)/v2.ChunkSize + 2
	if len(delta) > kernelChunks+2 {
		t.Fatalf("delta = %d chunks, want about the kernel's %d", len(delta), kernelChunks)
	}
	// Identical rebuild: empty delta.
	v2again := NewBuilder("os", "1.1-rebuild", BootDisk, 64<<20).
		AddPackage("kernel-2.4.19", 4<<20).
		AddPackage("mpich", 8<<20).
		Build()
	if d := v2again.Diff(v2); len(d) != 0 {
		t.Fatalf("identical rebuild delta = %d chunks", len(d))
	}
}

func TestChunkContentMatchesSumsAcrossSegments(t *testing.T) {
	im := NewBuilder("seg", "1", BootDisk, 10000).
		AddPackage("a", 3000).
		AddPackage("b", 500).
		BuildWithChunkSize(640)
	var total int64
	for i := 0; i < im.NumChunks(); i++ {
		c := im.Chunk(i)
		if len(c) != im.ChunkLen(i) {
			t.Fatalf("chunk %d len %d want %d", i, len(c), im.ChunkLen(i))
		}
		total += int64(len(c))
		// Determinism across calls even when a chunk straddles segments.
		if string(c) != string(im.Chunk(i)) {
			t.Fatalf("chunk %d unstable", i)
		}
	}
	if total != im.Size {
		t.Fatalf("chunks cover %d of %d bytes", total, im.Size)
	}
}

func TestPrebuilt(t *testing.T) {
	hd, err := Prebuilt("harddisk")
	if err != nil {
		t.Fatal(err)
	}
	if hd.Mode != BootDisk || hd.Size <= 640<<20 {
		t.Fatalf("harddisk image %+v", hd)
	}
	nfs, err := Prebuilt("nfsboot")
	if err != nil {
		t.Fatal(err)
	}
	if nfs.Mode != BootNFS || nfs.Size >= hd.Size {
		t.Fatalf("nfs image should be smaller: %d vs %d", nfs.Size, hd.Size)
	}
	if _, err := Prebuilt("floppy"); err == nil || !strings.Contains(err.Error(), "unknown prebuilt") {
		t.Fatalf("unknown prebuilt err = %v", err)
	}
	if BootDisk.String() != "disk" || BootNFS.String() != "nfs" {
		t.Fatal("BootMode.String wrong")
	}
}

func TestStore(t *testing.T) {
	s := NewStore()
	a := New("n", "1.0", BootDisk, 100)
	b := New("n", "1.1", BootDisk, 100)
	c := New("other", "9.9", BootDisk, 100)
	for _, im := range []*Image{a, b, c} {
		if err := s.Put(im); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Put(a); err == nil {
		t.Fatal("duplicate Put succeeded")
	}
	if got, ok := s.Get("n@1.0"); !ok || got != a {
		t.Fatal("Get failed")
	}
	if _, ok := s.Get("missing@0"); ok {
		t.Fatal("Get missing succeeded")
	}
	ids := s.List()
	if len(ids) != 3 || ids[0] != "n@1.0" || ids[1] != "n@1.1" || ids[2] != "other@9.9" {
		t.Fatalf("List = %v", ids)
	}
	latest, ok := s.Latest("n")
	if !ok || latest != b {
		t.Fatalf("Latest = %+v", latest)
	}
	if _, ok := s.Latest("nope"); ok {
		t.Fatal("Latest for unknown name succeeded")
	}
}

// Property: chunk lengths always sum to the image size.
func TestPropertyChunkLensSum(t *testing.T) {
	f := func(size uint32, chunk uint16) bool {
		sz := int64(size%(8<<20)) + 1
		cs := int(chunk%8192) + 1
		im := newWithChunk("p", "1", BootDisk, sz, cs)
		var sum int64
		for i := 0; i < im.NumChunks(); i++ {
			sum += int64(im.ChunkLen(i))
		}
		return sum == sz
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
