// Package image implements the Image Manager side of ClusterWorX's disk
// cloning (paper §4): building system images, chunking them for the
// multicast cloner, and verifying integrity with per-chunk checksums.
//
// Image payload bytes are synthesized deterministically from the image
// identity (we have no 2 GB golden disk images to ship), so a chunk's
// content — and therefore its checksum — is a pure function of
// (name, version, index). That preserves the property the cloner needs:
// every node can prove bit-identity with the master without the simulator
// materializing gigabytes.
package image

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sort"
	"sync"
)

// DefaultChunkSize is the cloning transfer unit. 64 KiB matches a
// reasonable multicast burst on Fast Ethernet.
const DefaultChunkSize = 64 << 10

// BootMode says how nodes run the image after cloning.
type BootMode uint8

// Boot modes; the paper offers prebuilt images for both.
const (
	BootDisk BootMode = iota // image flashed to local disk
	BootNFS                  // image served over NFS, minimal local write
)

// String names the boot mode.
func (m BootMode) String() string {
	if m == BootNFS {
		return "nfs"
	}
	return "disk"
}

// Image is an immutable, chunked system image.
//
// Content is organized in segments — the base OS followed by one segment
// per installed package — and a chunk's bytes are a pure function of the
// segment it falls in and its offset there. Two image versions that share
// the base and most packages therefore share most chunk checksums, which
// is what makes the §4 incremental update ("update files or packages on
// the nodes in parallel") transfer only what changed. The version string
// is administrative identity; it does not perturb content.
type Image struct {
	Name      string
	Version   string
	Mode      BootMode
	Size      int64
	ChunkSize int

	segments []segment

	sumOnce sync.Once
	sums    [][32]byte
}

// segment is one contiguous content region.
type segment struct {
	label string // "base" or the package name
	size  int64
	start int64 // offset of the segment in the image
}

// New builds an image of the given size. Size must be positive; the final
// chunk may be short.
func New(name, version string, mode BootMode, size int64) *Image {
	return newWithChunk(name, version, mode, size, DefaultChunkSize)
}

// NewWithChunkSize builds an image with an explicit transfer chunk size,
// for experiments that trade packet count against event volume.
func NewWithChunkSize(name, version string, mode BootMode, size int64, chunkSize int) *Image {
	return newWithChunk(name, version, mode, size, chunkSize)
}

func newWithChunk(name, version string, mode BootMode, size int64, chunkSize int) *Image {
	if size <= 0 {
		panic(fmt.Sprintf("image: non-positive size %d", size))
	}
	if chunkSize <= 0 {
		panic(fmt.Sprintf("image: non-positive chunk size %d", chunkSize))
	}
	return &Image{
		Name: name, Version: version, Mode: mode, Size: size, ChunkSize: chunkSize,
		segments: []segment{{label: "base", size: size}},
	}
}

// ID returns the unique identity string "name@version".
func (im *Image) ID() string { return im.Name + "@" + im.Version }

// NumChunks returns the chunk count.
func (im *Image) NumChunks() int {
	return int((im.Size + int64(im.ChunkSize) - 1) / int64(im.ChunkSize))
}

// ChunkLen returns the payload length of chunk i.
func (im *Image) ChunkLen(i int) int {
	if i < 0 || i >= im.NumChunks() {
		panic(fmt.Sprintf("image: chunk %d out of range [0,%d)", i, im.NumChunks()))
	}
	if i == im.NumChunks()-1 {
		if rem := int(im.Size % int64(im.ChunkSize)); rem != 0 {
			return rem
		}
	}
	return im.ChunkSize
}

// Chunk synthesizes the payload of chunk i: a deterministic keystream per
// content segment. Chunks covering unchanged segments are byte-identical
// across versions; a chunk straddling a changed segment differs.
func (im *Image) Chunk(i int) []byte {
	n := im.ChunkLen(i)
	out := make([]byte, n)
	imgOff := int64(i) * int64(im.ChunkSize)
	filled := 0
	for _, seg := range im.segments {
		if filled >= n {
			break
		}
		segEnd := seg.start + seg.size
		cur := imgOff + int64(filled)
		if cur >= segEnd || segEnd <= seg.start {
			continue
		}
		if cur < seg.start {
			continue
		}
		// Fill from this segment's keystream at the in-segment offset.
		want := n - filled
		if avail := segEnd - cur; int64(want) > avail {
			want = int(avail)
		}
		fillKeystream(out[filled:filled+want], im.Name, seg.label, seg.size, cur-seg.start)
		filled += want
	}
	return out
}

// fillKeystream writes the segment keystream for [off, off+len(dst)).
func fillKeystream(dst []byte, imgName, label string, segSize, off int64) {
	seed := sha256.Sum256([]byte(fmt.Sprintf("%s|%s|%d", imgName, label, segSize)))
	var ctr [40]byte
	copy(ctr[:32], seed[:])
	// Generate block-aligned and copy the needed window.
	blockStart := off / sha256.Size * sha256.Size
	var block [32]byte
	for pos := 0; pos < len(dst); {
		binary.BigEndian.PutUint64(ctr[32:], uint64(blockStart))
		block = sha256.Sum256(ctr[:])
		skip := int(off+int64(pos)) - int(blockStart)
		nCopy := copy(dst[pos:], block[skip:])
		pos += nCopy
		blockStart += sha256.Size
	}
}

// ChunkSum returns the checksum of chunk i, computing the manifest lazily
// on first use.
func (im *Image) ChunkSum(i int) [32]byte {
	im.sumOnce.Do(func() {
		im.sums = make([][32]byte, im.NumChunks())
		for c := range im.sums {
			im.sums[c] = sha256.Sum256(im.Chunk(c))
		}
	})
	return im.sums[i]
}

// Packages returns the installed package list.
func (im *Image) Packages() []string {
	var out []string
	for _, seg := range im.segments {
		if seg.label != "base" {
			out = append(out, seg.label)
		}
	}
	return out
}

// Diff returns the chunk indexes of im whose checksum does not occur
// anywhere in old — the transfer set for an incremental update. A nil old
// means everything.
func (im *Image) Diff(old *Image) []int {
	if old == nil {
		out := make([]int, im.NumChunks())
		for i := range out {
			out[i] = i
		}
		return out
	}
	have := make(map[[32]byte]struct{}, old.NumChunks())
	for i := 0; i < old.NumChunks(); i++ {
		have[old.ChunkSum(i)] = struct{}{}
	}
	var out []int
	for i := 0; i < im.NumChunks(); i++ {
		if _, ok := have[im.ChunkSum(i)]; !ok {
			out = append(out, i)
		}
	}
	return out
}

// Builder assembles a new image version the way the ClusterWorX GUI does:
// start from a base, load OS and applications, then freeze.
type Builder struct {
	name     string
	version  string
	mode     BootMode
	size     int64
	packages []string
	pkgSizes []int64
	built    bool
}

// NewBuilder starts an image build from a base OS footprint.
func NewBuilder(name, version string, mode BootMode, baseSize int64) *Builder {
	return &Builder{name: name, version: version, mode: mode, size: baseSize}
}

// AddPackage installs a package of the given size into the build.
func (b *Builder) AddPackage(name string, size int64) *Builder {
	if b.built {
		panic("image: build already frozen")
	}
	if size < 0 {
		panic("image: negative package size")
	}
	b.packages = append(b.packages, name)
	b.pkgSizes = append(b.pkgSizes, size)
	b.size += size
	return b
}

// Build freezes the image. Packages are laid out in sorted order so that
// install order does not change the image content.
func (b *Builder) Build() *Image {
	return b.BuildWithChunkSize(DefaultChunkSize)
}

// BuildWithChunkSize freezes the image with an explicit chunk size.
func (b *Builder) BuildWithChunkSize(chunkSize int) *Image {
	b.built = true
	im := newWithChunk(b.name, b.version, b.mode, b.size, chunkSize)
	type pkg struct {
		name string
		size int64
	}
	pkgs := make([]pkg, len(b.packages))
	for i, name := range b.packages {
		pkgs[i] = pkg{name: name, size: b.pkgSizes[i]}
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].name < pkgs[j].name })
	baseSize := b.size
	for _, p := range pkgs {
		baseSize -= p.size
	}
	im.segments = im.segments[:0]
	off := int64(0)
	im.segments = append(im.segments, segment{label: "base", size: baseSize, start: off})
	off += baseSize
	for _, p := range pkgs {
		im.segments = append(im.segments, segment{label: p.name, size: p.size, start: off})
		off += p.size
	}
	return im
}

// Prebuilt returns one of the stock images the paper ships "for
// convenience": a hard-disk boot image and an NFS boot image.
func Prebuilt(kind string) (*Image, error) {
	switch kind {
	case "harddisk":
		return NewBuilder("lnxi-node", "2.1", BootDisk, 640<<20).
			AddPackage("kernel-2.4.18", 24<<20).
			AddPackage("glibc", 80<<20).
			AddPackage("mpich", 48<<20).
			AddPackage("cwx-agent", 8<<20).
			Build(), nil
	case "nfsboot":
		return NewBuilder("lnxi-nfs", "2.1", BootNFS, 48<<20).
			AddPackage("kernel-2.4.18", 24<<20).
			AddPackage("cwx-agent", 8<<20).
			Build(), nil
	default:
		return nil, fmt.Errorf("image: unknown prebuilt kind %q (want harddisk or nfsboot)", kind)
	}
}

// Store is a versioned image library on the management host.
type Store struct {
	mu     sync.Mutex
	images map[string]*Image
}

// NewStore returns an empty store.
func NewStore() *Store {
	return &Store{images: make(map[string]*Image)}
}

// Put registers an image. Re-registering the same ID is an error: images
// are immutable once published.
func (s *Store) Put(im *Image) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.images[im.ID()]; dup {
		return fmt.Errorf("image: %s already published", im.ID())
	}
	s.images[im.ID()] = im
	return nil
}

// Get fetches an image by ID.
func (s *Store) Get(id string) (*Image, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	im, ok := s.images[id]
	return im, ok
}

// List returns all image IDs, sorted.
func (s *Store) List() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.images))
	for id := range s.images {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Latest returns the image with the lexically greatest version for name.
func (s *Store) Latest(name string) (*Image, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	var best *Image
	for _, im := range s.images {
		if im.Name != name {
			continue
		}
		if best == nil || im.Version > best.Version {
			best = im
		}
	}
	return best, best != nil
}
