package transmit

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"strconv"
	"strings"

	"clusterworx/internal/consolidate"
)

// This file defines the loss-tolerant framing of the §5.3.3 transmission
// stage. The original delta protocol silently assumed a reliable
// transport: a change set that never arrived was never resent, because
// change suppression only retransmits a value when it changes again. The
// sequenced frame format lets the receiver detect losses (per-node
// sequence numbers), and the snapshot kind lets a sender heal any
// divergence by shipping its full value set.
//
// Payload layout (inside a compressed wire frame):
//
//	<node> <seq> <D|S> [opts]\n  sequenced header: kind D (delta) or S (snapshot)
//	<node>\n                     legacy unsequenced header (seq 0, delta)
//	<value lines...>             see MarshalValues
//
// A sequenced header may carry trailing option tokens. The parser
// ignores tokens it does not understand — and malformed ones — so a
// corrupted or future option can never cost us the data frame carrying
// it, and new options are forward-compatible from here on. The only
// option today is the causal trace context, "t=<hex>" — hex over
// varint(trace id) ++ varint(origin ns), stamped by the agent on
// sampled frames (see internal/flight). Legacy name-only headers have
// no option slot, so unsequenced frames are never traced.
//
// A payload whose first byte is '!' is a control message flowing
// server→agent; today the only one is the resync request ("!resync
// <node>"), sent when the server detects a sequence gap and needs a
// snapshot to restore a byte-identical view of the node.

// FrameKind classifies a data frame.
type FrameKind uint8

// Data frame kinds.
const (
	// FrameDelta carries only values that changed since the previous
	// frame; it applies on top of the receiver's current state.
	FrameDelta FrameKind = iota
	// FrameSnapshot carries the sender's complete value set and replaces
	// the receiver's state for the node — the anti-entropy/resync unit.
	FrameSnapshot
)

// String returns "delta" or "snapshot".
func (k FrameKind) String() string {
	if k == FrameSnapshot {
		return "snapshot"
	}
	return "delta"
}

// Frame is one decoded agent transmission.
type Frame struct {
	Node string
	// Seq is the per-node sequence number, incremented by the agent on
	// every successfully handed-off frame. Zero means unsequenced (the
	// legacy protocol): the receiver applies the values without gap
	// detection.
	Seq  uint64
	Kind FrameKind
	// TraceID and TraceNs are the optional causal trace context
	// (internal/flight): a nonzero TraceID marks this frame as sampled,
	// TraceNs is the origin timestamp the agent stamped at gather time.
	// Carried as the "t=" header option; only sequenced frames can
	// carry it.
	TraceID uint64
	TraceNs int64
	// WireOffer is the highest wire protocol version the sender speaks
	// beyond v1, carried as the ignorable "w=" header option while the
	// session is still v1 (see framev2.go). Zero: no offer. Values below
	// WireV2 are meaningless and never marshalled or parsed.
	WireOffer uint8
	// SentNs is the agent's clock at hand-off. The v1 text form does not
	// carry it (v1 frames marshal byte-identically to before it existed);
	// v2 frames deliver it delta-of-delta coded.
	SentNs int64
	Values []consolidate.Value
}

// MarshalFrame renders f into the wire payload form, appending to dst.
// Frames with Seq 0 use the legacy name-only header so old receivers
// still parse them.
//
//cwx:hotpath
func MarshalFrame(dst []byte, f Frame) []byte {
	dst = append(dst, f.Node...)
	if f.Seq > 0 {
		dst = append(dst, ' ')
		dst = strconv.AppendUint(dst, f.Seq, 10)
		if f.Kind == FrameSnapshot {
			dst = append(dst, ' ', 'S')
		} else {
			dst = append(dst, ' ', 'D')
		}
		if f.TraceID != 0 {
			dst = appendTraceOpt(dst, f.TraceID, f.TraceNs)
		}
		if f.WireOffer >= WireV2 {
			dst = append(dst, ' ', 'w', '=')
			dst = strconv.AppendUint(dst, uint64(f.WireOffer), 10)
		}
	}
	dst = append(dst, '\n')
	return MarshalValues(dst, f.Values)
}

// ParseFrame decodes one data-frame payload (either header form). It
// rejects malformed headers — including node names carrying whitespace or
// non-printable bytes, the tell-tale of a truncated or corrupted frame —
// rather than registering garbage node names.
func ParseFrame(payload []byte) (Frame, error) {
	var f Frame
	if len(payload) == 0 {
		return f, fmt.Errorf("transmit: empty frame")
	}
	if payload[0] == '!' {
		return f, fmt.Errorf("transmit: control frame where data frame expected")
	}
	header := payload
	var rest []byte
	if nl := bytes.IndexByte(payload, '\n'); nl >= 0 {
		header, rest = payload[:nl], payload[nl+1:]
	}
	fields := strings.Fields(string(header))
	switch {
	case len(fields) == 1: // legacy unsequenced header
		f.Node = fields[0]
	case len(fields) >= 3:
		f.Node = fields[0]
		seq, err := strconv.ParseUint(fields[1], 10, 64)
		if err != nil || seq == 0 {
			return Frame{}, fmt.Errorf("transmit: bad sequence number %q", fields[1])
		}
		f.Seq = seq
		switch fields[2] {
		case "D":
			f.Kind = FrameDelta
		case "S":
			f.Kind = FrameSnapshot
		default:
			return Frame{}, fmt.Errorf("transmit: bad frame kind %q", fields[2])
		}
		// Trailing option tokens. Unknown or malformed options are
		// skipped, never fatal: losing a diagnostic annotation must not
		// lose the data frame. But two tokens that BOTH decode to the
		// same known option are ambiguous — two trace contexts (or two
		// version offers) cannot both be what the sender meant — so
		// well-formed duplicates void that option entirely (still never
		// the frame; malformed repeats remain ordinary skipped garbage).
		// The length bound rejects absurdly long tokens before any
		// per-byte decode work.
		traceOpts, offerOpts := 0, 0
		for _, opt := range fields[3:] {
			switch {
			case strings.HasPrefix(opt, "t="):
				if len(opt)-2 > maxTraceOptHex {
					continue
				}
				if id, ns, ok := parseTraceOpt(opt[2:]); ok {
					if traceOpts++; traceOpts > 1 {
						f.TraceID, f.TraceNs = 0, 0
						continue
					}
					f.TraceID, f.TraceNs = id, ns
				}
			case strings.HasPrefix(opt, "w="):
				if v, ok := parseWireOffer(opt[2:]); ok {
					if offerOpts++; offerOpts > 1 {
						f.WireOffer = 0
						continue
					}
					f.WireOffer = v
				}
			}
		}
	default:
		return Frame{}, fmt.Errorf("transmit: malformed frame header %q", header)
	}
	if !validNodeName(f.Node) {
		return Frame{}, fmt.Errorf("transmit: invalid node name %q", f.Node)
	}
	values, err := UnmarshalValues(rest)
	if err != nil {
		return Frame{}, err
	}
	f.Values = values
	return f, nil
}

const traceHexDigits = "0123456789abcdef"

// maxTraceOptHex is the longest hex payload a well-formed "t=" option
// can carry: two varints of at most binary.MaxVarintLen64 bytes each, at
// two hex digits per byte. Anything longer is rejected up front, before
// the hex scan.
const maxTraceOptHex = 2 * 2 * binary.MaxVarintLen64

// parseWireOffer decodes the decimal payload of a "w=" version-offer
// option. ok is false for anything malformed or for versions below
// WireV2 (v1 needs no offer — it is the floor both sides always speak).
func parseWireOffer(s string) (uint8, bool) {
	if len(s) == 0 || len(s) > 3 {
		return 0, false
	}
	v, err := strconv.ParseUint(s, 10, 8)
	if err != nil || v < WireV2 {
		return 0, false
	}
	return uint8(v), true
}

// appendTraceOpt renders the " t=<hex>" trace-context header option:
// varint(id) ++ varint(ns), hex-encoded so the header stays printable
// ASCII with no whitespace. Varints keep small origin timestamps (the
// sim's virtual clock starts at zero) to a handful of bytes.
//
//cwx:hotpath
func appendTraceOpt(dst []byte, id uint64, ns int64) []byte {
	var tmp [2 * binary.MaxVarintLen64]byte
	n := binary.PutUvarint(tmp[:], id)
	n += binary.PutUvarint(tmp[n:], uint64(ns))
	dst = append(dst, ' ', 't', '=')
	for _, b := range tmp[:n] {
		dst = append(dst, traceHexDigits[b>>4], traceHexDigits[b&0xf])
	}
	return dst
}

// parseTraceOpt decodes the hex payload of a "t=" option. ok is false
// for anything malformed: odd length, non-hex bytes, varints that do
// not consume the payload exactly, or a zero trace id.
func parseTraceOpt(s string) (id uint64, ns int64, ok bool) {
	var tmp [2 * binary.MaxVarintLen64]byte
	if len(s) == 0 || len(s)%2 != 0 || len(s) > 2*len(tmp) {
		return 0, 0, false
	}
	n := 0
	for i := 0; i < len(s); i += 2 {
		hi, ok1 := traceHexVal(s[i])
		lo, ok2 := traceHexVal(s[i+1])
		if !ok1 || !ok2 {
			return 0, 0, false
		}
		tmp[n] = hi<<4 | lo
		n++
	}
	id, used := binary.Uvarint(tmp[:n])
	if used <= 0 || id == 0 {
		return 0, 0, false
	}
	uns, used2 := binary.Uvarint(tmp[used:n])
	if used2 <= 0 || used+used2 != n {
		return 0, 0, false
	}
	return id, int64(uns), true
}

func traceHexVal(c byte) (byte, bool) {
	switch {
	case c >= '0' && c <= '9':
		return c - '0', true
	case c >= 'a' && c <= 'f':
		return c - 'a' + 10, true
	}
	return 0, false
}

// validNodeName reports whether name looks like a hostname rather than
// frame corruption: non-empty printable ASCII with no whitespace, and not
// beginning with '!' — that byte marks control frames, so a node named
// "!x" would marshal to a payload that reads back as a control frame
// (found by FuzzParseFrame: " !" parsed to node "!").
func validNodeName(name string) bool {
	if len(name) == 0 || name[0] == '!' {
		return false
	}
	for i := 0; i < len(name); i++ {
		if b := name[i]; b <= ' ' || b >= 0x7f {
			return false
		}
	}
	return true
}

// resyncPrefix tags the server→agent resync request control payload.
const resyncPrefix = "!resync "

// MarshalResync renders a resync request for node, appending to dst.
//
//cwx:hotpath
func MarshalResync(dst []byte, node string) []byte {
	return append(append(dst, resyncPrefix...), node...)
}

// ParseResync reports whether payload is a resync request and for which
// node.
func ParseResync(payload []byte) (node string, ok bool) {
	if !bytes.HasPrefix(payload, []byte(resyncPrefix)) {
		return "", false
	}
	name := string(payload[len(resyncPrefix):])
	if !validNodeName(name) {
		return "", false
	}
	return name, true
}
