package transmit

import (
	"math"
	"testing"

	"clusterworx/internal/consolidate"
)

// v2TestFrame builds a representative frame for codec tests.
func v2TestFrame(seq uint64, cpu, mem float64) Frame {
	return Frame{
		Node: "node042",
		Seq:  seq,
		Kind: FrameDelta,
		Values: []consolidate.Value{
			consolidate.NumValue("cpu.load", consolidate.Dynamic, cpu),
			consolidate.NumValue("mem.free", consolidate.Dynamic, mem),
			consolidate.TextValue("os.release", consolidate.Static, "2.4.19-smp"),
		},
		SentNs: int64(seq) * 15_000_000_000,
	}
}

// requireV2Equal compares a decoded frame against what was encoded.
func requireV2Equal(t *testing.T, got, want Frame) {
	t.Helper()
	if got.Node != want.Node || got.Seq != want.Seq || got.Kind != want.Kind {
		t.Fatalf("header mismatch: got %s/%d/%v want %s/%d/%v",
			got.Node, got.Seq, got.Kind, want.Node, want.Seq, want.Kind)
	}
	if got.TraceID != want.TraceID || got.TraceNs != want.TraceNs {
		t.Fatalf("trace mismatch: got %d/%d want %d/%d", got.TraceID, got.TraceNs, want.TraceID, want.TraceNs)
	}
	if got.SentNs != want.SentNs {
		t.Fatalf("SentNs mismatch: got %d want %d", got.SentNs, want.SentNs)
	}
	if len(got.Values) != len(want.Values) {
		t.Fatalf("value count mismatch: got %d want %d", len(got.Values), len(want.Values))
	}
	for i := range want.Values {
		g, w := got.Values[i], want.Values[i]
		if g.Name != w.Name || g.Kind != w.Kind || g.IsText != w.IsText || g.Text != w.Text {
			t.Fatalf("value %d mismatch: got %+v want %+v", i, g, w)
		}
		// NaN-safe numeric comparison: bit equality is the codec's contract.
		if math.Float64bits(g.Num) != math.Float64bits(w.Num) {
			t.Fatalf("value %d numeric mismatch: got %v want %v", i, g.Num, w.Num)
		}
	}
}

// TestV2RoundtripChain: a chain of delta frames roundtrips exactly —
// names, kinds, text, trace context, SentNs, and bit-exact numerics.
func TestV2RoundtripChain(t *testing.T) {
	enc := NewEncoderV2()
	dec := NewDecoderV2()
	var buf []byte
	for seq := uint64(1); seq <= 20; seq++ {
		f := v2TestFrame(seq, 0.25*float64(seq%7), 1024-float64(seq))
		if seq == 3 {
			f.TraceID, f.TraceNs = 0xbeef, -12345 // negative ns exercises the zigzag
		}
		if seq == 5 {
			f.Values[0].Num = math.NaN()
			f.Values[1].Num = math.Inf(-1)
		}
		buf = enc.Encode(buf[:0], f)
		if !IsV2Payload(buf) {
			t.Fatalf("seq %d: payload not v2", seq)
		}
		got, err := dec.Decode(buf)
		if err != nil {
			t.Fatalf("seq %d: decode: %v", seq, err)
		}
		requireV2Equal(t, got, f)
	}
}

// TestV2DictAckStopsTailResend: the dictionary tail is resent every
// frame until acked, then disappears, shrinking the payload.
func TestV2DictAckStopsTailResend(t *testing.T) {
	enc := NewEncoderV2()
	dec := NewDecoderV2()

	buf := enc.Encode(nil, v2TestFrame(1, 1, 2))
	withTail := len(buf)
	if _, err := dec.Decode(buf); err != nil {
		t.Fatalf("decode: %v", err)
	}
	n, ok := dec.PendingAck()
	if !ok || n != enc.TableLen() {
		t.Fatalf("PendingAck = %d,%v want %d,true", n, ok, enc.TableLen())
	}
	if _, ok := dec.PendingAck(); ok {
		t.Fatal("PendingAck not consumed")
	}

	// Unacked: the tail rides again.
	buf = enc.Encode(buf[:0], v2TestFrame(2, 1, 2))
	if _, err := dec.Decode(buf); err != nil {
		t.Fatalf("decode unacked resend: %v", err)
	}
	if _, ok := dec.PendingAck(); !ok {
		t.Fatal("resent tail did not re-arm the ack (lost-ack recovery broken)")
	}

	enc.Ack(n)
	if enc.Acked() != n {
		t.Fatalf("Acked = %d want %d", enc.Acked(), n)
	}
	enc.Ack(n - 1) // stale ack must not regress
	if enc.Acked() != n {
		t.Fatal("stale ack regressed the acked prefix")
	}
	enc.Ack(n + 100) // absurd ack must be ignored
	if enc.Acked() != n {
		t.Fatal("absurd ack advanced past the table")
	}

	buf = enc.Encode(buf[:0], v2TestFrame(3, 1, 2))
	if len(buf) >= withTail {
		t.Fatalf("acked frame (%dB) not smaller than tailed frame (%dB)", len(buf), withTail)
	}
	got, err := dec.Decode(buf)
	if err != nil {
		t.Fatalf("decode tail-free: %v", err)
	}
	if got.Node != "node042" || len(got.Values) != 3 {
		t.Fatalf("tail-free decode wrong: %+v", got)
	}
	if _, ok := dec.PendingAck(); ok {
		t.Fatal("tail-free frame owes no ack")
	}
}

// TestV2LostFrameDesyncsThenSnapshotHeals: dropping a frame breaks the
// predictor chain — the decoder returns the header with ErrV2Desync so
// the seq machinery books the gap — and a snapshot (chain reset) heals.
func TestV2LostFrameDesyncsThenSnapshotHeals(t *testing.T) {
	enc := NewEncoderV2()
	dec := NewDecoderV2()
	var buf []byte

	buf = enc.Encode(buf[:0], v2TestFrame(1, 1, 2))
	if _, err := dec.Decode(buf); err != nil {
		t.Fatalf("decode 1: %v", err)
	}
	_ = enc.Encode(buf[:0], v2TestFrame(2, 3, 4)) // lost in flight

	buf = enc.Encode(nil, v2TestFrame(3, 5, 6))
	got, err := dec.Decode(buf)
	if err != ErrV2Desync {
		t.Fatalf("decode after loss: err = %v want ErrV2Desync", err)
	}
	if got.Node != "node042" || got.Seq != 3 || got.Values != nil {
		t.Fatalf("desync frame not header-only: %+v", got)
	}

	// In-order successor of an undecodable frame is still undecodable.
	buf = enc.Encode(buf[:0], v2TestFrame(4, 7, 8))
	if _, err := dec.Decode(buf); err != ErrV2Desync {
		t.Fatalf("in-order frame after break: err = %v want ErrV2Desync", err)
	}

	// The healing snapshot carries the chain-reset flag.
	snap := v2TestFrame(5, 9, 10)
	snap.Kind = FrameSnapshot
	buf = enc.Encode(buf[:0], snap)
	got, err = dec.Decode(buf)
	if err != nil {
		t.Fatalf("decode snapshot: %v", err)
	}
	requireV2Equal(t, got, snap)

	// And the chain continues normally afterwards.
	buf = enc.Encode(buf[:0], v2TestFrame(6, 11, 12))
	if _, err := dec.Decode(buf); err != nil {
		t.Fatalf("decode post-snapshot: %v", err)
	}
}

// TestV2RebaseAfterSendFailure: when a send errors the transport calls
// Rebase, so the next frame re-anchors the chain and decodes even though
// the previous frame never arrived.
func TestV2RebaseAfterSendFailure(t *testing.T) {
	enc := NewEncoderV2()
	dec := NewDecoderV2()

	buf := enc.Encode(nil, v2TestFrame(1, 1, 2))
	if _, err := dec.Decode(buf); err != nil {
		t.Fatalf("decode 1: %v", err)
	}
	_ = enc.Encode(buf[:0], v2TestFrame(2, 3, 4)) // send failed after encode
	enc.Rebase()

	// The agent retries seq 2 (hand-off failed, seq not advanced).
	buf = enc.Encode(nil, v2TestFrame(2, 3, 4))
	got, err := dec.Decode(buf)
	if err != nil {
		t.Fatalf("decode rebased retry: %v", err)
	}
	if got.Seq != 2 || len(got.Values) != 3 {
		t.Fatalf("rebased retry wrong: %+v", got)
	}
}

// TestV2FreshDecoderTriggersWresetRecovery: a restarted receiver holds
// no dictionary; the first frame referencing it yields ErrV2NeedReset,
// and the sender's ResetTable rebase frame is adopted wholesale.
func TestV2FreshDecoderTriggersWresetRecovery(t *testing.T) {
	enc := NewEncoderV2()
	warm := NewDecoderV2()
	buf := enc.Encode(nil, v2TestFrame(1, 1, 2))
	if _, err := warm.Decode(buf); err != nil {
		t.Fatalf("warm decode: %v", err)
	}
	n, _ := warm.PendingAck()
	enc.Ack(n)

	// Receiver restarts: fresh decoder, sender unaware.
	fresh := NewDecoderV2()
	buf = enc.Encode(buf[:0], v2TestFrame(2, 3, 4))
	if _, err := fresh.Decode(buf); err != ErrV2NeedReset {
		t.Fatalf("fresh decoder: err = %v want ErrV2NeedReset", err)
	}

	// "!wreset" answer: the sender rebases from entry 0.
	enc.ResetTable()
	buf = enc.Encode(buf[:0], v2TestFrame(3, 5, 6))
	got, err := fresh.Decode(buf)
	if err != nil {
		t.Fatalf("decode rebase frame: %v", err)
	}
	if got.Node != "node042" || len(got.Values) != 3 {
		t.Fatalf("rebase adoption wrong: %+v", got)
	}
	if fresh.TableLen() != enc.TableLen() {
		t.Fatalf("adopted table %d entries, sender has %d", fresh.TableLen(), enc.TableLen())
	}
}

// TestV2ConflictingTableMismatch: a tail overlapping known entries with
// different names means the two sides hold different tables — the
// decoder must refuse (NeedReset), not silently remap metric names.
func TestV2ConflictingTableMismatch(t *testing.T) {
	encA := NewEncoderV2()
	dec := NewDecoderV2()
	fa := Frame{Node: "node042", Seq: 1, Values: []consolidate.Value{
		consolidate.NumValue("cpu.load", consolidate.Dynamic, 1)}}
	buf := encA.Encode(nil, fa)
	if _, err := dec.Decode(buf); err != nil {
		t.Fatalf("decode A: %v", err)
	}

	// A different encoder whose entry 1 disagrees, sending a tail that
	// claims the decoder's entry 1 (as after an ack raced a restart).
	encB := NewEncoderV2()
	fb := Frame{Node: "node042", Seq: 1, Values: []consolidate.Value{
		consolidate.NumValue("mem.free", consolidate.Dynamic, 2)}}
	_ = encB.Encode(nil, fb)
	encB.Ack(1) // pretend entry 0 ("node042") was acked
	fb.Seq = 2
	buf = encB.Encode(buf[:0], fb)
	if _, err := dec.Decode(buf); err != ErrV2NeedReset {
		t.Fatalf("conflicting tail: err = %v want ErrV2NeedReset", err)
	}
}

// TestV2MalformedInputs: truncations at every byte, flipped unknown
// flags, and garbage must error without panicking, and a zero seq is
// rejected.
func TestV2MalformedInputs(t *testing.T) {
	enc := NewEncoderV2()
	f := v2TestFrame(1, 1, 2)
	f.TraceID, f.TraceNs = 7, 42
	full := enc.Encode(nil, f)

	for cut := 0; cut < len(full); cut++ {
		if _, err := NewDecoderV2().Decode(full[:cut]); err == nil {
			t.Fatalf("truncation at %d decoded successfully", cut)
		}
	}

	bad := append([]byte(nil), full...)
	bad[1] |= 1 << 6 // unknown flag bit
	if _, err := NewDecoderV2().Decode(bad); err != ErrV2Malformed {
		t.Fatalf("unknown flag: err = %v want ErrV2Malformed", err)
	}

	if _, err := NewDecoderV2().Decode([]byte{V2Magic, 0, 0}); err != ErrV2Malformed {
		t.Fatal("zero seq accepted")
	}
	if _, err := NewDecoderV2().Decode([]byte("node042 1 D\n")); err != ErrV2Version {
		t.Fatal("v1 payload not rejected with ErrV2Version")
	}

	// Corrupt the bit column: the XOR stream must fail cleanly.
	bad = append(bad[:0], full...)
	bad[len(bad)-1] ^= 0xff
	bad = bad[:len(bad)-1]
	if _, err := NewDecoderV2().Decode(bad); err == nil {
		t.Fatal("corrupt bit column decoded successfully")
	}
}

// TestV2ControlFrames: the negotiation control payloads roundtrip, and
// an old agent's ParseResync ignores all of them (the forward-compat
// rule the rollout rests on).
func TestV2ControlFrames(t *testing.T) {
	ans := MarshalWireAnswer(nil, WireV2)
	if ver, ok := ParseWireAnswer(ans); !ok || ver != WireV2 {
		t.Fatalf("ParseWireAnswer(%q) = %d,%v", ans, ver, ok)
	}
	ack := MarshalDictAck(nil, 17)
	if n, ok := ParseDictAck(ack); !ok || n != 17 {
		t.Fatalf("ParseDictAck(%q) = %d,%v", ack, n, ok)
	}
	rst := MarshalWireReset(nil)
	if !IsWireReset(rst) {
		t.Fatalf("IsWireReset(%q) = false", rst)
	}
	for _, p := range [][]byte{ans, ack, rst} {
		if _, ok := ParseResync(p); ok {
			t.Fatalf("old agent would mistake %q for a resync", p)
		}
	}
	for _, bad := range []string{"!wire ", "!wire 0", "!wire x", "!wire 999", "!wack ", "!wack -1", "!wack 9999999999999", "!wresetx"} {
		if _, ok := ParseWireAnswer([]byte(bad)); ok && bad[1] == 'w' && bad[2] == 'i' {
			t.Fatalf("ParseWireAnswer accepted %q", bad)
		}
		if _, ok := ParseDictAck([]byte(bad)); ok && len(bad) > 5 && bad[2] == 'a' {
			t.Fatalf("ParseDictAck accepted %q", bad)
		}
		if IsWireReset([]byte(bad)) {
			t.Fatalf("IsWireReset accepted %q", bad)
		}
	}
}

// TestV2BeatsV1DeflateOnSteadyState: the headline property — once the
// dictionary is acked, a steady-state v2 delta frame is smaller than
// the same frame's deflated v1 text form.
func TestV2BeatsV1DeflateOnSteadyState(t *testing.T) {
	enc := NewEncoderV2()
	dec := NewDecoderV2()
	var v2buf, v1buf []byte
	for seq := uint64(1); seq <= 10; seq++ {
		f := v2TestFrame(seq, 0.7+0.01*float64(seq), 2048-float64(3*seq))
		v2buf = enc.Encode(v2buf[:0], f)
		if _, err := dec.Decode(v2buf); err != nil {
			t.Fatalf("seq %d: %v", seq, err)
		}
		if n, ok := dec.PendingAck(); ok {
			enc.Ack(n)
		}
		if seq <= 2 {
			continue // dictionary still in flight
		}
		v1buf = MarshalFrame(v1buf[:0], f)
		v1wire := CompressedSize(v1buf)
		if v1wire < 0 || v1wire > len(v1buf) {
			v1wire = len(v1buf)
		}
		if len(v2buf) >= v1wire {
			t.Fatalf("seq %d: v2 %dB not smaller than deflated v1 %dB", seq, len(v2buf), v1wire)
		}
	}
}
