package transmit

import (
	"bytes"
	"encoding/binary"
	"testing"

	"clusterworx/internal/consolidate"
)

// fuzzSeedFrames are well-formed frames covering every header form and
// payload shape, so the fuzzer starts from deep in the grammar.
func fuzzSeedFrames() []Frame {
	values := []consolidate.Value{
		{Name: "cpu.load.1min", Kind: consolidate.Dynamic, Num: 1.25},
		{Name: "mem.free.kb", Kind: consolidate.Dynamic, Num: 191316},
		{Name: "os.release", Kind: consolidate.Static, IsText: true, Text: "2.4.18-27.7.x smp"},
	}
	return []Frame{
		{Node: "node042", Seq: 0, Kind: FrameDelta, Values: values},
		{Node: "node042", Seq: 7, Kind: FrameDelta, Values: values},
		{Node: "node042", Seq: 8, Kind: FrameSnapshot, Values: values},
		{Node: "n1", Seq: 1, Kind: FrameDelta, Values: nil},
		// Trace-context-bearing headers (the "t=" option), delta and
		// snapshot, plus mixed trace magnitudes so the fuzzer sees both
		// short and max-length varints.
		{Node: "node042", Seq: 9, Kind: FrameDelta, TraceID: 0xabcdef0123456789, TraceNs: 1234567890, Values: values},
		{Node: "node042", Seq: 10, Kind: FrameSnapshot, TraceID: 1, TraceNs: -1, Values: values},
		{Node: "n1", Seq: 2, Kind: FrameDelta, TraceID: ^uint64(0), Values: nil},
		// Version-offer-bearing headers (the "w=" option), alone and next
		// to a trace context.
		{Node: "node042", Seq: 11, Kind: FrameDelta, WireOffer: WireV2, Values: values},
		{Node: "node042", Seq: 12, Kind: FrameSnapshot, WireOffer: WireV2, TraceID: 5, TraceNs: 9, Values: values},
	}
}

// fuzzMalformedPayloads is the malformed-frame corpus from
// TestParseFrameRejectsMalformed, reused as fuzz seeds.
func fuzzMalformedPayloads() []string {
	return []string{
		"",
		"node042 7\n",
		"node042 7 D extra\n",
		"node042 7 D t=zz\n",
		"node042 7 D t=00\n",
		"node042 7 S x=1 t=0701\n",
		"node042 0 D\n",
		"node042 seven D\n",
		"node042 -3 D\n",
		"node042 7 X\n",
		"!resync node042",
		"no\x01de\n",
		"node042 7 D\ncpu.load\n",
		"node042\nos.release S t \"Linu\n",
		// Option-grammar edge cases: duplicates (voided), malformed
		// repeats (skipped), offers out of range or mixed with traces.
		"node042 7 D t=0701 t=0701\n",
		"node042 7 D t=0701 t=zz\n",
		"node042 7 D w=2 w=2\n",
		"node042 7 D w=2 w=x\n",
		"node042 7 D w=0\n",
		"node042 7 D w=256\n",
		"node042 7 D w=2 t=0701\n",
		"node042 7 D t=0701 w=2 w=3\n",
	}
}

// FuzzParseFrame asserts the parser's contract on arbitrary payloads: it
// never panics, never accepts a garbage node name, and every accepted
// frame survives a marshal→parse→marshal fixpoint (the canonical form is
// stable, so the server and agent agree on what was said).
func FuzzParseFrame(f *testing.F) {
	for _, fr := range fuzzSeedFrames() {
		f.Add(MarshalFrame(nil, fr))
	}
	for _, s := range fuzzMalformedPayloads() {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, payload []byte) {
		f0, err := ParseFrame(payload)
		if err != nil {
			return
		}
		if !validNodeName(f0.Node) {
			t.Fatalf("accepted invalid node name %q", f0.Node)
		}
		if f0.Kind != FrameDelta && f0.Kind != FrameSnapshot {
			t.Fatalf("accepted unknown frame kind %v", f0.Kind)
		}
		if f0.Seq == 0 && f0.Kind != FrameDelta {
			t.Fatalf("unsequenced frame with kind %v", f0.Kind)
		}
		if f0.Seq == 0 && f0.TraceID != 0 {
			t.Fatalf("unsequenced frame carrying a trace: %+v", f0)
		}
		if f0.Seq == 0 && f0.WireOffer != 0 {
			t.Fatalf("unsequenced frame carrying a version offer: %+v", f0)
		}
		if f0.WireOffer != 0 && f0.WireOffer < WireV2 {
			t.Fatalf("accepted sub-v2 version offer: %+v", f0)
		}
		wire1 := MarshalFrame(nil, f0)
		f1, err := ParseFrame(wire1)
		if err != nil {
			t.Fatalf("remarshaled frame does not parse: %v\npayload %q\nwire %q", err, payload, wire1)
		}
		if f1.Node != f0.Node || f1.Seq != f0.Seq || f1.Kind != f0.Kind || len(f1.Values) != len(f0.Values) {
			t.Fatalf("roundtrip changed the frame: %+v -> %+v", f0, f1)
		}
		if f1.TraceID != f0.TraceID || f1.TraceNs != f0.TraceNs {
			t.Fatalf("roundtrip changed the trace context: %+v -> %+v", f0, f1)
		}
		if f1.WireOffer != f0.WireOffer {
			t.Fatalf("roundtrip changed the version offer: %+v -> %+v", f0, f1)
		}
		// Byte-level fixpoint instead of field comparison for the values:
		// it holds for every accepted payload, including NaN numerics
		// (which compare unequal to themselves) and non-canonical float
		// spellings in the input.
		if wire2 := MarshalFrame(nil, f1); !bytes.Equal(wire1, wire2) {
			t.Fatalf("canonical form is not a fixpoint:\nfirst  %q\nsecond %q", wire1, wire2)
		}
	})
}

// FuzzReadWireValues drives the byte-level framing layer (header parse,
// length bound, optional deflate) and then the payload parser over
// arbitrary wire bytes: no panics, no oversized payloads, and whatever
// decodes cleanly must satisfy the ParseFrame contract.
func FuzzReadWireValues(f *testing.F) {
	// Well-formed wire in both modes.
	for _, compress := range []bool{false, true} {
		var wire bytes.Buffer
		w := NewWriter(&wire, compress)
		for _, fr := range fuzzSeedFrames() {
			if err := w.WriteFrame(MarshalFrame(nil, fr)); err != nil {
				f.Fatal(err)
			}
		}
		f.Add(wire.Bytes())
	}
	// Corrupt wire: bad magic, truncated header, oversized length field,
	// length beyond the body, flipped byte inside a compressed body.
	f.Add([]byte{0x00, 0x00, 0x00, 0x00, 0x00, 0x04, 'a', 'b', 'c', 'd'})
	f.Add([]byte{frameMagic, 0x00, 0x00})
	huge := []byte{frameMagic, 0x00, 0, 0, 0, 0}
	binary.BigEndian.PutUint32(huge[2:], MaxFrameSize+1)
	f.Add(huge)
	f.Add([]byte{frameMagic, 0x00, 0x00, 0x00, 0x00, 0x10, 'x'})
	var cw bytes.Buffer
	w := NewWriter(&cw, true)
	if err := w.WriteFrame(bytes.Repeat([]byte("cpu.load.1min D n 1.25\n"), 64)); err != nil {
		f.Fatal(err)
	}
	corrupt := cw.Bytes()
	if len(corrupt) > headerSize {
		corrupt[headerSize] ^= 0x40
	}
	f.Add(corrupt)

	f.Fuzz(func(t *testing.T, wire []byte) {
		r := NewReader(bytes.NewReader(wire))
		for {
			payload, err := r.ReadFrame()
			if err != nil {
				return
			}
			if len(payload) > MaxFrameSize {
				t.Fatalf("ReadFrame returned %d bytes, above MaxFrameSize", len(payload))
			}
			fr, err := ParseFrame(payload)
			if err != nil {
				continue
			}
			if !validNodeName(fr.Node) {
				t.Fatalf("framing layer delivered invalid node name %q", fr.Node)
			}
		}
	})
}

// FuzzDecodeFrameV2 drives the binary v2 decoder over arbitrary bytes,
// cold and mid-session: it must never panic, never accept a garbage
// node name or a zero sequence number, and must always recover when the
// next sender rebases — a malformed datagram can cost a frame, never
// the session.
func FuzzDecodeFrameV2(f *testing.F) {
	enc := NewEncoderV2()
	seeds := [][]byte{}
	for i, fr := range fuzzSeedFrames() {
		if fr.Seq == 0 {
			continue
		}
		fr.SentNs = int64(i) * 1_000_000
		seeds = append(seeds, enc.Encode(nil, fr))
	}
	// A dictionary-tail-free frame (all entries acked).
	enc.Ack(enc.TableLen())
	seeds = append(seeds, enc.Encode(nil, Frame{Node: "node042", Seq: 99,
		Values: []consolidate.Value{{Name: "cpu.load.1min", Kind: consolidate.Dynamic, Num: 2.5}}}))
	for _, s := range seeds {
		f.Add(s)
		// Truncated dictionaries and bodies: every prefix quartile.
		for _, cut := range []int{1, 2, len(s) / 4, len(s) / 2, len(s) - 1} {
			if cut >= 0 && cut < len(s) {
				f.Add(s[:cut])
			}
		}
		// One flipped byte in each region.
		for _, pos := range []int{1, len(s) / 3, 2 * len(s) / 3} {
			if pos < len(s) {
				c := append([]byte(nil), s...)
				c[pos] ^= 0x55
				f.Add(c)
			}
		}
	}
	// Non-v2 shapes: v1 text, control payloads, bare magic.
	f.Add([]byte("node042 7 D w=2\n"))
	f.Add([]byte("!wire 2"))
	f.Add([]byte{V2Magic})
	f.Add([]byte{V2Magic, 0xff, 0x01})

	f.Fuzz(func(t *testing.T, payload []byte) {
		for _, warm := range []bool{false, true} {
			d := NewDecoderV2()
			if warm {
				// Mid-session decoder: a live dictionary and predictor chain.
				we := NewEncoderV2()
				var b []byte
				for seq := uint64(1); seq <= 2; seq++ {
					b = we.Encode(b[:0], Frame{Node: "node042", Seq: seq,
						Values: []consolidate.Value{{Name: "cpu.load.1min", Kind: consolidate.Dynamic, Num: float64(seq)}}})
					if _, err := d.Decode(b); err != nil {
						t.Fatalf("warmup decode: %v", err)
					}
				}
			}
			fr, err := d.Decode(payload)
			if err == nil || err == ErrV2Desync {
				if !validNodeName(fr.Node) {
					t.Fatalf("accepted invalid node name %q (warm=%v)", fr.Node, warm)
				}
				if fr.Seq == 0 {
					t.Fatalf("accepted zero sequence number (warm=%v)", warm)
				}
			}
			// Healing invariant: whatever the payload did to the decoder, a
			// fresh sender's rebase frame (chain reset + tailStart 0) must
			// decode — the "!wreset" recovery path can never wedge.
			he := NewEncoderV2()
			heal := he.Encode(nil, Frame{Node: "n1", Seq: 1,
				Values: []consolidate.Value{{Name: "m", Kind: consolidate.Dynamic, Num: 1}}})
			if _, err := d.Decode(heal); err != nil {
				t.Fatalf("rebase frame did not heal the decoder (warm=%v): %v", warm, err)
			}
		}
	})
}

// FuzzDecodeBatchV2 drives the batched uplink decoder over arbitrary
// bytes, cold and mid-session: it must never panic, never emit a
// garbage node name, never emit anything on a failed decode, and must
// always recover when the next sender rebases — a corrupt batch can
// cost one flush, never the uplink session.
func FuzzDecodeBatchV2(f *testing.F) {
	enc := NewBatchEncoderV2()
	mk := func(round uint64) []Frame {
		return []Frame{
			{Node: "node000", Kind: FrameDelta, Values: []consolidate.Value{
				{Name: "cpu.load.1min", Kind: consolidate.Dynamic, Num: float64(round) * 0.5},
				{Name: "os.release", Kind: consolidate.Static, IsText: true, Text: "2.4.18-27.7.x smp"},
			}},
			{Node: "rack/leaf00", Kind: FrameSnapshot, TraceID: round, TraceNs: -int64(round), Values: []consolidate.Value{
				{Name: "cpu.load.1min.sum", Kind: consolidate.Dynamic, Num: float64(round) * 8},
			}},
		}
	}
	seeds := [][]byte{}
	for seq := uint64(1); seq <= 3; seq++ {
		seeds = append(seeds, enc.Encode(nil, seq, int64(seq)*1_000_000, mk(seq)))
	}
	enc.Ack(enc.TableLen())
	seeds = append(seeds, enc.Encode(nil, 4, 4_000_000, mk(4))) // tail-free
	seeds = append(seeds, enc.Encode(nil, 5, 5_000_000, nil))   // empty batch
	for _, s := range seeds {
		f.Add(s)
		for _, cut := range []int{1, 2, len(s) / 4, len(s) / 2, len(s) - 1} {
			if cut >= 0 && cut < len(s) {
				f.Add(s[:cut])
			}
		}
		for _, pos := range []int{1, len(s) / 3, 2 * len(s) / 3} {
			if pos < len(s) {
				c := append([]byte(nil), s...)
				c[pos] ^= 0x55
				f.Add(c)
			}
		}
	}
	f.Add([]byte("node042 7 D w=2\n"))
	f.Add([]byte("!uresync"))
	f.Add([]byte{V2Magic, v2FlagBatch})
	f.Add([]byte{V2Magic, 0xff, 0x01})

	f.Fuzz(func(t *testing.T, payload []byte) {
		for _, warm := range []bool{false, true} {
			d := NewBatchDecoderV2()
			if warm {
				we := NewBatchEncoderV2()
				var b []byte
				for seq := uint64(1); seq <= 2; seq++ {
					b = we.Encode(b[:0], seq, int64(seq), mk(seq))
					if _, err := d.Decode(b, func(Frame) {}); err != nil {
						t.Fatalf("warmup decode: %v", err)
					}
				}
			}
			emitted := 0
			n, err := d.Decode(payload, func(fr Frame) {
				emitted++
				if !validNodeName(fr.Node) {
					t.Fatalf("emitted invalid node name %q (warm=%v)", fr.Node, warm)
				}
				if fr.Seq != 0 {
					t.Fatalf("sub-frame carries a per-node seq (warm=%v)", warm)
				}
				for i := range fr.Values {
					_ = fr.Values[i].Render()
				}
			})
			if err != nil && emitted != 0 {
				t.Fatalf("failed decode (%v) emitted %d sub-frames (warm=%v)", err, emitted, warm)
			}
			if err == nil && n != emitted {
				t.Fatalf("reported %d nodes, emitted %d (warm=%v)", n, emitted, warm)
			}
			// Healing invariant: a fresh sender's rebase frame always decodes.
			he := NewBatchEncoderV2()
			heal := he.Encode(nil, 1, 1, mk(1))
			if _, err := d.Decode(heal, func(Frame) {}); err != nil {
				t.Fatalf("rebase frame did not heal the decoder (warm=%v): %v", warm, err)
			}
		}
	})
}
