// Package transmit implements the transmission stage of the monitoring
// pipeline (paper §5.3.3): monitored data stays in human-readable text
// form for platform independence, and is compressed on the wire because
// "data compression techniques ... are known to be very effective on text
// input".
//
// The wire unit is a frame: a 6-byte header (magic, flags, big-endian
// length) followed by the payload, deflate-compressed when that helps.
package transmit

import (
	"bufio"
	"bytes"
	"compress/flate"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"
	"sync"

	"clusterworx/internal/consolidate"
)

// Frame layout constants.
const (
	frameMagic     = 0xC3 // "ClusterworX v3"
	flagCompressed = 1 << 0

	headerSize = 6

	// MaxFrameSize bounds a frame payload; a monitoring update for even a
	// very large node is a few tens of kB of text.
	MaxFrameSize = 16 << 20
)

// Errors returned by frame decoding.
var (
	ErrBadMagic  = errors.New("transmit: bad frame magic")
	ErrFrameSize = errors.New("transmit: frame exceeds size limit")
)

// Writer frames and optionally compresses payloads onto an io.Writer.
// Not safe for concurrent use.
type Writer struct {
	w        io.Writer
	compress bool
	comp     *flate.Writer
	cbuf     bytes.Buffer
	hdr      [headerSize]byte

	rawBytes  int64
	wireBytes int64
}

// NewWriter returns a framing writer. With compress true, payloads that
// shrink under deflate are sent compressed; incompressible payloads fall
// back to raw so compression can never inflate the stream.
func NewWriter(w io.Writer, compress bool) *Writer {
	tw := &Writer{w: w, compress: compress}
	if compress {
		// BestSpeed: monitoring updates are latency-sensitive and highly
		// redundant text; even the fastest level compresses them well.
		tw.comp, _ = flate.NewWriter(&tw.cbuf, flate.BestSpeed)
	}
	return tw
}

// WriteFrame sends one payload.
func (t *Writer) WriteFrame(p []byte) error {
	if len(p) > MaxFrameSize {
		return ErrFrameSize
	}
	t.rawBytes += int64(len(p))
	body := p
	flags := byte(0)
	if t.compress {
		t.cbuf.Reset()
		t.comp.Reset(&t.cbuf)
		if _, err := t.comp.Write(p); err != nil {
			return fmt.Errorf("transmit: compress: %w", err)
		}
		if err := t.comp.Close(); err != nil {
			return fmt.Errorf("transmit: compress: %w", err)
		}
		if t.cbuf.Len() < len(p) {
			body = t.cbuf.Bytes()
			flags |= flagCompressed
		}
	}
	t.hdr[0] = frameMagic
	t.hdr[1] = flags
	binary.BigEndian.PutUint32(t.hdr[2:], uint32(len(body)))
	if _, err := t.w.Write(t.hdr[:]); err != nil {
		return err
	}
	if _, err := t.w.Write(body); err != nil {
		return err
	}
	t.wireBytes += int64(headerSize + len(body))
	return nil
}

// RawBytes returns the total payload bytes accepted so far.
func (t *Writer) RawBytes() int64 { return t.rawBytes }

// WireBytes returns the total bytes emitted, headers included.
func (t *Writer) WireBytes() int64 { return t.wireBytes }

// Reader decodes frames from an io.Reader. Not safe for concurrent use.
type Reader struct {
	r   *bufio.Reader
	buf []byte
}

// NewReader returns a framing reader.
func NewReader(r io.Reader) *Reader {
	return &Reader{r: bufio.NewReader(r)}
}

// ReadFrame returns the next payload, decompressed if needed. The returned
// slice is valid until the next call.
func (t *Reader) ReadFrame() ([]byte, error) {
	var hdr [headerSize]byte
	if _, err := io.ReadFull(t.r, hdr[:]); err != nil {
		return nil, err
	}
	if hdr[0] != frameMagic {
		return nil, ErrBadMagic
	}
	n := binary.BigEndian.Uint32(hdr[2:])
	if n > MaxFrameSize {
		return nil, ErrFrameSize
	}
	if cap(t.buf) < int(n) {
		t.buf = make([]byte, n)
	}
	body := t.buf[:n]
	if _, err := io.ReadFull(t.r, body); err != nil {
		return nil, err
	}
	if hdr[1]&flagCompressed == 0 {
		return body, nil
	}
	fr := flate.NewReader(bytes.NewReader(body))
	defer fr.Close()
	out, err := io.ReadAll(fr)
	if err != nil {
		return nil, fmt.Errorf("transmit: decompress: %w", err)
	}
	return out, nil
}

// --- value marshalling -------------------------------------------------------
//
// One line per value: "<name> <S|D> <n|t> <payload>\n". Text payloads are
// quoted with strconv so embedded whitespace survives.

// MarshalValues renders a value batch into the wire text form, appending
// to dst.
func MarshalValues(dst []byte, values []consolidate.Value) []byte {
	for _, v := range values {
		dst = append(dst, v.Name...)
		dst = append(dst, ' ')
		if v.Kind == consolidate.Static {
			dst = append(dst, 'S')
		} else {
			dst = append(dst, 'D')
		}
		dst = append(dst, ' ')
		if v.IsText {
			dst = append(dst, 't', ' ')
			dst = strconv.AppendQuote(dst, v.Text)
		} else {
			dst = append(dst, 'n', ' ')
			dst = strconv.AppendFloat(dst, v.Num, 'g', -1, 64)
		}
		dst = append(dst, '\n')
	}
	return dst
}

// UnmarshalValues parses the wire text form.
func UnmarshalValues(data []byte) ([]consolidate.Value, error) {
	var out []consolidate.Value
	for lineNo := 1; len(data) > 0; lineNo++ {
		line := data
		if nl := bytes.IndexByte(data, '\n'); nl >= 0 {
			line, data = data[:nl], data[nl+1:]
		} else {
			data = nil
		}
		if len(line) == 0 {
			continue
		}
		v, err := unmarshalLine(string(line))
		if err != nil {
			return nil, fmt.Errorf("transmit: line %d: %w", lineNo, err)
		}
		out = append(out, v)
	}
	return out, nil
}

func unmarshalLine(line string) (consolidate.Value, error) {
	var v consolidate.Value
	parts := strings.SplitN(line, " ", 4)
	if len(parts) != 4 {
		return v, fmt.Errorf("malformed value line %q", line)
	}
	v.Name = parts[0]
	switch parts[1] {
	case "S":
		v.Kind = consolidate.Static
	case "D":
		v.Kind = consolidate.Dynamic
	default:
		return v, fmt.Errorf("bad kind %q", parts[1])
	}
	switch parts[2] {
	case "t":
		s, err := strconv.Unquote(parts[3])
		if err != nil {
			return v, fmt.Errorf("bad text payload %q: %v", parts[3], err)
		}
		v.IsText = true
		v.Text = s
	case "n":
		n, err := strconv.ParseFloat(parts[3], 64)
		if err != nil {
			return v, fmt.Errorf("bad numeric payload %q: %v", parts[3], err)
		}
		v.Num = n
	default:
		return v, fmt.Errorf("bad payload tag %q", parts[2])
	}
	return v, nil
}

// CompressedSize reports how many bytes p deflates to, for the E6
// compression-effectiveness experiment.
func CompressedSize(p []byte) int {
	var buf bytes.Buffer
	w, _ := flate.NewWriter(&buf, flate.BestSpeed)
	w.Write(p)
	w.Close()
	return buf.Len()
}

// Pipe returns a connected in-process frame transport, for tests and the
// in-process simulation: frames written to one end arrive at the other.
func Pipe(compress bool) (*Writer, *Reader, func() error) {
	pr, pw := io.Pipe()
	w := NewWriter(&syncWriter{w: pw}, compress)
	r := NewReader(pr)
	return w, r, pw.Close
}

// syncWriter serializes writes; io.Pipe is already safe but the Writer's
// two-write frame emission must not interleave with another writer.
type syncWriter struct {
	mu sync.Mutex
	w  io.Writer
}

func (s *syncWriter) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.w.Write(p)
}
