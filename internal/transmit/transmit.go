// Package transmit implements the transmission stage of the monitoring
// pipeline (paper §5.3.3): monitored data stays in human-readable text
// form for platform independence, and is compressed on the wire because
// "data compression techniques ... are known to be very effective on text
// input".
//
// The wire unit is a frame: a 6-byte header (magic, flags, big-endian
// length) followed by the payload, deflate-compressed when that helps.
package transmit

import (
	"bufio"
	"bytes"
	"compress/flate"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"
	"sync"

	"clusterworx/internal/consolidate"
	"clusterworx/internal/telemetry"
)

// Self-monitoring series for the transmission stage.
var (
	mFramesWritten = telemetry.Default().Counter("cwx_transmit_frames_written_total")
	mFramesComp    = telemetry.Default().Counter("cwx_transmit_frames_compressed_total")
	mFramesRead    = telemetry.Default().Counter("cwx_transmit_frames_read_total")
	mRawBytes      = telemetry.Default().Counter("cwx_transmit_raw_bytes_total")
	mWireBytes     = telemetry.Default().Counter("cwx_transmit_wire_bytes_total")
	mFrameBytes    = telemetry.Default().Histogram("cwx_transmit_frame_bytes")
)

// Frame layout constants.
const (
	frameMagic     = 0xC3 // "ClusterworX v3"
	flagCompressed = 1 << 0

	headerSize = 6

	// MaxFrameSize bounds a frame payload; a monitoring update for even a
	// very large node is a few tens of kB of text.
	MaxFrameSize = 16 << 20
)

// Errors returned by frame decoding.
var (
	ErrBadMagic  = errors.New("transmit: bad frame magic")
	ErrFrameSize = errors.New("transmit: frame exceeds size limit")
)

// deflater is a pooled compression scratch: a flate writer bound to its
// output buffer. Pooled so a management server fronting thousands of agent
// connections shares a few hot compressors instead of holding one (and its
// window state) per connection, and so the per-frame hot path allocates
// nothing.
type deflater struct {
	buf  bytes.Buffer
	comp *flate.Writer
}

var deflaterPool = sync.Pool{
	New: func() any {
		d := &deflater{}
		// BestSpeed: monitoring updates are latency-sensitive and highly
		// redundant text; even the fastest level compresses them well.
		d.comp, _ = flate.NewWriter(&d.buf, flate.BestSpeed)
		return d
	},
}

// compressInto deflates p through d's compressor into w (normally d.buf,
// rebound for tests). On error the compressor's internal state is
// undefined mid-stream — see releaseDeflater.
func (d *deflater) compressInto(w io.Writer, p []byte) error {
	d.comp.Reset(w)
	if _, err := d.comp.Write(p); err != nil {
		return err
	}
	return d.comp.Close()
}

// releaseDeflater returns d to the pool only if its last frame
// compressed cleanly. A flate.Writer that errored mid-frame holds
// poisoned stream state; re-pooling it would hand the next frame a
// compressor that keeps failing (or worse, emits garbage). Dropping it
// costs one re-allocation on a path that is already failing.
func releaseDeflater(d *deflater, err error) {
	if err != nil {
		return
	}
	deflaterPool.Put(d)
}

// inflaterPool pools flate decompressors for the read side; flate readers
// carry a sizable window that is expensive to allocate per frame.
var inflaterPool = sync.Pool{
	New: func() any { return flate.NewReader(bytes.NewReader(nil)) },
}

// Writer frames and optionally compresses payloads onto an io.Writer.
// Not safe for concurrent use.
type Writer struct {
	w        io.Writer
	compress bool
	hdr      [headerSize]byte

	rawBytes  int64
	wireBytes int64
}

// NewWriter returns a framing writer. With compress true, a payload is
// sent compressed only when its deflate output is strictly smaller than
// the input; whenever deflate output ≥ input (incompressible or tiny
// payloads) the raw fallback path is taken, so compression can never
// inflate the stream beyond the fixed frame header.
func NewWriter(w io.Writer, compress bool) *Writer {
	return &Writer{w: w, compress: compress}
}

// WriteFrame sends one payload.
//
//cwx:hotpath
func (t *Writer) WriteFrame(p []byte) error {
	if len(p) > MaxFrameSize {
		return ErrFrameSize
	}
	body := p
	flags := byte(0)
	if t.compress {
		d := deflaterPool.Get().(*deflater)
		d.buf.Reset()
		err := d.compressInto(&d.buf, p)
		// An errored compressor is dropped, never re-pooled: its flate
		// stream state is poisoned mid-frame (regression-tested in
		// TestDeflaterPoolDropsPoisoned).
		defer releaseDeflater(d, err)
		if err != nil {
			return fmt.Errorf("transmit: compress: %w", err) //cwx:allow hotpath,lockscope -- cold error path; deferred releaseDeflater drops the poisoned compressor
		}
		// Raw fallback: ship the original bytes whenever deflate did not
		// strictly shrink them (see NewWriter).
		if d.buf.Len() < len(p) {
			body = d.buf.Bytes()
			flags |= flagCompressed
		}
	}
	return t.emit(p, body, flags) //cwx:allow lockscope -- deferred releaseDeflater re-pools the healthy compressor
}

// WriteFrameRaw sends one payload skipping the deflate attempt. The v2
// binary frames are already dictionary/XOR-coded — deflate rarely
// shrinks them further and always costs the compression pass, so their
// send path declares the payload incompressible up front.
//
//cwx:hotpath
func (t *Writer) WriteFrameRaw(p []byte) error {
	if len(p) > MaxFrameSize {
		return ErrFrameSize
	}
	return t.emit(p, p, 0)
}

// emit writes the frame header and body and books the byte accounting;
// body either aliases p or holds its deflated form.
//
//cwx:hotpath
func (t *Writer) emit(p, body []byte, flags byte) error {
	t.rawBytes += int64(len(p))
	t.hdr[0] = frameMagic
	t.hdr[1] = flags
	binary.BigEndian.PutUint32(t.hdr[2:], uint32(len(body)))
	if _, err := t.w.Write(t.hdr[:]); err != nil {
		return err
	}
	if _, err := t.w.Write(body); err != nil {
		return err
	}
	t.wireBytes += int64(headerSize + len(body))
	mFramesWritten.Inc()
	if flags&flagCompressed != 0 {
		mFramesComp.Inc()
	}
	mRawBytes.Add(int64(len(p)))
	mWireBytes.Add(int64(headerSize + len(body)))
	mFrameBytes.Observe(int64(len(body)))
	return nil
}

// RawBytes returns the total payload bytes accepted so far.
func (t *Writer) RawBytes() int64 { return t.rawBytes }

// WireBytes returns the total bytes emitted, headers included.
func (t *Writer) WireBytes() int64 { return t.wireBytes }

// Reader decodes frames from an io.Reader. Not safe for concurrent use.
type Reader struct {
	r    *bufio.Reader
	br   bytes.Reader
	hdr  [headerSize]byte // header scratch: a local would escape through io.ReadFull
	buf  []byte           // wire body scratch
	dbuf []byte           // decompressed payload scratch
}

// NewReader returns a framing reader.
func NewReader(r io.Reader) *Reader {
	return &Reader{r: bufio.NewReader(r)}
}

// ReadFrame returns the next payload, decompressed if needed. The returned
// slice is valid until the next call.
//
//cwx:hotpath
func (t *Reader) ReadFrame() ([]byte, error) {
	if _, err := io.ReadFull(t.r, t.hdr[:]); err != nil {
		return nil, err
	}
	if t.hdr[0] != frameMagic {
		return nil, ErrBadMagic
	}
	n := binary.BigEndian.Uint32(t.hdr[2:])
	if n > MaxFrameSize {
		return nil, ErrFrameSize
	}
	if cap(t.buf) < int(n) {
		t.buf = make([]byte, n) //cwx:allow staticalloc -- amortized receiver-owned buffer growth: escapes by design, then reused for every following frame (0 allocs steady state per the E22 gate)
	}
	body := t.buf[:n]
	if _, err := io.ReadFull(t.r, body); err != nil {
		return nil, err
	}
	if t.hdr[1]&flagCompressed == 0 {
		mFramesRead.Inc()
		return body, nil
	}
	fr := inflaterPool.Get().(io.ReadCloser)
	defer inflaterPool.Put(fr)
	t.br.Reset(body)
	if err := fr.(flate.Resetter).Reset(&t.br, nil); err != nil {
		return nil, fmt.Errorf("transmit: decompress: %w", err) //cwx:allow hotpath -- cold error path
	}
	out, err := readAllInto(t.dbuf[:0], fr)
	if err != nil {
		return nil, fmt.Errorf("transmit: decompress: %w", err) //cwx:allow hotpath -- cold error path
	}
	t.dbuf = out
	mFramesRead.Inc()
	return out, nil
}

// readAllInto is io.ReadAll growing dst in place, so the Reader's
// decompression scratch is reused across frames.
//
//cwx:hotpath
func readAllInto(dst []byte, r io.Reader) ([]byte, error) {
	for {
		if len(dst) == cap(dst) {
			dst = append(dst, 0)[:len(dst)]
		}
		n, err := r.Read(dst[len(dst):cap(dst)])
		dst = dst[:len(dst)+n]
		if err == io.EOF {
			return dst, nil
		}
		if err != nil {
			return dst, err
		}
	}
}

// --- value marshalling -------------------------------------------------------
//
// One line per value: "<name> <S|D> <n|t> <payload>\n". Text payloads are
// quoted with strconv so embedded whitespace survives.

// MarshalValues renders a value batch into the wire text form, appending
// to dst.
//
//cwx:hotpath
func MarshalValues(dst []byte, values []consolidate.Value) []byte {
	for _, v := range values {
		dst = append(dst, v.Name...)
		dst = append(dst, ' ')
		if v.Kind == consolidate.Static {
			dst = append(dst, 'S')
		} else {
			dst = append(dst, 'D')
		}
		dst = append(dst, ' ')
		if v.IsText {
			dst = append(dst, 't', ' ')
			dst = strconv.AppendQuote(dst, v.Text)
		} else {
			dst = append(dst, 'n', ' ')
			dst = strconv.AppendFloat(dst, v.Num, 'g', -1, 64)
		}
		dst = append(dst, '\n')
	}
	return dst
}

// UnmarshalValues parses the wire text form.
func UnmarshalValues(data []byte) ([]consolidate.Value, error) {
	var out []consolidate.Value
	for lineNo := 1; len(data) > 0; lineNo++ {
		line := data
		if nl := bytes.IndexByte(data, '\n'); nl >= 0 {
			line, data = data[:nl], data[nl+1:]
		} else {
			data = nil
		}
		if len(line) == 0 {
			continue
		}
		v, err := unmarshalLine(string(line))
		if err != nil {
			return nil, fmt.Errorf("transmit: line %d: %w", lineNo, err)
		}
		out = append(out, v)
	}
	return out, nil
}

func unmarshalLine(line string) (consolidate.Value, error) {
	var v consolidate.Value
	parts := strings.SplitN(line, " ", 4)
	if len(parts) != 4 {
		return v, fmt.Errorf("malformed value line %q", line)
	}
	v.Name = parts[0]
	switch parts[1] {
	case "S":
		v.Kind = consolidate.Static
	case "D":
		v.Kind = consolidate.Dynamic
	default:
		return v, fmt.Errorf("bad kind %q", parts[1])
	}
	switch parts[2] {
	case "t":
		s, err := strconv.Unquote(parts[3])
		if err != nil {
			return v, fmt.Errorf("bad text payload %q: %v", parts[3], err)
		}
		v.IsText = true
		v.Text = s
	case "n":
		n, err := strconv.ParseFloat(parts[3], 64)
		if err != nil {
			return v, fmt.Errorf("bad numeric payload %q: %v", parts[3], err)
		}
		v.Num = n
	default:
		return v, fmt.Errorf("bad payload tag %q", parts[2])
	}
	return v, nil
}

// CompressedSize reports how many bytes p deflates to, for the E6
// compression-effectiveness experiment. Returns -1 if compression fails
// (the deflater is then dropped, like any other poisoned compressor).
func CompressedSize(p []byte) int {
	d := deflaterPool.Get().(*deflater)
	d.buf.Reset()
	err := d.compressInto(&d.buf, p)
	defer releaseDeflater(d, err)
	if err != nil {
		return -1 //cwx:allow lockscope -- deferred releaseDeflater drops the poisoned compressor
	}
	return d.buf.Len() //cwx:allow lockscope -- deferred releaseDeflater re-pools the healthy compressor
}

// Pipe returns a connected in-process frame transport, for tests and the
// in-process simulation: frames written to one end arrive at the other.
func Pipe(compress bool) (*Writer, *Reader, func() error) {
	pr, pw := io.Pipe()
	w := NewWriter(&syncWriter{w: pw}, compress)
	r := NewReader(pr)
	return w, r, pw.Close
}

// syncWriter serializes writes; io.Pipe is already safe but the Writer's
// two-write frame emission must not interleave with another writer.
type syncWriter struct {
	mu sync.Mutex //cwx:lockrank syncwriter 62
	w  io.Writer
}

func (s *syncWriter) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.w.Write(p)
}
