package transmit

import (
	"encoding/binary"
	"errors"
	"strconv"

	"clusterworx/internal/consolidate"
	"clusterworx/internal/history"
)

// The v2 wire format: binary columnar frames for the §5.3.3 transmission
// stage at federation scale. v1 keeps the paper's human-readable text
// payload and leans on deflate; v2 spends its bytes where the monitor
// stream's redundancy actually lives — names repeat every frame
// (dictionary-coded to varint ids), timestamps tick on a fixed cadence
// (delta-of-delta), and values dwell near their last reading (Gorilla
// XOR) — reusing internal/history's sealed-block codec bit for bit.
//
// Payload layout (first byte discriminates: a v1 payload starts with a
// printable hostname byte or '!', never 0x02):
//
//	0x02 flags            flags: bit0 snapshot, bit1 chain reset, bit2 trace
//	uvarint seq           per-node sequence number (never 0)
//	uvarint tailStart     dictionary tail: the sender's unacked entries
//	uvarint tailCount     [tailStart, tailStart+tailCount), resent every
//	tailCount × {uvarint len, bytes}   frame until the receiver acks
//	uvarint nodeID        dictionary id of the node name
//	[uvarint traceID, uvarint zigzag(traceNs)]   when flag bit2
//	uvarint valueCount
//	valueCount × uvarint (id<<2 | dynamic<<1 | isText)   meta column
//	per text value: {uvarint len, bytes}                 text column
//	bit column: DoD(sentNs), then per numeric value XOR vs its id's
//	predictor — the history block codec's streams, keyed per metric
//
// Negotiation rides the v1 forward-compat rule: a v2-capable agent adds
// the ignorable "w=2" option to its v1 headers; an old server skips it
// and the session stays v1. A v2-capable server answers with the "!wire
// 2" control frame (old agents ignore unknown control payloads), and the
// agent switches. Unknown offered versions are answered with the highest
// version the server speaks — automatic fallback in both directions.
//
// Loss tolerance: the XOR/DoD predictors chain across frames, so a frame
// body is decodable only when it directly follows the last decoded one
// (seq continuity) or carries the chain-reset flag (set on snapshots,
// first frames, and rebases after send errors). On a broken chain the
// decoder still returns the header (node, seq, kind) with ErrV2Desync so
// the existing gap→diverge→resync machinery runs unchanged; the healing
// snapshot resets the chain on both sides. Dictionary acks ("!wack n")
// bound tail resends; "!wreset" asks the sender to rebase from entry 0
// (a reset frame: tailStart 0 + chain reset), which the decoder adopts
// wholesale — the recovery path for a restarted peer.

// V2Magic is the first byte of every v2 payload. validNodeName rejects
// control bytes, so no v1 payload can start with it.
const V2Magic = 0x02

// WireV2 is the protocol version carried in offers and answers.
const WireV2 = 2

const (
	v2FlagSnapshot = 1 << 0 // frame kind is FrameSnapshot
	v2FlagReset    = 1 << 1 // chain reset: predictors zeroed before this frame
	v2FlagTrace    = 1 << 2 // trace context present
	v2FlagsKnown   = v2FlagSnapshot | v2FlagReset | v2FlagTrace
)

// maxV2NameLen bounds one dictionary entry; hostnames and metric names
// are tens of bytes, so anything huge is corruption, not data.
const maxV2NameLen = 4096

// Errors returned by the v2 codec. ErrV2Desync and ErrV2NeedReset are
// protocol states, not corruption: the caller keeps the connection and
// lets the resync machinery (or a "!wreset") heal the stream.
var (
	ErrV2Version   = errors.New("transmit: not a v2 payload")
	ErrV2Malformed = errors.New("transmit: malformed v2 frame")
	// ErrV2Desync accompanies a header-only Frame (Values nil): the
	// predictor chain broke (a lost frame), so the body is undecodable
	// until a chain-reset frame arrives. Feed the header to the sequenced
	// ingest — the seq gap drives the normal resync flow.
	ErrV2Desync = errors.New("transmit: v2 predictor chain broken, header only")
	// ErrV2NeedReset means the decoder's dictionary cannot follow the
	// sender's (missing or conflicting entries): answer with a "!wreset"
	// control frame so the sender rebases from entry 0.
	ErrV2NeedReset = errors.New("transmit: v2 dictionary out of sync")
)

// IsV2Payload reports whether a frame payload is in the v2 binary form.
//
//cwx:hotpath
func IsV2Payload(p []byte) bool { return len(p) > 0 && p[0] == V2Magic }

// EncoderV2 is the agent side of one v2 session: the name dictionary,
// its acked prefix, and the per-metric predictor streams. Not safe for
// concurrent use.
type EncoderV2 struct {
	entries []string
	ids     map[string]uint32
	acked   int // dictionary prefix the receiver confirmed
	preds   []history.XORState
	tstate  history.DoDState
	started bool
	rebase  bool // force the next frame to carry a chain reset
	bw      history.BitWriter
	bitbuf  []byte // bit-column scratch, reused across frames
}

// NewEncoderV2 returns a fresh session encoder.
func NewEncoderV2() *EncoderV2 {
	return &EncoderV2{ids: make(map[string]uint32)}
}

// Ack records the receiver's dictionary confirmation ("!wack n"): the
// first n entries need not be resent. Stale or absurd acks are ignored.
func (e *EncoderV2) Ack(n int) {
	if n > e.acked && n <= len(e.entries) {
		e.acked = n
	}
}

// ResetTable handles a "!wreset": the receiver lost the dictionary, so
// resend it all and reset the predictor chain.
func (e *EncoderV2) ResetTable() {
	e.acked = 0
	e.rebase = true
}

// Rebase forces a chain reset onto the next frame. Transports call it
// after a send error, when the receiver may or may not have decoded the
// last frame — a reset frame is decodable either way.
func (e *EncoderV2) Rebase() { e.rebase = true }

// TableLen returns the dictionary size (diagnostics).
func (e *EncoderV2) TableLen() int { return len(e.entries) }

// Acked returns the receiver-confirmed dictionary prefix (diagnostics).
func (e *EncoderV2) Acked() int { return e.acked }

// Encode renders f as a v2 payload, appending to dst. The frame's
// predictor updates are committed immediately: if the transport then
// fails to deliver, call Rebase so the next frame re-anchors the chain.
//
//cwx:hotpath
func (e *EncoderV2) Encode(dst []byte, f Frame) []byte {
	e.intern(f.Node)
	for i := range f.Values {
		e.intern(f.Values[i].Name)
	}
	reset := !e.started || e.rebase || f.Kind == FrameSnapshot
	if reset {
		e.resetPreds()
	}
	flags := byte(0)
	if f.Kind == FrameSnapshot {
		flags |= v2FlagSnapshot
	}
	if reset {
		flags |= v2FlagReset
	}
	if f.TraceID != 0 {
		flags |= v2FlagTrace
	}
	dst = append(dst, V2Magic, flags)
	dst = binary.AppendUvarint(dst, f.Seq)
	dst = binary.AppendUvarint(dst, uint64(e.acked))
	dst = binary.AppendUvarint(dst, uint64(len(e.entries)-e.acked))
	for _, name := range e.entries[e.acked:] {
		dst = binary.AppendUvarint(dst, uint64(len(name)))
		dst = append(dst, name...)
	}
	dst = binary.AppendUvarint(dst, uint64(e.ids[f.Node]))
	if f.TraceID != 0 {
		dst = binary.AppendUvarint(dst, f.TraceID)
		dst = binary.AppendUvarint(dst, uint64(f.TraceNs<<1)^uint64(f.TraceNs>>63))
	}
	dst = binary.AppendUvarint(dst, uint64(len(f.Values)))
	for i := range f.Values {
		v := &f.Values[i]
		m := uint64(e.ids[v.Name]) << 2
		if v.Kind == consolidate.Dynamic {
			m |= 2
		}
		if v.IsText {
			m |= 1
		}
		dst = binary.AppendUvarint(dst, m)
	}
	for i := range f.Values {
		if v := &f.Values[i]; v.IsText {
			dst = binary.AppendUvarint(dst, uint64(len(v.Text)))
			dst = append(dst, v.Text...)
		}
	}
	e.bw.Reset(e.bitbuf)
	e.bw.WriteDoD(&e.tstate, f.SentNs)
	for i := range f.Values {
		if v := &f.Values[i]; !v.IsText {
			e.bw.WriteXOR(&e.preds[e.ids[v.Name]], v.Num)
		}
	}
	bits := e.bw.Bytes()
	e.bitbuf = bits
	dst = append(dst, bits...)
	e.started = true
	e.rebase = false
	return dst
}

// intern ensures name has a dictionary id, growing the unacked tail on
// first sight. Cold: a session's name set stabilizes within a frame or
// two.
func (e *EncoderV2) intern(name string) {
	if _, ok := e.ids[name]; ok {
		return
	}
	e.ids[name] = uint32(len(e.entries))
	e.entries = append(e.entries, name)
	e.preds = append(e.preds, history.XORState{})
}

func (e *EncoderV2) resetPreds() {
	for i := range e.preds {
		e.preds[i] = history.XORState{}
	}
	e.tstate = history.DoDState{}
}

// DecoderV2 is the receiving side of one v2 session. Not safe for
// concurrent use; one per connection (TCP) or per source address
// (datagram fabrics).
type DecoderV2 struct {
	entries []string
	preds   []history.XORState
	tstate  history.DoDState
	lastSeq uint64
	chainOK bool
	needAck bool
	vals    []consolidate.Value // Values scratch, reused across frames
	idbuf   []uint32            // meta-column scratch
	br      history.BitReader
}

// NewDecoderV2 returns a fresh session decoder.
func NewDecoderV2() *DecoderV2 { return &DecoderV2{} }

// PendingAck reports (and consumes) a dictionary ack owed to the sender:
// the current table size, owed whenever a frame carried a tail. Send it
// as a "!wack n" control frame.
func (d *DecoderV2) PendingAck() (n int, ok bool) {
	if !d.needAck {
		return 0, false
	}
	d.needAck = false
	return len(d.entries), true
}

// TableLen returns the dictionary size (diagnostics).
func (d *DecoderV2) TableLen() int { return len(d.entries) }

// Decode parses one v2 payload. On success the returned Frame's Values
// (and their Names) are backed by the decoder's scratch and dictionary:
// valid until the next Decode, like transmit.Reader's payloads. See
// ErrV2Desync and ErrV2NeedReset for the two recoverable failures; any
// other error is a malformed frame (treat like a v1 parse error).
func (d *DecoderV2) Decode(payload []byte) (Frame, error) {
	var f Frame
	if !IsV2Payload(payload) {
		return f, ErrV2Version
	}
	if len(payload) < 2 {
		return f, ErrV2Malformed
	}
	flags := payload[1]
	if flags&^byte(v2FlagsKnown) != 0 {
		// Unknown flag bits would change the layout after them; unlike
		// v1's ignorable options there is no way to skip what we cannot
		// size. The negotiated version pins the flag set, so this is
		// corruption, not the future.
		return f, ErrV2Malformed
	}
	p := payload[2:]
	seq, p, ok := v2Uvarint(p)
	if !ok || seq == 0 {
		return f, ErrV2Malformed
	}
	reset := flags&v2FlagReset != 0
	tailStart, p, ok := v2Uvarint(p)
	if !ok {
		return f, ErrV2Malformed
	}
	tailCount, p, ok := v2Uvarint(p)
	if !ok || tailCount > uint64(len(p)) {
		return f, ErrV2Malformed
	}
	if reset && tailStart == 0 {
		// A rebase frame redefines the dictionary wholesale — the
		// recovery point for a restarted sender or a "!wreset" answer.
		d.entries = d.entries[:0]
	}
	if tailStart > uint64(len(d.entries)) {
		// The tail assumes entries we never saw (our ack state was lost,
		// e.g. a decoder restart the sender has not noticed).
		d.chainOK = false
		return f, ErrV2NeedReset
	}
	idx := int(tailStart)
	for i := uint64(0); i < tailCount; i++ {
		var n uint64
		n, p, ok = v2Uvarint(p)
		if !ok || n == 0 || n > maxV2NameLen || n > uint64(len(p)) {
			d.chainOK = false
			return f, ErrV2Malformed
		}
		name := p[:n]
		p = p[n:]
		if idx < len(d.entries) {
			// Overlap with known entries (an ack raced a resend): the
			// names must agree, or the two sides hold different tables.
			if d.entries[idx] != string(name) {
				d.chainOK = false
				return f, ErrV2NeedReset
			}
		} else {
			d.entries = append(d.entries, string(name))
		}
		idx++
	}
	for len(d.preds) < len(d.entries) {
		d.preds = append(d.preds, history.XORState{})
	}
	if tailCount > 0 {
		d.needAck = true
	}
	nodeID, p, ok := v2Uvarint(p)
	if !ok {
		return f, ErrV2Malformed
	}
	if nodeID >= uint64(len(d.entries)) {
		d.chainOK = false
		return f, ErrV2NeedReset
	}
	f.Node = d.entries[nodeID]
	if !validNodeName(f.Node) {
		return Frame{}, ErrV2Malformed
	}
	f.Seq = seq
	if flags&v2FlagSnapshot != 0 {
		f.Kind = FrameSnapshot
	}
	if flags&v2FlagTrace != 0 {
		var id, zns uint64
		id, p, ok = v2Uvarint(p)
		if !ok || id == 0 {
			return Frame{}, ErrV2Malformed
		}
		zns, p, ok = v2Uvarint(p)
		if !ok {
			return Frame{}, ErrV2Malformed
		}
		f.TraceID = id
		f.TraceNs = int64(zns>>1) ^ -int64(zns&1)
	}
	if !reset && (!d.chainOK || seq != d.lastSeq+1) {
		// Chain break: a frame between the last decoded one and this one
		// was lost, so the predictor streams are undecodable until a
		// reset frame. The header is still good — hand it up so the seq
		// machinery books the gap and asks for a resync.
		d.chainOK = false
		return f, ErrV2Desync
	}
	count, p, ok := v2Uvarint(p)
	if !ok || count > uint64(len(p)) {
		d.chainOK = false
		return Frame{}, ErrV2Malformed
	}
	if reset {
		for i := range d.preds {
			d.preds[i] = history.XORState{}
		}
		d.tstate = history.DoDState{}
	}
	out := d.vals[:0]
	ids := d.idbuf[:0]
	for i := uint64(0); i < count; i++ {
		var m uint64
		m, p, ok = v2Uvarint(p)
		if !ok {
			d.chainOK = false
			return Frame{}, ErrV2Malformed
		}
		id := m >> 2
		if id >= uint64(len(d.entries)) {
			d.chainOK = false
			return Frame{}, ErrV2NeedReset
		}
		var v consolidate.Value
		v.Name = d.entries[id]
		if m&2 != 0 {
			v.Kind = consolidate.Dynamic
		} else {
			v.Kind = consolidate.Static
		}
		v.IsText = m&1 != 0
		out = append(out, v)
		ids = append(ids, uint32(id))
	}
	d.vals, d.idbuf = out, ids
	for i := range out {
		if !out[i].IsText {
			continue
		}
		var n uint64
		n, p, ok = v2Uvarint(p)
		if !ok || n > uint64(len(p)) {
			d.chainOK = false
			return Frame{}, ErrV2Malformed
		}
		out[i].Text = string(p[:n])
		p = p[n:]
	}
	d.br.Reset(p)
	f.SentNs = d.br.ReadDoD(&d.tstate)
	for i := range out {
		if out[i].IsText {
			continue
		}
		v, ok := d.br.ReadXOR(&d.preds[ids[i]])
		if !ok {
			d.chainOK = false
			return Frame{}, ErrV2Malformed
		}
		out[i].Num = v
	}
	if d.br.Failed() {
		d.chainOK = false
		return Frame{}, ErrV2Malformed
	}
	d.lastSeq = seq
	d.chainOK = true
	f.Values = out
	return f, nil
}

// v2Uvarint reads one uvarint off the front of p.
//
//cwx:hotpath
func v2Uvarint(p []byte) (v uint64, rest []byte, ok bool) {
	v, n := binary.Uvarint(p)
	if n <= 0 {
		return 0, p, false
	}
	return v, p[n:], true
}

// --- negotiation control frames ---------------------------------------------
//
// All three flow server→agent on the existing control back-channel ('!'
// payloads). Old agents parse them with ParseResync, get ok=false, and
// ignore them — the forward-compat rule that makes the rollout safe.

const (
	wireAnswerPrefix = "!wire "  // answers a version offer: "!wire 2"
	dictAckPrefix    = "!wack "  // dictionary ack: "!wack <entries>"
	wireResetPayload = "!wreset" // dictionary reset request
)

// MarshalWireAnswer renders the server's version answer, appending to dst.
func MarshalWireAnswer(dst []byte, ver int) []byte {
	dst = append(dst, wireAnswerPrefix...)
	return strconv.AppendInt(dst, int64(ver), 10)
}

// ParseWireAnswer reports whether payload is a version answer and which
// version the server chose.
func ParseWireAnswer(payload []byte) (ver int, ok bool) {
	s, ok := controlSuffix(payload, wireAnswerPrefix)
	if !ok {
		return 0, false
	}
	n, err := strconv.ParseUint(s, 10, 8)
	if err != nil || n == 0 {
		return 0, false
	}
	return int(n), true
}

// MarshalDictAck renders a dictionary ack for n entries, appending to dst.
//
//cwx:hotpath
func MarshalDictAck(dst []byte, n int) []byte {
	dst = append(dst, dictAckPrefix...)
	return strconv.AppendInt(dst, int64(n), 10)
}

// ParseDictAck reports whether payload is a dictionary ack and for how
// many entries.
func ParseDictAck(payload []byte) (n int, ok bool) {
	s, ok := controlSuffix(payload, dictAckPrefix)
	if !ok {
		return 0, false
	}
	v, err := strconv.ParseUint(s, 10, 31)
	if err != nil {
		return 0, false
	}
	return int(v), true
}

// MarshalWireReset renders a dictionary reset request, appending to dst.
func MarshalWireReset(dst []byte) []byte {
	return append(dst, wireResetPayload...)
}

// IsWireReset reports whether payload is a dictionary reset request.
func IsWireReset(payload []byte) bool {
	return len(payload) == len(wireResetPayload) && string(payload) == wireResetPayload
}

func controlSuffix(payload []byte, prefix string) (string, bool) {
	if len(payload) <= len(prefix) || string(payload[:len(prefix)]) != prefix {
		return "", false
	}
	return string(payload[len(prefix):]), true
}
