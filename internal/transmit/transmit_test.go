package transmit

import (
	"bytes"
	"errors"
	"io"
	"math"
	"strings"
	"testing"
	"testing/quick"

	"clusterworx/internal/consolidate"
	"clusterworx/internal/procfs"
)

func TestFrameRoundTripRaw(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf, false)
	payloads := []string{"", "x", "hello world", strings.Repeat("abc", 1000)}
	for _, p := range payloads {
		if err := w.WriteFrame([]byte(p)); err != nil {
			t.Fatal(err)
		}
	}
	r := NewReader(&buf)
	for _, p := range payloads {
		got, err := r.ReadFrame()
		if err != nil {
			t.Fatal(err)
		}
		if string(got) != p {
			t.Fatalf("frame = %q, want %q", got, p)
		}
	}
	if _, err := r.ReadFrame(); err != io.EOF {
		t.Fatalf("trailing read err = %v, want EOF", err)
	}
}

func TestFrameRoundTripCompressed(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf, true)
	payload := []byte(strings.Repeat("cpu.load1 D n 0.42\n", 500))
	if err := w.WriteFrame(payload); err != nil {
		t.Fatal(err)
	}
	if w.WireBytes() >= w.RawBytes() {
		t.Fatalf("compressed frame (%d) not smaller than raw (%d)", w.WireBytes(), w.RawBytes())
	}
	r := NewReader(&buf)
	got, err := r.ReadFrame()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("compressed round trip corrupted payload")
	}
}

// TestIncompressiblePayloadFallsBackToRaw pins the documented fallback
// contract: a compressing Writer takes the raw path exactly when deflate
// output ≥ input, so compression can never inflate the stream beyond the
// fixed frame header. The frame's flag byte is the observable: clear on
// the raw path, set only when deflate strictly shrank the payload.
func TestIncompressiblePayloadFallsBackToRaw(t *testing.T) {
	// Pseudo-random bytes do not deflate; empty and tiny payloads deflate
	// to *more* than their size; /proc-style text deflates well.
	random := make([]byte, 4096)
	x := uint32(2463534242)
	for i := range random {
		x ^= x << 13
		x ^= x >> 17
		x ^= x << 5
		random[i] = byte(x)
	}
	payloads := [][]byte{
		nil,
		[]byte("x"),
		[]byte("tiny"),
		random,
		bytes.Repeat([]byte("MemTotal: 1048576 kB\n"), 200),
	}
	for _, payload := range payloads {
		var buf bytes.Buffer
		w := NewWriter(&buf, true)
		if err := w.WriteFrame(payload); err != nil {
			t.Fatal(err)
		}
		wantCompressed := CompressedSize(payload) < len(payload)
		gotCompressed := buf.Bytes()[1]&flagCompressed != 0
		if gotCompressed != wantCompressed {
			t.Fatalf("payload len %d: compressed flag = %v, want %v (deflate size %d)",
				len(payload), gotCompressed, wantCompressed, CompressedSize(payload))
		}
		if !gotCompressed {
			// Raw fallback: the body on the wire is the payload verbatim.
			if w.WireBytes() != int64(len(payload)+headerSize) {
				t.Fatalf("raw fallback wire bytes %d, want %d", w.WireBytes(), len(payload)+headerSize)
			}
			if !bytes.Equal(buf.Bytes()[headerSize:], payload) {
				t.Fatal("raw fallback body differs from payload")
			}
		} else if w.WireBytes() >= int64(len(payload)+headerSize) {
			t.Fatalf("compressed frame (%d bytes) not smaller than raw (%d)",
				w.WireBytes(), len(payload)+headerSize)
		}
		r := NewReader(&buf)
		got, err := r.ReadFrame()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, payload) {
			t.Fatal("fallback round trip corrupted payload")
		}
	}
}

// TestPooledScratchReuseAcrossFrames exercises the pooled compressor /
// decompressor path over many frames of alternating compressibility,
// checking that scratch reuse never leaks one frame's bytes into another.
func TestPooledScratchReuseAcrossFrames(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf, true)
	var want [][]byte
	x := uint32(88172645)
	for i := 0; i < 64; i++ {
		var p []byte
		if i%2 == 0 {
			p = bytes.Repeat([]byte{'a' + byte(i%26)}, 100+i*37)
		} else {
			p = make([]byte, 50+i*53)
			for j := range p {
				x ^= x << 13
				x ^= x >> 17
				x ^= x << 5
				p[j] = byte(x)
			}
		}
		want = append(want, p)
		if err := w.WriteFrame(p); err != nil {
			t.Fatal(err)
		}
	}
	r := NewReader(&buf)
	for i, p := range want {
		got, err := r.ReadFrame()
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if !bytes.Equal(got, p) {
			t.Fatalf("frame %d corrupted (len %d vs %d)", i, len(got), len(p))
		}
	}
}

func TestBadMagic(t *testing.T) {
	r := NewReader(bytes.NewReader([]byte{0, 0, 0, 0, 0, 0}))
	if _, err := r.ReadFrame(); !errors.Is(err, ErrBadMagic) {
		t.Fatalf("err = %v, want ErrBadMagic", err)
	}
}

func TestOversizeFrameRejected(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf, false)
	if err := w.WriteFrame(make([]byte, MaxFrameSize+1)); !errors.Is(err, ErrFrameSize) {
		t.Fatalf("writer err = %v, want ErrFrameSize", err)
	}
	// Forged oversize header must be rejected before allocation.
	hdr := []byte{frameMagic, 0, 0xFF, 0xFF, 0xFF, 0xFF}
	r := NewReader(bytes.NewReader(hdr))
	if _, err := r.ReadFrame(); !errors.Is(err, ErrFrameSize) {
		t.Fatalf("reader err = %v, want ErrFrameSize", err)
	}
}

func TestTruncatedFrame(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf, false)
	if err := w.WriteFrame([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()-2]
	r := NewReader(bytes.NewReader(trunc))
	if _, err := r.ReadFrame(); err == nil {
		t.Fatal("truncated frame decoded without error")
	}
}

func sampleValues() []consolidate.Value {
	return []consolidate.Value{
		consolidate.NumValue("cpu.load1", consolidate.Dynamic, 0.42),
		consolidate.NumValue("mem.free", consolidate.Dynamic, 516272),
		consolidate.TextValue("cpu.type", consolidate.Static, "Pentium III (Coppermine)"),
		consolidate.TextValue("host.name", consolidate.Static, "node with spaces\nand newline"),
		consolidate.NumValue("net.eth0.rxbytes", consolidate.Dynamic, 814558563),
	}
}

func TestMarshalUnmarshalValues(t *testing.T) {
	vals := sampleValues()
	data := MarshalValues(nil, vals)
	got, err := UnmarshalValues(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(vals) {
		t.Fatalf("got %d values, want %d", len(got), len(vals))
	}
	for i := range vals {
		if got[i] != vals[i] {
			t.Fatalf("value %d = %+v, want %+v", i, got[i], vals[i])
		}
	}
}

func TestUnmarshalErrors(t *testing.T) {
	cases := []string{
		"short line\n",
		"name X n 5\n",          // bad kind
		"name D x 5\n",          // bad tag
		"name D n notanum\n",    // bad number
		"name D t notquoted\n",  // bad quoting
		"name D t \"unclosed\n", // bad quoting
	}
	for _, c := range cases {
		if _, err := UnmarshalValues([]byte(c)); err == nil {
			t.Errorf("UnmarshalValues(%q) succeeded", c)
		}
	}
	// Blank lines are tolerated.
	if got, err := UnmarshalValues([]byte("\n\n")); err != nil || len(got) != 0 {
		t.Errorf("blank-line input: %v %v", got, err)
	}
}

// Property: marshal/unmarshal is the identity on arbitrary values.
func TestPropertyValueRoundTrip(t *testing.T) {
	f := func(name string, num float64, text string, isText, static bool) bool {
		if name == "" || strings.ContainsAny(name, " \n") {
			return true // names are dotted identifiers by construction
		}
		if math.IsNaN(num) {
			return true // NaN never compares equal; not a monitor value
		}
		v := consolidate.Value{Name: name, Num: num, Text: text, IsText: isText}
		if isText {
			v.Num = 0
		} else {
			v.Text = ""
		}
		if static {
			v.Kind = consolidate.Static
		} else {
			v.Kind = consolidate.Dynamic
		}
		got, err := UnmarshalValues(MarshalValues(nil, []consolidate.Value{v}))
		return err == nil && len(got) == 1 && got[0] == v
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestProcTextCompressesWell(t *testing.T) {
	// The E6 claim: /proc-style text compresses very effectively.
	fs := procfs.NewFS()
	procfs.RegisterStd(fs, procfs.Frozen())
	var all []byte
	for _, f := range []string{"/proc/meminfo", "/proc/stat", "/proc/net/dev", "/proc/cpuinfo"} {
		data, err := fs.ReadFile(f)
		if err != nil {
			t.Fatal(err)
		}
		all = append(all, data...)
	}
	comp := CompressedSize(all)
	if comp*2 > len(all) {
		t.Fatalf("proc text compressed to %d of %d bytes; expected at least 2x", comp, len(all))
	}
}

func TestPipe(t *testing.T) {
	w, r, closeFn := Pipe(true)
	go func() {
		w.WriteFrame([]byte("one"))
		w.WriteFrame([]byte("two"))
		closeFn()
	}()
	a, err := r.ReadFrame()
	if err != nil || string(a) != "one" {
		t.Fatalf("first frame %q %v", a, err)
	}
	b, err := r.ReadFrame()
	if err != nil || string(b) != "two" {
		t.Fatalf("second frame %q %v", b, err)
	}
	if _, err := r.ReadFrame(); err == nil {
		t.Fatal("read after close succeeded")
	}
}

func TestManyFramesInterleavedSizes(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf, true)
	var want [][]byte
	for i := 0; i < 200; i++ {
		p := bytes.Repeat([]byte{byte('a' + i%26)}, i*7%1024)
		want = append(want, p)
		if err := w.WriteFrame(p); err != nil {
			t.Fatal(err)
		}
	}
	r := NewReader(&buf)
	for i, p := range want {
		got, err := r.ReadFrame()
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if !bytes.Equal(got, p) {
			t.Fatalf("frame %d corrupted", i)
		}
	}
}

// Property: the frame reader never panics and never over-allocates on
// arbitrary garbage input — the server's agent port faces the network.
func TestPropertyReaderRobustToGarbage(t *testing.T) {
	f := func(junk []byte) bool {
		r := NewReader(bytes.NewReader(junk))
		for i := 0; i < 4; i++ {
			if _, err := r.ReadFrame(); err != nil {
				return true // any error is fine; panics are not
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: frames with a valid header but corrupted compressed body fail
// cleanly.
func TestCorruptCompressedBody(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf, true)
	if err := w.WriteFrame([]byte(strings.Repeat("abc", 500))); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	// Flip bytes in the compressed body.
	for i := headerSize + 2; i < len(data); i += 3 {
		data[i] ^= 0xFF
	}
	r := NewReader(bytes.NewReader(data))
	if _, err := r.ReadFrame(); err == nil {
		t.Fatal("corrupted deflate body decoded")
	}
}

// failAfterWriter errors once n bytes have been accepted — an io.Writer
// that dies mid-stream, like a socket reset under a compressor.
type failAfterWriter struct {
	n   int
	err error
}

func (w *failAfterWriter) Write(p []byte) (int, error) {
	if w.n <= 0 {
		return 0, w.err
	}
	if len(p) > w.n {
		n := w.n
		w.n = 0
		return n, w.err
	}
	w.n -= len(p)
	return len(p), nil
}

// TestDeflaterPoolDropsPoisoned pins the pooled-compressor error
// discipline: a deflater whose compression errored mid-frame holds
// undefined flate stream state and must be dropped, never re-pooled —
// re-pooling it would hand the next frame a poisoned compressor. A
// clean deflater keeps being reused.
func TestDeflaterPoolDropsPoisoned(t *testing.T) {
	// Control: a healthy release re-pools. (sync.Pool gives no identity
	// guarantee, but Put-then-Get on one goroutine hits the private slot,
	// so a miss here means the value was definitely not re-pooled.)
	d := deflaterPool.Get().(*deflater)
	releaseDeflater(d, nil)
	if got := deflaterPool.Get().(*deflater); got != d {
		t.Skip("pool did not return the just-Put value; identity check unavailable")
	}

	// Poison the compressor against a failing sink, then release with the
	// error: the next Get must not see this instance again.
	failErr := errors.New("sink reset")
	err := d.compressInto(&failAfterWriter{n: 0, err: failErr}, []byte(strings.Repeat("monitoring data ", 512)))
	if err == nil {
		t.Fatal("compressInto into a failing writer did not error")
	}
	if !errors.Is(err, failErr) {
		t.Fatalf("compressInto error = %v, want the sink's", err)
	}
	releaseDeflater(d, err)
	got := deflaterPool.Get().(*deflater)
	if got == d {
		t.Fatal("poisoned deflater was re-pooled")
	}

	// And the replacement compresses a real frame end to end.
	got.buf.Reset()
	if err := got.compressInto(&got.buf, []byte("cpu.load 0.5\n")); err != nil {
		t.Fatalf("fresh deflater failed: %v", err)
	}
	releaseDeflater(got, nil)

	// The full WriteFrame path over a failing transport surfaces the error
	// and leaves the writer usable with a fresh pool entry afterwards.
	var okBuf bytes.Buffer
	w := NewWriter(&okBuf, true)
	w.w = &failAfterWriter{n: 2, err: failErr}
	if err := w.WriteFrame([]byte(strings.Repeat("x", 100))); err == nil {
		t.Fatal("WriteFrame over failing transport did not error")
	}
	w.w = &okBuf
	if err := w.WriteFrame([]byte(strings.Repeat("x", 100))); err != nil {
		t.Fatalf("WriteFrame after recovery: %v", err)
	}
}
