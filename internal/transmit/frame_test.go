package transmit

import (
	"reflect"
	"testing"

	"clusterworx/internal/consolidate"
)

func TestFrameHeaderRoundTrip(t *testing.T) {
	values := []consolidate.Value{
		{Name: "cpu.load.1min", Kind: consolidate.Dynamic, Num: 1.25},
		{Name: "os.release", Kind: consolidate.Static, IsText: true, Text: "Linux 2.4.18"},
	}
	cases := []Frame{
		{Node: "node042", Seq: 0, Kind: FrameDelta, Values: values}, // legacy header
		{Node: "node042", Seq: 7, Kind: FrameDelta, Values: values},
		{Node: "node042", Seq: 8, Kind: FrameSnapshot, Values: values},
		{Node: "n", Seq: 1, Kind: FrameDelta, Values: nil}, // sequenced heartbeat
	}
	for _, want := range cases {
		payload := MarshalFrame(nil, want)
		got, err := ParseFrame(payload)
		if err != nil {
			t.Fatalf("ParseFrame(%+v): %v", want, err)
		}
		if got.Node != want.Node || got.Seq != want.Seq || got.Kind != want.Kind {
			t.Fatalf("header roundtrip: got %+v, want %+v", got, want)
		}
		if len(want.Values) > 0 && !reflect.DeepEqual(got.Values, want.Values) {
			t.Fatalf("values roundtrip: got %+v, want %+v", got.Values, want.Values)
		}
	}
}

func TestParseFrameRejectsMalformed(t *testing.T) {
	cases := []struct {
		name    string
		payload string
	}{
		{"empty", ""},
		{"two-field header", "node042 7\n"},
		{"zero seq", "node042 0 D\n"},
		{"non-numeric seq", "node042 seven D\n"},
		{"negative seq", "node042 -3 D\n"},
		{"bad kind", "node042 7 X\n"},
		{"control frame", "!resync node042"},
		{"binary garbage name", "no\x01de\n"},
		{"name with del byte", "node\x7f\n"},
		{"bad value line", "node042 7 D\ncpu.load\n"},
		{"truncated quoted text", "node042\nos.release S t \"Linu\n"},
	}
	for _, tc := range cases {
		if _, err := ParseFrame([]byte(tc.payload)); err == nil {
			t.Errorf("%s: ParseFrame(%q) accepted a malformed frame", tc.name, tc.payload)
		}
	}
}

func TestParseFrameLegacyHeader(t *testing.T) {
	// The bare name header (what old agents send) must keep parsing as an
	// unsequenced delta.
	f, err := ParseFrame([]byte("lonely"))
	if err != nil {
		t.Fatalf("legacy name-only frame: %v", err)
	}
	if f.Node != "lonely" || f.Seq != 0 || f.Kind != FrameDelta || len(f.Values) != 0 {
		t.Fatalf("legacy frame = %+v", f)
	}
}

func TestResyncRoundTrip(t *testing.T) {
	b := MarshalResync(nil, "node007")
	node, ok := ParseResync(b)
	if !ok || node != "node007" {
		t.Fatalf("ParseResync(%q) = %q, %v", b, node, ok)
	}
	// A resync request must never parse as a data frame, and vice versa.
	if _, err := ParseFrame(b); err == nil {
		t.Fatal("ParseFrame accepted a control frame")
	}
	if _, ok := ParseResync([]byte("node042 7 D\n")); ok {
		t.Fatal("ParseResync accepted a data frame")
	}
	if _, ok := ParseResync([]byte("!resync bad name")); ok {
		t.Fatal("ParseResync accepted a whitespace node name")
	}
	if _, ok := ParseResync([]byte("!resync ")); ok {
		t.Fatal("ParseResync accepted an empty node name")
	}
}

func TestFrameKindString(t *testing.T) {
	if FrameDelta.String() != "delta" || FrameSnapshot.String() != "snapshot" {
		t.Fatalf("kind strings: %q %q", FrameDelta.String(), FrameSnapshot.String())
	}
}
