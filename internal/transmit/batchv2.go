package transmit

import (
	"encoding/binary"

	"clusterworx/internal/consolidate"
	"clusterworx/internal/history"
)

// Batched v2 frames: the uplink (server→server) form of the v2 wire
// format. A leaf server forwards the change sets of many nodes per
// period; sending each as its own v2 frame would repay the per-frame
// costs — magic/flags/seq, dictionary tail bookkeeping, a fresh
// delta-of-delta anchor — once per node. A batch frame coalesces every
// dirty node of one flush into a single payload sharing one dictionary,
// one timestamp, and one predictor chain, so the per-frame overhead
// amortizes across the subtree and the XOR predictors stay warm per
// (node, metric) pair across flushes.
//
// Payload layout (discriminated from single-node v2 by flag bit 3;
// single-node decoders reject unknown flag bits, so a batch payload can
// never be mis-decoded as a single frame):
//
//	0x02 flags            flags: bit1 chain reset, bit3 batch
//	uvarint seq           link-level sequence number (never 0): one
//	                      counter per uplink session, not per node
//	uvarint tailStart     dictionary tail, exactly as in framev2.go —
//	uvarint tailCount     node names and metric names share one table
//	tailCount × {uvarint len, bytes}
//	uvarint nodeCount
//	nodeCount × node section:
//	  uvarint nodeID
//	  uvarint (valueCount<<2 | snapshot<<1 | traced)
//	  [uvarint traceID, uvarint zigzag(traceNs)]  when traced
//	  valueCount × uvarint (id<<2 | dynamic<<1 | isText)
//	  per text value: {uvarint len, bytes}
//	bit column: DoD(sentNs), then per numeric value (in node-section
//	order) XOR vs the predictor of its (node, metric) pair
//
// Snapshot/trace context moved from the frame flags into the per-node
// section header: a batch mixes delta and snapshot nodes freely, and
// only sampled nodes carry trace bytes. The predictor chain spans the
// whole link (seq continuity across batch frames); a lost frame makes
// the next one undecodable, the receiver answers "!uresync", and the
// sender heals by flushing a full chain-reset snapshot of every node —
// the uplink analogue of the per-node gap→resync flow. Dictionary acks
// ("!wack") and resets ("!wreset") are shared with the single-node
// session unchanged.

// v2FlagBatch marks a batched multi-node payload (see v2Flags* in
// framev2.go; bits 0/2 — snapshot, trace — are per-node here).
const v2FlagBatch = 1 << 3

// v2BatchFlagsKnown is the flag set a batch payload may carry.
const v2BatchFlagsKnown = v2FlagBatch | v2FlagReset

// IsV2BatchPayload reports whether a frame payload is a batched v2
// frame. Check before DecoderV2.Decode: the single-node decoder rejects
// the batch flag bit as unknown.
//
//cwx:hotpath
func IsV2BatchPayload(p []byte) bool {
	return len(p) > 1 && p[0] == V2Magic && p[1]&v2FlagBatch != 0
}

// BatchEncoderV2 is the sending side of one uplink session: a shared
// name dictionary and one predictor stream per (node, metric) pair.
// Not safe for concurrent use.
type BatchEncoderV2 struct {
	entries []string
	ids     map[string]uint32
	acked   int // dictionary prefix the receiver confirmed
	pairIdx map[uint64]uint32
	preds   []history.XORState
	tstate  history.DoDState
	started bool
	rebase  bool // force the next frame to carry a chain reset
	bw      history.BitWriter
	bitbuf  []byte // bit-column scratch, reused across frames
}

// NewBatchEncoderV2 returns a fresh uplink session encoder.
func NewBatchEncoderV2() *BatchEncoderV2 {
	return &BatchEncoderV2{
		ids:     make(map[string]uint32),
		pairIdx: make(map[uint64]uint32),
	}
}

// Ack records the receiver's dictionary confirmation ("!wack n").
func (e *BatchEncoderV2) Ack(n int) {
	if n > e.acked && n <= len(e.entries) {
		e.acked = n
	}
}

// ResetTable handles a "!wreset": resend the whole dictionary and reset
// the predictor chain. The caller should also arm a snap-all flush — a
// receiver that lost its dictionary lost its value state with it.
func (e *BatchEncoderV2) ResetTable() {
	e.acked = 0
	e.rebase = true
}

// Rebase forces a chain reset onto the next frame, making it decodable
// whether or not the receiver saw the previous one. Call after a send
// error.
func (e *BatchEncoderV2) Rebase() { e.rebase = true }

// TableLen returns the dictionary size (diagnostics).
func (e *BatchEncoderV2) TableLen() int { return len(e.entries) }

// Acked returns the receiver-confirmed dictionary prefix (diagnostics).
func (e *BatchEncoderV2) Acked() int { return e.acked }

// Encode renders the nodes' frames as one batched v2 payload, appending
// to dst. seq is the link-level sequence number (monotone from 1,
// incremented per encoded frame by the caller); sentNs stamps the whole
// batch. Per-node Frame fields used: Node, Kind, TraceID, TraceNs,
// Values — Seq, SentNs and WireOffer are link-level concerns and
// ignored. Predictor updates commit immediately: on a failed send call
// Rebase so the next frame re-anchors the chain.
//
//cwx:hotpath
func (e *BatchEncoderV2) Encode(dst []byte, seq uint64, sentNs int64, nodes []Frame) []byte {
	for i := range nodes {
		e.intern(nodes[i].Node)
		for j := range nodes[i].Values {
			e.intern(nodes[i].Values[j].Name)
		}
	}
	reset := !e.started || e.rebase
	if reset {
		e.resetPreds()
	}
	flags := byte(v2FlagBatch)
	if reset {
		flags |= v2FlagReset
	}
	dst = append(dst, V2Magic, flags)
	dst = binary.AppendUvarint(dst, seq)
	dst = binary.AppendUvarint(dst, uint64(e.acked))
	dst = binary.AppendUvarint(dst, uint64(len(e.entries)-e.acked))
	for _, name := range e.entries[e.acked:] {
		dst = binary.AppendUvarint(dst, uint64(len(name)))
		dst = append(dst, name...)
	}
	dst = binary.AppendUvarint(dst, uint64(len(nodes)))
	for i := range nodes {
		f := &nodes[i]
		dst = binary.AppendUvarint(dst, uint64(e.ids[f.Node]))
		h := uint64(len(f.Values)) << 2
		if f.Kind == FrameSnapshot {
			h |= 2
		}
		if f.TraceID != 0 {
			h |= 1
		}
		dst = binary.AppendUvarint(dst, h)
		if f.TraceID != 0 {
			dst = binary.AppendUvarint(dst, f.TraceID)
			dst = binary.AppendUvarint(dst, uint64(f.TraceNs<<1)^uint64(f.TraceNs>>63))
		}
		for j := range f.Values {
			v := &f.Values[j]
			m := uint64(e.ids[v.Name]) << 2
			if v.Kind == consolidate.Dynamic {
				m |= 2
			}
			if v.IsText {
				m |= 1
			}
			dst = binary.AppendUvarint(dst, m)
		}
		for j := range f.Values {
			if v := &f.Values[j]; v.IsText {
				dst = binary.AppendUvarint(dst, uint64(len(v.Text)))
				dst = append(dst, v.Text...)
			}
		}
	}
	e.bw.Reset(e.bitbuf)
	e.bw.WriteDoD(&e.tstate, sentNs)
	for i := range nodes {
		f := &nodes[i]
		nid := e.ids[f.Node]
		for j := range f.Values {
			if v := &f.Values[j]; !v.IsText {
				e.bw.WriteXOR(&e.preds[e.pairFor(nid, e.ids[v.Name])], v.Num)
			}
		}
	}
	bits := e.bw.Bytes()
	e.bitbuf = bits
	dst = append(dst, bits...)
	e.started = true
	e.rebase = false
	return dst
}

// intern ensures name has a dictionary id. Cold: the subtree's name set
// stabilizes within a flush or two.
func (e *BatchEncoderV2) intern(name string) {
	if _, ok := e.ids[name]; ok {
		return
	}
	e.ids[name] = uint32(len(e.entries))
	e.entries = append(e.entries, name)
}

// pairFor returns the predictor index for a (node, metric) pair,
// allocating one on first sight. The map hit is the steady state.
func (e *BatchEncoderV2) pairFor(nodeID, metricID uint32) uint32 {
	key := uint64(nodeID)<<32 | uint64(metricID)
	if idx, ok := e.pairIdx[key]; ok {
		return idx
	}
	idx := uint32(len(e.preds))
	e.pairIdx[key] = idx
	e.preds = append(e.preds, history.XORState{})
	return idx
}

func (e *BatchEncoderV2) resetPreds() {
	for i := range e.preds {
		e.preds[i] = history.XORState{}
	}
	e.tstate = history.DoDState{}
}

// batchNode is the decoder's per-section scratch: which slice of the
// flat value buffer belongs to which node, plus the section header
// bits. Values are sliced only after the whole payload parsed — the
// flat buffer may reallocate while growing.
type batchNode struct {
	node       string
	nodeID     uint32
	snapshot   bool
	traceID    uint64
	traceNs    int64
	start, end int
}

// BatchDecoderV2 is the receiving side of one uplink session. Not safe
// for concurrent use; one per connection or per source address.
type BatchDecoderV2 struct {
	entries []string
	pairIdx map[uint64]uint32
	preds   []history.XORState
	tstate  history.DoDState
	lastSeq uint64
	chainOK bool
	needAck bool
	vals    []consolidate.Value // flat Values scratch, all nodes
	meta    []uint32            // flat metric-id scratch
	nodes   []batchNode         // per-section scratch
	br      history.BitReader
}

// NewBatchDecoderV2 returns a fresh uplink session decoder.
func NewBatchDecoderV2() *BatchDecoderV2 {
	return &BatchDecoderV2{pairIdx: make(map[uint64]uint32)}
}

// PendingAck reports (and consumes) a dictionary ack owed to the
// sender, exactly as DecoderV2.PendingAck.
func (d *BatchDecoderV2) PendingAck() (n int, ok bool) {
	if !d.needAck {
		return 0, false
	}
	d.needAck = false
	return len(d.entries), true
}

// TableLen returns the dictionary size (diagnostics).
func (d *BatchDecoderV2) TableLen() int { return len(d.entries) }

// Decode parses one batched payload and calls emit once per node
// section, in payload order, with a Frame whose Seq is 0 (batch
// sub-frames ride the link-level sequence, not per-node numbering).
// Emission is all-or-nothing: emit runs only after the whole payload
// parsed, so a malformed tail never half-applies a batch. Emitted
// Values (and Node/Names) are backed by the decoder's scratch and
// dictionary — valid only until Decode returns.
//
// ErrV2Desync means a prior frame was lost and the predictor chain is
// broken: nothing is emitted, and the caller must answer "!uresync" so
// the sender flushes a chain-reset snapshot of every node.
// ErrV2NeedReset asks for a "!wreset" exactly as the single-node
// decoder does. Any other error is corruption; drop the session.
//
// Like DecoderV2.Decode, this is deliberately not //cwx:hotpath: the
// dictionary-append path interns names (it must — the entries outlive
// the payload), so the structural analyzer would flag by-design
// allocations. The steady state is pinned empirically instead, by the
// batch-ingest alloc gate.
func (d *BatchDecoderV2) Decode(payload []byte, emit func(Frame)) (int, error) {
	if !IsV2BatchPayload(payload) {
		return 0, ErrV2Version
	}
	flags := payload[1]
	if flags&^byte(v2BatchFlagsKnown) != 0 {
		return 0, ErrV2Malformed
	}
	p := payload[2:]
	seq, p, ok := v2Uvarint(p)
	if !ok || seq == 0 {
		return 0, ErrV2Malformed
	}
	reset := flags&v2FlagReset != 0
	tailStart, p, ok := v2Uvarint(p)
	if !ok {
		return 0, ErrV2Malformed
	}
	tailCount, p, ok := v2Uvarint(p)
	if !ok || tailCount > uint64(len(p)) {
		return 0, ErrV2Malformed
	}
	if reset && tailStart == 0 {
		// Rebase frame: the dictionary is redefined wholesale, so every
		// (node, metric) predictor pairing keyed on the old ids dies
		// with it.
		d.entries = d.entries[:0]
		d.preds = d.preds[:0]
		clear(d.pairIdx)
	}
	if tailStart > uint64(len(d.entries)) {
		d.chainOK = false
		return 0, ErrV2NeedReset
	}
	idx := int(tailStart)
	for i := uint64(0); i < tailCount; i++ {
		var n uint64
		n, p, ok = v2Uvarint(p)
		if !ok || n == 0 || n > maxV2NameLen || n > uint64(len(p)) {
			d.chainOK = false
			return 0, ErrV2Malformed
		}
		name := p[:n]
		p = p[n:]
		if idx < len(d.entries) {
			if d.entries[idx] != string(name) {
				d.chainOK = false
				return 0, ErrV2NeedReset
			}
		} else {
			d.entries = append(d.entries, string(name))
		}
		idx++
	}
	if tailCount > 0 {
		d.needAck = true
	}
	if !reset && (!d.chainOK || seq != d.lastSeq+1) {
		// Chain break: a batch between the last decoded one and this
		// one was lost. There is no per-node header to salvage — the
		// caller answers "!uresync" and the snap-all flush heals.
		d.chainOK = false
		return 0, ErrV2Desync
	}
	nodeCount, p, ok := v2Uvarint(p)
	if !ok || nodeCount > uint64(len(p)) {
		d.chainOK = false
		return 0, ErrV2Malformed
	}
	secs := d.nodes[:0]
	out := d.vals[:0]
	meta := d.meta[:0]
	for i := uint64(0); i < nodeCount; i++ {
		var sec batchNode
		var nid, h uint64
		nid, p, ok = v2Uvarint(p)
		if !ok {
			d.chainOK = false
			return 0, ErrV2Malformed
		}
		if nid >= uint64(len(d.entries)) {
			d.chainOK = false
			return 0, ErrV2NeedReset
		}
		sec.node = d.entries[nid]
		sec.nodeID = uint32(nid)
		if !validNodeName(sec.node) {
			d.chainOK = false
			return 0, ErrV2Malformed
		}
		h, p, ok = v2Uvarint(p)
		if !ok {
			d.chainOK = false
			return 0, ErrV2Malformed
		}
		sec.snapshot = h&2 != 0
		if h&1 != 0 {
			var id, zns uint64
			id, p, ok = v2Uvarint(p)
			if !ok || id == 0 {
				d.chainOK = false
				return 0, ErrV2Malformed
			}
			zns, p, ok = v2Uvarint(p)
			if !ok {
				d.chainOK = false
				return 0, ErrV2Malformed
			}
			sec.traceID = id
			sec.traceNs = int64(zns>>1) ^ -int64(zns&1)
		}
		count := h >> 2
		if count > uint64(len(p)) {
			d.chainOK = false
			return 0, ErrV2Malformed
		}
		sec.start = len(out)
		for j := uint64(0); j < count; j++ {
			var m uint64
			m, p, ok = v2Uvarint(p)
			if !ok {
				d.chainOK = false
				return 0, ErrV2Malformed
			}
			id := m >> 2
			if id >= uint64(len(d.entries)) {
				d.chainOK = false
				return 0, ErrV2NeedReset
			}
			var v consolidate.Value
			v.Name = d.entries[id]
			if m&2 != 0 {
				v.Kind = consolidate.Dynamic
			} else {
				v.Kind = consolidate.Static
			}
			v.IsText = m&1 != 0
			out = append(out, v)
			meta = append(meta, uint32(id))
		}
		sec.end = len(out)
		for j := sec.start; j < sec.end; j++ {
			if !out[j].IsText {
				continue
			}
			var n uint64
			n, p, ok = v2Uvarint(p)
			if !ok || n > uint64(len(p)) {
				d.chainOK = false
				return 0, ErrV2Malformed
			}
			out[j].Text = string(p[:n])
			p = p[n:]
		}
		secs = append(secs, sec)
	}
	d.nodes, d.vals, d.meta = secs, out, meta
	if reset {
		for i := range d.preds {
			d.preds[i] = history.XORState{}
		}
		d.tstate = history.DoDState{}
	}
	d.br.Reset(p)
	sentNs := d.br.ReadDoD(&d.tstate)
	for i := range secs {
		sec := &secs[i]
		for j := sec.start; j < sec.end; j++ {
			if out[j].IsText {
				continue
			}
			v, ok := d.br.ReadXOR(&d.preds[d.pairFor(sec.nodeID, meta[j])])
			if !ok {
				d.chainOK = false
				return 0, ErrV2Malformed
			}
			out[j].Num = v
		}
	}
	if d.br.Failed() {
		d.chainOK = false
		return 0, ErrV2Malformed
	}
	d.lastSeq = seq
	d.chainOK = true
	for i := range secs {
		sec := &secs[i]
		f := Frame{
			Node:    sec.node,
			TraceID: sec.traceID,
			TraceNs: sec.traceNs,
			SentNs:  sentNs,
			Values:  out[sec.start:sec.end:sec.end],
		}
		if sec.snapshot {
			f.Kind = FrameSnapshot
		}
		emit(f)
	}
	return len(secs), nil
}

// pairFor mirrors the encoder's pairing: both sides key predictors by
// dictionary ids, so the mapping needs no wire bytes.
func (d *BatchDecoderV2) pairFor(nodeID, metricID uint32) uint32 {
	key := uint64(nodeID)<<32 | uint64(metricID)
	if idx, ok := d.pairIdx[key]; ok {
		return idx
	}
	idx := uint32(len(d.preds))
	d.pairIdx[key] = idx
	d.preds = append(d.preds, history.XORState{})
	return idx
}

// uplinkResyncPayload is the receiver→sender control answering a batch
// chain break: "flush me a chain-reset snapshot of everything". The
// uplink analogue of the per-node "!resync <node>".
const uplinkResyncPayload = "!uresync"

// MarshalUplinkResync renders an uplink resync request, appending to dst.
func MarshalUplinkResync(dst []byte) []byte {
	return append(dst, uplinkResyncPayload...)
}

// IsUplinkResync reports whether payload is an uplink resync request.
func IsUplinkResync(payload []byte) bool {
	return len(payload) == len(uplinkResyncPayload) && string(payload) == uplinkResyncPayload
}
