package transmit

import (
	"math"
	"testing"

	"clusterworx/internal/consolidate"
)

// batchTestFrames builds a representative multi-node flush: numeric
// deltas, a snapshot node with text, and a traced node.
func batchTestFrames(round uint64) []Frame {
	return []Frame{
		{
			Node: "node000",
			Kind: FrameDelta,
			Values: []consolidate.Value{
				consolidate.NumValue("cpu.load", consolidate.Dynamic, 0.25*float64(round%7)),
				consolidate.NumValue("mem.free", consolidate.Dynamic, 1024-float64(round)),
			},
		},
		{
			Node: "node001",
			Kind: FrameSnapshot,
			Values: []consolidate.Value{
				consolidate.NumValue("cpu.load", consolidate.Dynamic, 1.5),
				consolidate.TextValue("os.release", consolidate.Static, "2.4.19-smp"),
			},
		},
		{
			Node:    "rack/leaf00",
			Kind:    FrameDelta,
			TraceID: 0xbeef + round,
			TraceNs: -int64(round) * 17,
			Values: []consolidate.Value{
				consolidate.NumValue("cpu.load.sum", consolidate.Dynamic, float64(round)*3),
			},
		},
	}
}

// decodeBatchAll decodes one batch payload into a slice of sub-frames,
// deep-copying out of the decoder scratch.
func decodeBatchAll(t *testing.T, dec *BatchDecoderV2, payload []byte) []Frame {
	t.Helper()
	var out []Frame
	n, err := dec.Decode(payload, func(f Frame) {
		f.Values = append([]consolidate.Value(nil), f.Values...)
		out = append(out, f)
	})
	if err != nil {
		t.Fatalf("batch decode: %v", err)
	}
	if n != len(out) {
		t.Fatalf("decode reported %d nodes, emitted %d", n, len(out))
	}
	return out
}

// requireBatchEqual compares emitted sub-frames against the encoded set.
func requireBatchEqual(t *testing.T, got, want []Frame, sentNs int64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("node count mismatch: got %d want %d", len(got), len(want))
	}
	for i := range want {
		w := want[i]
		w.Seq = 0 // sub-frames ride the link sequence
		w.SentNs = sentNs
		requireV2Equal(t, got[i], w)
	}
}

// TestBatchV2RoundtripChain: a chain of batch frames roundtrips exactly
// across many flushes — mixed delta/snapshot sections, per-node trace
// context, shared SentNs, and bit-exact numerics keyed per (node,
// metric) pair.
func TestBatchV2RoundtripChain(t *testing.T) {
	enc := NewBatchEncoderV2()
	dec := NewBatchDecoderV2()
	var buf []byte
	for seq := uint64(1); seq <= 20; seq++ {
		frames := batchTestFrames(seq)
		if seq == 5 {
			frames[0].Values[0].Num = math.NaN()
			frames[0].Values[1].Num = math.Inf(-1)
		}
		sentNs := int64(seq) * 100_000_000
		buf = enc.Encode(buf[:0], seq, sentNs, frames)
		if !IsV2Payload(buf) || !IsV2BatchPayload(buf) {
			t.Fatalf("seq %d: payload not batch v2", seq)
		}
		got := decodeBatchAll(t, dec, buf)
		requireBatchEqual(t, got, frames, sentNs)
	}
}

// TestBatchV2NotMistakenForSingle: the single-node decoder must reject
// a batch payload (unknown flag bit), never mis-decode it.
func TestBatchV2NotMistakenForSingle(t *testing.T) {
	enc := NewBatchEncoderV2()
	buf := enc.Encode(nil, 1, 0, batchTestFrames(1))
	if _, err := NewDecoderV2().Decode(buf); err != ErrV2Malformed {
		t.Fatalf("single-node decode of batch payload: got %v, want ErrV2Malformed", err)
	}
	single := NewEncoderV2().Encode(nil, v2TestFrame(1, 1, 2))
	if IsV2BatchPayload(single) {
		t.Fatal("single-node payload classified as batch")
	}
}

// TestBatchV2LossDesyncAndReset: dropping a batch breaks the link chain
// (ErrV2Desync, nothing emitted); a rebased frame re-anchors it and
// decodes standalone.
func TestBatchV2LossDesyncAndReset(t *testing.T) {
	enc := NewBatchEncoderV2()
	dec := NewBatchDecoderV2()
	var buf []byte
	buf = enc.Encode(buf[:0], 1, 100, batchTestFrames(1))
	decodeBatchAll(t, dec, buf)

	// Frame 2 is lost; frame 3 arrives and must not decode.
	_ = enc.Encode(nil, 2, 200, batchTestFrames(2))
	buf = enc.Encode(buf[:0], 3, 300, batchTestFrames(3))
	emitted := false
	_, err := dec.Decode(buf, func(Frame) { emitted = true })
	if err != ErrV2Desync {
		t.Fatalf("decode after loss: got %v, want ErrV2Desync", err)
	}
	if emitted {
		t.Fatal("desynced decode emitted sub-frames")
	}
	// Even an in-sequence successor stays undecodable until a reset:
	// the predictors are poisoned by the lost frame.
	buf = enc.Encode(buf[:0], 4, 400, batchTestFrames(4))
	if _, err := dec.Decode(buf, func(Frame) {}); err != ErrV2Desync {
		t.Fatalf("decode after desync: got %v, want ErrV2Desync", err)
	}

	// The "!uresync" answer makes the sender rebase; the reset frame
	// decodes regardless of the gap.
	enc.Rebase()
	frames := batchTestFrames(5)
	buf = enc.Encode(buf[:0], 5, 500, frames)
	got := decodeBatchAll(t, dec, buf)
	requireBatchEqual(t, got, frames, 500)
}

// TestBatchV2DictAckAndWreset: acks stop tail resends; a table reset
// resends everything and the rebase frame is adopted wholesale by a
// fresh decoder (the restarted-parent recovery path).
func TestBatchV2DictAckAndWreset(t *testing.T) {
	enc := NewBatchEncoderV2()
	dec := NewBatchDecoderV2()
	frames := batchTestFrames(1)
	buf := enc.Encode(nil, 1, 100, frames)
	withTail := len(buf)
	decodeBatchAll(t, dec, buf)
	n, ok := dec.PendingAck()
	if !ok || n != enc.TableLen() {
		t.Fatalf("pending ack: got %d/%v, want %d/true", n, ok, enc.TableLen())
	}
	enc.Ack(n)
	if enc.Acked() != n {
		t.Fatalf("acked: got %d want %d", enc.Acked(), n)
	}
	buf = enc.Encode(buf[:0], 2, 200, frames)
	if len(buf) >= withTail {
		t.Fatalf("acked frame (%dB) not smaller than tail-bearing frame (%dB)", len(buf), withTail)
	}
	if _, ok := dec.PendingAck(); ok {
		t.Fatal("ack owed for a tail-free frame")
	}
	decodeBatchAll(t, dec, buf)

	// Parent restarts: fresh decoder, stale sender. The tail now starts
	// past the fresh decoder's empty table — it must ask for a reset.
	fresh := NewBatchDecoderV2()
	buf = enc.Encode(buf[:0], 3, 300, frames)
	if _, err := fresh.Decode(buf, func(Frame) {}); err != ErrV2NeedReset {
		t.Fatalf("stale-tail decode: got %v, want ErrV2NeedReset", err)
	}
	enc.ResetTable()
	buf = enc.Encode(buf[:0], 4, 400, frames)
	got := decodeBatchAll(t, fresh, buf)
	requireBatchEqual(t, got, frames, 400)
}

// TestBatchV2PredictorsNotSharedAcrossNodes: two nodes reporting the
// same metric name must not pollute each other's predictor streams —
// the regression the (node, metric) pairing exists to prevent.
func TestBatchV2PredictorsNotSharedAcrossNodes(t *testing.T) {
	enc := NewBatchEncoderV2()
	dec := NewBatchDecoderV2()
	var buf []byte
	for seq := uint64(1); seq <= 8; seq++ {
		frames := []Frame{
			{Node: "a", Values: []consolidate.Value{consolidate.NumValue("load", consolidate.Dynamic, float64(seq))}},
			{Node: "b", Values: []consolidate.Value{consolidate.NumValue("load", consolidate.Dynamic, -1000*float64(seq))}},
		}
		buf = enc.Encode(buf[:0], seq, int64(seq), frames)
		got := decodeBatchAll(t, dec, buf)
		requireBatchEqual(t, got, frames, int64(seq))
	}
}

// TestBatchV2EmptyBatch: a zero-node frame (a heartbeat flush with
// nothing dirty) is legal and keeps the chain alive.
func TestBatchV2EmptyBatch(t *testing.T) {
	enc := NewBatchEncoderV2()
	dec := NewBatchDecoderV2()
	buf := enc.Encode(nil, 1, 100, nil)
	if got := decodeBatchAll(t, dec, buf); len(got) != 0 {
		t.Fatalf("empty batch emitted %d nodes", len(got))
	}
	frames := batchTestFrames(2)
	buf = enc.Encode(buf[:0], 2, 200, frames)
	requireBatchEqual(t, decodeBatchAll(t, dec, buf), frames, 200)
}

// TestBatchV2MalformedTruncations: every truncation of a valid payload
// must fail cleanly (or emit a consistent prefix — it must not panic or
// emit garbage). Mirrors the fuzz target's invariant for the batch form.
func TestBatchV2MalformedTruncations(t *testing.T) {
	enc := NewBatchEncoderV2()
	full := enc.Encode(nil, 1, 100, batchTestFrames(1))
	for cut := 0; cut < len(full); cut++ {
		dec := NewBatchDecoderV2()
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("cut %d: panic: %v", cut, r)
				}
			}()
			_, _ = dec.Decode(full[:cut], func(f Frame) {
				for i := range f.Values {
					_ = f.Values[i].Render()
				}
			})
		}()
	}
}

// TestUplinkResyncControl: the "!uresync" control roundtrips and old
// parsers ignore it.
func TestUplinkResyncControl(t *testing.T) {
	p := MarshalUplinkResync(nil)
	if !IsUplinkResync(p) {
		t.Fatal("uresync payload not recognized")
	}
	if IsUplinkResync([]byte("!uresyncx")) || IsUplinkResync([]byte("!wreset")) {
		t.Fatal("false positive uresync")
	}
	if _, ok := ParseResync(p); ok {
		t.Fatal("uresync misparsed as per-node resync")
	}
	if node, ok := ParseResync([]byte("!resync node007")); !ok || node != "node007" {
		t.Fatal("per-node resync parse broken")
	}
}
