package transmit

import (
	"bytes"
	"strings"
	"testing"

	"clusterworx/internal/consolidate"
)

func TestFrameTraceRoundtrip(t *testing.T) {
	in := Frame{
		Node:    "node042",
		Seq:     9,
		Kind:    FrameSnapshot,
		TraceID: 0xabcdef0123456789,
		TraceNs: 1234567890,
		Values: []consolidate.Value{
			{Name: "cpu.temp", Kind: consolidate.Dynamic, Num: 51},
		},
	}
	b := MarshalFrame(nil, in)
	header := string(b[:bytes.IndexByte(b, '\n')])
	if !strings.Contains(header, " t=") {
		t.Fatalf("traced header missing t= option: %q", header)
	}
	out, err := ParseFrame(b)
	if err != nil {
		t.Fatalf("ParseFrame: %v", err)
	}
	if out.TraceID != in.TraceID || out.TraceNs != in.TraceNs {
		t.Fatalf("trace context lost: got %x/%d want %x/%d",
			out.TraceID, out.TraceNs, in.TraceID, in.TraceNs)
	}
	if out.Node != in.Node || out.Seq != in.Seq || out.Kind != in.Kind {
		t.Fatalf("frame fields corrupted: %+v", out)
	}
	// Canonical fixpoint: marshal(parse(b)) == b.
	if again := MarshalFrame(nil, out); !bytes.Equal(again, b) {
		t.Fatalf("marshal not a fixpoint:\n%q\n%q", b, again)
	}
}

func TestFrameTraceNegativeOriginNs(t *testing.T) {
	in := Frame{Node: "n", Seq: 1, TraceID: 7, TraceNs: -42}
	out, err := ParseFrame(MarshalFrame(nil, in))
	if err != nil || out.TraceNs != -42 || out.TraceID != 7 {
		t.Fatalf("negative origin ns: %+v err=%v", out, err)
	}
}

func TestUntracedFramesUnchangedOnTheWire(t *testing.T) {
	// TraceID 0 must marshal byte-identically to the pre-trace format,
	// sequenced and legacy alike.
	seq := MarshalFrame(nil, Frame{Node: "node001", Seq: 3, Kind: FrameDelta})
	if got := string(seq[:bytes.IndexByte(seq, '\n')]); got != "node001 3 D" {
		t.Fatalf("untraced sequenced header changed: %q", got)
	}
	legacy := MarshalFrame(nil, Frame{Node: "node001", TraceID: 99})
	if got := string(legacy[:bytes.IndexByte(legacy, '\n')]); got != "node001" {
		t.Fatalf("legacy header must never carry options: %q", got)
	}
	f, err := ParseFrame(legacy)
	if err != nil || f.TraceID != 0 {
		t.Fatalf("legacy frame grew a trace: %+v err=%v", f, err)
	}
}

func TestParseFrameIgnoresUnknownAndMalformedOptions(t *testing.T) {
	cases := []struct {
		payload string
		trace   uint64
	}{
		{"node042 7 D t=zz\n", 0},                                         // non-hex
		{"node042 7 D t=0\n", 0},                                          // odd length
		{"node042 7 D t=00\n", 0},                                         // zero trace id
		{"node042 7 D t=\n", 0},                                           // empty
		{"node042 7 D x=1 q\n", 0},                                        // unknown options only
		{"node042 7 D x=1 t=0701\n", 7},                                   // unknown + valid trace
		{"node042 7 S t=0701 t=zz\n", 7},                                  // later malformed copy ignored
		{"node042 7 D t=ffffffffffffffffffffffffffffffffffffffffff\n", 0}, // too long
	}
	for _, c := range cases {
		f, err := ParseFrame([]byte(c.payload))
		if err != nil {
			t.Fatalf("ParseFrame(%q) must tolerate bad options: %v", c.payload, err)
		}
		if f.TraceID != c.trace {
			t.Fatalf("ParseFrame(%q) trace = %x, want %x", c.payload, f.TraceID, c.trace)
		}
		if f.Node != "node042" || f.Seq != 7 {
			t.Fatalf("ParseFrame(%q) mangled frame: %+v", c.payload, f)
		}
	}
	// Two fields is still malformed — options extend a full header only.
	if _, err := ParseFrame([]byte("node042 7\n")); err == nil {
		t.Fatal("two-field header must still be rejected")
	}
}

func TestParseTraceOptExactConsumption(t *testing.T) {
	b := appendTraceOpt(nil, 0xdead, 100)
	hex := string(b[len(" t="):])
	if _, _, ok := parseTraceOpt(hex); !ok {
		t.Fatalf("canonical option %q failed to parse", hex)
	}
	// Trailing garbage bytes after the two varints must be rejected.
	if _, _, ok := parseTraceOpt(hex + "00"); ok {
		t.Fatalf("option with trailing bytes %q should fail", hex+"00")
	}
}

// TestParseFrameDuplicateOptionsVoided pins the duplicate-option rule:
// two well-formed copies of the same known option are ambiguous — the
// sender cannot have meant both — so the option is voided entirely
// (never the frame). Malformed repeats stay ordinary skipped garbage.
func TestParseFrameDuplicateOptionsVoided(t *testing.T) {
	cases := []struct {
		payload string
		trace   uint64
		offer   uint8
	}{
		{"node042 7 D t=0701 t=0701\n", 0, 0},        // identical dup: voided
		{"node042 7 D t=0701 t=0902\n", 0, 0},        // conflicting dup: voided
		{"node042 7 D t=0701 t=0902 t=0b03\n", 0, 0}, // triplicate stays voided
		{"node042 7 D t=0701 t=zz\n", 7, 0},          // malformed repeat: not a dup
		{"node042 7 D t=zz t=0701\n", 7, 0},          // malformed first: later valid wins
		{"node042 7 D w=2 w=2\n", 0, 0},              // dup offers: voided
		{"node042 7 D w=2 w=3\n", 0, 0},              // conflicting offers: voided
		{"node042 7 D w=2 w=x\n", 0, 2},              // malformed repeat: not a dup
		{"node042 7 D w=1\n", 0, 0},                  // below WireV2: meaningless, skipped
		{"node042 7 D w=0\n", 0, 0},
		{"node042 7 D w=256\n", 0, 0},   // overflows uint8
		{"node042 7 D w=99999\n", 0, 0}, // over the length bound
		{"node042 7 D w=\n", 0, 0},
		{"node042 7 D t=0701 w=2\n", 7, 2}, // independent options coexist
		{"node042 7 D w=2 t=0701\n", 7, 2}, // in either order
	}
	for _, c := range cases {
		f, err := ParseFrame([]byte(c.payload))
		if err != nil {
			t.Fatalf("ParseFrame(%q) must tolerate bad options: %v", c.payload, err)
		}
		if f.TraceID != c.trace {
			t.Fatalf("ParseFrame(%q) trace = %x, want %x", c.payload, f.TraceID, c.trace)
		}
		if f.WireOffer != c.offer {
			t.Fatalf("ParseFrame(%q) offer = %d, want %d", c.payload, f.WireOffer, c.offer)
		}
		if f.Node != "node042" || f.Seq != 7 {
			t.Fatalf("ParseFrame(%q) mangled frame: %+v", c.payload, f)
		}
	}
}

// TestParseFrameBoundsTraceOptBeforeDecode: a t= payload longer than any
// well-formed trace context is rejected by length alone, before the hex
// scan touches it (the corpus case is ~1 MiB of hex digits).
func TestParseFrameBoundsTraceOptBeforeDecode(t *testing.T) {
	huge := "node042 7 D t=" + strings.Repeat("ab", 1<<19) + "\n"
	f, err := ParseFrame([]byte(huge))
	if err != nil {
		t.Fatalf("huge trace option must not kill the frame: %v", err)
	}
	if f.TraceID != 0 {
		t.Fatalf("huge trace option parsed to %x", f.TraceID)
	}
	// The longest canonical option still parses: both varints maxed.
	b := appendTraceOpt(nil, ^uint64(0), -1)
	opt := string(b[len(" t="):])
	if len(opt) > maxTraceOptHex {
		t.Fatalf("canonical max option %d hex digits exceeds bound %d", len(opt), maxTraceOptHex)
	}
	f, err = ParseFrame([]byte("node042 7 D t=" + opt + "\n"))
	if err != nil || f.TraceID != ^uint64(0) || f.TraceNs != -1 {
		t.Fatalf("max-width trace context lost: %+v err=%v", f, err)
	}
}

// TestWireOfferRoundtrip: the w= option marshals only for sequenced
// frames and survives a parse; offer-free frames marshal byte-identically
// to the pre-offer format.
func TestWireOfferRoundtrip(t *testing.T) {
	in := Frame{Node: "node001", Seq: 3, WireOffer: WireV2}
	b := MarshalFrame(nil, in)
	if got := string(b[:bytes.IndexByte(b, '\n')]); got != "node001 3 D w=2" {
		t.Fatalf("offer header: %q", got)
	}
	out, err := ParseFrame(b)
	if err != nil || out.WireOffer != WireV2 {
		t.Fatalf("offer lost: %+v err=%v", out, err)
	}
	if again := MarshalFrame(nil, out); !bytes.Equal(again, b) {
		t.Fatalf("offer marshal not a fixpoint:\n%q\n%q", b, again)
	}
	// Legacy (unsequenced) frames have no option slot: no offer on the wire.
	legacy := MarshalFrame(nil, Frame{Node: "node001", WireOffer: WireV2})
	if got := string(legacy[:bytes.IndexByte(legacy, '\n')]); got != "node001" {
		t.Fatalf("legacy header grew an offer: %q", got)
	}
	plain := MarshalFrame(nil, Frame{Node: "node001", Seq: 3})
	if got := string(plain[:bytes.IndexByte(plain, '\n')]); got != "node001 3 D" {
		t.Fatalf("offer-free header changed: %q", got)
	}
}
