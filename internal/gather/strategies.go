package gather

import (
	"bytes"
	"fmt"
	"io"
	"strconv"

	"clusterworx/internal/procfs"
)

// MeminfoGatherer samples /proc/meminfo with some strategy.
type MeminfoGatherer interface {
	Gather(out *MemStats) error
	Close() error
}

// --- strategy 1: naive ------------------------------------------------------
//
// The paper's first implementation: open per sample, read the file in small
// pieces (each piece paying a full content regeneration by the kernel
// handler), and parse with scanf-style conversion. 85 samples/s.

// NaiveMeminfo is the baseline strategy. Retained only as the experimental
// control; production code uses KeepOpenMeminfo.
type NaiveMeminfo struct {
	fs  *procfs.FS
	buf []byte
}

// NewNaiveMeminfo returns the naive gatherer.
func NewNaiveMeminfo(fs *procfs.FS) *NaiveMeminfo {
	return &NaiveMeminfo{fs: fs, buf: make([]byte, 0, readBufSize)}
}

// Gather opens, chunk-reads and scanf-parses /proc/meminfo.
func (g *NaiveMeminfo) Gather(out *MemStats) error {
	f, err := g.fs.Open("/proc/meminfo")
	if err != nil {
		return err
	}
	defer f.Close()
	data, err := readChunked(f, g.buf)
	if err != nil {
		return err
	}
	g.buf = data[:0]
	return scanfMeminfo(data, out)
}

// Close implements MeminfoGatherer; the naive strategy holds nothing open.
func (g *NaiveMeminfo) Close() error { return nil }

// scanfMeminfo parses each kB line with fmt.Sscanf, the moral equivalent of
// the stdio fscanf loop the paper's first implementation used.
func scanfMeminfo(data []byte, out *MemStats) error {
	targets := map[string]*uint64{
		"MemTotal:": &out.MemTotal, "MemFree:": &out.MemFree,
		"MemShared:": &out.MemShared, "Buffers:": &out.Buffers,
		"Cached:": &out.Cached, "SwapCached:": &out.SwapCached,
		"Active:": &out.Active, "Inactive:": &out.Inactive,
		"SwapTotal:": &out.SwapTotal, "SwapFree:": &out.SwapFree,
	}
	found := 0
	for _, line := range bytes.Split(data, []byte{'\n'}) {
		var name string
		var value uint64
		if n, _ := fmt.Sscanf(string(line), "%s %d kB", &name, &value); n == 2 {
			if dst, ok := targets[name]; ok {
				*dst = value
				found++
			}
		}
	}
	if found < 10 {
		return &ParseError{File: "/proc/meminfo", Detail: "scanf found only " + strconv.Itoa(found) + " fields"}
	}
	return nil
}

// --- strategy 2: buffered ---------------------------------------------------
//
// "Loading /proc/meminfo at once into a separate buffer and parsing the
// data within that buffer" — one read(2), one regeneration, generic parse.
// 4173 samples/s (+4800 %).

// BufferedMeminfo opens per sample but reads the whole file with a single
// read and parses generically within the buffer.
type BufferedMeminfo struct {
	fs  *procfs.FS
	buf []byte
}

// NewBufferedMeminfo returns the buffered gatherer.
func NewBufferedMeminfo(fs *procfs.FS) *BufferedMeminfo {
	return &BufferedMeminfo{fs: fs, buf: make([]byte, readBufSize)}
}

// Gather opens, single-reads, and generically parses /proc/meminfo.
func (g *BufferedMeminfo) Gather(out *MemStats) error {
	f, err := g.fs.Open("/proc/meminfo")
	if err != nil {
		return err
	}
	defer f.Close()
	data, err := readWhole(f, g.buf)
	if err != nil {
		return err
	}
	return parseMeminfoGeneric(data, out)
}

// Close implements MeminfoGatherer.
func (g *BufferedMeminfo) Close() error { return nil }

// --- strategy 3: a-priori format knowledge ----------------------------------
//
// "By taking advantage of the fact that /proc data uses standard ASCII
// output and by using a priori knowledge about the output format" — the
// positional hand parser. 14031 samples/s (+236 %). Still reopens per
// sample.

// AprioriMeminfo opens per sample and parses with the positional parser.
type AprioriMeminfo struct {
	fs  *procfs.FS
	buf []byte
}

// NewAprioriMeminfo returns the a-priori gatherer.
func NewAprioriMeminfo(fs *procfs.FS) *AprioriMeminfo {
	return &AprioriMeminfo{fs: fs, buf: make([]byte, readBufSize)}
}

// Gather opens, single-reads, and positionally parses /proc/meminfo.
func (g *AprioriMeminfo) Gather(out *MemStats) error {
	f, err := g.fs.Open("/proc/meminfo")
	if err != nil {
		return err
	}
	defer f.Close()
	data, err := readWhole(f, g.buf)
	if err != nil {
		return err
	}
	return parseMeminfoApriori(data, out)
}

// Close implements MeminfoGatherer.
func (g *AprioriMeminfo) Close() error { return nil }

// --- strategy 4: keep the file open ------------------------------------------
//
// "We keep the file open all the time, just resetting the file pointer to
// the beginning of the file between two consecutive steps." 33855
// samples/s (+141 %), i.e. 29.5 µs of CPU per call on the paper's testbed.

// KeepOpenMeminfo is the production strategy: the file stays open across
// samples, rewound with Seek(0) between reads.
type KeepOpenMeminfo struct {
	f   *procfs.File
	buf []byte
}

// NewKeepOpenMeminfo opens /proc/meminfo once for the gatherer's lifetime.
func NewKeepOpenMeminfo(fs *procfs.FS) (*KeepOpenMeminfo, error) {
	f, err := fs.Open("/proc/meminfo")
	if err != nil {
		return nil, err
	}
	return &KeepOpenMeminfo{f: f, buf: make([]byte, readBufSize)}, nil
}

// Gather rewinds, single-reads, and positionally parses /proc/meminfo.
func (g *KeepOpenMeminfo) Gather(out *MemStats) error {
	if _, err := g.f.Seek(0, io.SeekStart); err != nil {
		return err
	}
	data, err := readWhole(g.f, g.buf)
	if err != nil {
		return err
	}
	return parseMeminfoApriori(data, out)
}

// Close releases the kept-open file.
func (g *KeepOpenMeminfo) Close() error { return g.f.Close() }

// --- production gatherers for the remaining files ----------------------------
//
// All use the final strategy (kept open + a-priori parse). Per-call costs
// on the paper's testbed: stat 35 µs, loadavg 7.5 µs, uptime 6.2 µs,
// net/dev 21.6 µs per device.

// StatGatherer samples /proc/stat.
type StatGatherer struct {
	f   *procfs.File
	buf []byte
}

// NewStatGatherer opens /proc/stat once.
func NewStatGatherer(fs *procfs.FS) (*StatGatherer, error) {
	f, err := fs.Open("/proc/stat")
	if err != nil {
		return nil, err
	}
	return &StatGatherer{f: f, buf: make([]byte, readBufSize)}, nil
}

// Gather rewinds and parses /proc/stat.
func (g *StatGatherer) Gather(out *CPUStats) error {
	if _, err := g.f.Seek(0, io.SeekStart); err != nil {
		return err
	}
	data, err := readWhole(g.f, g.buf)
	if err != nil {
		return err
	}
	return parseStatApriori(data, out)
}

// Close releases the file.
func (g *StatGatherer) Close() error { return g.f.Close() }

// LoadavgGatherer samples /proc/loadavg.
type LoadavgGatherer struct {
	f   *procfs.File
	buf []byte
}

// NewLoadavgGatherer opens /proc/loadavg once.
func NewLoadavgGatherer(fs *procfs.FS) (*LoadavgGatherer, error) {
	f, err := fs.Open("/proc/loadavg")
	if err != nil {
		return nil, err
	}
	return &LoadavgGatherer{f: f, buf: make([]byte, 256)}, nil
}

// Gather rewinds and parses /proc/loadavg.
func (g *LoadavgGatherer) Gather(out *LoadStats) error {
	if _, err := g.f.Seek(0, io.SeekStart); err != nil {
		return err
	}
	data, err := readWhole(g.f, g.buf)
	if err != nil {
		return err
	}
	return parseLoadavgApriori(data, out)
}

// Close releases the file.
func (g *LoadavgGatherer) Close() error { return g.f.Close() }

// UptimeGatherer samples /proc/uptime.
type UptimeGatherer struct {
	f   *procfs.File
	buf []byte
}

// NewUptimeGatherer opens /proc/uptime once.
func NewUptimeGatherer(fs *procfs.FS) (*UptimeGatherer, error) {
	f, err := fs.Open("/proc/uptime")
	if err != nil {
		return nil, err
	}
	return &UptimeGatherer{f: f, buf: make([]byte, 128)}, nil
}

// Gather rewinds and parses /proc/uptime.
func (g *UptimeGatherer) Gather(out *UptimeStats) error {
	if _, err := g.f.Seek(0, io.SeekStart); err != nil {
		return err
	}
	data, err := readWhole(g.f, g.buf)
	if err != nil {
		return err
	}
	return parseUptimeApriori(data, out)
}

// Close releases the file.
func (g *UptimeGatherer) Close() error { return g.f.Close() }

// NetDevGatherer samples /proc/net/dev.
type NetDevGatherer struct {
	f   *procfs.File
	buf []byte
}

// NewNetDevGatherer opens /proc/net/dev once.
func NewNetDevGatherer(fs *procfs.FS) (*NetDevGatherer, error) {
	f, err := fs.Open("/proc/net/dev")
	if err != nil {
		return nil, err
	}
	return &NetDevGatherer{f: f, buf: make([]byte, readBufSize)}, nil
}

// Gather rewinds and parses /proc/net/dev.
func (g *NetDevGatherer) Gather(out *NetDevStats) error {
	if _, err := g.f.Seek(0, io.SeekStart); err != nil {
		return err
	}
	data, err := readWhole(g.f, g.buf)
	if err != nil {
		return err
	}
	return parseNetDevApriori(data, out)
}

// Close releases the file.
func (g *NetDevGatherer) Close() error { return g.f.Close() }

// Compile-time interface checks for the meminfo strategy ladder.
var (
	_ MeminfoGatherer = (*NaiveMeminfo)(nil)
	_ MeminfoGatherer = (*BufferedMeminfo)(nil)
	_ MeminfoGatherer = (*AprioriMeminfo)(nil)
	_ MeminfoGatherer = (*KeepOpenMeminfo)(nil)
)

// ParseMeminfoApriori exposes the positional parser for the E3
// parser-comparison benchmark (optimized vs generic on identical bytes).
func ParseMeminfoApriori(data []byte, out *MemStats) error {
	return parseMeminfoApriori(data, out)
}

// ParseMeminfoGeneric exposes the generic parser for the E3 benchmark.
func ParseMeminfoGeneric(data []byte, out *MemStats) error {
	return parseMeminfoGeneric(data, out)
}

// ParseStatApriori exposes the positional /proc/stat parser.
func ParseStatApriori(data []byte, out *CPUStats) error {
	return parseStatApriori(data, out)
}

// ParseStatGeneric exposes the generic /proc/stat parser.
func ParseStatGeneric(data []byte, out *CPUStats) error {
	return parseStatGeneric(data, out)
}
