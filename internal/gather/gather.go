// Package gather implements the gathering stage of the ClusterWorX
// monitoring pipeline (paper §5.3.1): loading statistics out of /proc,
// parsing the values, and storing the results in memory.
//
// The paper reports a ladder of four implementations for /proc/meminfo on
// its 1 GHz Pentium III testbed:
//
//	naive line-at-a-time read + scanf parse     85 samples/s (100 % CPU)
//	whole-file buffered read, parse in buffer  4173 samples/s  (+4800 %)
//	a-priori knowledge of the output format   14031 samples/s   (+236 %)
//	keep the file open, rewind between reads  33855 samples/s   (+141 %)
//
// and per-file costs for the final strategy: meminfo 29.5 µs, stat 35 µs,
// loadavg 7.5 µs, uptime 6.2 µs, net/dev 21.6 µs per device. This package
// provides all four strategies for meminfo and the optimized (buffered,
// a-priori, kept-open) gatherers for every monitored file, so the top-level
// benchmark harness can regenerate the ladder and the per-file table.
package gather

import (
	"fmt"
	"io"

	"clusterworx/internal/procfs"
	"clusterworx/internal/telemetry"
)

// Self-monitoring series for the gathering stage. Counters only on this
// path: every gatherer strategy funnels through readWhole/readChunked,
// which the E1–E4 ladder benchmarks at microsecond granularity, so the
// per-read cost added here must stay at a couple of atomic adds (timing
// happens one level up, at the consolidation tick).
var (
	mReads      = telemetry.Default().Counter("cwx_gather_reads_total")
	mReadBytes  = telemetry.Default().Counter("cwx_gather_read_bytes_total")
	mChunkReads = telemetry.Default().Counter("cwx_gather_chunk_reads_total")
)

// readBufSize is the whole-file read buffer: every monitored /proc file
// fits in one page-sized read, as on the paper's 2.4 kernels.
const readBufSize = 8192

// naiveChunk is the tiny read size of the naive strategy. Each chunk-sized
// read(2) regenerates the entire file (the kernel-handler property), which
// is precisely the inefficiency the paper's first optimization removes.
const naiveChunk = 16

// MemStats are the parsed /proc/meminfo values, in kB as reported by the
// kernel's kB field block.
type MemStats struct {
	MemTotal, MemFree, MemShared uint64
	Buffers, Cached, SwapCached  uint64
	Active, Inactive             uint64
	SwapTotal, SwapFree          uint64
}

// Used returns the non-free physical memory in kB.
func (m MemStats) Used() uint64 { return m.MemTotal - m.MemFree }

// CPUStats are the parsed /proc/stat values.
type CPUStats struct {
	Total           procfs.CPUJiffies
	PerCPU          []procfs.CPUJiffies
	PageIn, PageOut uint64
	SwapIn, SwapOut uint64
	Interrupts      uint64
	ContextSwitches uint64
	BootTime        uint64
	Processes       uint64
	Disks           []DiskCounters
}

// DiskCounters is one disk's cumulative I/O from the 2.4 disk_io line.
type DiskCounters struct {
	Major, Minor              int
	IO, ReadIO, WriteIO       uint64
	ReadSectors, WriteSectors uint64
}

// LoadStats are the parsed /proc/loadavg values.
type LoadStats struct {
	Load1, Load5, Load15 float64
	Running, Total       int
	LastPID              int
}

// UptimeStats are the parsed /proc/uptime values in seconds.
type UptimeStats struct {
	Uptime, Idle float64
}

// NetDevStats are the parsed per-interface counters from /proc/net/dev.
type NetDevStats struct {
	Ifaces []IfaceCounters
}

// IfaceCounters is one interface row of /proc/net/dev.
type IfaceCounters struct {
	Name                               string
	RxBytes, RxPackets, RxErrs, RxDrop uint64
	TxBytes, TxPackets, TxErrs, TxDrop uint64
}

// ParseError reports a /proc parse failure with enough context to debug a
// format drift.
type ParseError struct {
	File   string
	Detail string
}

func (e *ParseError) Error() string {
	return fmt.Sprintf("gather: parse %s: %s", e.File, e.Detail)
}

// readWhole reads f from its current offset into buf with one Read call,
// the buffered strategy's single-regeneration read. It returns the content
// slice. Files larger than buf are truncated — acceptable for page-sized
// /proc files and exactly what a single read(2) into a page buffer did.
func readWhole(f *procfs.File, buf []byte) ([]byte, error) {
	n, err := f.Read(buf)
	if err != nil && err != io.EOF {
		return nil, err
	}
	mReads.Inc()
	mReadBytes.Add(int64(n))
	return buf[:n], nil
}

// readChunked reads f to EOF in naiveChunk-sized pieces, paying a full
// content regeneration per piece. Used only by the naive strategy.
func readChunked(f *procfs.File, dst []byte) ([]byte, error) {
	dst = dst[:0]
	var chunk [naiveChunk]byte
	var chunks int64
	for {
		n, err := f.Read(chunk[:])
		dst = append(dst, chunk[:n]...)
		chunks++
		if err == io.EOF {
			mReads.Inc()
			mChunkReads.Add(chunks)
			mReadBytes.Add(int64(len(dst)))
			return dst, nil
		}
		if err != nil {
			return nil, err
		}
	}
}
