package gather

import (
	"bytes"
	"testing"
	"testing/quick"

	"clusterworx/internal/procfs"
)

func frozenFS() *procfs.FS {
	fs := procfs.NewFS()
	procfs.RegisterStd(fs, procfs.Frozen())
	return fs
}

// wantMem is what every strategy must extract from the frozen baseline.
func wantMem(t *testing.T, m MemStats) {
	t.Helper()
	base := procfs.BaselineStat()
	checks := []struct {
		name string
		got  uint64
		want uint64
	}{
		{"MemTotal", m.MemTotal, base.MemTotal / 1024},
		{"MemFree", m.MemFree, base.MemFree / 1024},
		{"Buffers", m.Buffers, base.Buffers / 1024},
		{"Cached", m.Cached, base.Cached / 1024},
		{"SwapCached", m.SwapCached, base.SwapCached / 1024},
		{"Active", m.Active, base.Active / 1024},
		{"Inactive", m.Inactive, base.Inactive / 1024},
		{"SwapTotal", m.SwapTotal, base.SwapTotal / 1024},
		{"SwapFree", m.SwapFree, base.SwapFree / 1024},
	}
	for _, c := range checks {
		if c.got != c.want {
			t.Errorf("%s = %d, want %d", c.name, c.got, c.want)
		}
	}
}

func TestAllMeminfoStrategiesAgree(t *testing.T) {
	fs := frozenFS()
	keepOpen, err := NewKeepOpenMeminfo(fs)
	if err != nil {
		t.Fatal(err)
	}
	strategies := map[string]MeminfoGatherer{
		"naive":    NewNaiveMeminfo(fs),
		"buffered": NewBufferedMeminfo(fs),
		"apriori":  NewAprioriMeminfo(fs),
		"keepopen": keepOpen,
	}
	for name, g := range strategies {
		t.Run(name, func(t *testing.T) {
			var m MemStats
			if err := g.Gather(&m); err != nil {
				t.Fatal(err)
			}
			wantMem(t, m)
			// Second sample must also work (rewind path for keepopen).
			if err := g.Gather(&m); err != nil {
				t.Fatalf("second gather: %v", err)
			}
			wantMem(t, m)
			if err := g.Close(); err != nil {
				t.Fatalf("close: %v", err)
			}
		})
	}
}

func TestKeepOpenSurvivesEvolvingContent(t *testing.T) {
	fs := procfs.NewFS()
	syn := procfs.NewSynthetic(7)
	procfs.RegisterStd(fs, syn.Stat)
	g, err := NewKeepOpenMeminfo(fs)
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	var prev MemStats
	for i := 0; i < 500; i++ {
		var m MemStats
		if err := g.Gather(&m); err != nil {
			t.Fatalf("sample %d: %v", i, err)
		}
		if m.MemTotal != 1<<20 { // 1 GiB in kB
			t.Fatalf("sample %d: MemTotal = %d kB", i, m.MemTotal)
		}
		if m.MemFree == 0 || m.MemFree > m.MemTotal {
			t.Fatalf("sample %d: implausible MemFree %d", i, m.MemFree)
		}
		prev = m
	}
	_ = prev
}

func TestStatGatherer(t *testing.T) {
	fs := frozenFS()
	g, err := NewStatGatherer(fs)
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	var s CPUStats
	if err := g.Gather(&s); err != nil {
		t.Fatal(err)
	}
	if s.Total.User != 10000 || s.Total.Nice != 200 || s.Total.System != 4000 || s.Total.Idle != 300000 {
		t.Errorf("aggregate jiffies = %+v", s.Total)
	}
	if len(s.PerCPU) != 1 || s.PerCPU[0] != s.Total {
		t.Errorf("per-cpu = %+v", s.PerCPU)
	}
	if s.PageIn != 5000 || s.PageOut != 2000 {
		t.Errorf("page = %d/%d", s.PageIn, s.PageOut)
	}
	if s.SwapIn != 1 || s.SwapOut != 0 {
		t.Errorf("swap = %d/%d", s.SwapIn, s.SwapOut)
	}
	if s.Interrupts != 1_400_000 {
		t.Errorf("intr = %d", s.Interrupts)
	}
	if s.ContextSwitches != 3_000_000 {
		t.Errorf("ctxt = %d", s.ContextSwitches)
	}
	if s.BootTime != 1_027_895_183 {
		t.Errorf("btime = %d", s.BootTime)
	}
	if s.Processes != 2738 {
		t.Errorf("processes = %d", s.Processes)
	}
	if len(s.Disks) != 1 {
		t.Fatalf("disks = %d", len(s.Disks))
	}
	d := s.Disks[0]
	if d.Major != 3 || d.Minor != 0 || d.IO != 31000 || d.ReadIO != 20000 ||
		d.ReadSectors != 570000 || d.WriteIO != 11000 || d.WriteSectors != 300000 {
		t.Errorf("disk counters = %+v", d)
	}
}

func TestStatGenericMatchesApriori(t *testing.T) {
	var buf bytes.Buffer
	base := procfs.BaselineStat()
	base.CPUs = append(base.CPUs, procfs.CPUJiffies{User: 1, Nice: 2, System: 3, Idle: 4})
	procfs.RenderStat(&buf, &base)

	var a, g CPUStats
	if err := parseStatApriori(buf.Bytes(), &a); err != nil {
		t.Fatal(err)
	}
	if err := parseStatGeneric(buf.Bytes(), &g); err != nil {
		t.Fatal(err)
	}
	if a.Total != g.Total || len(a.PerCPU) != len(g.PerCPU) ||
		a.ContextSwitches != g.ContextSwitches || a.Processes != g.Processes ||
		a.PageIn != g.PageIn || a.SwapOut != g.SwapOut || a.BootTime != g.BootTime {
		t.Fatalf("parsers disagree:\napriori %+v\ngeneric %+v", a, g)
	}
	if len(a.Disks) != len(g.Disks) || len(a.Disks) != 1 || a.Disks[0] != g.Disks[0] {
		t.Fatalf("disk parsers disagree: %+v vs %+v", a.Disks, g.Disks)
	}
	for i := range a.PerCPU {
		if a.PerCPU[i] != g.PerCPU[i] {
			t.Fatalf("percpu %d disagree: %+v vs %+v", i, a.PerCPU[i], g.PerCPU[i])
		}
	}
}

func TestLoadavgGatherer(t *testing.T) {
	fs := frozenFS()
	g, err := NewLoadavgGatherer(fs)
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	var l LoadStats
	if err := g.Gather(&l); err != nil {
		t.Fatal(err)
	}
	if l.Load1 != 0.20 || l.Load5 != 0.18 || l.Load15 != 0.12 {
		t.Errorf("loads = %v %v %v", l.Load1, l.Load5, l.Load15)
	}
	if l.Running != 1 || l.Total != 80 || l.LastPID != 11206 {
		t.Errorf("procs = %d/%d pid %d", l.Running, l.Total, l.LastPID)
	}
}

func TestUptimeGatherer(t *testing.T) {
	fs := frozenFS()
	g, err := NewUptimeGatherer(fs)
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	var u UptimeStats
	if err := g.Gather(&u); err != nil {
		t.Fatal(err)
	}
	if u.Uptime != 3017.41 || u.Idle != 2572.23 {
		t.Errorf("uptime = %v idle %v", u.Uptime, u.Idle)
	}
}

func TestNetDevGatherer(t *testing.T) {
	fs := frozenFS()
	g, err := NewNetDevGatherer(fs)
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	var n NetDevStats
	if err := g.Gather(&n); err != nil {
		t.Fatal(err)
	}
	if len(n.Ifaces) != 2 {
		t.Fatalf("ifaces = %d, want 2", len(n.Ifaces))
	}
	lo, eth := n.Ifaces[0], n.Ifaces[1]
	if lo.Name != "lo" || lo.RxBytes != 1_908_775 || lo.TxPackets != 12_345 {
		t.Errorf("lo = %+v", lo)
	}
	if eth.Name != "eth0" || eth.RxBytes != 814_558_563 || eth.TxBytes != 96_834_552 {
		t.Errorf("eth0 = %+v", eth)
	}
}

func TestGatherMissingFile(t *testing.T) {
	fs := procfs.NewFS()
	if _, err := NewKeepOpenMeminfo(fs); err == nil {
		t.Fatal("NewKeepOpenMeminfo on empty fs did not fail")
	}
	g := NewNaiveMeminfo(fs)
	var m MemStats
	if err := g.Gather(&m); err == nil {
		t.Fatal("naive gather on empty fs did not fail")
	}
}

func TestParseErrors(t *testing.T) {
	var m MemStats
	if err := parseMeminfoApriori([]byte("x\ny\nz\n"), &m); err == nil {
		t.Error("apriori accepted truncated meminfo")
	}
	if err := parseMeminfoGeneric([]byte("garbage\n"), &m); err == nil {
		t.Error("generic accepted garbage meminfo")
	}
	var c CPUStats
	if err := parseStatApriori([]byte("nope\n"), &c); err == nil {
		t.Error("apriori accepted garbage stat")
	}
	if err := parseStatGeneric([]byte("nope\n"), &c); err == nil {
		t.Error("generic accepted stat without cpu line")
	}
	var l LoadStats
	if err := parseLoadavgApriori([]byte(""), &l); err == nil {
		t.Error("accepted empty loadavg")
	}
	var u UptimeStats
	if err := parseUptimeApriori([]byte(""), &u); err == nil {
		t.Error("accepted empty uptime")
	}
	var nd NetDevStats
	if err := parseNetDevApriori([]byte("h1\nh2\n"), &nd); err == nil {
		t.Error("accepted net/dev without interfaces")
	}
	perr := &ParseError{File: "/proc/x", Detail: "boom"}
	if perr.Error() != "gather: parse /proc/x: boom" {
		t.Errorf("ParseError.Error() = %q", perr.Error())
	}
}

// Property: apriori and generic meminfo parsers agree on arbitrary rendered
// states — the format knowledge is an optimization, not a semantic change.
func TestPropertyMeminfoParsersAgree(t *testing.T) {
	f := func(free, buffers, cached uint32, active uint16) bool {
		s := procfs.BaselineStat()
		s.MemFree = uint64(free)
		if s.MemFree > s.MemTotal {
			s.MemFree = s.MemTotal
		}
		s.HighFree = 0
		s.Buffers = uint64(buffers)
		s.Cached = uint64(cached)
		s.Active = uint64(active) * 1024
		var buf bytes.Buffer
		procfs.RenderMeminfo(&buf, &s)
		var a, g MemStats
		if err := parseMeminfoApriori(buf.Bytes(), &a); err != nil {
			return false
		}
		if err := parseMeminfoGeneric(buf.Bytes(), &g); err != nil {
			return false
		}
		return a == g
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: parseFixedAt inverts two-decimal rendering for any
// non-negative centivalue.
func TestPropertyFixedPointRoundTrip(t *testing.T) {
	f := func(cent uint32) bool {
		v := float64(cent) / 100
		var buf bytes.Buffer
		s := procfs.BaselineStat()
		s.UptimeSec = v
		s.IdleSec = 0
		procfs.RenderUptime(&buf, &s)
		var u UptimeStats
		if err := parseUptimeApriori(buf.Bytes(), &u); err != nil {
			return false
		}
		diff := u.Uptime - v
		if diff < 0 {
			diff = -diff
		}
		return diff < 0.005
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// The in-package microbenchmarks; the paper-facing harness lives in the
// repository root bench_test.go.
func BenchmarkMeminfoNaive(b *testing.B) {
	fs := frozenFS()
	g := NewNaiveMeminfo(fs)
	var m MemStats
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := g.Gather(&m); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMeminfoKeepOpen(b *testing.B) {
	fs := frozenFS()
	g, err := NewKeepOpenMeminfo(fs)
	if err != nil {
		b.Fatal(err)
	}
	defer g.Close()
	var m MemStats
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := g.Gather(&m); err != nil {
			b.Fatal(err)
		}
	}
}
