package gather

import (
	"fmt"
	"testing"
	"time"

	"clusterworx/internal/procfs"
)

// fsWithIfaces builds a frozen /proc whose net/dev has n interfaces — the
// substrate for the paper's "21.6 µs per call per network device" claim.
func fsWithIfaces(n int) *procfs.FS {
	s := procfs.BaselineStat()
	s.Ifaces = nil
	for i := 0; i < n; i++ {
		s.Ifaces = append(s.Ifaces, procfs.IfaceStat{
			Name:    fmt.Sprintf("eth%d", i),
			RxBytes: uint64(i) * 1e6, RxPackets: uint64(i) * 1e3,
			TxBytes: uint64(i) * 5e5, TxPackets: uint64(i) * 500,
		})
	}
	fs := procfs.NewFS()
	procfs.RegisterStd(fs, func() *procfs.NodeStat { return &s })
	return fs
}

func TestNetDevParsesManyIfaces(t *testing.T) {
	for _, n := range []int{1, 4, 16} {
		fs := fsWithIfaces(n)
		g, err := NewNetDevGatherer(fs)
		if err != nil {
			t.Fatal(err)
		}
		var nd NetDevStats
		if err := g.Gather(&nd); err != nil {
			t.Fatalf("%d ifaces: %v", n, err)
		}
		if len(nd.Ifaces) != n {
			t.Fatalf("parsed %d of %d ifaces", len(nd.Ifaces), n)
		}
		for i, ifc := range nd.Ifaces {
			if ifc.Name != fmt.Sprintf("eth%d", i) || ifc.RxBytes != uint64(i)*1e6 {
				t.Fatalf("iface %d = %+v", i, ifc)
			}
		}
		g.Close()
	}
}

// The paper charges net/dev per device; measure that the per-call cost
// grows roughly linearly in the interface count (not quadratically, not
// flat).
func TestNetDevCostPerDevice(t *testing.T) {
	cost := func(n int) time.Duration {
		fs := fsWithIfaces(n)
		g, err := NewNetDevGatherer(fs)
		if err != nil {
			t.Fatal(err)
		}
		defer g.Close()
		var nd NetDevStats
		const iters = 3000
		start := time.Now()
		for i := 0; i < iters; i++ {
			if err := g.Gather(&nd); err != nil {
				t.Fatal(err)
			}
		}
		return time.Since(start) / iters
	}
	c2 := cost(2)
	c16 := cost(16)
	ratio := float64(c16) / float64(c2)
	// 8x the devices: expect several-fold growth, bounded well below
	// super-linear blowup. (There is a fixed header/open component, so the
	// ratio is below 8.)
	if ratio < 1.5 || ratio > 16 {
		t.Fatalf("2->16 ifaces cost ratio = %.1f (c2=%v c16=%v)", ratio, c2, c16)
	}
}
