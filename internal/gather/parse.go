package gather

import (
	"bytes"
	"fmt"
	"strconv"

	"clusterworx/internal/procfs"
)

// This file contains the two parser families the paper distinguishes:
//
//   - generic parsers (parseMeminfoGeneric, ...) scan the buffer line by
//     line, match field names, and convert with strconv — "parsing the data
//     within that buffer" with no format assumptions beyond name:value;
//   - a-priori parsers (parseMeminfoApriori, ...) exploit the exact known
//     line order and layout of the 2.4 formats, skipping straight to the
//     digits of each expected field (+236 % in the paper).

// --- low-level byte scanning ---------------------------------------------

// skipLine advances i past the next '\n'.
func skipLine(b []byte, i int) int {
	for i < len(b) && b[i] != '\n' {
		i++
	}
	if i < len(b) {
		i++
	}
	return i
}

// skipToDigit advances i to the next ASCII digit.
func skipToDigit(b []byte, i int) int {
	for i < len(b) && (b[i] < '0' || b[i] > '9') {
		i++
	}
	return i
}

// parseUintAt parses a decimal run starting at i, returning the value and
// the index one past it.
func parseUintAt(b []byte, i int) (uint64, int) {
	var v uint64
	for i < len(b) && b[i] >= '0' && b[i] <= '9' {
		v = v*10 + uint64(b[i]-'0')
		i++
	}
	return v, i
}

// parseFixedAt parses "int.frac" as a float64 starting at i.
func parseFixedAt(b []byte, i int) (float64, int) {
	whole, i := parseUintAt(b, i)
	if i >= len(b) || b[i] != '.' {
		return float64(whole), i
	}
	i++
	start := i
	frac, i := parseUintAt(b, i)
	scale := 1.0
	for n := i - start; n > 0; n-- {
		scale *= 10
	}
	return float64(whole) + float64(frac)/scale, i
}

// nextDigitValue is the a-priori inner loop: skip to the next digit run and
// parse it.
func nextDigitValue(b []byte, i int) (uint64, int) {
	i = skipToDigit(b, i)
	return parseUintAt(b, i)
}

// --- meminfo ---------------------------------------------------------------

// meminfoFieldCount is the number of kB lines in the 2.4 format.
const meminfoFieldCount = 14

// parseMeminfoApriori decodes the 2.4 /proc/meminfo with full knowledge of
// its layout: three header lines, then fourteen "Name: value kB" lines in
// fixed order.
func parseMeminfoApriori(b []byte, out *MemStats) error {
	i := 0
	for l := 0; l < 3; l++ { // header table: "total: used: ...", Mem:, Swap:
		i = skipLine(b, i)
	}
	var v [meminfoFieldCount]uint64
	for f := 0; f < meminfoFieldCount; f++ {
		if i >= len(b) {
			return &ParseError{File: "/proc/meminfo", Detail: "truncated kB block"}
		}
		v[f], i = nextDigitValue(b, i)
		i = skipLine(b, i)
	}
	out.MemTotal, out.MemFree, out.MemShared = v[0], v[1], v[2]
	out.Buffers, out.Cached, out.SwapCached = v[3], v[4], v[5]
	out.Active, out.Inactive = v[6], v[7]
	// v[8..11] are HighTotal/HighFree/LowTotal/LowFree, not monitored.
	out.SwapTotal, out.SwapFree = v[12], v[13]
	return nil
}

// parseMeminfoGeneric decodes /proc/meminfo by scanning for known field
// names, tolerating reordered or missing lines.
func parseMeminfoGeneric(b []byte, out *MemStats) error {
	found := 0
	for len(b) > 0 {
		line := b
		if nl := bytes.IndexByte(b, '\n'); nl >= 0 {
			line, b = b[:nl], b[nl+1:]
		} else {
			b = nil
		}
		colon := bytes.IndexByte(line, ':')
		if colon <= 0 {
			continue
		}
		name := string(line[:colon])
		var dst *uint64
		switch name {
		case "MemTotal":
			dst = &out.MemTotal
		case "MemFree":
			dst = &out.MemFree
		case "MemShared":
			dst = &out.MemShared
		case "Buffers":
			dst = &out.Buffers
		case "Cached":
			dst = &out.Cached
		case "SwapCached":
			dst = &out.SwapCached
		case "Active":
			dst = &out.Active
		case "Inactive":
			dst = &out.Inactive
		case "SwapTotal":
			dst = &out.SwapTotal
		case "SwapFree":
			dst = &out.SwapFree
		default:
			continue
		}
		fields := bytes.Fields(line[colon+1:])
		if len(fields) == 0 {
			return &ParseError{File: "/proc/meminfo", Detail: "no value for " + name}
		}
		v, err := strconv.ParseUint(string(fields[0]), 10, 64)
		if err != nil {
			return &ParseError{File: "/proc/meminfo", Detail: "bad value for " + name + ": " + err.Error()}
		}
		*dst = v
		found++
	}
	if found < 10 {
		return &ParseError{File: "/proc/meminfo", Detail: "missing fields"}
	}
	return nil
}

// --- stat ------------------------------------------------------------------

// parseStatApriori decodes the 2.4 /proc/stat layout: aggregate cpu line,
// per-cpu lines, page, swap, intr, optional disk_io, ctxt, btime, processes.
func parseStatApriori(b []byte, out *CPUStats) error {
	i := 0
	if len(b) < 4 || b[0] != 'c' || b[1] != 'p' || b[2] != 'u' {
		return &ParseError{File: "/proc/stat", Detail: "missing cpu line"}
	}
	i = 4 // past "cpu "
	out.Total.User, i = nextDigitValue(b, i)
	out.Total.Nice, i = nextDigitValue(b, i)
	out.Total.System, i = nextDigitValue(b, i)
	out.Total.Idle, i = nextDigitValue(b, i)
	i = skipLine(b, i)

	out.PerCPU = out.PerCPU[:0]
	for i+3 < len(b) && b[i] == 'c' && b[i+1] == 'p' && b[i+2] == 'u' {
		var c procfs.CPUJiffies
		i += 3
		_, i = parseUintAt(b, skipToDigit(b, i)) // cpu index
		c.User, i = nextDigitValue(b, i)
		c.Nice, i = nextDigitValue(b, i)
		c.System, i = nextDigitValue(b, i)
		c.Idle, i = nextDigitValue(b, i)
		i = skipLine(b, i)
		out.PerCPU = append(out.PerCPU, c)
	}

	// page, swap, intr: first number after each keyword.
	out.PageIn, i = nextDigitValue(b, i)
	out.PageOut, i = parseUintAt(b, skipToDigit(b, i))
	i = skipLine(b, i)
	out.SwapIn, i = nextDigitValue(b, i)
	out.SwapOut, i = parseUintAt(b, skipToDigit(b, i))
	i = skipLine(b, i)
	out.Interrupts, i = nextDigitValue(b, i)
	i = skipLine(b, i)

	// Optional disk_io line — "(maj,min):(io,rio,rsect,wio,wsect)" per
	// disk — then ctxt/btime/processes.
	out.Disks = out.Disks[:0]
	if i < len(b) && b[i] == 'd' {
		j := i
		end := skipLine(b, i)
		for {
			j = skipToDigit(b, j)
			if j >= end-1 {
				break
			}
			var d DiskCounters
			var v uint64
			v, j = parseUintAt(b, j)
			d.Major = int(v)
			v, j = nextDigitValue(b, j)
			d.Minor = int(v)
			d.IO, j = nextDigitValue(b, j)
			d.ReadIO, j = nextDigitValue(b, j)
			d.ReadSectors, j = nextDigitValue(b, j)
			d.WriteIO, j = nextDigitValue(b, j)
			d.WriteSectors, j = nextDigitValue(b, j)
			out.Disks = append(out.Disks, d)
		}
		i = end
	}
	out.ContextSwitches, i = nextDigitValue(b, i)
	i = skipLine(b, i)
	out.BootTime, i = nextDigitValue(b, i)
	i = skipLine(b, i)
	out.Processes, _ = nextDigitValue(b, i)
	return nil
}

// parseStatGeneric decodes /proc/stat by keyword lookup per line.
func parseStatGeneric(b []byte, out *CPUStats) error {
	out.PerCPU = out.PerCPU[:0]
	out.Disks = out.Disks[:0]
	sawCPU := false
	for len(b) > 0 {
		line := b
		if nl := bytes.IndexByte(b, '\n'); nl >= 0 {
			line, b = b[:nl], b[nl+1:]
		} else {
			b = nil
		}
		fields := bytes.Fields(line)
		if len(fields) == 0 {
			continue
		}
		key := string(fields[0])
		switch {
		case key == "cpu":
			if len(fields) < 5 {
				return &ParseError{File: "/proc/stat", Detail: "short cpu line"}
			}
			out.Total.User = mustU(fields[1])
			out.Total.Nice = mustU(fields[2])
			out.Total.System = mustU(fields[3])
			out.Total.Idle = mustU(fields[4])
			sawCPU = true
		case len(key) > 3 && key[:3] == "cpu":
			if len(fields) < 5 {
				return &ParseError{File: "/proc/stat", Detail: "short percpu line"}
			}
			out.PerCPU = append(out.PerCPU, procfs.CPUJiffies{
				User: mustU(fields[1]), Nice: mustU(fields[2]),
				System: mustU(fields[3]), Idle: mustU(fields[4]),
			})
		case key == "page" && len(fields) >= 3:
			out.PageIn, out.PageOut = mustU(fields[1]), mustU(fields[2])
		case key == "swap" && len(fields) >= 3:
			out.SwapIn, out.SwapOut = mustU(fields[1]), mustU(fields[2])
		case key == "intr" && len(fields) >= 2:
			out.Interrupts = mustU(fields[1])
		case key == "ctxt" && len(fields) >= 2:
			out.ContextSwitches = mustU(fields[1])
		case key == "btime" && len(fields) >= 2:
			out.BootTime = mustU(fields[1])
		case key == "processes" && len(fields) >= 2:
			out.Processes = mustU(fields[1])
		case key == "disk_io:":
			for _, tok := range fields[1:] {
				var d DiskCounters
				if _, err := fmt.Sscanf(string(tok), "(%d,%d):(%d,%d,%d,%d,%d)",
					&d.Major, &d.Minor, &d.IO, &d.ReadIO, &d.ReadSectors, &d.WriteIO, &d.WriteSectors); err == nil {
					out.Disks = append(out.Disks, d)
				}
			}
		}
	}
	if !sawCPU {
		return &ParseError{File: "/proc/stat", Detail: "missing cpu line"}
	}
	return nil
}

func mustU(b []byte) uint64 {
	v, _ := strconv.ParseUint(string(b), 10, 64)
	return v
}

// --- loadavg ----------------------------------------------------------------

func parseLoadavgApriori(b []byte, out *LoadStats) error {
	if len(b) < 9 {
		return &ParseError{File: "/proc/loadavg", Detail: "truncated"}
	}
	i := 0
	out.Load1, i = parseFixedAt(b, i)
	out.Load5, i = parseFixedAt(b, i+1)
	out.Load15, i = parseFixedAt(b, i+1)
	var v uint64
	v, i = nextDigitValue(b, i)
	out.Running = int(v)
	v, i = parseUintAt(b, i+1) // past '/'
	out.Total = int(v)
	v, _ = nextDigitValue(b, i)
	out.LastPID = int(v)
	return nil
}

// --- uptime -----------------------------------------------------------------

func parseUptimeApriori(b []byte, out *UptimeStats) error {
	if len(b) < 3 {
		return &ParseError{File: "/proc/uptime", Detail: "truncated"}
	}
	i := 0
	out.Uptime, i = parseFixedAt(b, i)
	if i >= len(b) {
		return &ParseError{File: "/proc/uptime", Detail: "missing idle"}
	}
	out.Idle, _ = parseFixedAt(b, i+1)
	return nil
}

// --- net/dev ----------------------------------------------------------------

// parseNetDevApriori decodes /proc/net/dev: two header lines, then one row
// per interface with sixteen counters in fixed positions.
func parseNetDevApriori(b []byte, out *NetDevStats) error {
	i := skipLine(b, 0)
	i = skipLine(b, i)
	out.Ifaces = out.Ifaces[:0]
	for i < len(b) {
		// Interface name: spaces, name, ':'.
		for i < len(b) && b[i] == ' ' {
			i++
		}
		start := i
		for i < len(b) && b[i] != ':' {
			i++
		}
		if i >= len(b) {
			break
		}
		var c IfaceCounters
		c.Name = string(b[start:i])
		i++ // past ':'
		c.RxBytes, i = nextDigitValue(b, i)
		c.RxPackets, i = nextDigitValue(b, i)
		c.RxErrs, i = nextDigitValue(b, i)
		c.RxDrop, i = nextDigitValue(b, i)
		_, i = nextDigitValue(b, i) // fifo
		_, i = nextDigitValue(b, i) // frame
		_, i = nextDigitValue(b, i) // compressed
		_, i = nextDigitValue(b, i) // multicast
		c.TxBytes, i = nextDigitValue(b, i)
		c.TxPackets, i = nextDigitValue(b, i)
		c.TxErrs, i = nextDigitValue(b, i)
		c.TxDrop, i = nextDigitValue(b, i)
		_, i = nextDigitValue(b, i) // fifo
		_, i = nextDigitValue(b, i) // colls
		_, i = nextDigitValue(b, i) // carrier
		_, i = nextDigitValue(b, i) // compressed
		i = skipLine(b, i)
		out.Ifaces = append(out.Ifaces, c)
	}
	if len(out.Ifaces) == 0 {
		return &ParseError{File: "/proc/net/dev", Detail: "no interfaces"}
	}
	return nil
}
