// Package dashboard renders the ClusterWorX GUI's views as text: the main
// monitoring screen and the historical graphs (§5.1 — "historical graphing
// allows the administrator to chart monitoring values over time ...
// analyze the relationships between monitored values, or compare
// performance between nodes"). The original product drew these in a Java
// client; the terminal client renders the same data as aligned tables and
// braille-free ASCII charts, keeping the server API identical.
package dashboard

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"time"

	"clusterworx/internal/history"
)

// Chart renders a time series as an ASCII line chart of the given
// dimensions (columns × rows of plot area, plus axes). Points are
// bucket-averaged to the width.
func Chart(s *history.Series, t0, t1 time.Duration, width, height int) string {
	if width < 8 {
		width = 8
	}
	if height < 3 {
		height = 3
	}
	pts := s.Downsample(t0, t1, width)
	if len(pts) == 0 {
		return "(no data)\n"
	}
	lo, hi := pts[0].V, pts[0].V
	for _, p := range pts {
		lo = math.Min(lo, p.V)
		hi = math.Max(hi, p.V)
	}
	if hi == lo {
		hi = lo + 1 // flat line: give it one row of headroom
	}

	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	col := make(map[int]int, len(pts)) // column -> row, for connecting strokes
	span := t1 - t0
	for _, p := range pts {
		c := int(float64(p.T-t0) / float64(span) * float64(width))
		if c >= width {
			c = width - 1
		}
		r := int((p.V - lo) / (hi - lo) * float64(height-1))
		row := height - 1 - r
		grid[row][c] = '*'
		col[c] = row
	}
	// Vertical strokes between adjacent plotted columns.
	cols := make([]int, 0, len(col))
	for c := range col {
		cols = append(cols, c)
	}
	sort.Ints(cols)
	for i := 1; i < len(cols); i++ {
		a, b := cols[i-1], cols[i]
		ra, rb := col[a], col[b]
		if ra == rb {
			continue
		}
		step := 1
		if rb < ra {
			step = -1
		}
		for r := ra + step; r != rb; r += step {
			if grid[r][b] == ' ' {
				grid[r][b] = '|'
			}
		}
	}

	var out strings.Builder
	label0 := fmt.Sprintf("%.4g", hi)
	label1 := fmt.Sprintf("%.4g", lo)
	pad := len(label0)
	if len(label1) > pad {
		pad = len(label1)
	}
	for r := 0; r < height; r++ {
		switch r {
		case 0:
			fmt.Fprintf(&out, "%*s |", pad, label0)
		case height - 1:
			fmt.Fprintf(&out, "%*s |", pad, label1)
		default:
			fmt.Fprintf(&out, "%*s |", pad, "")
		}
		out.Write(grid[r])
		out.WriteByte('\n')
	}
	fmt.Fprintf(&out, "%*s +%s\n", pad, "", strings.Repeat("-", width))
	fmt.Fprintf(&out, "%*s  %-*s%s\n", pad, "", width-len(fmtT(t1)), fmtT(t0), fmtT(t1))
	return out.String()
}

// Sparkline renders a compact one-line view of a series using eight block
// levels, for the status screen.
func Sparkline(s *history.Series, t0, t1 time.Duration, width int) string {
	levels := []rune("▁▂▃▄▅▆▇█")
	pts := s.Downsample(t0, t1, width)
	if len(pts) == 0 {
		return ""
	}
	lo, hi := pts[0].V, pts[0].V
	for _, p := range pts {
		lo = math.Min(lo, p.V)
		hi = math.Max(hi, p.V)
	}
	var out strings.Builder
	for _, p := range pts {
		idx := 0
		if hi > lo {
			idx = int((p.V - lo) / (hi - lo) * float64(len(levels)-1))
		}
		out.WriteRune(levels[idx])
	}
	return out.String()
}

// CompareNodes renders the §5.1 "compare performance between nodes" view:
// per-node min/mean/max of one metric over a range, with a mean bar.
//
// Diffable-view contract: each output line leads with a stable key (the
// node name; "node" for the header) and surviving keys keep their
// relative order between renderings — rows are name-sorted. The serving
// plane's watch streams rely on this to push change-only line diffs
// (serve.Diff); reordering or re-keying these lines breaks them.
func CompareNodes(store *history.Store, metric string, t0, t1 time.Duration, barWidth int) string {
	stats := store.Compare(metric, t0, t1)
	if len(stats) == 0 {
		return "(no data)\n"
	}
	names := make([]string, 0, len(stats))
	globalMax := 0.0
	for name, st := range stats {
		if st.N == 0 {
			continue
		}
		names = append(names, name)
		globalMax = math.Max(globalMax, st.Max)
	}
	sort.Strings(names)
	if globalMax == 0 {
		globalMax = 1
	}
	var out strings.Builder
	fmt.Fprintf(&out, "%-12s %8s %8s %8s  %s\n", "node", "min", "mean", "max", metric)
	for _, name := range names {
		st := stats[name]
		bar := int(st.Mean / globalMax * float64(barWidth))
		fmt.Fprintf(&out, "%-12s %8.2f %8.2f %8.2f  %s\n",
			name, st.Min, st.Mean, st.Max, strings.Repeat("#", bar))
	}
	return out.String()
}

// Correlate renders the §5.1 "analyze the relationships between monitored
// values" view: the Pearson correlation of two metrics on one node over
// aligned buckets.
func Correlate(store *history.Store, nodeName, metricA, metricB string, t0, t1 time.Duration) (float64, error) {
	sa := store.Series(nodeName, metricA)
	sb := store.Series(nodeName, metricB)
	if sa == nil || sb == nil {
		return 0, fmt.Errorf("dashboard: missing history for %s/%s on %s", metricA, metricB, nodeName)
	}
	const buckets = 64
	pa := sa.Downsample(t0, t1, buckets)
	pb := sb.Downsample(t0, t1, buckets)
	// Align on bucket timestamps present in both.
	bv := make(map[time.Duration]float64, len(pb))
	for _, p := range pb {
		bv[p.T] = p.V
	}
	var xs, ys []float64
	for _, p := range pa {
		if v, ok := bv[p.T]; ok {
			xs = append(xs, p.V)
			ys = append(ys, v)
		}
	}
	if len(xs) < 3 {
		return 0, fmt.Errorf("dashboard: only %d aligned samples", len(xs))
	}
	return pearson(xs, ys)
}

func pearson(xs, ys []float64) (float64, error) {
	n := float64(len(xs))
	var sx, sy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
	}
	mx, my := sx/n, sy/n
	var sxy, sxx, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0, fmt.Errorf("dashboard: a series is constant; correlation undefined")
	}
	return sxy / math.Sqrt(sxx*syy), nil
}

func fmtT(d time.Duration) string {
	return d.Round(time.Second).String()
}

// HistoryFootprint renders the history engine's memory ledger: per-series
// point counts, compressed bytes, and bytes/sample, largest first, with a
// cluster total line that states the compression ratio against the naive
// 16 bytes/sample ring the engine replaced. This is the administrator's
// answer to "what does keeping N days of history actually cost".
func HistoryFootprint(store *history.Store, maxRows int) string {
	type row struct {
		node, metric string
		points       int
		bytes        int64
	}
	var rows []row
	var totalPoints int
	var totalBytes int64
	for _, nodeName := range store.Nodes() {
		for _, metric := range store.Metrics(nodeName) {
			s := store.Series(nodeName, metric)
			if s == nil {
				continue
			}
			r := row{node: nodeName, metric: metric, points: s.Len(), bytes: s.Bytes()}
			rows = append(rows, r)
			totalPoints += r.points
			totalBytes += r.bytes
		}
	}
	if len(rows) == 0 {
		return "(no data)\n"
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].bytes != rows[j].bytes {
			return rows[i].bytes > rows[j].bytes
		}
		if rows[i].node != rows[j].node {
			return rows[i].node < rows[j].node
		}
		return rows[i].metric < rows[j].metric
	})
	shown := rows
	if maxRows > 0 && len(shown) > maxRows {
		shown = shown[:maxRows]
	}
	var out strings.Builder
	fmt.Fprintf(&out, "%-12s %-20s %8s %10s %9s\n", "node", "metric", "points", "bytes", "B/sample")
	for _, r := range shown {
		per := 0.0
		if r.points > 0 {
			per = float64(r.bytes) / float64(r.points)
		}
		fmt.Fprintf(&out, "%-12s %-20s %8d %10d %9.2f\n", r.node, r.metric, r.points, r.bytes, per)
	}
	if len(shown) < len(rows) {
		fmt.Fprintf(&out, "... and %d more series\n", len(rows)-len(shown))
	}
	if totalPoints > 0 {
		per := float64(totalBytes) / float64(totalPoints)
		naive := float64(totalPoints) * 16
		ratio := 1.0
		if totalBytes > 0 {
			ratio = naive / float64(totalBytes)
		}
		fmt.Fprintf(&out, "total: %d series, %d points, %d bytes (%.2f B/sample, %.1fx vs raw ring)\n",
			len(rows), totalPoints, totalBytes, per, ratio)
	}
	return out.String()
}

// Efficiency computes cluster utilization over a window — the paper's
// introduction lists "cluster efficiency" first among the administrator's
// concerns. It is derived from each node's cpu.idle.pct history: a node's
// efficiency is 100 − mean(idle%), the cluster's is the mean over nodes
// with data.
func Efficiency(store *history.Store, t0, t1 time.Duration) (cluster float64, perNode map[string]float64) {
	perNode = make(map[string]float64)
	stats := store.Compare("cpu.idle.pct", t0, t1)
	var sum float64
	for nodeName, st := range stats {
		if st.N == 0 {
			continue
		}
		eff := 100 - st.Mean
		if eff < 0 {
			eff = 0
		}
		perNode[nodeName] = eff
		sum += eff
	}
	if len(perNode) > 0 {
		cluster = sum / float64(len(perNode))
	}
	return cluster, perNode
}

// EfficiencyReport renders Efficiency as the administrator's view: cluster
// total plus a per-node bar list, busiest first.
func EfficiencyReport(store *history.Store, t0, t1 time.Duration, barWidth int) string {
	cluster, perNode := Efficiency(store, t0, t1)
	if len(perNode) == 0 {
		return "(no data)\n"
	}
	names := make([]string, 0, len(perNode))
	for n := range perNode {
		names = append(names, n)
	}
	// Ranked by efficiency, not by name: this view is deliberately NOT
	// key-stable between renderings, so watch streams push it wholesale
	// (REFRESH) instead of as line diffs.
	sort.Slice(names, func(i, j int) bool {
		if perNode[names[i]] != perNode[names[j]] {
			return perNode[names[i]] > perNode[names[j]]
		}
		return names[i] < names[j]
	})
	var out strings.Builder
	fmt.Fprintf(&out, "cluster efficiency: %.1f%% over %s..%s\n", cluster, fmtT(t0), fmtT(t1))
	for _, n := range names {
		bar := int(perNode[n] / 100 * float64(barWidth))
		fmt.Fprintf(&out, "%-12s %5.1f%%  %s\n", n, perNode[n], strings.Repeat("#", bar))
	}
	return out.String()
}
