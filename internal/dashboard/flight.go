package dashboard

import (
	"fmt"
	"strings"
	"time"

	"clusterworx/internal/flight"
	"clusterworx/internal/telemetry"
)

// FlightPanel renders flight-recorder records, one per line, in the
// order given (the journal verb passes cursor order; the flight verb
// passes pipeline order). Diffable-view contract: each line leads with
// a stable key — the zero-padded global sequence number, unique for the
// life of the process — so the serving plane's watch streams can diff
// the journal like any other view.
func FlightPanel(recs []flight.Record) string {
	if len(recs) == 0 {
		return "(journal empty)\n"
	}
	var b strings.Builder
	for _, r := range recs {
		writeFlightLine(&b, r)
	}
	return b.String()
}

// writeFlightLine renders one record:
//
//	000000000017 12.000s node001 stage:ingest dur=41µs size=24 trace=a1b2...
//	000000000018 12.000s node001 gap seq 4->7
func writeFlightLine(b *strings.Builder, r flight.Record) {
	fmt.Fprintf(b, "%012d %9s %-12s", r.Seq, flightTime(r.TimeNs), flightName(r))
	switch r.Kind {
	case flight.KindStage:
		fmt.Fprintf(b, " %-17s dur=%-8s size=%d", "stage:"+telemetry.Stage(r.Stage).String(), flightDur(r.A), r.B)
	case flight.KindGap, flight.KindRegression:
		fmt.Fprintf(b, " %-17s seq %d->%d", r.Kind, r.A, r.B)
	case flight.KindResyncSnap:
		cause := "anti-entropy"
		if r.B != 0 {
			cause = "requested"
		}
		fmt.Fprintf(b, " %-17s values=%d (%s)", r.Kind, r.A, cause)
	case flight.KindSnapApplied, flight.KindRetransmit:
		fmt.Fprintf(b, " %-17s values=%d", r.Kind, r.A)
	case flight.KindSendFail, flight.KindBank:
		fmt.Fprintf(b, " %-17s values=%d fails=%d", r.Kind, r.A, r.B)
	case flight.KindEventFired:
		fmt.Fprintf(b, " %-17s rule=%s value=%d", r.Kind, r.Detail, r.A)
	case flight.KindNotifyRetry:
		fmt.Fprintf(b, " %-17s rule=%s attempts=%d", r.Kind, r.Detail, r.A)
	case flight.KindGateRebuild, flight.KindWatchResync:
		fmt.Fprintf(b, " %-17s %s", r.Kind, r.Detail)
	default:
		fmt.Fprintf(b, " %-17s a=%d b=%d", r.Kind, r.A, r.B)
	}
	if r.Trace != 0 {
		fmt.Fprintf(b, " trace=%s", flight.FormatTrace(r.Trace))
	}
	b.WriteByte('\n')
}

// flightName is the node column; control-plane records (gate rebuilds,
// watch resyncs) have no node and render a dash.
func flightName(r flight.Record) string {
	if r.Node == "" {
		return "-"
	}
	return r.Node
}

// flightTime renders a journal timestamp (virtual-clock nanoseconds;
// 0 means the recording component has no clock).
func flightTime(ns int64) string {
	if ns == 0 {
		return "-"
	}
	return fmt.Sprintf("%.3fs", time.Duration(ns).Seconds())
}

// flightDur renders a stage-hop duration in compact form.
func flightDur(ns int64) string {
	d := time.Duration(ns)
	switch {
	case d == 0:
		return "0"
	case d < time.Millisecond:
		return fmt.Sprintf("%.1fµs", float64(d)/float64(time.Microsecond))
	case d < time.Second:
		return fmt.Sprintf("%.2fms", float64(d)/float64(time.Millisecond))
	default:
		return fmt.Sprintf("%.3fs", d.Seconds())
	}
}
