package dashboard

import (
	"math"
	"strings"
	"testing"
	"time"

	"clusterworx/internal/history"
)

func rampSeries(n int) *history.Series {
	s := history.NewSeries(256)
	for i := 0; i < n; i++ {
		s.Append(time.Duration(i)*time.Second, float64(i))
	}
	return s
}

func TestChartBasics(t *testing.T) {
	s := rampSeries(100)
	out := Chart(s, 0, 100*time.Second, 40, 10)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// 10 plot rows + axis + time labels.
	if len(lines) != 12 {
		t.Fatalf("chart has %d lines:\n%s", len(lines), out)
	}
	if !strings.Contains(out, "*") {
		t.Fatal("chart has no points")
	}
	// A rising ramp: the first plot row (max) has a point near the right,
	// the last (min) near the left.
	top, bottom := lines[0], lines[9]
	if !strings.Contains(top, "*") || !strings.Contains(bottom, "*") {
		t.Fatalf("extremes not plotted:\n%s", out)
	}
	if strings.Index(bottom, "*") > strings.Index(top, "*") {
		t.Fatalf("ramp plotted downward:\n%s", out)
	}
	// Labels show the (bucket-averaged) range: hi on top, lo on bottom.
	if !strings.Contains(lines[0], "98") || !strings.HasSuffix(strings.Fields(lines[9])[0], "1") {
		t.Fatalf("labels missing:\n%s", out)
	}
	if !strings.Contains(lines[11], "0s") {
		t.Fatalf("time axis missing:\n%s", out)
	}
}

func TestChartEmptyAndFlat(t *testing.T) {
	empty := history.NewSeries(8)
	if got := Chart(empty, 0, time.Minute, 20, 5); got != "(no data)\n" {
		t.Fatalf("empty chart = %q", got)
	}
	flat := history.NewSeries(8)
	for i := 0; i < 5; i++ {
		flat.Append(time.Duration(i)*time.Second, 7)
	}
	out := Chart(flat, 0, 5*time.Second, 20, 5)
	if !strings.Contains(out, "*") {
		t.Fatalf("flat chart lost its points:\n%s", out)
	}
}

func TestChartMinimumDimensions(t *testing.T) {
	s := rampSeries(10)
	out := Chart(s, 0, 10*time.Second, 1, 1) // clamped up
	if len(out) == 0 {
		t.Fatal("degenerate dimensions produced nothing")
	}
}

func TestSparkline(t *testing.T) {
	s := rampSeries(80)
	spark := Sparkline(s, 0, 80*time.Second, 8)
	if len([]rune(spark)) != 8 {
		t.Fatalf("sparkline runes = %d: %q", len([]rune(spark)), spark)
	}
	runes := []rune(spark)
	if runes[0] != '▁' || runes[7] != '█' {
		t.Fatalf("ramp sparkline ends = %q", spark)
	}
	if Sparkline(history.NewSeries(4), 0, time.Second, 8) != "" {
		t.Fatal("empty sparkline not empty")
	}
}

func TestCompareNodes(t *testing.T) {
	store := history.NewStore(64)
	for i := 0; i < 50; i++ {
		ts := time.Duration(i) * time.Second
		store.Append("busy", "load.1", ts, 4.0)
		store.Append("idle", "load.1", ts, 0.5)
	}
	out := CompareNodes(store, "load.1", 0, time.Minute, 20)
	if !strings.Contains(out, "busy") || !strings.Contains(out, "idle") {
		t.Fatalf("compare missing nodes:\n%s", out)
	}
	// The busy node's bar must be longer.
	var busyBar, idleBar int
	for _, line := range strings.Split(out, "\n") {
		n := strings.Count(line, "#")
		if strings.HasPrefix(line, "busy") {
			busyBar = n
		}
		if strings.HasPrefix(line, "idle") {
			idleBar = n
		}
	}
	if busyBar <= idleBar {
		t.Fatalf("bars wrong: busy=%d idle=%d\n%s", busyBar, idleBar, out)
	}
	if got := CompareNodes(store, "nothere", 0, time.Minute, 20); got != "(no data)\n" {
		t.Fatalf("missing metric = %q", got)
	}
}

func TestCorrelate(t *testing.T) {
	store := history.NewStore(256)
	for i := 0; i < 120; i++ {
		ts := time.Duration(i) * time.Second
		x := float64(i % 30)
		store.Append("n1", "load.1", ts, x)
		store.Append("n1", "temp", ts, 40+2*x) // perfectly correlated
		store.Append("n1", "free", ts, 100-x)  // perfectly anti-correlated
		store.Append("n1", "flat", ts, 5)      // constant
	}
	r, err := Correlate(store, "n1", "load.1", "temp", 0, 2*time.Minute)
	if err != nil || math.Abs(r-1) > 0.01 {
		t.Fatalf("positive correlation = %v, %v", r, err)
	}
	r, err = Correlate(store, "n1", "load.1", "free", 0, 2*time.Minute)
	if err != nil || math.Abs(r+1) > 0.01 {
		t.Fatalf("negative correlation = %v, %v", r, err)
	}
	if _, err := Correlate(store, "n1", "load.1", "flat", 0, 2*time.Minute); err == nil {
		t.Fatal("constant series correlation did not error")
	}
	if _, err := Correlate(store, "n1", "load.1", "ghost", 0, 2*time.Minute); err == nil {
		t.Fatal("missing series correlation did not error")
	}
	if _, err := Correlate(store, "ghost", "a", "b", 0, time.Minute); err == nil {
		t.Fatal("missing node correlation did not error")
	}
}

func TestEfficiency(t *testing.T) {
	store := history.NewStore(64)
	for i := 0; i < 30; i++ {
		ts := time.Duration(i) * time.Second
		store.Append("busy", "cpu.idle.pct", ts, 10) // 90% efficient
		store.Append("idle", "cpu.idle.pct", ts, 95) // 5% efficient
	}
	cluster, perNode := Efficiency(store, 0, time.Minute)
	if math.Abs(perNode["busy"]-90) > 0.01 || math.Abs(perNode["idle"]-5) > 0.01 {
		t.Fatalf("perNode = %v", perNode)
	}
	if math.Abs(cluster-47.5) > 0.01 {
		t.Fatalf("cluster = %v", cluster)
	}
	report := EfficiencyReport(store, 0, time.Minute, 20)
	if !strings.Contains(report, "cluster efficiency: 47.5%") {
		t.Fatalf("report:\n%s", report)
	}
	// Busiest first.
	if strings.Index(report, "busy") > strings.Index(report, "idle") {
		t.Fatalf("ordering wrong:\n%s", report)
	}
	if got := EfficiencyReport(history.NewStore(4), 0, time.Minute, 10); got != "(no data)\n" {
		t.Fatalf("empty report = %q", got)
	}
}

func TestHistoryFootprint(t *testing.T) {
	store := history.NewStore(0)
	for i := 0; i < 2000; i++ {
		ts := time.Duration(i) * time.Second
		store.Append("node000", "load.1", ts, float64(i%8))
		store.Append("node000", "mem.free.kb", ts, 1e6)
		store.Append("node001", "load.1", ts, 0.5)
	}
	out := HistoryFootprint(store, 0)
	for _, want := range []string{"node000", "node001", "load.1", "mem.free.kb", "B/sample", "total:", "vs raw ring"} {
		if !strings.Contains(out, want) {
			t.Fatalf("footprint missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 1+3+1 { // header + three series + total
		t.Fatalf("footprint has %d lines:\n%s", len(lines), out)
	}
	// Rows are ordered largest-bytes first; totals reconcile with the store.
	if !strings.HasPrefix(lines[len(lines)-1], "total: 3 series, 6000 points") {
		t.Fatalf("total line: %q", lines[len(lines)-1])
	}
	truncated := HistoryFootprint(store, 1)
	if !strings.Contains(truncated, "and 2 more series") {
		t.Fatalf("maxRows=1 did not truncate:\n%s", truncated)
	}
	if out := HistoryFootprint(history.NewStore(0), 5); out != "(no data)\n" {
		t.Fatalf("empty store: %q", out)
	}
}
