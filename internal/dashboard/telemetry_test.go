package dashboard

import (
	"strings"
	"testing"
	"time"

	"clusterworx/internal/history"
)

// TestChartSinglePoint pins the degenerate-series behavior: one sample
// must render (flat-line headroom kicks in), not panic or go blank.
func TestChartSinglePoint(t *testing.T) {
	s := history.NewSeries(8)
	s.Append(10*time.Second, 42)
	out := Chart(s, 0, time.Minute, 30, 6)
	if out == "(no data)\n" {
		t.Fatal("single point rendered as no data")
	}
	if strings.Count(out, "*") != 1 {
		t.Fatalf("single point plotted %d stars:\n%s", strings.Count(out, "*"), out)
	}
	if !strings.Contains(out, "42") {
		t.Fatalf("value label missing:\n%s", out)
	}
}

// TestChartClampsDimensions verifies width and height are clamped to the
// documented minimums (8×3) rather than producing degenerate grids, and
// that zero and negative requests behave like tiny ones.
func TestChartClampsDimensions(t *testing.T) {
	s := history.NewSeries(32)
	for i := 0; i < 20; i++ {
		s.Append(time.Duration(i)*time.Second, float64(i))
	}
	for _, dims := range [][2]int{{0, 0}, {-5, -5}, {1, 1}, {7, 2}} {
		out := Chart(s, 0, 20*time.Second, dims[0], dims[1])
		lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
		// 3 plot rows minimum + axis + time labels.
		if len(lines) < 5 {
			t.Fatalf("Chart(%d,%d) has %d lines:\n%s", dims[0], dims[1], len(lines), out)
		}
		axis := lines[len(lines)-2]
		if !strings.Contains(axis, strings.Repeat("-", 8)) {
			t.Fatalf("Chart(%d,%d) axis narrower than clamp:\n%s", dims[0], dims[1], out)
		}
	}
}

// TestChartFlatLinePlacement pins where a flat series lands: with one
// synthetic row of headroom the points sit on the bottom plot row.
func TestChartFlatLinePlacement(t *testing.T) {
	s := history.NewSeries(16)
	for i := 0; i < 10; i++ {
		s.Append(time.Duration(i)*time.Second, 7)
	}
	out := Chart(s, 0, 10*time.Second, 20, 5)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	bottom := lines[len(lines)-3] // last plot row, above axis + labels
	if !strings.Contains(bottom, "*") {
		t.Fatalf("flat line not on bottom row:\n%s", out)
	}
	for _, line := range lines[:len(lines)-3] {
		if strings.Contains(line, "*") {
			t.Fatalf("flat line leaked above bottom row:\n%s", out)
		}
	}
}

// TestTelemetryPanel renders the self-monitoring view from a hand-built
// store: one aligned row per series with the latest value and a
// sparkline, empty store degrades gracefully, width is clamped.
func TestTelemetryPanel(t *testing.T) {
	store := history.NewStore(64)
	for i := 0; i < 30; i++ {
		ts := time.Duration(i) * time.Second
		store.Append("cwx-server", "cwx.ingest.updates.total", ts, float64(i*100))
		store.Append("cwx-server", "cwx.server.nodes", ts, 16)
	}
	out := TelemetryPanel(store, "cwx-server", 0, 30*time.Second, 16)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("panel rows = %d:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[0], "cwx.ingest.updates.total") || !strings.Contains(lines[0], "2900") {
		t.Fatalf("first row wrong:\n%s", out)
	}
	if !strings.Contains(lines[1], "cwx.server.nodes") || !strings.Contains(lines[1], "16") {
		t.Fatalf("second row wrong:\n%s", out)
	}
	// The ramp's sparkline rises; the flat series' stays level.
	ramp := []rune(lines[0])
	if ramp[len(ramp)-1] != '█' {
		t.Fatalf("ramp sparkline does not end high: %q", lines[0])
	}

	if got := TelemetryPanel(store, "ghost", 0, time.Minute, 16); got != "(no self-monitoring data)\n" {
		t.Fatalf("missing node panel = %q", got)
	}
	if got := TelemetryPanel(history.NewStore(4), "cwx-server", 0, time.Minute, 16); got != "(no self-monitoring data)\n" {
		t.Fatalf("empty store panel = %q", got)
	}
	// Width below the minimum is clamped, not an error.
	if out := TelemetryPanel(store, "cwx-server", 0, 30*time.Second, 1); !strings.Contains(out, "cwx.server.nodes") {
		t.Fatalf("clamped-width panel:\n%s", out)
	}
}
