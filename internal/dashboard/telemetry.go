package dashboard

import (
	"fmt"
	"strings"
	"time"

	"clusterworx/internal/history"
)

// TelemetryPanel renders the self-monitoring view: every series the
// meta-monitor has recorded for node (normally core.MetaNodeName), one
// row each with the latest value and a sparkline over [t0, t1]. It reads
// straight from the history store — the meta-monitor's series are plain
// node history, so this panel is the proof they chart like any other.
// Diffable-view contract: each row leads with a stable key (the metric
// name) in sorted order — the serving plane's watch streams diff this
// rendering line by line (see CompareNodes).
func TelemetryPanel(store *history.Store, node string, t0, t1 time.Duration, width int) string {
	if width < 8 {
		width = 8
	}
	metrics := store.Metrics(node)
	var out strings.Builder
	rows := 0
	for _, m := range metrics {
		s := store.Series(node, m)
		if s == nil {
			continue
		}
		last, ok := s.Last()
		if !ok {
			continue
		}
		// Latest value before the sparkline: the block runes are
		// multi-byte, so padding them would misalign the columns.
		fmt.Fprintf(&out, "%-44s %14g  %s\n", m, last.V, Sparkline(s, t0, t1, width))
		rows++
	}
	if rows == 0 {
		return "(no self-monitoring data)\n"
	}
	return out.String()
}
