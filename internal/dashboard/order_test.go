package dashboard

import (
	"sort"
	"strings"
	"testing"
	"time"

	"clusterworx/internal/history"
)

// The serving plane's watch streams diff renderings line by line, keyed
// on each line's first field (serve.LineKey). That only reconstructs
// byte-exactly if these views emit key-sorted rows with stable relative
// order. These tests pin the contract so a rendering change that breaks
// watch diffing fails here, next to the code, rather than in a core
// integration test.

func orderStore() *history.Store {
	st := history.NewStore(0)
	nodes := []string{"node003", "node001", "node010", "node002"}
	for i, n := range nodes {
		for s := 0; s < 8; s++ {
			ts := time.Duration(s) * time.Second
			st.Append(n, "load.1", ts, float64(i+s))
			st.Append(n, "cpu.idle.pct", ts, float64((i*20+s*5)%100))
		}
	}
	return st
}

func firstFields(t *testing.T, rendering string) []string {
	t.Helper()
	var keys []string
	for _, line := range strings.Split(strings.TrimRight(rendering, "\n"), "\n") {
		f := strings.Fields(line)
		if len(f) == 0 {
			t.Fatalf("blank line in keyed rendering:\n%s", rendering)
		}
		keys = append(keys, f[0])
	}
	return keys
}

func TestCompareNodesRowsKeySorted(t *testing.T) {
	out := CompareNodes(orderStore(), "load.1", 0, time.Minute, 10)
	keys := firstFields(t, out)
	if keys[0] != "node" {
		t.Fatalf("header key %q, want \"node\"", keys[0])
	}
	rows := keys[1:]
	if !sort.StringsAreSorted(rows) {
		t.Fatalf("compare rows not name-sorted: %v", rows)
	}
	if len(rows) != 4 {
		t.Fatalf("compare rows = %d, want 4", len(rows))
	}
}

func TestTelemetryPanelRowsKeySorted(t *testing.T) {
	out := TelemetryPanel(orderStore(), "node001", 0, time.Minute, 16)
	keys := firstFields(t, out)
	if !sort.StringsAreSorted(keys) {
		t.Fatalf("telemetry panel rows not metric-sorted: %v", keys)
	}
	if len(keys) != 2 {
		t.Fatalf("panel rows = %d, want 2", len(keys))
	}
}
