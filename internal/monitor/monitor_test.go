package monitor

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"

	"clusterworx/internal/clock"
	"clusterworx/internal/consolidate"
	"clusterworx/internal/node"
)

// testRig builds a monitored node with a consolidator ticking on the
// virtual clock.
func testRig(t *testing.T, plugins *PluginSet) (*clock.Clock, *node.Node, *consolidate.Consolidator, *Set) {
	t.Helper()
	clk := clock.New()
	n := node.New(clk, node.Config{Name: "n1"})
	n.PowerOn()
	clk.Advance(10 * time.Second)
	set, err := NewSet(Config{
		FS:       n.FS(),
		Hostname: n.Name(),
		Now:      clk.Now,
		Probes:   n,
		Echo:     n.Reachable,
		Plugins:  plugins,
	})
	if err != nil {
		t.Fatal(err)
	}
	c := consolidate.New()
	if err := set.Install(c); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { set.Close() })
	return clk, n, c, set
}

// tick advances virtual time and runs one consolidation round.
func tick(clk *clock.Clock, c *consolidate.Consolidator, d time.Duration) {
	clk.Advance(d)
	c.Tick()
}

func snapshotMap(c *consolidate.Consolidator) map[string]consolidate.Value {
	out := make(map[string]consolidate.Value)
	for _, v := range c.Snapshot() {
		out[v.Name] = v
	}
	return out
}

func TestConfigValidation(t *testing.T) {
	if _, err := NewSet(Config{}); err == nil {
		t.Fatal("empty config accepted")
	}
}

func TestOverFortyMonitors(t *testing.T) {
	_, _, _, set := testRig(t, nil)
	if set.Count() <= 40 {
		t.Fatalf("built-in monitor count = %d, paper promises over 40", set.Count())
	}
}

func TestStandardValuesPresent(t *testing.T) {
	clk, _, c, _ := testRig(t, nil)
	for i := 0; i < 12; i++ { // enough ticks for every rate class
		tick(clk, c, time.Second)
	}
	// The sysinfo source has rate 600; force one pass by ticking enough is
	// wasteful — it ran on tick 0 via staggered phase or not at all; check
	// presence of the fast classes and probe values.
	snap := snapshotMap(c)
	for _, name := range []string{
		"cpu.user.pct", "cpu.idle.pct", "cpu.ctxt.rate",
		"disk.read.iops", "disk.write.iops",
		"mem.total.kb", "mem.free.kb", "mem.used.pct",
		"load.1", "load.5", "load.15",
		"uptime.sec", "uptime.idle.pct",
		"net.eth0.rx.bytes.rate", "net.lo.tx.pkts.rate",
		"hw.temp.cpu", "hw.fan.ok", "hw.power.ok",
		"net.echo.ok",
	} {
		if _, ok := snap[name]; !ok {
			t.Errorf("monitor value %q missing", name)
		}
	}
}

func TestSysinfoStatics(t *testing.T) {
	clk, _, c, _ := testRig(t, nil)
	// Drive enough ticks for the sysinfo rate class (600).
	for i := 0; i < 601; i++ {
		c.Tick()
	}
	_ = clk
	snap := snapshotMap(c)
	if v, ok := snap["cpu.type"]; !ok || v.Text != "Pentium III (Coppermine)" {
		t.Fatalf("cpu.type = %+v", snap["cpu.type"])
	}
	if v, ok := snap["host.name"]; !ok || v.Text != "n1" {
		t.Fatalf("host.name = %+v", snap["host.name"])
	}
	if v, ok := snap["kernel.version"]; !ok || v.Text != "2.4.18" {
		t.Fatalf("kernel.version = %+v", snap["kernel.version"])
	}
	if v, ok := snap["cpu.count"]; !ok || v.Num != 1 {
		t.Fatalf("cpu.count = %+v", snap["cpu.count"])
	}
	if snap["mem.total.kb"].Kind != consolidate.Static {
		t.Fatal("mem.total.kb not static")
	}
}

func TestCPUPercentagesTrackLoad(t *testing.T) {
	clk, n, c, _ := testRig(t, nil)
	n.SetLoad(1)
	clk.Advance(5 * time.Minute) // load ramp
	tick(clk, c, time.Second)
	tick(clk, c, time.Second) // second sample yields deltas
	snap := snapshotMap(c)
	idle := snap["cpu.idle.pct"].Num
	user := snap["cpu.user.pct"].Num
	if user < 60 {
		t.Fatalf("cpu.user.pct = %.1f under full load", user)
	}
	if idle > 20 {
		t.Fatalf("cpu.idle.pct = %.1f under full load", idle)
	}
}

func TestRatesComputedOverVirtualTime(t *testing.T) {
	clk, n, c, _ := testRig(t, nil)
	n.SetNetRate(1e6)
	tick(clk, c, time.Second)
	tick(clk, c, 10*time.Second)
	snap := snapshotMap(c)
	rx := snap["net.eth0.rx.bytes.rate"].Num
	if rx < 4e5 || rx > 6e5 {
		t.Fatalf("eth0 rx rate = %.0f, want ~500k (half of 1MB/s)", rx)
	}
}

func TestEchoReflectsNodeDeath(t *testing.T) {
	clk, n, c, _ := testRig(t, nil)
	for i := 0; i < 11; i++ {
		tick(clk, c, time.Second)
	}
	if snapshotMap(c)["net.echo.ok"].Num != 1 {
		t.Fatal("echo not ok while node up")
	}
	n.Crash("dead")
	for i := 0; i < 11; i++ {
		tick(clk, c, time.Second)
	}
	if snapshotMap(c)["net.echo.ok"].Num != 0 {
		t.Fatal("echo still ok after crash")
	}
}

func TestProbesReportFanFailure(t *testing.T) {
	clk, n, c, _ := testRig(t, nil)
	for i := 0; i < 6; i++ {
		tick(clk, c, time.Second)
	}
	if snapshotMap(c)["hw.fan.ok"].Num != 1 {
		t.Fatal("fan not ok initially")
	}
	n.FailFan()
	for i := 0; i < 6; i++ {
		tick(clk, c, time.Second)
	}
	if snapshotMap(c)["hw.fan.ok"].Num != 0 {
		t.Fatal("fan failure not visible")
	}
}

func TestFuncPlugins(t *testing.T) {
	plugins := NewPluginSet("")
	plugins.RegisterFunc("gpfs", func() (map[string]float64, error) {
		return map[string]float64{"free.gb": 120.5, "mounts": 4}, nil
	})
	plugins.RegisterFunc("broken", func() (map[string]float64, error) {
		return nil, errors.New("no such device")
	})
	clk, _, c, _ := testRig(t, plugins)
	for i := 0; i < 51; i++ {
		tick(clk, c, 100*time.Millisecond)
	}
	snap := snapshotMap(c)
	if v, ok := snap["plugin.gpfs.free.gb"]; !ok || v.Num != 120.5 {
		t.Fatalf("plugin value = %+v", snap["plugin.gpfs.free.gb"])
	}
	errs := plugins.Errors()
	if len(errs) != 1 {
		t.Fatalf("plugin errors = %v", errs)
	}
	plugins.Unregister("broken")
	if _, err := plugins.Collect(nil); err != nil {
		t.Fatal(err)
	}
	if len(plugins.Errors()) != 0 {
		t.Fatal("errors persist after unregister")
	}
}

func TestDirectoryPlugins(t *testing.T) {
	dir := t.TempDir()
	script := filepath.Join(dir, "lmsensors.sh")
	content := "#!/bin/sh\necho 'temp.board 38.5'\necho 'fan.rpm 5400'\necho 'status nominal'\n"
	if err := os.WriteFile(script, []byte(content), 0o755); err != nil {
		t.Fatal(err)
	}
	// Non-executable files are ignored, not run.
	if err := os.WriteFile(filepath.Join(dir, "README"), []byte("not a plugin"), 0o644); err != nil {
		t.Fatal(err)
	}
	plugins := NewPluginSet(dir)
	vals, err := plugins.Collect(nil)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]consolidate.Value{}
	for _, v := range vals {
		byName[v.Name] = v
	}
	if v, ok := byName["plugin.lmsensors.temp.board"]; !ok || v.Num != 38.5 {
		t.Fatalf("script numeric value = %+v", v)
	}
	if v, ok := byName["plugin.lmsensors.status"]; !ok || v.Text != "nominal" {
		t.Fatalf("script text value = %+v", v)
	}
	if len(byName) != 3 {
		t.Fatalf("values = %v", byName)
	}
}

func TestDirectoryPluginFailureIsolated(t *testing.T) {
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.sh")
	if err := os.WriteFile(bad, []byte("#!/bin/sh\nexit 3\n"), 0o755); err != nil {
		t.Fatal(err)
	}
	good := filepath.Join(dir, "good.sh")
	if err := os.WriteFile(good, []byte("#!/bin/sh\necho 'v 1'\n"), 0o755); err != nil {
		t.Fatal(err)
	}
	plugins := NewPluginSet(dir)
	vals, err := plugins.Collect(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(vals) != 1 || vals[0].Name != "plugin.good.v" {
		t.Fatalf("vals = %v", vals)
	}
	if len(plugins.Errors()) != 1 {
		t.Fatalf("errors = %v", plugins.Errors())
	}
}

func TestChangeSuppressionOnSteadyNode(t *testing.T) {
	clk, _, c, _ := testRig(t, nil)
	for i := 0; i < 20; i++ {
		tick(clk, c, time.Second)
	}
	c.Delta() // drain
	before := c.Stats()
	for i := 0; i < 20; i++ {
		tick(clk, c, time.Second)
	}
	after := c.Stats()
	collected := after.Collected - before.Collected
	suppressed := after.Suppressed - before.Suppressed
	// An idle node's values barely change: most samples suppressed.
	if float64(suppressed) < 0.3*float64(collected) {
		t.Fatalf("suppressed %d of %d on an idle node", suppressed, collected)
	}
}

func TestParseCPUInfo(t *testing.T) {
	text := "processor\t: 0\nmodel name\t: Test CPU\ncpu MHz\t\t: 800.5\n\nprocessor\t: 1\nmodel name\t: Test CPU\ncpu MHz\t\t: 800.5\n"
	model, mhz, ncpu := parseCPUInfo([]byte(text))
	if model != "Test CPU" || mhz != 800.5 || ncpu != 2 {
		t.Fatalf("parseCPUInfo = %q %v %d", model, mhz, ncpu)
	}
	if v := kernelVersion([]byte("Linux version 2.4.18 (gcc)")); v != "2.4.18" {
		t.Fatalf("kernelVersion = %q", v)
	}
	if v := kernelVersion([]byte("weird\n")); v != "weird" {
		t.Fatalf("kernelVersion fallback = %q", v)
	}
}

func TestRound2(t *testing.T) {
	if round2(1.004) != 1.0 || round2(1.006) != 1.01 || round2(-1.006) != -1.01 {
		t.Fatalf("round2: %v %v %v", round2(1.004), round2(1.006), round2(-1.006))
	}
}

func TestDiskIOPSTrackLoad(t *testing.T) {
	clk, n, c, _ := testRig(t, nil)
	n.SetLoad(1)
	clk.Advance(5 * time.Minute)
	tick(clk, c, time.Second)
	tick(clk, c, 10*time.Second)
	snap := snapshotMap(c)
	// The node model issues ~42 read IOPS at full load.
	r := snap["disk.read.iops"].Num
	if r < 10 || r > 100 {
		t.Fatalf("disk.read.iops = %v under load", r)
	}
	if snap["disk.read.sectors.rate"].Num <= r {
		t.Fatalf("sectors rate %v not above iops %v", snap["disk.read.sectors.rate"].Num, r)
	}
}
