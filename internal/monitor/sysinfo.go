package monitor

import (
	"strconv"
	"strings"
)

// parseCPUInfo extracts model name, clock and processor count from
// /proc/cpuinfo text.
func parseCPUInfo(data []byte) (model string, mhz float64, ncpu int) {
	for _, line := range strings.Split(string(data), "\n") {
		key, val, ok := strings.Cut(line, ":")
		if !ok {
			continue
		}
		key = strings.TrimSpace(key)
		val = strings.TrimSpace(val)
		switch key {
		case "processor":
			ncpu++
		case "model name":
			if model == "" {
				model = val
			}
		case "cpu MHz":
			if mhz == 0 {
				mhz, _ = strconv.ParseFloat(val, 64)
			}
		}
	}
	return model, mhz, ncpu
}

// kernelVersion extracts "2.4.18" from a /proc/version line.
func kernelVersion(data []byte) string {
	fields := strings.Fields(string(data))
	if len(fields) >= 3 && fields[0] == "Linux" && fields[1] == "version" {
		return fields[2]
	}
	return strings.TrimSpace(string(data))
}
