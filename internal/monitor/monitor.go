// Package monitor turns gathered /proc statistics, hardware probes, and
// administrator plug-ins into named monitor values (paper §5.1).
// ClusterWorX "can virtually monitor any system function ... It comes
// standard with over 40 monitors built in"; this set provides the standard
// ones (CPU, memory, load, uptime, network, system identity, connectivity,
// hardware probes) and the plug-in mechanism for the rest.
//
// Rate monitors (context switches/s, network bytes/s, ...) are derived on
// the node from successive counter samples, so only ready-to-display
// values cross the network.
package monitor

import (
	"fmt"
	"time"

	"clusterworx/internal/consolidate"
	"clusterworx/internal/gather"
	"clusterworx/internal/procfs"
)

// Probes is the optional hardware-probe surface (ICE Box sensors or
// lm_sensors). Satisfied by *node.Node.
type Probes interface {
	Temperature() float64
	FanOK() bool
	PowerProbe() bool
}

// Config wires a monitor set to one node.
type Config struct {
	FS       *procfs.FS           // required: the node's /proc
	Hostname string               // required
	Now      func() time.Duration // required: time source for rates
	Probes   Probes               // optional hardware probes
	Echo     func() bool          // optional UDP-echo connectivity check
	Plugins  *PluginSet           // optional administrator plug-ins
}

// Set is the full collection of monitor sources for one node.
type Set struct {
	cfg     Config
	closers []interface{ Close() error }
	count   int
}

// Standard collection intervals, in consolidation ticks. A tick is the
// agent's base sampling period (20 ms at the paper's 50 samples/s).
const (
	RateCPU     = 1
	RateMem     = 1
	RateNet     = 1
	RateLoad    = 5
	RateUptime  = 10
	RateProbes  = 5
	RateEcho    = 10
	RateSysinfo = 600
	RatePlugins = 50
)

// NewSet opens the gatherers for a node. Close releases the kept-open
// /proc files.
func NewSet(cfg Config) (*Set, error) {
	if cfg.FS == nil || cfg.Hostname == "" || cfg.Now == nil {
		return nil, fmt.Errorf("monitor: FS, Hostname and Now are required")
	}
	return &Set{cfg: cfg}, nil
}

// Install adds every monitor source to the consolidator at its standard
// rate and returns the number of distinct monitor values installed.
func (s *Set) Install(c *consolidate.Consolidator) error {
	fs := s.cfg.FS

	cpu, err := newCPUSource(fs, s.cfg.Now)
	if err != nil {
		return err
	}
	s.closers = append(s.closers, cpu.g)
	c.AddSource(cpu, RateCPU)
	s.count += 15

	mem, err := newMemSource(fs)
	if err != nil {
		return err
	}
	s.closers = append(s.closers, mem.g)
	c.AddSource(mem, RateMem)
	s.count += 10

	load, err := newLoadSource(fs)
	if err != nil {
		return err
	}
	s.closers = append(s.closers, load.g)
	c.AddSource(load, RateLoad)
	s.count += 6

	up, err := newUptimeSource(fs)
	if err != nil {
		return err
	}
	s.closers = append(s.closers, up.g)
	c.AddSource(up, RateUptime)
	s.count += 3

	net, err := newNetSource(fs, s.cfg.Now)
	if err != nil {
		return err
	}
	s.closers = append(s.closers, net.g)
	c.AddSource(net, RateNet)
	s.count += 12

	c.AddSource(newSysinfoSource(fs, s.cfg.Hostname), RateSysinfo)
	s.count += 5

	if s.cfg.Probes != nil {
		c.AddSource(probeSource{p: s.cfg.Probes}, RateProbes)
		s.count += 3
	}
	if s.cfg.Echo != nil {
		c.AddSource(echoSource{fn: s.cfg.Echo}, RateEcho)
		s.count++
	}
	if s.cfg.Plugins != nil {
		c.AddSource(s.cfg.Plugins, RatePlugins)
	}
	return nil
}

// Count returns the number of built-in monitor values installed.
func (s *Set) Count() int { return s.count }

// Close releases kept-open /proc files.
func (s *Set) Close() error {
	var first error
	for _, c := range s.closers {
		if err := c.Close(); err != nil && first == nil {
			first = err
		}
	}
	s.closers = nil
	return first
}

// --- CPU ------------------------------------------------------------------------

type cpuSource struct {
	g    *gather.StatGatherer
	now  func() time.Duration
	last gather.CPUStats
	at   time.Duration
	has  bool
	cur  gather.CPUStats
}

func newCPUSource(fs *procfs.FS, now func() time.Duration) (*cpuSource, error) {
	g, err := gather.NewStatGatherer(fs)
	if err != nil {
		return nil, err
	}
	return &cpuSource{g: g, now: now}, nil
}

func (s *cpuSource) Name() string { return "cpu" }

func (s *cpuSource) Collect(dst []consolidate.Value) ([]consolidate.Value, error) {
	if err := s.g.Gather(&s.cur); err != nil {
		return dst, err
	}
	now := s.now()
	var userPct, nicePct, sysPct, idlePct float64
	var intrRate, ctxtRate, forkRate, pageInRate, pageOutRate, swapInRate, swapOutRate float64
	var diskRIOPS, diskWIOPS, diskRSect, diskWSect float64
	if s.has {
		dJ := float64(s.cur.Total.Total() - s.last.Total.Total())
		if dJ > 0 {
			userPct = 100 * float64(s.cur.Total.User-s.last.Total.User) / dJ
			nicePct = 100 * float64(s.cur.Total.Nice-s.last.Total.Nice) / dJ
			sysPct = 100 * float64(s.cur.Total.System-s.last.Total.System) / dJ
			idlePct = 100 * float64(s.cur.Total.Idle-s.last.Total.Idle) / dJ
		}
		if dt := (now - s.at).Seconds(); dt > 0 {
			intrRate = float64(s.cur.Interrupts-s.last.Interrupts) / dt
			ctxtRate = float64(s.cur.ContextSwitches-s.last.ContextSwitches) / dt
			forkRate = float64(s.cur.Processes-s.last.Processes) / dt
			pageInRate = float64(s.cur.PageIn-s.last.PageIn) / dt
			pageOutRate = float64(s.cur.PageOut-s.last.PageOut) / dt
			swapInRate = float64(s.cur.SwapIn-s.last.SwapIn) / dt
			swapOutRate = float64(s.cur.SwapOut-s.last.SwapOut) / dt
			// Disk I/O summed over devices, matched by position (the
			// device set of a node does not change at runtime).
			for i, d := range s.cur.Disks {
				if i >= len(s.last.Disks) {
					break
				}
				p := s.last.Disks[i]
				diskRIOPS += float64(d.ReadIO-p.ReadIO) / dt
				diskWIOPS += float64(d.WriteIO-p.WriteIO) / dt
				diskRSect += float64(d.ReadSectors-p.ReadSectors) / dt
				diskWSect += float64(d.WriteSectors-p.WriteSectors) / dt
			}
		}
	}
	s.last, s.at, s.has = s.cur, now, true
	s.last.Disks = append([]gather.DiskCounters(nil), s.cur.Disks...)
	s.last.PerCPU = append([]procfs.CPUJiffies(nil), s.cur.PerCPU...)
	d := consolidate.Dynamic
	return append(dst,
		consolidate.NumValue("cpu.user.pct", d, round2(userPct)),
		consolidate.NumValue("cpu.nice.pct", d, round2(nicePct)),
		consolidate.NumValue("cpu.system.pct", d, round2(sysPct)),
		consolidate.NumValue("cpu.idle.pct", d, round2(idlePct)),
		consolidate.NumValue("cpu.intr.rate", d, round2(intrRate)),
		consolidate.NumValue("cpu.ctxt.rate", d, round2(ctxtRate)),
		consolidate.NumValue("proc.fork.rate", d, round2(forkRate)),
		consolidate.NumValue("page.in.rate", d, round2(pageInRate)),
		consolidate.NumValue("page.out.rate", d, round2(pageOutRate)),
		consolidate.NumValue("swap.in.rate", d, round2(swapInRate)),
		consolidate.NumValue("swap.out.rate", d, round2(swapOutRate)),
		consolidate.NumValue("disk.read.iops", d, round2(diskRIOPS)),
		consolidate.NumValue("disk.write.iops", d, round2(diskWIOPS)),
		consolidate.NumValue("disk.read.sectors.rate", d, round2(diskRSect)),
		consolidate.NumValue("disk.write.sectors.rate", d, round2(diskWSect)),
	), nil
}

// --- memory ----------------------------------------------------------------------

type memSource struct {
	g   *gather.KeepOpenMeminfo
	cur gather.MemStats
}

func newMemSource(fs *procfs.FS) (*memSource, error) {
	g, err := gather.NewKeepOpenMeminfo(fs)
	if err != nil {
		return nil, err
	}
	return &memSource{g: g}, nil
}

func (s *memSource) Name() string { return "mem" }

func (s *memSource) Collect(dst []consolidate.Value) ([]consolidate.Value, error) {
	if err := s.g.Gather(&s.cur); err != nil {
		return dst, err
	}
	m := &s.cur
	usedPct := 0.0
	if m.MemTotal > 0 {
		usedPct = 100 * float64(m.Used()) / float64(m.MemTotal)
	}
	swapUsedPct := 0.0
	if m.SwapTotal > 0 {
		swapUsedPct = 100 * float64(m.SwapTotal-m.SwapFree) / float64(m.SwapTotal)
	}
	d := consolidate.Dynamic
	return append(dst,
		consolidate.NumValue("mem.total.kb", consolidate.Static, float64(m.MemTotal)),
		consolidate.NumValue("mem.free.kb", d, float64(m.MemFree)),
		consolidate.NumValue("mem.used.kb", d, float64(m.Used())),
		consolidate.NumValue("mem.used.pct", d, round2(usedPct)),
		consolidate.NumValue("mem.shared.kb", d, float64(m.MemShared)),
		consolidate.NumValue("mem.buffers.kb", d, float64(m.Buffers)),
		consolidate.NumValue("mem.cached.kb", d, float64(m.Cached)),
		consolidate.NumValue("swap.total.kb", consolidate.Static, float64(m.SwapTotal)),
		consolidate.NumValue("swap.free.kb", d, float64(m.SwapFree)),
		consolidate.NumValue("swap.used.pct", d, round2(swapUsedPct)),
	), nil
}

// --- load ------------------------------------------------------------------------

type loadSource struct {
	g   *gather.LoadavgGatherer
	cur gather.LoadStats
}

func newLoadSource(fs *procfs.FS) (*loadSource, error) {
	g, err := gather.NewLoadavgGatherer(fs)
	if err != nil {
		return nil, err
	}
	return &loadSource{g: g}, nil
}

func (s *loadSource) Name() string { return "load" }

func (s *loadSource) Collect(dst []consolidate.Value) ([]consolidate.Value, error) {
	if err := s.g.Gather(&s.cur); err != nil {
		return dst, err
	}
	l := &s.cur
	d := consolidate.Dynamic
	return append(dst,
		consolidate.NumValue("load.1", d, l.Load1),
		consolidate.NumValue("load.5", d, l.Load5),
		consolidate.NumValue("load.15", d, l.Load15),
		consolidate.NumValue("proc.running", d, float64(l.Running)),
		consolidate.NumValue("proc.total", d, float64(l.Total)),
		consolidate.NumValue("proc.lastpid", d, float64(l.LastPID)),
	), nil
}

// --- uptime ----------------------------------------------------------------------

type uptimeSource struct {
	g   *gather.UptimeGatherer
	cur gather.UptimeStats
}

func newUptimeSource(fs *procfs.FS) (*uptimeSource, error) {
	g, err := gather.NewUptimeGatherer(fs)
	if err != nil {
		return nil, err
	}
	return &uptimeSource{g: g}, nil
}

func (s *uptimeSource) Name() string { return "uptime" }

func (s *uptimeSource) Collect(dst []consolidate.Value) ([]consolidate.Value, error) {
	if err := s.g.Gather(&s.cur); err != nil {
		return dst, err
	}
	idlePct := 0.0
	if s.cur.Uptime > 0 {
		idlePct = 100 * s.cur.Idle / s.cur.Uptime
	}
	d := consolidate.Dynamic
	return append(dst,
		consolidate.NumValue("uptime.sec", d, s.cur.Uptime),
		consolidate.NumValue("uptime.idle.sec", d, s.cur.Idle),
		consolidate.NumValue("uptime.idle.pct", d, round2(idlePct)),
	), nil
}

// --- network ----------------------------------------------------------------------

type netSource struct {
	g    *gather.NetDevGatherer
	now  func() time.Duration
	last gather.NetDevStats
	at   time.Duration
	has  bool
	cur  gather.NetDevStats
}

func newNetSource(fs *procfs.FS, now func() time.Duration) (*netSource, error) {
	g, err := gather.NewNetDevGatherer(fs)
	if err != nil {
		return nil, err
	}
	return &netSource{g: g, now: now}, nil
}

func (s *netSource) Name() string { return "net" }

func (s *netSource) Collect(dst []consolidate.Value) ([]consolidate.Value, error) {
	if err := s.g.Gather(&s.cur); err != nil {
		return dst, err
	}
	now := s.now()
	dt := (now - s.at).Seconds()
	d := consolidate.Dynamic
	for _, ifc := range s.cur.Ifaces {
		var rxB, txB, rxP, txP float64
		if s.has && dt > 0 {
			if prev, ok := findIface(s.last.Ifaces, ifc.Name); ok {
				rxB = float64(ifc.RxBytes-prev.RxBytes) / dt
				txB = float64(ifc.TxBytes-prev.TxBytes) / dt
				rxP = float64(ifc.RxPackets-prev.RxPackets) / dt
				txP = float64(ifc.TxPackets-prev.TxPackets) / dt
			}
		}
		pfx := "net." + ifc.Name + "."
		dst = append(dst,
			consolidate.NumValue(pfx+"rx.bytes.rate", d, round2(rxB)),
			consolidate.NumValue(pfx+"tx.bytes.rate", d, round2(txB)),
			consolidate.NumValue(pfx+"rx.pkts.rate", d, round2(rxP)),
			consolidate.NumValue(pfx+"tx.pkts.rate", d, round2(txP)),
			consolidate.NumValue(pfx+"rx.errs", d, float64(ifc.RxErrs)),
			consolidate.NumValue(pfx+"tx.errs", d, float64(ifc.TxErrs)),
		)
	}
	// Deep-copy the interface slice: gatherers reuse their buffers.
	s.last.Ifaces = append(s.last.Ifaces[:0], s.cur.Ifaces...)
	s.at, s.has = now, true
	return dst, nil
}

func findIface(ifaces []gather.IfaceCounters, name string) (gather.IfaceCounters, bool) {
	for _, i := range ifaces {
		if i.Name == name {
			return i, true
		}
	}
	return gather.IfaceCounters{}, false
}

// --- system identity ----------------------------------------------------------------

type sysinfoSource struct {
	fs       *procfs.FS
	hostname string
}

func newSysinfoSource(fs *procfs.FS, hostname string) sysinfoSource {
	return sysinfoSource{fs: fs, hostname: hostname}
}

func (s sysinfoSource) Name() string { return "sysinfo" }

func (s sysinfoSource) Collect(dst []consolidate.Value) ([]consolidate.Value, error) {
	ci, err := s.fs.ReadFile("/proc/cpuinfo")
	if err != nil {
		return dst, err
	}
	model, mhz, ncpu := parseCPUInfo(ci)
	ver, err := s.fs.ReadFile("/proc/version")
	if err != nil {
		return dst, err
	}
	st := consolidate.Static
	return append(dst,
		consolidate.TextValue("host.name", st, s.hostname),
		consolidate.TextValue("cpu.type", st, model),
		consolidate.NumValue("cpu.mhz", st, mhz),
		consolidate.NumValue("cpu.count", st, float64(ncpu)),
		consolidate.TextValue("kernel.version", st, kernelVersion(ver)),
	), nil
}

// --- probes and connectivity -----------------------------------------------------------

type probeSource struct{ p Probes }

func (probeSource) Name() string { return "hw" }

func (s probeSource) Collect(dst []consolidate.Value) ([]consolidate.Value, error) {
	d := consolidate.Dynamic
	return append(dst,
		consolidate.NumValue("hw.temp.cpu", d, round2(s.p.Temperature())),
		consolidate.NumValue("hw.fan.ok", d, boolNum(s.p.FanOK())),
		consolidate.NumValue("hw.power.ok", d, boolNum(s.p.PowerProbe())),
	), nil
}

type echoSource struct{ fn func() bool }

func (echoSource) Name() string { return "echo" }

func (s echoSource) Collect(dst []consolidate.Value) ([]consolidate.Value, error) {
	return append(dst, consolidate.NumValue("net.echo.ok", consolidate.Dynamic, boolNum(s.fn()))), nil
}

// --- helpers -----------------------------------------------------------------------------

func boolNum(v bool) float64 {
	if v {
		return 1
	}
	return 0
}

// round2 quantizes to two decimals so jitter below display resolution does
// not defeat the consolidation stage's change suppression.
func round2(v float64) float64 {
	if v < 0 {
		return float64(int64(v*100-0.5)) / 100
	}
	return float64(int64(v*100+0.5)) / 100
}
