package monitor

import (
	"bytes"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"

	"clusterworx/internal/consolidate"
)

// PluginSet implements the paper's plug-in mechanism (§5.1): "a plugin
// itself can be any program, script (shell, perl, etc.) or any combination
// thereof - as long as it resides in the ClusterWorX plug-in directory it
// will be recognized by the system automatically."
//
// Two flavors are supported:
//
//   - Go functions registered with RegisterFunc (the in-process form the
//     examples and the SDK use);
//   - executables in a plug-in directory, discovered on every collection,
//     run with /bin/sh, and expected to print "name value" lines — value is
//     a number or arbitrary text.
//
// Plug-in values are namespaced "plugin.<plugin>.<name>". A failing
// plug-in is isolated: its values go stale but other plug-ins and built-in
// monitors are unaffected.
type PluginSet struct {
	mu    sync.Mutex
	dir   string
	funcs map[string]PluginFunc
	errs  []string // most recent failures, for diagnostics
}

// PluginFunc is an in-process plug-in returning name/value pairs.
type PluginFunc func() (map[string]float64, error)

// NewPluginSet returns an empty plug-in set; dir may be "" for
// function-only use.
func NewPluginSet(dir string) *PluginSet {
	return &PluginSet{dir: dir, funcs: make(map[string]PluginFunc)}
}

// RegisterFunc installs (or replaces) an in-process plug-in.
func (p *PluginSet) RegisterFunc(name string, fn PluginFunc) {
	p.mu.Lock()
	p.funcs[name] = fn
	p.mu.Unlock()
}

// Unregister removes an in-process plug-in.
func (p *PluginSet) Unregister(name string) {
	p.mu.Lock()
	delete(p.funcs, name)
	p.mu.Unlock()
}

// Errors returns the failures from the most recent collection.
func (p *PluginSet) Errors() []string {
	p.mu.Lock()
	defer p.mu.Unlock()
	return append([]string(nil), p.errs...)
}

// Name implements consolidate.Source.
func (p *PluginSet) Name() string { return "plugins" }

// Collect runs every plug-in. Individual failures are recorded, not
// returned: one bad script must not poison the whole source.
func (p *PluginSet) Collect(dst []consolidate.Value) ([]consolidate.Value, error) {
	p.mu.Lock()
	dir := p.dir
	names := make([]string, 0, len(p.funcs))
	for name := range p.funcs {
		names = append(names, name)
	}
	sort.Strings(names)
	fns := make([]PluginFunc, len(names))
	for i, name := range names {
		fns[i] = p.funcs[name]
	}
	p.mu.Unlock()

	var errs []string
	for i, name := range names {
		vals, err := fns[i]()
		if err != nil {
			errs = append(errs, fmt.Sprintf("%s: %v", name, err))
			continue
		}
		keys := make([]string, 0, len(vals))
		for k := range vals {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			dst = append(dst, consolidate.NumValue("plugin."+name+"."+k, consolidate.Dynamic, vals[k]))
		}
	}
	if dir != "" {
		var derrs []string
		dst, derrs = p.collectDir(dir, dst)
		errs = append(errs, derrs...)
	}

	p.mu.Lock()
	p.errs = errs
	p.mu.Unlock()
	return dst, nil
}

// collectDir discovers and runs executable plug-ins in dir.
func (p *PluginSet) collectDir(dir string, dst []consolidate.Value) ([]consolidate.Value, []string) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return dst, []string{fmt.Sprintf("plugin dir: %v", err)}
	}
	var errs []string
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		info, err := e.Info()
		if err != nil || info.Mode()&0o111 == 0 {
			continue // not executable: not a plug-in
		}
		name := pluginName(e.Name())
		out, err := exec.Command("/bin/sh", filepath.Join(dir, e.Name())).Output()
		if err != nil {
			errs = append(errs, fmt.Sprintf("%s: %v", name, err))
			continue
		}
		vals, perrs := parsePluginOutput(name, out)
		dst = append(dst, vals...)
		errs = append(errs, perrs...)
	}
	return dst, errs
}

// parsePluginOutput decodes "name value" lines.
func parsePluginOutput(plugin string, out []byte) ([]consolidate.Value, []string) {
	var vals []consolidate.Value
	var errs []string
	for lineNo, line := range bytes.Split(out, []byte{'\n'}) {
		text := strings.TrimSpace(string(line))
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		key, val, ok := strings.Cut(text, " ")
		if !ok {
			errs = append(errs, fmt.Sprintf("%s: line %d: no value", plugin, lineNo+1))
			continue
		}
		val = strings.TrimSpace(val)
		full := "plugin." + plugin + "." + key
		if num, err := strconv.ParseFloat(val, 64); err == nil {
			vals = append(vals, consolidate.NumValue(full, consolidate.Dynamic, num))
		} else {
			vals = append(vals, consolidate.TextValue(full, consolidate.Dynamic, val))
		}
	}
	return vals, errs
}

func pluginName(file string) string {
	return strings.TrimSuffix(file, filepath.Ext(file))
}
