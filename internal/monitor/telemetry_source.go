package monitor

import (
	"strings"

	"clusterworx/internal/consolidate"
	"clusterworx/internal/telemetry"
)

// TelemetrySource turns the process's own telemetry registry into
// monitor values — the meta-monitor's feed. Every counter and gauge
// becomes one value; histograms contribute _count/_mean/_p50/_p99
// scalars (see telemetry.Registry.Walk). Names are converted from
// Prometheus style to the monitor's dotted paths, so
// cwx_ingest_latency_ns_p99 charts as cwx.ingest.latency.ns.p99 exactly
// like any node metric, and event rules can set thresholds on it.
type TelemetrySource struct {
	// Registry to walk; nil means telemetry.Default().
	Registry *telemetry.Registry
}

// Name implements consolidate.Source.
func (s TelemetrySource) Name() string { return "telemetry" }

// Collect implements consolidate.Source.
func (s TelemetrySource) Collect(dst []consolidate.Value) ([]consolidate.Value, error) {
	r := s.Registry
	if r == nil {
		r = telemetry.Default()
	}
	r.Walk(func(name string, v float64) {
		// round2 keeps histogram means from defeating the consolidation
		// stage's change suppression with sub-display jitter.
		dst = append(dst, consolidate.NumValue(dotName(name), consolidate.Dynamic, round2(v)))
	})
	return dst, nil
}

// dotName converts a Prometheus-style metric name to a monitor-style
// dotted path.
func dotName(name string) string { return strings.ReplaceAll(name, "_", ".") }
