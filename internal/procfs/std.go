package procfs

import (
	"bytes"
	"strconv"
)

// NodeStat is the instantaneous system state rendered into the standard
// /proc files. The node hardware model (internal/node) produces these from
// its simulation; the synthetic source in this package produces them for
// the standalone gathering benchmarks.
//
// All memory quantities are bytes; CPU counters are jiffies (100 Hz).
type NodeStat struct {
	// /proc/meminfo
	MemTotal   uint64
	MemFree    uint64
	MemShared  uint64
	Buffers    uint64
	Cached     uint64
	SwapCached uint64
	Active     uint64
	Inactive   uint64
	HighTotal  uint64
	HighFree   uint64
	SwapTotal  uint64
	SwapFree   uint64

	// /proc/stat
	CPUs            []CPUJiffies
	PageIn, PageOut uint64
	SwapIn, SwapOut uint64
	Interrupts      uint64
	IRQ             []uint64
	ContextSwitches uint64
	BootTime        int64 // unix seconds
	Processes       uint64
	Disks           []DiskIO

	// /proc/loadavg
	Load1, Load5, Load15 float64
	RunningProcs         int
	TotalProcs           int
	LastPID              int

	// /proc/uptime, seconds
	UptimeSec float64
	IdleSec   float64

	// /proc/net/dev
	Ifaces []IfaceStat

	// /proc/cpuinfo and /proc/version
	ModelName     string
	MHz           float64
	BogoMIPS      float64
	KernelVersion string
}

// CPUJiffies is one processor's cumulative jiffy counters.
type CPUJiffies struct {
	User, Nice, System, Idle uint64
}

// Total returns the sum of all jiffy counters.
func (c CPUJiffies) Total() uint64 { return c.User + c.Nice + c.System + c.Idle }

// DiskIO is one disk's cumulative I/O counters in the 2.4 disk_io format.
type DiskIO struct {
	Major, Minor            int
	IO, ReadIO, ReadSectors uint64
	WriteIO, WriteSectors   uint64
}

// IfaceStat is one network interface's cumulative counters.
type IfaceStat struct {
	Name                               string
	RxBytes, RxPackets, RxErrs, RxDrop uint64
	TxBytes, TxPackets, TxErrs, TxDrop uint64
	Multicast, Collisions              uint64
}

// StatFunc supplies the current state each time a /proc file regenerates.
type StatFunc func() *NodeStat

// RegisterStd installs the standard monitored files on fs:
// /proc/meminfo, /proc/stat, /proc/loadavg, /proc/uptime, /proc/net/dev,
// /proc/cpuinfo and /proc/version.
func RegisterStd(fs *FS, stat StatFunc) {
	fs.Register("/proc/meminfo", func(w *bytes.Buffer) { RenderMeminfo(w, stat()) })
	fs.Register("/proc/stat", func(w *bytes.Buffer) { RenderStat(w, stat()) })
	fs.Register("/proc/loadavg", func(w *bytes.Buffer) { RenderLoadavg(w, stat()) })
	fs.Register("/proc/uptime", func(w *bytes.Buffer) { RenderUptime(w, stat()) })
	fs.Register("/proc/net/dev", func(w *bytes.Buffer) { RenderNetDev(w, stat()) })
	fs.Register("/proc/cpuinfo", func(w *bytes.Buffer) { RenderCPUInfo(w, stat()) })
	fs.Register("/proc/version", func(w *bytes.Buffer) { RenderVersion(w, stat()) })
}

// RenderMeminfo writes the Linux 2.4 /proc/meminfo format: a legacy
// bytes-valued header table followed by the kB-valued field list.
func RenderMeminfo(w *bytes.Buffer, s *NodeStat) {
	memUsed := s.MemTotal - s.MemFree
	swapUsed := s.SwapTotal - s.SwapFree
	w.WriteString("        total:    used:    free:  shared: buffers:  cached:\n")
	w.WriteString("Mem:  ")
	writeUint(w, s.MemTotal)
	w.WriteByte(' ')
	writeUint(w, memUsed)
	w.WriteByte(' ')
	writeUint(w, s.MemFree)
	w.WriteByte(' ')
	writeUint(w, s.MemShared)
	w.WriteByte(' ')
	writeUint(w, s.Buffers)
	w.WriteByte(' ')
	writeUint(w, s.Cached)
	w.WriteByte('\n')
	w.WriteString("Swap: ")
	writeUint(w, s.SwapTotal)
	w.WriteByte(' ')
	writeUint(w, swapUsed)
	w.WriteByte(' ')
	writeUint(w, s.SwapFree)
	w.WriteByte('\n')

	kbField(w, "MemTotal:", s.MemTotal)
	kbField(w, "MemFree:", s.MemFree)
	kbField(w, "MemShared:", s.MemShared)
	kbField(w, "Buffers:", s.Buffers)
	kbField(w, "Cached:", s.Cached)
	kbField(w, "SwapCached:", s.SwapCached)
	kbField(w, "Active:", s.Active)
	kbField(w, "Inactive:", s.Inactive)
	kbField(w, "HighTotal:", s.HighTotal)
	kbField(w, "HighFree:", s.HighFree)
	kbField(w, "LowTotal:", s.MemTotal-s.HighTotal)
	kbField(w, "LowFree:", s.MemFree-min64(s.HighFree, s.MemFree))
	kbField(w, "SwapTotal:", s.SwapTotal)
	kbField(w, "SwapFree:", s.SwapFree)
}

// kbField writes "Name:   <bytes/1024> kB\n" padded like the kernel does.
func kbField(w *bytes.Buffer, name string, bytes_ uint64) {
	w.WriteString(name)
	kb := bytes_ / 1024
	digits := numDigits(kb)
	for pad := 14 - len(name) + (8 - digits); pad > 0; pad-- {
		w.WriteByte(' ')
	}
	writeUint(w, kb)
	w.WriteString(" kB\n")
}

// RenderStat writes the Linux 2.4 /proc/stat format.
func RenderStat(w *bytes.Buffer, s *NodeStat) {
	var sum CPUJiffies
	for _, c := range s.CPUs {
		sum.User += c.User
		sum.Nice += c.Nice
		sum.System += c.System
		sum.Idle += c.Idle
	}
	cpuLine(w, "cpu ", sum)
	for i, c := range s.CPUs {
		w.WriteString("cpu")
		writeUint(w, uint64(i))
		w.WriteByte(' ')
		cpuLineBody(w, c)
	}
	w.WriteString("page ")
	writeUint(w, s.PageIn)
	w.WriteByte(' ')
	writeUint(w, s.PageOut)
	w.WriteByte('\n')
	w.WriteString("swap ")
	writeUint(w, s.SwapIn)
	w.WriteByte(' ')
	writeUint(w, s.SwapOut)
	w.WriteByte('\n')
	w.WriteString("intr ")
	writeUint(w, s.Interrupts)
	for _, v := range s.IRQ {
		w.WriteByte(' ')
		writeUint(w, v)
	}
	w.WriteByte('\n')
	if len(s.Disks) > 0 {
		w.WriteString("disk_io:")
		for _, d := range s.Disks {
			w.WriteString(" (")
			writeUint(w, uint64(d.Major))
			w.WriteByte(',')
			writeUint(w, uint64(d.Minor))
			w.WriteString("):(")
			writeUint(w, d.IO)
			w.WriteByte(',')
			writeUint(w, d.ReadIO)
			w.WriteByte(',')
			writeUint(w, d.ReadSectors)
			w.WriteByte(',')
			writeUint(w, d.WriteIO)
			w.WriteByte(',')
			writeUint(w, d.WriteSectors)
			w.WriteByte(')')
		}
		w.WriteByte('\n')
	}
	w.WriteString("ctxt ")
	writeUint(w, s.ContextSwitches)
	w.WriteByte('\n')
	w.WriteString("btime ")
	writeUint(w, uint64(s.BootTime))
	w.WriteByte('\n')
	w.WriteString("processes ")
	writeUint(w, s.Processes)
	w.WriteByte('\n')
}

func cpuLine(w *bytes.Buffer, prefix string, c CPUJiffies) {
	w.WriteString(prefix)
	cpuLineBody(w, c)
}

func cpuLineBody(w *bytes.Buffer, c CPUJiffies) {
	writeUint(w, c.User)
	w.WriteByte(' ')
	writeUint(w, c.Nice)
	w.WriteByte(' ')
	writeUint(w, c.System)
	w.WriteByte(' ')
	writeUint(w, c.Idle)
	w.WriteByte('\n')
}

// RenderLoadavg writes /proc/loadavg: "1.23 0.98 0.76 2/105 4562".
func RenderLoadavg(w *bytes.Buffer, s *NodeStat) {
	writeFixed2(w, s.Load1)
	w.WriteByte(' ')
	writeFixed2(w, s.Load5)
	w.WriteByte(' ')
	writeFixed2(w, s.Load15)
	w.WriteByte(' ')
	writeUint(w, uint64(s.RunningProcs))
	w.WriteByte('/')
	writeUint(w, uint64(s.TotalProcs))
	w.WriteByte(' ')
	writeUint(w, uint64(s.LastPID))
	w.WriteByte('\n')
}

// RenderUptime writes /proc/uptime: "<uptime> <idle>" in seconds with
// two decimals.
func RenderUptime(w *bytes.Buffer, s *NodeStat) {
	writeFixed2(w, s.UptimeSec)
	w.WriteByte(' ')
	writeFixed2(w, s.IdleSec)
	w.WriteByte('\n')
}

// RenderNetDev writes the two header lines plus one line per interface in
// the /proc/net/dev format.
func RenderNetDev(w *bytes.Buffer, s *NodeStat) {
	w.WriteString("Inter-|   Receive                                                |  Transmit\n")
	w.WriteString(" face |bytes    packets errs drop fifo frame compressed multicast|bytes    packets errs drop fifo colls carrier compressed\n")
	for _, ifc := range s.Ifaces {
		for pad := 6 - len(ifc.Name); pad > 0; pad-- {
			w.WriteByte(' ')
		}
		w.WriteString(ifc.Name)
		w.WriteByte(':')
		padUint(w, ifc.RxBytes, 8)
		padUint(w, ifc.RxPackets, 8)
		padUint(w, ifc.RxErrs, 5)
		padUint(w, ifc.RxDrop, 5)
		padUint(w, 0, 5)  // fifo
		padUint(w, 0, 6)  // frame
		padUint(w, 0, 11) // compressed
		padUint(w, ifc.Multicast, 10)
		padUint(w, ifc.TxBytes, 9)
		padUint(w, ifc.TxPackets, 8)
		padUint(w, ifc.TxErrs, 5)
		padUint(w, ifc.TxDrop, 5)
		padUint(w, 0, 5) // fifo
		padUint(w, ifc.Collisions, 6)
		padUint(w, 0, 8)  // carrier
		padUint(w, 0, 11) // compressed
		w.WriteByte('\n')
	}
}

// RenderCPUInfo writes a Pentium-III-style /proc/cpuinfo stanza per CPU.
func RenderCPUInfo(w *bytes.Buffer, s *NodeStat) {
	for i := range s.CPUs {
		w.WriteString("processor\t: ")
		writeUint(w, uint64(i))
		w.WriteByte('\n')
		w.WriteString("vendor_id\t: GenuineIntel\n")
		w.WriteString("model name\t: ")
		w.WriteString(s.ModelName)
		w.WriteByte('\n')
		w.WriteString("cpu MHz\t\t: ")
		writeFixed3(w, s.MHz)
		w.WriteByte('\n')
		w.WriteString("bogomips\t: ")
		writeFixed2(w, s.BogoMIPS)
		w.WriteString("\n\n")
	}
}

// RenderVersion writes /proc/version.
func RenderVersion(w *bytes.Buffer, s *NodeStat) {
	w.WriteString("Linux version ")
	w.WriteString(s.KernelVersion)
	w.WriteString(" (root@buildhost) (gcc version 2.95.3) #1 SMP\n")
}

// writeUint appends the decimal form of v without heap allocation beyond
// the buffer's own growth, mirroring the kernel's sprintf work.
func writeUint(w *bytes.Buffer, v uint64) {
	var tmp [20]byte
	w.Write(strconv.AppendUint(tmp[:0], v, 10))
}

func padUint(w *bytes.Buffer, v uint64, width int) {
	for pad := width - numDigits(v); pad > 0; pad-- {
		w.WriteByte(' ')
	}
	writeUint(w, v)
}

func numDigits(v uint64) int {
	n := 1
	for v >= 10 {
		v /= 10
		n++
	}
	return n
}

// writeFixed2 writes v with exactly two decimals, as the kernel formats
// load averages and uptime.
func writeFixed2(w *bytes.Buffer, v float64) {
	if v < 0 {
		v = 0
	}
	cent := uint64(v*100 + 0.5)
	writeUint(w, cent/100)
	w.WriteByte('.')
	frac := cent % 100
	w.WriteByte(byte('0' + frac/10))
	w.WriteByte(byte('0' + frac%10))
}

func writeFixed3(w *bytes.Buffer, v float64) {
	if v < 0 {
		v = 0
	}
	mil := uint64(v*1000 + 0.5)
	writeUint(w, mil/1000)
	w.WriteByte('.')
	frac := mil % 1000
	w.WriteByte(byte('0' + frac/100))
	w.WriteByte(byte('0' + frac/10%10))
	w.WriteByte(byte('0' + frac%10))
}

func min64(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}
