package procfs

import (
	"bytes"
	"errors"
	"io"
	"strings"
	"testing"
	"testing/quick"
)

func staticFS(t *testing.T) *FS {
	t.Helper()
	fs := NewFS()
	RegisterStd(fs, Frozen())
	return fs
}

func TestRegisterAndOpen(t *testing.T) {
	fs := NewFS()
	fs.Register("/proc/meminfo", func(w *bytes.Buffer) { w.WriteString("hello\n") })
	f, err := fs.Open("/proc/meminfo")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	data, err := io.ReadAll(f)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "hello\n" {
		t.Fatalf("content %q", data)
	}
}

func TestOpenMissing(t *testing.T) {
	fs := NewFS()
	_, err := fs.Open("/proc/nothing")
	if !errors.Is(err, ErrNotExist) {
		t.Fatalf("err = %v, want ErrNotExist", err)
	}
}

func TestOpenDirectoryFails(t *testing.T) {
	fs := staticFS(t)
	_, err := fs.Open("/proc/net")
	if !errors.Is(err, ErrIsDirectory) {
		t.Fatalf("err = %v, want ErrIsDirectory", err)
	}
	_, err = fs.Open("/")
	if !errors.Is(err, ErrIsDirectory) {
		t.Fatalf("root open err = %v, want ErrIsDirectory", err)
	}
}

func TestPathCrossingFile(t *testing.T) {
	fs := staticFS(t)
	_, err := fs.Open("/proc/meminfo/deeper")
	if !errors.Is(err, ErrNotDirectory) {
		t.Fatalf("err = %v, want ErrNotDirectory", err)
	}
}

func TestReadDir(t *testing.T) {
	fs := staticFS(t)
	names, err := fs.ReadDir("/proc")
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"cpuinfo", "loadavg", "meminfo", "net", "stat", "uptime", "version"}
	if len(names) != len(want) {
		t.Fatalf("ReadDir = %v, want %v", names, want)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("ReadDir = %v, want %v", names, want)
		}
	}
}

func TestUnregister(t *testing.T) {
	fs := staticFS(t)
	if !fs.Unregister("/proc/meminfo") {
		t.Fatal("Unregister existing = false")
	}
	if fs.Unregister("/proc/meminfo") {
		t.Fatal("Unregister twice = true")
	}
	if fs.Exists("/proc/meminfo") {
		t.Fatal("file still exists after Unregister")
	}
}

// Every Read regenerates the whole file: a generator counting invocations
// must be called once per Read call, not once per open.
func TestRegenerationPerRead(t *testing.T) {
	fs := NewFS()
	calls := 0
	fs.Register("/f", func(w *bytes.Buffer) {
		calls++
		w.WriteString("0123456789")
	})
	f, err := fs.Open("/f")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	p := make([]byte, 3)
	for i := 0; i < 4; i++ {
		if _, err := f.Read(p); err != nil {
			t.Fatal(err)
		}
	}
	if calls != 4 {
		t.Fatalf("generator called %d times for 4 reads, want 4", calls)
	}
}

func TestSeekRewindRereads(t *testing.T) {
	fs := NewFS()
	n := 0
	fs.Register("/ctr", func(w *bytes.Buffer) {
		n++
		w.WriteString(strings.Repeat("x", n))
	})
	f, err := fs.Open("/ctr")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	buf := make([]byte, 64)
	k1, _ := f.Read(buf)
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		t.Fatal(err)
	}
	k2, _ := f.Read(buf)
	if k2 != k1+1 {
		t.Fatalf("rewound read returned %d bytes, want %d (fresh content)", k2, k1+1)
	}
}

func TestSeekVariants(t *testing.T) {
	fs := staticFS(t)
	f, err := fs.Open("/proc/loadavg")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if pos, err := f.Seek(5, io.SeekStart); err != nil || pos != 5 {
		t.Fatalf("SeekStart = %d,%v", pos, err)
	}
	if pos, err := f.Seek(-2, io.SeekCurrent); err != nil || pos != 3 {
		t.Fatalf("SeekCurrent = %d,%v", pos, err)
	}
	if _, err := f.Seek(-100, io.SeekCurrent); err == nil {
		t.Fatal("negative absolute seek did not fail")
	}
	if pos, err := f.Seek(0, io.SeekEnd); err != nil || pos == 0 {
		t.Fatalf("SeekEnd = %d,%v, want file size", pos, err)
	}
	if _, err := f.Seek(0, 99); err == nil {
		t.Fatal("bad whence did not fail")
	}
}

func TestClosedFileFails(t *testing.T) {
	fs := staticFS(t)
	f, err := fs.Open("/proc/uptime")
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Read(make([]byte, 1)); !errors.Is(err, ErrClosed) {
		t.Fatalf("read after close: %v", err)
	}
	if _, err := f.Seek(0, io.SeekStart); !errors.Is(err, ErrClosed) {
		t.Fatalf("seek after close: %v", err)
	}
	if err := f.Close(); !errors.Is(err, ErrClosed) {
		t.Fatalf("double close: %v", err)
	}
}

func TestReadFileMatchesStreaming(t *testing.T) {
	fs := staticFS(t)
	whole, err := fs.ReadFile("/proc/meminfo")
	if err != nil {
		t.Fatal(err)
	}
	f, err := fs.Open("/proc/meminfo")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	streamed, err := io.ReadAll(f)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(whole, streamed) {
		t.Fatal("ReadFile and streamed content differ for frozen stats")
	}
}

func TestMeminfoFormat(t *testing.T) {
	fs := staticFS(t)
	data, err := fs.ReadFile("/proc/meminfo")
	if err != nil {
		t.Fatal(err)
	}
	text := string(data)
	for _, want := range []string{
		"        total:    used:    free:", "Mem:  ", "Swap: ",
		"MemTotal:", "MemFree:", "Buffers:", "Cached:", "SwapTotal:", "SwapFree:", " kB\n",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("meminfo missing %q:\n%s", want, text)
		}
	}
	if !strings.Contains(text, "MemTotal:      1048576 kB") {
		t.Errorf("MemTotal line malformed:\n%s", text)
	}
}

func TestStatFormat(t *testing.T) {
	fs := staticFS(t)
	data, err := fs.ReadFile("/proc/stat")
	if err != nil {
		t.Fatal(err)
	}
	text := string(data)
	for _, want := range []string{"cpu ", "cpu0 ", "page ", "swap ", "intr ", "disk_io:", "ctxt ", "btime ", "processes "} {
		if !strings.Contains(text, want) {
			t.Errorf("stat missing %q:\n%s", want, text)
		}
	}
	if !strings.HasPrefix(text, "cpu 10000 200 4000 300000\n") {
		t.Errorf("aggregate cpu line wrong:\n%s", text)
	}
}

func TestLoadavgFormat(t *testing.T) {
	fs := staticFS(t)
	data, _ := fs.ReadFile("/proc/loadavg")
	if got := string(data); got != "0.20 0.18 0.12 1/80 11206\n" {
		t.Fatalf("loadavg = %q", got)
	}
}

func TestUptimeFormat(t *testing.T) {
	fs := staticFS(t)
	data, _ := fs.ReadFile("/proc/uptime")
	if got := string(data); got != "3017.41 2572.23\n" {
		t.Fatalf("uptime = %q", got)
	}
}

func TestNetDevFormat(t *testing.T) {
	fs := staticFS(t)
	data, _ := fs.ReadFile("/proc/net/dev")
	lines := strings.Split(strings.TrimRight(string(data), "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("net/dev has %d lines, want 4:\n%s", len(lines), data)
	}
	if !strings.Contains(lines[0], "Receive") || !strings.Contains(lines[0], "Transmit") {
		t.Errorf("header line 1 wrong: %q", lines[0])
	}
	if !strings.Contains(lines[2], "lo:") || !strings.Contains(lines[3], "eth0:") {
		t.Errorf("interface lines wrong: %q %q", lines[2], lines[3])
	}
}

func TestCPUInfoAndVersion(t *testing.T) {
	fs := staticFS(t)
	ci, _ := fs.ReadFile("/proc/cpuinfo")
	if !strings.Contains(string(ci), "Pentium III") || !strings.Contains(string(ci), "cpu MHz\t\t: 999.541") {
		t.Errorf("cpuinfo wrong:\n%s", ci)
	}
	v, _ := fs.ReadFile("/proc/version")
	if !strings.Contains(string(v), "Linux version 2.4.18") {
		t.Errorf("version wrong: %q", v)
	}
}

func TestSyntheticEvolves(t *testing.T) {
	g := NewSynthetic(1)
	a := g.Stat().ContextSwitches
	b := g.Stat().ContextSwitches
	if b <= a {
		t.Fatalf("ctxt did not advance: %d then %d", a, b)
	}
}

func TestSyntheticDeterministic(t *testing.T) {
	a, b := NewSynthetic(42), NewSynthetic(42)
	for i := 0; i < 100; i++ {
		sa, sb := a.Stat(), b.Stat()
		if sa.ContextSwitches != sb.ContextSwitches || sa.MemFree != sb.MemFree || sa.Load1 != sb.Load1 {
			t.Fatalf("synthetic diverged at step %d", i)
		}
	}
}

// Property: counters rendered into /proc/stat are monotone non-decreasing
// over synthetic evolution.
func TestPropertySyntheticMonotone(t *testing.T) {
	f := func(seed int64, steps uint8) bool {
		g := NewSynthetic(seed)
		prev := *g.Stat()
		prevCPU := prev.CPUs[0]
		for i := 0; i < int(steps%64)+1; i++ {
			s := g.Stat()
			c := s.CPUs[0]
			if c.User < prevCPU.User || c.Idle < prevCPU.Idle ||
				s.ContextSwitches < prev.ContextSwitches ||
				s.Interrupts < prev.Interrupts ||
				s.UptimeSec < prev.UptimeSec {
				return false
			}
			prev = *s
			prevCPU = c
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: random valid uint fields render and pad without panic and the
// rendered meminfo always parses back its MemTotal as total/1024.
func TestPropertyMeminfoRoundTrip(t *testing.T) {
	f := func(total, free uint32) bool {
		s := BaselineStat()
		s.MemTotal = uint64(total) + s.HighTotal // keep LowTotal non-negative
		if uint64(free) > s.MemTotal {
			s.MemFree = s.MemTotal
		} else {
			s.MemFree = uint64(free)
		}
		if s.MemFree < s.HighFree {
			s.HighFree = s.MemFree
		}
		var buf bytes.Buffer
		RenderMeminfo(&buf, &s)
		text := buf.String()
		want := "MemTotal:"
		i := strings.Index(text, want)
		if i < 0 {
			return false
		}
		line := text[i:]
		line = line[:strings.IndexByte(line, '\n')]
		fields := strings.Fields(line)
		return len(fields) == 3 && fields[1] == u64str(s.MemTotal/1024) && fields[2] == "kB"
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func u64str(v uint64) string {
	var b bytes.Buffer
	writeUint(&b, v)
	return b.String()
}
