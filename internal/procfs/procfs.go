// Package procfs simulates the Linux /proc virtual filesystem.
//
// The paper's gathering-stage optimizations (§5.3.1) exploit two properties
// of real procfs that this package reproduces faithfully:
//
//   - Every read(2) invokes a handler that regenerates the *entire* file,
//     "whether a single character or a large block is read". Small chunked
//     reads therefore pay the full generation cost per chunk, which is why
//     the paper's buffered single-read strategy wins 4800 %.
//   - Content is ASCII text in a fixed, a-priori-known format (here the
//     Linux 2.4 formats the paper's 2.4.x testbed exposed), which enables
//     the hand-rolled positional parsers of the third optimization.
//
// Open performs a component-by-component path walk (the moral equivalent of
// the kernel's dentry lookup), so keeping a file open and rewinding it —
// the paper's fourth optimization — measurably beats reopen-per-sample.
package procfs

import (
	"bytes"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
)

// Generator regenerates the full content of one virtual file.
// It is invoked on every Read of the file.
type Generator func(w *bytes.Buffer)

// FS is a tree of virtual files. The zero value is not usable; call NewFS.
type FS struct {
	mu   sync.RWMutex
	root *dirNode
}

type dirNode struct {
	children map[string]*node
}

type node struct {
	gen Generator // non-nil for files
	dir *dirNode  // non-nil for directories
}

// NewFS returns an empty filesystem containing only the root directory.
func NewFS() *FS {
	return &FS{root: &dirNode{children: map[string]*node{}}}
}

// Register installs gen as the handler for path (e.g. "/proc/meminfo"),
// creating intermediate directories. Registering an existing path replaces
// its handler.
func (fs *FS) Register(path string, gen Generator) {
	if gen == nil {
		panic("procfs: nil generator for " + path)
	}
	parts := splitPath(path)
	if len(parts) == 0 {
		panic("procfs: cannot register root")
	}
	fs.mu.Lock()
	defer fs.mu.Unlock()
	d := fs.root
	for _, name := range parts[:len(parts)-1] {
		child, ok := d.children[name]
		if !ok {
			child = &node{dir: &dirNode{children: map[string]*node{}}}
			d.children[name] = child
		}
		if child.dir == nil {
			panic(fmt.Sprintf("procfs: %q crosses a file component %q", path, name))
		}
		d = child.dir
	}
	d.children[parts[len(parts)-1]] = &node{gen: gen}
}

// Unregister removes the file or (empty or not) subtree at path.
// It reports whether something was removed.
func (fs *FS) Unregister(path string) bool {
	parts := splitPath(path)
	if len(parts) == 0 {
		return false
	}
	fs.mu.Lock()
	defer fs.mu.Unlock()
	d := fs.root
	for _, name := range parts[:len(parts)-1] {
		child, ok := d.children[name]
		if !ok || child.dir == nil {
			return false
		}
		d = child.dir
	}
	name := parts[len(parts)-1]
	if _, ok := d.children[name]; !ok {
		return false
	}
	delete(d.children, name)
	return true
}

// Open opens the file at path. Each Read on the returned File regenerates
// the entire content before serving the requested range.
func (fs *FS) Open(path string) (*File, error) {
	n, err := fs.lookup(path)
	if err != nil {
		return nil, err
	}
	if n.gen == nil {
		return nil, &PathError{Op: "open", Path: path, Err: ErrIsDirectory}
	}
	return &File{name: path, gen: n.gen}, nil
}

// ReadFile reads the whole content of path with a single generation pass.
func (fs *FS) ReadFile(path string) ([]byte, error) {
	f, err := fs.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var buf bytes.Buffer
	f.gen(&buf)
	out := make([]byte, buf.Len())
	copy(out, buf.Bytes())
	return out, nil
}

// ReadDir returns the sorted names of entries in the directory at path.
// The root is addressed as "/" or "".
func (fs *FS) ReadDir(path string) ([]string, error) {
	parts := splitPath(path)
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	d := fs.root
	for _, name := range parts {
		child, ok := d.children[name]
		if !ok {
			return nil, &PathError{Op: "readdir", Path: path, Err: ErrNotExist}
		}
		if child.dir == nil {
			return nil, &PathError{Op: "readdir", Path: path, Err: ErrNotDirectory}
		}
		d = child.dir
	}
	names := make([]string, 0, len(d.children))
	for name := range d.children {
		names = append(names, name)
	}
	sort.Strings(names)
	return names, nil
}

// Exists reports whether a file (not directory) exists at path.
func (fs *FS) Exists(path string) bool {
	n, err := fs.lookup(path)
	return err == nil && n.gen != nil
}

func (fs *FS) lookup(path string) (*node, error) {
	parts := splitPath(path)
	if len(parts) == 0 {
		return nil, &PathError{Op: "open", Path: path, Err: ErrIsDirectory}
	}
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	d := fs.root
	for i, name := range parts {
		child, ok := d.children[name]
		if !ok {
			return nil, &PathError{Op: "open", Path: path, Err: ErrNotExist}
		}
		if i == len(parts)-1 {
			return child, nil
		}
		if child.dir == nil {
			return nil, &PathError{Op: "open", Path: path, Err: ErrNotDirectory}
		}
		d = child.dir
	}
	panic("unreachable")
}

func splitPath(path string) []string {
	var parts []string
	for _, p := range strings.Split(path, "/") {
		if p != "" && p != "." {
			parts = append(parts, p)
		}
	}
	return parts
}

// File is an open virtual file. Files are not safe for concurrent use, the
// same as an os.File offset.
type File struct {
	name   string
	gen    Generator
	off    int64
	buf    bytes.Buffer
	closed bool
}

// Name returns the path the file was opened with.
func (f *File) Name() string { return f.name }

// Read regenerates the entire file content (the kernel-handler property the
// paper's §5.3.1 analysis rests on) and then copies out bytes starting at
// the current offset.
func (f *File) Read(p []byte) (int, error) {
	if f.closed {
		return 0, &PathError{Op: "read", Path: f.name, Err: ErrClosed}
	}
	f.buf.Reset()
	f.gen(&f.buf)
	data := f.buf.Bytes()
	if f.off >= int64(len(data)) {
		return 0, io.EOF
	}
	n := copy(p, data[f.off:])
	f.off += int64(n)
	return n, nil
}

// Seek implements io.Seeker. Monitoring code uses Seek(0, io.SeekStart) to
// rewind a kept-open file between samples (the paper's final optimization).
func (f *File) Seek(offset int64, whence int) (int64, error) {
	if f.closed {
		return 0, &PathError{Op: "seek", Path: f.name, Err: ErrClosed}
	}
	var base int64
	switch whence {
	case io.SeekStart:
		base = 0
	case io.SeekCurrent:
		base = f.off
	case io.SeekEnd:
		// Size is only defined at generation time; regenerate to measure.
		f.buf.Reset()
		f.gen(&f.buf)
		base = int64(f.buf.Len())
	default:
		return 0, &PathError{Op: "seek", Path: f.name, Err: ErrInvalid}
	}
	pos := base + offset
	if pos < 0 {
		return 0, &PathError{Op: "seek", Path: f.name, Err: ErrInvalid}
	}
	f.off = pos
	return pos, nil
}

// Close releases the file. Further reads fail.
func (f *File) Close() error {
	if f.closed {
		return &PathError{Op: "close", Path: f.name, Err: ErrClosed}
	}
	f.closed = true
	return nil
}

// PathError records a procfs operation failure.
type PathError struct {
	Op   string
	Path string
	Err  error
}

func (e *PathError) Error() string { return "procfs: " + e.Op + " " + e.Path + ": " + e.Err.Error() }

func (e *PathError) Unwrap() error { return e.Err }

type constError string

func (e constError) Error() string { return string(e) }

// Errors returned by filesystem operations.
const (
	ErrNotExist     = constError("no such file or directory")
	ErrIsDirectory  = constError("is a directory")
	ErrNotDirectory = constError("not a directory")
	ErrClosed       = constError("file already closed")
	ErrInvalid      = constError("invalid argument")
)
