package procfs

import (
	"math/rand"
	"sync"
)

// Synthetic produces an evolving NodeStat stream resembling the paper's
// test system (a 1 GHz Pentium III with 1 GB of memory running a 2.4.x
// kernel). Every call to its Stat method advances counters by a plausible
// random increment, so /proc files regenerate with fresh content exactly as
// they would on a live node.
type Synthetic struct {
	mu  sync.Mutex
	rng *rand.Rand
	s   NodeStat
}

// NewSynthetic returns a generator seeded deterministically.
func NewSynthetic(seed int64) *Synthetic {
	g := &Synthetic{rng: rand.New(rand.NewSource(seed))}
	g.s = BaselineStat()
	return g
}

// BaselineStat returns a static NodeStat matching the paper's testbed.
func BaselineStat() NodeStat {
	const gib = 1 << 30
	return NodeStat{
		MemTotal:   1 * gib,
		MemFree:    512 << 20,
		MemShared:  0,
		Buffers:    50 << 20,
		Cached:     200 << 20,
		SwapCached: 1 << 20,
		Active:     300 << 20,
		Inactive:   100 << 20,
		HighTotal:  128 << 20,
		HighFree:   64 << 20,
		SwapTotal:  2 * gib,
		SwapFree:   2 * gib,

		CPUs:            []CPUJiffies{{User: 10000, Nice: 200, System: 4000, Idle: 300000}},
		PageIn:          5000,
		PageOut:         2000,
		SwapIn:          1,
		SwapOut:         0,
		Interrupts:      1_400_000,
		IRQ:             []uint64{1_200_000, 20000, 0, 0, 3, 4, 0, 0, 11000, 0, 0, 0, 90000, 0, 60000, 8000},
		ContextSwitches: 3_000_000,
		BootTime:        1_027_895_183,
		Processes:       2738,
		Disks: []DiskIO{
			{Major: 3, Minor: 0, IO: 31000, ReadIO: 20000, ReadSectors: 570000, WriteIO: 11000, WriteSectors: 300000},
		},

		Load1:        0.20,
		Load5:        0.18,
		Load15:       0.12,
		RunningProcs: 1,
		TotalProcs:   80,
		LastPID:      11206,

		UptimeSec: 3017.41,
		IdleSec:   2572.23,

		Ifaces: []IfaceStat{
			{Name: "lo", RxBytes: 1_908_775, RxPackets: 12_345, TxBytes: 1_908_775, TxPackets: 12_345},
			{Name: "eth0", RxBytes: 814_558_563, RxPackets: 1_209_001, RxErrs: 0, RxDrop: 0,
				TxBytes: 96_834_552, TxPackets: 702_454, Multicast: 310},
		},

		ModelName:     "Pentium III (Coppermine)",
		MHz:           999.541,
		BogoMIPS:      1992.29,
		KernelVersion: "2.4.18",
	}
}

// Stat returns a pointer to the current state after advancing it one tick.
// The returned pointer aliases internal state and must be consumed before
// the next call, which matches how generators use it (render immediately).
func (g *Synthetic) Stat() *NodeStat {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.advance()
	return &g.s
}

// Frozen returns a StatFunc that never changes, for tests needing
// deterministic file content.
func Frozen() StatFunc {
	s := BaselineStat()
	return func() *NodeStat { return &s }
}

func (g *Synthetic) advance() {
	s := &g.s
	r := g.rng

	// A tick represents ~20 ms of machine time (50 Hz sampling).
	jf := uint64(2) // jiffies per tick at 100 Hz
	for i := range s.CPUs {
		c := &s.CPUs[i]
		busy := uint64(r.Intn(int(jf) + 1))
		c.User += busy
		c.Idle += jf - busy
		if r.Intn(10) == 0 {
			c.System++
		}
	}
	s.Interrupts += uint64(2 + r.Intn(40))
	for i := range s.IRQ {
		if r.Intn(4) == 0 {
			s.IRQ[i] += uint64(r.Intn(8))
		}
	}
	s.ContextSwitches += uint64(10 + r.Intn(200))
	if r.Intn(20) == 0 {
		s.Processes++
		s.LastPID++
	}
	s.PageIn += uint64(r.Intn(10))
	s.PageOut += uint64(r.Intn(6))

	// Memory wanders around half-used.
	delta := int64(r.Intn(1<<20)) - 1<<19
	free := int64(s.MemFree) + delta
	if free < 64<<20 {
		free = 64 << 20
	}
	if free > int64(s.MemTotal)-64<<20 {
		free = int64(s.MemTotal) - 64<<20
	}
	s.MemFree = uint64(free)
	s.Cached += uint64(r.Intn(4096))
	if s.Cached > 400<<20 {
		s.Cached = 200 << 20
	}

	// Load averages drift.
	s.Load1 += (r.Float64() - 0.5) * 0.02
	if s.Load1 < 0 {
		s.Load1 = 0
	}
	s.Load5 = s.Load5*0.98 + s.Load1*0.02
	s.Load15 = s.Load15*0.995 + s.Load1*0.005

	s.UptimeSec += 0.02
	s.IdleSec += 0.02 * float64(r.Intn(2))

	for i := range s.Ifaces {
		ifc := &s.Ifaces[i]
		pkts := uint64(r.Intn(30))
		ifc.RxPackets += pkts
		ifc.RxBytes += pkts * uint64(64+r.Intn(1400))
		tx := uint64(r.Intn(20))
		ifc.TxPackets += tx
		ifc.TxBytes += tx * uint64(64+r.Intn(1400))
	}

	for i := range s.Disks {
		d := &s.Disks[i]
		if r.Intn(3) == 0 {
			d.ReadIO++
			d.ReadSectors += uint64(2 + r.Intn(16))
			d.IO++
		}
		if r.Intn(4) == 0 {
			d.WriteIO++
			d.WriteSectors += uint64(2 + r.Intn(16))
			d.IO++
		}
	}
}
