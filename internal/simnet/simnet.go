// Package simnet simulates a switched cluster network on the virtual
// clock: per-endpoint full-duplex links with finite bandwidth, propagation
// latency, probabilistic packet loss, and true multicast.
//
// The fidelity target is the paper's §4 cloning claim — "using a multicast
// mechanism, even a single fast ethernet is sufficient to clone several
// hundred nodes simultaneously" — which is purely a bandwidth-sharing
// property: a multicast transmission occupies the sender's uplink once no
// matter how many receivers it reaches, while unicast pays per receiver.
// The model therefore serializes each endpoint's transmit and receive
// paths at its link rate and delivers through an idealized
// store-and-forward switch.
package simnet

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"clusterworx/internal/clock"
)

// Addr identifies an endpoint ("node007", "master", "icebox3").
type Addr string

// Common link rates in bits per second.
const (
	FastEthernet = 100e6  // the paper's cloning substrate
	GigE         = 1000e6 //
	Serial115k   = 115200 // ICE Box console links
)

// Packet is a delivered message.
type Packet struct {
	Src     Addr
	Dst     Addr   // empty for multicast
	Group   string // non-empty for multicast
	Payload any
	Size    int // bytes on the wire
}

// Handler consumes a delivered packet. Handlers run on the virtual clock's
// event loop.
type Handler func(pkt Packet)

// Stats counts an endpoint's traffic.
type Stats struct {
	TxPackets, TxBytes int64
	RxPackets, RxBytes int64
	Dropped            int64 // packets addressed to this endpoint lost in flight
	// RxQueuedNs accumulates time packets spent waiting for this
	// endpoint's downlink after arriving — the fan-in congestion signal:
	// a receiver whose senders outrun its link rate shows it here long
	// before anything is dropped (the E23 federation experiment's
	// flat-master bottleneck).
	RxQueuedNs int64
}

// Network is the fabric. Create with New, then Attach endpoints.
type Network struct {
	mu      sync.Mutex
	clk     *clock.Clock
	eps     map[Addr]*Endpoint
	groups  map[string]map[Addr]struct{}
	rng     *rand.Rand
	loss    float64
	latency time.Duration
}

// New returns a lossless fabric with the given one-way propagation latency.
func New(clk *clock.Clock, latency time.Duration) *Network {
	return &Network{
		clk:     clk,
		eps:     make(map[Addr]*Endpoint),
		groups:  make(map[string]map[Addr]struct{}),
		rng:     rand.New(rand.NewSource(1)),
		latency: latency,
	}
}

// SetLoss sets the independent per-receiver packet drop probability.
// The closed interval [0,1] is accepted: p == 1 is a full blackhole, a
// legitimate fault-injection setting.
func (n *Network) SetLoss(p float64) {
	if p < 0 || p > 1 {
		panic(fmt.Sprintf("simnet: loss probability %v out of [0,1]", p))
	}
	n.mu.Lock()
	n.loss = p
	n.mu.Unlock()
}

// SetLatency changes the one-way propagation latency (fault injection: a
// degraded or rerouted fabric). Packets already scheduled keep their old
// arrival times.
func (n *Network) SetLatency(d time.Duration) {
	if d < 0 {
		panic(fmt.Sprintf("simnet: negative latency %v", d))
	}
	n.mu.Lock()
	n.latency = d
	n.mu.Unlock()
}

// ScheduleAt runs fn against the network at absolute virtual time t —
// the building block of loss/latency/partition fault schedules:
//
//	net.ScheduleAt(10*time.Second, func(n *Network) { n.SetLoss(0.2) })
//	net.ScheduleAt(30*time.Second, func(n *Network) { n.Endpoint("node003").SetUp(false) })
func (n *Network) ScheduleAt(t time.Duration, fn func(*Network)) {
	n.clk.At(t, func() { fn(n) })
}

// Seed reseeds the loss generator for reproducible experiments.
func (n *Network) Seed(seed int64) {
	n.mu.Lock()
	n.rng = rand.New(rand.NewSource(seed))
	n.mu.Unlock()
}

// Attach creates an endpoint with the given link rate in bits per second.
// Attaching an existing address panics: addresses are physical ports.
func (n *Network) Attach(addr Addr, bitsPerSec float64) *Endpoint {
	if bitsPerSec <= 0 {
		panic("simnet: non-positive bandwidth")
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, dup := n.eps[addr]; dup {
		panic(fmt.Sprintf("simnet: duplicate endpoint %q", addr))
	}
	ep := &Endpoint{net: n, addr: addr, bps: bitsPerSec, up: true}
	n.eps[addr] = ep
	return ep
}

// Endpoint returns the endpoint at addr, or nil.
func (n *Network) Endpoint(addr Addr) *Endpoint {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.eps[addr]
}

// Join adds addr to a multicast group.
func (n *Network) Join(group string, addr Addr) {
	n.mu.Lock()
	defer n.mu.Unlock()
	g, ok := n.groups[group]
	if !ok {
		g = make(map[Addr]struct{})
		n.groups[group] = g
	}
	g[addr] = struct{}{}
}

// Leave removes addr from a multicast group.
func (n *Network) Leave(group string, addr Addr) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if g, ok := n.groups[group]; ok {
		delete(g, addr)
	}
}

// GroupSize returns the number of members in a group.
func (n *Network) GroupSize(group string) int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return len(n.groups[group])
}

// Endpoint is one attached NIC. All methods must be called from the clock
// goroutine (simnet is single-threaded by design, like the clock).
type Endpoint struct {
	net      *Network
	addr     Addr
	bps      float64
	up       bool
	handler  Handler
	txFreeAt time.Duration
	rxFreeAt time.Duration
	stats    Stats
}

// Addr returns the endpoint's address.
func (e *Endpoint) Addr() Addr { return e.addr }

// OnReceive installs the delivery handler.
func (e *Endpoint) OnReceive(h Handler) { e.handler = h }

// SetUp marks the link up or down. A down endpoint neither sends nor
// receives; in-flight packets to it are lost.
func (e *Endpoint) SetUp(up bool) {
	e.net.mu.Lock()
	e.up = up
	e.net.mu.Unlock()
}

// Up reports link state.
func (e *Endpoint) Up() bool {
	e.net.mu.Lock()
	defer e.net.mu.Unlock()
	return e.up
}

// Stats returns a copy of the traffic counters.
func (e *Endpoint) Stats() Stats {
	e.net.mu.Lock()
	defer e.net.mu.Unlock()
	return e.stats
}

// txTime is the serialization delay of size bytes at the link rate.
func (e *Endpoint) txTime(size int) time.Duration {
	return time.Duration(float64(size*8) / e.bps * float64(time.Second))
}

// Send transmits a unicast packet. It returns the virtual time at which
// the sender's uplink becomes free again — the pacing signal bulk senders
// use to saturate without overrunning their own link. Unknown destinations
// and down links consume air time but deliver nothing.
func (e *Endpoint) Send(dst Addr, payload any, size int) time.Duration {
	n := e.net
	n.mu.Lock()
	txDone := e.reserveTxLocked(size)
	if !e.up {
		n.mu.Unlock()
		return txDone
	}
	e.stats.TxPackets++
	e.stats.TxBytes += int64(size)
	target := n.eps[dst]
	drop := target == nil || n.rng.Float64() < n.loss
	pkt := Packet{Src: e.addr, Dst: dst, Payload: payload, Size: size}
	n.scheduleDeliveryLocked(target, pkt, txDone, drop)
	n.mu.Unlock()
	return txDone
}

// Multicast transmits one packet to every member of group except the
// sender. The sender's uplink is occupied exactly once regardless of group
// size; each receiver suffers loss independently.
func (e *Endpoint) Multicast(group string, payload any, size int) time.Duration {
	n := e.net
	n.mu.Lock()
	txDone := e.reserveTxLocked(size)
	if !e.up {
		n.mu.Unlock()
		return txDone
	}
	e.stats.TxPackets++
	e.stats.TxBytes += int64(size)
	pkt := Packet{Src: e.addr, Group: group, Payload: payload, Size: size}
	for addr := range n.groups[group] {
		if addr == e.addr {
			continue
		}
		target := n.eps[addr]
		drop := target == nil || n.rng.Float64() < n.loss
		n.scheduleDeliveryLocked(target, pkt, txDone, drop)
	}
	n.mu.Unlock()
	return txDone
}

// reserveTxLocked serializes a transmission on the uplink and returns its
// completion time.
func (e *Endpoint) reserveTxLocked(size int) time.Duration {
	now := e.net.clk.Now()
	start := e.txFreeAt
	if start < now {
		start = now
	}
	done := start + e.txTime(size)
	e.txFreeAt = done
	return done
}

// scheduleDeliveryLocked books the packet through the receiver's downlink
// and schedules the handler. Lost or undeliverable packets still count as
// drops on the receiver when it exists.
func (n *Network) scheduleDeliveryLocked(target *Endpoint, pkt Packet, txDone time.Duration, drop bool) {
	if target == nil {
		return
	}
	if drop || !target.up {
		target.stats.Dropped++
		return
	}
	arrival := txDone + n.latency
	start := target.rxFreeAt
	if start < arrival {
		start = arrival
	}
	target.stats.RxQueuedNs += int64(start - arrival)
	done := start + target.txTime(pkt.Size)
	target.rxFreeAt = done
	n.clk.At(done, func() {
		n.mu.Lock()
		h := target.handler
		up := target.up
		if up {
			target.stats.RxPackets++
			target.stats.RxBytes += int64(pkt.Size)
		} else {
			target.stats.Dropped++
		}
		n.mu.Unlock()
		if up && h != nil {
			h(pkt)
		}
	})
}
