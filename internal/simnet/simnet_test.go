package simnet

import (
	"testing"
	"testing/quick"
	"time"

	"clusterworx/internal/clock"
)

func pair(t *testing.T, latency time.Duration, bps float64) (*clock.Clock, *Network, *Endpoint, *Endpoint) {
	t.Helper()
	clk := clock.New()
	net := New(clk, latency)
	a := net.Attach("a", bps)
	b := net.Attach("b", bps)
	return clk, net, a, b
}

func TestUnicastDelivery(t *testing.T) {
	clk, _, a, b := pair(t, time.Millisecond, FastEthernet)
	var got []Packet
	b.OnReceive(func(p Packet) { got = append(got, p) })
	a.Send("b", "hello", 1000)
	clk.RunUntilIdle()
	if len(got) != 1 {
		t.Fatalf("delivered %d packets, want 1", len(got))
	}
	p := got[0]
	if p.Src != "a" || p.Dst != "b" || p.Payload != "hello" || p.Size != 1000 {
		t.Fatalf("packet = %+v", p)
	}
	// 1000 B at 100 Mbps = 80 µs serialize ×2 (tx+rx) + 1 ms latency.
	want := 2*80*time.Microsecond + time.Millisecond
	if clk.Now() != want {
		t.Fatalf("delivery at %v, want %v", clk.Now(), want)
	}
}

func TestSendPacing(t *testing.T) {
	_, _, a, _ := pair(t, 0, FastEthernet)
	d1 := a.Send("b", 1, 12500) // 1 ms at 100 Mbps
	d2 := a.Send("b", 2, 12500)
	if d1 != time.Millisecond {
		t.Fatalf("first txDone = %v, want 1ms", d1)
	}
	if d2 != 2*time.Millisecond {
		t.Fatalf("second txDone = %v, want 2ms (serialized)", d2)
	}
}

func TestSendToUnknownStillPaces(t *testing.T) {
	clk, _, a, _ := pair(t, 0, FastEthernet)
	d := a.Send("ghost", nil, 12500)
	if d != time.Millisecond {
		t.Fatalf("txDone = %v", d)
	}
	clk.RunUntilIdle() // nothing to deliver, no panic
}

func TestMulticastSharesUplink(t *testing.T) {
	clk := clock.New()
	net := New(clk, 0)
	master := net.Attach("m", FastEthernet)
	const n = 50
	delivered := 0
	for i := 0; i < n; i++ {
		addr := Addr(rune('A'+i%26)) + Addr(rune('a'+i/26))
		ep := net.Attach(addr, FastEthernet)
		ep.OnReceive(func(Packet) { delivered++ })
		net.Join("clone", addr)
	}
	txDone := master.Multicast("clone", "chunk", 12500)
	if txDone != time.Millisecond {
		t.Fatalf("multicast txDone = %v, want 1ms: uplink must be paid once", txDone)
	}
	clk.RunUntilIdle()
	if delivered != n {
		t.Fatalf("delivered to %d of %d members", delivered, n)
	}
	if s := master.Stats(); s.TxPackets != 1 || s.TxBytes != 12500 {
		t.Fatalf("master stats %+v; multicast must count one transmission", s)
	}
}

func TestMulticastExcludesSender(t *testing.T) {
	clk, net, a, b := pair(t, 0, FastEthernet)
	net.Join("g", "a")
	net.Join("g", "b")
	aGot, bGot := 0, 0
	a.OnReceive(func(Packet) { aGot++ })
	b.OnReceive(func(Packet) { bGot++ })
	a.Multicast("g", nil, 100)
	clk.RunUntilIdle()
	if aGot != 0 || bGot != 1 {
		t.Fatalf("a=%d b=%d, want 0/1", aGot, bGot)
	}
}

func TestLeaveGroup(t *testing.T) {
	clk, net, a, b := pair(t, 0, FastEthernet)
	net.Join("g", "b")
	if net.GroupSize("g") != 1 {
		t.Fatal("join failed")
	}
	net.Leave("g", "b")
	got := 0
	b.OnReceive(func(Packet) { got++ })
	a.Multicast("g", nil, 100)
	clk.RunUntilIdle()
	if got != 0 {
		t.Fatal("delivered to departed member")
	}
}

func TestDownEndpointDropsTraffic(t *testing.T) {
	clk, _, a, b := pair(t, 0, FastEthernet)
	got := 0
	b.OnReceive(func(Packet) { got++ })
	b.SetUp(false)
	a.Send("b", nil, 100)
	clk.RunUntilIdle()
	if got != 0 {
		t.Fatal("down endpoint received")
	}
	if b.Stats().Dropped != 1 {
		t.Fatalf("dropped = %d", b.Stats().Dropped)
	}
	b.SetUp(true)
	if !b.Up() {
		t.Fatal("SetUp(true) did not take")
	}
	a.Send("b", nil, 100)
	clk.RunUntilIdle()
	if got != 1 {
		t.Fatal("recovered endpoint did not receive")
	}
}

func TestDownSenderTransmitsNothing(t *testing.T) {
	clk, _, a, b := pair(t, 0, FastEthernet)
	got := 0
	b.OnReceive(func(Packet) { got++ })
	a.SetUp(false)
	a.Send("b", nil, 100)
	clk.RunUntilIdle()
	if got != 0 || a.Stats().TxPackets != 0 {
		t.Fatal("down sender transmitted")
	}
}

func TestLossDropsFraction(t *testing.T) {
	clk := clock.New()
	net := New(clk, 0)
	net.Seed(42)
	net.SetLoss(0.3)
	a := net.Attach("a", GigE)
	b := net.Attach("b", GigE)
	got := 0
	b.OnReceive(func(Packet) { got++ })
	const sent = 2000
	for i := 0; i < sent; i++ {
		a.Send("b", i, 100)
	}
	clk.RunUntilIdle()
	frac := float64(got) / sent
	if frac < 0.65 || frac > 0.75 {
		t.Fatalf("delivered fraction %.3f with loss 0.3", frac)
	}
	if int64(got)+b.Stats().Dropped != sent {
		t.Fatalf("got %d + dropped %d != sent %d", got, b.Stats().Dropped, sent)
	}
}

func TestLossValidation(t *testing.T) {
	net := New(clock.New(), 0)
	for _, bad := range []float64{-0.1, 1.01, 2} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("SetLoss(%v) did not panic", bad)
				}
			}()
			net.SetLoss(bad)
		}()
	}
	// The closed interval ends are legal: 1.0 is a full blackhole.
	net.SetLoss(0)
	net.SetLoss(1)
}

func TestBlackholeDropsEverything(t *testing.T) {
	clk := clock.New()
	net := New(clk, 0)
	net.SetLoss(1)
	a := net.Attach("a", GigE)
	b := net.Attach("b", GigE)
	got := 0
	b.OnReceive(func(Packet) { got++ })
	for i := 0; i < 50; i++ {
		a.Send("b", i, 100)
	}
	clk.RunUntilIdle()
	if got != 0 || b.Stats().Dropped != 50 {
		t.Fatalf("blackhole delivered %d, dropped %d", got, b.Stats().Dropped)
	}
}

func TestScheduleAtDrivesFaults(t *testing.T) {
	clk := clock.New()
	net := New(clk, time.Millisecond)
	a := net.Attach("a", GigE)
	b := net.Attach("b", GigE)
	got := 0
	b.OnReceive(func(Packet) { got++ })
	// Schedule: blackhole from 10ms, heal plus latency change at 20ms,
	// partition b from 30ms.
	net.ScheduleAt(10*time.Millisecond, func(n *Network) { n.SetLoss(1) })
	net.ScheduleAt(20*time.Millisecond, func(n *Network) {
		n.SetLoss(0)
		n.SetLatency(2 * time.Millisecond)
	})
	net.ScheduleAt(30*time.Millisecond, func(n *Network) { n.Endpoint("b").SetUp(false) })
	send := func() { a.Send("b", nil, 100) }
	clk.AfterFunc(5*time.Millisecond, send)  // delivered
	clk.AfterFunc(15*time.Millisecond, send) // blackholed
	clk.AfterFunc(25*time.Millisecond, send) // delivered (heal), at 2ms latency
	clk.AfterFunc(35*time.Millisecond, send) // partitioned
	clk.RunUntilIdle()
	if got != 2 {
		t.Fatalf("schedule delivered %d packets, want 2", got)
	}
	if b.Stats().Dropped != 2 {
		t.Fatalf("schedule dropped %d packets, want 2", b.Stats().Dropped)
	}
}

func TestDuplicateAttachPanics(t *testing.T) {
	net := New(clock.New(), 0)
	net.Attach("a", GigE)
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate attach did not panic")
		}
	}()
	net.Attach("a", GigE)
}

func TestEndpointLookup(t *testing.T) {
	net := New(clock.New(), 0)
	ep := net.Attach("a", GigE)
	if net.Endpoint("a") != ep {
		t.Fatal("Endpoint lookup failed")
	}
	if net.Endpoint("missing") != nil {
		t.Fatal("missing endpoint not nil")
	}
}

func TestRxSerialization(t *testing.T) {
	// Two fast senders into one receiver: deliveries serialize on the
	// receiver's downlink, so the second arrives one packet-time later.
	clk := clock.New()
	net := New(clk, 0)
	a := net.Attach("a", GigE)
	b := net.Attach("b", GigE)
	c := net.Attach("c", FastEthernet)
	var times []time.Duration
	c.OnReceive(func(Packet) { times = append(times, clk.Now()) })
	a.Send("c", nil, 12500) // 0.1 ms on GigE uplink, 1 ms on FE downlink
	b.Send("c", nil, 12500)
	clk.RunUntilIdle()
	if len(times) != 2 {
		t.Fatalf("delivered %d", len(times))
	}
	gap := times[1] - times[0]
	if gap != time.Millisecond {
		t.Fatalf("delivery gap %v, want 1ms (downlink serialization)", gap)
	}
}

// Property: with zero loss, every packet to a live endpoint is delivered
// exactly once and byte counters balance.
func TestPropertyLosslessConservation(t *testing.T) {
	f := func(sizes []uint16) bool {
		clk := clock.New()
		net := New(clk, time.Microsecond)
		a := net.Attach("a", GigE)
		b := net.Attach("b", GigE)
		got := 0
		var rxBytes int64
		b.OnReceive(func(p Packet) { got++; rxBytes += int64(p.Size) })
		var txBytes int64
		for _, s := range sizes {
			size := int(s)%4096 + 1
			txBytes += int64(size)
			a.Send("b", nil, size)
		}
		clk.RunUntilIdle()
		st := a.Stats()
		return got == len(sizes) && rxBytes == txBytes && st.TxBytes == txBytes
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: multicast transmission time is independent of group size.
func TestPropertyMulticastFlat(t *testing.T) {
	f := func(members uint8) bool {
		n := int(members)%200 + 1
		clk := clock.New()
		net := New(clk, 0)
		m := net.Attach("m", FastEthernet)
		for i := 0; i < n; i++ {
			addr := Addr("n" + string(rune('0'+i/100)) + string(rune('0'+i/10%10)) + string(rune('0'+i%10)))
			net.Attach(addr, FastEthernet)
			net.Join("g", addr)
		}
		txDone := m.Multicast("g", nil, 12500)
		return txDone == time.Millisecond
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestRxQueuedNsCountsFanInCongestion(t *testing.T) {
	clk := clock.New()
	net := New(clk, 0)
	master := net.Attach("master", FastEthernet)
	master.OnReceive(func(Packet) {})
	senders := []*Endpoint{net.Attach("s0", FastEthernet), net.Attach("s1", FastEthernet), net.Attach("s2", FastEthernet)}
	// Three senders transmit simultaneously: their tx windows overlap, so
	// the master's downlink serializes them — the 2nd and 3rd packet wait
	// one and two serialization times respectively (12500 B = 1 ms each).
	for _, s := range senders {
		s.Send("master", nil, 12500)
	}
	clk.RunUntilIdle()
	st := master.Stats()
	if st.RxPackets != 3 {
		t.Fatalf("RxPackets = %d, want 3", st.RxPackets)
	}
	want := int64(3 * time.Millisecond) // 1 ms + 2 ms of queueing
	if st.RxQueuedNs != want {
		t.Fatalf("RxQueuedNs = %d, want %d", st.RxQueuedNs, want)
	}
	// A lone, unhurried sender queues nothing.
	for _, s := range senders {
		s.Send("master", nil, 12500)
		clk.RunUntilIdle()
	}
	if got := master.Stats().RxQueuedNs; got != want {
		t.Fatalf("uncongested sends queued time: %d, want still %d", got, want)
	}
}
