package icebox

import (
	"bytes"
	"fmt"
	"net"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"clusterworx/internal/clock"
	"clusterworx/internal/node"
)

// rig builds a box with n nodes connected to ports 0..n-1.
func rig(t *testing.T, clk *clock.Clock, n int) (*Box, []*node.Node) {
	t.Helper()
	b := New(clk, "ice0")
	nodes := make([]*node.Node, n)
	for i := range nodes {
		nodes[i] = node.New(clk, node.Config{Name: fmt.Sprintf("node%03d", i), Seed: int64(i)})
		if err := b.Connect(i, nodes[i]); err != nil {
			t.Fatal(err)
		}
	}
	return b, nodes
}

func TestConnectErrors(t *testing.T) {
	clk := clock.New()
	b, nodes := rig(t, clk, 1)
	if err := b.Connect(0, nodes[0]); err == nil {
		t.Fatal("double connect succeeded")
	}
	if err := b.Connect(99, nodes[0]); err == nil {
		t.Fatal("out-of-range connect succeeded")
	}
	if b.Device(0) == nil || b.Device(5) != nil || b.Device(-1) != nil {
		t.Fatal("Device lookup wrong")
	}
}

func TestPowerOnOffCycle(t *testing.T) {
	clk := clock.New()
	b, nodes := rig(t, clk, 2)
	if err := b.PowerOn(0); err != nil {
		t.Fatal(err)
	}
	clk.Advance(10 * time.Second)
	if nodes[0].State() != node.Up {
		t.Fatalf("node0 = %v", nodes[0].State())
	}
	if nodes[1].State() != node.PowerOff {
		t.Fatal("node1 powered without command")
	}
	if err := b.PowerOff(0); err != nil {
		t.Fatal(err)
	}
	if nodes[0].State() != node.PowerOff {
		t.Fatal("outlet off but node still on")
	}
	// Cycle: off now, on after 1 s.
	b.PowerOn(0)
	clk.Advance(10 * time.Second)
	if err := b.PowerCycle(0); err != nil {
		t.Fatal(err)
	}
	if nodes[0].State() != node.PowerOff {
		t.Fatal("cycle did not cut power")
	}
	clk.Advance(15 * time.Second)
	if nodes[0].State() != node.Up {
		t.Fatalf("node after cycle = %v", nodes[0].State())
	}
}

func TestPowerErrorsOnEmptyPort(t *testing.T) {
	clk := clock.New()
	b, _ := rig(t, clk, 1)
	for _, err := range []error{b.PowerOn(5), b.PowerOff(5), b.Reset(5), b.PowerOn(-1)} {
		if err == nil {
			t.Fatal("operation on empty/invalid port succeeded")
		}
	}
}

func TestResetLine(t *testing.T) {
	clk := clock.New()
	b, nodes := rig(t, clk, 1)
	b.PowerOn(0)
	clk.Advance(10 * time.Second)
	nodes[0].Crash("wedged")
	if err := b.Reset(0); err != nil {
		t.Fatal(err)
	}
	clk.Advance(10 * time.Second)
	if nodes[0].State() != node.Up {
		t.Fatalf("node after remote reset = %v", nodes[0].State())
	}
}

func TestSequencedPowerUpAvoidsTrip(t *testing.T) {
	clk := clock.New()
	b, nodes := rig(t, clk, 10)
	b.PowerOnAll()
	clk.Advance(time.Minute)
	if b.BreakerTripped(0) || b.BreakerTripped(1) {
		t.Fatal("sequenced power-up tripped a breaker")
	}
	for i, n := range nodes {
		if n.State() != node.Up {
			t.Fatalf("node %d = %v", i, n.State())
		}
	}
}

func TestUnsequencedPowerUpTripsBreaker(t *testing.T) {
	clk := clock.New()
	b, nodes := rig(t, clk, 10)
	b.SetSequenceDelay(0)
	b.PowerOnAll()
	clk.Advance(time.Minute)
	if !b.BreakerTripped(0) || !b.BreakerTripped(1) {
		t.Fatalf("simultaneous inrush did not trip: A=%v B=%v",
			b.BreakerTripped(0), b.BreakerTripped(1))
	}
	up := 0
	for _, n := range nodes {
		if n.State() == node.Up {
			up++
		}
	}
	if up > 4 {
		t.Fatalf("%d nodes up after breaker trip", up)
	}
	// Breaker reset + sequenced retry recovers.
	b.ResetBreaker(0)
	b.ResetBreaker(1)
	b.SetSequenceDelay(DefaultSequenceDelay)
	b.PowerOnAll()
	clk.Advance(time.Minute)
	for i, n := range nodes {
		if n.State() != node.Up {
			t.Fatalf("node %d = %v after recovery", i, n.State())
		}
	}
}

func TestInletAmpsSteadyState(t *testing.T) {
	clk := clock.New()
	b, _ := rig(t, clk, 10)
	b.PowerOnAll()
	clk.Advance(time.Minute)
	// 5 nodes x 1.5 A + 0.5 A aux = 8 A per inlet.
	for in := 0; in < 2; in++ {
		amps := b.InletAmps(in)
		if amps < 7.9 || amps > 8.1 {
			t.Fatalf("inlet %d steady amps = %.1f, want 8", in, amps)
		}
	}
}

func TestAuxOutletsLatched(t *testing.T) {
	clk := clock.New()
	b, _ := rig(t, clk, 2)
	if !b.AuxOn(0) || !b.AuxOn(1) {
		t.Fatal("aux outlets not on at power-up")
	}
	if b.AuxOn(5) {
		t.Fatal("out-of-range aux reported on")
	}
	// The protocol offers no way to switch aux off.
	resp := b.HandleCommand("power off all")
	if !strings.HasPrefix(resp, "OK") {
		t.Fatal(resp)
	}
	if !b.AuxOn(0) {
		t.Fatal("power off all switched an aux outlet off")
	}
}

func TestProbesWorkWhileNodeDead(t *testing.T) {
	clk := clock.New()
	b, nodes := rig(t, clk, 1)
	b.PowerOn(0)
	clk.Advance(5 * time.Minute) // warm up to idle steady state
	nodes[0].FailFan()
	nodes[0].Crash("dead")
	st := b.PortStatus(0)
	if st.FanOK {
		t.Fatal("fan probe did not see failure")
	}
	if !st.PowerOK {
		t.Fatal("power probe wrong: crashed node still draws power")
	}
	if st.TempC < 30 {
		t.Fatalf("temp probe = %.1f", st.TempC)
	}
}

func TestPostMortemConsole(t *testing.T) {
	clk := clock.New()
	b, nodes := rig(t, clk, 1)
	b.PowerOn(0)
	clk.Advance(10 * time.Second)
	nodes[0].Crash("the bug")
	b.PowerOff(0) // node is gone entirely
	data, err := b.Console(0)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "kernel panic: the bug") {
		t.Fatalf("post-mortem missing panic:\n%s", data)
	}
}

func TestConsoleRetainsOnlyTail(t *testing.T) {
	clk := clock.New()
	b, nodes := rig(t, clk, 1)
	b.PowerOn(0)
	clk.Advance(10 * time.Second)
	// Write 64 KiB of numbered lines; only the last 16 KiB fit.
	for i := 0; i < 4096; i++ {
		nodes[0].Serial().WriteString(fmt.Sprintf("line %04d padddddddd\n", i))
	}
	data, _ := b.Console(0)
	if len(data) > 16<<10 {
		t.Fatalf("console buffer %d bytes exceeds 16k", len(data))
	}
	text := string(data)
	if !strings.Contains(text, "line 4095") {
		t.Fatal("newest line evicted")
	}
	if strings.Contains(text, "line 0000") {
		t.Fatal("oldest line retained past capacity")
	}
}

func TestLiveConsoleAttach(t *testing.T) {
	clk := clock.New()
	b, nodes := rig(t, clk, 1)
	var live bytes.Buffer
	if err := b.AttachConsole(0, &live); err != nil {
		t.Fatal(err)
	}
	b.PowerOn(0)
	clk.Advance(10 * time.Second)
	if !strings.Contains(live.String(), "LinuxBIOS") {
		t.Fatalf("live console missed boot output: %q", live.String())
	}
	nodes[0].Serial().WriteString("hello admin\n")
	if !strings.Contains(live.String(), "hello admin") {
		t.Fatal("live console not streaming")
	}
}

func TestFindPortAndConnected(t *testing.T) {
	clk := clock.New()
	b, _ := rig(t, clk, 3)
	if p, ok := b.FindPort("node001"); !ok || p != 1 {
		t.Fatalf("FindPort = %d,%v", p, ok)
	}
	if _, ok := b.FindPort("ghost"); ok {
		t.Fatal("found ghost")
	}
	ports := b.ConnectedPorts()
	if len(ports) != 3 || ports[0] != 0 || ports[2] != 2 {
		t.Fatalf("connected = %v", ports)
	}
}

func TestProtocolCommands(t *testing.T) {
	clk := clock.New()
	b, _ := rig(t, clk, 2)
	cases := []struct {
		cmd      string
		wantPfx  string
		contains string
	}{
		{"version", "OK", "ICE Box"},
		{"status", "OK", "dev=node000"},
		{"power on 0", "OK", "power on"},
		{"power off 0", "OK", "power off"},
		{"power on all", "OK", "sequenced"},
		{"power off all", "OK", ""},
		{"temp 1", "OK", ""},
		{"probe 1", "OK", "power="},
		{"amps a", "OK", ""},
		{"breaker a", "OK", "closed"},
		{"breaker b reset", "OK", "reset"},
		{"aux", "OK", "latched"},
		{"reset 9", "ERR", "not connected"},
		{"power on 77", "ERR", "range"},
		{"power fry 0", "ERR", ""},
		{"power on", "ERR", "usage"},
		{"power cycle all", "ERR", ""},
		{"temp xyz", "ERR", ""},
		{"amps q", "ERR", "inlet"},
		{"bogus", "ERR", "unknown"},
		{"", "ERR", "empty"},
	}
	for _, tc := range cases {
		resp := b.HandleCommand(tc.cmd)
		if !strings.HasPrefix(resp, tc.wantPfx) {
			t.Errorf("%q -> %q, want prefix %q", tc.cmd, resp, tc.wantPfx)
		}
		if tc.contains != "" && !strings.Contains(resp, tc.contains) {
			t.Errorf("%q -> %q, want substring %q", tc.cmd, resp, tc.contains)
		}
		clk.RunUntilIdle() // drain any power sequencing
	}
}

func TestProtocolConsoleDump(t *testing.T) {
	clk := clock.New()
	b, nodes := rig(t, clk, 1)
	nodes[0].Serial().WriteString("interesting\n.leading dot\n")
	resp := b.HandleCommand("console 0")
	if !strings.HasPrefix(resp, "OK console dump follows\n") {
		t.Fatalf("resp = %q", resp)
	}
	if !strings.HasSuffix(resp, "\n.") {
		t.Fatal("dump not dot-terminated")
	}
	if !strings.Contains(resp, "\n..leading dot") {
		t.Fatal("dot-stuffing missing")
	}
}

func TestSNMP(t *testing.T) {
	clk := clock.New()
	b, _ := rig(t, clk, 1)
	b.PowerOn(0)
	clk.Advance(10 * time.Second)
	if v, err := b.SNMPGet(snmpBase + ".1.0.1"); err != nil || v != "node000" {
		t.Fatalf("device OID = %q, %v", v, err)
	}
	if v, err := b.SNMPGet(snmpBase + ".1.0.2"); err != nil || v != "1" {
		t.Fatalf("outlet OID = %q, %v", v, err)
	}
	if v, err := b.SNMPGet(snmpBase + ".1.0.5"); err != nil || v != "1" {
		t.Fatalf("fan OID = %q, %v", v, err)
	}
	if _, err := b.SNMPGet(snmpBase + ".1.0.9"); err == nil {
		t.Fatal("bad column accepted")
	}
	if _, err := b.SNMPGet(snmpBase + ".1.55.1"); err == nil {
		t.Fatal("bad port accepted")
	}
	if _, err := b.SNMPGet("1.2.3.4"); err == nil {
		t.Fatal("foreign OID accepted")
	}
	if _, err := b.SNMPGet(snmpBase + ".1.x.y"); err == nil {
		t.Fatal("malformed OID accepted")
	}
}

func TestNIMPOverTCP(t *testing.T) {
	clk := clock.New()
	b, _ := rig(t, clk, 1)
	srv := NewServer(b)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go srv.Serve(l) //nolint:errcheck // returns when listener closes

	conn, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	rd := newLineReader(conn)
	if banner := rd.line(t); !strings.Contains(banner, "ready") {
		t.Fatalf("banner = %q", banner)
	}
	fmt.Fprintf(conn, "version\n")
	if resp := rd.line(t); !strings.Contains(resp, "ICE Box") {
		t.Fatalf("version = %q", resp)
	}
	fmt.Fprintf(conn, "quit\n")
	if resp := rd.line(t); !strings.Contains(resp, "bye") {
		t.Fatalf("quit = %q", resp)
	}
}

func TestNIMPIPFilter(t *testing.T) {
	clk := clock.New()
	b, _ := rig(t, clk, 1)
	srv := NewServer(b)
	srv.SetIPFilter(func(addr string) bool { return false })
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go srv.Serve(l) //nolint:errcheck // returns when listener closes

	conn, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if resp := newLineReader(conn).line(t); !strings.Contains(resp, "denied") {
		t.Fatalf("filtered response = %q", resp)
	}
}

// lineReader reads newline-terminated strings with a test deadline.
type lineReader struct {
	buf *bytes.Buffer
	rd  interface{ Read([]byte) (int, error) }
}

func newLineReader(r interface{ Read([]byte) (int, error) }) *lineReader {
	return &lineReader{buf: &bytes.Buffer{}, rd: r}
}

func (lr *lineReader) line(t *testing.T) string {
	t.Helper()
	for {
		if i := bytes.IndexByte(lr.buf.Bytes(), '\n'); i >= 0 {
			line := string(lr.buf.Next(i + 1))
			return strings.TrimRight(line, "\n")
		}
		var tmp [512]byte
		n, err := lr.rd.Read(tmp[:])
		if err != nil {
			t.Fatalf("read: %v", err)
		}
		lr.buf.Write(tmp[:n])
	}
}

// Property: HandleCommand never panics on arbitrary input — the NIMP port
// faces the management network.
func TestPropertyProtocolNeverPanics(t *testing.T) {
	clk := clock.New()
	b, _ := rig(t, clk, 3)
	f := func(line string) bool {
		resp := b.HandleCommand(line)
		return strings.HasPrefix(resp, "OK") || strings.HasPrefix(resp, "ERR")
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
	// And structured-but-hostile variants.
	for _, line := range []string{
		"power on -1", "power on 999999999999999999999",
		"console 0\x00", "temp \xff", "breaker a reset reset reset",
		strings.Repeat("a ", 5000),
	} {
		resp := b.HandleCommand(line)
		if !strings.HasPrefix(resp, "OK") && !strings.HasPrefix(resp, "ERR") {
			t.Fatalf("%q -> %q", line, resp)
		}
		clk.RunUntilIdle()
	}
}

func TestSNMPWalk(t *testing.T) {
	clk := clock.New()
	b, _ := rig(t, clk, 2)
	all := b.SNMPWalk("")
	if len(all) != 10 { // 2 ports x 5 columns
		t.Fatalf("walk returned %d vars", len(all))
	}
	if all[0].OID != snmpBase+".1.0.1" || all[0].Value != "node000" {
		t.Fatalf("first var = %+v", all[0])
	}
	sub := b.SNMPWalk(snmpBase + ".1.1")
	if len(sub) != 5 {
		t.Fatalf("subtree walk = %d vars", len(sub))
	}
	if none := b.SNMPWalk("9.9.9"); len(none) != 0 {
		t.Fatalf("foreign prefix walk = %d vars", len(none))
	}
}
