package icebox

import (
	"bufio"
	"fmt"
	"io"
	"net"
	"strconv"
	"strings"
	"sync"
)

// This file implements the ICE management protocols (paper §3.4): the same
// line-oriented command set is served over a serial link (SIMP) and over
// ethernet (NIMP); telnet access is NIMP with a prompt. Native IP
// filtering can restrict network access.
//
// Commands:
//
//	version                     firmware banner
//	status                      one line per node port
//	power on|off|cycle <port>   outlet control
//	power on all                sequenced power-up
//	power off all               node outlets off (aux stays on)
//	reset <port>                motherboard reset line
//	temp <port>                 temperature probe, °C
//	probe <port>                power/fan probe state
//	console <port>              post-mortem buffer dump
//	amps a|b                    inlet current
//	breaker a|b [reset]         breaker state / reset
//	aux                         auxiliary outlet states
//
// Responses are "OK[ <data>]" or "ERR <reason>"; console dumps are
// terminated by a lone "." line, like SMTP DATA.

// Version is the modeled ICE Box firmware version string.
const Version = "ICE Box v2.0 (SIMP/NIMP 1.1)"

// HandleCommand executes one protocol line and returns the full response
// (without trailing newline). This is the shared SIMP/NIMP core.
func (b *Box) HandleCommand(line string) string {
	fields := strings.Fields(strings.TrimSpace(line))
	if len(fields) == 0 {
		return "ERR empty command"
	}
	switch strings.ToLower(fields[0]) {
	case "version":
		return "OK " + Version + " id=" + b.id

	case "status":
		var sb strings.Builder
		sb.WriteString("OK")
		for _, st := range b.Status() {
			if st.Device == "" {
				continue
			}
			fmt.Fprintf(&sb, "\nport %d dev=%s outlet=%s power=%s temp=%.1f fan=%s",
				st.Port, st.Device, onOff(st.OutletOn), okFail(st.PowerOK), st.TempC, okFail(st.FanOK))
		}
		return sb.String()

	case "power":
		if len(fields) != 3 {
			return "ERR usage: power on|off|cycle <port>|all"
		}
		verb := strings.ToLower(fields[1])
		if strings.ToLower(fields[2]) == "all" {
			switch verb {
			case "on":
				b.PowerOnAll()
				return "OK sequenced power-up started"
			case "off":
				b.PowerOffAll()
				return "OK all node outlets off"
			default:
				return "ERR cannot " + verb + " all"
			}
		}
		port, err := parsePort(fields[2])
		if err != nil {
			return "ERR " + err.Error()
		}
		switch verb {
		case "on":
			err = b.PowerOn(port)
		case "off":
			err = b.PowerOff(port)
		case "cycle":
			err = b.PowerCycle(port)
		default:
			return "ERR unknown power verb " + verb
		}
		if err != nil {
			return "ERR " + err.Error()
		}
		return fmt.Sprintf("OK port %d power %s", port, verb)

	case "reset":
		port, err := parsePort(arg(fields, 1))
		if err != nil {
			return "ERR " + err.Error()
		}
		if err := b.Reset(port); err != nil {
			return "ERR " + err.Error()
		}
		return fmt.Sprintf("OK port %d reset", port)

	case "temp":
		port, err := parsePort(arg(fields, 1))
		if err != nil {
			return "ERR " + err.Error()
		}
		st := b.PortStatus(port)
		if st.Device == "" {
			return fmt.Sprintf("ERR port %d not connected", port)
		}
		return fmt.Sprintf("OK %.1f", st.TempC)

	case "probe":
		port, err := parsePort(arg(fields, 1))
		if err != nil {
			return "ERR " + err.Error()
		}
		st := b.PortStatus(port)
		if st.Device == "" {
			return fmt.Sprintf("ERR port %d not connected", port)
		}
		return fmt.Sprintf("OK power=%s fan=%s", okFail(st.PowerOK), okFail(st.FanOK))

	case "console":
		port, err := parsePort(arg(fields, 1))
		if err != nil {
			return "ERR " + err.Error()
		}
		data, err := b.Console(port)
		if err != nil {
			return "ERR " + err.Error()
		}
		text := strings.ReplaceAll(string(data), "\n.", "\n..") // dot-stuff
		return "OK console dump follows\n" + text + "\n."

	case "amps":
		in, err := parseInlet(arg(fields, 1))
		if err != nil {
			return "ERR " + err.Error()
		}
		return fmt.Sprintf("OK %.1f", b.InletAmps(in))

	case "breaker":
		in, err := parseInlet(arg(fields, 1))
		if err != nil {
			return "ERR " + err.Error()
		}
		if len(fields) >= 3 && strings.ToLower(fields[2]) == "reset" {
			b.ResetBreaker(in)
			return fmt.Sprintf("OK inlet %c breaker reset", 'A'+in)
		}
		state := "closed"
		if b.BreakerTripped(in) {
			state = "TRIPPED"
		}
		return fmt.Sprintf("OK inlet %c breaker %s", 'A'+in, state)

	case "aux":
		var sb strings.Builder
		sb.WriteString("OK")
		for i := 0; i < AuxPorts; i++ {
			fmt.Fprintf(&sb, "\naux %d outlet=%s (latched)", i, onOff(b.AuxOn(i)))
		}
		return sb.String()

	default:
		return "ERR unknown command " + fields[0]
	}
}

func arg(fields []string, i int) string {
	if i >= len(fields) {
		return ""
	}
	return fields[i]
}

func parsePort(s string) (int, error) {
	if s == "" {
		return 0, fmt.Errorf("missing port number")
	}
	p, err := strconv.Atoi(s)
	if err != nil {
		return 0, fmt.Errorf("bad port %q", s)
	}
	if p < 0 || p >= NodePorts {
		return 0, fmt.Errorf("port %d out of range 0-%d", p, NodePorts-1)
	}
	return p, nil
}

func parseInlet(s string) (int, error) {
	switch strings.ToLower(s) {
	case "a":
		return 0, nil
	case "b":
		return 1, nil
	default:
		return 0, fmt.Errorf("bad inlet %q (want a or b)", s)
	}
}

func onOff(v bool) string {
	if v {
		return "on"
	}
	return "off"
}

func okFail(v bool) string {
	if v {
		return "ok"
	}
	return "FAIL"
}

// Server serves NIMP over TCP with optional IP filtering (§3.4: "native IP
// filtering can be used for higher security").
type Server struct {
	box    *Box
	mu     sync.Mutex
	filter func(remoteAddr string) bool
	wg     sync.WaitGroup
}

// NewServer wraps a box for network access.
func NewServer(b *Box) *Server { return &Server{box: b} }

// SetIPFilter installs the access predicate; nil allows everyone.
func (s *Server) SetIPFilter(allow func(remoteAddr string) bool) {
	s.mu.Lock()
	s.filter = allow
	s.mu.Unlock()
}

// Serve accepts NIMP connections until the listener closes.
func (s *Server) Serve(l net.Listener) error {
	defer s.wg.Wait()
	for {
		conn, err := l.Accept()
		if err != nil {
			return err
		}
		s.mu.Lock()
		filter := s.filter
		s.mu.Unlock()
		if filter != nil && !filter(conn.RemoteAddr().String()) {
			fmt.Fprintf(conn, "ERR access denied\n")
			conn.Close()
			continue
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.box.ServeConn(conn)
		}()
	}
}

// ServeConn runs the line protocol on one connection (NIMP over TCP, or
// SIMP when rw is a serial link). It returns when the peer disconnects or
// sends "quit".
func (b *Box) ServeConn(rw io.ReadWriter) {
	if c, ok := rw.(io.Closer); ok {
		defer c.Close()
	}
	fmt.Fprintf(rw, "%s id=%s ready\n", Version, b.id)
	sc := bufio.NewScanner(rw)
	sc.Buffer(make([]byte, 4096), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if strings.TrimSpace(strings.ToLower(line)) == "quit" {
			fmt.Fprintf(rw, "OK bye\n")
			return
		}
		if strings.TrimSpace(line) == "" {
			continue
		}
		fmt.Fprintf(rw, "%s\n", b.HandleCommand(line))
	}
}
