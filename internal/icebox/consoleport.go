package icebox

import (
	"fmt"
	"io"
	"net"
	"sync"
)

// Per-device console access (§3.4): "telnet and ssh connections can be
// established either with the ICE Box or with each individual device
// connected to the ICE Box using specific port numbers." A console
// listener binds one TCP listener per node port; a connecting client first
// receives the port's post-mortem buffer (so context survives a crash)
// and then the live serial stream.

// ConsoleServer serves one node port's serial console over TCP.
type ConsoleServer struct {
	box  *Box
	port int

	mu      sync.Mutex
	clients map[net.Conn]struct{}
}

// NewConsoleServer returns a console server for a node port.
func NewConsoleServer(b *Box, port int) (*ConsoleServer, error) {
	b.mu.Lock()
	err := b.checkPortLocked(port)
	b.mu.Unlock()
	if err != nil {
		return nil, err
	}
	return &ConsoleServer{box: b, port: port, clients: make(map[net.Conn]struct{})}, nil
}

// Serve accepts console sessions until the listener closes. Each session
// gets the buffered history, then live output; client input is discarded
// (the serial line into the node is not modeled).
func (cs *ConsoleServer) Serve(l net.Listener) error {
	var wg sync.WaitGroup
	defer wg.Wait()
	for {
		conn, err := l.Accept()
		if err != nil {
			return err
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			cs.session(conn)
		}()
	}
}

// session runs one console client.
func (cs *ConsoleServer) session(conn net.Conn) {
	defer conn.Close()
	dev := cs.box.Device(cs.port)
	fmt.Fprintf(conn, "-- ICE Box %s port %d console (%s); buffered history follows --\n",
		cs.box.ID(), cs.port, dev.Name())
	history, err := cs.box.Console(cs.port)
	if err != nil {
		fmt.Fprintf(conn, "ERR %v\n", err)
		return
	}
	if _, err := conn.Write(history); err != nil {
		return
	}
	fmt.Fprintf(conn, "-- live --\n")

	// Attach a pipe as a live listener; detach on any write failure.
	pw := &connWriter{conn: conn}
	if err := cs.box.AttachConsole(cs.port, pw); err != nil {
		fmt.Fprintf(conn, "ERR %v\n", err)
		return
	}
	cs.mu.Lock()
	cs.clients[conn] = struct{}{}
	cs.mu.Unlock()
	defer func() {
		cs.mu.Lock()
		delete(cs.clients, conn)
		cs.mu.Unlock()
		cs.detach(pw)
	}()

	// Block until the client goes away; input bytes are drained and
	// dropped.
	buf := make([]byte, 256)
	for {
		if _, err := conn.Read(buf); err != nil {
			return
		}
	}
}

func (cs *ConsoleServer) detach(w io.Writer) {
	cs.box.mu.Lock()
	con := cs.box.ports[cs.port].con
	cs.box.mu.Unlock()
	con.Detach(w)
}

// connWriter forwards console bytes to a TCP client, going inert after the
// first failure so a dead client cannot stall the node's serial path.
type connWriter struct {
	conn net.Conn
	mu   sync.Mutex
	dead bool
}

func (w *connWriter) Write(p []byte) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.dead {
		return len(p), nil
	}
	if _, err := w.conn.Write(p); err != nil {
		w.dead = true
	}
	return len(p), nil
}

// ServeConsoles starts one console listener per connected node port,
// bound to consecutive TCP ports starting at basePort+portIndex (the
// "specific port numbers" scheme). It returns the listeners so the caller
// controls shutdown.
func ServeConsoles(b *Box, host string, basePort int) ([]net.Listener, error) {
	var listeners []net.Listener
	for _, port := range b.ConnectedPorts() {
		l, err := net.Listen("tcp", fmt.Sprintf("%s:%d", host, basePort+port))
		if err != nil {
			for _, prev := range listeners {
				prev.Close()
			}
			return nil, err
		}
		cs, err := NewConsoleServer(b, port)
		if err != nil {
			l.Close()
			for _, prev := range listeners {
				prev.Close()
			}
			return nil, err
		}
		go cs.Serve(l) //nolint:errcheck // ends when the listener closes
		listeners = append(listeners, l)
	}
	return listeners, nil
}
