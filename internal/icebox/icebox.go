// Package icebox models the ICE Box management device (paper §3): a 1U
// box powering ten compute nodes and two auxiliary devices from two 15 A
// inlets, with per-node temperature and power probes, a per-node reset
// line, serial-console concentration with 16 KiB post-mortem buffers, and
// a text command protocol (SIMP over serial, NIMP over ethernet — the same
// commands either way) plus telnet-style TCP access and an SNMP-ish OID
// table.
//
// Power behavior follows §3.1: node outlets can be cycled on demand, the
// two auxiliary outlets power on with the box and stay on ("to ensure that
// host nodes, switches and other devices are not powered off by mistake"),
// and power-up is automatically sequenced "reducing the risk of power
// spikes" — modeled here as real inrush current against a 15 A breaker per
// inlet.
package icebox

import (
	"fmt"
	"strings"
	"sync"
	"time"

	"clusterworx/internal/clock"
	"clusterworx/internal/console"
)

// Physical layout constants.
const (
	NodePorts = 10
	AuxPorts  = 2

	// Per-inlet electrical model.
	BreakerAmps    = 15.0
	nodeSteadyAmps = 1.5
	nodeInrushAmps = 5.0 // total draw during the inrush window
	inrushWindow   = 200 * time.Millisecond

	// DefaultSequenceDelay is the stagger between outlets during a
	// sequenced power-up.
	DefaultSequenceDelay = 300 * time.Millisecond
)

// Device is the hardware an ICE Box node port controls and probes. It is
// satisfied by *node.Node.
type Device interface {
	Name() string
	PowerOn()
	PowerOff()
	Reset()
	Temperature() float64
	PowerProbe() bool
	FanOK() bool
	Serial() *console.Console
}

// PortStatus is one node port's view for "status" queries.
type PortStatus struct {
	Port     int
	Device   string // "" when nothing connected
	OutletOn bool
	PowerOK  bool // node PSU delivering power
	TempC    float64
	FanOK    bool
}

// Box is one ICE Box.
type Box struct {
	mu  sync.Mutex
	clk *clock.Clock
	id  string

	ports [NodePorts]struct {
		dev       Device
		outletOn  bool
		con       *console.Console // ICE Box-side capture buffer
		poweredAt time.Duration    // outlet-on time, for inrush accounting
	}
	aux [AuxPorts]struct {
		name string
		on   bool
	}
	seqDelay time.Duration
	tripped  [2]bool    // breaker state per inlet
	peakAmps [2]float64 // highest observed inlet current

	pendingSeq []*clock.Timer
}

// New returns a powered ICE Box with auxiliary outlets already on.
func New(clk *clock.Clock, id string) *Box {
	b := &Box{clk: clk, id: id, seqDelay: DefaultSequenceDelay}
	for i := range b.ports {
		b.ports[i].con = console.New(console.DefaultRingSize)
		b.ports[i].poweredAt = -1
	}
	for i := range b.aux {
		b.aux[i].name = fmt.Sprintf("aux%d", i)
		b.aux[i].on = true // latched on with box power
	}
	return b
}

// ID returns the box identifier.
func (b *Box) ID() string { return b.id }

// SetSequenceDelay changes the power-up stagger; zero disables sequencing
// (the experiment control for E12).
func (b *Box) SetSequenceDelay(d time.Duration) {
	b.mu.Lock()
	b.seqDelay = d
	b.mu.Unlock()
}

// Connect attaches dev to port. The device's serial output starts flowing
// into the port's 16 KiB post-mortem buffer.
func (b *Box) Connect(port int, dev Device) error {
	if port < 0 || port >= NodePorts {
		return fmt.Errorf("icebox %s: port %d out of range", b.id, port)
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.ports[port].dev != nil {
		return fmt.Errorf("icebox %s: port %d already connected", b.id, port)
	}
	b.ports[port].dev = dev
	dev.Serial().Attach(b.ports[port].con)
	return nil
}

// Device returns the device on port, or nil.
func (b *Box) Device(port int) Device {
	b.mu.Lock()
	defer b.mu.Unlock()
	if port < 0 || port >= NodePorts {
		return nil
	}
	return b.ports[port].dev
}

// inlet returns the inlet index feeding a node port: A feeds 0-4, B 5-9.
func inlet(port int) int {
	if port < NodePorts/2 {
		return 0
	}
	return 1
}

// --- power control ---------------------------------------------------------------

// PowerOn energizes a node outlet immediately (no sequencing: single-port
// commands are presumed deliberate). Returns an error for empty ports,
// range errors, or a tripped breaker.
func (b *Box) PowerOn(port int) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.powerOnLocked(port)
}

func (b *Box) powerOnLocked(port int) error {
	if err := b.checkPortLocked(port); err != nil {
		return err
	}
	in := inlet(port)
	if b.tripped[in] {
		return fmt.Errorf("icebox %s: inlet %c breaker tripped", b.id, 'A'+in)
	}
	p := &b.ports[port]
	if p.outletOn {
		return nil
	}
	p.outletOn = true
	p.poweredAt = b.clk.Now()
	if b.inletAmpsLocked(in) > BreakerAmps {
		b.tripLocked(in)
		return fmt.Errorf("icebox %s: inrush tripped inlet %c breaker", b.id, 'A'+in)
	}
	dev := p.dev
	b.mu.Unlock()
	dev.PowerOn()
	b.mu.Lock()
	return nil
}

// PowerOff de-energizes a node outlet.
func (b *Box) PowerOff(port int) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if err := b.checkPortLocked(port); err != nil {
		return err
	}
	p := &b.ports[port]
	if !p.outletOn {
		return nil
	}
	p.outletOn = false
	p.poweredAt = -1
	dev := p.dev
	b.mu.Unlock()
	dev.PowerOff()
	b.mu.Lock()
	return nil
}

// PowerCycle power-cycles a node outlet: off, one second, on.
func (b *Box) PowerCycle(port int) error {
	if err := b.PowerOff(port); err != nil {
		return err
	}
	b.clk.AfterFunc(time.Second, func() {
		b.PowerOn(port) //nolint:errcheck // breaker trips surface via status
	})
	return nil
}

// Reset pulses the node's motherboard reset line without touching power.
func (b *Box) Reset(port int) error {
	b.mu.Lock()
	if err := b.checkPortLocked(port); err != nil {
		b.mu.Unlock()
		return err
	}
	dev := b.ports[port].dev
	b.mu.Unlock()
	dev.Reset()
	return nil
}

// PowerOnAll powers every connected node outlet using the sequencing
// stagger. With sequencing disabled every outlet energizes in the same
// instant — which is how you trip a breaker.
func (b *Box) PowerOnAll() {
	b.mu.Lock()
	delay := b.seqDelay
	b.mu.Unlock()
	for i := 0; i < NodePorts; i++ {
		if b.Device(i) == nil {
			continue
		}
		port := i
		// The sequencer is a per-outlet timer: outlet k energizes at
		// k*delay regardless of which other outlets are populated, so a
		// node's boot instant depends only on its own port.
		d := delay * time.Duration(port)
		if d == 0 {
			b.PowerOn(port) //nolint:errcheck // breaker trips surface via status
			continue
		}
		b.mu.Lock()
		b.pendingSeq = append(b.pendingSeq, b.clk.AfterFunc(d, func() {
			b.PowerOn(port) //nolint:errcheck // breaker trips surface via status
		}))
		b.mu.Unlock()
	}
}

// PowerOffAll de-energizes all node outlets (aux outlets stay on).
func (b *Box) PowerOffAll() {
	b.mu.Lock()
	for _, t := range b.pendingSeq {
		t.Stop()
	}
	b.pendingSeq = nil
	b.mu.Unlock()
	for i := 0; i < NodePorts; i++ {
		if b.Device(i) != nil {
			b.PowerOff(i) //nolint:errcheck // connected ports cannot fail here
		}
	}
}

// AuxOn reports an auxiliary outlet's state. Aux outlets cannot be cycled.
func (b *Box) AuxOn(i int) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return i >= 0 && i < AuxPorts && b.aux[i].on
}

// inletAmpsLocked estimates the instantaneous current on an inlet,
// counting inrush for outlets energized within the inrush window.
func (b *Box) inletAmpsLocked(in int) float64 {
	now := b.clk.Now()
	amps := 0.5 // aux device share
	for i := range b.ports {
		if inlet(i) != in || !b.ports[i].outletOn {
			continue
		}
		if now-b.ports[i].poweredAt < inrushWindow {
			amps += nodeInrushAmps
		} else {
			amps += nodeSteadyAmps
		}
	}
	if amps > b.peakAmps[in] {
		b.peakAmps[in] = amps
	}
	return amps
}

// PeakAmps reports the highest current ever observed on an inlet,
// including the instant that tripped its breaker.
func (b *Box) PeakAmps(in int) float64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	if in < 0 || in > 1 {
		return 0
	}
	return b.peakAmps[in]
}

// InletAmps reports the modeled current on inlet 0 (A) or 1 (B).
func (b *Box) InletAmps(in int) float64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.inletAmpsLocked(in)
}

// BreakerTripped reports whether an inlet's breaker has opened.
func (b *Box) BreakerTripped(in int) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return in >= 0 && in < 2 && b.tripped[in]
}

// ResetBreaker closes a tripped breaker (a human walked to the rack).
func (b *Box) ResetBreaker(in int) {
	b.mu.Lock()
	if in >= 0 && in < 2 {
		b.tripped[in] = false
	}
	b.mu.Unlock()
}

// tripLocked opens an inlet breaker: every outlet on the inlet loses
// power, including the latched aux outlet.
func (b *Box) tripLocked(in int) {
	b.tripped[in] = true
	b.aux[in].on = false
	var victims []Device
	for i := range b.ports {
		if inlet(i) == in && b.ports[i].outletOn {
			b.ports[i].outletOn = false
			b.ports[i].poweredAt = -1
			if b.ports[i].dev != nil {
				victims = append(victims, b.ports[i].dev)
			}
		}
	}
	b.mu.Unlock()
	for _, d := range victims {
		d.PowerOff()
	}
	b.mu.Lock()
}

// --- probes and consoles -----------------------------------------------------------

// Status returns every node port's probe readings.
func (b *Box) Status() []PortStatus {
	out := make([]PortStatus, NodePorts)
	for i := range out {
		out[i] = b.PortStatus(i)
	}
	return out
}

// PortStatus returns one port's probe readings. Probes work regardless of
// node state: they are ICE Box hardware.
func (b *Box) PortStatus(port int) PortStatus {
	b.mu.Lock()
	dev := b.ports[port].dev
	on := b.ports[port].outletOn
	b.mu.Unlock()
	st := PortStatus{Port: port, OutletOn: on}
	if dev != nil {
		st.Device = dev.Name()
		st.PowerOK = dev.PowerProbe()
		st.TempC = dev.Temperature()
		st.FanOK = dev.FanOK()
	}
	return st
}

// Console returns the port's post-mortem buffer contents (§3.3: "up to
// 16k ... allows even post-mortem analysis").
func (b *Box) Console(port int) ([]byte, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if err := b.checkPortLocked(port); err != nil {
		return nil, err
	}
	return b.ports[port].con.PostMortem(), nil
}

// AttachConsole streams a port's live serial output to w (a telnet
// session).
func (b *Box) AttachConsole(port int, w interface{ Write([]byte) (int, error) }) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if err := b.checkPortLocked(port); err != nil {
		return err
	}
	b.ports[port].con.Attach(w)
	return nil
}

func (b *Box) checkPortLocked(port int) error {
	if port < 0 || port >= NodePorts {
		return fmt.Errorf("icebox %s: port %d out of range", b.id, port)
	}
	if b.ports[port].dev == nil {
		return fmt.Errorf("icebox %s: port %d not connected", b.id, port)
	}
	return nil
}

// ConnectedPorts returns the indexes with devices attached.
func (b *Box) ConnectedPorts() []int {
	b.mu.Lock()
	defer b.mu.Unlock()
	var out []int
	for i := range b.ports {
		if b.ports[i].dev != nil {
			out = append(out, i)
		}
	}
	return out
}

// FindPort returns the port a named device is connected to.
func (b *Box) FindPort(name string) (int, bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	for i := range b.ports {
		if b.ports[i].dev != nil && b.ports[i].dev.Name() == name {
			return i, true
		}
	}
	return 0, false
}

// --- SNMP-ish access ------------------------------------------------------------------

// snmpBase is the enterprise OID prefix for ICE Box objects.
const snmpBase = "1.3.6.1.4.1.24779"

// SNMPGet resolves an OID: <base>.1.<port>.<column> with columns
// 1=device, 2=outlet, 3=power, 4=temp, 5=fan.
func (b *Box) SNMPGet(oid string) (string, error) {
	rest, ok := strings.CutPrefix(oid, snmpBase+".1.")
	if !ok {
		return "", fmt.Errorf("icebox %s: no such OID %s", b.id, oid)
	}
	var port, col int
	if _, err := fmt.Sscanf(rest, "%d.%d", &port, &col); err != nil {
		return "", fmt.Errorf("icebox %s: bad OID %s", b.id, oid)
	}
	if port < 0 || port >= NodePorts {
		return "", fmt.Errorf("icebox %s: no such port %d", b.id, port)
	}
	st := b.PortStatus(port)
	switch col {
	case 1:
		return st.Device, nil
	case 2:
		return boolStr(st.OutletOn), nil
	case 3:
		return boolStr(st.PowerOK), nil
	case 4:
		return fmt.Sprintf("%.1f", st.TempC), nil
	case 5:
		return boolStr(st.FanOK), nil
	default:
		return "", fmt.Errorf("icebox %s: no such column %d", b.id, col)
	}
}

// SNMPWalk returns every OID/value pair under the given prefix in OID
// order — what an SNMP manager's walk operation sees. An empty prefix
// walks the whole ICE Box subtree.
func (b *Box) SNMPWalk(prefix string) []SNMPVar {
	var out []SNMPVar
	for _, port := range b.ConnectedPorts() {
		for col := 1; col <= 5; col++ {
			oid := fmt.Sprintf("%s.1.%d.%d", snmpBase, port, col)
			if prefix != "" && !strings.HasPrefix(oid, prefix) {
				continue
			}
			v, err := b.SNMPGet(oid)
			if err != nil {
				continue
			}
			out = append(out, SNMPVar{OID: oid, Value: v})
		}
	}
	return out
}

// SNMPVar is one OID binding from a walk.
type SNMPVar struct {
	OID   string
	Value string
}

func boolStr(v bool) string {
	if v {
		return "1"
	}
	return "0"
}
