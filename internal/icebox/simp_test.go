package icebox

import (
	"net"
	"strings"
	"testing"
	"time"

	"clusterworx/internal/clock"
)

// SIMP is the same command set over a serial link; ServeConn on an
// in-process duplex pipe models the RS-232 path exactly.
func TestSIMPOverSerialPipe(t *testing.T) {
	clk := clock.New()
	b, nodes := rig(t, clk, 2)
	host, dev := net.Pipe()
	done := make(chan struct{})
	go func() {
		defer close(done)
		b.ServeConn(dev)
	}()

	rd := newLineReader(host)
	host.SetDeadline(time.Now().Add(2 * time.Second))
	if banner := rd.line(t); !strings.Contains(banner, "SIMP/NIMP") {
		t.Fatalf("banner = %q", banner)
	}

	send := func(cmd string) string {
		t.Helper()
		if _, err := host.Write([]byte(cmd + "\n")); err != nil {
			t.Fatal(err)
		}
		return rd.line(t)
	}
	if resp := send("power on 1"); !strings.HasPrefix(resp, "OK") {
		t.Fatalf("power on: %q", resp)
	}
	clkAdvanceAsync(t, clk, 10*time.Second)
	if nodes[1].State().String() != "up" {
		t.Fatalf("node1 = %v", nodes[1].State())
	}
	if resp := send("temp 1"); !strings.HasPrefix(resp, "OK ") {
		t.Fatalf("temp: %q", resp)
	}
	if resp := send("quit"); !strings.Contains(resp, "bye") {
		t.Fatalf("quit: %q", resp)
	}
	host.Close()
	<-done
}

// clkAdvanceAsync advances the virtual clock from the test goroutine while
// protocol goroutines run; the clock is mutex-safe.
func clkAdvanceAsync(t *testing.T, clk *clock.Clock, d time.Duration) {
	t.Helper()
	clk.Advance(d)
}

func TestSNMPAgainstDeadAndLivePorts(t *testing.T) {
	clk := clock.New()
	b, nodes := rig(t, clk, 2)
	b.PowerOn(0)
	clk.Advance(10 * time.Second)
	nodes[0].FailFan()

	// Fan column flips on the live node.
	if v, err := b.SNMPGet(snmpBase + ".1.0.5"); err != nil || v != "0" {
		t.Fatalf("fan OID after failure = %q, %v", v, err)
	}
	// Power column on the never-powered node reads 0; probes still answer.
	if v, err := b.SNMPGet(snmpBase + ".1.1.3"); err != nil || v != "0" {
		t.Fatalf("power OID on off node = %q, %v", v, err)
	}
	if v, err := b.SNMPGet(snmpBase + ".1.1.4"); err != nil || v == "" {
		t.Fatalf("temp OID on off node = %q, %v", v, err)
	}
}
