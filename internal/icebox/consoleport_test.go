package icebox

import (
	"net"
	"strings"
	"testing"
	"time"

	"clusterworx/internal/clock"
)

func TestConsoleServerHistoryThenLive(t *testing.T) {
	clk := clock.New()
	b, nodes := rig(t, clk, 1)
	b.PowerOn(0)
	clk.Advance(10 * time.Second) // boot banner lands in the buffer

	cs, err := NewConsoleServer(b, 0)
	if err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go cs.Serve(l) //nolint:errcheck // ends with listener

	conn, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.SetReadDeadline(time.Now().Add(2 * time.Second))

	// History phase: banner + buffered boot output up to "-- live --".
	got := readUntil(t, conn, "-- live --")
	if !strings.Contains(got, "port 0 console (node000)") {
		t.Fatalf("missing banner:\n%s", got)
	}
	if !strings.Contains(got, "LinuxBIOS") {
		t.Fatalf("missing buffered boot output:\n%s", got)
	}

	// Live phase: new serial output streams through.
	nodes[0].Serial().WriteString("live kernel message\n")
	live := readUntil(t, conn, "live kernel message")
	if live == "" {
		t.Fatal("live output not streamed")
	}
}

func TestConsoleServerRejectsEmptyPort(t *testing.T) {
	clk := clock.New()
	b, _ := rig(t, clk, 1)
	if _, err := NewConsoleServer(b, 5); err == nil {
		t.Fatal("console server on empty port")
	}
	if _, err := NewConsoleServer(b, -1); err == nil {
		t.Fatal("console server on invalid port")
	}
}

func TestConsoleServerDeadClientDoesNotBlockSerial(t *testing.T) {
	clk := clock.New()
	b, nodes := rig(t, clk, 1)
	cs, err := NewConsoleServer(b, 0)
	if err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go cs.Serve(l) //nolint:errcheck // ends with listener

	conn, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	readUntil(t, conn, "-- live --")
	conn.Close() // client vanishes

	// The node keeps writing; nothing blocks, buffer keeps collecting.
	for i := 0; i < 1000; i++ {
		nodes[0].Serial().WriteString("chatter after client death\n")
	}
	dump, err := b.Console(0)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(dump), "chatter after client death") {
		t.Fatal("serial path broke after client death")
	}
}

func TestServeConsolesPortScheme(t *testing.T) {
	clk := clock.New()
	b, nodes := rig(t, clk, 3)
	base := freeBasePort(t)
	listeners, err := ServeConsoles(b, "127.0.0.1", base)
	if err != nil {
		t.Skipf("port range busy: %v", err)
	}
	defer func() {
		for _, l := range listeners {
			l.Close()
		}
	}()
	if len(listeners) != 3 {
		t.Fatalf("listeners = %d", len(listeners))
	}
	// Port base+1 must serve node001's console.
	nodes[1].Serial().WriteString("I am node001\n")
	conn, err := net.Dial("tcp", listeners[1].Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	got := readUntil(t, conn, "-- live --")
	if !strings.Contains(got, "node001") || !strings.Contains(got, "I am node001") {
		t.Fatalf("wrong console on port %d:\n%s", base+1, got)
	}
}

// readUntil accumulates from conn until the marker appears.
func readUntil(t *testing.T, conn net.Conn, marker string) string {
	t.Helper()
	var b strings.Builder
	buf := make([]byte, 1024)
	for !strings.Contains(b.String(), marker) {
		n, err := conn.Read(buf)
		if n > 0 {
			b.Write(buf[:n])
		}
		if err != nil {
			t.Fatalf("read (have %q): %v", b.String(), err)
		}
	}
	return b.String()
}

// freeBasePort finds a base with three consecutive free ports.
func freeBasePort(t *testing.T) int {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	base := l.Addr().(*net.TCPAddr).Port + 10
	l.Close()
	return base
}
