package node

import (
	"testing"
	"testing/quick"
	"time"

	"clusterworx/internal/clock"
	"clusterworx/internal/gather"
)

// Property: temperature stays within physical bounds for any sequence of
// power/load/fan operations, and jiffy counters never decrease.
func TestPropertyPhysicalBounds(t *testing.T) {
	f := func(ops []uint8) bool {
		clk := clock.New()
		n := New(clk, Config{Name: "p", Seed: 42})
		sg, err := gather.NewStatGatherer(n.FS())
		if err != nil {
			return false
		}
		defer sg.Close()
		var prev gather.CPUStats
		sg.Gather(&prev) //nolint:errcheck // frozen initial state parses

		for _, op := range ops {
			switch op % 8 {
			case 0:
				n.PowerOn()
			case 1:
				n.PowerOff()
			case 2:
				n.Reset()
			case 3:
				n.SetLoad(float64(op%5) / 2)
			case 4:
				n.FailFan()
			case 5:
				n.RepairFan()
			case 6:
				n.Crash("prop")
			case 7:
				n.Halt()
			}
			clk.Advance(time.Duration(op%60+1) * time.Second)

			temp := n.Temperature()
			if temp < ambientTemp-1 || temp > ambientTemp+idleRise+loadRise+fanFailRise+1 {
				return false
			}
			var cur gather.CPUStats
			if err := sg.Gather(&cur); err != nil {
				return false
			}
			if cur.Total.User < prev.Total.User || cur.Total.Idle < prev.Total.Idle ||
				cur.ContextSwitches < prev.ContextSwitches {
				return false
			}
			prev = cur
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: from any reachable state, power-off then power-on (with a
// working PSU, undamaged silicon, good DIMMs) always yields Up.
func TestPropertyPowerCycleRecovers(t *testing.T) {
	f := func(ops []uint8) bool {
		clk := clock.New()
		n := New(clk, Config{Name: "p", Seed: 7})
		for _, op := range ops {
			switch op % 6 {
			case 0:
				n.PowerOn()
			case 1:
				n.PowerOff()
			case 2:
				n.Crash("x")
			case 3:
				n.Halt()
			case 4:
				n.Reset()
			case 5:
				n.SetLoad(1)
			}
			clk.Advance(time.Duration(op%20) * time.Second)
		}
		if n.Damaged() {
			return true // fried hardware is allowed to stay dead
		}
		n.PowerOff()
		n.PowerOn()
		clk.Advance(time.Minute)
		return n.State() == Up
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// The load average relaxation: load.1 converges to the offered load and
// decays when the load is removed.
func TestLoadAverageConvergence(t *testing.T) {
	clk := clock.New()
	n := New(clk, Config{Name: "n"})
	n.PowerOn()
	clk.Advance(10 * time.Second)
	n.SetLoad(4)
	clk.Advance(15 * time.Minute)
	if la := n.LoadAvg(); la < 3.5 || la > 4.5 {
		t.Fatalf("load.1 = %.2f after 15m at load 4", la)
	}
	n.SetLoad(0)
	clk.Advance(15 * time.Minute)
	if la := n.LoadAvg(); la > 0.3 {
		t.Fatalf("load.1 = %.2f after 15m idle", la)
	}
}

// Uptime resets across a power cycle but not across a reset... actually a
// reset reboots the kernel, so uptime restarts there too.
func TestUptimeResetSemantics(t *testing.T) {
	clk := clock.New()
	n := New(clk, Config{Name: "n"})
	n.PowerOn()
	clk.Advance(10 * time.Second)
	clk.Advance(time.Hour)
	before := n.Uptime()
	if before < time.Hour {
		t.Fatalf("uptime = %v", before)
	}
	n.Reset()
	clk.Advance(10 * time.Second)
	after := n.Uptime()
	if after >= before {
		t.Fatalf("uptime did not reset on reboot: %v -> %v", before, after)
	}
}
