// Package node models one cluster node as the rest of the system observes
// it: a power/boot state machine (driven by firmware), CPU/memory/network/
// disk activity rendered through a simulated /proc, thermal dynamics with
// a failable fan, hardware probes for the ICE Box (temperature, PSU
// state, reset line), and a serial port.
//
// The paper's experiments never look inside a node — they read its /proc
// files, its probes, and its serial console, and they cut or cycle its
// power. Those surfaces are what this model makes faithful.
package node

import (
	"fmt"
	"math"
	"math/rand"
	"sync"
	"time"

	"clusterworx/internal/clock"
	"clusterworx/internal/console"
	"clusterworx/internal/firmware"
	"clusterworx/internal/procfs"
)

// State is the node lifecycle state.
type State uint8

// Node states.
const (
	PowerOff State = iota
	Booting
	Up
	Halted  // OS shut down, power still applied
	Crashed // kernel panic or hardware fault; power still applied
)

// String names the state.
func (s State) String() string {
	switch s {
	case PowerOff:
		return "off"
	case Booting:
		return "booting"
	case Up:
		return "up"
	case Halted:
		return "halted"
	case Crashed:
		return "crashed"
	default:
		return fmt.Sprintf("state(%d)", uint8(s))
	}
}

// Thermal constants (°C).
const (
	ambientTemp   = 22.0
	idleRise      = 18.0 // above ambient at zero load
	loadRise      = 30.0 // additional at full load
	fanFailRise   = 35.0 // additional with a dead fan
	DamageTemp    = 95.0 // silicon dies past this
	thermalTauSec = 60.0
	loadTauSec    = 20.0
)

// Config describes the node hardware.
type Config struct {
	Name        string
	MemBytes    uint64
	NumCPUs     int
	CPUMHz      float64
	Model       string
	KernelVer   string
	DiskBytes   int64
	DiskBW      float64 // bytes/s
	Firmware    firmware.Firmware
	BootSource  firmware.BootSource
	KernelBytes int64
	Seed        int64
}

func (c Config) withDefaults() Config {
	if c.MemBytes == 0 {
		c.MemBytes = 1 << 30
	}
	if c.NumCPUs == 0 {
		c.NumCPUs = 1
	}
	if c.CPUMHz == 0 {
		c.CPUMHz = 999.541
	}
	if c.Model == "" {
		c.Model = "Pentium III (Coppermine)"
	}
	if c.KernelVer == "" {
		c.KernelVer = "2.4.18"
	}
	if c.DiskBytes == 0 {
		c.DiskBytes = 40 << 30
	}
	if c.DiskBW == 0 {
		c.DiskBW = 20e6
	}
	if c.Firmware == nil {
		c.Firmware = firmware.NewLinuxBIOS("1.0.1")
	}
	if c.KernelBytes == 0 {
		c.KernelBytes = 4 << 20
	}
	return c
}

// Node is one simulated cluster node. All methods are safe for concurrent
// use; time-dependent quantities are integrated lazily against the virtual
// clock.
type Node struct {
	mu  sync.Mutex
	clk *clock.Clock
	cfg Config
	rng *rand.Rand

	state    State
	bootRun  *firmware.Run
	memFault bool
	damaged  bool

	serial *console.Console
	fs     *procfs.FS
	stat   procfs.NodeStat

	lastAt   time.Duration
	bootedAt time.Duration

	// dynamics
	load       float64 // current run-queue depth
	targetLoad float64
	temp       float64
	fanOK      bool
	psuOK      bool
	netRate    float64 // offered network bytes/s
	netErrRate float64 // injected eth0 rx errors per second
	idleAccum  float64

	onState []func(State)
}

// New constructs a powered-off node.
func New(clk *clock.Clock, cfg Config) *Node {
	cfg = cfg.withDefaults()
	n := &Node{
		clk:    clk,
		cfg:    cfg,
		rng:    rand.New(rand.NewSource(cfg.Seed + 7)),
		serial: console.New(console.DefaultRingSize),
		fs:     procfs.NewFS(),
		temp:   ambientTemp,
		fanOK:  true,
		psuOK:  true,
		state:  PowerOff,
	}
	n.initStat()
	procfs.RegisterStd(n.fs, n.procStat)
	return n
}

func (n *Node) initStat() {
	s := &n.stat
	s.MemTotal = n.cfg.MemBytes
	s.MemFree = n.cfg.MemBytes * 7 / 10
	s.HighTotal = 0
	s.HighFree = 0
	s.SwapTotal = 2 << 30
	s.SwapFree = s.SwapTotal
	s.CPUs = make([]procfs.CPUJiffies, n.cfg.NumCPUs)
	s.IRQ = make([]uint64, 16)
	s.BootTime = 1_041_379_200 // 2003-01-01
	s.Processes = 60
	s.TotalProcs = 60
	s.RunningProcs = 1
	s.LastPID = 300
	s.Disks = []procfs.DiskIO{{Major: 3, Minor: 0}}
	s.Ifaces = []procfs.IfaceStat{{Name: "lo"}, {Name: "eth0"}}
	s.ModelName = n.cfg.Model
	s.MHz = n.cfg.CPUMHz
	s.BogoMIPS = n.cfg.CPUMHz * 1.99
	s.KernelVersion = n.cfg.KernelVer
}

// Name returns the node's hostname.
func (n *Node) Name() string { return n.cfg.Name }

// Serial returns the node's serial port (attach it to an ICE Box port).
func (n *Node) Serial() *console.Console { return n.serial }

// FS returns the node's /proc filesystem; the gathering stage reads it.
func (n *Node) FS() *procfs.FS { return n.fs }

// Firmware returns the installed firmware.
func (n *Node) Firmware() firmware.Firmware { return n.cfg.Firmware }

// BootTime returns this node's firmware cold-start duration (fault-free).
func (n *Node) BootTime() time.Duration {
	return firmware.BootTime(n.cfg.Firmware, firmware.Env{
		MemBytes:      n.cfg.MemBytes,
		Source:        n.cfg.BootSource,
		KernelBytes:   n.cfg.KernelBytes,
		DiskBandwidth: n.cfg.DiskBW,
		NetBandwidth:  100e6 / 8,
	})
}

// DiskBandwidth returns the node's local disk write rate in bytes/s.
func (n *Node) DiskBandwidth() float64 { return n.cfg.DiskBW }

// State returns the lifecycle state.
func (n *Node) State() State {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.advanceLocked()
	return n.state
}

// Reachable reports whether the node answers on the network (the UDP echo
// connectivity check ClusterWorX uses).
func (n *Node) Reachable() bool { return n.State() == Up }

// OnStateChange registers a hook invoked (with the node unlocked) after
// every state transition.
func (n *Node) OnStateChange(fn func(State)) {
	n.mu.Lock()
	n.onState = append(n.onState, fn)
	n.mu.Unlock()
}

// --- power and boot ------------------------------------------------------------

// PowerOn applies power and starts the firmware boot. No-op unless the
// node is off or the PSU is dead.
func (n *Node) PowerOn() {
	n.mu.Lock()
	if n.state != PowerOff || !n.psuOK {
		n.mu.Unlock()
		return
	}
	n.advanceLocked()
	n.startBootLocked()
	n.notify()
}

// PowerOff cuts power immediately: a boot in progress dies, the OS gets no
// shutdown, the serial port goes quiet mid-line.
func (n *Node) PowerOff() {
	n.mu.Lock()
	if n.state == PowerOff {
		n.mu.Unlock()
		return
	}
	n.advanceLocked()
	if n.bootRun != nil {
		n.bootRun.Cancel()
		n.bootRun = nil
	}
	n.state = PowerOff
	n.load = 0
	n.notify()
}

// Reset pulses the motherboard reset line (the ICE Box per-node reset
// switch): the node reboots without a power cycle, recovering even a
// crashed kernel. No effect when powered off.
func (n *Node) Reset() {
	n.mu.Lock()
	if n.state == PowerOff {
		n.mu.Unlock()
		return
	}
	n.advanceLocked()
	if n.bootRun != nil {
		n.bootRun.Cancel()
		n.bootRun = nil
	}
	n.serial.WriteString("\n-- hardware reset --\n")
	n.startBootLocked()
	n.notify()
}

// startBootLocked begins the firmware sequence; callers hold n.mu and the
// notify call afterwards unlocks.
func (n *Node) startBootLocked() {
	if n.damaged {
		// Fried silicon does not POST.
		n.state = Crashed
		return
	}
	n.state = Booting
	env := firmware.Env{
		MemBytes:      n.cfg.MemBytes,
		Source:        n.cfg.BootSource,
		KernelBytes:   n.cfg.KernelBytes,
		DiskBandwidth: n.cfg.DiskBW,
		NetBandwidth:  100e6 / 8,
		MemoryFault:   n.memFault,
	}
	n.bootRun = firmware.Boot(n.clk, n.cfg.Firmware, env, n.serial, func(out firmware.Outcome) {
		n.mu.Lock()
		n.bootRun = nil
		if n.state != Booting {
			n.mu.Unlock()
			return
		}
		if out == firmware.BootOK {
			n.advanceLocked()
			n.state = Up
			n.bootedAt = n.clk.Now()
			n.idleAccum = 0
			n.serial.WriteString(fmt.Sprintf("init: %s entering runlevel 3\n", n.cfg.Name))
		} else {
			n.state = Crashed
		}
		n.notify()
	})
}

// notify releases n.mu and fires state hooks with the state at call time.
func (n *Node) notify() {
	s := n.state
	hooks := append(make([]func(State), 0, len(n.onState)), n.onState...)
	n.mu.Unlock()
	for _, h := range hooks {
		h(s)
	}
}

// Halt performs a clean OS shutdown; power stays applied.
func (n *Node) Halt() {
	n.mu.Lock()
	if n.state != Up {
		n.mu.Unlock()
		return
	}
	n.advanceLocked()
	n.serial.WriteString("The system is going down NOW.\nSystem halted.\n")
	n.state = Halted
	n.load = 0
	n.notify()
}

// Crash simulates a kernel panic, emitting an oops on the serial console.
func (n *Node) Crash(reason string) {
	n.mu.Lock()
	if n.state != Up && n.state != Booting {
		n.mu.Unlock()
		return
	}
	n.advanceLocked()
	if n.bootRun != nil {
		n.bootRun.Cancel()
		n.bootRun = nil
	}
	n.serial.WriteString(fmt.Sprintf(
		"Oops: 0000\nkernel panic: %s\nEIP: 0010:[<c01234ab>]\n<0> Kernel panic: not syncing\n", reason))
	n.state = Crashed
	n.notify()
}

// --- faults ---------------------------------------------------------------------

// FailFan kills the CPU fan; temperature climbs toward damage.
func (n *Node) FailFan() {
	n.mu.Lock()
	n.advanceLocked()
	n.fanOK = false
	n.mu.Unlock()
}

// RepairFan restores the fan.
func (n *Node) RepairFan() {
	n.mu.Lock()
	n.advanceLocked()
	n.fanOK = true
	n.mu.Unlock()
}

// FailPSU kills the power supply: the node loses power and cannot be
// powered on until RepairPSU.
func (n *Node) FailPSU() {
	n.mu.Lock()
	n.psuOK = false
	n.mu.Unlock()
	n.PowerOff()
}

// RepairPSU replaces the power supply.
func (n *Node) RepairPSU() {
	n.mu.Lock()
	n.psuOK = true
	n.mu.Unlock()
}

// SetMemoryFault arms or clears a bad-DIMM fault for subsequent boots.
func (n *Node) SetMemoryFault(bad bool) {
	n.mu.Lock()
	n.memFault = bad
	n.mu.Unlock()
}

// Damaged reports whether the node has suffered permanent thermal damage.
func (n *Node) Damaged() bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.advanceLocked()
	return n.damaged
}

// --- workload --------------------------------------------------------------------

// SetLoad sets the offered run-queue depth the node drifts toward.
func (n *Node) SetLoad(l float64) {
	if l < 0 {
		l = 0
	}
	n.mu.Lock()
	n.advanceLocked()
	n.targetLoad = l
	n.mu.Unlock()
}

// SetNetRate sets offered network traffic in bytes/s (rx+tx combined).
func (n *Node) SetNetRate(bytesPerSec float64) {
	n.mu.Lock()
	n.advanceLocked()
	n.netRate = bytesPerSec
	n.mu.Unlock()
}

// InjectNetErrors makes eth0 accumulate receive errors at the given rate
// per second — a failing NIC, bad cable, or duplex mismatch. Zero stops
// the fault.
func (n *Node) InjectNetErrors(perSec float64) {
	if perSec < 0 {
		perSec = 0
	}
	n.mu.Lock()
	n.advanceLocked()
	n.netErrRate = perSec
	n.mu.Unlock()
}

// --- probes (ICE Box hardware) ----------------------------------------------------
//
// Probes are powered by the ICE Box, not the node: they answer even when
// the node is off or dead.

// Temperature returns the CPU temperature probe reading in °C.
func (n *Node) Temperature() float64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.advanceLocked()
	return n.temp
}

// FanOK reports the CPU fan tach signal.
func (n *Node) FanOK() bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.fanOK
}

// PowerProbe reports whether the node's power supply is delivering power.
func (n *Node) PowerProbe() bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.psuOK && n.state != PowerOff
}

// --- dynamics ----------------------------------------------------------------------

// advanceLocked integrates the node physics from lastAt to now.
func (n *Node) advanceLocked() {
	now := n.clk.Now()
	dt := (now - n.lastAt).Seconds()
	n.lastAt = now
	if dt <= 0 {
		return
	}

	powered := n.state != PowerOff
	running := n.state == Up

	// Load relaxes toward target while the OS runs.
	if running {
		k := 1 - math.Exp(-dt/loadTauSec)
		n.load += (n.targetLoad - n.load) * k
	} else {
		n.load = 0
	}

	// Thermals: heat with power and load, extra when the fan is dead.
	steady := ambientTemp
	if powered {
		loadFrac := n.loadFrac()
		steady = ambientTemp + idleRise + loadRise*loadFrac
		if !n.fanOK {
			steady += fanFailRise
		}
	}
	kT := 1 - math.Exp(-dt/thermalTauSec)
	n.temp += (steady - n.temp) * kT
	if n.temp >= DamageTemp && powered && !n.damaged {
		n.damaged = true
		if n.state == Up || n.state == Booting {
			if n.bootRun != nil {
				n.bootRun.Cancel()
				n.bootRun = nil
			}
			n.serial.WriteString("CPU0: Temperature above threshold\nCPU0: Running in modulated clock mode\nkernel panic: CPU overheat\n")
			n.state = Crashed
		}
	}

	if running {
		n.advanceCountersLocked(dt)
	}
}

// advanceCountersLocked rolls the /proc counters forward by dt seconds.
func (n *Node) advanceCountersLocked(dt float64) {
	s := &n.stat
	loadFrac := n.loadFrac()

	// Jiffies at 100 Hz per CPU, split by utilization.
	totalJiffies := dt * 100
	for i := range s.CPUs {
		c := &s.CPUs[i]
		busy := totalJiffies * loadFrac
		c.User += uint64(busy * 0.85)
		c.System += uint64(busy * 0.12)
		c.Nice += uint64(busy * 0.03)
		c.Idle += uint64(totalJiffies * (1 - loadFrac))
	}

	// Load averages: exponentially-damped averages of the run queue.
	for _, la := range []struct {
		v   *float64
		tau float64
	}{{&s.Load1, 60}, {&s.Load5, 300}, {&s.Load15, 900}} {
		k := 1 - math.Exp(-dt/la.tau)
		*la.v += (n.load - *la.v) * k
	}
	s.RunningProcs = int(math.Ceil(n.load))
	if s.RunningProcs < 1 {
		s.RunningProcs = 1
	}

	// Kernel activity scales with load.
	s.ContextSwitches += uint64(dt * (500 + 8000*loadFrac))
	intr := uint64(dt * (100 + 1200*loadFrac))
	s.Interrupts += intr
	s.IRQ[0] += uint64(dt * 100) // timer
	s.IRQ[14] += intr / 4        // disk
	forks := uint64(dt * (0.5 + 3*loadFrac))
	s.Processes += forks
	s.LastPID += int(forks)
	s.TotalProcs = 60 + int(n.load*4)

	// Memory tracks load with a little wander.
	used := 0.28 + 0.5*loadFrac + 0.02*n.rng.Float64()
	if used > 0.97 {
		used = 0.97
	}
	free := uint64(float64(s.MemTotal) * (1 - used))
	s.MemFree = free
	s.Buffers = uint64(float64(s.MemTotal) * 0.05)
	s.Cached = uint64(float64(s.MemTotal) * (0.15 + 0.05*loadFrac))
	s.Active = s.MemTotal - free - s.Buffers
	s.Inactive = s.Cached / 2

	// Paging and disk activity.
	s.PageIn += uint64(dt * (10 + 200*loadFrac))
	s.PageOut += uint64(dt * (5 + 120*loadFrac))
	d := &s.Disks[0]
	rio := uint64(dt * (2 + 40*loadFrac))
	wio := uint64(dt * (1 + 25*loadFrac))
	d.ReadIO += rio
	d.WriteIO += wio
	d.IO += rio + wio
	d.ReadSectors += rio * 16
	d.WriteSectors += wio * 16

	// Network counters at the offered rate.
	rate := n.netRate
	if rate == 0 {
		rate = 2e4 + 1e5*loadFrac // background chatter
	}
	eth := &s.Ifaces[1]
	bytes_ := uint64(dt * rate / 2)
	pkts := bytes_ / 700
	eth.RxBytes += bytes_
	eth.TxBytes += bytes_
	eth.RxPackets += pkts
	eth.TxPackets += pkts
	eth.RxErrs += uint64(dt * n.netErrRate)

	// Uptime and idle.
	s.UptimeSec = (n.clk.Now() - n.bootedAt).Seconds()
	n.idleAccum += dt * (1 - loadFrac)
	s.IdleSec = n.idleAccum
}

func (n *Node) loadFrac() float64 {
	f := n.load / float64(n.cfg.NumCPUs)
	if f > 1 {
		f = 1
	}
	return f
}

// procStat is the procfs.StatFunc: integrate to now, then expose state.
// Reads while the node is not Up return the last values the OS produced,
// exactly like reading a frozen crash dump; the agent layer checks
// liveness separately.
func (n *Node) procStat() *procfs.NodeStat {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.advanceLocked()
	return &n.stat
}

// LoadAvg returns the current 1-minute load average without going through
// /proc (used by tests).
func (n *Node) LoadAvg() float64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.advanceLocked()
	return n.stat.Load1
}

// Uptime returns time since the OS came up; zero when not running.
func (n *Node) Uptime() time.Duration {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.advanceLocked()
	if n.state != Up {
		return 0
	}
	return n.clk.Now() - n.bootedAt
}
