package node

import (
	"strings"
	"testing"
	"time"

	"clusterworx/internal/clock"
	"clusterworx/internal/firmware"
	"clusterworx/internal/gather"
)

func upNode(t *testing.T, clk *clock.Clock, cfg Config) *Node {
	t.Helper()
	if cfg.Name == "" {
		cfg.Name = "n1"
	}
	n := New(clk, cfg)
	n.PowerOn()
	clk.Advance(10 * time.Second)
	if n.State() != Up {
		t.Fatalf("node not up after 10s: %v", n.State())
	}
	return n
}

func TestLifecycle(t *testing.T) {
	clk := clock.New()
	n := New(clk, Config{Name: "n1"})
	if n.State() != PowerOff || n.Reachable() {
		t.Fatal("fresh node not off")
	}
	n.PowerOn()
	if n.State() != Booting {
		t.Fatalf("state after PowerOn = %v", n.State())
	}
	clk.Advance(10 * time.Second)
	if n.State() != Up || !n.Reachable() {
		t.Fatalf("state after boot = %v", n.State())
	}
	n.PowerOff()
	if n.State() != PowerOff {
		t.Fatal("PowerOff failed")
	}
}

func TestBootTimeDependsOnFirmware(t *testing.T) {
	clk := clock.New()
	fast := New(clk, Config{Name: "lb", Firmware: firmware.NewLinuxBIOS("1")})
	slow := New(clk, Config{Name: "legacy", Firmware: firmware.NewLegacyBIOS()})
	fast.PowerOn()
	slow.PowerOn()
	clk.Advance(5 * time.Second)
	if fast.State() != Up {
		t.Fatal("LinuxBIOS node not up after 5s")
	}
	if slow.State() != Booting {
		t.Fatal("legacy node finished boot impossibly fast")
	}
	clk.Advance(60 * time.Second)
	if slow.State() != Up {
		t.Fatal("legacy node never booted")
	}
}

func TestStateChangeHooks(t *testing.T) {
	clk := clock.New()
	n := New(clk, Config{Name: "n"})
	var seen []State
	n.OnStateChange(func(s State) { seen = append(seen, s) })
	n.PowerOn()
	clk.Advance(10 * time.Second)
	n.PowerOff()
	want := []State{Booting, Up, PowerOff}
	if len(seen) != len(want) {
		t.Fatalf("transitions %v, want %v", seen, want)
	}
	for i := range want {
		if seen[i] != want[i] {
			t.Fatalf("transitions %v, want %v", seen, want)
		}
	}
}

func TestPowerOffDuringBoot(t *testing.T) {
	clk := clock.New()
	n := New(clk, Config{Name: "n"})
	n.PowerOn()
	clk.Advance(500 * time.Millisecond)
	n.PowerOff()
	clk.Advance(time.Minute)
	if n.State() != PowerOff {
		t.Fatalf("state = %v after power cut mid-boot", n.State())
	}
}

func TestResetRecoversCrash(t *testing.T) {
	clk := clock.New()
	n := upNode(t, clk, Config{})
	n.Crash("test oops")
	if n.State() != Crashed {
		t.Fatal("crash failed")
	}
	if !strings.Contains(string(n.Serial().PostMortem()), "kernel panic: test oops") {
		t.Fatal("oops not on serial console")
	}
	n.Reset()
	clk.Advance(10 * time.Second)
	if n.State() != Up {
		t.Fatalf("state after reset = %v", n.State())
	}
	if !strings.Contains(string(n.Serial().PostMortem()), "-- hardware reset --") {
		t.Fatal("reset marker missing from serial")
	}
}

func TestResetWhileOffIsNoop(t *testing.T) {
	clk := clock.New()
	n := New(clk, Config{Name: "n"})
	n.Reset()
	if n.State() != PowerOff {
		t.Fatal("reset powered on an off node")
	}
}

func TestHalt(t *testing.T) {
	clk := clock.New()
	n := upNode(t, clk, Config{})
	n.Halt()
	if n.State() != Halted || n.Reachable() {
		t.Fatalf("state = %v", n.State())
	}
	// Power probe still shows power applied.
	if !n.PowerProbe() {
		t.Fatal("halted node lost power probe")
	}
}

func TestPSUFault(t *testing.T) {
	clk := clock.New()
	n := upNode(t, clk, Config{})
	n.FailPSU()
	if n.State() != PowerOff || n.PowerProbe() {
		t.Fatal("PSU failure did not cut power")
	}
	n.PowerOn() // dead PSU: nothing happens
	if n.State() != PowerOff {
		t.Fatal("powered on with dead PSU")
	}
	n.RepairPSU()
	n.PowerOn()
	clk.Advance(10 * time.Second)
	if n.State() != Up {
		t.Fatal("node did not boot after PSU repair")
	}
}

func TestMemoryFaultBoot(t *testing.T) {
	clk := clock.New()
	n := New(clk, Config{Name: "n"})
	n.SetMemoryFault(true)
	n.PowerOn()
	clk.Advance(time.Minute)
	if n.State() != Crashed {
		t.Fatalf("state with bad DIMM = %v", n.State())
	}
	if !strings.Contains(string(n.Serial().PostMortem()), "memory test failed") {
		t.Fatal("LinuxBIOS memory fault not reported on serial")
	}
	n.SetMemoryFault(false)
	n.PowerOff()
	n.PowerOn()
	clk.Advance(time.Minute)
	if n.State() != Up {
		t.Fatal("node did not recover after DIMM replaced")
	}
}

func TestThermalSteadyStates(t *testing.T) {
	clk := clock.New()
	n := New(clk, Config{Name: "n"})
	if got := n.Temperature(); got != ambientTemp {
		t.Fatalf("off temp = %v", got)
	}
	n.PowerOn()
	clk.Advance(10 * time.Minute) // idle steady state
	idle := n.Temperature()
	if idle < 35 || idle > 45 {
		t.Fatalf("idle temp = %.1f, want ~40", idle)
	}
	n.SetLoad(1)
	clk.Advance(10 * time.Minute)
	loaded := n.Temperature()
	if loaded < 65 || loaded > 75 {
		t.Fatalf("loaded temp = %.1f, want ~70", loaded)
	}
	n.PowerOff()
	clk.Advance(20 * time.Minute)
	if cooled := n.Temperature(); cooled > ambientTemp+1 {
		t.Fatalf("cooled temp = %.1f", cooled)
	}
}

func TestFanFailureBurnsNode(t *testing.T) {
	clk := clock.New()
	n := upNode(t, clk, Config{})
	n.SetLoad(1)
	clk.Advance(5 * time.Minute)
	n.FailFan()
	if n.FanOK() {
		t.Fatal("fan still ok")
	}
	// Steady state with dead fan at full load ≈ 22+18+30+35 = 105 > 95.
	clk.Advance(10 * time.Minute)
	if !n.Damaged() {
		t.Fatalf("node survived dead fan at %.1f°C", n.Temperature())
	}
	if n.State() != Crashed {
		t.Fatalf("state = %v", n.State())
	}
	// Damaged silicon never boots again.
	n.PowerOff()
	n.PowerOn()
	clk.Advance(time.Minute)
	if n.State() != Crashed {
		t.Fatal("fried node booted")
	}
}

func TestFanFailureSurvivableIfPoweredDown(t *testing.T) {
	clk := clock.New()
	n := upNode(t, clk, Config{})
	n.SetLoad(1)
	clk.Advance(5 * time.Minute)
	n.FailFan()
	clk.Advance(60 * time.Second) // temp climbing but below damage
	if n.Damaged() {
		t.Fatalf("damaged too quickly at %.1f°C", n.Temperature())
	}
	n.PowerOff() // the event engine's corrective action
	clk.Advance(30 * time.Minute)
	if n.Damaged() {
		t.Fatal("node damaged despite power-down")
	}
	n.RepairFan()
	n.PowerOn()
	clk.Advance(10 * time.Second)
	if n.State() != Up {
		t.Fatal("node did not recover")
	}
}

func TestProcReflectsLoad(t *testing.T) {
	clk := clock.New()
	n := upNode(t, clk, Config{})
	g, err := gather.NewLoadavgGatherer(n.FS())
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	var l gather.LoadStats
	if err := g.Gather(&l); err != nil {
		t.Fatal(err)
	}
	if l.Load1 > 0.2 {
		t.Fatalf("idle load1 = %v", l.Load1)
	}
	n.SetLoad(2)
	clk.Advance(10 * time.Minute)
	if err := g.Gather(&l); err != nil {
		t.Fatal(err)
	}
	if l.Load1 < 1.5 {
		t.Fatalf("loaded load1 = %v, want ~2", l.Load1)
	}
}

func TestProcCPUJiffiesSplit(t *testing.T) {
	clk := clock.New()
	n := upNode(t, clk, Config{})
	n.SetLoad(1)
	clk.Advance(5 * time.Minute)
	sg, err := gather.NewStatGatherer(n.FS())
	if err != nil {
		t.Fatal(err)
	}
	defer sg.Close()
	var s1, s2 gather.CPUStats
	if err := sg.Gather(&s1); err != nil {
		t.Fatal(err)
	}
	clk.Advance(time.Minute)
	if err := sg.Gather(&s2); err != nil {
		t.Fatal(err)
	}
	dUser := s2.Total.User - s1.Total.User
	dIdle := s2.Total.Idle - s1.Total.Idle
	total := s2.Total.Total() - s1.Total.Total()
	if total < 5800 || total > 6200 {
		t.Fatalf("jiffies over a minute = %d, want ~6000", total)
	}
	if dUser <= dIdle {
		t.Fatalf("full load but user %d <= idle %d", dUser, dIdle)
	}
}

func TestUptimeTracksBoot(t *testing.T) {
	clk := clock.New()
	n := upNode(t, clk, Config{})
	u0 := n.Uptime()
	clk.Advance(time.Hour)
	up := n.Uptime()
	if up != u0+time.Hour {
		t.Fatalf("uptime = %v, want %v", up, u0+time.Hour)
	}
	ug, err := gather.NewUptimeGatherer(n.FS())
	if err != nil {
		t.Fatal(err)
	}
	defer ug.Close()
	var u gather.UptimeStats
	if err := ug.Gather(&u); err != nil {
		t.Fatal(err)
	}
	if diff := u.Uptime - up.Seconds(); diff < -1 || diff > 1 {
		t.Fatalf("/proc/uptime = %v, node uptime %v", u.Uptime, up.Seconds())
	}
	if u.Idle <= 0 || u.Idle > u.Uptime {
		t.Fatalf("idle = %v", u.Idle)
	}
	n.PowerOff()
	if n.Uptime() != 0 {
		t.Fatal("uptime nonzero while off")
	}
}

func TestNetCounters(t *testing.T) {
	clk := clock.New()
	n := upNode(t, clk, Config{})
	n.SetNetRate(10e6)
	g, err := gather.NewNetDevGatherer(n.FS())
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	var a, b gather.NetDevStats
	if err := g.Gather(&a); err != nil {
		t.Fatal(err)
	}
	clk.Advance(10 * time.Second)
	if err := g.Gather(&b); err != nil {
		t.Fatal(err)
	}
	dRx := b.Ifaces[1].RxBytes - a.Ifaces[1].RxBytes
	if dRx < 45e6 || dRx > 55e6 {
		t.Fatalf("rx over 10s at 10MB/s = %d, want ~50MB", dRx)
	}
}

func TestConfigDefaults(t *testing.T) {
	cfg := Config{Name: "n"}.withDefaults()
	if cfg.MemBytes != 1<<30 || cfg.NumCPUs != 1 || cfg.Firmware == nil {
		t.Fatalf("defaults: %+v", cfg)
	}
	if State(99).String() == "" {
		t.Fatal("unknown state string empty")
	}
	for s, want := range map[State]string{PowerOff: "off", Booting: "booting", Up: "up", Halted: "halted", Crashed: "crashed"} {
		if s.String() != want {
			t.Fatalf("%d.String() = %q", s, s.String())
		}
	}
}

func TestSerialBootBanner(t *testing.T) {
	clk := clock.New()
	n := upNode(t, clk, Config{Name: "node042"})
	text := string(n.Serial().PostMortem())
	for _, want := range []string{"LinuxBIOS", "entering runlevel 3"} {
		if !strings.Contains(text, want) {
			t.Fatalf("serial missing %q:\n%s", want, text)
		}
	}
}

func TestDoublePowerOnHarmless(t *testing.T) {
	clk := clock.New()
	n := New(clk, Config{Name: "n"})
	n.PowerOn()
	n.PowerOn()
	clk.Advance(10 * time.Second)
	if n.State() != Up {
		t.Fatal("double PowerOn broke boot")
	}
	n.PowerOff()
	n.PowerOff()
}
