package slurm

import (
	"fmt"
	"testing"
	"testing/quick"
	"time"

	"clusterworx/internal/clock"
)

func names(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("node%03d", i)
	}
	return out
}

func TestSubmitValidation(t *testing.T) {
	clk := clock.New()
	c := New(clk, names(4))
	if _, err := c.Submit(Spec{Nodes: 0, Duration: time.Minute}); err == nil {
		t.Fatal("zero nodes accepted")
	}
	if _, err := c.Submit(Spec{Nodes: 5, Duration: time.Minute}); err == nil {
		t.Fatal("oversize job accepted")
	}
	if _, err := c.Submit(Spec{Nodes: 1}); err == nil {
		t.Fatal("zero duration accepted")
	}
}

func TestSingleJobLifecycle(t *testing.T) {
	clk := clock.New()
	c := New(clk, names(4))
	var completed []Job
	c.OnComplete(func(j Job) { completed = append(completed, j) })
	id, err := c.Submit(Spec{Name: "mpi", User: "alice", Nodes: 2, Duration: time.Minute, Exclusive: true})
	if err != nil {
		t.Fatal(err)
	}
	j, _ := c.Job(id)
	if j.State != Running || len(j.Allocated) != 2 {
		t.Fatalf("job = %+v", j)
	}
	busy := 0
	for _, n := range c.Nodes() {
		if n.Exclusive {
			busy++
		}
	}
	if busy != 2 {
		t.Fatalf("exclusive nodes = %d", busy)
	}
	clk.Advance(time.Minute)
	j, _ = c.Job(id)
	if j.State != Completed || j.EndedAt != time.Minute {
		t.Fatalf("job = %+v", j)
	}
	if len(completed) != 1 || completed[0].ID != id {
		t.Fatalf("hooks = %v", completed)
	}
	for _, n := range c.Nodes() {
		if !n.Idle() {
			t.Fatalf("node %s not released", n.Name)
		}
	}
}

func TestFIFOQueueArbitration(t *testing.T) {
	clk := clock.New()
	c := New(clk, names(4))
	a, _ := c.Submit(Spec{Name: "a", Nodes: 4, Duration: time.Minute, Exclusive: true})
	b, _ := c.Submit(Spec{Name: "b", Nodes: 1, Duration: time.Minute, Exclusive: true})
	d, _ := c.Submit(Spec{Name: "d", Nodes: 4, Duration: time.Minute, Exclusive: true})
	if j, _ := c.Job(a); j.State != Running {
		t.Fatal("first job not started")
	}
	// Strict FIFO: b fits but must wait behind nothing? b is head now and
	// needs 1 node; all 4 busy, so it pends.
	if j, _ := c.Job(b); j.State != Pending {
		t.Fatal("b should pend while a holds the cluster")
	}
	if got := len(c.Queue()); got != 2 {
		t.Fatalf("queue = %d", got)
	}
	clk.Advance(time.Minute) // a done -> b starts
	if j, _ := c.Job(b); j.State != Running {
		t.Fatal("b not started after a")
	}
	// d (4 nodes) blocked by b holding one node: strict FIFO, no skip.
	if j, _ := c.Job(d); j.State != Pending {
		t.Fatal("d started early")
	}
	clk.Advance(time.Minute)
	if j, _ := c.Job(d); j.State != Running {
		t.Fatal("d never started")
	}
}

func TestStrictFIFONoSkip(t *testing.T) {
	clk := clock.New()
	c := New(clk, names(2))
	c.Submit(Spec{Name: "big", Nodes: 2, Duration: time.Minute, Exclusive: true})
	big2, _ := c.Submit(Spec{Name: "big2", Nodes: 2, Duration: time.Minute, Exclusive: true})
	small, _ := c.Submit(Spec{Name: "small", Nodes: 1, Duration: time.Minute, Exclusive: true})
	_ = big2
	if j, _ := c.Job(small); j.State != Pending {
		t.Fatal("FIFO skipped the queue head")
	}
}

func TestBackfillScheduler(t *testing.T) {
	clk := clock.New()
	c := New(clk, names(3))
	c.Submit(Spec{Name: "run", Nodes: 2, Duration: 10 * time.Minute, Exclusive: true})
	c.Submit(Spec{Name: "big", Nodes: 3, Duration: time.Minute, Exclusive: true})
	small, _ := c.Submit(Spec{Name: "small", Nodes: 1, Duration: time.Minute, Exclusive: true})
	if j, _ := c.Job(small); j.State != Pending {
		t.Fatal("FIFO should block small")
	}
	c.SetScheduler(Backfill{})
	if j, _ := c.Job(small); j.State != Running {
		t.Fatal("backfill did not start the small job on the idle node")
	}
}

func TestSharedAllocation(t *testing.T) {
	clk := clock.New()
	c := New(clk, names(1))
	var ids []int
	for i := 0; i < MaxShare; i++ {
		id, err := c.Submit(Spec{Name: "shared", Nodes: 1, Duration: time.Hour})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	for _, id := range ids {
		if j, _ := c.Job(id); j.State != Running {
			t.Fatalf("shared job %d not running", id)
		}
	}
	over, _ := c.Submit(Spec{Name: "over", Nodes: 1, Duration: time.Hour})
	if j, _ := c.Job(over); j.State != Pending {
		t.Fatal("oversubscription beyond MaxShare allowed")
	}
	// An exclusive job cannot share.
	excl, _ := c.Submit(Spec{Name: "x", Nodes: 1, Duration: time.Hour, Exclusive: true})
	if j, _ := c.Job(excl); j.State != Pending {
		t.Fatal("exclusive job ran on a shared node")
	}
}

func TestCancelPendingAndRunning(t *testing.T) {
	clk := clock.New()
	c := New(clk, names(1))
	run, _ := c.Submit(Spec{Name: "r", Nodes: 1, Duration: time.Hour, Exclusive: true})
	pend, _ := c.Submit(Spec{Name: "p", Nodes: 1, Duration: time.Hour, Exclusive: true})
	if err := c.Cancel(pend); err != nil {
		t.Fatal(err)
	}
	if j, _ := c.Job(pend); j.State != Cancelled {
		t.Fatal("pending cancel failed")
	}
	if err := c.Cancel(run); err != nil {
		t.Fatal(err)
	}
	if j, _ := c.Job(run); j.State != Cancelled {
		t.Fatal("running cancel failed")
	}
	if !c.Nodes()[0].Idle() {
		t.Fatal("node not released by cancel")
	}
	if err := c.Cancel(run); err == nil {
		t.Fatal("double cancel succeeded")
	}
	if err := c.Cancel(999); err == nil {
		t.Fatal("cancel of unknown job succeeded")
	}
	// Timer fires later; must not resurrect the cancelled job.
	clk.Advance(2 * time.Hour)
	if j, _ := c.Job(run); j.State != Cancelled {
		t.Fatal("cancelled job changed state")
	}
}

func TestNodeFailureFailsJob(t *testing.T) {
	clk := clock.New()
	c := New(clk, names(2))
	id, _ := c.Submit(Spec{Name: "frail", Nodes: 2, Duration: time.Hour, Exclusive: true})
	clk.Advance(time.Minute)
	c.NodeDown("node001")
	j, _ := c.Job(id)
	if j.State != NodeFailed {
		t.Fatalf("job = %v", j.State)
	}
	if n := c.Nodes()[1]; n.Up {
		t.Fatal("node still up")
	}
	// The survivor node is released.
	if n := c.Nodes()[0]; !n.Idle() {
		t.Fatal("surviving node not released")
	}
}

func TestNodeFailureRequeues(t *testing.T) {
	clk := clock.New()
	c := New(clk, names(2))
	id, _ := c.Submit(Spec{Name: "tough", Nodes: 1, Duration: time.Hour, Requeue: true})
	j, _ := c.Job(id)
	victim := j.Allocated[0]
	clk.Advance(time.Minute)
	c.NodeDown(victim)
	j, _ = c.Job(id)
	if j.State != Running {
		t.Fatalf("requeued job = %v, want restarted on the other node", j.State)
	}
	if j.Allocated[0] == victim {
		t.Fatal("rescheduled onto the dead node")
	}
	c.NodeUp(victim)
	if up := c.Nodes(); !up[0].Up || !up[1].Up {
		t.Fatal("NodeUp failed")
	}
}

func TestControllerFailover(t *testing.T) {
	clk := clock.New()
	c := New(clk, names(4))
	id, _ := c.Submit(Spec{Name: "longhaul", Nodes: 2, Duration: 10 * time.Minute, Exclusive: true})
	clk.Advance(time.Minute)

	c.KillController(0)
	if c.Active() != "" {
		t.Fatal("controller still active immediately after kill")
	}
	if _, err := c.Submit(Spec{Nodes: 1, Duration: time.Minute}); err != ErrNoController {
		t.Fatalf("submit during gap err = %v", err)
	}
	// Job keeps running on its compute nodes through the gap.
	if j, _ := c.Job(id); j.State != Running {
		t.Fatal("running job lost during control gap")
	}

	clk.Advance(DefaultHeartbeat)
	if c.Active() != "slurmctld-backup" {
		t.Fatalf("active = %q after heartbeat", c.Active())
	}
	if c.Failovers() != 1 {
		t.Fatalf("failovers = %d", c.Failovers())
	}
	// Backup re-armed the completion timer: the job still completes at
	// its original end time.
	clk.Advance(10 * time.Minute)
	if j, _ := c.Job(id); j.State != Completed {
		t.Fatalf("job after failover = %v", j.State)
	}
	if j, _ := c.Job(id); j.EndedAt != 10*time.Minute {
		t.Fatalf("EndedAt = %v, want original 10m deadline", j.EndedAt)
	}
}

func TestJobFinishingDuringGapHarvestedOnPromotion(t *testing.T) {
	clk := clock.New()
	c := New(clk, names(1))
	c.SetHeartbeat(30 * time.Second)
	id, _ := c.Submit(Spec{Name: "quick", Nodes: 1, Duration: 10 * time.Second, Exclusive: true})
	c.KillController(0)
	clk.Advance(30 * time.Second) // job ended at 10s, inside the gap
	j, _ := c.Job(id)
	if j.State != Completed {
		t.Fatalf("job = %v after promotion", j.State)
	}
}

func TestDoubleFailureThenRestart(t *testing.T) {
	clk := clock.New()
	c := New(clk, names(2))
	c.KillController(1) // backup dies first
	c.KillController(0) // then primary: nobody left
	clk.Advance(time.Minute)
	if c.Active() != "" {
		t.Fatal("a dead controller became active")
	}
	c.RestartController(0)
	if c.Active() != "slurmctld-primary" {
		t.Fatalf("active = %q after restart", c.Active())
	}
	if _, err := c.Submit(Spec{Nodes: 1, Duration: time.Second}); err != nil {
		t.Fatal(err)
	}
}

func TestPendingJobsSurviveFailover(t *testing.T) {
	clk := clock.New()
	c := New(clk, names(1))
	c.Submit(Spec{Name: "hold", Nodes: 1, Duration: time.Minute, Exclusive: true})
	waiting, _ := c.Submit(Spec{Name: "waiting", Nodes: 1, Duration: time.Minute, Exclusive: true})
	c.KillController(0)
	clk.Advance(DefaultHeartbeat + 2*time.Minute)
	if j, _ := c.Job(waiting); j.State != Completed {
		t.Fatalf("queued job after failover = %v", j.State)
	}
}

func TestJobStateStrings(t *testing.T) {
	for s, want := range map[JobState]string{
		Pending: "PENDING", Running: "RUNNING", Completed: "COMPLETED",
		Cancelled: "CANCELLED", NodeFailed: "NODE_FAIL", JobState(9): "?",
	} {
		if s.String() != want {
			t.Fatalf("%d.String() = %q", s, s.String())
		}
	}
	if ControllerName(0) == ControllerName(1) {
		t.Fatal("controller names collide")
	}
}

// Property: for any workload of exclusive 1-node jobs, every job
// eventually completes exactly once and the cluster ends idle.
func TestPropertyAllJobsComplete(t *testing.T) {
	f := func(durs []uint8, nodeSel uint8) bool {
		clk := clock.New()
		nn := int(nodeSel)%4 + 1
		c := New(clk, names(nn))
		done := map[int]int{}
		c.OnComplete(func(j Job) { done[j.ID]++ })
		var ids []int
		for _, d := range durs {
			id, err := c.Submit(Spec{
				Nodes: 1, Duration: time.Duration(int(d)%60+1) * time.Second, Exclusive: true,
			})
			if err != nil {
				return false
			}
			ids = append(ids, id)
		}
		clk.RunUntilIdle()
		for _, id := range ids {
			j, _ := c.Job(id)
			if j.State != Completed || done[id] != 1 {
				return false
			}
		}
		for _, n := range c.Nodes() {
			if !n.Idle() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: with strict FIFO and identical exclusive full-cluster jobs,
// completion order equals submission order.
func TestPropertyFIFOOrder(t *testing.T) {
	f := func(k uint8) bool {
		clk := clock.New()
		c := New(clk, names(2))
		var order []int
		c.OnComplete(func(j Job) { order = append(order, j.ID) })
		n := int(k)%10 + 2
		for i := 0; i < n; i++ {
			c.Submit(Spec{Nodes: 2, Duration: time.Minute, Exclusive: true})
		}
		clk.RunUntilIdle()
		for i := 1; i < len(order); i++ {
			if order[i] < order[i-1] {
				return false
			}
		}
		return len(order) == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestCancelDuringControlGap(t *testing.T) {
	clk := clock.New()
	c := New(clk, names(2))
	id, _ := c.Submit(Spec{Nodes: 1, Duration: time.Hour, Exclusive: true})
	c.KillController(0)
	if err := c.Cancel(id); err != ErrNoController {
		t.Fatalf("cancel during gap err = %v", err)
	}
	clk.Advance(DefaultHeartbeat)
	if err := c.Cancel(id); err != nil {
		t.Fatalf("cancel after promotion: %v", err)
	}
}

func TestBackfillStarvationTradeoff(t *testing.T) {
	// Naive backfill (no reservations) keeps starting small jobs past a
	// big one as long as they fit — the documented trade-off of the
	// example external scheduler versus strict FIFO.
	clk := clock.New()
	c := New(clk, names(2))
	c.SetScheduler(Backfill{})
	c.Submit(Spec{Name: "hold", Nodes: 1, Duration: 10 * time.Minute, Exclusive: true})
	big, _ := c.Submit(Spec{Name: "big", Nodes: 2, Duration: time.Minute, Exclusive: true})
	small, _ := c.Submit(Spec{Name: "small", Nodes: 1, Duration: 10 * time.Minute, Exclusive: true})
	if j, _ := c.Job(small); j.State != Running {
		t.Fatal("backfill did not start the small job")
	}
	if j, _ := c.Job(big); j.State != Pending {
		t.Fatal("big job should still pend")
	}
	clk.RunUntilIdle()
	if j, _ := c.Job(big); j.State != Completed {
		t.Fatalf("big job = %v at drain", j.State)
	}
}

func TestRequeueWaitsWhenNoSpareNode(t *testing.T) {
	clk := clock.New()
	c := New(clk, names(1))
	id, _ := c.Submit(Spec{Nodes: 1, Duration: time.Hour, Requeue: true})
	c.NodeDown("node000")
	if j, _ := c.Job(id); j.State != Pending {
		t.Fatalf("requeued job = %v with no nodes", j.State)
	}
	c.NodeUp("node000")
	if j, _ := c.Job(id); j.State != Running {
		t.Fatal("requeued job did not start when the node returned")
	}
}

func TestNodeDownIdempotentAndUnknown(t *testing.T) {
	clk := clock.New()
	c := New(clk, names(1))
	c.NodeDown("node000")
	c.NodeDown("node000") // repeated
	c.NodeDown("ghost")   // unknown
	c.NodeUp("ghost")
	c.NodeUp("node000")
	c.NodeUp("node000")
	if !c.Nodes()[0].Up {
		t.Fatal("node not up")
	}
}

// Property: shared jobs never exceed MaxShare on any node and exclusive
// jobs never share, for random mixed workloads.
func TestPropertySharingInvariant(t *testing.T) {
	f := func(specs []uint8) bool {
		clk := clock.New()
		c := New(clk, names(3))
		violated := false
		check := func() {
			for _, n := range c.Nodes() {
				if n.Shares > MaxShare || (n.Exclusive && n.Shares > 0) {
					violated = true
				}
			}
		}
		for _, b := range specs {
			c.Submit(Spec{ //nolint:errcheck // invalid specs are rejected, fine
				Nodes:     int(b%3) + 1,
				Duration:  time.Duration(b%5+1) * time.Minute,
				Exclusive: b%2 == 0,
			})
			check()
			clk.Advance(time.Duration(b%4) * time.Minute)
			check()
		}
		clk.RunUntilIdle()
		check()
		return !violated
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
