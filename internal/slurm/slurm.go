// Package slurm implements the resource manager the paper's §6 describes
// (the LLNL / Linux NetworX collaboration): it "allocates exclusive and/or
// non-exclusive access to resources (compute nodes) to users for some
// duration of time", "provides a framework for starting, executing, and
// monitoring work ... on a set of allocated nodes", and "arbitrates
// conflicting requests for resources by managing a queue of pending
// work" — while being "highly tolerant of system failures including
// failure of the node executing its control functions".
//
// The model: a Cluster of compute nodes plus two controller replicas
// (primary and backup) sharing replicated state. The active controller
// owns the scheduling loop and the job-completion timers; killing it loses
// those timers (they lived on the dead machine) until the backup detects
// the failure via heartbeat timeout, promotes itself, re-arms timers from
// the replicated state, and resumes scheduling. Jobs already running on
// compute nodes keep running through the control gap, exactly as real
// SLURM jobs do.
//
// An external-scheduler API (the paper names the Maui Scheduler) lets a
// policy engine replace the built-in FIFO arbitration.
package slurm

import (
	"fmt"
	"sort"
	"time"

	"clusterworx/internal/clock"
)

// JobState is a job's lifecycle state.
type JobState uint8

// Job states.
const (
	Pending JobState = iota
	Running
	Completed
	Cancelled
	NodeFailed
)

// String names the state.
func (s JobState) String() string {
	switch s {
	case Pending:
		return "PENDING"
	case Running:
		return "RUNNING"
	case Completed:
		return "COMPLETED"
	case Cancelled:
		return "CANCELLED"
	case NodeFailed:
		return "NODE_FAIL"
	default:
		return "?"
	}
}

// MaxShare is how many non-exclusive jobs may share one node.
const MaxShare = 4

// DefaultHeartbeat is the failover detection delay.
const DefaultHeartbeat = 5 * time.Second

// Spec describes a job submission.
type Spec struct {
	Name      string
	User      string
	Nodes     int // nodes required
	Duration  time.Duration
	Exclusive bool
	Requeue   bool // requeue instead of failing on node death
}

// Job is the visible job record.
type Job struct {
	ID          int
	Spec        Spec
	State       JobState
	SubmittedAt time.Duration
	StartedAt   time.Duration
	EndedAt     time.Duration
	Allocated   []string
}

// NodeState is a compute node's allocation state.
type NodeState struct {
	Name      string
	Up        bool
	Exclusive bool // held by an exclusive job
	Shares    int  // running non-exclusive jobs
}

// Idle reports whether the node can accept an exclusive job.
func (n NodeState) Idle() bool { return n.Up && !n.Exclusive && n.Shares == 0 }

// Scheduler arbitrates the pending queue: given the queue (FIFO order) and
// the current node states, it returns the indexes of queue entries to try
// to start, in order. The built-in policy is strict FIFO; the paper's
// external-scheduler API (Maui) plugs in here.
type Scheduler interface {
	Pick(queue []Job, nodes []NodeState) []int
}

// FIFO is the built-in arbitration: start the queue head only (no
// skipping), which preserves strict submission order.
type FIFO struct{}

// Pick implements Scheduler.
func (FIFO) Pick(queue []Job, nodes []NodeState) []int {
	if len(queue) == 0 {
		return nil
	}
	return []int{0}
}

// Backfill is a simple external-scheduler example: walk the whole queue
// and start anything that fits right now.
type Backfill struct{}

// Pick implements Scheduler.
func (Backfill) Pick(queue []Job, nodes []NodeState) []int {
	out := make([]int, len(queue))
	for i := range queue {
		out[i] = i
	}
	return out
}

// Cluster is the SLURM-managed cluster: compute node state, the job
// store, and the two controller replicas.
type Cluster struct {
	clk   *clock.Clock
	sched Scheduler

	nodes map[string]*NodeState
	order []string
	jobs  map[int]*Job
	queue []int // pending job IDs, FIFO
	next  int

	ctlAlive  [2]bool
	active    int // -1 when no controller is active
	heartbeat time.Duration
	promote   *clock.Timer
	timers    map[int]*clock.Timer // owned by the active controller

	onComplete []func(Job)
	onStart    []func(Job)
	failovers  int
}

// ControllerName returns "slurmctld-primary" or "slurmctld-backup".
func ControllerName(i int) string {
	if i == 0 {
		return "slurmctld-primary"
	}
	return "slurmctld-backup"
}

// New creates a cluster managing the named nodes, all up and idle, with
// both controllers alive and the primary active.
func New(clk *clock.Clock, nodeNames []string) *Cluster {
	c := &Cluster{
		clk:       clk,
		sched:     FIFO{},
		nodes:     make(map[string]*NodeState, len(nodeNames)),
		jobs:      make(map[int]*Job),
		next:      1,
		heartbeat: DefaultHeartbeat,
		timers:    make(map[int]*clock.Timer),
		active:    0,
	}
	c.ctlAlive[0], c.ctlAlive[1] = true, true
	for _, name := range nodeNames {
		if _, dup := c.nodes[name]; dup {
			panic("slurm: duplicate node " + name)
		}
		c.nodes[name] = &NodeState{Name: name, Up: true}
		c.order = append(c.order, name)
	}
	return c
}

// SetScheduler installs an arbitration policy (the external-scheduler
// API).
func (c *Cluster) SetScheduler(s Scheduler) {
	c.sched = s
	c.schedule()
}

// SetHeartbeat changes the failover detection delay.
func (c *Cluster) SetHeartbeat(d time.Duration) { c.heartbeat = d }

// OnComplete registers a hook invoked when any job reaches a terminal
// state.
func (c *Cluster) OnComplete(fn func(Job)) { c.onComplete = append(c.onComplete, fn) }

// OnStart registers a hook invoked when a job launches on its allocation —
// the srun moment. Integrations use it to put the job's work onto the
// allocated nodes.
func (c *Cluster) OnStart(fn func(Job)) { c.onStart = append(c.onStart, fn) }

// ErrNoController is returned while no controller replica is active.
var ErrNoController = fmt.Errorf("slurm: no active controller")

// Submit enqueues a job and kicks the scheduler. It fails while no
// controller is active — exactly what sbatch sees during a failover gap.
func (c *Cluster) Submit(spec Spec) (int, error) {
	if c.active < 0 {
		return 0, ErrNoController
	}
	if spec.Nodes <= 0 {
		return 0, fmt.Errorf("slurm: job needs at least one node")
	}
	if spec.Nodes > len(c.nodes) {
		return 0, fmt.Errorf("slurm: job wants %d nodes, cluster has %d", spec.Nodes, len(c.nodes))
	}
	if spec.Duration <= 0 {
		return 0, fmt.Errorf("slurm: job needs a positive duration")
	}
	id := c.next
	c.next++
	c.jobs[id] = &Job{ID: id, Spec: spec, State: Pending, SubmittedAt: c.clk.Now()}
	c.queue = append(c.queue, id)
	c.schedule()
	return id, nil
}

// Cancel cancels a pending or running job.
func (c *Cluster) Cancel(id int) error {
	if c.active < 0 {
		return ErrNoController
	}
	j, ok := c.jobs[id]
	if !ok {
		return fmt.Errorf("slurm: no job %d", id)
	}
	switch j.State {
	case Pending:
		c.dequeue(id)
		c.finish(j, Cancelled)
	case Running:
		c.release(j)
		c.finish(j, Cancelled)
		c.schedule()
	default:
		return fmt.Errorf("slurm: job %d already %s", id, j.State)
	}
	return nil
}

// Job returns a job snapshot.
func (c *Cluster) Job(id int) (Job, bool) {
	j, ok := c.jobs[id]
	if !ok {
		return Job{}, false
	}
	out := *j
	out.Allocated = append([]string(nil), j.Allocated...)
	return out, true
}

// Queue returns pending jobs in arbitration order.
func (c *Cluster) Queue() []Job {
	out := make([]Job, 0, len(c.queue))
	for _, id := range c.queue {
		out = append(out, *c.jobs[id])
	}
	return out
}

// Nodes returns node states in configuration order.
func (c *Cluster) Nodes() []NodeState {
	out := make([]NodeState, 0, len(c.order))
	for _, name := range c.order {
		out = append(out, *c.nodes[name])
	}
	return out
}

// Jobs returns all job snapshots sorted by ID.
func (c *Cluster) Jobs() []Job {
	ids := make([]int, 0, len(c.jobs))
	for id := range c.jobs {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	out := make([]Job, 0, len(ids))
	for _, id := range ids {
		out = append(out, *c.jobs[id])
	}
	return out
}

// --- controller failure tolerance ---------------------------------------------------

// Active returns the active controller name, or "" during a gap.
func (c *Cluster) Active() string {
	if c.active < 0 {
		return ""
	}
	return ControllerName(c.active)
}

// Failovers returns how many promotions have occurred.
func (c *Cluster) Failovers() int { return c.failovers }

// KillController kills a controller replica. Killing the active one loses
// its timers and scheduling until the standby's heartbeat timeout promotes
// it. Running jobs keep running on their compute nodes.
func (c *Cluster) KillController(i int) {
	if i < 0 || i > 1 || !c.ctlAlive[i] {
		return
	}
	c.ctlAlive[i] = false
	if c.active != i {
		return
	}
	// The dead machine takes its timers with it.
	for id, t := range c.timers {
		t.Stop()
		delete(c.timers, id)
	}
	c.active = -1
	standby := 1 - i
	if !c.ctlAlive[standby] {
		return
	}
	c.promote = c.clk.AfterFunc(c.heartbeat, func() {
		c.promoteLocked(standby)
	})
}

// RestartController brings a dead replica back as standby; if no
// controller is active it promotes immediately.
func (c *Cluster) RestartController(i int) {
	if i < 0 || i > 1 || c.ctlAlive[i] {
		return
	}
	c.ctlAlive[i] = true
	if c.active < 0 && c.promote == nil {
		c.promoteLocked(i)
	}
}

// promoteLocked makes replica i active: re-arm completion timers from
// replicated state and resume scheduling.
func (c *Cluster) promoteLocked(i int) {
	c.promote = nil
	if !c.ctlAlive[i] || c.active >= 0 {
		return
	}
	c.active = i
	c.failovers++
	now := c.clk.Now()
	for _, j := range c.jobs {
		if j.State != Running {
			continue
		}
		end := j.StartedAt + j.Spec.Duration
		j := j
		if end <= now {
			// Finished during the control gap; harvest immediately.
			c.completeJob(j.ID)
			continue
		}
		c.timers[j.ID] = c.clk.AfterFunc(end-now, func() { c.completeJob(j.ID) })
	}
	c.schedule()
}

// --- node failure -------------------------------------------------------------------

// NodeDown marks a compute node dead. Jobs allocated on it fail (or
// requeue when the spec asks for it).
func (c *Cluster) NodeDown(name string) {
	n, ok := c.nodes[name]
	if !ok || !n.Up {
		return
	}
	n.Up = false
	n.Exclusive = false
	n.Shares = 0
	for _, j := range c.jobs {
		if j.State != Running {
			continue
		}
		for _, alloc := range j.Allocated {
			if alloc != name {
				continue
			}
			c.release(j)
			if t := c.timers[j.ID]; t != nil {
				t.Stop()
				delete(c.timers, j.ID)
			}
			if j.Spec.Requeue {
				j.State = Pending
				j.Allocated = nil
				c.queue = append(c.queue, j.ID)
			} else {
				c.finish(j, NodeFailed)
			}
			break
		}
	}
	c.schedule()
}

// NodeUp returns a node to service.
func (c *Cluster) NodeUp(name string) {
	n, ok := c.nodes[name]
	if !ok || n.Up {
		return
	}
	n.Up = true
	c.schedule()
}

// --- scheduling core ------------------------------------------------------------------

// schedule runs the arbitration policy; only an active controller
// schedules.
func (c *Cluster) schedule() {
	if c.active < 0 || c.sched == nil {
		return
	}
	for {
		started := false
		picks := c.sched.Pick(c.Queue(), c.Nodes())
		for _, qi := range picks {
			if qi < 0 || qi >= len(c.queue) {
				continue
			}
			id := c.queue[qi]
			j := c.jobs[id]
			alloc := c.allocate(j.Spec)
			if alloc == nil {
				continue
			}
			c.dequeue(id)
			c.start(j, alloc)
			started = true
			break // queue indexes shifted: re-pick
		}
		if !started {
			return
		}
	}
}

// allocate finds nodes for a spec, or nil.
func (c *Cluster) allocate(spec Spec) []string {
	var fit []string
	for _, name := range c.order {
		n := c.nodes[name]
		if spec.Exclusive {
			if n.Idle() {
				fit = append(fit, name)
			}
		} else if n.Up && !n.Exclusive && n.Shares < MaxShare {
			fit = append(fit, name)
		}
		if len(fit) == spec.Nodes {
			return fit
		}
	}
	return nil
}

// start launches a job on its allocation and arms the completion timer.
func (c *Cluster) start(j *Job, alloc []string) {
	j.State = Running
	j.StartedAt = c.clk.Now()
	j.Allocated = alloc
	for _, name := range alloc {
		n := c.nodes[name]
		if j.Spec.Exclusive {
			n.Exclusive = true
		} else {
			n.Shares++
		}
	}
	id := j.ID
	c.timers[id] = c.clk.AfterFunc(j.Spec.Duration, func() { c.completeJob(id) })
	snapshot := *j
	snapshot.Allocated = append([]string(nil), j.Allocated...)
	for _, fn := range c.onStart {
		fn(snapshot)
	}
}

// completeJob finishes a running job normally.
func (c *Cluster) completeJob(id int) {
	j, ok := c.jobs[id]
	if !ok || j.State != Running {
		return
	}
	delete(c.timers, id)
	c.release(j)
	c.finish(j, Completed)
	c.schedule()
}

// release frees a job's allocation.
func (c *Cluster) release(j *Job) {
	for _, name := range j.Allocated {
		n := c.nodes[name]
		if !n.Up {
			continue
		}
		if j.Spec.Exclusive {
			n.Exclusive = false
		} else if n.Shares > 0 {
			n.Shares--
		}
	}
}

// finish records a terminal state and fires hooks.
func (c *Cluster) finish(j *Job, st JobState) {
	j.State = st
	j.EndedAt = c.clk.Now()
	snapshot := *j
	for _, fn := range c.onComplete {
		fn(snapshot)
	}
}

// dequeue removes a job ID from the pending queue.
func (c *Cluster) dequeue(id int) {
	for i, qid := range c.queue {
		if qid == id {
			c.queue = append(c.queue[:i], c.queue[i+1:]...)
			return
		}
	}
}
