package serve

import (
	"fmt"
	"strconv"
	"strings"
)

// Keyed line diffs: the change-only wire format watch streams push.
//
// A watchable rendering is a list of lines where the first
// whitespace-delimited field is a stable key (node name, metric name)
// and surviving keys keep their relative order between generations —
// true for every key-sorted ctl view (status, values, sync, compare,
// selfmon, nodes). Under that contract a diff of three op kinds
// reconstructs the new rendering exactly:
//
//	-<key>          the keyed line disappeared
//	=<line>         the keyed line changed (key embedded as first field)
//	+<idx> <line>   a new keyed line, inserted at index idx of the new list
//
// Ops are applied in that order (all deletions, then replacements, then
// insertions ascending by index). The reconstruction is byte-exact: the
// differential test asserts a watch client's View converges to the
// polled rendering byte for byte.

// LineKey returns a line's diff key: its first whitespace-delimited
// field (the views' renderings lead with the node or metric name).
func LineKey(line string) string {
	for i := 0; i < len(line); i++ {
		if line[i] == ' ' || line[i] == '\t' {
			return line[:i]
		}
	}
	return line
}

// Diff computes the keyed ops turning old into cur. It returns nil when
// the renderings are identical — the caller pushes nothing, which is the
// whole point of change-only streams.
func Diff(old, cur []string) []string {
	oldByKey := make(map[string]string, len(old))
	for _, l := range old {
		oldByKey[LineKey(l)] = l
	}
	curKeys := make(map[string]struct{}, len(cur))
	for _, l := range cur {
		curKeys[LineKey(l)] = struct{}{}
	}
	var ops []string
	for _, l := range old {
		if _, ok := curKeys[LineKey(l)]; !ok {
			ops = append(ops, "-"+LineKey(l))
		}
	}
	for i, l := range cur {
		prev, existed := oldByKey[LineKey(l)]
		switch {
		case !existed:
			ops = append(ops, "+"+strconv.Itoa(i)+" "+l)
		case prev != l:
			ops = append(ops, "="+l)
		}
	}
	return ops
}

// View is a watch client's reconstruction of a rendering from an initial
// full snapshot plus a stream of Diff ops.
type View struct {
	lines []string
}

// SetFull replaces the view wholesale (initial snapshot, or a RESYNC
// push after the subscriber's queue overflowed).
func (v *View) SetFull(lines []string) {
	v.lines = append(v.lines[:0], lines...)
}

// Apply applies one UPDATE block's ops in order.
func (v *View) Apply(ops []string) error {
	for _, op := range ops {
		if op == "" {
			continue
		}
		switch op[0] {
		case '-':
			key := op[1:]
			for i, l := range v.lines {
				if LineKey(l) == key {
					v.lines = append(v.lines[:i], v.lines[i+1:]...)
					break
				}
			}
		case '=':
			line := op[1:]
			key := LineKey(line)
			found := false
			for i, l := range v.lines {
				if LineKey(l) == key {
					v.lines[i] = line
					found = true
					break
				}
			}
			if !found {
				return fmt.Errorf("serve: replace op for unknown key %q", key)
			}
		case '+':
			rest := op[1:]
			sp := strings.IndexByte(rest, ' ')
			if sp < 0 {
				return fmt.Errorf("serve: malformed insert op %q", op)
			}
			idx, err := strconv.Atoi(rest[:sp])
			if err != nil || idx < 0 {
				return fmt.Errorf("serve: bad insert index in %q", op)
			}
			line := rest[sp+1:]
			if idx > len(v.lines) {
				idx = len(v.lines)
			}
			v.lines = append(v.lines, "")
			copy(v.lines[idx+1:], v.lines[idx:])
			v.lines[idx] = line
		default:
			return fmt.Errorf("serve: unknown op %q", op)
		}
	}
	return nil
}

// Lines returns the reconstructed rendering (shared slice; read-only).
func (v *View) Lines() []string { return v.lines }

// Render joins the reconstruction with newlines, matching the polled
// response body below its "OK" line.
func (v *View) Render() string { return strings.Join(v.lines, "\n") }

// Watch block kinds, the first field of each pushed block's header line.
const (
	BlockUpdate  = "UPDATE"  // change-only diff ops follow
	BlockResync  = "RESYNC"  // full rendering follows (continuity was lost)
	BlockRefresh = "REFRESH" // full rendering follows (view is not keyed-diffable)
)

// ParseBlock splits a pushed watch block into its kind, generation, and
// payload lines. The initial response block ("OK watch ...") is reported
// with kind "OK".
func ParseBlock(block string) (kind string, gen uint64, lines []string, err error) {
	all := strings.Split(block, "\n")
	header := all[0]
	fields := strings.Fields(header)
	if len(fields) == 0 {
		return "", 0, nil, fmt.Errorf("serve: empty watch block header")
	}
	kind = fields[0]
	for _, f := range fields[1:] {
		if g, ok := strings.CutPrefix(f, "gen="); ok {
			gen, err = strconv.ParseUint(g, 10, 64)
			if err != nil {
				return "", 0, nil, fmt.Errorf("serve: bad generation in %q", header)
			}
		}
	}
	return kind, gen, all[1:], nil
}
