package serve

import (
	"sync"

	"clusterworx/internal/flight"
)

// SubQueue is each subscriber's bounded generation-notification queue.
// Eight pending wakeups is far more than a healthy consumer ever holds
// (it conflates to the latest snapshot on every wakeup); filling it
// means the consumer is stuck behind a slow connection, and continuity
// is declared lost instead of buffering without bound.
const SubQueue = 8

// Hub fans generation changes out to watch subscribers. One dispatcher
// goroutine (running only while subscribers exist) waits on the ingest
// path's Signal and performs a non-blocking send of the current
// generation to every subscriber's bounded queue. A full queue drops the
// notification and marks the subscriber for resync — the same
// drop-to-resync idiom as the wire protocol's core.ErrResyncNeeded: a
// lost delta means the subscriber's view may have silently diverged, so
// the next push must be a full snapshot, not a diff.
type Hub struct {
	genFn func() uint64
	sig   *Signal

	mu   sync.Mutex //cwx:lockrank hub 50
	subs map[*Sub]struct{}
	stop chan struct{}
}

// NewHub wires a hub to a generation source and its wake signal.
func NewHub(genFn func() uint64, sig *Signal) *Hub {
	return &Hub{genFn: genFn, sig: sig, subs: make(map[*Sub]struct{})}
}

// Sub is one subscriber's handle.
type Sub struct {
	ch     chan uint64
	resync chan struct{} // cap 1: set when the queue overflowed
}

// Register adds a subscriber and starts the dispatcher if it is the
// first one.
func (h *Hub) Register() *Sub {
	sub := &Sub{ch: make(chan uint64, SubQueue), resync: make(chan struct{}, 1)}
	h.mu.Lock()
	h.subs[sub] = struct{}{}
	if h.stop == nil {
		h.stop = make(chan struct{})
		go h.run(h.stop)
	}
	h.mu.Unlock()
	mWatchSubs.Inc()
	return sub
}

// Unregister removes a subscriber, stopping the dispatcher with the
// last one so an idle server holds no extra goroutine.
func (h *Hub) Unregister(sub *Sub) {
	h.mu.Lock()
	delete(h.subs, sub)
	if len(h.subs) == 0 && h.stop != nil {
		close(h.stop)
		h.stop = nil
	}
	h.mu.Unlock()
}

// Subscribers returns the current subscriber count.
func (h *Hub) Subscribers() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.subs)
}

func (h *Hub) run(stop chan struct{}) {
	for h.sig.Wait(stop) {
		gen := h.genFn()
		h.mu.Lock()
		// Stale-dispatcher guard: if the last Unregister closed our stop
		// channel and a racing Register already started a replacement
		// dispatcher, Wait may still have observed a wake and returned
		// true here. Delivering would double-notify every subscriber of
		// the new era (two dispatchers draining one signal), so only the
		// dispatcher that owns the current stop channel may deliver. But
		// Wait consumed the conflated pending flag to get here, so the
		// wake must be re-issued or the current dispatcher never sees it
		// (a spurious wake with no dispatcher is harmless — the flag
		// waits for the next one).
		if h.stop != stop {
			h.mu.Unlock()
			h.sig.Wake()
			return
		}
		for sub := range h.subs {
			select {
			case sub.ch <- gen:
			default:
				// Queue full: drop and mark divergence. The queued
				// wakeups the consumer has yet to drain guarantee it
				// comes back to observe the flag.
				select {
				case sub.resync <- struct{}{}:
				default:
				}
				mWatchOverflows.Inc()
				fltj.Append(0, flight.Entry{Kind: flight.KindWatchOverflow})
			}
		}
		h.mu.Unlock()
	}
}

// Next blocks until a generation notification arrives (gen, false, true),
// the subscriber must resync after an overflow (gen, true, true), or
// stop closes (0, false, false).
func (s *Sub) Next(stop <-chan struct{}) (gen uint64, resync, ok bool) {
	select {
	case gen = <-s.ch:
	case <-stop:
		return 0, false, false
	}
	select {
	case <-s.resync:
		return gen, true, true
	default:
		return gen, false, true
	}
}
