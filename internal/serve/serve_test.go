package serve

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestGateHitAndInvalidate: a Gate serves the same value while the
// generation holds and rebuilds exactly once when it moves.
func TestGateHitAndInvalidate(t *testing.T) {
	var gen atomic.Uint64
	var builds atomic.Int64
	g := &Gate[string]{
		GenFn: gen.Load,
		Build: func() string {
			return fmt.Sprintf("build-%d", builds.Add(1))
		},
	}
	if got := g.Get(); got != "build-1" {
		t.Fatalf("first Get = %q", got)
	}
	for i := 0; i < 10; i++ {
		if got := g.Get(); got != "build-1" {
			t.Fatalf("hit returned %q, want build-1", got)
		}
	}
	gen.Add(1)
	if got := g.Get(); got != "build-2" {
		t.Fatalf("post-invalidation Get = %q", got)
	}
	if n := builds.Load(); n != 2 {
		t.Fatalf("build ran %d times, want 2", n)
	}
}

// TestGateStale: the Stale hook invalidates a generation-valid entry
// (the status snapshot's liveness deadline rides it).
func TestGateStale(t *testing.T) {
	var gen atomic.Uint64
	var builds atomic.Int64
	var stale atomic.Bool
	g := &Gate[string]{
		GenFn: gen.Load,
		Stale: func(string) bool { return stale.Load() },
		Build: func() string { return fmt.Sprintf("b%d", builds.Add(1)) },
	}
	g.Get()
	g.Get()
	if builds.Load() != 1 {
		t.Fatalf("builds = %d, want 1", builds.Load())
	}
	stale.Store(true)
	g.Get()
	if builds.Load() != 2 {
		t.Fatalf("stale entry not rebuilt: builds = %d", builds.Load())
	}
}

// TestGateCoalescing: N identical concurrent misses run one rebuild —
// the acceptance bar is ≥90% collapsed, this asserts all but one.
func TestGateCoalescing(t *testing.T) {
	const readers = 100
	var gen atomic.Uint64
	var builds atomic.Int64
	g := &Gate[string]{
		GenFn: gen.Load,
		Build: func() string {
			builds.Add(1)
			time.Sleep(20 * time.Millisecond) // let every reader pile onto the miss
			return "v"
		},
	}
	gen.Add(1)
	start := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < readers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			if got := g.Get(); got != "v" {
				t.Errorf("Get = %q", got)
			}
		}()
	}
	close(start)
	wg.Wait()
	if n := builds.Load(); n != 1 {
		t.Fatalf("%d concurrent misses ran %d builds, want 1 (≥90%% must coalesce)", readers, n)
	}
}

// TestGateTagsGenerationReadBeforeBuild: an ingest landing during a
// rebuild leaves the entry conservatively tagged, so the next read
// rebuilds rather than serving the torn answer forever.
func TestGateTagsGenerationReadBeforeBuild(t *testing.T) {
	var gen atomic.Uint64
	var builds atomic.Int64
	g := &Gate[string]{GenFn: gen.Load}
	g.Build = func() string {
		n := builds.Add(1)
		if n == 1 {
			gen.Add(1) // "ingest" arrives mid-rebuild
		}
		return fmt.Sprintf("b%d", n)
	}
	if got := g.Get(); got != "b1" {
		t.Fatalf("first Get = %q", got)
	}
	if got := g.Get(); got != "b2" {
		t.Fatalf("Get after mid-build ingest = %q, want a rebuild", got)
	}
}

// TestSignalDeliversAndConflates: wakes before Wait are not lost; many
// wakes conflate to one delivery.
func TestSignalDeliversAndConflates(t *testing.T) {
	var s Signal
	s.Wake()
	s.Wake()
	stop := make(chan struct{})
	if !s.Wait(stop) {
		t.Fatal("Wait missed a pre-posted Wake")
	}
	done := make(chan bool, 1)
	go func() { done <- s.Wait(stop) }()
	time.Sleep(10 * time.Millisecond)
	s.Wake()
	select {
	case ok := <-done:
		if !ok {
			t.Fatal("Wait returned false on Wake")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Wait never woke")
	}
	go func() { done <- s.Wait(stop) }()
	close(stop)
	if ok := <-done; ok {
		t.Fatal("Wait ignored stop")
	}
}

// TestDiffRoundtrip: View reconstructions converge byte-for-byte with
// the target rendering across changes, insertions, and deletions.
func TestDiffRoundtrip(t *testing.T) {
	old := []string{
		"node000      up    values=12",
		"node001      up    values=12",
		"node003      DOWN  values=9",
	}
	steps := [][]string{
		{ // change one, delete one, insert two (one interior, one at end)
			"node000      up    values=13",
			"node002      up    values=4",
			"node003      DOWN  values=9",
			"node004      up    values=1",
		},
		{}, // everything gone
		{"nodeXYZ      up    values=1"},
	}
	var v View
	v.SetFull(old)
	cur := old
	for i, next := range steps {
		ops := Diff(cur, next)
		if err := v.Apply(ops); err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
		if got, want := v.Render(), strings.Join(next, "\n"); got != want {
			t.Fatalf("step %d diverged:\ngot:\n%s\nwant:\n%s", i, got, want)
		}
		cur = next
	}
	if ops := Diff(cur, cur); ops != nil {
		t.Fatalf("identical renderings produced ops %q", ops)
	}
}

// TestHubBoundedQueueDropsToResync: a consumer that never drains
// overflows its bounded queue and is told to resync — the wire
// protocol's lost-delta idiom on the client hop.
func TestHubBoundedQueueDropsToResync(t *testing.T) {
	var gen atomic.Uint64
	var sig Signal
	h := NewHub(gen.Load, &sig)
	sub := h.Register()
	defer h.Unregister(sub)

	// Fire enough wakes that even with dispatcher conflation the queue
	// must overflow: each wake is delivered synchronously by waiting for
	// the queue to fill.
	deadline := time.After(5 * time.Second)
	for filled := false; !filled; {
		gen.Add(1)
		sig.Wake()
		select {
		case <-deadline:
			t.Fatal("queue never overflowed")
		default:
		}
		filled = len(sub.ch) == SubQueue && len(sub.resync) == 1
		time.Sleep(time.Millisecond)
	}

	stop := make(chan struct{})
	sawResync := false
	for i := 0; i < SubQueue; i++ {
		_, resync, ok := sub.Next(stop)
		if !ok {
			t.Fatal("Next returned !ok")
		}
		if resync {
			sawResync = true
			break
		}
	}
	if !sawResync {
		t.Fatal("overflowed subscriber was never told to resync")
	}
}

// TestHubDispatcherLifecycle: the dispatcher goroutine exists only
// while subscribers do, and notifications reach a live subscriber.
func TestHubDispatcherLifecycle(t *testing.T) {
	var gen atomic.Uint64
	var sig Signal
	h := NewHub(gen.Load, &sig)
	sub := h.Register()
	gen.Store(42)
	sig.Wake()
	stop := make(chan struct{})
	got := make(chan uint64, 1)
	go func() {
		g, _, ok := sub.Next(stop)
		if ok {
			got <- g
		}
	}()
	select {
	case g := <-got:
		if g != 42 {
			t.Fatalf("notified generation %d, want 42", g)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("subscriber never notified")
	}
	h.Unregister(sub)
	if n := h.Subscribers(); n != 0 {
		t.Fatalf("%d subscribers after unregister", n)
	}
	// Re-register restarts the dispatcher cleanly.
	sub2 := h.Register()
	sig.Wake()
	go func() {
		_, _, ok := sub2.Next(stop)
		got <- map[bool]uint64{true: 1, false: 0}[ok]
	}()
	select {
	case ok := <-got:
		if ok != 1 {
			t.Fatal("restarted dispatcher did not deliver")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("restarted dispatcher never delivered")
	}
	h.Unregister(sub2)
}

// TestHubRegisterUnregisterChurn hammers the dispatcher start/stop edge:
// goroutines register, drain a few notifications, and unregister while
// wakes fire continuously, so the hub constantly crosses the
// last-out/first-in restart boundary. Run under -race this pins the
// stale-dispatcher guard in run(): without it, a dispatcher whose stop
// channel was closed by the last Unregister could race a freshly started
// replacement and both would deliver to the new era's subscribers.
func TestHubRegisterUnregisterChurn(t *testing.T) {
	var gen atomic.Uint64
	var sig Signal
	h := NewHub(gen.Load, &sig)

	done := make(chan struct{})
	var wakers sync.WaitGroup
	wakers.Add(1)
	go func() {
		defer wakers.Done()
		for {
			select {
			case <-done:
				return
			default:
				gen.Add(1)
				sig.Wake()
			}
		}
	}()

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			stop := make(chan struct{})
			close(stop) // Next never blocks: drained opportunistically
			for i := 0; i < 200; i++ {
				sub := h.Register()
				sub.Next(stop)
				sub.Next(stop)
				h.Unregister(sub)
			}
		}()
	}
	wg.Wait()
	close(done)
	wakers.Wait()

	if n := h.Subscribers(); n != 0 {
		t.Fatalf("%d subscribers left after churn", n)
	}
	// The hub must still work after the churn: a fresh subscriber gets a
	// notification from a cleanly restarted dispatcher.
	sub := h.Register()
	defer h.Unregister(sub)
	sig.Wake()
	got := make(chan bool, 1)
	go func() {
		_, _, ok := sub.Next(nil)
		got <- ok
	}()
	select {
	case ok := <-got:
		if !ok {
			t.Fatal("post-churn subscriber got !ok")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("post-churn dispatcher never delivered")
	}
}

// TestParseBlock covers the pushed-block header grammar.
func TestParseBlock(t *testing.T) {
	kind, gen, lines, err := ParseBlock("UPDATE gen=17\n=node000 up\n-node001")
	if err != nil || kind != BlockUpdate || gen != 17 || len(lines) != 2 {
		t.Fatalf("ParseBlock = %q %d %v %v", kind, gen, lines, err)
	}
	if _, _, _, err := ParseBlock("UPDATE gen=zzz"); err == nil {
		t.Fatal("bad generation accepted")
	}
	kind, _, _, err = ParseBlock("OK watch status gen=3\nnode000 up")
	if err != nil || kind != "OK" {
		t.Fatalf("initial block: %q %v", kind, err)
	}
}
