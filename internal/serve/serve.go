// Package serve is the read-side query layer between the management
// server's data planes (internal/core's registry, internal/history's
// block store) and the client surfaces (ctl verbs, the dashboard, watch
// streams). The paper's GUI (§5.4) assumed a handful of administrators;
// at production scale the read side must take orders of magnitude more
// traffic than ingest without recomputing every panel per request — the
// exact failure mode the BNL "Software Scalability Issues in Large
// Clusters" report documents for flat monitoring masters.
//
// Three mechanisms, all timer-free:
//
//   - Generation gating (Gate): ingest bumps a per-shard atomic
//     generation; cached answers are tagged with the generation they were
//     computed at and stay valid until it moves. A cache hit is a
//     lock-free atomic pointer load returning the prebuilt rendering —
//     zero allocations, enforced by alloc gates and //cwx:hotpath.
//
//   - Request coalescing: N identical concurrent misses collapse onto
//     one rebuild (a mutex plus a post-acquire generation recheck — the
//     stdlib-only singleflight); the waiters return the fresh entry
//     without recomputing.
//
//   - Change-only watch streams (Hub, Signal, Diff/View): subscribers
//     hold a connection and receive only the lines that changed since
//     their last generation — §5.3's change-set consolidation applied to
//     the client hop, the same trick the agent→server hop already uses.
//     Per-subscriber queues are bounded; a slow consumer's overflow is
//     handled with the same drop-to-resync idiom as core.ErrResyncNeeded:
//     continuity is declared lost and the next push is a full snapshot.
package serve

import (
	"sync/atomic"

	"clusterworx/internal/flight"
	"clusterworx/internal/telemetry"
)

// Self-monitoring series for the serving plane. Hits are the hot path —
// a single striped add riding the generation's low bits so steady-state
// readers at different generations land on different cache lines.
var (
	mHits      = telemetry.Default().Counter("cwx_serve_hits_total")
	mMisses    = telemetry.Default().Counter("cwx_serve_misses_total")
	mCoalesced = telemetry.Default().Counter("cwx_serve_coalesced_total")

	mWatchPushes    = telemetry.Default().Counter("cwx_serve_watch_pushes_total")
	mWatchResyncs   = telemetry.Default().Counter("cwx_serve_watch_resyncs_total")
	mWatchOverflows = telemetry.Default().Counter("cwx_serve_watch_overflows_total")
	mWatchSubs      = telemetry.Default().Counter("cwx_serve_watch_subscribers_total")
)

// Stats is a point-in-time reading of the serving plane's counters, for
// tests and the cwxsim summary line.
type Stats struct {
	Hits           int64 // answers served from a generation-valid cache entry
	Misses         int64 // rebuilds (one per coalesced miss group)
	Coalesced      int64 // waiters served by another goroutine's rebuild
	WatchPushes    int64 // blocks pushed to watch subscribers
	WatchResyncs   int64 // full-snapshot pushes after a subscriber overflow
	WatchOverflows int64 // subscriber queue overflows (continuity lost)
}

// ReadStats samples the process-wide cache counters.
func ReadStats() Stats {
	return Stats{
		Hits:           mHits.Load(),
		Misses:         mMisses.Load(),
		Coalesced:      mCoalesced.Load(),
		WatchPushes:    mWatchPushes.Load(),
		WatchResyncs:   mWatchResyncs.Load(),
		WatchOverflows: mWatchOverflows.Load(),
	}
}

// NoteWatchPush and NoteWatchResync record watch-stream deliveries; the
// push loop lives with the ctl protocol in core, the counters live here
// with the rest of the serving plane's self-monitoring.
func NoteWatchPush() { mWatchPushes.Inc() }

// NoteWatchResync records a continuity-loss full push.
func NoteWatchResync() { mWatchResyncs.Inc() }

// fltj is the process-wide flight journal. The serving plane has no
// clock, so its records carry TimeNs 0; the global sequence number
// still orders them against the ingest pipeline's records.
var fltj = flight.Default()

// noteGateRebuild journals a gate miss (a Build run). Cold path: the
// rebuild itself just did registry-scale work, one interning lookup is
// noise.
func noteGateRebuild(name string) {
	if name == "" {
		return
	}
	fltj.Append(0, flight.Entry{Kind: flight.KindGateRebuild, Detail: fltj.Sym(name)})
}

// Signal is a timer-free broadcast wakeup: writers call Wake after
// bumping a generation, waiters block until at least one Wake has
// happened since their last look. Spurious wakeups are possible (waiters
// recheck generations); lost wakeups are not — Wake sets a pending flag
// before closing the waiters' channel, and Wait consumes the flag before
// blocking.
type Signal struct {
	pending atomic.Bool
	ch      atomic.Pointer[chan struct{}]
}

// Wake marks the signal and releases current waiters. It is called from
// the ingest hot path: with no waiters it is one atomic store and one
// atomic load, no allocation.
//
//cwx:hotpath
func (s *Signal) Wake() {
	s.pending.Store(true)
	if p := s.ch.Load(); p != nil {
		if s.ch.CompareAndSwap(p, nil) {
			close(*p)
		}
	}
}

// Wait blocks until a Wake lands (returning true) or stop closes
// (returning false). A Wake that raced in before Wait blocks is
// delivered immediately via the pending flag.
func (s *Signal) Wait(stop <-chan struct{}) bool {
	if s.pending.Swap(false) {
		return true
	}
	var ch chan struct{}
	for {
		if p := s.ch.Load(); p != nil {
			ch = *p
			break
		}
		n := make(chan struct{})
		if s.ch.CompareAndSwap(nil, &n) {
			ch = n
			break
		}
	}
	// A Wake may have landed between the flag check and the channel
	// install; it set pending first, so consume it rather than blocking
	// on a channel it may not have seen.
	if s.pending.Swap(false) {
		return true
	}
	select {
	case <-ch:
		s.pending.Store(false)
		return true
	case <-stop:
		return false
	}
}
