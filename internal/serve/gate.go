package serve

import (
	"sync"
	"sync/atomic"
)

// Gate is a single-answer generation-gated cache with request
// coalescing. The cached value is tagged with the generation it was
// computed at and served until the generation moves — no timers, no
// staleness windows: validity is "the inputs have not changed", read
// straight from the ingest path's atomic counters.
//
// Concurrency contract: a hit is one GenFn read plus one atomic pointer
// load — lock-free and allocation-free. Misses serialize on an internal
// mutex (the stdlib-only singleflight): the first goroutine rebuilds,
// every waiter re-checks after acquiring the mutex and returns the fresh
// entry without running Build. Build therefore executes once per
// generation change regardless of how many identical requests race in.
type Gate[T any] struct {
	// Name labels the gate in flight-recorder rebuild records; empty
	// skips journaling (anonymous test gates).
	Name string
	// GenFn reads the current generation of the inputs Build consumes.
	// It must be monotone non-decreasing and cheap (atomic loads).
	GenFn func() uint64
	// Stale optionally invalidates a generation-valid entry for reasons
	// outside the generation vector — the status snapshot uses it for
	// the liveness deadline (a node can go down without any ingest
	// moving the generation). Nil means generation equality suffices.
	Stale func(T) bool
	// Build computes a fresh value. It runs with no Gate-internal lock
	// visible to readers (hits never block on it) but at most once
	// concurrently per Gate.
	Build func() T

	mu sync.Mutex //cwx:lockrank gate 40
	p  atomic.Pointer[tagged[T]]
}

type tagged[T any] struct {
	gen uint64
	val T
}

// Get returns the cached value, rebuilding it if the generation moved or
// Stale says so. The generation is read before Build runs, so a
// concurrent ingest during the rebuild tags the entry conservatively:
// the very next Get sees a moved generation and rebuilds again.
//
// Freshness contract: an answer is valid for a request if it was built
// from data at least as new as everything ingested before the request
// started — e.gen >= the generation observed on entry. Under a quiet
// generation that degenerates to equality (the common hit). Under
// continuous ingest it is what keeps coalescing effective: a waiter
// whose build finished behind another's takes that fresher entry
// instead of rebuilding, so the build rate is bounded by the ingest
// rate, not the request rate — without ever serving a reader data older
// than its own request.
//
//cwx:hotpath
func (g *Gate[T]) Get() T {
	gen := g.GenFn()
	if e := g.p.Load(); e != nil && e.gen >= gen && (g.Stale == nil || !g.Stale(e.val)) {
		mHits.IncAt(int(gen))
		return e.val
	}
	// g.mu is the gate's own coalescing mutex, not a data-plane lock:
	// holding it across one Build is the singleflight contract, and
	// builders read the registry with their usual stripe/record locks
	// without ever calling back into this gate.
	g.mu.Lock()
	defer g.mu.Unlock()
	if e := g.p.Load(); e != nil && e.gen >= gen && (g.Stale == nil || !g.Stale(e.val)) { //cwx:allow lockscope -- atomic load + deadline check on an immutable snapshot; cannot re-enter the gate
		mCoalesced.Inc()
		return e.val
	}
	mMisses.Inc()
	noteGateRebuild(g.Name)
	gen = g.GenFn()                         //cwx:allow lockscope -- atomic generation read; cannot re-enter the gate
	v := g.Build()                          //cwx:allow lockscope -- the coalescing point itself: one rebuild per generation change, waiters blocked here by design
	g.p.Store(&tagged[T]{gen: gen, val: v}) //cwx:allow staticalloc -- the miss path publishes a fresh snapshot; it must escape. The cached hit path above is the alloc-free one the E20 gate measures
	return v
}

// Peek returns the current entry without validating or rebuilding it,
// and whether one exists. Watch streams use it to label resync pushes.
func (g *Gate[T]) Peek() (T, bool) {
	if e := g.p.Load(); e != nil {
		return e.val, true
	}
	var zero T
	return zero, false
}
