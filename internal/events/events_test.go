package events

import (
	"errors"
	"fmt"
	"testing"

	"clusterworx/internal/consolidate"
)

// fakeActuator records actions and optionally fails.
type fakeActuator struct {
	calls []string
	fail  error
}

func (a *fakeActuator) record(op, node string) error {
	a.calls = append(a.calls, op+":"+node)
	return a.fail
}

func (a *fakeActuator) PowerOff(n string) error   { return a.record("poweroff", n) }
func (a *fakeActuator) PowerCycle(n string) error { return a.record("cycle", n) }
func (a *fakeActuator) Reset(n string) error      { return a.record("reset", n) }
func (a *fakeActuator) Halt(n string) error       { return a.record("halt", n) }

// fakeNotifier records trigger/clear edges.
type fakeNotifier struct {
	triggers []string
	clears   []string
}

func (n *fakeNotifier) EventTriggered(r Rule, node string, v float64, actionErr error) {
	n.triggers = append(n.triggers, fmt.Sprintf("%s@%s=%g", r.Name, node, v))
}

func (n *fakeNotifier) EventCleared(r Rule, node string) {
	n.clears = append(n.clears, r.Name+"@"+node)
}

func obs(e *Engine, node string, metric string, v float64) []Firing {
	return e.ObserveMap(node, map[string]float64{metric: v})
}

func TestOpEval(t *testing.T) {
	cases := []struct {
		op   Op
		v, t float64
		want bool
	}{
		{GT, 5, 4, true}, {GT, 4, 4, false},
		{GE, 4, 4, true}, {GE, 3, 4, false},
		{LT, 3, 4, true}, {LT, 4, 4, false},
		{LE, 4, 4, true}, {LE, 5, 4, false},
		{EQ, 4, 4, true}, {EQ, 5, 4, false},
		{NE, 5, 4, true}, {NE, 4, 4, false},
		{Op(99), 1, 1, false},
	}
	for _, c := range cases {
		if got := c.op.eval(c.v, c.t); got != c.want {
			t.Errorf("%v.eval(%g,%g) = %v", c.op, c.v, c.t, got)
		}
	}
	if GT.String() != ">" || Op(99).String() != "?" {
		t.Error("Op.String wrong")
	}
	for a, s := range map[ActionType]string{ActNone: "none", ActPowerOff: "power-off",
		ActPowerCycle: "power-cycle", ActReset: "reset", ActHalt: "halt", ActPlugin: "plugin", ActionType(99): "?"} {
		if a.String() != s {
			t.Errorf("%d.String() = %q, want %q", a, a.String(), s)
		}
	}
}

func TestRuleValidation(t *testing.T) {
	e := New(nil, nil, nil)
	if err := e.AddRule(Rule{}); err == nil {
		t.Fatal("empty rule accepted")
	}
	if err := e.AddRule(Rule{Name: "x", Metric: "m", Action: ActPlugin}); err == nil {
		t.Fatal("plugin action without plugin accepted")
	}
	if err := e.AddRule(Rule{Name: "x", Metric: "m"}); err != nil {
		t.Fatal(err)
	}
	if got := e.Rules(); len(got) != 1 || got[0].Sustain != 1 {
		t.Fatalf("Rules = %+v", got)
	}
}

func TestThresholdTriggersAction(t *testing.T) {
	act := &fakeActuator{}
	e := New(act, nil, nil)
	e.AddRule(Rule{Name: "overheat", Metric: "hw.temp.cpu", Op: GT, Threshold: 85, Action: ActPowerOff})
	if fired := obs(e, "n1", "hw.temp.cpu", 70); len(fired) != 0 {
		t.Fatal("fired below threshold")
	}
	fired := obs(e, "n1", "hw.temp.cpu", 90)
	if len(fired) != 1 {
		t.Fatalf("firings = %v", fired)
	}
	f := fired[0]
	if f.Rule != "overheat" || f.Node != "n1" || f.Value != 90 || f.Action != ActPowerOff || f.ActionErr != nil {
		t.Fatalf("firing = %+v", f)
	}
	if len(act.calls) != 1 || act.calls[0] != "poweroff:n1" {
		t.Fatalf("actuator calls = %v", act.calls)
	}
}

func TestNoRetriggerWhileActive(t *testing.T) {
	act := &fakeActuator{}
	e := New(act, nil, nil)
	e.AddRule(Rule{Name: "hot", Metric: "t", Op: GT, Threshold: 85, Action: ActPowerOff})
	obs(e, "n1", "t", 90)
	obs(e, "n1", "t", 95)
	obs(e, "n1", "t", 99)
	if len(act.calls) != 1 {
		t.Fatalf("action ran %d times while continuously violated", len(act.calls))
	}
	if !e.Triggered("hot", "n1") {
		t.Fatal("not triggered")
	}
}

func TestRefireAfterFix(t *testing.T) {
	act := &fakeActuator{}
	nt := &fakeNotifier{}
	e := New(act, nt, nil)
	e.AddRule(Rule{Name: "hot", Metric: "t", Op: GT, Threshold: 85, Action: ActReset, Notify: true})
	obs(e, "n1", "t", 90) // fires
	obs(e, "n1", "t", 60) // fixed: clears
	obs(e, "n1", "t", 91) // fails again: re-fires automatically
	if len(act.calls) != 2 {
		t.Fatalf("actions = %v", act.calls)
	}
	if len(nt.triggers) != 2 || len(nt.clears) != 1 {
		t.Fatalf("triggers %v clears %v", nt.triggers, nt.clears)
	}
}

func TestSustainDebounce(t *testing.T) {
	act := &fakeActuator{}
	e := New(act, nil, nil)
	e.AddRule(Rule{Name: "load", Metric: "load.1", Op: GT, Threshold: 10, Sustain: 3, Action: ActHalt})
	obs(e, "n1", "load.1", 12)
	obs(e, "n1", "load.1", 12)
	if len(act.calls) != 0 {
		t.Fatal("fired before sustain count")
	}
	obs(e, "n1", "load.1", 5) // violation streak broken
	obs(e, "n1", "load.1", 12)
	obs(e, "n1", "load.1", 12)
	if len(act.calls) != 0 {
		t.Fatal("streak reset ignored")
	}
	obs(e, "n1", "load.1", 12)
	if len(act.calls) != 1 {
		t.Fatalf("calls = %v", act.calls)
	}
}

func TestPerNodeIndependence(t *testing.T) {
	act := &fakeActuator{}
	e := New(act, nil, nil)
	e.AddRule(Rule{Name: "hot", Metric: "t", Op: GT, Threshold: 85, Action: ActPowerOff})
	obs(e, "n1", "t", 90)
	obs(e, "n2", "t", 70)
	obs(e, "n3", "t", 99)
	if len(act.calls) != 2 {
		t.Fatalf("calls = %v", act.calls)
	}
	nodes := e.TriggeredNodes("hot")
	if len(nodes) != 2 || nodes[0] != "n1" || nodes[1] != "n3" {
		t.Fatalf("triggered nodes = %v", nodes)
	}
	if e.Triggered("hot", "n2") {
		t.Fatal("n2 wrongly triggered")
	}
}

func TestPluginAction(t *testing.T) {
	var got string
	e := New(nil, nil, nil)
	e.AddRule(Rule{Name: "custom", Metric: "m", Op: LT, Threshold: 1, Action: ActPlugin,
		Plugin: func(node string) error { got = node; return nil }})
	obs(e, "n9", "m", 0)
	if got != "n9" {
		t.Fatalf("plugin got %q", got)
	}
}

func TestActionErrorRecorded(t *testing.T) {
	act := &fakeActuator{fail: errors.New("icebox unreachable")}
	e := New(act, nil, nil)
	e.AddRule(Rule{Name: "hot", Metric: "t", Op: GT, Threshold: 85, Action: ActPowerOff})
	fired := obs(e, "n1", "t", 90)
	if len(fired) != 1 || fired[0].ActionErr == nil {
		t.Fatalf("fired = %+v", fired)
	}
}

func TestNoActuatorError(t *testing.T) {
	e := New(nil, nil, nil)
	e.AddRule(Rule{Name: "hot", Metric: "t", Op: GT, Threshold: 85, Action: ActPowerOff})
	fired := obs(e, "n1", "t", 90)
	if len(fired) != 1 || fired[0].ActionErr == nil {
		t.Fatal("missing actuator did not surface as action error")
	}
}

func TestMissingMetricIgnored(t *testing.T) {
	e := New(nil, nil, nil)
	e.AddRule(Rule{Name: "hot", Metric: "t", Op: GT, Threshold: 85})
	obs(e, "n1", "t", 90)
	// Metric absent: state unchanged, still triggered, no clear edge.
	fired := e.ObserveMap("n1", map[string]float64{"other": 1})
	if len(fired) != 0 || !e.Triggered("hot", "n1") {
		t.Fatal("absent metric mutated rule state")
	}
}

func TestObserveValues(t *testing.T) {
	e := New(nil, nil, nil)
	e.AddRule(Rule{Name: "full", Metric: "mem.used.pct", Op: GE, Threshold: 95})
	vals := []consolidate.Value{
		consolidate.NumValue("mem.used.pct", consolidate.Dynamic, 97),
		consolidate.TextValue("host.name", consolidate.Static, "n1"),
	}
	if fired := e.Observe("n1", vals); len(fired) != 1 {
		t.Fatalf("fired = %v", fired)
	}
}

func TestRemoveRule(t *testing.T) {
	e := New(nil, nil, nil)
	e.AddRule(Rule{Name: "a", Metric: "m", Op: GT, Threshold: 1})
	e.AddRule(Rule{Name: "b", Metric: "m", Op: GT, Threshold: 2})
	e.RemoveRule("a")
	e.RemoveRule("ghost")
	rules := e.Rules()
	if len(rules) != 1 || rules[0].Name != "b" {
		t.Fatalf("rules = %+v", rules)
	}
}

func TestFiringLog(t *testing.T) {
	e := New(nil, nil, nil)
	e.AddRule(Rule{Name: "hot", Metric: "t", Op: GT, Threshold: 85})
	for i := 0; i < 5; i++ {
		obs(e, "n1", "t", 90)
		obs(e, "n1", "t", 50)
	}
	log := e.Log()
	if len(log) != 5 {
		t.Fatalf("log = %d entries", len(log))
	}
	if log[0].Rule != "hot" || log[0].Node != "n1" {
		t.Fatalf("log[0] = %+v", log[0])
	}
	if s := e.Rules()[0].String(); s != "hot: t > 85 -> none" {
		t.Fatalf("Rule.String = %q", s)
	}
}

func TestMultipleRulesSameMetric(t *testing.T) {
	act := &fakeActuator{}
	e := New(act, nil, nil)
	e.AddRule(Rule{Name: "warn", Metric: "t", Op: GT, Threshold: 70, Action: ActNone})
	e.AddRule(Rule{Name: "crit", Metric: "t", Op: GT, Threshold: 90, Action: ActPowerOff})
	fired := obs(e, "n1", "t", 80)
	if len(fired) != 1 || fired[0].Rule != "warn" {
		t.Fatalf("fired = %v", fired)
	}
	fired = obs(e, "n1", "t", 95)
	if len(fired) != 1 || fired[0].Rule != "crit" {
		t.Fatalf("fired = %v", fired)
	}
	if len(act.calls) != 1 {
		t.Fatalf("calls = %v", act.calls)
	}
}
