// Package events implements the ClusterWorX event engine (paper §5.2):
// administrators "set thresholds on any value monitored"; when a threshold
// is exceeded the engine "automatically triggers an action" — node power
// down, reboot, halt, or an administrator-defined plug-in — and optionally
// notifies. "If a node is fixed by an administrator but fails again later,
// the event re-fires automatically, without administrative interventions."
package events

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"clusterworx/internal/consolidate"
	"clusterworx/internal/flight"
	"clusterworx/internal/telemetry"
)

// Self-monitoring series for the event engine. Action latency uses the
// wall clock — e.now is virtual in simulation and would time actions at
// zero — because the interesting number is how long a power-off RPC or
// an administrator plug-in actually stalls the evaluation goroutine.
// fltj is the process-wide flight journal; firings are cold path, so
// the interning Sym calls here are fine.
var fltj = flight.Default()

var (
	mObservations = telemetry.Default().Counter("cwx_events_observations_total")
	mRulesEval    = telemetry.Default().Counter("cwx_events_rules_evaluated_total")
	mFired        = telemetry.Default().Counter("cwx_events_fired_total")
	mCleared      = telemetry.Default().Counter("cwx_events_cleared_total")
	mActionNs     = telemetry.Default().Histogram("cwx_events_action_ns")
)

// Op is a threshold comparison.
type Op uint8

// Comparison operators.
const (
	GT Op = iota
	GE
	LT
	LE
	EQ
	NE
)

// String renders the operator.
func (o Op) String() string {
	switch o {
	case GT:
		return ">"
	case GE:
		return ">="
	case LT:
		return "<"
	case LE:
		return "<="
	case EQ:
		return "=="
	case NE:
		return "!="
	default:
		return "?"
	}
}

// eval applies the comparison.
func (o Op) eval(v, threshold float64) bool {
	switch o {
	case GT:
		return v > threshold
	case GE:
		return v >= threshold
	case LT:
		return v < threshold
	case LE:
		return v <= threshold
	case EQ:
		return v == threshold
	case NE:
		return v != threshold
	default:
		return false
	}
}

// ActionType is the built-in corrective action palette.
type ActionType uint8

// Actions. The default actions the paper names are power down and reboot.
const (
	ActNone ActionType = iota
	ActPowerOff
	ActPowerCycle
	ActReset
	ActHalt
	ActPlugin
)

// String names the action.
func (a ActionType) String() string {
	switch a {
	case ActNone:
		return "none"
	case ActPowerOff:
		return "power-off"
	case ActPowerCycle:
		return "power-cycle"
	case ActReset:
		return "reset"
	case ActHalt:
		return "halt"
	case ActPlugin:
		return "plugin"
	default:
		return "?"
	}
}

// Rule is one administrator-defined event.
type Rule struct {
	Name      string
	Metric    string // monitor value name, e.g. "hw.temp.cpu"
	Op        Op
	Threshold float64
	// Sustain is how many consecutive violating samples trigger the event
	// (default 1). It debounces noisy monitors.
	Sustain int
	Action  ActionType
	// Plugin runs when Action is ActPlugin; it receives the node name.
	// "Customizable action can be created using shell scripts, perl
	// scripts, symbolic links, programs, and more" — here, any Go func.
	Plugin func(node string) error
	// Notify selects administrator notification on trigger.
	Notify bool
}

// String renders the rule in the rule-file style.
func (r Rule) String() string {
	return fmt.Sprintf("%s: %s %s %g -> %s", r.Name, r.Metric, r.Op, r.Threshold, r.Action)
}

// Actuator executes corrective actions against a node; the management
// server backs it with the node's ICE Box.
type Actuator interface {
	PowerOff(node string) error
	PowerCycle(node string) error
	Reset(node string) error
	Halt(node string) error
}

// Notifier receives trigger/clear edges; notify.Notifier implements the
// paper's smart e-mail semantics on top of them.
type Notifier interface {
	EventTriggered(rule Rule, node string, value float64, actionErr error)
	EventCleared(rule Rule, node string)
}

// Firing is one log entry of a triggered event.
type Firing struct {
	At        time.Duration
	Rule      string
	Node      string
	Value     float64
	Action    ActionType
	ActionErr error
}

// Engine evaluates rules against observed node samples.
type Engine struct {
	// nrules mirrors len(rules) so the per-update observation hot path
	// can skip the engine lock entirely when no rules are installed —
	// with hundreds of agents reporting concurrently, even an
	// uncontended-looking global mutex becomes a serialization point.
	nrules   atomic.Int32
	mu       sync.Mutex //cwx:lockrank engine 70
	rules    map[string]*Rule
	order    []string
	state    map[string]map[string]*nodeState // rule -> node -> state
	actuator Actuator
	notifier Notifier
	now      func() time.Duration
	log      []Firing
	logCap   int
}

type nodeState struct {
	violations int
	triggered  bool
}

// New returns an engine. actuator and notifier may be nil (evaluation
// only). now supplies timestamps for the firing log.
func New(actuator Actuator, notifier Notifier, now func() time.Duration) *Engine {
	if now == nil {
		now = func() time.Duration { return 0 }
	}
	return &Engine{
		rules:    make(map[string]*Rule),
		state:    make(map[string]map[string]*nodeState),
		actuator: actuator,
		notifier: notifier,
		now:      now,
		logCap:   1024,
	}
}

// AddRule installs or replaces a rule. Replacing resets its per-node
// state.
func (e *Engine) AddRule(r Rule) error {
	if r.Name == "" || r.Metric == "" {
		return fmt.Errorf("events: rule needs name and metric")
	}
	if r.Sustain < 1 {
		r.Sustain = 1
	}
	if r.Action == ActPlugin && r.Plugin == nil {
		return fmt.Errorf("events: rule %s: plugin action without plugin", r.Name)
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if _, exists := e.rules[r.Name]; !exists {
		e.order = append(e.order, r.Name)
	}
	e.rules[r.Name] = &r
	e.state[r.Name] = make(map[string]*nodeState)
	e.nrules.Store(int32(len(e.rules)))
	return nil
}

// RemoveRule deletes a rule.
func (e *Engine) RemoveRule(name string) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if _, ok := e.rules[name]; !ok {
		return
	}
	delete(e.rules, name)
	delete(e.state, name)
	e.nrules.Store(int32(len(e.rules)))
	for i, n := range e.order {
		if n == name {
			e.order = append(e.order[:i], e.order[i+1:]...)
			break
		}
	}
}

// HasRules reports whether any rules are installed, without taking the
// engine lock. The server's ingest path uses it to skip building an
// observation snapshot when evaluation would be a no-op.
func (e *Engine) HasRules() bool { return e.nrules.Load() > 0 }

// Rules returns the installed rules in insertion order.
func (e *Engine) Rules() []Rule {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]Rule, 0, len(e.order))
	for _, name := range e.order {
		out = append(out, *e.rules[name])
	}
	return out
}

// Observe evaluates every rule against a node's sample batch and returns
// the firings it produced. Actions and notifications run inline.
func (e *Engine) Observe(node string, values []consolidate.Value) []Firing {
	byName := make(map[string]float64, len(values))
	for _, v := range values {
		if !v.IsText {
			byName[v.Name] = v.Num
		}
	}
	return e.ObserveMap(node, byName)
}

// ObserveMap is Observe for pre-indexed samples. Values absent from the
// map leave rule state untouched (a metric that stopped arriving is not a
// violation — pair it with a connectivity rule).
func (e *Engine) ObserveMap(node string, values map[string]float64) []Firing {
	if e.nrules.Load() == 0 {
		return nil
	}
	type pending struct {
		rule Rule
		val  float64
		kind byte // 't' trigger, 'c' clear
	}
	var work []pending
	var evaluated int64

	e.mu.Lock()
	for _, name := range e.order {
		r := e.rules[name]
		v, ok := values[r.Metric]
		if !ok {
			continue
		}
		evaluated++
		st := e.state[name][node]
		if st == nil {
			st = &nodeState{}
			e.state[name][node] = st
		}
		if r.Op.eval(v, r.Threshold) {
			st.violations++
			if !st.triggered && st.violations >= r.Sustain {
				st.triggered = true
				work = append(work, pending{rule: *r, val: v, kind: 't'})
			}
		} else {
			st.violations = 0
			if st.triggered {
				// Condition no longer holds: the node was fixed (or healed).
				// Re-arm so a later violation re-fires automatically.
				st.triggered = false
				work = append(work, pending{rule: *r, val: v, kind: 'c'})
			}
		}
	}
	e.mu.Unlock()
	mObservations.Inc()
	mRulesEval.Add(evaluated)

	var fired []Firing
	for _, w := range work {
		if w.kind == 'c' {
			mCleared.Inc()
			if e.notifier != nil {
				e.notifier.EventCleared(w.rule, node)
			}
			continue
		}
		var act0 time.Time
		if telemetry.On() {
			act0 = time.Now() //cwx:allow clockdet -- action latency measures real actuator cost; firings are stamped with e.now
		}
		actionErr := e.act(w.rule, node)
		if telemetry.On() {
			mActionNs.Observe(int64(time.Since(act0))) //cwx:allow clockdet -- closes the wall-clock action span
		}
		mFired.Inc()
		f := Firing{
			At:        e.now(),
			Rule:      w.rule.Name,
			Node:      node,
			Value:     w.val,
			Action:    w.rule.Action,
			ActionErr: actionErr,
		}
		e.mu.Lock()
		e.log = append(e.log, f)
		if len(e.log) > e.logCap {
			e.log = e.log[len(e.log)-e.logCap:]
		}
		e.mu.Unlock()
		// Journal the firing. The trace id (if the triggering frame was
		// sampled) comes from the node's span: the ingest hop for this
		// very frame was recorded moments ago on the same goroutine.
		fltj.Append(int(flight.Salt(node)), flight.Entry{
			Kind:   flight.KindEventFired,
			Node:   fltj.Sym(node),
			Detail: fltj.Sym(w.rule.Name),
			Trace:  telemetry.Spans.StageTrace(node, telemetry.StageIngest),
			TimeNs: int64(f.At),
			A:      int64(w.val),
		})
		if w.rule.Notify && e.notifier != nil {
			e.notifier.EventTriggered(w.rule, node, w.val, actionErr)
		}
		fired = append(fired, f)
	}
	return fired
}

// act runs the rule's corrective action.
func (e *Engine) act(r Rule, node string) error {
	if r.Action == ActNone {
		return nil
	}
	if r.Action == ActPlugin {
		return r.Plugin(node)
	}
	if e.actuator == nil {
		return fmt.Errorf("events: no actuator for %s", r.Action)
	}
	switch r.Action {
	case ActPowerOff:
		return e.actuator.PowerOff(node)
	case ActPowerCycle:
		return e.actuator.PowerCycle(node)
	case ActReset:
		return e.actuator.Reset(node)
	case ActHalt:
		return e.actuator.Halt(node)
	default:
		return fmt.Errorf("events: unknown action %v", r.Action)
	}
}

// Triggered reports whether a rule is currently triggered on a node.
func (e *Engine) Triggered(rule, node string) bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	st := e.state[rule][node]
	return st != nil && st.triggered
}

// TriggeredNodes returns the nodes a rule is currently triggered on,
// sorted.
func (e *Engine) TriggeredNodes(rule string) []string {
	e.mu.Lock()
	defer e.mu.Unlock()
	var out []string
	for node, st := range e.state[rule] {
		if st.triggered {
			out = append(out, node)
		}
	}
	sort.Strings(out)
	return out
}

// Log returns the firing history, oldest first.
func (e *Engine) Log() []Firing {
	e.mu.Lock()
	defer e.mu.Unlock()
	return append([]Firing(nil), e.log...)
}
