package events

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Rule files are how administrators configure events outside the API (§5.2
// "Events are configured by administrators"): one rule per line,
//
//	<name> <metric> <op> <threshold> [action=X] [sustain=N] [notify]
//
// with '#' comments and blank lines ignored. Ops are > >= < <= == !=;
// actions are none, power-off, power-cycle, reset, halt.
//
// Example:
//
//	# protect hardware
//	overtemp    hw.temp.cpu  >  85  action=power-off  notify
//	dead-node   net.echo.ok  <  1   action=power-cycle sustain=3 notify
//	swap-storm  swap.used.pct > 90  notify

// ParseOp parses a comparison operator token.
func ParseOp(s string) (Op, error) {
	switch s {
	case ">":
		return GT, nil
	case ">=":
		return GE, nil
	case "<":
		return LT, nil
	case "<=":
		return LE, nil
	case "==", "=":
		return EQ, nil
	case "!=":
		return NE, nil
	default:
		return 0, fmt.Errorf("events: unknown operator %q", s)
	}
}

// ParseAction parses an action token.
func ParseAction(s string) (ActionType, error) {
	switch strings.ToLower(s) {
	case "none", "":
		return ActNone, nil
	case "power-off", "poweroff":
		return ActPowerOff, nil
	case "power-cycle", "powercycle", "cycle":
		return ActPowerCycle, nil
	case "reset", "reboot":
		return ActReset, nil
	case "halt":
		return ActHalt, nil
	default:
		return 0, fmt.Errorf("events: unknown action %q", s)
	}
}

// ParseRules reads a rule file. Errors carry the line number.
func ParseRules(r io.Reader) ([]Rule, error) {
	var rules []Rule
	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		rule, err := parseRuleLine(fields)
		if err != nil {
			return nil, fmt.Errorf("events: line %d: %w", lineNo, err)
		}
		rules = append(rules, rule)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("events: reading rules: %w", err)
	}
	return rules, nil
}

func parseRuleLine(fields []string) (Rule, error) {
	var r Rule
	if len(fields) < 4 {
		return r, fmt.Errorf("want: <name> <metric> <op> <threshold> [options], got %d fields", len(fields))
	}
	r.Name = fields[0]
	r.Metric = fields[1]
	op, err := ParseOp(fields[2])
	if err != nil {
		return r, err
	}
	r.Op = op
	thr, err := strconv.ParseFloat(fields[3], 64)
	if err != nil {
		return r, fmt.Errorf("bad threshold %q: %v", fields[3], err)
	}
	r.Threshold = thr
	for _, opt := range fields[4:] {
		key, val, hasVal := strings.Cut(opt, "=")
		switch strings.ToLower(key) {
		case "notify":
			if hasVal {
				return r, fmt.Errorf("notify takes no value")
			}
			r.Notify = true
		case "action":
			act, err := ParseAction(val)
			if err != nil {
				return r, err
			}
			r.Action = act
		case "sustain":
			n, err := strconv.Atoi(val)
			if err != nil || n < 1 {
				return r, fmt.Errorf("bad sustain %q", val)
			}
			r.Sustain = n
		default:
			return r, fmt.Errorf("unknown option %q", opt)
		}
	}
	return r, nil
}

// FormatRules renders rules back into the file format (round-trippable).
func FormatRules(rules []Rule) string {
	var b strings.Builder
	for _, r := range rules {
		fmt.Fprintf(&b, "%s %s %s %g", r.Name, r.Metric, r.Op, r.Threshold)
		if r.Action != ActNone {
			fmt.Fprintf(&b, " action=%s", r.Action)
		}
		if r.Sustain > 1 {
			fmt.Fprintf(&b, " sustain=%d", r.Sustain)
		}
		if r.Notify {
			b.WriteString(" notify")
		}
		b.WriteByte('\n')
	}
	return b.String()
}
