package events

import (
	"strings"
	"testing"
	"testing/quick"
)

const sampleRules = `
# protect hardware
overtemp    hw.temp.cpu   >  85  action=power-off  notify
dead-node   net.echo.ok   <  1   action=power-cycle sustain=3 notify

swap-storm  swap.used.pct >= 90  notify   # inline comment
quiet       load.15       <= 0.01
exact       cpu.count     == 4
not-one     proc.running  != 1 action=none
`

func TestParseRulesSample(t *testing.T) {
	rules, err := ParseRules(strings.NewReader(sampleRules))
	if err != nil {
		t.Fatal(err)
	}
	if len(rules) != 6 {
		t.Fatalf("parsed %d rules", len(rules))
	}
	r := rules[0]
	if r.Name != "overtemp" || r.Metric != "hw.temp.cpu" || r.Op != GT ||
		r.Threshold != 85 || r.Action != ActPowerOff || !r.Notify {
		t.Fatalf("rule 0 = %+v", r)
	}
	if rules[1].Sustain != 3 || rules[1].Action != ActPowerCycle {
		t.Fatalf("rule 1 = %+v", rules[1])
	}
	if rules[2].Op != GE || rules[3].Op != LE || rules[4].Op != EQ || rules[5].Op != NE {
		t.Fatal("operators wrong")
	}
	// Parsed rules install cleanly.
	e := New(nil, nil, nil)
	for _, r := range rules {
		if err := e.AddRule(r); err != nil {
			t.Fatalf("AddRule(%s): %v", r.Name, err)
		}
	}
}

func TestParseRulesErrors(t *testing.T) {
	cases := []string{
		"short line\n",
		"name metric ~ 5\n",
		"name metric > notanumber\n",
		"name metric > 5 action=explode\n",
		"name metric > 5 sustain=0\n",
		"name metric > 5 sustain=x\n",
		"name metric > 5 frobnicate=1\n",
		"name metric > 5 notify=yes\n",
	}
	for _, c := range cases {
		if _, err := ParseRules(strings.NewReader(c)); err == nil {
			t.Errorf("ParseRules(%q) succeeded", c)
		} else if !strings.Contains(err.Error(), "line 1") {
			t.Errorf("error lacks line number: %v", err)
		}
	}
}

func TestParseEmptyAndComments(t *testing.T) {
	rules, err := ParseRules(strings.NewReader("\n# nothing here\n   \n"))
	if err != nil || len(rules) != 0 {
		t.Fatalf("%v %v", rules, err)
	}
}

func TestParseActionAliases(t *testing.T) {
	for in, want := range map[string]ActionType{
		"poweroff": ActPowerOff, "cycle": ActPowerCycle, "reboot": ActReset,
		"halt": ActHalt, "none": ActNone, "": ActNone,
	} {
		got, err := ParseAction(in)
		if err != nil || got != want {
			t.Errorf("ParseAction(%q) = %v, %v", in, got, err)
		}
	}
}

// Property: FormatRules/ParseRules round-trips any valid plugin-free rule.
func TestPropertyRuleRoundTrip(t *testing.T) {
	f := func(nameSel, metricSel uint8, opSel, actSel uint8, thr int16, sustain uint8, notify bool) bool {
		r := Rule{
			Name:      "rule" + string(rune('a'+nameSel%26)),
			Metric:    "m." + string(rune('a'+metricSel%26)),
			Op:        Op(opSel % 6),
			Threshold: float64(thr),
			Action:    ActionType(actSel % 5), // excludes ActPlugin
			Sustain:   int(sustain%5) + 1,
			Notify:    notify,
		}
		text := FormatRules([]Rule{r})
		parsed, err := ParseRules(strings.NewReader(text))
		if err != nil || len(parsed) != 1 {
			return false
		}
		got := parsed[0]
		if got.Sustain == 0 {
			got.Sustain = 1
		}
		return got.Name == r.Name && got.Metric == r.Metric && got.Op == r.Op &&
			got.Threshold == r.Threshold && got.Action == r.Action &&
			got.Sustain == r.Sustain && got.Notify == r.Notify
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
