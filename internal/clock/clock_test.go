package clock

import (
	"testing"
	"testing/quick"
	"time"
)

func TestZeroStart(t *testing.T) {
	c := New()
	if c.Now() != 0 {
		t.Fatalf("new clock at %v, want 0", c.Now())
	}
	if c.Pending() != 0 {
		t.Fatalf("new clock has %d pending events", c.Pending())
	}
}

func TestAdvanceMovesTime(t *testing.T) {
	c := New()
	c.Advance(5 * time.Second)
	if got := c.Now(); got != 5*time.Second {
		t.Fatalf("Now() = %v, want 5s", got)
	}
	c.Advance(0)
	if got := c.Now(); got != 5*time.Second {
		t.Fatalf("Now() after zero advance = %v, want 5s", got)
	}
}

func TestAfterFuncFiresAtDeadline(t *testing.T) {
	c := New()
	var firedAt time.Duration = -1
	c.AfterFunc(10*time.Second, func() { firedAt = c.Now() })

	c.Advance(9 * time.Second)
	if firedAt != -1 {
		t.Fatalf("fired early at %v", firedAt)
	}
	c.Advance(time.Second)
	if firedAt != 10*time.Second {
		t.Fatalf("fired at %v, want 10s", firedAt)
	}
}

func TestNegativeDelayRunsImmediately(t *testing.T) {
	c := New()
	c.Advance(time.Minute)
	ran := false
	c.AfterFunc(-time.Second, func() { ran = true })
	c.Advance(0)
	if !ran {
		t.Fatal("negative-delay event did not run on next advance")
	}
}

func TestSameInstantOrdering(t *testing.T) {
	c := New()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		c.AfterFunc(time.Second, func() { order = append(order, i) })
	}
	c.Advance(time.Second)
	for i, v := range order {
		if v != i {
			t.Fatalf("events out of schedule order: %v", order)
		}
	}
}

func TestTimerStop(t *testing.T) {
	c := New()
	ran := false
	tm := c.AfterFunc(time.Second, func() { ran = true })
	if !tm.Stop() {
		t.Fatal("Stop() = false for pending timer")
	}
	if tm.Stop() {
		t.Fatal("second Stop() = true")
	}
	c.Advance(2 * time.Second)
	if ran {
		t.Fatal("stopped timer still ran")
	}
}

func TestStopAfterFireReportsFalse(t *testing.T) {
	c := New()
	tm := c.AfterFunc(time.Second, func() {})
	c.Advance(time.Second)
	if tm.Stop() {
		t.Fatal("Stop() = true after the timer fired")
	}
}

func TestEventSchedulesEvent(t *testing.T) {
	c := New()
	var times []time.Duration
	c.AfterFunc(time.Second, func() {
		times = append(times, c.Now())
		c.AfterFunc(time.Second, func() {
			times = append(times, c.Now())
		})
	})
	c.Advance(3 * time.Second)
	if len(times) != 2 || times[0] != time.Second || times[1] != 2*time.Second {
		t.Fatalf("chained events ran at %v, want [1s 2s]", times)
	}
}

func TestStepJumpsToNextEvent(t *testing.T) {
	c := New()
	c.AfterFunc(time.Hour, func() {})
	if !c.Step() {
		t.Fatal("Step() = false with a pending event")
	}
	if c.Now() != time.Hour {
		t.Fatalf("Now() = %v after Step, want 1h", c.Now())
	}
	if c.Step() {
		t.Fatal("Step() = true with empty queue")
	}
}

func TestRunUntilIdle(t *testing.T) {
	c := New()
	count := 0
	var rec func(left int)
	rec = func(left int) {
		count++
		if left > 0 {
			c.AfterFunc(time.Millisecond, func() { rec(left - 1) })
		}
	}
	c.AfterFunc(time.Millisecond, func() { rec(99) })
	n := c.RunUntilIdle()
	if n != 100 || count != 100 {
		t.Fatalf("RunUntilIdle ran %d events, callback count %d; want 100/100", n, count)
	}
}

func TestRunUntilPanicsOnPast(t *testing.T) {
	c := New()
	c.Advance(time.Minute)
	defer func() {
		if recover() == nil {
			t.Fatal("RunUntil into the past did not panic")
		}
	}()
	c.RunUntil(time.Second)
}

func TestAtAbsolute(t *testing.T) {
	c := New()
	c.Advance(10 * time.Second)
	var at time.Duration
	c.At(25*time.Second, func() { at = c.Now() })
	c.RunUntil(30 * time.Second)
	if at != 25*time.Second {
		t.Fatalf("At event ran at %v, want 25s", at)
	}
}

func TestNextAt(t *testing.T) {
	c := New()
	if _, ok := c.NextAt(); ok {
		t.Fatal("NextAt ok on empty clock")
	}
	c.AfterFunc(7*time.Second, func() {})
	c.AfterFunc(3*time.Second, func() {})
	at, ok := c.NextAt()
	if !ok || at != 3*time.Second {
		t.Fatalf("NextAt = %v,%v; want 3s,true", at, ok)
	}
}

// Property: for any set of non-negative delays, events fire in
// non-decreasing time order and all fire after advancing past the max.
func TestPropertyFiringOrder(t *testing.T) {
	f := func(delays []uint16) bool {
		c := New()
		var fired []time.Duration
		var max time.Duration
		for _, d := range delays {
			d := time.Duration(d) * time.Millisecond
			if d > max {
				max = d
			}
			c.AfterFunc(d, func() { fired = append(fired, c.Now()) })
		}
		c.Advance(max + time.Second)
		if len(fired) != len(delays) {
			return false
		}
		for i := 1; i < len(fired); i++ {
			if fired[i] < fired[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
