// Package clock provides a deterministic discrete-event virtual clock.
//
// All cluster simulation in this repository (boot sequences, thermal
// dynamics, cloning transfers, job scheduling) runs on a Clock rather than
// wall time, so a twelve-minute cloning run completes in milliseconds and
// every experiment is reproducible. Events scheduled for the same instant
// run in scheduling order.
package clock

import (
	"container/heap"
	"fmt"
	"sync"
	"time"
)

// Clock is a virtual clock. The zero value is not usable; call New.
//
// Time only moves when Advance, Step, or RunUntilIdle is called, and events
// run synchronously on the calling goroutine. Methods are safe for
// concurrent use, but event callbacks run with the clock unlocked, so a
// callback may schedule further events.
type Clock struct {
	mu      sync.Mutex
	now     time.Duration
	queue   eventQueue
	seq     uint64
	running bool
}

// Timer is a handle to a scheduled callback.
type Timer struct {
	c       *Clock
	ev      *event
	stopped bool
}

type event struct {
	at    time.Duration
	seq   uint64
	fn    func()
	index int // heap index, -1 when removed
}

// New returns a Clock starting at time zero.
func New() *Clock {
	return &Clock{}
}

// Now returns the current virtual time as an offset from the clock's epoch.
func (c *Clock) Now() time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// AfterFunc schedules fn to run d after the current virtual time.
// A negative d is treated as zero. The returned Timer can cancel the call.
func (c *Clock) AfterFunc(d time.Duration, fn func()) *Timer {
	if d < 0 {
		d = 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	ev := &event{at: c.now + d, seq: c.seq, fn: fn}
	c.seq++
	heap.Push(&c.queue, ev)
	return &Timer{c: c, ev: ev}
}

// At schedules fn at an absolute virtual time. Times in the past run at the
// current instant.
func (c *Clock) At(t time.Duration, fn func()) *Timer {
	c.mu.Lock()
	d := t - c.now
	c.mu.Unlock()
	return c.AfterFunc(d, fn)
}

// Stop cancels the timer. It reports whether the call was prevented from
// running (false if it already ran or was already stopped).
func (t *Timer) Stop() bool {
	t.c.mu.Lock()
	defer t.c.mu.Unlock()
	if t.stopped || t.ev.index < 0 {
		return false
	}
	heap.Remove(&t.c.queue, t.ev.index)
	t.stopped = true
	return true
}

// Advance moves virtual time forward by d, running every event that falls
// due, in timestamp order. Events scheduled during Advance also run if they
// fall within the window.
func (c *Clock) Advance(d time.Duration) {
	if d < 0 {
		panic(fmt.Sprintf("clock: negative advance %v", d))
	}
	c.mu.Lock()
	deadline := c.now + d
	c.runLocked(deadline)
	c.now = deadline
	c.mu.Unlock()
}

// RunUntil advances to absolute virtual time t, running due events.
// It panics if t is in the past.
func (c *Clock) RunUntil(t time.Duration) {
	c.mu.Lock()
	if t < c.now {
		c.mu.Unlock()
		panic(fmt.Sprintf("clock: RunUntil(%v) before now %v", t, c.now))
	}
	c.runLocked(t)
	c.now = t
	c.mu.Unlock()
}

// Step runs the single next pending event, jumping time to it. It reports
// whether an event ran.
func (c *Clock) Step() bool {
	c.mu.Lock()
	if len(c.queue) == 0 {
		c.mu.Unlock()
		return false
	}
	ev := heap.Pop(&c.queue).(*event)
	c.now = ev.at
	c.mu.Unlock()
	ev.fn()
	return true
}

// RunUntilIdle runs events until none remain, jumping time forward as
// needed. It returns the number of events executed. A safety cap guards
// against runaway self-rescheduling loops.
func (c *Clock) RunUntilIdle() int {
	const cap = 50_000_000
	n := 0
	for c.Step() {
		n++
		if n >= cap {
			panic("clock: RunUntilIdle exceeded event cap; self-rescheduling loop?")
		}
	}
	return n
}

// Pending returns the number of scheduled events.
func (c *Clock) Pending() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.queue)
}

// NextAt returns the virtual time of the next pending event and whether one
// exists.
func (c *Clock) NextAt() (time.Duration, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.queue) == 0 {
		return 0, false
	}
	return c.queue[0].at, true
}

// runLocked executes all events with at <= deadline. The clock mutex must be
// held; it is released around each callback.
func (c *Clock) runLocked(deadline time.Duration) {
	for {
		if len(c.queue) == 0 || c.queue[0].at > deadline {
			return
		}
		ev := heap.Pop(&c.queue).(*event)
		if ev.at > c.now {
			c.now = ev.at
		}
		c.mu.Unlock()
		ev.fn()
		c.mu.Lock()
	}
}

// eventQueue is a min-heap on (at, seq).
type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }

func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}

func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}

func (q *eventQueue) Push(x any) {
	ev := x.(*event)
	ev.index = len(*q)
	*q = append(*q, ev)
}

func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*q = old[:n-1]
	return ev
}
