package notify

import (
	"errors"
	"strings"
	"testing"
	"time"

	"clusterworx/internal/clock"
	"clusterworx/internal/events"
)

func rule(name string) events.Rule {
	return events.Rule{
		Name: name, Metric: "hw.temp.cpu", Op: events.GT, Threshold: 85,
		Action: events.ActPowerOff, Notify: true,
	}
}

func newNotifier(clk *clock.Clock, cfg Config) (*Notifier, *Recording) {
	rec := &Recording{}
	return New(clk, rec, cfg), rec
}

func TestSingleTriggerSingleMail(t *testing.T) {
	clk := clock.New()
	n, rec := newNotifier(clk, Config{Cluster: "llnl", Admin: "ops@llnl.gov"})
	n.EventTriggered(rule("overheat"), "node007", 91.5, nil)
	if rec.Count() != 1 {
		t.Fatalf("mails = %d", rec.Count())
	}
	m := rec.Messages()[0]
	if m.To != "ops@llnl.gov" {
		t.Fatalf("to = %q", m.To)
	}
	for _, want := range []string{"llnl", "overheat", "node007", "power-off", "91.5"} {
		if !strings.Contains(m.Subject+m.Body, want) {
			t.Errorf("mail missing %q:\n%s\n%s", want, m.Subject, m.Body)
		}
	}
}

func TestOneMailForManyNodes(t *testing.T) {
	clk := clock.New()
	n, rec := newNotifier(clk, Config{})
	r := rule("overheat")
	n.EventTriggered(r, "n01", 90, nil)
	for i := 0; i < 30; i++ {
		n.EventTriggered(r, "n02", 92, nil)
		n.EventTriggered(r, "n03", 95, nil)
	}
	if rec.Count() != 1 {
		t.Fatalf("mails = %d, paper says one per triggered event", rec.Count())
	}
}

func TestBatchWindowCollectsNodes(t *testing.T) {
	clk := clock.New()
	n, rec := newNotifier(clk, Config{Batch: 5 * time.Second})
	r := rule("overheat")
	n.EventTriggered(r, "n01", 90, nil)
	clk.Advance(time.Second)
	n.EventTriggered(r, "n02", 91, nil)
	clk.Advance(time.Second)
	n.EventTriggered(r, "n03", 92, nil)
	if rec.Count() != 0 {
		t.Fatal("mail sent before batch window closed")
	}
	clk.Advance(5 * time.Second)
	if rec.Count() != 1 {
		t.Fatalf("mails = %d", rec.Count())
	}
	body := rec.Messages()[0].Body
	for _, node := range []string{"n01", "n02", "n03"} {
		if !strings.Contains(body, node) {
			t.Errorf("batched mail missing %s:\n%s", node, body)
		}
	}
	if !strings.Contains(rec.Messages()[0].Subject, "3 node(s)") {
		t.Errorf("subject = %q", rec.Messages()[0].Subject)
	}
}

func TestRefireSendsSecondMail(t *testing.T) {
	clk := clock.New()
	n, rec := newNotifier(clk, Config{})
	r := rule("overheat")
	n.EventTriggered(r, "n01", 90, nil)
	n.EventCleared(r, "n01") // admin fixed it
	n.EventTriggered(r, "n01", 93, nil)
	if rec.Count() != 2 {
		t.Fatalf("mails = %d, want re-fire to send again", rec.Count())
	}
}

func TestNoRefireWhileOtherNodesStillFailing(t *testing.T) {
	clk := clock.New()
	n, rec := newNotifier(clk, Config{})
	r := rule("overheat")
	n.EventTriggered(r, "n01", 90, nil)
	n.EventTriggered(r, "n02", 91, nil)
	n.EventCleared(r, "n01")
	n.EventTriggered(r, "n01", 92, nil) // rejoins the still-open incident
	if rec.Count() != 1 {
		t.Fatalf("mails = %d", rec.Count())
	}
	if got := n.ActiveIncidents(); len(got) != 1 || got[0] != "overheat" {
		t.Fatalf("active = %v", got)
	}
	n.EventCleared(r, "n01")
	n.EventCleared(r, "n02")
	if len(n.ActiveIncidents()) != 0 {
		t.Fatal("incident not closed")
	}
}

func TestSelfHealingWithinBatchSendsNothing(t *testing.T) {
	clk := clock.New()
	n, rec := newNotifier(clk, Config{Batch: 10 * time.Second})
	r := rule("flap")
	n.EventTriggered(r, "n01", 90, nil)
	clk.Advance(2 * time.Second)
	n.EventCleared(r, "n01") // healed before the window expired
	clk.Advance(time.Minute)
	if rec.Count() != 0 {
		t.Fatalf("mails = %d for a self-healed flap", rec.Count())
	}
}

func TestIndependentRulesIndependentIncidents(t *testing.T) {
	clk := clock.New()
	n, rec := newNotifier(clk, Config{})
	n.EventTriggered(rule("overheat"), "n01", 90, nil)
	n.EventTriggered(rule("fanfail"), "n01", 0, nil)
	if rec.Count() != 2 {
		t.Fatalf("mails = %d for two distinct events", rec.Count())
	}
}

func TestActionFailureShownInMail(t *testing.T) {
	clk := clock.New()
	n, rec := newNotifier(clk, Config{})
	n.EventTriggered(rule("overheat"), "n01", 90, errors.New("icebox port dead"))
	body := rec.Messages()[0].Body
	if !strings.Contains(body, "ACTION FAILED") || !strings.Contains(body, "icebox port dead") {
		t.Fatalf("body = %s", body)
	}
}

func TestWirelessFormat(t *testing.T) {
	clk := clock.New()
	n, rec := newNotifier(clk, Config{Cluster: "c1", Wireless: true})
	r := rule("overheat")
	n.EventTriggered(r, "n01", 90, nil)
	m := rec.Messages()[0]
	if strings.Contains(m.Body, "\n") {
		t.Fatalf("wireless body not single-line: %q", m.Body)
	}
	for _, want := range []string{"c1", "overheat", "n01", "power-off"} {
		if !strings.Contains(m.Body, want) {
			t.Errorf("wireless body missing %q: %q", want, m.Body)
		}
	}
}

func TestClearWithoutIncidentIgnored(t *testing.T) {
	clk := clock.New()
	n, rec := newNotifier(clk, Config{})
	n.EventCleared(rule("ghost"), "n01")
	if rec.Count() != 0 {
		t.Fatal("clear without incident sent mail")
	}
}

func TestMailerFailureCounted(t *testing.T) {
	clk := clock.New()
	n := New(clk, MailerFunc(func(Message) error { return errors.New("smtp down") }), Config{})
	n.EventTriggered(rule("overheat"), "n01", 90, nil)
	if n.SendFailures() != 1 {
		t.Fatalf("send failures = %d", n.SendFailures())
	}
}

func TestSendRetriedAfterTransientFailure(t *testing.T) {
	clk := clock.New()
	fails, sent := 2, 0
	mailer := MailerFunc(func(Message) error {
		if fails > 0 {
			fails--
			return errors.New("smtp down")
		}
		sent++
		return nil
	})
	n := New(clk, mailer, Config{Retry: 10 * time.Second})
	n.EventTriggered(rule("overheat"), "n01", 90, nil)
	if sent != 0 {
		t.Fatalf("mail delivered despite failing mailer")
	}
	// Retries double from the base: 10 s then 20 s.
	clk.Advance(10 * time.Second)
	if sent != 0 {
		t.Fatalf("second attempt should also fail")
	}
	clk.Advance(20 * time.Second)
	if sent != 1 {
		t.Fatalf("mail sent %d times after mailer recovered, want 1", sent)
	}
	if n.SendFailures() != 2 {
		t.Fatalf("send failures = %d, want 2", n.SendFailures())
	}
	// The incident is still open and already delivered: no further sends.
	clk.Advance(5 * time.Minute)
	if sent != 1 {
		t.Fatalf("retry fired after success: sent = %d", sent)
	}
}

func TestSendRetriesAreBounded(t *testing.T) {
	clk := clock.New()
	attempts := 0
	mailer := MailerFunc(func(Message) error { attempts++; return errors.New("smtp dead") })
	n := New(clk, mailer, Config{Retry: time.Second})
	n.EventTriggered(rule("overheat"), "n01", 90, nil)
	clk.Advance(time.Hour)
	if attempts != maxSendAttempts {
		t.Fatalf("attempts = %d, want %d (bounded retry)", attempts, maxSendAttempts)
	}
	if n.SendFailures() != maxSendAttempts {
		t.Fatalf("send failures = %d", n.SendFailures())
	}
}

func TestNoRetryAfterIncidentClears(t *testing.T) {
	clk := clock.New()
	attempts := 0
	mailer := MailerFunc(func(Message) error { attempts++; return errors.New("smtp down") })
	n := New(clk, mailer, Config{Retry: time.Second})
	r := rule("overheat")
	n.EventTriggered(r, "n01", 90, nil)
	// The node heals before the retry fires: the incident closes, and the
	// pending retry must not mail about a problem that no longer exists.
	n.EventCleared(r, "n01")
	clk.Advance(time.Hour)
	if attempts != 1 {
		t.Fatalf("attempts = %d, want 1 (no retry for a cleared incident)", attempts)
	}
}

func TestDefaults(t *testing.T) {
	clk := clock.New()
	n, rec := newNotifier(clk, Config{})
	n.EventTriggered(rule("r"), "n01", 1, nil)
	m := rec.Messages()[0]
	if m.To != "root@localhost" || !strings.Contains(m.Subject, "[cluster]") {
		t.Fatalf("defaults not applied: %+v", m)
	}
}

// Integration: engine + notifier together give end-to-end §5.2 semantics.
func TestEngineIntegration(t *testing.T) {
	clk := clock.New()
	n, rec := newNotifier(clk, Config{Cluster: "prod"})
	eng := events.New(nil, n, clk.Now)
	eng.AddRule(events.Rule{
		Name: "overtemp", Metric: "hw.temp.cpu", Op: events.GT, Threshold: 85, Notify: true,
	})
	hot := map[string]float64{"hw.temp.cpu": 92}
	cool := map[string]float64{"hw.temp.cpu": 40}
	for i := 0; i < 10; i++ {
		eng.ObserveMap("n1", hot)
		eng.ObserveMap("n2", hot)
	}
	if rec.Count() != 1 {
		t.Fatalf("mails = %d", rec.Count())
	}
	eng.ObserveMap("n1", cool)
	eng.ObserveMap("n2", cool)
	eng.ObserveMap("n1", hot) // re-fire
	if rec.Count() != 2 {
		t.Fatalf("mails after refire = %d", rec.Count())
	}
}
