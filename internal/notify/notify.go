// Package notify implements ClusterWorX's smart notification (paper §5.2):
// "ClusterWorX notifies administrators of problems without swamping them
// with unnecessary e-mails. The e-mail informs the administrator which
// cluster is malfunctioning, the name of the triggered event, the node(s)
// which are experiencing the problem, and the action (if any) that was
// taken. Only one e-mail is sent per triggered event, even if multiple
// nodes are involved. If a node is fixed by an administrator but fails
// again later, the event re-fires automatically."
//
// Delivery is pluggable (Mailer); a recording mailer serves tests and
// simulation, and a wireless formatter produces the short pager/cell
// rendition the paper mentions.
package notify

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"clusterworx/internal/clock"
	"clusterworx/internal/events"
	"clusterworx/internal/flight"
	"clusterworx/internal/telemetry"
)

// Self-monitoring series for smart notification. Dedup hits are the
// paper's headline semantic — "only one e-mail is sent per triggered
// event, even if multiple nodes are involved" — so the suppression rate
// is itself a first-class monitored value.
// fltj is the process-wide flight journal (delivery is cold path).
var fltj = flight.Default()

var (
	mIncidents = telemetry.Default().Counter("cwx_notify_incidents_total")
	mDedupHits = telemetry.Default().Counter("cwx_notify_dedup_hits_total")
	mMessages  = telemetry.Default().Counter("cwx_notify_messages_total")
	mSendErrs  = telemetry.Default().Counter("cwx_notify_send_failures_total")
)

// Message is one outbound notification.
type Message struct {
	To      string
	Subject string
	Body    string
}

// Mailer delivers messages.
type Mailer interface {
	Send(Message) error
}

// MailerFunc adapts a function to Mailer.
type MailerFunc func(Message) error

// Send implements Mailer.
func (f MailerFunc) Send(m Message) error { return f(m) }

// Recording is a Mailer that captures messages for inspection.
type Recording struct {
	mu   sync.Mutex //cwx:lockrank mailrec 65
	msgs []Message
}

// Send implements Mailer.
func (r *Recording) Send(m Message) error {
	r.mu.Lock()
	r.msgs = append(r.msgs, m)
	r.mu.Unlock()
	return nil
}

// Messages returns a copy of everything sent.
func (r *Recording) Messages() []Message {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]Message(nil), r.msgs...)
}

// Count returns the number of messages sent.
func (r *Recording) Count() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.msgs)
}

// Config tunes a Notifier.
type Config struct {
	Cluster string // cluster name shown in messages
	Admin   string // destination address
	// Batch is how long the first trigger of an incident waits before the
	// e-mail goes out, so nodes failing together are reported together.
	// Zero sends immediately (and later nodes join the incident silently).
	Batch time.Duration
	// Wireless selects the short pager/cell-phone rendition.
	Wireless bool
	// Retry is the base delay before a failed incident e-mail is retried
	// (default 30 s). Each further attempt doubles the delay; after
	// maxSendAttempts total attempts the incident e-mail is given up on,
	// so a dead mailer cannot accumulate timers forever.
	Retry time.Duration
}

// maxSendAttempts bounds delivery attempts per incident: the paper's
// "one e-mail per event" guarantee must survive a transient SMTP
// failure, but a permanently dead mailer must not retry unboundedly.
const maxSendAttempts = 3

// Notifier implements events.Notifier with the paper's one-mail-per-event
// semantics. An incident opens at the first trigger of a rule and closes
// when every involved node has cleared; exactly one message is sent per
// incident.
type Notifier struct {
	mu     sync.Mutex //cwx:lockrank notify 60
	cfg    Config
	clk    *clock.Clock
	mailer Mailer

	incidents map[string]*incident // by rule name
	sendErrs  int
}

type incident struct {
	rule     events.Rule
	nodes    map[string]bool // node -> still failing
	actErrs  map[string]error
	values   map[string]float64
	sent     bool
	attempts int // delivery attempts so far (bounded by maxSendAttempts)
	timer    *clock.Timer
}

// New returns a Notifier delivering through mailer on clk's time base.
func New(clk *clock.Clock, mailer Mailer, cfg Config) *Notifier {
	if cfg.Cluster == "" {
		cfg.Cluster = "cluster"
	}
	if cfg.Admin == "" {
		cfg.Admin = "root@localhost"
	}
	if cfg.Retry <= 0 {
		cfg.Retry = 30 * time.Second
	}
	return &Notifier{
		cfg:       cfg,
		clk:       clk,
		mailer:    mailer,
		incidents: make(map[string]*incident),
	}
}

var _ events.Notifier = (*Notifier)(nil)

// EventTriggered implements events.Notifier.
func (n *Notifier) EventTriggered(rule events.Rule, node string, value float64, actionErr error) {
	// The notify hop is the tail of the node's pipeline span. Cold path:
	// the tracer's locked slot lookup is fine here.
	start := time.Now() //cwx:allow clockdet -- notify-hop telemetry measures real delivery cost; incidents are stamped with n.clk
	defer func() {
		d := time.Since(start) //cwx:allow clockdet -- closes the wall-clock notify span
		// Tail hop of the causal trace: the ingest hop for the triggering
		// frame was recorded on this same goroutine, so its trace id (zero
		// when the frame was unsampled) links the whole gather→notify tree.
		trace := telemetry.Spans.StageTrace(node, telemetry.StageIngest)
		telemetry.Spans.RecordTraced(node, telemetry.StageNotify, d, 1, trace)
		if trace != 0 {
			fltj.Append(int(flight.Salt(node)), flight.Entry{
				Kind:   flight.KindStage,
				Stage:  uint8(telemetry.StageNotify),
				Node:   fltj.Sym(node),
				Trace:  trace,
				TimeNs: int64(n.clk.Now()),
				A:      int64(d),
				B:      1,
			})
		}
	}()
	n.mu.Lock()
	inc, active := n.incidents[rule.Name]
	if active {
		mDedupHits.Inc()
	} else {
		mIncidents.Inc()
		inc = &incident{
			rule:    rule,
			nodes:   make(map[string]bool),
			actErrs: make(map[string]error),
			values:  make(map[string]float64),
		}
		n.incidents[rule.Name] = inc
	}
	inc.nodes[node] = true
	inc.values[node] = value
	if actionErr != nil {
		inc.actErrs[node] = actionErr
	}
	if active {
		// One e-mail per triggered event: later nodes join silently.
		n.mu.Unlock()
		return
	}
	if n.cfg.Batch > 0 {
		inc.timer = n.clk.AfterFunc(n.cfg.Batch, func() { n.flush(rule.Name) })
		n.mu.Unlock()
		return
	}
	n.mu.Unlock()
	n.flush(rule.Name)
}

// EventCleared implements events.Notifier: when the last failing node of
// an incident clears, the incident closes, so the next trigger opens a
// fresh one (automatic re-fire).
func (n *Notifier) EventCleared(rule events.Rule, node string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	inc, ok := n.incidents[rule.Name]
	if !ok {
		return
	}
	delete(inc.nodes, node)
	if len(inc.nodes) == 0 {
		if inc.timer != nil {
			inc.timer.Stop()
			// Incident resolved before the batch window expired: the
			// problem healed itself; say nothing.
		}
		delete(n.incidents, rule.Name)
	}
}

// flush sends the single incident e-mail. sent is marked before the
// mailer runs (so a concurrent flush cannot double-send) and cleared on
// failure, with a bounded doubling retry rescheduled on the clock — a
// transient SMTP failure must not lose the one e-mail the paper
// guarantees per event.
func (n *Notifier) flush(ruleName string) {
	n.mu.Lock()
	inc, ok := n.incidents[ruleName]
	if !ok || inc.sent {
		n.mu.Unlock()
		return
	}
	inc.sent = true
	inc.attempts++
	msg := n.render(inc)
	n.mu.Unlock()
	if err := n.mailer.Send(msg); err != nil {
		mSendErrs.Inc()
		n.mu.Lock()
		n.sendErrs++
		// Only retry while this incident is still the open one — it may
		// have cleared (or reopened as a fresh incident) during the send.
		if cur, ok := n.incidents[ruleName]; ok && cur == inc {
			inc.sent = false
			if inc.attempts < maxSendAttempts {
				delay := n.cfg.Retry << (inc.attempts - 1)
				inc.timer = n.clk.AfterFunc(delay, func() { n.flush(ruleName) })
				fltj.Append(0, flight.Entry{
					Kind:   flight.KindNotifyRetry,
					Detail: fltj.Sym(ruleName),
					TimeNs: int64(n.clk.Now()),
					A:      int64(inc.attempts),
				})
			}
		}
		n.mu.Unlock()
		return
	}
	mMessages.Inc()
}

// SendFailures returns the count of mailer errors.
func (n *Notifier) SendFailures() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.sendErrs
}

// ActiveIncidents returns rule names with open incidents, sorted.
func (n *Notifier) ActiveIncidents() []string {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make([]string, 0, len(n.incidents))
	for name := range n.incidents {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// render formats the incident per the paper: cluster, event name, node(s),
// action taken.
func (n *Notifier) render(inc *incident) Message {
	nodes := make([]string, 0, len(inc.nodes))
	for node := range inc.nodes {
		nodes = append(nodes, node)
	}
	sort.Strings(nodes)

	if n.cfg.Wireless {
		// Pagers and cell phones get one dense line.
		return Message{
			To: n.cfg.Admin,
			Subject: fmt.Sprintf("[%s] %s on %d node(s)",
				n.cfg.Cluster, inc.rule.Name, len(nodes)),
			Body: fmt.Sprintf("%s %s nodes=%s action=%s",
				n.cfg.Cluster, inc.rule.Name, strings.Join(nodes, ","), inc.rule.Action),
		}
	}

	var b strings.Builder
	fmt.Fprintf(&b, "Cluster:  %s\n", n.cfg.Cluster)
	fmt.Fprintf(&b, "Event:    %s (%s %s %g)\n", inc.rule.Name, inc.rule.Metric, inc.rule.Op, inc.rule.Threshold)
	fmt.Fprintf(&b, "Node(s):\n")
	for _, node := range nodes {
		fmt.Fprintf(&b, "  %-16s value=%g", node, inc.values[node])
		if err := inc.actErrs[node]; err != nil {
			fmt.Fprintf(&b, "  ACTION FAILED: %v", err)
		}
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "Action:   %s\n", inc.rule.Action)
	return Message{
		To:      n.cfg.Admin,
		Subject: fmt.Sprintf("[%s] event %q triggered on %d node(s)", n.cfg.Cluster, inc.rule.Name, len(nodes)),
		Body:    b.String(),
	}
}
