// Package consolidate implements the consolidation stage of the monitoring
// pipeline (paper §5.3.2): bringing data from multiple sources at
// independent gathering rates together on the node, determining which
// values have changed, filtering, and caching so that simultaneous
// requests are served from the same data set.
//
// The stage runs exclusively on the monitored node "because the node is
// the gatherer and provider of the monitored data"; only its output (the
// change set) crosses the network, which is the paper's answer to the
// network-bandwidth half of the monitoring-overhead problem.
package consolidate

import (
	"sort"
	"strconv"
	"sync"
	"time"

	"clusterworx/internal/telemetry"
)

// Self-monitoring series for the consolidation stage (shared across all
// consolidators in the process; an agent fleet in one simulation rolls up
// into one pipeline view, exactly like a fleet of identical nodes).
var (
	mTicks      = telemetry.Default().Counter("cwx_consolidate_ticks_total")
	mCollected  = telemetry.Default().Counter("cwx_consolidate_values_collected_total")
	mChanged    = telemetry.Default().Counter("cwx_consolidate_values_changed_total")
	mSuppressed = telemetry.Default().Counter("cwx_consolidate_values_suppressed_total")
	mSourceErrs = telemetry.Default().Counter("cwx_consolidate_source_failures_total")
	mGatherNs   = telemetry.Default().Histogram("cwx_gather_collect_ns")
	mTickNs     = telemetry.Default().Histogram("cwx_consolidate_tick_ns")
	mDeltaSize  = telemetry.Default().Histogram("cwx_consolidate_delta_values")
)

// Kind classifies a monitored value as static or dynamic (§5.3.2). Static
// values (CPU type, total memory, kernel version) are expected to change
// rarely or never and are transmitted only on change — effectively once.
type Kind uint8

// Value kinds.
const (
	Static Kind = iota
	Dynamic
)

// String returns "static" or "dynamic".
func (k Kind) String() string {
	if k == Static {
		return "static"
	}
	return "dynamic"
}

// Value is one monitored datum. Either Num or Text carries the value,
// selected by IsText; names are dotted paths like "cpu.load1".
type Value struct {
	Name   string
	Kind   Kind
	Num    float64
	Text   string
	IsText bool
}

// NumValue constructs a numeric Value.
func NumValue(name string, kind Kind, v float64) Value {
	return Value{Name: name, Kind: kind, Num: v}
}

// TextValue constructs a string Value.
func TextValue(name string, kind Kind, s string) Value {
	return Value{Name: name, Kind: kind, Text: s, IsText: true}
}

// Equal reports whether two values carry the same payload (name and kind
// are assumed to match).
func (v Value) Equal(o Value) bool {
	if v.IsText != o.IsText {
		return false
	}
	if v.IsText {
		return v.Text == o.Text
	}
	return v.Num == o.Num
}

// Render returns the value payload as text, the form both the GUI and the
// wire format use.
func (v Value) Render() string {
	if v.IsText {
		return v.Text
	}
	return strconv.FormatFloat(v.Num, 'g', -1, 64)
}

// Source produces a batch of values when collected. A source is typically
// one gatherer (meminfo, stat, ...) wrapped by the monitor registry.
type Source interface {
	// Name identifies the source in error reports.
	Name() string
	// Collect appends current values to dst and returns it.
	Collect(dst []Value) ([]Value, error)
}

// FuncSource adapts a function to the Source interface.
type FuncSource struct {
	SourceName string
	Fn         func(dst []Value) ([]Value, error)
}

// Name implements Source.
func (s FuncSource) Name() string { return s.SourceName }

// Collect implements Source.
func (s FuncSource) Collect(dst []Value) ([]Value, error) { return s.Fn(dst) }

// Stats counts consolidation activity for the E5 experiment.
type Stats struct {
	Ticks          int64 // consolidation rounds
	Collected      int64 // values gathered in total
	Changed        int64 // values whose payload differed from last time
	Suppressed     int64 // values filtered out as unchanged
	CacheHits      int64 // snapshots served from cache
	CacheBuilds    int64 // snapshots built fresh
	SourceFailures int64 // collect errors
}

// Consolidator merges sources at independent rates and tracks change
// state. Methods are safe for concurrent use: one goroutine ticks, any
// number snapshot.
type Consolidator struct {
	mu      sync.Mutex //cwx:lockrank consolidator 6
	sources []*sourceState
	current map[string]Value
	order   []string
	ordered bool
	dirty   map[string]struct{}
	tick    int64

	cacheSnap  []Value
	cacheTick  int64
	cacheValid bool

	stats   Stats
	onError func(source string, err error)

	scratch    []Value  // Collect scratch
	deltaNames []string // Delta scratch: sorted dirty names
	deltaBuf   []Value  // Delta scratch: returned slice, reused per call

	// Most recent Tick's wall-clock split, recorded only while telemetry
	// is enabled; the agent copies it into the node's pipeline span.
	lastGather    time.Duration
	lastCons      time.Duration
	lastCollected int
}

type sourceState struct {
	src   Source
	every int64 // collect on ticks where tick % every == phase
	phase int64
}

// New returns an empty Consolidator.
func New() *Consolidator {
	return &Consolidator{
		current: make(map[string]Value),
		dirty:   make(map[string]struct{}),
	}
}

// OnError installs a hook invoked when a source fails to collect. Failures
// are otherwise counted and skipped: one broken monitor must not take down
// node monitoring.
func (c *Consolidator) OnError(fn func(source string, err error)) {
	c.mu.Lock()
	c.onError = fn
	c.mu.Unlock()
}

// AddSource registers src to be collected every 'every' ticks (minimum 1).
// Independent rates are the paper's way of sampling cheap files often and
// expensive ones rarely.
func (c *Consolidator) AddSource(src Source, every int) {
	if every < 1 {
		every = 1
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.sources = append(c.sources, &sourceState{
		src:   src,
		every: int64(every),
		phase: int64(len(c.sources)) % int64(every), // stagger starts
	})
}

// Tick runs one consolidation round: collects every due source, updates
// the current set, and marks changed values dirty. It invalidates the
// snapshot cache only if something changed.
func (c *Consolidator) Tick() {
	// Stage timing uses the wall clock, not the simulation clock: the
	// point is the real CPU cost of gathering and consolidating, which a
	// virtual clock would report as zero.
	on := telemetry.On()
	var t0 time.Time
	if on {
		t0 = time.Now()
	}
	var gatherNs int64
	var collected, changed, suppressed, failures int64
	c.mu.Lock()
	defer c.mu.Unlock()
	c.stats.Ticks++
	changedAny := false
	for _, st := range c.sources {
		if c.tick%st.every != st.phase {
			continue
		}
		var err error
		if on {
			g0 := time.Now()
			c.scratch, err = st.src.Collect(c.scratch[:0])
			gatherNs += int64(time.Since(g0))
		} else {
			c.scratch, err = st.src.Collect(c.scratch[:0])
		}
		if err != nil {
			c.stats.SourceFailures++
			failures++
			if c.onError != nil {
				fn, name := c.onError, st.src.Name()
				c.mu.Unlock()
				fn(name, err)
				c.mu.Lock()
			}
			continue
		}
		collected += int64(len(c.scratch))
		for _, v := range c.scratch {
			c.stats.Collected++
			old, seen := c.current[v.Name]
			if seen && old.Equal(v) {
				c.stats.Suppressed++
				suppressed++
				continue
			}
			if !seen {
				c.order = append(c.order, v.Name)
				c.ordered = false
			}
			c.current[v.Name] = v
			c.dirty[v.Name] = struct{}{}
			c.stats.Changed++
			changed++
			changedAny = true
		}
	}
	c.tick++
	if changedAny {
		c.cacheValid = false
	}
	if on {
		total := int64(time.Since(t0))
		c.lastGather = time.Duration(gatherNs)
		c.lastCons = time.Duration(total - gatherNs)
		c.lastCollected = int(collected)
		mTicks.Inc()
		mCollected.Add(collected)
		mChanged.Add(changed)
		mSuppressed.Add(suppressed)
		if failures > 0 {
			mSourceErrs.Add(failures)
		}
		mGatherNs.Observe(gatherNs)
		mTickNs.Observe(total)
	}
}

// TickTelemetry returns the wall-clock split of the most recent Tick —
// time spent inside source Collect calls (gathering) vs the remainder
// (change detection and bookkeeping) — and the number of values
// collected. Recorded only while telemetry is enabled.
func (c *Consolidator) TickTelemetry() (gather, consolidate time.Duration, collected int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lastGather, c.lastCons, c.lastCollected
}

// Snapshot returns the full current value set in stable name order.
// Snapshots between ticks are served from a shared cache — the paper's
// request cache "so that simultaneous requests can be served using the
// same set of data". Callers must not modify the returned slice.
func (c *Consolidator) Snapshot() []Value {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.cacheValid {
		c.stats.CacheHits++
		return c.cacheSnap
	}
	c.stats.CacheBuilds++
	c.sortOrderLocked()
	// Rebuilds allocate fresh rather than reusing the previous cache's
	// backing array: earlier callers may still be reading the old snapshot
	// (that sharing is the whole point of the cache), so overwriting it in
	// place would be a data race. The cache already makes rebuilds rare —
	// one per tick that actually changed data.
	snap := make([]Value, 0, len(c.order))
	for _, name := range c.order {
		snap = append(snap, c.current[name])
	}
	c.cacheSnap = snap
	c.cacheTick = c.tick
	c.cacheValid = true
	return snap
}

// Delta returns the values that changed since the previous Delta call, in
// stable name order, and clears the change set. This is what the
// transmission stage ships: "only data that has changed since the last
// transmission".
//
// The returned slice reuses an internal scratch buffer and is only valid
// until the next Delta call; the transmission stage marshals it
// immediately, which keeps the once-per-period hot path allocation-free.
// Callers that retain a delta must copy it.
//
//cwx:hotpath
func (c *Consolidator) Delta() []Value {
	c.mu.Lock()
	defer c.mu.Unlock()
	mDeltaSize.Observe(int64(len(c.dirty)))
	if len(c.dirty) == 0 {
		return nil
	}
	names := c.deltaNames[:0]
	for name := range c.dirty {
		names = append(names, name)
	}
	sort.Strings(names)
	out := c.deltaBuf[:0]
	for _, name := range names {
		out = append(out, c.current[name])
	}
	c.deltaNames = names
	c.deltaBuf = out
	clear(c.dirty)
	return out
}

// PendingChanges returns the number of values awaiting transmission.
func (c *Consolidator) PendingChanges() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.dirty)
}

// Get returns the current value by name.
func (c *Consolidator) Get(name string) (Value, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	v, ok := c.current[name]
	return v, ok
}

// Stats returns a copy of the activity counters.
func (c *Consolidator) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

func (c *Consolidator) sortOrderLocked() {
	if !c.ordered {
		sort.Strings(c.order)
		c.ordered = true
	}
}
