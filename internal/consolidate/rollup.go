package consolidate

import (
	"sort"
	"strings"
)

// Subtree rollups (hierarchical federation). Each tier summarizes the
// raw metrics of its subtree into four derived series per metric —
// count, min, max, sum — published under an aggregate node name
// ("rack/leaf00", "row/mid00", "grid/root"). The four are closed under
// composition: a parent combines its children's rollups without seeing
// any raw value (counts and sums add; mins and maxes fold), so a
// root's "cpu.load.max" over 100k nodes is exact while only aggregate
// values ever crossed the upper hops. Mean is left to the reader
// (.sum/.cnt) — it does not compose, the closed four do.

// Rollup metric-name suffixes.
const (
	RollupCount = ".cnt"
	RollupMin   = ".min"
	RollupMax   = ".max"
	RollupSum   = ".sum"
)

// rollupSuffixLen is the length all four suffixes share.
const rollupSuffixLen = 4

// SplitRollup splits a rollup metric name into its base metric and
// suffix. ok is false for names that are not rollup-formed.
func SplitRollup(name string) (base, suffix string, ok bool) {
	if len(name) <= rollupSuffixLen {
		return name, "", false
	}
	suffix = name[len(name)-rollupSuffixLen:]
	switch suffix {
	case RollupCount, RollupMin, RollupMax, RollupSum:
		return name[:len(name)-rollupSuffixLen], suffix, true
	}
	return name, "", false
}

// rollupEnt is one base metric's fold state. The ordering folds carry
// first-observation flags because suffixed child values arrive in any
// order within a tick, so cnt cannot double as the emptiness test.
type rollupEnt struct {
	cnt, min, max, sum float64
	minSeen, maxSeen   bool
}

// RollupAcc folds observations into per-metric count/min/max/sum. One
// accumulator per aggregate node, reused across ticks: Reset, observe
// the children, AppendValues.
type RollupAcc struct {
	m     map[string]*rollupEnt
	order []string // insertion-ordered keys, sorted at emit
}

// NewRollupAcc returns an empty accumulator.
func NewRollupAcc() *RollupAcc {
	return &RollupAcc{m: make(map[string]*rollupEnt)}
}

// Reset clears the fold state, keeping the entries for reuse.
func (a *RollupAcc) Reset() {
	for _, k := range a.order {
		*a.m[k] = rollupEnt{}
	}
}

// ent returns the fold entry for base, creating it zeroed on first
// sight. A zero cnt means untouched this tick.
func (a *RollupAcc) ent(base string) *rollupEnt {
	e := a.m[base]
	if e == nil {
		e = &rollupEnt{}
		a.m[base] = e
		a.order = append(a.order, base)
	}
	return e
}

// Observe folds one raw child value (the leaf tier, whose children
// report plain metrics).
func (a *RollupAcc) Observe(metric string, v float64) {
	e := a.ent(metric)
	if !e.minSeen || v < e.min {
		e.min, e.minSeen = v, true
	}
	if !e.maxSeen || v > e.max {
		e.max, e.maxSeen = v, true
	}
	e.cnt++
	e.sum += v
}

// ObserveRolled folds one already-rolled child value (upper tiers, whose
// children are themselves aggregates). Non-rollup-formed names are
// ignored and reported false.
func (a *RollupAcc) ObserveRolled(metric string, v float64) bool {
	base, suffix, ok := SplitRollup(metric)
	if !ok {
		return false
	}
	e := a.ent(base)
	switch suffix {
	case RollupCount:
		e.cnt += v
	case RollupMin:
		if !e.minSeen || v < e.min {
			e.min, e.minSeen = v, true
		}
	case RollupMax:
		if !e.maxSeen || v > e.max {
			e.max, e.maxSeen = v, true
		}
	case RollupSum:
		e.sum += v
	}
	return true
}

// AppendValues emits the fold as dynamic numeric values, sorted by
// metric name, four per touched base metric. Entries untouched this
// tick (cnt 0 with zero fold) are skipped.
func (a *RollupAcc) AppendValues(dst []Value) []Value {
	sort.Strings(a.order)
	for _, base := range a.order {
		e := a.m[base]
		if e.cnt == 0 {
			continue
		}
		dst = append(dst,
			NumValue(base+RollupCount, Dynamic, e.cnt),
			NumValue(base+RollupMin, Dynamic, e.min),
			NumValue(base+RollupMax, Dynamic, e.max),
			NumValue(base+RollupSum, Dynamic, e.sum),
		)
	}
	return dst
}

// IsRollupMetric reports whether name carries a rollup suffix.
func IsRollupMetric(name string) bool {
	_, _, ok := SplitRollup(name)
	return ok
}

// HasRollupPrefix reports whether a node name belongs to the aggregate
// namespace (contains a '/'; raw nodes never do — transmit's name
// validation predates federation and aggregate names deliberately use
// a character cluster node names never carried).
func HasRollupPrefix(node string) bool {
	return strings.IndexByte(node, '/') >= 0
}
