package consolidate

import (
	"errors"
	"fmt"
	"testing"
	"testing/quick"
)

// counterSource emits a static value and a dynamic counter that changes
// every 'changeEvery' collections.
type counterSource struct {
	name        string
	calls       int
	changeEvery int
	fail        error
}

func (s *counterSource) Name() string { return s.name }

func (s *counterSource) Collect(dst []Value) ([]Value, error) {
	if s.fail != nil {
		return dst, s.fail
	}
	s.calls++
	dyn := s.calls
	if s.changeEvery > 1 {
		dyn = s.calls / s.changeEvery
	}
	dst = append(dst,
		TextValue(s.name+".type", Static, "Pentium III"),
		NumValue(s.name+".count", Dynamic, float64(dyn)),
	)
	return dst, nil
}

func TestKindString(t *testing.T) {
	if Static.String() != "static" || Dynamic.String() != "dynamic" {
		t.Fatal("Kind.String wrong")
	}
}

func TestValueEqualAndRender(t *testing.T) {
	a := NumValue("x", Dynamic, 1.5)
	b := NumValue("x", Dynamic, 1.5)
	c := NumValue("x", Dynamic, 2)
	d := TextValue("x", Dynamic, "1.5")
	if !a.Equal(b) || a.Equal(c) || a.Equal(d) {
		t.Fatal("numeric equality wrong")
	}
	if !d.Equal(TextValue("x", Static, "1.5")) {
		t.Fatal("text equality must ignore kind")
	}
	if a.Render() != "1.5" || d.Render() != "1.5" {
		t.Fatalf("Render = %q / %q", a.Render(), d.Render())
	}
}

func TestFirstTickMarksEverythingDirty(t *testing.T) {
	c := New()
	c.AddSource(&counterSource{name: "s"}, 1)
	c.Tick()
	delta := c.Delta()
	if len(delta) != 2 {
		t.Fatalf("first delta has %d values, want 2", len(delta))
	}
}

func TestStaticSentOnlyOnce(t *testing.T) {
	c := New()
	c.AddSource(&counterSource{name: "s"}, 1)
	for i := 0; i < 10; i++ {
		c.Tick()
		delta := c.Delta()
		for _, v := range delta {
			if v.Name == "s.type" && i > 0 {
				t.Fatalf("static value re-sent on tick %d", i)
			}
		}
	}
	st := c.Stats()
	// 10 ticks × 2 values collected; static suppressed 9 times.
	if st.Collected != 20 {
		t.Errorf("Collected = %d, want 20", st.Collected)
	}
	if st.Suppressed != 9 {
		t.Errorf("Suppressed = %d, want 9", st.Suppressed)
	}
}

func TestUnchangedDynamicSuppressed(t *testing.T) {
	c := New()
	src := &counterSource{name: "s", changeEvery: 5}
	c.AddSource(src, 1)
	sent := 0
	for i := 0; i < 50; i++ {
		c.Tick()
		for _, v := range c.Delta() {
			if v.Name == "s.count" {
				sent++
			}
		}
	}
	// counter value changes every 5 collections → ~10 transmissions.
	if sent < 9 || sent > 11 {
		t.Fatalf("dynamic value sent %d times over 50 ticks, want ~10", sent)
	}
}

func TestIndependentRates(t *testing.T) {
	c := New()
	fast := &counterSource{name: "fast"}
	slow := &counterSource{name: "slow"}
	c.AddSource(fast, 1)
	c.AddSource(slow, 10)
	for i := 0; i < 100; i++ {
		c.Tick()
	}
	if fast.calls != 100 {
		t.Errorf("fast collected %d times, want 100", fast.calls)
	}
	if slow.calls != 10 {
		t.Errorf("slow collected %d times, want 10", slow.calls)
	}
}

func TestSnapshotCache(t *testing.T) {
	c := New()
	c.AddSource(&counterSource{name: "s"}, 1)
	c.Tick()
	a := c.Snapshot()
	b := c.Snapshot()
	if &a[0] != &b[0] {
		t.Fatal("snapshots between ticks did not share the cache")
	}
	st := c.Stats()
	if st.CacheBuilds != 1 || st.CacheHits != 1 {
		t.Fatalf("cache stats = %+v", st)
	}
	c.Tick() // counter changed → cache invalid
	d := c.Snapshot()
	if len(d) != 2 {
		t.Fatalf("snapshot has %d values", len(d))
	}
	if d[0].Name != "s.count" || d[0].Num == a[0].Num {
		t.Fatalf("snapshot after tick shows stale value: %+v vs %+v", d[0], a[0])
	}
}

func TestSnapshotCacheSurvivesNoChangeTick(t *testing.T) {
	c := New()
	c.AddSource(&counterSource{name: "s", changeEvery: 1000}, 1)
	c.Tick()
	a := c.Snapshot()
	c.Tick() // nothing changed
	b := c.Snapshot()
	if &a[0] != &b[0] {
		t.Fatal("cache invalidated although no value changed")
	}
}

func TestSnapshotOrderStable(t *testing.T) {
	c := New()
	c.AddSource(&counterSource{name: "zz"}, 1)
	c.AddSource(&counterSource{name: "aa"}, 1)
	c.Tick()
	snap := c.Snapshot()
	want := []string{"aa.count", "aa.type", "zz.count", "zz.type"}
	for i, v := range snap {
		if v.Name != want[i] {
			t.Fatalf("snapshot order %v", snap)
		}
	}
}

func TestSourceFailureIsolated(t *testing.T) {
	c := New()
	bad := &counterSource{name: "bad", fail: errors.New("boom")}
	good := &counterSource{name: "good"}
	c.AddSource(bad, 1)
	c.AddSource(good, 1)
	var failedSource string
	c.OnError(func(src string, err error) { failedSource = src })
	c.Tick()
	if failedSource != "bad" {
		t.Fatalf("error hook got %q", failedSource)
	}
	if _, ok := c.Get("good.count"); !ok {
		t.Fatal("good source not collected after bad source failed")
	}
	if c.Stats().SourceFailures != 1 {
		t.Fatalf("SourceFailures = %d", c.Stats().SourceFailures)
	}
}

func TestGet(t *testing.T) {
	c := New()
	c.AddSource(&counterSource{name: "s"}, 1)
	if _, ok := c.Get("s.count"); ok {
		t.Fatal("Get before any tick succeeded")
	}
	c.Tick()
	v, ok := c.Get("s.count")
	if !ok || v.Num != 1 {
		t.Fatalf("Get = %+v,%v", v, ok)
	}
}

func TestDeltaEmptyWhenClean(t *testing.T) {
	c := New()
	c.AddSource(&counterSource{name: "s", changeEvery: 100}, 1)
	c.Tick()
	c.Delta()
	c.Tick() // no change
	if d := c.Delta(); d != nil {
		t.Fatalf("delta after unchanged tick = %v", d)
	}
	if c.PendingChanges() != 0 {
		t.Fatal("pending changes nonzero when clean")
	}
}

// Property: for any change pattern, union of deltas equals the final
// snapshot state (no change is lost, none invented).
func TestPropertyDeltasCoverSnapshot(t *testing.T) {
	f := func(pattern []byte) bool {
		c := New()
		i := 0
		src := FuncSource{SourceName: "p", Fn: func(dst []Value) ([]Value, error) {
			v := float64(0)
			if i < len(pattern) {
				v = float64(pattern[i] % 8)
			}
			i++
			dst = append(dst, NumValue("p.v", Dynamic, v))
			return dst, nil
		}}
		c.AddSource(src, 1)
		last := make(map[string]Value)
		for range pattern {
			c.Tick()
			for _, v := range c.Delta() {
				last[v.Name] = v
			}
		}
		if len(pattern) == 0 {
			return true
		}
		snap := c.Snapshot()
		for _, v := range snap {
			if got, ok := last[v.Name]; !ok || !got.Equal(v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: suppressed + changed == collected.
func TestPropertyStatsBalance(t *testing.T) {
	f := func(ticks uint8, changeEvery uint8) bool {
		c := New()
		c.AddSource(&counterSource{name: "s", changeEvery: int(changeEvery%7) + 1}, 1)
		for i := 0; i < int(ticks); i++ {
			c.Tick()
		}
		st := c.Stats()
		return st.Collected == st.Changed+st.Suppressed
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestManySources(t *testing.T) {
	c := New()
	for i := 0; i < 50; i++ {
		c.AddSource(&counterSource{name: fmt.Sprintf("s%02d", i)}, 1+i%5)
	}
	for i := 0; i < 20; i++ {
		c.Tick()
	}
	snap := c.Snapshot()
	if len(snap) != 100 {
		t.Fatalf("snapshot has %d values, want 100", len(snap))
	}
}
