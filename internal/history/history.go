// Package history stores monitor values over time for the paper's §5.1
// historical graphing: "the administrator can chart monitoring values over
// time ... view cluster use and performance trends over a selected time
// interval, analyze the relationships between monitored values, or compare
// performance between nodes."
//
// Each (node, metric) pair owns a bounded ring of points; queries provide
// ranges, aggregate statistics, bucketed downsampling for charts, and a
// least-squares trend for capacity prediction.
package history

import (
	"sort"
	"sync"
	"time"

	"clusterworx/internal/telemetry"
)

// Self-monitoring series for the history store. Appends ride the store's
// node-name hash as their counter stripe, so 64 concurrent agents do not
// serialize on one counter cache line.
var (
	mAppends    = telemetry.Default().Counter("cwx_history_appends_total")
	mDropped    = telemetry.Default().Counter("cwx_history_dropped_total")
	mDownsample = telemetry.Default().Counter("cwx_history_downsample_total")
)

// Point is one sample.
type Point struct {
	T time.Duration // virtual or wall offset, monotone per series
	V float64
}

// DefaultCapacity is the per-series ring size.
const DefaultCapacity = 4096

// Series is a bounded time-ordered sample ring, safe for concurrent use:
// every method takes the series lock, so chart queries and the dashboard's
// cross-node Compare never race appends from concurrent agent ingest.
type Series struct {
	mu    sync.Mutex
	buf   []Point
	start int
	size  int
}

// NewSeries returns a ring holding the last capacity points.
func NewSeries(capacity int) *Series {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	return &Series{buf: make([]Point, capacity)}
}

// Append adds a point. Out-of-order appends (clock skew after an agent
// restart) are dropped rather than corrupting the ring's ordering.
//
//cwx:hotpath
func (s *Series) Append(t time.Duration, v float64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.size > 0 && t < s.at(s.size-1).T {
		mDropped.Inc()
		return
	}
	if s.size < len(s.buf) {
		*s.slot(s.size) = Point{T: t, V: v}
		s.size++
		return
	}
	*s.slot(0) = Point{T: t, V: v}
	s.start = (s.start + 1) % len(s.buf)
}

func (s *Series) slot(i int) *Point { return &s.buf[(s.start+i)%len(s.buf)] }

func (s *Series) at(i int) Point { return s.buf[(s.start+i)%len(s.buf)] }

// Len returns the number of stored points.
func (s *Series) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.size
}

// Last returns the most recent point.
func (s *Series) Last() (Point, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.size == 0 {
		return Point{}, false
	}
	return s.at(s.size - 1), true
}

// Range returns the points with t0 <= T <= t1, oldest first.
func (s *Series) Range(t0, t1 time.Duration) []Point {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.rangeLocked(t0, t1)
}

func (s *Series) rangeLocked(t0, t1 time.Duration) []Point {
	lo := sort.Search(s.size, func(i int) bool { return s.at(i).T >= t0 })
	hi := sort.Search(s.size, func(i int) bool { return s.at(i).T > t1 })
	out := make([]Point, 0, hi-lo)
	for i := lo; i < hi; i++ {
		out = append(out, s.at(i))
	}
	return out
}

// Stats aggregates the range [t0, t1].
type Stats struct {
	N         int
	Min, Max  float64
	Mean      float64
	First     Point
	LastPoint Point
}

// Stats computes aggregates over a range.
func (s *Series) Stats(t0, t1 time.Duration) Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	var st Stats
	lo := sort.Search(s.size, func(i int) bool { return s.at(i).T >= t0 })
	for i := lo; i < s.size; i++ {
		p := s.at(i)
		if p.T > t1 {
			break
		}
		if st.N == 0 {
			st.Min, st.Max, st.First = p.V, p.V, p
		}
		if p.V < st.Min {
			st.Min = p.V
		}
		if p.V > st.Max {
			st.Max = p.V
		}
		st.Mean += p.V
		st.LastPoint = p
		st.N++
	}
	if st.N > 0 {
		st.Mean /= float64(st.N)
	}
	return st
}

// Trend returns the least-squares slope over [t0, t1] in value units per
// hour — the "predict future computing needs" primitive. ok is false with
// fewer than two points or zero time spread.
func (s *Series) Trend(t0, t1 time.Duration) (perHour float64, ok bool) {
	pts := s.Range(t0, t1)
	if len(pts) < 2 {
		return 0, false
	}
	var sumX, sumY, sumXY, sumXX float64
	for _, p := range pts {
		x := p.T.Hours()
		sumX += x
		sumY += p.V
		sumXY += x * p.V
		sumXX += x * x
	}
	n := float64(len(pts))
	den := n*sumXX - sumX*sumX
	if den == 0 {
		return 0, false
	}
	return (n*sumXY - sumX*sumY) / den, true
}

// Downsample buckets [t0, t1] into n equal intervals and returns the mean
// of each non-empty bucket, timestamped at the bucket midpoint — the chart
// renderer's input.
func (s *Series) Downsample(t0, t1 time.Duration, n int) []Point {
	if n <= 0 || t1 <= t0 {
		return nil
	}
	width := (t1 - t0) / time.Duration(n)
	if width <= 0 {
		return nil
	}
	mDownsample.Inc()
	s.mu.Lock()
	defer s.mu.Unlock()
	sums := make([]float64, n)
	counts := make([]int, n)
	for _, p := range s.rangeLocked(t0, t1) {
		b := int((p.T - t0) / width)
		if b >= n {
			b = n - 1
		}
		sums[b] += p.V
		counts[b]++
	}
	out := make([]Point, 0, n)
	for b := 0; b < n; b++ {
		if counts[b] == 0 {
			continue
		}
		out = append(out, Point{
			T: t0 + width*time.Duration(b) + width/2,
			V: sums[b] / float64(counts[b]),
		})
	}
	return out
}

// storeStripes is the lock-stripe count for the store's node map. A power
// of two so the name hash folds with a mask; appends from agents reporting
// concurrently land on independent stripes.
const storeStripes = 64

type storeStripe struct {
	mu     sync.RWMutex
	series map[string]map[string]*Series
}

// Store maps (node, metric) to series, lock-striped by node name so
// concurrent appends for different nodes never contend. The store is safe
// for fully concurrent use: the stripe lock guards map membership and the
// per-series lock guards each ring, so reads (Series queries, Compare)
// may freely race appends from agent ingest.
type Store struct {
	capacity int
	stripes  [storeStripes]storeStripe
}

// NewStore returns a store creating series of the given capacity
// (0 = DefaultCapacity).
func NewStore(capacity int) *Store {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	st := &Store{capacity: capacity}
	for i := range st.stripes {
		st.stripes[i].series = make(map[string]map[string]*Series)
	}
	return st
}

// stripe hashes a node name to its stripe with FNV-1a. The index is
// returned alongside so instrumented callers can reuse it as their
// telemetry counter stripe.
func (st *Store) stripe(nodeName string) (*storeStripe, uint32) {
	const (
		offset32 = 2166136261
		prime32  = 16777619
	)
	h := uint32(offset32)
	for i := 0; i < len(nodeName); i++ {
		h ^= uint32(nodeName[i])
		h *= prime32
	}
	idx := h & (storeStripes - 1)
	return &st.stripes[idx], idx
}

// Append records one sample. The steady-state path is a read-locked map
// lookup on the node's stripe plus the per-series append lock; the stripe
// write lock is only taken the first time a (node, metric) pair appears.
func (st *Store) Append(nodeName, metric string, t time.Duration, v float64) {
	sp, idx := st.stripe(nodeName)
	mAppends.IncAt(int(idx))
	sp.mu.RLock()
	s := sp.series[nodeName][metric]
	sp.mu.RUnlock()
	if s == nil {
		sp.mu.Lock()
		byMetric, ok := sp.series[nodeName]
		if !ok {
			byMetric = make(map[string]*Series)
			sp.series[nodeName] = byMetric
		}
		if s, ok = byMetric[metric]; !ok {
			s = NewSeries(st.capacity)
			byMetric[metric] = s
		}
		sp.mu.Unlock()
	}
	s.Append(t, v)
}

// Series returns the series for (node, metric), or nil. The returned
// series is safe to query while appends race it.
func (st *Store) Series(nodeName, metric string) *Series {
	sp, _ := st.stripe(nodeName)
	sp.mu.RLock()
	defer sp.mu.RUnlock()
	return sp.series[nodeName][metric]
}

// Nodes returns the node names with any history, sorted.
func (st *Store) Nodes() []string {
	var out []string
	for i := range st.stripes {
		sp := &st.stripes[i]
		sp.mu.RLock()
		for n := range sp.series {
			out = append(out, n)
		}
		sp.mu.RUnlock()
	}
	sort.Strings(out)
	return out
}

// Metrics returns the metric names recorded for a node, sorted.
func (st *Store) Metrics(nodeName string) []string {
	sp, _ := st.stripe(nodeName)
	sp.mu.RLock()
	byMetric := sp.series[nodeName]
	out := make([]string, 0, len(byMetric))
	for m := range byMetric {
		out = append(out, m)
	}
	sp.mu.RUnlock()
	sort.Strings(out)
	return out
}

// Compare returns each node's Stats for one metric over a range — the
// "compare performance between nodes" view.
func (st *Store) Compare(metric string, t0, t1 time.Duration) map[string]Stats {
	out := make(map[string]Stats)
	for i := range st.stripes {
		sp := &st.stripes[i]
		sp.mu.RLock()
		for nodeName, byMetric := range sp.series {
			if s, ok := byMetric[metric]; ok {
				out[nodeName] = s.Stats(t0, t1)
			}
		}
		sp.mu.RUnlock()
	}
	return out
}
