// Package history stores monitor values over time for the paper's §5.1
// historical graphing: "the administrator can chart monitoring values over
// time ... view cluster use and performance trends over a selected time
// interval, analyze the relationships between monitored values, or compare
// performance between nodes."
//
// Each (node, metric) pair owns a compressed block-based series: a small
// mutable head block takes appends allocation-free, and every time it
// fills it is sealed into an immutable block compressed with
// delta-of-delta timestamps and XOR-coded values (block.go), carrying a
// precomputed summary (count, min, max, sum, first/last, trend moments).
// Aggregate queries — Stats, Compare, Trend — merge summaries in
// O(blocks) and decode only the at-most-two blocks straddling the query
// boundaries; Range and Downsample prune non-overlapping blocks by
// summary and stream-decode the rest without materializing intermediate
// slices. Sealed blocks are immutable, so queries run on a snapshot
// taken under the series lock and do all decoding with no lock held:
// a dashboard scan never stalls agent ingest.
//
// Retention is point-exact: a series holds the last `capacity` points,
// logically trimming the oldest sealed block one point at a time (the
// block's bytes go away when its last point expires), so the engine is
// observationally identical to a plain ring of `capacity` points.
package history

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"clusterworx/internal/telemetry"
)

// Self-monitoring series for the history store. Appends ride the store's
// node-name hash as their counter stripe, so 64 concurrent agents do not
// serialize on one counter cache line. The seal/decode counters make the
// summary fast path observable: a healthy dashboard workload shows
// summary hits growing much faster than block decodes.
var (
	mAppends     = telemetry.Default().Counter("cwx_history_appends_total")
	mDropped     = telemetry.Default().Counter("cwx_history_dropped_total")
	mDownsample  = telemetry.Default().Counter("cwx_history_downsample_total")
	mSealed      = telemetry.Default().Counter("cwx_history_blocks_sealed_total")
	mSummaryHits = telemetry.Default().Counter("cwx_history_summary_hits_total")
	mDecodes     = telemetry.Default().Counter("cwx_history_block_decodes_total")
)

// storeBytes tracks the process-wide history footprint (head blocks plus
// sealed compressed blocks), exposed as the cwx_history_bytes gauge so
// the meta-monitor charts its own retention cost.
var storeBytes atomic.Int64

func init() {
	telemetry.Default().GaugeFunc("cwx_history_bytes", func() float64 {
		return float64(storeBytes.Load())
	})
}

// Point is one sample.
type Point struct {
	T time.Duration // virtual or wall offset, monotone per series
	V float64
}

// DefaultCapacity is the per-series retained point count.
const DefaultCapacity = 4096

// headCapacity is the mutable head block's size: big enough that sealing
// (the only allocating step) amortizes to ~2 allocations per 512
// appends, small enough that the uncompressed head stays a few KiB.
const headCapacity = 512

// Series is a bounded time-ordered sample store, safe for concurrent
// use: appends mutate only the head block under the series lock, and
// queries snapshot the sealed-block chain (immutable) plus a copy of the
// head under that lock, then decode and aggregate with no lock held.
type Series struct {
	// gen counts accepted appends: the serving plane's chart/spark
	// caches tag their renderings with it and short-circuit while it
	// holds (a dropped out-of-order append changes nothing, so it does
	// not bump). Atomic so cache validity checks never take the series
	// lock.
	gen atomic.Uint64

	mu       sync.Mutex //cwx:lockrank series 30
	capacity int

	// Mutable head block: parallel raw arrays, filled left to right.
	// Appending here is the //cwx:hotpath — no allocation, no encoding.
	headT   []int64
	headV   []float64
	headLen int

	// Sealed immutable blocks, oldest first. trim is the count of
	// logically expired points at the front of blocks[0].
	blocks []*block
	trim   int

	total int   // stored points across blocks (minus trim) and head
	lastT int64 // timestamp of the most recently appended point
	bytes int64 // accounted footprint: head arrays + sealed blocks
}

// NewSeries returns a series retaining the last capacity points.
func NewSeries(capacity int) *Series {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	headCap := headCapacity
	if capacity < headCap {
		headCap = capacity
	}
	s := &Series{
		capacity: capacity,
		headT:    make([]int64, headCap),
		headV:    make([]float64, headCap),
		bytes:    int64(headCap) * 16,
	}
	storeBytes.Add(s.bytes)
	return s
}

// Append adds a point. Out-of-order appends (clock skew after an agent
// restart) are dropped rather than corrupting the series' ordering. The
// steady-state path writes two words into the head block; once per
// headCapacity appends the head is sealed into a compressed block.
//
//cwx:hotpath
func (s *Series) Append(t time.Duration, v float64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.total > 0 && int64(t) < s.lastT {
		mDropped.Inc()
		return
	}
	if s.headLen == len(s.headT) {
		s.sealHeadLocked()
	}
	s.headT[s.headLen] = int64(t)
	s.headV[s.headLen] = v
	s.headLen++
	s.lastT = int64(t)
	s.total++
	if s.total > s.capacity {
		s.evictOneLocked()
	}
	s.gen.Add(1)
}

// Gen returns the series' append generation: it moves exactly when the
// stored data does, so a rendering tagged with it is valid until the
// series accepts another point.
//
//cwx:hotpath
func (s *Series) Gen() uint64 { return s.gen.Load() }

// sealHeadLocked compresses the full head into an immutable block and
// resets the head. Caller holds s.mu.
func (s *Series) sealHeadLocked() {
	ts, vs := s.headT[:s.headLen], s.headV[:s.headLen]
	b := &block{data: encodeBlock(ts, vs), sum: summarize(ts, vs)}
	s.blocks = append(s.blocks, b)
	s.headLen = 0
	delta := int64(len(b.data)) + blockOverheadBytes
	s.bytes += delta
	storeBytes.Add(delta)
	mSealed.Inc()
}

// evictOneLocked expires the oldest stored point: the front block's trim
// advances, and when every point in it has expired the block's bytes are
// released. Caller holds s.mu; blocks is never empty here because the
// head alone can hold at most capacity points.
func (s *Series) evictOneLocked() {
	b := s.blocks[0]
	s.trim++
	s.total--
	if s.trim == b.sum.count {
		delta := int64(len(b.data)) + blockOverheadBytes
		s.bytes -= delta
		storeBytes.Add(-delta)
		s.blocks = s.blocks[1:]
		s.trim = 0
	}
}

// Len returns the number of stored points.
func (s *Series) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.total
}

// Bytes returns the series' accounted memory footprint: the head
// block's raw arrays plus every sealed block's compressed bytes and
// bookkeeping.
func (s *Series) Bytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.bytes
}

// Last returns the most recent point.
func (s *Series) Last() (Point, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.headLen > 0 {
		return Point{T: time.Duration(s.headT[s.headLen-1]), V: s.headV[s.headLen-1]}, true
	}
	if len(s.blocks) > 0 {
		sum := &s.blocks[len(s.blocks)-1].sum
		return Point{T: time.Duration(sum.lastT), V: sum.lastV}, true
	}
	return Point{}, false
}

// qsnap is a point-in-time view of a series: the sealed chain (immutable
// contents), the front trim, and a copy of the head. Everything after
// the snapshot — decoding, merging, bucketing — runs without the series
// lock, so queries never stall appends.
type qsnap struct {
	blocks []*block
	trim   int
	head   []Point
}

func (s *Series) snapshot() qsnap {
	s.mu.Lock()
	q := qsnap{blocks: s.blocks, trim: s.trim, head: make([]Point, s.headLen)}
	for i := 0; i < s.headLen; i++ {
		q.head[i] = Point{T: time.Duration(s.headT[i]), V: s.headV[i]}
	}
	s.mu.Unlock()
	return q
}

// blockTrim returns the effective trim for block i (only the oldest
// block can be partially expired).
func (q *qsnap) blockTrim(i int) int {
	if i == 0 {
		return q.trim
	}
	return 0
}

// decodeBlock streams b's points with t0 <= T <= t1 into fn, skipping
// the first trim points. Points within a block are time-ordered, so the
// scan stops at the first point past t1.
func decodeBlock(b *block, trim int, t0, t1 int64, fn func(t int64, v float64)) {
	mDecodes.Inc()
	it := newBlockIter(b.data, b.sum.count)
	for j := 0; j < trim; j++ {
		it.next()
	}
	for {
		t, v, ok := it.next()
		if !ok || t > t1 {
			return
		}
		if t >= t0 {
			fn(t, v)
		}
	}
}

// each streams every stored point with t0 <= T <= t1 into fn in time
// order. Blocks entirely outside the window are pruned by summary alone;
// overlapping blocks are decoded.
func (q *qsnap) each(t0, t1 time.Duration, fn func(t int64, v float64)) {
	lo, hi := int64(t0), int64(t1)
	for i, b := range q.blocks {
		if b.sum.lastT < lo {
			mSummaryHits.Inc()
			continue
		}
		if b.sum.firstT > hi {
			mSummaryHits.Inc()
			break
		}
		decodeBlock(b, q.blockTrim(i), lo, hi, fn)
	}
	for _, p := range q.head {
		if t := int64(p.T); t >= lo && t <= hi {
			fn(t, p.V)
		}
	}
}

// Range returns the points with t0 <= T <= t1, oldest first.
func (s *Series) Range(t0, t1 time.Duration) []Point {
	q := s.snapshot()
	var out []Point
	q.each(t0, t1, func(t int64, v float64) {
		out = append(out, Point{T: time.Duration(t), V: v})
	})
	return out
}

// Stats aggregates the range [t0, t1].
type Stats struct {
	N         int
	Min, Max  float64
	Mean      float64
	First     Point
	LastPoint Point
}

// Stats computes aggregates over a range in O(blocks): sealed blocks
// fully inside the window are merged from their precomputed summaries;
// only the at-most-two blocks straddling the window boundaries (plus a
// partially expired front block) are decoded.
func (s *Series) Stats(t0, t1 time.Duration) Stats {
	q := s.snapshot()
	var st Stats
	var sum float64
	add := func(t int64, v float64) {
		if st.N == 0 {
			st.Min, st.Max, st.First = v, v, Point{T: time.Duration(t), V: v}
		}
		if v < st.Min {
			st.Min = v
		}
		if v > st.Max {
			st.Max = v
		}
		sum += v
		st.LastPoint = Point{T: time.Duration(t), V: v}
		st.N++
	}
	lo, hi := int64(t0), int64(t1)
	for i, b := range q.blocks {
		switch {
		case b.sum.lastT < lo:
			mSummaryHits.Inc()
			continue
		case b.sum.firstT > hi:
			mSummaryHits.Inc()
		case q.blockTrim(i) == 0 && b.sum.firstT >= lo && b.sum.lastT <= hi:
			// Fully covered: merge the summary. Initializing from firstV
			// and folding the NaN-skipping minV/maxV reproduces exactly
			// the per-point scan's result (see summary docs).
			mSummaryHits.Inc()
			if st.N == 0 {
				st.Min, st.Max = b.sum.firstV, b.sum.firstV
				st.First = Point{T: time.Duration(b.sum.firstT), V: b.sum.firstV}
			}
			if b.sum.minV < st.Min {
				st.Min = b.sum.minV
			}
			if b.sum.maxV > st.Max {
				st.Max = b.sum.maxV
			}
			sum += b.sum.sumV
			st.LastPoint = Point{T: time.Duration(b.sum.lastT), V: b.sum.lastV}
			st.N += b.sum.count
			continue
		default:
			decodeBlock(b, q.blockTrim(i), lo, hi, add)
			continue
		}
		break // firstT > t1: later blocks are entirely past the window
	}
	for _, p := range q.head {
		if t := int64(p.T); t >= lo && t <= hi {
			add(t, p.V)
		}
	}
	if st.N > 0 {
		st.Mean = sum / float64(st.N)
	}
	return st
}

// Trend returns the least-squares slope over [t0, t1] in value units per
// hour — the "predict future computing needs" primitive. ok is false with
// fewer than two points or zero time spread. Like Stats, fully covered
// blocks contribute their precomputed moments, so the fit is O(blocks)
// plus the boundary decodes.
func (s *Series) Trend(t0, t1 time.Duration) (perHour float64, ok bool) {
	q := s.snapshot()
	var n int
	var sumX, sumY, sumXY, sumXX float64
	add := func(t int64, v float64) {
		x := time.Duration(t).Hours()
		sumX += x
		sumY += v
		sumXY += x * v
		sumXX += x * x
		n++
	}
	lo, hi := int64(t0), int64(t1)
	for i, b := range q.blocks {
		switch {
		case b.sum.lastT < lo:
			mSummaryHits.Inc()
			continue
		case b.sum.firstT > hi:
			mSummaryHits.Inc()
		case q.blockTrim(i) == 0 && b.sum.firstT >= lo && b.sum.lastT <= hi:
			mSummaryHits.Inc()
			sumX += b.sum.sumX
			sumY += b.sum.sumV
			sumXY += b.sum.sumXY
			sumXX += b.sum.sumXX
			n += b.sum.count
			continue
		default:
			decodeBlock(b, q.blockTrim(i), lo, hi, add)
			continue
		}
		break
	}
	for _, p := range q.head {
		if t := int64(p.T); t >= lo && t <= hi {
			add(t, p.V)
		}
	}
	if n < 2 {
		return 0, false
	}
	nf := float64(n)
	den := nf*sumXX - sumX*sumX
	if den == 0 {
		return 0, false
	}
	return (nf*sumXY - sumX*sumY) / den, true
}

// Downsample buckets [t0, t1] into n equal intervals and returns the mean
// of each non-empty bucket, timestamped at the bucket midpoint — the chart
// renderer's input. Points stream straight from the compressed blocks
// into the bucket accumulators; no intermediate range slice is built.
func (s *Series) Downsample(t0, t1 time.Duration, n int) []Point {
	if n <= 0 || t1 <= t0 {
		return nil
	}
	width := (t1 - t0) / time.Duration(n)
	if width <= 0 {
		return nil
	}
	mDownsample.Inc()
	q := s.snapshot()
	sums := make([]float64, n)
	counts := make([]int, n)
	q.each(t0, t1, func(t int64, v float64) {
		b := int((time.Duration(t) - t0) / width)
		if b >= n {
			b = n - 1
		}
		sums[b] += v
		counts[b]++
	})
	out := make([]Point, 0, n)
	for b := 0; b < n; b++ {
		if counts[b] == 0 {
			continue
		}
		out = append(out, Point{
			T: t0 + width*time.Duration(b) + width/2,
			V: sums[b] / float64(counts[b]),
		})
	}
	return out
}

// storeStripes is the lock-stripe count for the store's node map. A power
// of two so the name hash folds with a mask; appends from agents reporting
// concurrently land on independent stripes.
const storeStripes = 64

type storeStripe struct {
	mu     sync.RWMutex //cwx:lockrank histstore 25
	series map[string]map[string]*Series
}

// Store maps (node, metric) to series, lock-striped by node name so
// concurrent appends for different nodes never contend. The store is safe
// for fully concurrent use: the stripe lock guards map membership and the
// per-series lock guards each head block, so reads (Series queries,
// Compare) may freely race appends from agent ingest.
type Store struct {
	capacity int
	capFn    func(nodeName string) int
	stripes  [storeStripes]storeStripe
}

// NewStore returns a store creating series of the given capacity
// (0 = DefaultCapacity).
func NewStore(capacity int) *Store {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	st := &Store{capacity: capacity}
	for i := range st.stripes {
		st.stripes[i].series = make(map[string]map[string]*Series)
	}
	return st
}

// SetCapacityFunc installs a per-node capacity rule consulted when a
// node's first series is created: fn returns the head-block capacity for
// that node's series, or <= 0 to use the store default. A federated tier
// mirrors per-node series for the whole subtree below it — memory there
// is capacity × nodes × metrics — while its own aggregate series
// ("rack/*", "row/*") are few and deserve full depth; the rule lets one
// store hold both. Call before the first Append; existing series keep
// the capacity they were created with.
func (st *Store) SetCapacityFunc(fn func(nodeName string) int) {
	st.capFn = fn
}

// capacityFor resolves the head capacity for a new node's series.
func (st *Store) capacityFor(nodeName string) int {
	if st.capFn != nil {
		if c := st.capFn(nodeName); c > 0 {
			return c
		}
	}
	return st.capacity
}

// stripe hashes a node name to its stripe with FNV-1a. The index is
// returned alongside so instrumented callers can reuse it as their
// telemetry counter stripe.
func (st *Store) stripe(nodeName string) (*storeStripe, uint32) {
	const (
		offset32 = 2166136261
		prime32  = 16777619
	)
	h := uint32(offset32)
	for i := 0; i < len(nodeName); i++ {
		h ^= uint32(nodeName[i])
		h *= prime32
	}
	idx := h & (storeStripes - 1)
	return &st.stripes[idx], idx
}

// Append records one sample. The steady-state path is a read-locked map
// lookup on the node's stripe plus the per-series append lock; the stripe
// write lock is only taken the first time a (node, metric) pair appears.
func (st *Store) Append(nodeName, metric string, t time.Duration, v float64) {
	sp, idx := st.stripe(nodeName)
	mAppends.IncAt(int(idx))
	sp.mu.RLock()
	s := sp.series[nodeName][metric]
	sp.mu.RUnlock()
	if s == nil {
		sp.mu.Lock()
		byMetric, ok := sp.series[nodeName]
		if !ok {
			byMetric = make(map[string]*Series)
			sp.series[nodeName] = byMetric
		}
		if s, ok = byMetric[metric]; !ok {
			s = NewSeries(st.capacityFor(nodeName))
			byMetric[metric] = s
		}
		sp.mu.Unlock()
	}
	s.Append(t, v)
}

// Series returns the series for (node, metric), or nil. The returned
// series is safe to query while appends race it.
func (st *Store) Series(nodeName, metric string) *Series {
	sp, _ := st.stripe(nodeName)
	sp.mu.RLock()
	defer sp.mu.RUnlock()
	return sp.series[nodeName][metric]
}

// Nodes returns the node names with any history, sorted.
func (st *Store) Nodes() []string {
	var out []string
	for i := range st.stripes {
		sp := &st.stripes[i]
		sp.mu.RLock()
		for n := range sp.series {
			out = append(out, n)
		}
		sp.mu.RUnlock()
	}
	sort.Strings(out)
	return out
}

// Metrics returns the metric names recorded for a node, sorted.
func (st *Store) Metrics(nodeName string) []string {
	sp, _ := st.stripe(nodeName)
	sp.mu.RLock()
	byMetric := sp.series[nodeName]
	out := make([]string, 0, len(byMetric))
	for m := range byMetric {
		out = append(out, m)
	}
	sp.mu.RUnlock()
	sort.Strings(out)
	return out
}

// Bytes returns the store's accounted history footprint across every
// series.
func (st *Store) Bytes() int64 {
	var total int64
	for _, s := range st.snapshotSeries("") {
		total += s.series.Bytes()
	}
	return total
}

// namedSeries pairs a series with its owning node for lock-free
// post-processing after the stripe locks are released.
type namedSeries struct {
	node   string
	series *Series
}

// snapshotSeries collects series pointers under each stripe's read lock
// and releases it before any per-series work happens. metric == ""
// collects every series. This keeps cross-node queries (Compare,
// Bytes) from stalling new-series creation during ingest: the stripe
// lock is held only for the map walk, never across Stats.
func (st *Store) snapshotSeries(metric string) []namedSeries {
	out := make([]namedSeries, 0, 64)
	for i := range st.stripes {
		sp := &st.stripes[i]
		sp.mu.RLock()
		for nodeName, byMetric := range sp.series {
			if metric == "" {
				for _, s := range byMetric {
					out = append(out, namedSeries{nodeName, s})
				}
			} else if s, ok := byMetric[metric]; ok {
				out = append(out, namedSeries{nodeName, s})
			}
		}
		sp.mu.RUnlock()
	}
	return out
}

// Compare returns each node's Stats for one metric over a range — the
// "compare performance between nodes" view. Series pointers are
// snapshotted under the stripe locks and aggregated after release, so a
// cluster-wide comparison never blocks a new node's first sample.
func (st *Store) Compare(metric string, t0, t1 time.Duration) map[string]Stats {
	series := st.snapshotSeries(metric)
	out := make(map[string]Stats, len(series))
	for _, ns := range series {
		out[ns.node] = ns.series.Stats(t0, t1)
	}
	return out
}
