package history

// Exported, allocation-free wrappers around the sealed-block bit codec
// (block.go) so the wire protocol's v2 frames (internal/transmit)
// compress timestamps and float64 values with the same proven
// delta-of-delta + Gorilla-XOR machinery the history engine seals blocks
// with — one codec, two call sites, identical bit streams.
//
// The block codec keeps its per-stream prediction state (previous value,
// leading/significant-bits window, previous timestamp delta) in local
// variables because a block is encoded in one shot. The wire streams one
// point per metric per frame, so the state must live across calls: that
// is the only addition here. XORState and DoDState are plain structs
// whose zero value means "no history yet — emit relative to zero"; both
// sides of a connection reset them in lockstep (the v2 chain-reset rule),
// keeping encoder and decoder bit-exact without any handshake payload.

import (
	"math"
	"math/bits"
)

// BitWriter is an MSB-first bit appender over a reusable byte buffer.
type BitWriter struct{ w bitWriter }

// Reset discards state and re-arms the writer over buf[:0], reusing its
// capacity.
func (w *BitWriter) Reset(buf []byte) {
	w.w.buf = buf[:0]
	w.w.acc = 0
	w.w.nacc = 0
}

// Bytes flushes any partial byte (zero-padded) and returns the encoded
// buffer. The writer must be Reset before further use.
func (w *BitWriter) Bytes() []byte { return w.w.bytes() }

// WriteBits appends the low n bits of v, most significant first.
func (w *BitWriter) WriteBits(v uint64, n uint) { w.w.writeBits(v, n) }

// BitReader is the matching MSB-first bit consumer.
type BitReader struct{ r bitReader }

// Reset re-arms the reader over data.
func (r *BitReader) Reset(data []byte) { r.r = bitReader{data: data} }

// ReadBits returns the next n bits, MSB-first; past the end it sticks in
// the failed state and returns 0.
func (r *BitReader) ReadBits(n uint) uint64 { return r.r.readBits(n) }

// Failed reports whether any read ran past the end of the data.
func (r *BitReader) Failed() bool { return r.r.err }

// Fail forces the failed state, for callers that detect an impossible
// decoded value (e.g. a window-reuse code before any window existed).
func (r *BitReader) Fail() { r.r.err = true }

// DoDState is one timestamp stream's delta-of-delta predictor. The zero
// value predicts from t=0 with delta 0, so the first timestamp after a
// reset is carried as a (large) dod — self-contained, no raw first-point
// special case on the wire.
type DoDState struct {
	Prev  int64
	Delta int64
}

// WriteDoD appends t delta-of-delta coded against the stream state.
func (w *BitWriter) WriteDoD(s *DoDState, t int64) {
	delta := t - s.Prev
	writeDoD(&w.w, delta-s.Delta)
	s.Delta = delta
	s.Prev = t
}

// ReadDoD decodes the next timestamp, advancing the stream state.
func (r *BitReader) ReadDoD(s *DoDState) int64 {
	dod := readDoD(&r.r)
	s.Delta += dod
	s.Prev += s.Delta
	return s.Prev
}

// XORState is one value stream's Gorilla XOR predictor: the previous
// bit pattern plus the current leading/trailing-zeros window. The zero
// value predicts 0.0 with no window, so the first value after a reset is
// carried as a full-width XOR against zero — i.e. literally.
type XORState struct {
	Bits     uint64
	Leading  uint8
	Trailing uint8
	HasWin   bool
}

// WriteXOR appends v XOR-coded against the stream state, bit-compatible
// with encodeBlock's value stream.
func (w *BitWriter) WriteXOR(s *XORState, v float64) {
	cur := math.Float64bits(v)
	xor := cur ^ s.Bits
	s.Bits = cur
	if xor == 0 {
		w.w.writeBit(0)
		return
	}
	w.w.writeBit(1)
	lz := bits.LeadingZeros64(xor)
	if lz > 31 {
		lz = 31 // 5-bit field
	}
	tz := bits.TrailingZeros64(xor)
	if s.HasWin && lz >= int(s.Leading) && tz >= int(s.Trailing) {
		w.w.writeBit(0)
		w.w.writeBits(xor>>s.Trailing, uint(64-int(s.Leading)-int(s.Trailing)))
		return
	}
	s.Leading, s.Trailing, s.HasWin = uint8(lz), uint8(tz), true
	sig := 64 - lz - tz
	w.w.writeBit(1)
	w.w.writeBits(uint64(lz), 5)
	w.w.writeBits(uint64(sig-1), 6)
	w.w.writeBits(xor>>uint(tz), uint(sig))
}

// ReadXOR decodes the next value, advancing the stream state. ok is
// false on a truncated or impossible bit stream (the reader is then in
// the failed state).
func (r *BitReader) ReadXOR(s *XORState) (v float64, ok bool) {
	if r.r.readBit() == 1 {
		if r.r.readBit() == 1 {
			leading := int(r.r.readBits(5))
			sig := int(r.r.readBits(6)) + 1
			trailing := 64 - leading - sig
			if trailing < 0 {
				r.r.err = true
				return 0, false
			}
			s.Leading, s.Trailing, s.HasWin = uint8(leading), uint8(trailing), true
		} else if !s.HasWin {
			// Window-reuse code with no window defined: corrupt input.
			r.r.err = true
			return 0, false
		}
		width := uint(64 - int(s.Leading) - int(s.Trailing))
		s.Bits ^= r.r.readBits(width) << s.Trailing
	}
	if r.r.err {
		return 0, false
	}
	return math.Float64frombits(s.Bits), true
}
