package history

import (
	"encoding/binary"
	"math"
	"testing"
	"time"
)

// FuzzBlockCodec exercises the sealed-block codec from both ends. The
// input bytes are interpreted as a raw point stream (16 bytes per point:
// int64 timestamp, float64 bits) which must encode and decode back
// bit-exactly; the same bytes are then fed to the decoder directly as a
// hostile compressed stream, which must terminate without panicking
// regardless of content.
func FuzzBlockCodec(f *testing.F) {
	seed := func(ts []int64, vs []float64) {
		b := make([]byte, 0, len(ts)*16)
		for i := range ts {
			b = binary.LittleEndian.AppendUint64(b, uint64(ts[i]))
			b = binary.LittleEndian.AppendUint64(b, math.Float64bits(vs[i]))
		}
		f.Add(b)
	}
	sec := int64(time.Second)
	seed([]int64{0, sec, 2 * sec, 3 * sec}, []float64{7, 7, 7, 7})
	seed([]int64{0, 1, 2, 3, 4, 5},
		[]float64{math.NaN(), math.Inf(1), math.Inf(-1), 5e-324, math.Copysign(0, -1), math.MaxFloat64})
	seed([]int64{100, 5, -30, math.MaxInt64, math.MinInt64, 0}, []float64{1, 2, 3, 4, 5, 6})
	seed([]int64{9, 9, 9}, []float64{1e-310, -1e-310, 0})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF})

	f.Fuzz(func(t *testing.T, data []byte) {
		// Roundtrip: any point stream, however adversarial its bit
		// patterns or timestamp ordering, must survive encode/decode.
		if n := len(data) / 16; n > 0 {
			ts := make([]int64, n)
			vs := make([]float64, n)
			for i := 0; i < n; i++ {
				ts[i] = int64(binary.LittleEndian.Uint64(data[i*16:]))
				vs[i] = math.Float64frombits(binary.LittleEndian.Uint64(data[i*16+8:]))
			}
			enc := encodeBlock(ts, vs)
			it := newBlockIter(enc, n)
			for i := 0; i < n; i++ {
				gt, gv, ok := it.next()
				if !ok {
					t.Fatalf("decode stopped at %d/%d", i, n)
				}
				if gt != ts[i] || math.Float64bits(gv) != math.Float64bits(vs[i]) {
					t.Fatalf("point %d: got (%d, %x), want (%d, %x)",
						i, gt, math.Float64bits(gv), ts[i], math.Float64bits(vs[i]))
				}
			}
			if _, _, ok := it.next(); ok || it.failed() {
				t.Fatalf("clean stream: extra point or failure (failed=%v)", it.failed())
			}
		}

		// Hostile decode: arbitrary bytes with an inflated count must
		// terminate within the count bound and never panic.
		it := newBlockIter(data, 1<<14)
		decoded := 0
		for {
			if _, _, ok := it.next(); !ok {
				break
			}
			if decoded++; decoded > 1<<14 {
				t.Fatal("decoder exceeded its count bound")
			}
		}
	})
}
