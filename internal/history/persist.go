package history

import (
	"bufio"
	"encoding/base64"
	"fmt"
	"io"
	"strconv"
	"strings"
	"time"
)

// Persistence keeps the §5.3.3 philosophy — history is written as text —
// but the v2 format snapshots the engine's sealed blocks directly: each
// block line carries the compressed bytes (base64), so a 4096-point
// series costs a handful of lines instead of thousands, and float values
// survive bit-exactly. Head points are written as raw lines with exact
// (strconv 'g'/-1) formatting.
//
// v2 format:
//
//	clusterworx-history v2
//	series <node> <metric> <nblocks> <nhead>
//	block <count> <trim> <base64-data>
//	...
//	<nanoseconds> <value>
//	...
//
// v1 ("clusterworx-history v1": one "<seconds> <value>" line per point)
// is still read, so snapshots taken before the block engine load
// unchanged. SaveTo always writes v2.

const (
	persistHeader   = "clusterworx-history v1"
	persistHeaderV2 = "clusterworx-history v2"

	// maxPersistBlockPoints bounds a v2 block line's declared point
	// count, so a corrupt or hostile file cannot make the loader decode
	// unbounded garbage.
	maxPersistBlockPoints = 1 << 20
)

// SaveTo writes the whole store in the v2 block format.
func (st *Store) SaveTo(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintln(bw, persistHeaderV2); err != nil {
		return err
	}
	for _, nodeName := range st.Nodes() {
		for _, metric := range st.Metrics(nodeName) {
			s := st.Series(nodeName, metric)
			if s == nil {
				continue // deleted between listing and lookup: nothing to save
			}
			q := s.snapshot()
			if _, err := fmt.Fprintf(bw, "series %q %q %d %d\n", nodeName, metric, len(q.blocks), len(q.head)); err != nil {
				return err
			}
			for i, b := range q.blocks {
				if _, err := fmt.Fprintf(bw, "block %d %d %s\n",
					b.sum.count, q.blockTrim(i), base64.StdEncoding.EncodeToString(b.data)); err != nil {
					return err
				}
			}
			for _, p := range q.head {
				if _, err := fmt.Fprintf(bw, "%d %s\n", int64(p.T), strconv.FormatFloat(p.V, 'g', -1, 64)); err != nil {
					return err
				}
			}
		}
	}
	return bw.Flush()
}

// LoadFrom merges persisted history into the store, reading both the v2
// block format and the v1 point-per-line format. Existing series receive
// the loaded points subject to the usual ordering rule (older points
// than what is already present are dropped).
func (st *Store) LoadFrom(r io.Reader) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64<<10), 16<<20)
	if !sc.Scan() {
		return fmt.Errorf("history: empty input")
	}
	switch sc.Text() {
	case persistHeaderV2:
		return st.loadV2(sc)
	case persistHeader:
		return st.loadV1(sc)
	default:
		return fmt.Errorf("history: bad header %q", sc.Text())
	}
}

func (st *Store) loadV2(sc *bufio.Scanner) error {
	lineNo := 1
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if strings.TrimSpace(line) == "" {
			continue
		}
		var nodeName, metric string
		var nblocks, nhead int
		if _, err := fmt.Sscanf(line, "series %q %q %d %d", &nodeName, &metric, &nblocks, &nhead); err != nil {
			return fmt.Errorf("history: line %d: bad series header %q: %v", lineNo, line, err)
		}
		if nblocks < 0 || nhead < 0 {
			return fmt.Errorf("history: line %d: negative series counts", lineNo)
		}
		for i := 0; i < nblocks; i++ {
			if !sc.Scan() {
				return fmt.Errorf("history: truncated series %s/%s at block %d", nodeName, metric, i)
			}
			lineNo++
			var count, trim int
			var enc string
			if _, err := fmt.Sscanf(sc.Text(), "block %d %d %s", &count, &trim, &enc); err != nil {
				return fmt.Errorf("history: line %d: bad block line: %v", lineNo, err)
			}
			if count <= 0 || count > maxPersistBlockPoints || trim < 0 || trim >= count {
				return fmt.Errorf("history: line %d: bad block bounds count=%d trim=%d", lineNo, count, trim)
			}
			data, err := base64.StdEncoding.DecodeString(enc)
			if err != nil {
				return fmt.Errorf("history: line %d: bad block data: %v", lineNo, err)
			}
			it := newBlockIter(data, count)
			decoded := 0
			for {
				t, v, ok := it.next()
				if !ok {
					break
				}
				if decoded >= trim {
					st.Append(nodeName, metric, time.Duration(t), v)
				}
				decoded++
			}
			if it.failed() || decoded != count {
				return fmt.Errorf("history: line %d: block decodes %d of %d points", lineNo, decoded, count)
			}
		}
		for i := 0; i < nhead; i++ {
			if !sc.Scan() {
				return fmt.Errorf("history: truncated series %s/%s at head point %d", nodeName, metric, i)
			}
			lineNo++
			nsStr, valStr, ok := strings.Cut(sc.Text(), " ")
			if !ok {
				return fmt.Errorf("history: line %d: bad point %q", lineNo, sc.Text())
			}
			ns, err := strconv.ParseInt(nsStr, 10, 64)
			if err != nil {
				return fmt.Errorf("history: line %d: bad timestamp: %v", lineNo, err)
			}
			v, err := strconv.ParseFloat(valStr, 64)
			if err != nil {
				return fmt.Errorf("history: line %d: bad value: %v", lineNo, err)
			}
			st.Append(nodeName, metric, time.Duration(ns), v)
		}
	}
	return sc.Err()
}

func (st *Store) loadV1(sc *bufio.Scanner) error {
	lineNo := 1
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if strings.TrimSpace(line) == "" {
			continue
		}
		var nodeName, metric string
		var n int
		if _, err := fmt.Sscanf(line, "series %q %q %d", &nodeName, &metric, &n); err != nil {
			return fmt.Errorf("history: line %d: bad series header %q: %v", lineNo, line, err)
		}
		for i := 0; i < n; i++ {
			if !sc.Scan() {
				return fmt.Errorf("history: truncated series %s/%s at point %d", nodeName, metric, i)
			}
			lineNo++
			secStr, valStr, ok := strings.Cut(sc.Text(), " ")
			if !ok {
				return fmt.Errorf("history: line %d: bad point %q", lineNo, sc.Text())
			}
			sec, err := strconv.ParseFloat(secStr, 64)
			if err != nil {
				return fmt.Errorf("history: line %d: bad timestamp: %v", lineNo, err)
			}
			v, err := strconv.ParseFloat(valStr, 64)
			if err != nil {
				return fmt.Errorf("history: line %d: bad value: %v", lineNo, err)
			}
			st.Append(nodeName, metric, time.Duration(sec*float64(time.Second)), v)
		}
	}
	return sc.Err()
}
