package history

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
	"time"
)

// Persistence keeps the §5.3.3 philosophy: history is written as
// human-readable text (compress at rest if you care; deflate loves it).
//
// Format:
//
//	clusterworx-history v1
//	series <node> <metric> <npoints>
//	<seconds> <value>
//	...
//
// Node and metric names are %q-quoted so whitespace survives.

const persistHeader = "clusterworx-history v1"

// SaveTo writes the whole store as text.
func (st *Store) SaveTo(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintln(bw, persistHeader); err != nil {
		return err
	}
	for _, nodeName := range st.Nodes() {
		for _, metric := range st.Metrics(nodeName) {
			s := st.Series(nodeName, metric)
			pts := s.Range(0, 1<<62)
			if _, err := fmt.Fprintf(bw, "series %q %q %d\n", nodeName, metric, len(pts)); err != nil {
				return err
			}
			for _, p := range pts {
				if _, err := fmt.Fprintf(bw, "%.6f %g\n", p.T.Seconds(), p.V); err != nil {
					return err
				}
			}
		}
	}
	return bw.Flush()
}

// LoadFrom merges persisted history into the store. Existing series
// receive the loaded points subject to the usual ordering rule (older
// points than what is already present are dropped).
func (st *Store) LoadFrom(r io.Reader) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64<<10), 16<<20)
	if !sc.Scan() {
		return fmt.Errorf("history: empty input")
	}
	if sc.Text() != persistHeader {
		return fmt.Errorf("history: bad header %q", sc.Text())
	}
	lineNo := 1
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if strings.TrimSpace(line) == "" {
			continue
		}
		var nodeName, metric string
		var n int
		if _, err := fmt.Sscanf(line, "series %q %q %d", &nodeName, &metric, &n); err != nil {
			return fmt.Errorf("history: line %d: bad series header %q: %v", lineNo, line, err)
		}
		for i := 0; i < n; i++ {
			if !sc.Scan() {
				return fmt.Errorf("history: truncated series %s/%s at point %d", nodeName, metric, i)
			}
			lineNo++
			secStr, valStr, ok := strings.Cut(sc.Text(), " ")
			if !ok {
				return fmt.Errorf("history: line %d: bad point %q", lineNo, sc.Text())
			}
			sec, err := strconv.ParseFloat(secStr, 64)
			if err != nil {
				return fmt.Errorf("history: line %d: bad timestamp: %v", lineNo, err)
			}
			v, err := strconv.ParseFloat(valStr, 64)
			if err != nil {
				return fmt.Errorf("history: line %d: bad value: %v", lineNo, err)
			}
			st.Append(nodeName, metric, time.Duration(sec*float64(time.Second)), v)
		}
	}
	return sc.Err()
}
