package history

import (
	"math"
	"testing"
	"time"
)

// roundtrip encodes the pair of arrays and decodes them back, failing on
// any bit-level mismatch (values compare as raw bits, so NaN payloads
// and signed zeros count).
func roundtrip(t *testing.T, ts []int64, vs []float64) {
	t.Helper()
	data := encodeBlock(ts, vs)
	it := newBlockIter(data, len(ts))
	for i := range ts {
		gt, gv, ok := it.next()
		if !ok {
			t.Fatalf("decode stopped at point %d/%d", i, len(ts))
		}
		if gt != ts[i] {
			t.Fatalf("point %d: t = %d, want %d", i, gt, ts[i])
		}
		if math.Float64bits(gv) != math.Float64bits(vs[i]) {
			t.Fatalf("point %d: v = %x, want %x", i, math.Float64bits(gv), math.Float64bits(vs[i]))
		}
	}
	if _, _, ok := it.next(); ok {
		t.Fatal("decode produced extra points")
	}
	if it.failed() {
		t.Fatal("clean stream reported failure")
	}
}

func TestBlockCodecRoundtrip(t *testing.T) {
	sec := int64(time.Second)
	cases := []struct {
		name string
		ts   []int64
		vs   []float64
	}{
		{"single", []int64{42}, []float64{1.5}},
		{"fixed cadence repeated value", []int64{0, sec, 2 * sec, 3 * sec}, []float64{7, 7, 7, 7}},
		{"fixed cadence ramp", []int64{0, sec, 2 * sec, 3 * sec}, []float64{1, 2, 3, 4}},
		{"jittered cadence", []int64{0, sec + 17, 2*sec - 3000, 3*sec + 999999}, []float64{0.1, 0.2, 0.30000001, -5}},
		{"specials", []int64{0, 1, 2, 3, 4, 5, 6},
			[]float64{math.NaN(), math.Inf(1), math.Inf(-1), 0, math.Copysign(0, -1), 5e-324, math.MaxFloat64}},
		{"out of order timestamps", []int64{100, 5, -30, math.MaxInt64, math.MinInt64, 0}, []float64{1, 2, 3, 4, 5, 6}},
		{"equal timestamps", []int64{9, 9, 9}, []float64{1, 1, 2}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) { roundtrip(t, c.ts, c.vs) })
	}
}

func TestBlockCodecLong(t *testing.T) {
	// A monitor-shaped stream: 1 s cadence with occasional jitter,
	// quantized values that dwell and step, plus special values mixed in.
	n := 4096
	ts := make([]int64, n)
	vs := make([]float64, n)
	cur := int64(0)
	for i := 0; i < n; i++ {
		cur += int64(time.Second)
		if i%97 == 0 {
			cur += int64(i%7) * int64(time.Millisecond)
		}
		ts[i] = cur
		switch {
		case i%503 == 0:
			vs[i] = math.NaN()
		case i%701 == 0:
			vs[i] = math.Inf(1)
		default:
			vs[i] = 40 + float64((i/64)%32)*0.5
		}
	}
	data := encodeBlock(ts, vs)
	roundtrip(t, ts, vs)
	if perSample := float64(len(data)) / float64(n); perSample > 2.0 {
		t.Fatalf("monitor-shaped stream encodes at %.2f B/sample, want <= 2", perSample)
	}
}

func TestBlockIterTruncated(t *testing.T) {
	ts := []int64{0, int64(time.Second), 2 * int64(time.Second)}
	vs := []float64{1, 2, 3}
	data := encodeBlock(ts, vs)
	for cut := 0; cut < len(data); cut++ {
		it := newBlockIter(data[:cut], len(ts))
		n := 0
		for {
			_, _, ok := it.next()
			if !ok {
				break
			}
			n++
		}
		if n >= len(ts) && cut < len(data)-1 {
			t.Fatalf("cut %d still decoded %d points", cut, n)
		}
	}
}

// TestBlockIterCorruptTerminates feeds garbage bytes with an inflated
// count: iteration must stop (error or exhaustion), never loop or panic.
func TestBlockIterCorruptTerminates(t *testing.T) {
	payloads := [][]byte{
		{},
		{0xFF},
		{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF},
		{0x00, 0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07, 0x08, 0x09, 0x0A},
	}
	for _, p := range payloads {
		it := newBlockIter(p, 1<<16)
		n := 0
		for {
			if _, _, ok := it.next(); !ok {
				break
			}
			if n++; n > 1<<16 {
				t.Fatal("iterator exceeded its count bound")
			}
		}
	}
}

func TestSummarizeNaNSemantics(t *testing.T) {
	// minV/maxV skip NaN: a NaN mid-block must not poison the aggregate
	// (firstV carries the naive init semantics at query time).
	ts := []int64{1, 2, 3}
	s := summarize(ts, []float64{3, math.NaN(), 1})
	if s.minV != 1 || s.maxV != 3 {
		t.Fatalf("min/max = %v/%v, want 1/3", s.minV, s.maxV)
	}
	if !math.IsNaN(s.sumV) {
		t.Fatalf("sumV = %v, want NaN", s.sumV)
	}
	all := summarize(ts, []float64{math.NaN(), math.NaN(), math.NaN()})
	if !math.IsNaN(all.minV) || !math.IsNaN(all.maxV) {
		t.Fatalf("all-NaN block min/max = %v/%v, want NaN", all.minV, all.maxV)
	}
	if s.firstT != 1 || s.lastT != 3 || s.count != 3 {
		t.Fatalf("bounds = %+v", s)
	}
}
