package history

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	st := NewStore(64)
	for i := 0; i < 30; i++ {
		ts := time.Duration(i) * time.Second
		st.Append("node a", "load.1", ts, float64(i)*0.1)
		st.Append("node a", "mem.free.kb", ts, 1e6-float64(i))
		st.Append("nodeb", "load.1", ts, 2)
	}
	var buf bytes.Buffer
	if err := st.SaveTo(&buf); err != nil {
		t.Fatal(err)
	}
	loaded := NewStore(64)
	if err := loaded.LoadFrom(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	if got := loaded.Nodes(); len(got) != 2 || got[0] != "node a" {
		t.Fatalf("nodes = %v (quoting broke?)", got)
	}
	orig := st.Series("node a", "load.1").Range(0, 1<<62)
	back := loaded.Series("node a", "load.1").Range(0, 1<<62)
	if len(orig) != len(back) {
		t.Fatalf("points %d vs %d", len(orig), len(back))
	}
	for i := range orig {
		if math.Abs((orig[i].T-back[i].T).Seconds()) > 1e-5 || orig[i].V != back[i].V {
			t.Fatalf("point %d: %+v vs %+v", i, orig[i], back[i])
		}
	}
}

func TestLoadErrors(t *testing.T) {
	cases := []string{
		"",
		"wrong header\n",
		persistHeader + "\nnot a series line\n",
		persistHeader + "\nseries \"n\" \"m\" 2\n1.0 2.0\n", // truncated
		persistHeader + "\nseries \"n\" \"m\" 1\nnope\n",
		persistHeader + "\nseries \"n\" \"m\" 1\nx 1\n",
		persistHeader + "\nseries \"n\" \"m\" 1\n1 x\n",
	}
	for _, c := range cases {
		st := NewStore(8)
		if err := st.LoadFrom(strings.NewReader(c)); err == nil {
			t.Errorf("LoadFrom(%q) succeeded", c)
		}
	}
}

func TestLoadMergesIntoExisting(t *testing.T) {
	st := NewStore(16)
	st.Append("n", "m", 10*time.Second, 1)
	var buf bytes.Buffer
	old := NewStore(16)
	old.Append("n", "m", 5*time.Second, 0.5)  // older than live data: dropped
	old.Append("n", "m", 20*time.Second, 2.0) // newer: kept
	if err := old.SaveTo(&buf); err != nil {
		t.Fatal(err)
	}
	if err := st.LoadFrom(&buf); err != nil {
		t.Fatal(err)
	}
	pts := st.Series("n", "m").Range(0, 1<<62)
	if len(pts) != 2 || pts[1].V != 2.0 {
		t.Fatalf("merged = %v", pts)
	}
}

// TestSaveLoadV2Exact pins the v2 promise: the block format round-trips
// sealed blocks, trim state, and head points bit-exactly — including
// NaN, ±Inf, denormals, and values the old %.6f text format destroyed.
func TestSaveLoadV2Exact(t *testing.T) {
	const capacity = 3 * headCapacity / 2 // one sealed block + partial head
	st := NewStore(capacity)
	specials := []float64{math.NaN(), math.Inf(1), math.Inf(-1), 5e-324, math.Copysign(0, -1), 0.30000000000000004}
	for i := 0; i < capacity+40; i++ { // overfill so trim state persists too
		v := 40 + float64(i%32)*0.5
		if i%97 == 0 {
			v = specials[(i/97)%len(specials)]
		}
		st.Append("n", "m", time.Duration(i)*time.Second+time.Duration(i%7)*time.Millisecond, v)
	}
	var buf bytes.Buffer
	if err := st.SaveTo(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(), persistHeaderV2+"\n") {
		t.Fatalf("SaveTo wrote header %q", strings.SplitN(buf.String(), "\n", 2)[0])
	}
	back := NewStore(capacity)
	if err := back.LoadFrom(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	orig := st.Series("n", "m").Range(0, 1<<62)
	got := back.Series("n", "m").Range(0, 1<<62)
	if len(orig) != len(got) {
		t.Fatalf("points %d vs %d", len(orig), len(got))
	}
	for i := range orig {
		if orig[i].T != got[i].T || math.Float64bits(orig[i].V) != math.Float64bits(got[i].V) {
			t.Fatalf("point %d: %+v vs %+v (bit-exactness broke)", i, orig[i], got[i])
		}
	}
}

// TestLoadV1Compat proves snapshots from before the block engine still load.
func TestLoadV1Compat(t *testing.T) {
	in := persistHeader + "\n" +
		"series \"node a\" \"load.1\" 3\n" +
		"1.000000 0.50\n2.000000 0.75\n3.000000 1.25\n"
	st := NewStore(16)
	if err := st.LoadFrom(strings.NewReader(in)); err != nil {
		t.Fatal(err)
	}
	pts := st.Series("node a", "load.1").Range(0, 1<<62)
	if len(pts) != 3 || pts[2].V != 1.25 || pts[0].T != time.Second {
		t.Fatalf("v1 load = %v", pts)
	}
}

func TestLoadV2Errors(t *testing.T) {
	cases := []string{
		persistHeaderV2 + "\nnot a series line\n",
		persistHeaderV2 + "\nseries \"n\" \"m\" 1 0\n",                       // truncated: no block line
		persistHeaderV2 + "\nseries \"n\" \"m\" 1 0\nblock 2 0 AAAA\n",       // block bytes too short for count
		persistHeaderV2 + "\nseries \"n\" \"m\" 1 0\nblock 4 0 !!!!\n",       // bad base64
		persistHeaderV2 + "\nseries \"n\" \"m\" 1 0\nblock 0 0 AAAA\n",       // zero count
		persistHeaderV2 + "\nseries \"n\" \"m\" 1 0\nblock 2 5 AAAA\n",       // trim >= count
		persistHeaderV2 + "\nseries \"n\" \"m\" 1 0\nblock 9999999 0 AAAA\n", // count over bound
		persistHeaderV2 + "\nseries \"n\" \"m\" 0 1\n",                       // truncated: no head line
		persistHeaderV2 + "\nseries \"n\" \"m\" 0 1\nbadpoint\n",             // unsplittable head point
		persistHeaderV2 + "\nseries \"n\" \"m\" 0 1\nx 1\n",                  // bad timestamp
		persistHeaderV2 + "\nseries \"n\" \"m\" 0 1\n1 x\n",                  // bad value
		persistHeaderV2 + "\nseries \"n\" \"m\" -1 0\n",                      // negative counts
	}
	for _, c := range cases {
		st := NewStore(8)
		if err := st.LoadFrom(strings.NewReader(c)); err == nil {
			t.Errorf("LoadFrom(%q) succeeded", c)
		}
	}
}

// Property: save/load preserves every series' point count and last value
// for arbitrary stores.
func TestPropertyPersistRoundTrip(t *testing.T) {
	f := func(vals []int8, nodeSel []bool) bool {
		st := NewStore(32)
		for i, v := range vals {
			nodeName := "a"
			if i < len(nodeSel) && nodeSel[i] {
				nodeName = "b"
			}
			st.Append(nodeName, "m", time.Duration(i)*time.Second, float64(v))
		}
		var buf bytes.Buffer
		if err := st.SaveTo(&buf); err != nil {
			return false
		}
		back := NewStore(32)
		if err := back.LoadFrom(&buf); err != nil {
			return false
		}
		for _, nodeName := range st.Nodes() {
			a := st.Series(nodeName, "m")
			b := back.Series(nodeName, "m")
			if b == nil || a.Len() != b.Len() {
				return false
			}
			la, _ := a.Last()
			lb, _ := b.Last()
			if la.V != lb.V {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}
