package history

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	st := NewStore(64)
	for i := 0; i < 30; i++ {
		ts := time.Duration(i) * time.Second
		st.Append("node a", "load.1", ts, float64(i)*0.1)
		st.Append("node a", "mem.free.kb", ts, 1e6-float64(i))
		st.Append("nodeb", "load.1", ts, 2)
	}
	var buf bytes.Buffer
	if err := st.SaveTo(&buf); err != nil {
		t.Fatal(err)
	}
	loaded := NewStore(64)
	if err := loaded.LoadFrom(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	if got := loaded.Nodes(); len(got) != 2 || got[0] != "node a" {
		t.Fatalf("nodes = %v (quoting broke?)", got)
	}
	orig := st.Series("node a", "load.1").Range(0, 1<<62)
	back := loaded.Series("node a", "load.1").Range(0, 1<<62)
	if len(orig) != len(back) {
		t.Fatalf("points %d vs %d", len(orig), len(back))
	}
	for i := range orig {
		if math.Abs((orig[i].T-back[i].T).Seconds()) > 1e-5 || orig[i].V != back[i].V {
			t.Fatalf("point %d: %+v vs %+v", i, orig[i], back[i])
		}
	}
}

func TestLoadErrors(t *testing.T) {
	cases := []string{
		"",
		"wrong header\n",
		persistHeader + "\nnot a series line\n",
		persistHeader + "\nseries \"n\" \"m\" 2\n1.0 2.0\n", // truncated
		persistHeader + "\nseries \"n\" \"m\" 1\nnope\n",
		persistHeader + "\nseries \"n\" \"m\" 1\nx 1\n",
		persistHeader + "\nseries \"n\" \"m\" 1\n1 x\n",
	}
	for _, c := range cases {
		st := NewStore(8)
		if err := st.LoadFrom(strings.NewReader(c)); err == nil {
			t.Errorf("LoadFrom(%q) succeeded", c)
		}
	}
}

func TestLoadMergesIntoExisting(t *testing.T) {
	st := NewStore(16)
	st.Append("n", "m", 10*time.Second, 1)
	var buf bytes.Buffer
	old := NewStore(16)
	old.Append("n", "m", 5*time.Second, 0.5)  // older than live data: dropped
	old.Append("n", "m", 20*time.Second, 2.0) // newer: kept
	if err := old.SaveTo(&buf); err != nil {
		t.Fatal(err)
	}
	if err := st.LoadFrom(&buf); err != nil {
		t.Fatal(err)
	}
	pts := st.Series("n", "m").Range(0, 1<<62)
	if len(pts) != 2 || pts[1].V != 2.0 {
		t.Fatalf("merged = %v", pts)
	}
}

// Property: save/load preserves every series' point count and last value
// for arbitrary stores.
func TestPropertyPersistRoundTrip(t *testing.T) {
	f := func(vals []int8, nodeSel []bool) bool {
		st := NewStore(32)
		for i, v := range vals {
			nodeName := "a"
			if i < len(nodeSel) && nodeSel[i] {
				nodeName = "b"
			}
			st.Append(nodeName, "m", time.Duration(i)*time.Second, float64(v))
		}
		var buf bytes.Buffer
		if err := st.SaveTo(&buf); err != nil {
			return false
		}
		back := NewStore(32)
		if err := back.LoadFrom(&buf); err != nil {
			return false
		}
		for _, nodeName := range st.Nodes() {
			a := st.Series(nodeName, "m")
			b := back.Series(nodeName, "m")
			if b == nil || a.Len() != b.Len() {
				return false
			}
			la, _ := a.Last()
			lb, _ := b.Last()
			if la.V != lb.V {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}
