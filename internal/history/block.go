package history

// Sealed-block codec: Gorilla-style bit packing (Facebook's "Gorilla: A
// Fast, Scalable, In-Memory Time Series Database", VLDB 2015) adapted to
// this store's shape. Timestamps are delta-of-delta coded — an agent
// reporting on a fixed cadence costs one bit per sample — and values are
// XOR-coded against their predecessor, so the §5.3.2 change-suppressed
// monitor streams (long runs of repeated or near-equal readings) cost a
// bit or a handful of meaningful bits per sample instead of 16 bytes.
//
// A block is encoded once, at seal time, from the series' head arrays and
// never mutated afterwards: queries decode it without any lock. The codec
// is pure bit-shuffling over stdlib types; every float64 bit pattern
// (NaN, ±Inf, denormals) round-trips exactly, and decoding untrusted
// bytes (the persistence loader, the fuzzer) terminates with an error
// instead of panicking.

import (
	"math"
	"math/bits"
	"time"
)

// blockOverheadBytes is the accounted per-sealed-block bookkeeping cost:
// the summary, the slice header, and the pointer in the chain. Used by
// the bytes gauge and the E19 bytes/sample measurement so compression
// numbers include their own metadata.
const blockOverheadBytes = 136

// summary is a sealed block's precomputed aggregate: everything Stats,
// Compare and Trend need so a block fully inside the query window is
// answered without decoding.
//
// minV/maxV skip NaN values (NaN only if every value is NaN); combined
// with firstV-initialization at query time this reproduces exactly the
// result of the naive "init from first point, then strict <,> folds"
// scan, for any NaN placement. sumX/sumXX/sumXY are the least-squares
// moments over x = T.Hours(), y = V, so Trend merges blocks in O(1).
type summary struct {
	count  int
	minV   float64
	maxV   float64
	sumV   float64
	firstT int64
	lastT  int64
	firstV float64
	lastV  float64
	sumX   float64
	sumXX  float64
	sumXY  float64
}

// block is one sealed, immutable run of compressed points.
type block struct {
	data []byte
	sum  summary
}

// summarize computes a block's aggregate from the head arrays.
func summarize(ts []int64, vs []float64) summary {
	s := summary{
		count:  len(ts),
		firstT: ts[0],
		lastT:  ts[len(ts)-1],
		firstV: vs[0],
		lastV:  vs[len(vs)-1],
		minV:   math.NaN(),
		maxV:   math.NaN(),
	}
	seen := false
	for i, v := range vs {
		x := time.Duration(ts[i]).Hours()
		s.sumV += v
		s.sumX += x
		s.sumXX += x * x
		s.sumXY += x * v
		if math.IsNaN(v) {
			continue
		}
		if !seen {
			s.minV, s.maxV = v, v
			seen = true
			continue
		}
		if v < s.minV {
			s.minV = v
		}
		if v > s.maxV {
			s.maxV = v
		}
	}
	return s
}

// --- bit-level writer -----------------------------------------------------------

type bitWriter struct {
	buf  []byte
	acc  uint64 // pending bits, MSB-first
	nacc uint   // bits pending in acc
}

// writeBits appends the low n bits of v, most significant first.
func (w *bitWriter) writeBits(v uint64, n uint) {
	if n < 64 {
		v &= (1 << n) - 1
	}
	for n > 0 {
		free := 64 - w.nacc
		if n <= free {
			w.acc |= v << (free - n)
			w.nacc += n
			n = 0
		} else {
			w.acc |= v >> (n - free)
			w.nacc = 64
			n -= free
		}
		for w.nacc >= 8 {
			w.buf = append(w.buf, byte(w.acc>>56))
			w.acc <<= 8
			w.nacc -= 8
		}
	}
}

func (w *bitWriter) writeBit(b uint64) { w.writeBits(b, 1) }

// bytes flushes any partial byte (zero-padded) and returns the buffer.
func (w *bitWriter) bytes() []byte {
	if w.nacc > 0 {
		w.buf = append(w.buf, byte(w.acc>>56))
		w.acc = 0
		w.nacc = 0
	}
	return w.buf
}

// --- bit-level reader -----------------------------------------------------------

type bitReader struct {
	data []byte
	pos  uint // bit offset
	err  bool // ran past the end
}

// readBits returns the next n bits, MSB-first. Past the end it sets err
// and returns 0; callers check err once per decoded point.
func (r *bitReader) readBits(n uint) uint64 {
	var v uint64
	for n > 0 {
		byteIdx := r.pos >> 3
		if byteIdx >= uint(len(r.data)) {
			r.err = true
			return 0
		}
		bitOff := r.pos & 7
		avail := 8 - bitOff
		take := n
		if take > avail {
			take = avail
		}
		chunk := uint64(r.data[byteIdx]>>(avail-take)) & ((1 << take) - 1)
		v = v<<take | chunk
		r.pos += take
		n -= take
	}
	return v
}

func (r *bitReader) readBit() uint64 { return r.readBits(1) }

// --- timestamp delta-of-delta coding --------------------------------------------

// writeDoD encodes a zigzagged delta-of-delta with a four-tier prefix
// code: '0' (dod = 0, the fixed-cadence case), '10'+7 bits, '110'+16
// bits, '1110'+32 bits, '1111'+64 bits.
func writeDoD(w *bitWriter, dod int64) {
	z := uint64(dod<<1) ^ uint64(dod>>63) // zigzag: small magnitudes, small codes
	switch {
	case z == 0:
		w.writeBit(0)
	case z < 1<<7:
		w.writeBits(0b10, 2)
		w.writeBits(z, 7)
	case z < 1<<16:
		w.writeBits(0b110, 3)
		w.writeBits(z, 16)
	case z < 1<<32:
		w.writeBits(0b1110, 4)
		w.writeBits(z, 32)
	default:
		w.writeBits(0b1111, 4)
		w.writeBits(z, 64)
	}
}

func readDoD(r *bitReader) int64 {
	var z uint64
	switch {
	case r.readBit() == 0:
		z = 0
	case r.readBit() == 0:
		z = r.readBits(7)
	case r.readBit() == 0:
		z = r.readBits(16)
	case r.readBit() == 0:
		z = r.readBits(32)
	default:
		z = r.readBits(64)
	}
	return int64(z>>1) ^ -int64(z&1) // un-zigzag
}

// --- block encode ---------------------------------------------------------------

// encodeBlock compresses parallel timestamp/value arrays into a sealed
// block's byte form. The first point is stored raw (64+64 bits); every
// later timestamp is delta-of-delta coded and every later value is
// XOR-coded with the Gorilla leading/meaningful-bits window scheme.
// Timestamps need not be monotone — the codec round-trips any sequence;
// ordering is the Series' concern.
func encodeBlock(ts []int64, vs []float64) []byte {
	w := bitWriter{buf: make([]byte, 0, 16+len(ts)*2)}
	w.writeBits(uint64(ts[0]), 64)
	prevV := math.Float64bits(vs[0])
	w.writeBits(prevV, 64)
	prevT := ts[0]
	var prevDelta int64
	leading, trailing := -1, -1 // no window yet
	for i := 1; i < len(ts); i++ {
		delta := ts[i] - prevT
		writeDoD(&w, delta-prevDelta)
		prevDelta = delta
		prevT = ts[i]

		cur := math.Float64bits(vs[i])
		xor := cur ^ prevV
		prevV = cur
		if xor == 0 {
			w.writeBit(0)
			continue
		}
		w.writeBit(1)
		lz := bits.LeadingZeros64(xor)
		if lz > 31 {
			lz = 31 // 5-bit field
		}
		tz := bits.TrailingZeros64(xor)
		if leading >= 0 && lz >= leading && tz >= trailing {
			// Meaningful bits fit the previous window: reuse it.
			w.writeBit(0)
			w.writeBits(xor>>uint(trailing), uint(64-leading-trailing))
		} else {
			leading, trailing = lz, tz
			sig := 64 - lz - tz
			w.writeBit(1)
			w.writeBits(uint64(lz), 5)
			w.writeBits(uint64(sig-1), 6)
			w.writeBits(xor>>uint(tz), uint(sig))
		}
	}
	return w.bytes()
}

// --- block decode ---------------------------------------------------------------

// blockIter streams a sealed block's points without materializing a
// slice. count bounds the iteration, so arbitrary (corrupt) bytes always
// terminate; after a short read next reports done and failed reports
// true.
type blockIter struct {
	r        bitReader
	count    int
	i        int
	t        int64
	delta    int64
	v        uint64
	leading  int
	trailing int
}

func newBlockIter(data []byte, count int) blockIter {
	return blockIter{r: bitReader{data: data}, count: count, leading: -1, trailing: -1}
}

// next returns the following point; ok is false at the end of the block
// or on a truncated/corrupt bit stream.
func (it *blockIter) next() (t int64, v float64, ok bool) {
	if it.i >= it.count || it.r.err {
		return 0, 0, false
	}
	if it.i == 0 {
		it.t = int64(it.r.readBits(64))
		it.v = it.r.readBits(64)
	} else {
		dod := readDoD(&it.r)
		it.delta += dod
		it.t += it.delta
		if it.r.readBit() == 1 {
			if it.r.readBit() == 1 {
				it.leading = int(it.r.readBits(5))
				sig := int(it.r.readBits(6)) + 1
				it.trailing = 64 - it.leading - sig
			}
			if it.trailing < 0 || it.leading < 0 {
				// Only reachable on corrupt input: a window-reuse code
				// before any window was defined, or sig overflowing it.
				it.r.err = true
				return 0, 0, false
			}
			width := uint(64 - it.leading - it.trailing)
			it.v ^= it.r.readBits(width) << uint(it.trailing)
		}
	}
	if it.r.err {
		return 0, 0, false
	}
	it.i++
	return it.t, math.Float64frombits(it.v), true
}

// failed reports whether iteration stopped because the bit stream was
// truncated or corrupt rather than cleanly exhausted.
func (it *blockIter) failed() bool { return it.r.err }
