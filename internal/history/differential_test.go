package history

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
	"time"
)

// refRing is the naive reference model: the pre-block-engine
// implementation, a raw []Point ring with O(points) scans. The
// differential test drives random append/query sequences through both
// engines and asserts the block engine is observationally identical.
type refRing struct {
	buf   []Point
	start int
	size  int
}

func newRefRing(capacity int) *refRing { return &refRing{buf: make([]Point, capacity)} }

func (r *refRing) at(i int) Point { return r.buf[(r.start+i)%len(r.buf)] }

func (r *refRing) append(t time.Duration, v float64) {
	if r.size > 0 && t < r.at(r.size-1).T {
		return // out of order: dropped
	}
	if r.size < len(r.buf) {
		r.buf[(r.start+r.size)%len(r.buf)] = Point{T: t, V: v}
		r.size++
		return
	}
	r.buf[r.start] = Point{T: t, V: v}
	r.start = (r.start + 1) % len(r.buf)
}

func (r *refRing) rng(t0, t1 time.Duration) []Point {
	var out []Point
	for i := 0; i < r.size; i++ {
		p := r.at(i)
		if p.T >= t0 && p.T <= t1 {
			out = append(out, p)
		}
	}
	return out
}

func (r *refRing) stats(t0, t1 time.Duration) Stats {
	var st Stats
	for i := 0; i < r.size; i++ {
		p := r.at(i)
		if p.T < t0 || p.T > t1 {
			continue
		}
		if st.N == 0 {
			st.Min, st.Max, st.First = p.V, p.V, p
		}
		if p.V < st.Min {
			st.Min = p.V
		}
		if p.V > st.Max {
			st.Max = p.V
		}
		st.Mean += p.V
		st.LastPoint = p
		st.N++
	}
	if st.N > 0 {
		st.Mean /= float64(st.N)
	}
	return st
}

func (r *refRing) trend(t0, t1 time.Duration) (float64, bool) {
	pts := r.rng(t0, t1)
	if len(pts) < 2 {
		return 0, false
	}
	var sumX, sumY, sumXY, sumXX float64
	for _, p := range pts {
		x := p.T.Hours()
		sumX += x
		sumY += p.V
		sumXY += x * p.V
		sumXX += x * x
	}
	n := float64(len(pts))
	den := n*sumXX - sumX*sumX
	if den == 0 {
		return 0, false
	}
	return (n*sumXY - sumX*sumY) / den, true
}

func (r *refRing) downsample(t0, t1 time.Duration, n int) []Point {
	if n <= 0 || t1 <= t0 {
		return nil
	}
	width := (t1 - t0) / time.Duration(n)
	if width <= 0 {
		return nil
	}
	sums := make([]float64, n)
	counts := make([]int, n)
	for _, p := range r.rng(t0, t1) {
		b := int((p.T - t0) / width)
		if b >= n {
			b = n - 1
		}
		sums[b] += p.V
		counts[b]++
	}
	var out []Point
	for b := 0; b < n; b++ {
		if counts[b] == 0 {
			continue
		}
		out = append(out, Point{T: t0 + width*time.Duration(b) + width/2, V: sums[b] / float64(counts[b])})
	}
	return out
}

// eqVal reports observational equality of two sample values: NaN matches
// NaN, everything else compares exactly (±Inf included).
func eqVal(a, b float64) bool {
	if math.IsNaN(a) && math.IsNaN(b) {
		return true
	}
	return a == b
}

// approxVal allows the tiny reassociation drift of summary-merged sums
// (block subtotals are grouped, the naive scan is flat).
func approxVal(a, b float64) bool {
	if eqVal(a, b) {
		return true
	}
	scale := math.Max(math.Abs(a), math.Abs(b))
	return math.Abs(a-b) <= 1e-9*scale
}

// specialValues are the adversarial float64s mixed into the stream.
var specialValues = []float64{
	math.NaN(), math.Inf(1), math.Inf(-1), 0, math.Copysign(0, -1),
	5e-324, -5e-324, 1e-310, math.MaxFloat64, -math.MaxFloat64, math.SmallestNonzeroFloat64,
}

// TestDifferentialEngineVsNaiveRing drives random append/query sequences
// against the compressed block engine and the naive reference ring,
// asserting identical Range/Stats/Downsample/Trend/Len/Last results —
// including across seal boundaries, point-exact eviction, out-of-order
// drops, and NaN/±Inf/denormal values. Mean and Trend tolerate the
// reassociation drift inherent to O(blocks) summary merging; everything
// else must match exactly.
func TestDifferentialEngineVsNaiveRing(t *testing.T) {
	capacities := []int{5, 32, 100, 600, 1500}
	for _, capacity := range capacities {
		capacity := capacity
		t.Run(fmt.Sprintf("cap%d", capacity), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(0xC0FFEE + capacity)))
			s := NewSeries(capacity)
			ref := newRefRing(capacity)
			now := time.Duration(0)
			appends := 0
			for round := 0; round < 40; round++ {
				// A burst of appends: mostly monotone with jittered
				// cadence, some equal timestamps, occasional out-of-order
				// (dropped by both), values quantized with specials mixed in.
				burst := rng.Intn(3*headCapacity/2) + 1
				for i := 0; i < burst; i++ {
					var step time.Duration
					switch rng.Intn(10) {
					case 0:
						step = 0 // equal timestamp: allowed
					case 1:
						step = -time.Duration(rng.Intn(5000)+1) * time.Millisecond // out of order: dropped
					default:
						step = time.Duration(rng.Intn(2000)+1) * time.Millisecond
					}
					ts := now + step
					if step > 0 {
						now = ts
					}
					var v float64
					switch rng.Intn(8) {
					case 0:
						v = specialValues[rng.Intn(len(specialValues))]
					case 1:
						v = rng.NormFloat64() * 1e6
					default:
						v = 40 + float64(rng.Intn(64))*0.5 // quantized monitor reading
					}
					s.Append(ts, v)
					ref.append(ts, v)
					appends++
				}
				checkDifferential(t, s, ref, rng, now)
			}
			if appends <= capacity {
				t.Fatalf("generator never exercised eviction (appends=%d cap=%d)", appends, capacity)
			}
		})
	}
}

func checkDifferential(t *testing.T, s *Series, ref *refRing, rng *rand.Rand, now time.Duration) {
	t.Helper()
	if s.Len() != ref.size {
		t.Fatalf("Len = %d, ref %d", s.Len(), ref.size)
	}
	gotLast, gotOK := s.Last()
	if ref.size == 0 {
		if gotOK {
			t.Fatal("Last ok on empty series")
		}
	} else {
		wantLast := ref.at(ref.size - 1)
		if !gotOK || gotLast.T != wantLast.T || !eqVal(gotLast.V, wantLast.V) {
			t.Fatalf("Last = %v,%v want %v", gotLast, gotOK, wantLast)
		}
	}
	for q := 0; q < 6; q++ {
		t0, t1 := randWindow(rng, now)
		gotR, wantR := s.Range(t0, t1), ref.rng(t0, t1)
		if len(gotR) != len(wantR) {
			t.Fatalf("Range(%v,%v) len %d, ref %d", t0, t1, len(gotR), len(wantR))
		}
		for i := range gotR {
			if gotR[i].T != wantR[i].T || !eqVal(gotR[i].V, wantR[i].V) {
				t.Fatalf("Range(%v,%v)[%d] = %v, ref %v", t0, t1, i, gotR[i], wantR[i])
			}
		}

		gotS, wantS := s.Stats(t0, t1), ref.stats(t0, t1)
		if gotS.N != wantS.N ||
			!eqVal(gotS.Min, wantS.Min) || !eqVal(gotS.Max, wantS.Max) ||
			gotS.First != wantS.First && !(gotS.First.T == wantS.First.T && eqVal(gotS.First.V, wantS.First.V)) ||
			gotS.LastPoint.T != wantS.LastPoint.T || !eqVal(gotS.LastPoint.V, wantS.LastPoint.V) {
			t.Fatalf("Stats(%v,%v) = %+v, ref %+v", t0, t1, gotS, wantS)
		}
		if !approxVal(gotS.Mean, wantS.Mean) {
			t.Fatalf("Stats(%v,%v).Mean = %v, ref %v", t0, t1, gotS.Mean, wantS.Mean)
		}

		n := rng.Intn(64) + 1
		gotD, wantD := s.Downsample(t0, t1, n), ref.downsample(t0, t1, n)
		if len(gotD) != len(wantD) {
			t.Fatalf("Downsample(%v,%v,%d) len %d, ref %d", t0, t1, n, len(gotD), len(wantD))
		}
		for i := range gotD {
			if gotD[i].T != wantD[i].T || !eqVal(gotD[i].V, wantD[i].V) {
				t.Fatalf("Downsample(%v,%v,%d)[%d] = %v, ref %v", t0, t1, n, i, gotD[i], wantD[i])
			}
		}

		// Trend: only assert when the window has two distinct timestamps —
		// with all-identical x the determinant is an exact fp zero for the
		// flat scan but may round to ±ε when merged from block moments.
		if distinctTimestamps(wantR) >= 2 {
			gotTr, gotOK := s.Trend(t0, t1)
			wantTr, wantOK := ref.trend(t0, t1)
			if gotOK != wantOK {
				t.Fatalf("Trend(%v,%v) ok = %v, ref %v", t0, t1, gotOK, wantOK)
			}
			if gotOK && !eqVal(gotTr, wantTr) && !trendClose(gotTr, wantTr) {
				t.Fatalf("Trend(%v,%v) = %v, ref %v", t0, t1, gotTr, wantTr)
			}
		}
	}
}

func randWindow(rng *rand.Rand, now time.Duration) (time.Duration, time.Duration) {
	switch rng.Intn(8) {
	case 0:
		return 0, now + time.Hour // everything
	case 1:
		hi := time.Duration(rng.Int63n(int64(now) + 1))
		return hi + time.Second, hi // inverted: empty
	default:
		a := time.Duration(rng.Int63n(int64(now) + 1))
		b := time.Duration(rng.Int63n(int64(now) + 1))
		if a > b {
			a, b = b, a
		}
		return a, b
	}
}

func distinctTimestamps(pts []Point) int {
	n := 0
	for i, p := range pts {
		if i == 0 || p.T != pts[i-1].T {
			n++
		}
	}
	return n
}

// trendClose tolerates least-squares cancellation amplified by moment
// merging: slopes must agree to 1e-6 relative (or absolutely when tiny).
func trendClose(a, b float64) bool {
	if math.IsNaN(a) && math.IsNaN(b) {
		return true
	}
	scale := math.Max(math.Abs(a), math.Abs(b))
	return math.Abs(a-b) <= 1e-6*scale || math.Abs(a-b) <= 1e-9
}

// TestSummaryFastPath pins the acceptance criterion that Stats over a
// long series is answered from block summaries: a full-range query over
// a fully sealed chain must decode zero blocks, and a narrow window must
// decode at most the two straddling blocks (plus the trimmed front
// block when eviction has started).
func TestSummaryFastPath(t *testing.T) {
	const capacity = 16 * headCapacity
	s := NewSeries(capacity)
	for i := 0; i < capacity; i++ {
		s.Append(time.Duration(i)*time.Second, float64(i%17))
	}
	full := time.Duration(capacity) * time.Second

	d0, h0 := mDecodes.Load(), mSummaryHits.Load()
	st := s.Stats(0, full)
	if st.N != capacity {
		t.Fatalf("Stats.N = %d, want %d", st.N, capacity)
	}
	if dec := mDecodes.Load() - d0; dec != 0 {
		t.Fatalf("full-range Stats decoded %d blocks, want 0 (summary path)", dec)
	}
	// 15 sealed blocks: the final headCapacity points are still mutable head.
	if hits := mSummaryHits.Load() - h0; hits != 15 {
		t.Fatalf("full-range Stats summary hits = %d, want 15", hits)
	}

	// A window straddling two blocks: exactly those two decode.
	d0 = mDecodes.Load()
	mid := time.Duration(headCapacity) * time.Second
	s.Stats(mid-10*time.Second, mid+10*time.Second)
	if dec := mDecodes.Load() - d0; dec != 2 {
		t.Fatalf("straddling Stats decoded %d blocks, want 2", dec)
	}

	// Trend rides the same moments: full range decodes nothing.
	d0 = mDecodes.Load()
	if _, ok := s.Trend(0, full); !ok {
		t.Fatal("Trend not ok")
	}
	if dec := mDecodes.Load() - d0; dec != 0 {
		t.Fatalf("full-range Trend decoded %d blocks, want 0", dec)
	}

	// Once eviction trims the front block, it is the only extra decode.
	s.Append(time.Duration(capacity)*time.Second, 1)
	d0 = mDecodes.Load()
	s.Stats(0, full+time.Hour)
	if dec := mDecodes.Load() - d0; dec != 1 {
		t.Fatalf("trimmed-front Stats decoded %d blocks, want 1", dec)
	}
}
