package history

import (
	"fmt"
	"io"
	"math"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func sec(n int) time.Duration { return time.Duration(n) * time.Second }

func TestAppendAndLast(t *testing.T) {
	s := NewSeries(8)
	if _, ok := s.Last(); ok {
		t.Fatal("empty series has Last")
	}
	s.Append(sec(1), 10)
	s.Append(sec(2), 20)
	p, ok := s.Last()
	if !ok || p.T != sec(2) || p.V != 20 {
		t.Fatalf("Last = %+v", p)
	}
	if s.Len() != 2 {
		t.Fatalf("Len = %d", s.Len())
	}
}

func TestRingEviction(t *testing.T) {
	s := NewSeries(4)
	for i := 1; i <= 10; i++ {
		s.Append(sec(i), float64(i))
	}
	if s.Len() != 4 {
		t.Fatalf("Len = %d", s.Len())
	}
	pts := s.Range(0, sec(100))
	if len(pts) != 4 || pts[0].V != 7 || pts[3].V != 10 {
		t.Fatalf("Range = %v", pts)
	}
}

func TestOutOfOrderDropped(t *testing.T) {
	s := NewSeries(8)
	s.Append(sec(5), 1)
	s.Append(sec(3), 2) // clock skew: dropped
	s.Append(sec(6), 3)
	if s.Len() != 2 {
		t.Fatalf("Len = %d", s.Len())
	}
}

func TestRangeBounds(t *testing.T) {
	s := NewSeries(16)
	for i := 1; i <= 10; i++ {
		s.Append(sec(i), float64(i))
	}
	pts := s.Range(sec(3), sec(7))
	if len(pts) != 5 || pts[0].T != sec(3) || pts[4].T != sec(7) {
		t.Fatalf("Range = %v", pts)
	}
	if len(s.Range(sec(20), sec(30))) != 0 {
		t.Fatal("empty range returned points")
	}
}

func TestStats(t *testing.T) {
	s := NewSeries(16)
	for i, v := range []float64{5, 1, 9, 3} {
		s.Append(sec(i+1), v)
	}
	st := s.Stats(sec(1), sec(4))
	if st.N != 4 || st.Min != 1 || st.Max != 9 || st.Mean != 4.5 {
		t.Fatalf("Stats = %+v", st)
	}
	if st.First.V != 5 || st.LastPoint.V != 3 {
		t.Fatalf("First/Last = %+v", st)
	}
	if empty := s.Stats(sec(100), sec(200)); empty.N != 0 {
		t.Fatalf("empty Stats = %+v", empty)
	}
}

func TestTrend(t *testing.T) {
	s := NewSeries(64)
	// Value climbs 1 unit per minute = 60/hour.
	for i := 0; i <= 30; i++ {
		s.Append(time.Duration(i)*time.Minute, float64(i))
	}
	slope, ok := s.Trend(0, time.Hour)
	if !ok || math.Abs(slope-60) > 0.001 {
		t.Fatalf("Trend = %v, %v; want 60/hour", slope, ok)
	}
	// Too few points.
	s2 := NewSeries(4)
	s2.Append(sec(1), 1)
	if _, ok := s2.Trend(0, sec(10)); ok {
		t.Fatal("Trend with one point succeeded")
	}
	// Zero time spread.
	s3 := NewSeries(4)
	s3.Append(sec(1), 1)
	s3.Append(sec(1), 2)
	if _, ok := s3.Trend(0, sec(10)); ok {
		t.Fatal("Trend with zero spread succeeded")
	}
}

func TestDownsample(t *testing.T) {
	s := NewSeries(256)
	for i := 0; i < 100; i++ {
		s.Append(time.Duration(i)*time.Second, float64(i%10))
	}
	pts := s.Downsample(0, sec(100), 10)
	if len(pts) != 10 {
		t.Fatalf("Downsample returned %d buckets", len(pts))
	}
	for _, p := range pts {
		if math.Abs(p.V-4.5) > 0.001 {
			t.Fatalf("bucket mean = %v, want 4.5", p.V)
		}
	}
	if s.Downsample(0, sec(100), 0) != nil {
		t.Fatal("zero buckets not rejected")
	}
	if s.Downsample(sec(5), sec(5), 4) != nil {
		t.Fatal("empty interval not rejected")
	}
}

func TestDownsampleSparse(t *testing.T) {
	s := NewSeries(16)
	s.Append(sec(1), 10)
	s.Append(sec(99), 20)
	pts := s.Downsample(0, sec(100), 10)
	if len(pts) != 2 {
		t.Fatalf("sparse downsample = %v", pts)
	}
}

func TestStore(t *testing.T) {
	st := NewStore(16)
	st.Append("n1", "load.1", sec(1), 0.5)
	st.Append("n1", "load.1", sec(2), 0.7)
	st.Append("n1", "mem.free.kb", sec(1), 1000)
	st.Append("n2", "load.1", sec(1), 2.5)

	if s := st.Series("n1", "load.1"); s == nil || s.Len() != 2 {
		t.Fatal("Series lookup failed")
	}
	if st.Series("ghost", "load.1") != nil {
		t.Fatal("ghost series not nil")
	}
	nodes := st.Nodes()
	if len(nodes) != 2 || nodes[0] != "n1" || nodes[1] != "n2" {
		t.Fatalf("Nodes = %v", nodes)
	}
	metrics := st.Metrics("n1")
	if len(metrics) != 2 || metrics[0] != "load.1" {
		t.Fatalf("Metrics = %v", metrics)
	}
	cmp := st.Compare("load.1", 0, sec(10))
	if len(cmp) != 2 || cmp["n2"].Mean != 2.5 {
		t.Fatalf("Compare = %+v", cmp)
	}
}

// Property: Range returns exactly the points within bounds, in order, for
// any append sequence (monotone timestamps).
func TestPropertyRangeCorrect(t *testing.T) {
	f := func(vals []uint8, loSel, hiSel uint8) bool {
		s := NewSeries(32)
		for i, v := range vals {
			s.Append(sec(i), float64(v))
		}
		total := len(vals)
		kept := total
		if kept > 32 {
			kept = 32
		}
		lo := int(loSel) % (total + 1)
		hi := lo + int(hiSel)%(total+1-lo)
		pts := s.Range(sec(lo), sec(hi))
		// Recompute expectation from the retained suffix.
		first := total - kept
		want := 0
		for i := first; i < total; i++ {
			if i >= lo && i <= hi {
				want++
			}
		}
		if len(pts) != want {
			return false
		}
		for i := 1; i < len(pts); i++ {
			if pts[i].T < pts[i-1].T {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: Stats.Mean is always within [Min, Max].
func TestPropertyStatsBounds(t *testing.T) {
	f := func(vals []int8) bool {
		s := NewSeries(64)
		for i, v := range vals {
			s.Append(sec(i), float64(v))
		}
		st := s.Stats(0, sec(len(vals)+1))
		if st.N == 0 {
			return len(vals) == 0 || len(vals) > 64
		}
		return st.Min <= st.Mean && st.Mean <= st.Max
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestStoreConcurrentReadsDuringAppend hammers Append against the full
// read-side API (Compare, Series queries, Nodes/Metrics, SaveTo) from
// concurrent goroutines. Under -race this pins the store's contract that
// readers never race appends to the same series — the exact shape of the
// dashboard's Compare running against live agent ingest.
func TestStoreConcurrentReadsDuringAppend(t *testing.T) {
	st := NewStore(256)
	const (
		writers = 8
		readers = 8
		nodes   = 32
		iters   = 500
	)
	nodeName := func(i int) string { return fmt.Sprintf("n%02d", i%nodes) }

	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				st.Append(nodeName(w*7+i), "load.1", sec(i), float64(i))
			}
		}(w)
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				switch i % 4 {
				case 0:
					st.Compare("load.1", 0, sec(iters))
				case 1:
					if s := st.Series(nodeName(r*5+i), "load.1"); s != nil {
						s.Range(0, sec(iters))
						s.Downsample(0, sec(iters), 8)
						s.Last()
						s.Trend(0, sec(iters))
					}
				case 2:
					st.Nodes()
					st.Metrics(nodeName(i))
				case 3:
					st.SaveTo(io.Discard)
				}
			}
		}(r)
	}
	wg.Wait()

	cmp := st.Compare("load.1", 0, sec(iters))
	if len(cmp) == 0 {
		t.Fatal("Compare returned no nodes after concurrent appends")
	}
	for n, s := range cmp {
		if s.N == 0 {
			t.Fatalf("node %s has empty stats", n)
		}
	}
}
