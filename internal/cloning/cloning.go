// Package cloning implements ClusterWorX's reliable-multicast disk cloning
// (paper §4) and the unicast baseline it displaced.
//
// Protocol, as the paper describes it:
//
//  1. Multicast burst: the cloning host multicasts every image chunk once;
//     all participating nodes listen and buffer the data locally.
//  2. Acknowledgement phase: nodes acknowledge reception "in a round robin
//     fashion controlled by the cloning host"; a node still lacking image
//     data has the missing parts transferred "on a peer-to-peer base with
//     the master" (unicast repair).
//  3. "As soon as a node gets all the image data, it starts the cloning
//     process locally and reboots itself to operational mode."
//
// Control packets and repairs ride the same lossy network as data, so the
// session retries polls on timeout and re-requests chunks lost during
// repair; the protocol converges for any loss rate below one.
package cloning

import (
	"fmt"
	"sort"
	"time"

	"clusterworx/internal/clock"
	"clusterworx/internal/image"
	"clusterworx/internal/simnet"
)

// Params tunes a cloning session. The zero value selects defaults.
type Params struct {
	// ChunkHeader is per-chunk packet overhead in bytes (default 64).
	ChunkHeader int
	// CtrlSize is the base size of poll/ack packets (default 64).
	CtrlSize int
	// PollTimeout is how long the master waits for an acknowledgement
	// before re-polling (default 250 ms).
	PollTimeout time.Duration
	// MaxNakChunks caps the missing-chunk list in one acknowledgement;
	// the rest is reported on the next round (default 256).
	MaxNakChunks int
	// DiskBandwidth is the node's local image-write rate in bytes/s
	// (default 20 MB/s, a 2002-era IDE disk).
	DiskBandwidth float64
	// RebootTime is the firmware+kernel boot time after flashing
	// (default 3 s — a LinuxBIOS node; pass ~40 s for a legacy BIOS).
	RebootTime time.Duration
}

func (p Params) withDefaults() Params {
	if p.ChunkHeader == 0 {
		p.ChunkHeader = 64
	}
	if p.CtrlSize == 0 {
		p.CtrlSize = 64
	}
	if p.PollTimeout == 0 {
		p.PollTimeout = 250 * time.Millisecond
	}
	if p.MaxNakChunks == 0 {
		p.MaxNakChunks = 256
	}
	if p.DiskBandwidth == 0 {
		p.DiskBandwidth = 20e6
	}
	if p.RebootTime == 0 {
		p.RebootTime = 3 * time.Second
	}
	return p
}

// WithDefaults exposes parameter defaulting (integration code that builds
// clients and sessions separately must hand both the same resolved set).
func (p Params) WithDefaults() Params { return p.withDefaults() }

// Wire messages. Chunks carry their index and manifest checksum; payload
// bytes themselves are represented by packet size, not materialized.
type (
	chunkMsg struct {
		ImageID string
		Index   int
		Sum     [32]byte
	}
	pollMsg struct{ Seq int }
	ackMsg  struct {
		Seq      int
		Missing  []int
		Complete bool
	}
	upMsg struct {
		Node    simnet.Addr
		ImageID string
	}
	upAckMsg struct{ ImageID string }
)

// Result summarizes a finished session.
type Result struct {
	Nodes      int
	ImageBytes int64

	// Phase completion offsets from session start, in virtual time.
	BurstDone time.Duration // multicast burst fully transmitted
	AllData   time.Duration // every node holds the complete image
	AllUp     time.Duration // every node flashed, rebooted, operational

	// Wire accounting.
	MulticastBytes int64
	RepairBytes    int64
	CtrlBytes      int64
	Polls          int
	RepairChunks   int
	Rounds         int // round-robin passes over the node list

	NodeUp map[simnet.Addr]time.Duration
}

// Client is the node-side cloning agent. Attach one per participating
// node; it owns the endpoint's receive handler for the session.
type Client struct {
	clk    *clock.Clock
	ep     *simnet.Endpoint
	params Params
	img    *image.Image

	have       []bool
	haveCount  int
	flashBytes int64 // bytes the flash step must write (the delta)
	sumErr     error
	flashing   bool
	opAt       time.Duration
	up         bool
	onUp       func()

	master  simnet.Addr // where to report operational state, if set
	upAcked bool
	upTimer *clock.Timer
}

// NewClient prepares a node to receive img. The client starts listening
// immediately.
func NewClient(clk *clock.Clock, ep *simnet.Endpoint, img *image.Image, params Params) *Client {
	return NewUpdateClient(clk, ep, img, nil, params)
}

// NewUpdateClient prepares a node that already holds old for an
// incremental update to img (§4: "update files or packages on the nodes
// in parallel"): chunks whose checksum already exists locally are marked
// present, so only the delta crosses the network and is written to disk.
func NewUpdateClient(clk *clock.Clock, ep *simnet.Endpoint, img, old *image.Image, params Params) *Client {
	c := &Client{
		clk:        clk,
		ep:         ep,
		params:     params.withDefaults(),
		img:        img,
		have:       make([]bool, img.NumChunks()),
		flashBytes: img.Size,
	}
	if old != nil {
		existing := make(map[[32]byte]struct{}, old.NumChunks())
		for i := 0; i < old.NumChunks(); i++ {
			existing[old.ChunkSum(i)] = struct{}{}
		}
		var deltaBytes int64
		for i := range c.have {
			if _, ok := existing[img.ChunkSum(i)]; ok {
				c.have[i] = true
				c.haveCount++
			} else {
				deltaBytes += int64(img.ChunkLen(i))
			}
		}
		c.flashBytes = deltaBytes
	}
	ep.OnReceive(c.handle)
	if c.Complete() {
		// Empty delta: nothing to transfer, but the node still reboots
		// into the new (identical-content, new-version) image.
		c.startFlash()
	}
	return c
}

// OnUp installs a callback invoked when the node reboots to operational.
func (c *Client) OnUp(fn func()) { c.onUp = fn }

// ReportUpTo makes the client notify master when it becomes operational,
// retrying until acknowledged — the report must survive a lossy network.
func (c *Client) ReportUpTo(master simnet.Addr) { c.master = master }

// Complete reports whether all image data has been received.
func (c *Client) Complete() bool { return c.haveCount == len(c.have) }

// Operational reports whether the node has flashed and rebooted.
func (c *Client) Operational() bool { return c.up }

// Verified reports whether every received chunk matched the manifest.
func (c *Client) Verified() error { return c.sumErr }

// HaveCount returns the number of chunks received so far.
func (c *Client) HaveCount() int { return c.haveCount }

func (c *Client) handle(pkt simnet.Packet) {
	switch m := pkt.Payload.(type) {
	case chunkMsg:
		c.acceptChunk(m)
	case pollMsg:
		c.replyPoll(pkt.Src, m)
	case upAckMsg:
		// Sessions echo the image being acknowledged: an ack meant for a
		// previous session's client (still in flight when this client took
		// over the endpoint) must not silence this one.
		if m.ImageID != c.img.ID() {
			return
		}
		c.upAcked = true
		if c.upTimer != nil {
			c.upTimer.Stop()
		}
	}
}

func (c *Client) acceptChunk(m chunkMsg) {
	if m.ImageID != c.img.ID() || m.Index < 0 || m.Index >= len(c.have) {
		return // stale session or corrupt index: ignore
	}
	if c.have[m.Index] {
		return // duplicate (e.g. repair raced a re-request)
	}
	if m.Sum != c.img.ChunkSum(m.Index) {
		if c.sumErr == nil {
			c.sumErr = fmt.Errorf("cloning: chunk %d checksum mismatch", m.Index)
		}
		return
	}
	c.have[m.Index] = true
	c.haveCount++
	if c.Complete() && !c.flashing {
		c.startFlash()
	}
}

func (c *Client) replyPoll(master simnet.Addr, m pollMsg) {
	if c.Complete() {
		c.ep.Send(master, ackMsg{Seq: m.Seq, Complete: true}, c.params.CtrlSize)
		return
	}
	missing := make([]int, 0, c.params.MaxNakChunks)
	for i, ok := range c.have {
		if !ok {
			missing = append(missing, i)
			if len(missing) == c.params.MaxNakChunks {
				break
			}
		}
	}
	size := c.params.CtrlSize + 4*len(missing)
	c.ep.Send(master, ackMsg{Seq: m.Seq, Missing: missing}, size)
}

// startFlash writes the received data to the local disk and reboots, per
// the paper's step 3. A full clone writes the whole image; an incremental
// update writes only the delta. The node is operational RebootTime after
// the write.
func (c *Client) startFlash() {
	c.flashing = true
	writeTime := time.Duration(float64(c.flashBytes) / c.params.DiskBandwidth * float64(time.Second))
	c.clk.AfterFunc(writeTime+c.params.RebootTime, func() {
		c.up = true
		c.opAt = c.clk.Now()
		if c.master != "" {
			c.sendUp()
		}
		if c.onUp != nil {
			c.onUp()
		}
	})
}

// sendUp reports operational state and re-arms a retry until acked.
func (c *Client) sendUp() {
	if c.upAcked {
		return
	}
	c.ep.Send(c.master, upMsg{Node: c.ep.Addr(), ImageID: c.img.ID()}, c.params.CtrlSize)
	c.upTimer = c.clk.AfterFunc(2*c.params.PollTimeout, c.sendUp)
}

// Session is the master-side state machine.
type Session struct {
	clk    *clock.Clock
	net    *simnet.Network
	ep     *simnet.Endpoint
	group  string
	img    *image.Image
	params Params
	nodes  []simnet.Addr

	start     time.Duration
	sendList  []int // chunk indexes to multicast (all for a full clone)
	nextSend  int
	burstDone time.Duration

	pending   []simnet.Addr // round-robin queue of incomplete nodes
	pollSeq   int
	pollTimer *clock.Timer
	polled    simnet.Addr
	complete  map[simnet.Addr]bool
	dataDone  bool

	res      Result
	upCount  int
	onFinish func(Result)
	finished bool
}

// NewSession prepares a full multicast cloning session from the master
// endpoint to the named nodes, which must all have joined group.
func NewSession(clk *clock.Clock, net *simnet.Network, ep *simnet.Endpoint, group string, img *image.Image, nodes []simnet.Addr, params Params) *Session {
	return NewUpdateSession(clk, net, ep, group, img, nil, nodes, params)
}

// NewUpdateSession prepares an incremental session: only the chunks of img
// absent from old are multicast. Clients must be created with
// NewUpdateClient against the same old image.
func NewUpdateSession(clk *clock.Clock, net *simnet.Network, ep *simnet.Endpoint, group string, img, old *image.Image, nodes []simnet.Addr, params Params) *Session {
	s := &Session{
		clk:      clk,
		net:      net,
		ep:       ep,
		group:    group,
		img:      img,
		sendList: img.Diff(old),
		params:   params.withDefaults(),
		nodes:    append([]simnet.Addr(nil), nodes...),
		complete: make(map[simnet.Addr]bool, len(nodes)),
	}
	s.res.Nodes = len(nodes)
	s.res.ImageBytes = img.Size
	s.res.NodeUp = make(map[simnet.Addr]time.Duration, len(nodes))
	ep.OnReceive(s.handle)
	return s
}

// OnFinish installs a completion callback delivering the final Result.
func (s *Session) OnFinish(fn func(Result)) { s.onFinish = fn }

// Start begins the multicast burst.
func (s *Session) Start() {
	s.start = s.clk.Now()
	s.sendNextChunk()
}

// Done reports whether every node is operational.
func (s *Session) Done() bool { return s.finished }

// Result returns the session summary; valid once Done.
func (s *Session) Result() Result { return s.res }

func (s *Session) sendNextChunk() {
	if s.nextSend >= len(s.sendList) {
		s.burstDone = s.clk.Now()
		s.res.BurstDone = s.burstDone - s.start
		s.startRepairPhase()
		return
	}
	i := s.sendList[s.nextSend]
	s.nextSend++
	size := s.img.ChunkLen(i) + s.params.ChunkHeader
	msg := chunkMsg{ImageID: s.img.ID(), Index: i, Sum: s.img.ChunkSum(i)}
	txDone := s.ep.Multicast(s.group, msg, size)
	s.res.MulticastBytes += int64(size)
	s.clk.At(txDone, s.sendNextChunk)
}

func (s *Session) startRepairPhase() {
	s.pending = append(s.pending[:0], s.nodes...)
	if len(s.pending) == 0 {
		s.allData()
		return
	}
	s.res.Rounds = 1
	s.pollNext()
}

// pollNext polls the head of the round-robin queue.
func (s *Session) pollNext() {
	for len(s.pending) > 0 && s.complete[s.pending[0]] {
		s.pending = s.pending[1:]
	}
	if len(s.pending) == 0 {
		// Round over: requeue incomplete nodes for another pass.
		for _, n := range s.nodes {
			if !s.complete[n] {
				s.pending = append(s.pending, n)
			}
		}
		if len(s.pending) == 0 {
			s.allData()
			return
		}
		s.res.Rounds++
	}
	node := s.pending[0]
	s.pending = s.pending[1:]
	s.polled = node
	s.pollSeq++
	seq := s.pollSeq
	s.ep.Send(node, pollMsg{Seq: seq}, s.params.CtrlSize)
	s.res.Polls++
	s.res.CtrlBytes += int64(s.params.CtrlSize)
	s.pollTimer = s.clk.AfterFunc(s.params.PollTimeout, func() {
		// Acknowledgement lost: put the node back and move on.
		s.pending = append(s.pending, node)
		s.pollNext()
	})
}

func (s *Session) handle(pkt simnet.Packet) {
	switch m := pkt.Payload.(type) {
	case ackMsg:
		s.handleAck(pkt.Src, pkt.Size, m)
	case upMsg:
		s.handleUp(m)
	}
}

func (s *Session) handleAck(src simnet.Addr, size int, m ackMsg) {
	if m.Seq != s.pollSeq || src != s.polled {
		return // stale acknowledgement from a timed-out poll
	}
	if s.pollTimer != nil {
		s.pollTimer.Stop()
	}
	s.res.CtrlBytes += int64(size)
	if m.Complete {
		s.complete[src] = true
		if len(s.complete) == len(s.nodes) {
			s.allData()
			return
		}
		s.pollNext()
		return
	}
	// Unicast the missing chunks, then move round-robin to the next node;
	// this node is re-polled on a later pass.
	var last time.Duration
	for _, idx := range m.Missing {
		if idx < 0 || idx >= s.img.NumChunks() {
			continue
		}
		sz := s.img.ChunkLen(idx) + s.params.ChunkHeader
		last = s.ep.Send(src, chunkMsg{ImageID: s.img.ID(), Index: idx, Sum: s.img.ChunkSum(idx)}, sz)
		s.res.RepairBytes += int64(sz)
		s.res.RepairChunks++
	}
	s.pending = append(s.pending, src)
	if last > s.clk.Now() {
		s.clk.At(last, s.pollNext)
	} else {
		s.pollNext()
	}
}

func (s *Session) allData() {
	if s.dataDone {
		return
	}
	s.dataDone = true
	s.res.AllData = s.clk.Now() - s.start
}

func (s *Session) handleUp(m upMsg) {
	// Always acknowledge — echoing the reported image so a straggling
	// client from an earlier session stops retrying — but only count
	// reports for THIS session's image: a late duplicate from a previous
	// clone must not satisfy this one.
	s.ep.Send(m.Node, upAckMsg{ImageID: m.ImageID}, s.params.CtrlSize)
	if m.ImageID != s.img.ID() {
		return
	}
	if _, dup := s.res.NodeUp[m.Node]; dup {
		return
	}
	s.res.NodeUp[m.Node] = s.clk.Now() - s.start
	s.upCount++
	if s.upCount == len(s.nodes) {
		s.res.AllUp = s.clk.Now() - s.start
		s.finished = true
		if s.onFinish != nil {
			s.onFinish(s.res)
		}
	}
}

// nodeAddrs returns generated addresses node000..node(n-1).
func nodeAddrs(n int) []simnet.Addr {
	out := make([]simnet.Addr, n)
	for i := range out {
		out[i] = simnet.Addr(fmt.Sprintf("node%03d", i))
	}
	return out
}

// RunMulticast builds a fresh Fast-Ethernet fabric with n nodes, clones
// img to all of them with the multicast protocol, and returns the result.
// loss is the per-receiver packet drop probability; seed makes it
// reproducible.
func RunMulticast(img *image.Image, n int, loss float64, seed int64, params Params) Result {
	clk := clock.New()
	net := simnet.New(clk, 100*time.Microsecond)
	net.Seed(seed)
	master := net.Attach("master", simnet.FastEthernet)
	addrs := nodeAddrs(n)
	params = params.withDefaults()

	sess := NewSession(clk, net, master, "clone", img, addrs, params)
	for _, a := range addrs {
		ep := net.Attach(a, simnet.FastEthernet)
		net.Join("clone", a)
		c := NewClient(clk, ep, img, params)
		c.ReportUpTo("master")
	}
	net.SetLoss(loss)
	sess.Start()
	clk.RunUntilIdle()
	if !sess.Done() {
		panic("cloning: multicast session did not converge")
	}
	return sess.Result()
}

// RunUnicast clones img to n nodes with the pre-multicast baseline: the
// master streams the full image to each node in turn over unicast,
// repairing per-node before moving on. Flash and reboot overlap with the
// next node's transfer, as they would in practice.
func RunUnicast(img *image.Image, n int, loss float64, seed int64, params Params) Result {
	clk := clock.New()
	net := simnet.New(clk, 100*time.Microsecond)
	net.Seed(seed)
	master := net.Attach("master", simnet.FastEthernet)
	addrs := nodeAddrs(n)
	params = params.withDefaults()

	res := Result{Nodes: n, ImageBytes: img.Size, NodeUp: make(map[simnet.Addr]time.Duration, n)}
	clients := make(map[simnet.Addr]*Client, n)
	upCount := 0
	for _, a := range addrs {
		ep := net.Attach(a, simnet.FastEthernet)
		c := NewClient(clk, ep, img, params)
		c.ReportUpTo("master")
		clients[a] = c
	}
	net.SetLoss(loss)

	u := &unicastMaster{
		clk: clk, ep: master, img: img, params: params,
		queue: addrs, res: &res, upCount: &upCount,
	}
	master.OnReceive(u.handle)
	u.startNode()
	clk.RunUntilIdle()
	if upCount != n {
		panic("cloning: unicast session did not converge")
	}
	return res
}

// unicastMaster streams the image node by node.
type unicastMaster struct {
	clk     *clock.Clock
	ep      *simnet.Endpoint
	img     *image.Image
	params  Params
	queue   []simnet.Addr
	current simnet.Addr
	chunk   int
	seq     int
	timer   *clock.Timer
	res     *Result
	upCount *int
	start   time.Duration
}

func (u *unicastMaster) startNode() {
	if len(u.queue) == 0 {
		u.res.AllData = u.clk.Now() - u.start
		return
	}
	u.current = u.queue[0]
	u.queue = u.queue[1:]
	u.chunk = 0
	u.sendNext()
}

func (u *unicastMaster) sendNext() {
	if u.chunk >= u.img.NumChunks() {
		u.poll()
		return
	}
	i := u.chunk
	u.chunk++
	size := u.img.ChunkLen(i) + u.params.ChunkHeader
	txDone := u.ep.Send(u.current, chunkMsg{ImageID: u.img.ID(), Index: i, Sum: u.img.ChunkSum(i)}, size)
	u.res.RepairBytes += int64(size) // unicast baseline: all bytes are per-node
	u.clk.At(txDone, u.sendNext)
}

func (u *unicastMaster) poll() {
	u.seq++
	seq := u.seq
	u.ep.Send(u.current, pollMsg{Seq: seq}, u.params.CtrlSize)
	u.res.Polls++
	u.res.CtrlBytes += int64(u.params.CtrlSize)
	u.timer = u.clk.AfterFunc(u.params.PollTimeout, u.poll)
}

func (u *unicastMaster) handle(pkt simnet.Packet) {
	switch m := pkt.Payload.(type) {
	case ackMsg:
		if m.Seq != u.seq || pkt.Src != u.current {
			return
		}
		if u.timer != nil {
			u.timer.Stop()
		}
		u.res.CtrlBytes += int64(pkt.Size)
		if m.Complete {
			u.startNode()
			return
		}
		var last time.Duration
		for _, idx := range m.Missing {
			sz := u.img.ChunkLen(idx) + u.params.ChunkHeader
			last = u.ep.Send(pkt.Src, chunkMsg{ImageID: u.img.ID(), Index: idx, Sum: u.img.ChunkSum(idx)}, sz)
			u.res.RepairBytes += int64(sz)
			u.res.RepairChunks++
		}
		if last > u.clk.Now() {
			u.clk.At(last, u.poll)
		} else {
			u.poll()
		}
	case upMsg:
		u.ep.Send(m.Node, upAckMsg{ImageID: m.ImageID}, u.params.CtrlSize)
		if m.ImageID != u.img.ID() {
			return
		}
		if _, dup := u.res.NodeUp[m.Node]; dup {
			return
		}
		u.res.NodeUp[m.Node] = u.clk.Now() - u.start
		*u.upCount++
		if *u.upCount == u.res.Nodes {
			u.res.AllUp = u.clk.Now() - u.start
		}
	}
}

// RunUpdate distributes the delta between old and img to n nodes that
// already hold old, over a fresh Fast-Ethernet fabric — the §4 parallel
// package/kernel-update path.
func RunUpdate(old, img *image.Image, n int, loss float64, seed int64, params Params) Result {
	clk := clock.New()
	net := simnet.New(clk, 100*time.Microsecond)
	net.Seed(seed)
	master := net.Attach("master", simnet.FastEthernet)
	addrs := nodeAddrs(n)
	params = params.withDefaults()

	sess := NewUpdateSession(clk, net, master, "clone", img, old, addrs, params)
	for _, a := range addrs {
		ep := net.Attach(a, simnet.FastEthernet)
		net.Join("clone", a)
		c := NewUpdateClient(clk, ep, img, old, params)
		c.ReportUpTo("master")
	}
	net.SetLoss(loss)
	sess.Start()
	clk.RunUntilIdle()
	if !sess.Done() {
		panic("cloning: update session did not converge")
	}
	return sess.Result()
}

// SortedUpTimes returns node completion offsets in ascending order.
func (r Result) SortedUpTimes() []time.Duration {
	out := make([]time.Duration, 0, len(r.NodeUp))
	for _, d := range r.NodeUp {
		out = append(out, d)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// TotalBytes returns all bytes the master transmitted.
func (r Result) TotalBytes() int64 {
	return r.MulticastBytes + r.RepairBytes + r.CtrlBytes
}
