package cloning

import (
	"testing"
	"testing/quick"
	"time"

	"clusterworx/internal/clock"
	"clusterworx/internal/image"
	"clusterworx/internal/simnet"
)

// smallImage returns a 4 MiB image with 64 KiB chunks (64 chunks): big
// enough to exercise pacing, small enough for fast tests.
func smallImage() *image.Image {
	return image.New("test-os", "1.0", image.BootDisk, 4<<20)
}

func TestMulticastLosslessAllNodesUp(t *testing.T) {
	res := RunMulticast(smallImage(), 10, 0, 1, Params{})
	if len(res.NodeUp) != 10 {
		t.Fatalf("up nodes = %d, want 10", len(res.NodeUp))
	}
	if res.AllData == 0 || res.AllUp <= res.AllData {
		t.Fatalf("phase times: data %v, up %v", res.AllData, res.AllUp)
	}
	if res.RepairChunks != 0 {
		t.Fatalf("lossless run repaired %d chunks", res.RepairChunks)
	}
	// One poll per node with nothing lost.
	if res.Polls != 10 {
		t.Fatalf("polls = %d, want 10", res.Polls)
	}
	if res.Rounds != 1 {
		t.Fatalf("rounds = %d, want 1", res.Rounds)
	}
}

func TestMulticastBurstBandwidthBound(t *testing.T) {
	img := smallImage()
	res := RunMulticast(img, 50, 0, 1, Params{})
	// Burst time ≈ image bits / 100 Mbps, independent of node count.
	wantMin := time.Duration(float64(img.Size*8) / 100e6 * float64(time.Second))
	if res.BurstDone < wantMin {
		t.Fatalf("burst %v faster than line rate %v", res.BurstDone, wantMin)
	}
	if res.BurstDone > wantMin*12/10 {
		t.Fatalf("burst %v more than 20%% over line rate %v", res.BurstDone, wantMin)
	}
}

func TestMulticastFlatInNodeCount(t *testing.T) {
	img := smallImage()
	r20 := RunMulticast(img, 20, 0, 1, Params{})
	r100 := RunMulticast(img, 100, 0, 1, Params{})
	// 5x the nodes must cost well under 2x the time (paper: hundreds of
	// nodes on one fast ethernet).
	if r100.AllUp > r20.AllUp*2 {
		t.Fatalf("multicast not flat: 20 nodes %v, 100 nodes %v", r20.AllUp, r100.AllUp)
	}
}

func TestUnicastLinearInNodeCount(t *testing.T) {
	img := smallImage()
	r4 := RunUnicast(img, 4, 0, 1, Params{})
	r16 := RunUnicast(img, 16, 0, 1, Params{})
	if len(r16.NodeUp) != 16 {
		t.Fatalf("unicast up = %d", len(r16.NodeUp))
	}
	// Compare data-completion: the constant flash+reboot tail would mask
	// transfer scaling at small node counts.
	ratio := float64(r16.AllData) / float64(r4.AllData)
	if ratio < 3 || ratio > 5 {
		t.Fatalf("unicast scaling ratio %.2f for 4x nodes; expected near-linear", ratio)
	}
}

func TestMulticastBeatsUnicast(t *testing.T) {
	img := smallImage()
	mc := RunMulticast(img, 30, 0, 1, Params{})
	uc := RunUnicast(img, 30, 0, 1, Params{})
	if mc.AllUp >= uc.AllUp {
		t.Fatalf("multicast %v not faster than unicast %v at 30 nodes", mc.AllUp, uc.AllUp)
	}
	if mc.TotalBytes() >= uc.TotalBytes() {
		t.Fatalf("multicast moved %d bytes, unicast %d", mc.TotalBytes(), uc.TotalBytes())
	}
}

func TestMulticastConvergesUnderLoss(t *testing.T) {
	img := smallImage()
	res := RunMulticast(img, 12, 0.05, 7, Params{})
	if len(res.NodeUp) != 12 {
		t.Fatalf("up = %d under 5%% loss", len(res.NodeUp))
	}
	if res.RepairChunks == 0 {
		t.Fatal("5% loss produced zero repairs")
	}
}

func TestRepairTrafficGrowsWithLoss(t *testing.T) {
	img := smallImage()
	low := RunMulticast(img, 10, 0.02, 3, Params{})
	high := RunMulticast(img, 10, 0.20, 3, Params{})
	if high.RepairBytes <= low.RepairBytes {
		t.Fatalf("repair bytes: 2%% loss %d, 20%% loss %d", low.RepairBytes, high.RepairBytes)
	}
	// Repair cost is targeted: about nodes x loss x image on top of the
	// burst (expected ~3.5x total here), never a per-node full resend
	// (which would be ~10x).
	lossless := RunMulticast(img, 10, 0, 3, Params{})
	if high.TotalBytes() > 5*lossless.TotalBytes() {
		t.Fatalf("20%% loss inflated traffic %dx", high.TotalBytes()/lossless.TotalBytes())
	}
}

func TestChecksumsVerified(t *testing.T) {
	// Every client must complete with a clean manifest check.
	img := smallImage()
	res := RunMulticast(img, 8, 0.1, 11, Params{})
	if len(res.NodeUp) != 8 {
		t.Fatal("not all nodes up")
	}
	// Verified() is checked inside the client; a mismatch would have
	// stalled completion (chunk rejected), so convergence implies
	// bit-identity. Spot-check the accounting instead.
	if res.MulticastBytes <= img.Size {
		t.Fatalf("multicast bytes %d below image size %d", res.MulticastBytes, img.Size)
	}
}

func TestRebootTimeAffectsCompletion(t *testing.T) {
	img := smallImage()
	fast := RunMulticast(img, 5, 0, 1, Params{RebootTime: 3 * time.Second})
	slow := RunMulticast(img, 5, 0, 1, Params{RebootTime: 45 * time.Second})
	diff := slow.AllUp - fast.AllUp
	if diff < 41*time.Second || diff > 43*time.Second {
		t.Fatalf("reboot time delta %v, want ~42s", diff)
	}
}

func TestSingleNode(t *testing.T) {
	res := RunMulticast(smallImage(), 1, 0, 1, Params{})
	if len(res.NodeUp) != 1 || res.AllUp == 0 {
		t.Fatalf("single node result %+v", res)
	}
}

func TestSortedUpTimes(t *testing.T) {
	res := RunMulticast(smallImage(), 6, 0.05, 5, Params{})
	ups := res.SortedUpTimes()
	if len(ups) != 6 {
		t.Fatalf("ups = %d", len(ups))
	}
	for i := 1; i < len(ups); i++ {
		if ups[i] < ups[i-1] {
			t.Fatal("up times not sorted")
		}
	}
}

func TestParamDefaults(t *testing.T) {
	p := Params{}.withDefaults()
	if p.ChunkHeader == 0 || p.CtrlSize == 0 || p.PollTimeout == 0 ||
		p.MaxNakChunks == 0 || p.DiskBandwidth == 0 || p.RebootTime == 0 {
		t.Fatalf("defaults not filled: %+v", p)
	}
	// Explicit values survive.
	p2 := Params{RebootTime: time.Minute}.withDefaults()
	if p2.RebootTime != time.Minute {
		t.Fatal("explicit param overwritten")
	}
}

// Property: the protocol converges and delivers all nodes for arbitrary
// small configurations and loss rates up to 30 %.
func TestPropertyConvergence(t *testing.T) {
	f := func(nodes, lossPct, seed uint8) bool {
		n := int(nodes)%8 + 1
		loss := float64(lossPct%31) / 100
		img := image.New("p", "1", image.BootDisk, 512<<10)
		res := RunMulticast(img, n, loss, int64(seed), Params{})
		return len(res.NodeUp) == n && res.AllUp > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: lossless multicast transfers each chunk exactly once in the
// burst and never repairs.
func TestPropertyLosslessNoRepair(t *testing.T) {
	f := func(nodes uint8) bool {
		n := int(nodes)%20 + 1
		img := image.New("p", "1", image.BootDisk, 1<<20)
		res := RunMulticast(img, n, 0, 1, Params{})
		wantChunks := int64(img.NumChunks())
		gotPkts := res.MulticastBytes / int64(img.ChunkSize+64)
		return res.RepairChunks == 0 && gotPkts == wantChunks
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// --- incremental updates (§4 "update files or packages in parallel") -----------

func updatePair() (*image.Image, *image.Image) {
	v1 := image.NewBuilder("os", "1.0", image.BootDisk, 24<<20).
		AddPackage("kernel-2.4.18", 2<<20).
		AddPackage("mpich", 4<<20).
		Build()
	v2 := image.NewBuilder("os", "1.1", image.BootDisk, 24<<20).
		AddPackage("kernel-2.4.19", 2<<20). // upgraded
		AddPackage("mpich", 4<<20).         // unchanged
		Build()
	return v1, v2
}

func TestUpdateTransfersOnlyDelta(t *testing.T) {
	v1, v2 := updatePair()
	full := RunMulticast(v2, 10, 0, 1, Params{})
	upd := RunUpdate(v1, v2, 10, 0, 1, Params{})
	if len(upd.NodeUp) != 10 {
		t.Fatalf("update upped %d nodes", len(upd.NodeUp))
	}
	if upd.MulticastBytes >= full.MulticastBytes/4 {
		t.Fatalf("update burst %d bytes vs full %d; delta not exploited",
			upd.MulticastBytes, full.MulticastBytes)
	}
	if upd.AllUp >= full.AllUp {
		t.Fatalf("update (%v) not faster than full clone (%v)", upd.AllUp, full.AllUp)
	}
	// The kernel is ~2 MB of a 30 MB image: burst bytes in that ballpark.
	if upd.MulticastBytes > 4<<20 {
		t.Fatalf("update moved %d bytes for a 2 MB kernel", upd.MulticastBytes)
	}
}

func TestUpdateUnderLoss(t *testing.T) {
	v1, v2 := updatePair()
	res := RunUpdate(v1, v2, 8, 0.1, 5, Params{})
	if len(res.NodeUp) != 8 {
		t.Fatalf("lossy update upped %d nodes", len(res.NodeUp))
	}
}

func TestUpdateEmptyDeltaStillReboots(t *testing.T) {
	v1, _ := updatePair()
	rebuild := image.NewBuilder("os", "1.0-rebuild", image.BootDisk, 24<<20).
		AddPackage("kernel-2.4.18", 2<<20).
		AddPackage("mpich", 4<<20).
		Build()
	res := RunUpdate(v1, rebuild, 5, 0, 1, Params{})
	if len(res.NodeUp) != 5 {
		t.Fatalf("empty-delta update upped %d nodes", len(res.NodeUp))
	}
	if res.MulticastBytes != 0 {
		t.Fatalf("empty delta multicast %d bytes", res.MulticastBytes)
	}
	// Completion is just reboot time, well under a full transfer.
	if res.AllUp > 30*time.Second {
		t.Fatalf("empty-delta update took %v", res.AllUp)
	}
}

// Exercise the client-facing accessors and the checksum-rejection path
// directly with a hand-driven session.
func TestClientSurfaceAndChecksumRejection(t *testing.T) {
	clk := clock.New()
	net := simnet.New(clk, 0)
	master := net.Attach("master", simnet.FastEthernet)
	ep := net.Attach("n0", simnet.FastEthernet)
	img := image.New("x", "1", image.BootDisk, 256<<10) // 4 chunks
	params := Params{}.withDefaults()
	c := NewClient(clk, ep, img, params)
	upCalled := false
	c.OnUp(func() { upCalled = true })

	if c.Complete() || c.Operational() || c.HaveCount() != 0 || c.Verified() != nil {
		t.Fatal("fresh client state wrong")
	}

	// Deliver a corrupted chunk: wrong checksum is rejected and recorded.
	master.Send("n0", chunkMsg{ImageID: img.ID(), Index: 0, Sum: [32]byte{0xde, 0xad}}, 100)
	clk.RunUntilIdle()
	if c.HaveCount() != 0 || c.Verified() == nil {
		t.Fatalf("corrupt chunk accepted: have=%d verified=%v", c.HaveCount(), c.Verified())
	}

	// Foreign image and out-of-range indexes are ignored.
	master.Send("n0", chunkMsg{ImageID: "other@9", Index: 0, Sum: img.ChunkSum(0)}, 100)
	master.Send("n0", chunkMsg{ImageID: img.ID(), Index: 99, Sum: img.ChunkSum(0)}, 100)
	clk.RunUntilIdle()
	if c.HaveCount() != 0 {
		t.Fatal("bogus chunks accepted")
	}

	// Deliver the real chunks (one duplicated).
	for i := 0; i < img.NumChunks(); i++ {
		master.Send("n0", chunkMsg{ImageID: img.ID(), Index: i, Sum: img.ChunkSum(i)}, 100)
	}
	master.Send("n0", chunkMsg{ImageID: img.ID(), Index: 0, Sum: img.ChunkSum(0)}, 100)
	clk.RunUntilIdle()
	if !c.Complete() || c.HaveCount() != img.NumChunks() {
		t.Fatalf("have %d/%d", c.HaveCount(), img.NumChunks())
	}
	if !c.Operational() || !upCalled {
		t.Fatal("client did not flash and report up")
	}
}

func TestSessionOnFinish(t *testing.T) {
	clk := clock.New()
	net := simnet.New(clk, 0)
	master := net.Attach("master", simnet.FastEthernet)
	img := image.New("x", "1", image.BootDisk, 128<<10)
	params := Params{}.withDefaults()
	addr := simnet.Addr("n0")
	ep := net.Attach(addr, simnet.FastEthernet)
	net.Join("g", addr)
	c := NewClient(clk, ep, img, params)
	c.ReportUpTo("master")
	sess := NewSession(clk, net, master, "g", img, []simnet.Addr{addr}, params)
	var got Result
	finished := false
	sess.OnFinish(func(r Result) { got = r; finished = true })
	sess.Start()
	clk.RunUntilIdle()
	if !finished || got.Nodes != 1 || len(got.NodeUp) != 1 {
		t.Fatalf("OnFinish: %v %+v", finished, got)
	}
}
