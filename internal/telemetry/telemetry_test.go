package telemetry

import (
	"math"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterStriping(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	for i := 0; i < 2*Stripes; i++ {
		c.IncAt(i)
	}
	c.AddAt(Stripes+3, 10)
	if got := c.Load(); got != 1+4+2*Stripes+10 {
		t.Fatalf("Load = %d, want %d", got, 1+4+2*Stripes+10)
	}
}

func TestGauge(t *testing.T) {
	var g Gauge
	if g.Load() != 0 {
		t.Fatalf("zero gauge = %v", g.Load())
	}
	g.Set(3.5)
	if g.Load() != 3.5 {
		t.Fatalf("Load = %v, want 3.5", g.Load())
	}
	g.Set(-1)
	if g.Load() != -1 {
		t.Fatalf("Load = %v, want -1", g.Load())
	}
}

func TestEnabledGate(t *testing.T) {
	prev := SetEnabled(false)
	defer SetEnabled(prev)
	var c Counter
	var g Gauge
	var h Histogram
	c.Inc()
	g.Set(9)
	h.Observe(100)
	if c.Load() != 0 || g.Load() != 0 || h.Snapshot().Count != 0 {
		t.Fatalf("disabled telemetry still recorded: c=%d g=%v h=%d",
			c.Load(), g.Load(), h.Snapshot().Count)
	}
	SetEnabled(true)
	c.Inc()
	if c.Load() != 1 {
		t.Fatalf("re-enabled counter = %d, want 1", c.Load())
	}
}

func TestHistogramBuckets(t *testing.T) {
	cases := []struct {
		v    int64
		want int
	}{
		{-5, 0}, {0, 0}, {1, 1}, {2, 2}, {3, 2}, {4, 3}, {7, 3}, {8, 4},
		{1 << 37, NumBuckets - 2}, {1<<38 - 1, NumBuckets - 2},
		{1 << 38, NumBuckets - 1}, {math.MaxInt64, NumBuckets - 1},
	}
	for _, c := range cases {
		if got := bucketOf(c.v); got != c.want {
			t.Errorf("bucketOf(%d) = %d, want %d", c.v, got, c.want)
		}
		if c.want < NumBuckets-1 && c.v > BucketBound(c.want) {
			t.Errorf("value %d above its bucket bound %d", c.v, BucketBound(c.want))
		}
	}
	if BucketBound(0) != 0 || BucketBound(1) != 1 || BucketBound(3) != 7 {
		t.Fatalf("BucketBound finite bounds wrong")
	}
	if BucketBound(NumBuckets-1) != math.MaxInt64 {
		t.Fatalf("last bucket must be unbounded")
	}
}

func TestHistogramSnapshotStats(t *testing.T) {
	var h Histogram
	for i := int64(1); i <= 100; i++ {
		h.ObserveAt(int(i), i) // exercise all stripes
	}
	s := h.Snapshot()
	if s.Count != 100 {
		t.Fatalf("Count = %d, want 100", s.Count)
	}
	if s.Sum != 5050 {
		t.Fatalf("Sum = %d, want 5050", s.Sum)
	}
	if got := s.Mean(); got != 50.5 {
		t.Fatalf("Mean = %v, want 50.5", got)
	}
	// The 50th of 100 values in [1,100] is 50, whose bucket is [32,63];
	// the quantile reports the bucket's upper bound.
	if got := s.Quantile(0.5); got != 63 {
		t.Fatalf("p50 = %v, want 63", got)
	}
	if got := s.Quantile(0.99); got != 127 {
		t.Fatalf("p99 = %v, want 127", got)
	}
	var empty HistSnapshot
	if empty.Mean() != 0 || empty.Quantile(0.5) != 0 {
		t.Fatalf("empty snapshot stats must be 0")
	}
}

func TestRegistryGetOrCreate(t *testing.T) {
	r := NewRegistry()
	c1 := r.Counter("a_total")
	c2 := r.Counter("a_total")
	if c1 != c2 {
		t.Fatal("Counter not idempotent")
	}
	if r.Gauge("g") != r.Gauge("g") {
		t.Fatal("Gauge not idempotent")
	}
	if r.Histogram("h_ns") != r.Histogram("h_ns") {
		t.Fatal("Histogram not idempotent")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("kind mismatch must panic")
		}
	}()
	r.Gauge("a_total")
}

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.Counter("cwx_test_ops_total").Add(7)
	r.Gauge("cwx_test_depth").Set(2.5)
	h := r.Histogram("cwx_test_lat_ns")
	h.Observe(1)
	h.Observe(3)
	h.Observe(500)
	r.GaugeFunc("cwx_test_fn", func() float64 { return 4 })
	r.CounterFunc("cwx_test_fn_total", func() int64 { return 11 })

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE cwx_test_ops_total counter\ncwx_test_ops_total 7\n",
		"# TYPE cwx_test_depth gauge\ncwx_test_depth 2.5\n",
		"# TYPE cwx_test_lat_ns histogram\n",
		"cwx_test_lat_ns_bucket{le=\"1\"} 1\n",
		"cwx_test_lat_ns_bucket{le=\"3\"} 2\n",
		"cwx_test_lat_ns_bucket{le=\"511\"} 3\n",
		"cwx_test_lat_ns_bucket{le=\"+Inf\"} 3\n",
		"cwx_test_lat_ns_sum 504\n",
		"cwx_test_lat_ns_count 3\n",
		"cwx_test_fn 4\n",
		"cwx_test_fn_total 11\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q in:\n%s", want, out)
		}
	}
	// Cumulative bucket counts must be monotone non-decreasing.
	last := int64(-1)
	for _, line := range strings.Split(out, "\n") {
		if !strings.HasPrefix(line, "cwx_test_lat_ns_bucket") {
			continue
		}
		n, err := strconv.ParseInt(line[strings.LastIndexByte(line, ' ')+1:], 10, 64)
		if err != nil {
			t.Fatalf("bad bucket line %q: %v", line, err)
		}
		if n < last {
			t.Fatalf("bucket counts not cumulative: %q after %d", line, last)
		}
		last = n
	}
}

func TestWalk(t *testing.T) {
	r := NewRegistry()
	r.Counter("b_total").Add(2)
	r.Gauge("a").Set(1)
	h := r.Histogram("h_ns")
	h.Observe(10)
	got := map[string]float64{}
	var order []string
	r.Walk(func(name string, v float64) {
		got[name] = v
		order = append(order, name)
	})
	want := map[string]float64{
		"a": 1, "b_total": 2,
		"h_ns_count": 1, "h_ns_mean": 10, "h_ns_p50": 15, "h_ns_p99": 15,
	}
	for k, v := range want {
		if got[k] != v {
			t.Errorf("Walk[%s] = %v, want %v", k, got[k], v)
		}
	}
	if len(got) != len(want) {
		t.Fatalf("Walk emitted %d names, want %d: %v", len(got), len(want), order)
	}
	if order[0] != "a" || order[1] != "b_total" {
		t.Fatalf("Walk not sorted: %v", order)
	}
}

func TestConcurrentRecordAndScrape(t *testing.T) {
	r := NewRegistry()
	const workers, iters = 8, 5000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := r.Counter("ops_total")
			h := r.Histogram("lat_ns")
			for i := 0; i < iters; i++ {
				c.IncAt(w)
				h.ObserveAt(w, int64(i%1000))
				if i%500 == 0 {
					var b strings.Builder
					if err := r.WritePrometheus(&b); err != nil {
						t.Error(err)
						return
					}
					r.Walk(func(string, float64) {})
				}
			}
		}(w)
	}
	wg.Wait()
	if got := r.Counter("ops_total").Load(); got != workers*iters {
		t.Fatalf("ops_total = %d, want %d", got, workers*iters)
	}
	if got := r.Histogram("lat_ns").Snapshot().Count; got != workers*iters {
		t.Fatalf("lat_ns count = %d, want %d", got, workers*iters)
	}
}

func TestTracer(t *testing.T) {
	tr := NewTracer()
	sp := tr.Slot("n1")
	if sp != tr.Slot("n1") {
		t.Fatal("Slot not idempotent")
	}
	sp.Record(StageGather, 5*time.Microsecond, 42)
	tr.Record("n1", StageNotify, time.Millisecond, 1)
	tr.Record("n0", StageIngest, time.Microsecond, 8)

	snap, ok := tr.Lookup("n1")
	if !ok {
		t.Fatal("Lookup(n1) missing")
	}
	if snap.Seq != 2 {
		t.Fatalf("Seq = %d, want 2", snap.Seq)
	}
	if g := snap.Stages[StageGather]; g.Dur != 5*time.Microsecond || g.Size != 42 {
		t.Fatalf("gather stage = %+v", g)
	}
	if n := snap.Stages[StageNotify]; n.Dur != time.Millisecond || n.Size != 1 {
		t.Fatalf("notify stage = %+v", n)
	}
	if _, ok := tr.Lookup("missing"); ok {
		t.Fatal("Lookup(missing) should fail")
	}
	all := tr.Snapshot()
	if len(all) != 2 || all[0].Node != "n0" || all[1].Node != "n1" {
		t.Fatalf("Snapshot = %+v", all)
	}

	var nilSpan *Span
	nilSpan.Record(StageEvents, time.Second, 1) // must not panic
}

func TestStageStrings(t *testing.T) {
	want := []string{"gather", "consolidate", "transmit", "ingest", "events", "notify"}
	for i := 0; i < NumStages; i++ {
		if Stage(i).String() != want[i] {
			t.Fatalf("Stage(%d) = %q, want %q", i, Stage(i), want[i])
		}
	}
	if Stage(99).String() != "unknown" {
		t.Fatal("out-of-range stage must be unknown")
	}
}

func TestTracerConcurrent(t *testing.T) {
	tr := NewTracer()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			sp := tr.Slot("node")
			for i := 0; i < 500; i++ {
				sp.Record(Stage(i%NumStages), time.Duration(i), int64(w))
				if i%50 == 0 {
					tr.Snapshot()
					tr.Lookup("node")
				}
			}
		}(w)
	}
	wg.Wait()
	snap, _ := tr.Lookup("node")
	if snap.Seq != 8*500 {
		t.Fatalf("Seq = %d, want %d", snap.Seq, 8*500)
	}
}
