package telemetry

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Stage identifies one hop of the monitoring pipeline, in pipeline
// order: the paper's three agent-side stages (§5.3 gathering →
// consolidation → transmission) followed by the server-side stages PR 1
// made concurrent (ingest → event evaluation → notification).
type Stage uint8

const (
	StageGather Stage = iota
	StageConsolidate
	StageTransmit
	StageIngest
	StageEvents
	StageNotify
)

// NumStages is the number of pipeline stages a span records.
const NumStages = 6

// String returns the short lower-case stage name.
func (s Stage) String() string {
	switch s {
	case StageGather:
		return "gather"
	case StageConsolidate:
		return "consolidate"
	case StageTransmit:
		return "transmit"
	case StageIngest:
		return "ingest"
	case StageEvents:
		return "events"
	case StageNotify:
		return "notify"
	}
	return "unknown"
}

// stageCell holds the most recent measurement for one stage: wall-clock
// duration in nanoseconds and a stage-appropriate size (values gathered,
// delta length, batch size, rules evaluated, incidents).
type stageCell struct {
	ns    atomic.Int64
	size  atomic.Int64
	trace atomic.Uint64 // flight trace id of the last *sampled* measurement
}

// Span is one node's most recent per-stage pipeline measurements. It is
// last-write-wins per stage rather than a per-batch trace: with agents
// ticking every second, "the latest breakdown" is what an operator asks
// for, and it keeps the record path to two atomic stores per stage — no
// allocation, no lock. Different stages of one span are written by
// different goroutines (agent tick, server ingest, notifier), so a
// snapshot may pair a fresh gather with a slightly older notify; the
// sequence counter says how live the span is.
type Span struct {
	node   string
	seq    atomic.Int64
	stages [NumStages]stageCell
}

// Record stores one stage measurement. Safe on a nil span, so callers
// may hold an optional slot.
//
//cwx:hotpath
func (sp *Span) Record(stage Stage, d time.Duration, size int64) {
	sp.RecordTraced(stage, d, size, 0)
}

// RecordTraced is Record plus the causal trace id of the measurement
// when the frame was sampled (internal/flight). Trace 0 (unsampled)
// leaves the cell's last sampled trace in place, so "the most recent
// traced measurement" survives the 63-in-64 unsampled ticks between
// samples and trace output can always offer a drill-down target.
//
//cwx:hotpath
func (sp *Span) RecordTraced(stage Stage, d time.Duration, size int64, trace uint64) {
	if sp == nil || !enabled.Load() {
		return
	}
	c := &sp.stages[stage]
	c.ns.Store(int64(d))
	c.size.Store(size)
	if trace != 0 {
		c.trace.Store(trace)
	}
	sp.seq.Add(1)
}

// StageTrace returns the trace id of the last sampled measurement for
// one stage (0 if the stage was never sampled). Used by the notifier to
// tie its records to the ingest that caused the event, without plumbing
// the id through the engine's callback interfaces.
func (sp *Span) StageTrace(stage Stage) uint64 {
	if sp == nil {
		return 0
	}
	return sp.stages[stage].trace.Load()
}

// StageSample is a read-only copy of one stage cell. Trace is the
// flight trace id of the last sampled measurement, which may be older
// than Dur/Size (those update on every tick, the trace only on sampled
// ones).
type StageSample struct {
	Dur   time.Duration
	Size  int64
	Trace uint64
}

// SpanSnapshot is a read-only copy of a span.
type SpanSnapshot struct {
	Node   string
	Seq    int64
	Stages [NumStages]StageSample
}

// Snapshot copies the span with atomic loads; writers continue.
func (sp *Span) Snapshot() SpanSnapshot {
	s := SpanSnapshot{Node: sp.node, Seq: sp.seq.Load()}
	for i := range sp.stages {
		s.Stages[i] = StageSample{
			Dur:   time.Duration(sp.stages[i].ns.Load()),
			Size:  sp.stages[i].size.Load(),
			Trace: sp.stages[i].trace.Load(),
		}
	}
	return s
}

// Tracer holds one span per node. Slot resolution takes the tracer lock
// and is meant for setup paths (agent construction, node registration);
// hot paths cache the returned *Span and record through it with atomics
// only.
type Tracer struct {
	mu    sync.Mutex //cwx:lockrank tracer 56
	spans map[string]*Span
}

// NewTracer returns an empty tracer.
func NewTracer() *Tracer {
	return &Tracer{spans: make(map[string]*Span)}
}

// Spans is the process-wide tracer. In in-process simulation the agent
// and server halves of a node's pipeline meet in the same span, giving
// the full six-stage breakdown per node.
var Spans = NewTracer()

// Slot returns the node's span, creating it if needed.
func (t *Tracer) Slot(node string) *Span {
	t.mu.Lock()
	defer t.mu.Unlock()
	sp, ok := t.spans[node]
	if !ok {
		sp = &Span{node: node}
		t.spans[node] = sp
	}
	return sp
}

// Record is the convenience path for cold callers that do not hold a
// slot (the notifier). It resolves the slot under the tracer lock, so
// hot paths should use Slot once and Record on the span instead.
func (t *Tracer) Record(node string, stage Stage, d time.Duration, size int64) {
	if !enabled.Load() {
		return
	}
	t.Slot(node).Record(stage, d, size)
}

// RecordTraced is Record carrying a flight trace id.
func (t *Tracer) RecordTraced(node string, stage Stage, d time.Duration, size int64, trace uint64) {
	if !enabled.Load() {
		return
	}
	t.Slot(node).RecordTraced(stage, d, size, trace)
}

// StageTrace returns the node's last sampled trace id for a stage, or 0
// if the node has no span or the stage was never sampled. Cold path
// (takes the tracer lock) — it does not create a span.
func (t *Tracer) StageTrace(node string, stage Stage) uint64 {
	t.mu.Lock()
	sp := t.spans[node]
	t.mu.Unlock()
	return sp.StageTrace(stage)
}

// Lookup returns the snapshot for one node, if it has a span.
func (t *Tracer) Lookup(node string) (SpanSnapshot, bool) {
	t.mu.Lock()
	sp, ok := t.spans[node]
	t.mu.Unlock()
	if !ok {
		return SpanSnapshot{}, false
	}
	return sp.Snapshot(), true
}

// Snapshot returns every span, sorted by node name.
func (t *Tracer) Snapshot() []SpanSnapshot {
	t.mu.Lock()
	spans := make([]*Span, 0, len(t.spans))
	for _, sp := range t.spans {
		spans = append(spans, sp)
	}
	t.mu.Unlock()
	out := make([]SpanSnapshot, len(spans))
	for i, sp := range spans {
		out[i] = sp.Snapshot()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Node < out[j].Node })
	return out
}
