// Package telemetry is the management stack's self-monitoring core: a
// dependency-free set of atomic counters, gauges and fixed-bucket
// histograms with snapshot-on-read, plus a stage-span tracer (trace.go)
// that follows one sample batch through the monitoring pipeline.
//
// Production monitoring stacks instrument themselves — a monitor that
// cannot quantify its own intrusiveness cannot keep the promise that it
// is cheap — so every hot path of this reproduction (gathering,
// consolidation, transmission, server ingest, event evaluation,
// notification, history) records into this package. The recording side
// is allocation-free and lock-free: counters and histogram cells are
// cache-line-striped atomics, so concurrent agents never serialize on a
// metric, and readers assemble snapshots without stopping writers. A
// snapshot taken while writers race is internally consistent per atomic
// cell but may be a few updates skewed across cells — diagnostic-grade,
// exactly what an exposition scrape needs.
//
// The whole layer sits behind one switch (SetEnabled): with telemetry
// off, every recording call is a single atomic load and branch, which is
// what the instrumented-vs-stripped ablation benchmark measures.
package telemetry

import (
	"fmt"
	"io"
	"math"
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
)

// enabled gates every hot-path recording call.
var enabled atomic.Bool

func init() { enabled.Store(true) }

// On reports whether telemetry recording is enabled. Hot paths that pay
// setup cost beyond the recording calls themselves (a clock read, a
// timing split) check it once up front.
func On() bool { return enabled.Load() }

// SetEnabled switches recording on or off process-wide and returns the
// previous state. Metric values freeze while disabled; they are not
// reset.
func SetEnabled(on bool) (prev bool) { return enabled.Swap(on) }

// Stripes is the cell count of striped metrics, a power of two. Hot
// callers spread concurrent writers across cache lines by passing a
// stripe hint (the server passes its shard index); the zero-argument
// methods use stripe 0.
const Stripes = 8

// cell is one padded counter stripe: the padding keeps two stripes from
// sharing a cache line, so concurrent writers on different stripes never
// bounce ownership.
type cell struct {
	n atomic.Int64
	_ [56]byte
}

// Counter is a monotonically increasing striped atomic counter.
type Counter struct {
	cells [Stripes]cell
}

// Inc adds one on stripe 0.
func (c *Counter) Inc() { c.AddAt(0, 1) }

// Add adds n on stripe 0.
func (c *Counter) Add(n int64) { c.AddAt(0, n) }

// IncAt adds one on the given stripe (folded with a mask).
func (c *Counter) IncAt(stripe int) { c.AddAt(stripe, 1) }

// AddAt adds n on the given stripe (folded with a mask).
//
//cwx:hotpath
func (c *Counter) AddAt(stripe int, n int64) {
	if !enabled.Load() {
		return
	}
	c.cells[stripe&(Stripes-1)].n.Add(n)
}

// Load sums the stripes.
func (c *Counter) Load() int64 {
	var sum int64
	for i := range c.cells {
		sum += c.cells[i].n.Load()
	}
	return sum
}

// Gauge is a last-value-wins float64, stored as atomic bits.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
//
//cwx:hotpath
func (g *Gauge) Set(v float64) {
	if !enabled.Load() {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Load returns the current value.
func (g *Gauge) Load() float64 { return math.Float64frombits(g.bits.Load()) }

// NumBuckets is the fixed bucket count of every histogram. Buckets are
// powers of two: bucket 0 holds v ≤ 0, bucket i (0 < i < NumBuckets-1)
// holds v in [2^(i-1), 2^i), and the last bucket is unbounded. One
// layout serves both latencies (nanoseconds up to ~4.5 minutes at full
// resolution) and sizes (values/bytes up to 2^38).
const NumBuckets = 40

// histStripe is one stripe of a histogram. Stripes are not padded
// individually — the bucket array is already larger than a cache line,
// so only same-stripe writers share lines, and those are spread by the
// caller's stripe hint.
type histStripe struct {
	count   atomic.Int64
	sum     atomic.Int64
	buckets [NumBuckets]atomic.Int64
}

// Histogram is a fixed-bucket striped atomic histogram. It also keeps
// one exemplar: the flight trace id attached to the largest traced
// observation seen so far, so a p99 in the rendered output links to the
// exact frame that caused it (ObserveTraceAt / Exemplar).
type Histogram struct {
	stripes [Stripes]histStripe
	exVal   atomic.Int64
	exTrace atomic.Uint64
}

// Observe records v on stripe 0.
func (h *Histogram) Observe(v int64) { h.ObserveAt(0, v) }

// ObserveAt records v on the given stripe (folded with a mask).
//
//cwx:hotpath
func (h *Histogram) ObserveAt(stripe int, v int64) {
	if !enabled.Load() {
		return
	}
	s := &h.stripes[stripe&(Stripes-1)]
	s.buckets[bucketOf(v)].Add(1)
	s.count.Add(1)
	s.sum.Add(v)
}

// ObserveTraceAt is ObserveAt plus exemplar maintenance: when trace is
// nonzero and v is the largest traced observation yet, the (v, trace)
// pair is retained. The max is a CAS loop on the value; the trace store
// after a won CAS is not paired atomically with it, so under a race two
// near-simultaneous maxima may cross value and trace — both were worst
// observations to within one sample, which is all an exemplar promises.
//
//cwx:hotpath
func (h *Histogram) ObserveTraceAt(stripe int, v int64, trace uint64) {
	h.ObserveAt(stripe, v)
	if trace == 0 || !enabled.Load() {
		return
	}
	for {
		cur := h.exVal.Load()
		if v < cur {
			return
		}
		if h.exVal.CompareAndSwap(cur, v) {
			h.exTrace.Store(trace)
			return
		}
	}
}

// Exemplar returns the largest traced observation and its flight trace
// id; trace is 0 when nothing traced was ever observed.
func (h *Histogram) Exemplar() (v int64, trace uint64) {
	return h.exVal.Load(), h.exTrace.Load()
}

// bucketOf maps a value to its bucket index with one bit-length
// instruction — no branches per bucket, no allocation.
//
//cwx:hotpath
func bucketOf(v int64) int {
	if v <= 0 {
		return 0
	}
	b := bits.Len64(uint64(v))
	if b > NumBuckets-2 {
		return NumBuckets - 1
	}
	return b
}

// BucketBound returns the inclusive upper bound of bucket i. The last
// bucket is unbounded and reports math.MaxInt64.
func BucketBound(i int) int64 {
	switch {
	case i <= 0:
		return 0
	case i >= NumBuckets-1:
		return math.MaxInt64
	default:
		return int64(1)<<uint(i) - 1
	}
}

// HistSnapshot is a point-in-time copy of a histogram, merged across
// stripes. Taken with atomic loads while writers continue; cross-cell
// skew of a few in-flight updates is possible and acceptable.
type HistSnapshot struct {
	Count   int64
	Sum     int64
	Buckets [NumBuckets]int64
}

// Snapshot merges the stripes into a read-only copy.
func (h *Histogram) Snapshot() HistSnapshot {
	var s HistSnapshot
	for i := range h.stripes {
		st := &h.stripes[i]
		s.Count += st.count.Load()
		s.Sum += st.sum.Load()
		for b := range st.buckets {
			s.Buckets[b] += st.buckets[b].Load()
		}
	}
	return s
}

// Mean returns the arithmetic mean of all observations.
func (s *HistSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}

// Quantile returns the approximate q-quantile (q in [0,1]) as the upper
// bound of the bucket where the cumulative count crosses q — accurate to
// one power of two, which is all a regression alarm needs. An empty
// histogram reports 0; a quantile landing in the unbounded overflow
// bucket reports the next power of two past the largest finite bound.
func (s *HistSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 {
		return 0
	}
	target := int64(q*float64(s.Count) + 0.5)
	if target < 1 {
		target = 1
	}
	var cum int64
	for i, n := range s.Buckets {
		cum += n
		if cum >= target {
			if i == NumBuckets-1 {
				break
			}
			return float64(BucketBound(i))
		}
	}
	return float64(int64(1) << uint(NumBuckets-1))
}

// --- registry ---------------------------------------------------------------------

type metricKind uint8

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
	kindCounterFunc
	kindGaugeFunc
)

// metric is one registered entry; exactly one payload field is set,
// selected by kind.
type metric struct {
	kind metricKind
	c    *Counter
	g    *Gauge
	h    *Histogram
	cf   func() int64
	gf   func() float64
}

// Registry names metrics and renders them. Registration takes the
// registry lock and may allocate; it happens at package/agent setup, not
// on hot paths — the returned handles record with atomics only.
type Registry struct {
	mu     sync.Mutex //cwx:lockrank registry 57
	byName map[string]*metric
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*metric)}
}

// std is the process-wide default registry every instrumented package
// records into, mirroring how the monitored nodes share one /proc.
var std = NewRegistry()

// Default returns the process-wide registry.
func Default() *Registry { return std }

// get returns the entry for name, creating it with mk if absent. A name
// re-registered as a different kind is a programming error and panics.
func (r *Registry) get(name string, kind metricKind, mk func() *metric) *metric {
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.byName[name]; ok {
		if m.kind != kind {
			panic(fmt.Sprintf("telemetry: %s already registered with a different kind", name))
		}
		return m
	}
	m := mk()
	r.byName[name] = m
	return m
}

// Counter returns the named counter, creating it if needed.
func (r *Registry) Counter(name string) *Counter {
	return r.get(name, kindCounter, func() *metric { return &metric{kind: kindCounter, c: &Counter{}} }).c
}

// Gauge returns the named gauge, creating it if needed.
func (r *Registry) Gauge(name string) *Gauge {
	return r.get(name, kindGauge, func() *metric { return &metric{kind: kindGauge, g: &Gauge{}} }).g
}

// Histogram returns the named histogram, creating it if needed.
func (r *Registry) Histogram(name string) *Histogram {
	return r.get(name, kindHistogram, func() *metric { return &metric{kind: kindHistogram, h: &Histogram{}} }).h
}

// CounterFunc registers (or replaces) a counter read through fn at
// exposition time — for values an instance already maintains elsewhere.
func (r *Registry) CounterFunc(name string, fn func() int64) {
	r.mu.Lock()
	r.byName[name] = &metric{kind: kindCounterFunc, cf: fn}
	r.mu.Unlock()
}

// GaugeFunc registers (or replaces) a gauge read through fn at
// exposition time.
func (r *Registry) GaugeFunc(name string, fn func() float64) {
	r.mu.Lock()
	r.byName[name] = &metric{kind: kindGaugeFunc, gf: fn}
	r.mu.Unlock()
}

type namedMetric struct {
	name string
	m    *metric
}

// list snapshots the registered metrics sorted by name, so expositions
// and walks are stable across calls.
func (r *Registry) list() []namedMetric {
	r.mu.Lock()
	out := make([]namedMetric, 0, len(r.byName))
	for name, m := range r.byName {
		out = append(out, namedMetric{name, m})
	}
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

// WritePrometheus renders every metric in the Prometheus text exposition
// format (version 0.0.4): counters and gauges as single samples,
// histograms as cumulative le-buckets plus _sum and _count. Empty
// buckets are elided (any subset of cumulative buckets is valid), the
// +Inf bucket always present.
func (r *Registry) WritePrometheus(w io.Writer) error {
	for _, nm := range r.list() {
		var err error
		switch nm.m.kind {
		case kindCounter:
			_, err = fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", nm.name, nm.name, nm.m.c.Load())
		case kindCounterFunc:
			_, err = fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", nm.name, nm.name, nm.m.cf())
		case kindGauge:
			_, err = fmt.Fprintf(w, "# TYPE %s gauge\n%s %g\n", nm.name, nm.name, nm.m.g.Load())
		case kindGaugeFunc:
			_, err = fmt.Fprintf(w, "# TYPE %s gauge\n%s %g\n", nm.name, nm.name, nm.m.gf())
		case kindHistogram:
			err = writeHistogram(w, nm.name, nm.m.h.Snapshot())
		}
		if err != nil {
			return err
		}
	}
	return nil
}

func writeHistogram(w io.Writer, name string, s HistSnapshot) error {
	if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", name); err != nil {
		return err
	}
	var cum int64
	for i := 0; i < NumBuckets-1; i++ {
		if s.Buckets[i] == 0 {
			continue
		}
		cum += s.Buckets[i]
		if _, err := fmt.Fprintf(w, "%s_bucket{le=\"%d\"} %d\n", name, BucketBound(i), cum); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n%s_sum %d\n%s_count %d\n",
		name, s.Count, name, s.Sum, name, s.Count)
	return err
}

// Walk calls fn with a flattened scalar view of every metric, sorted by
// name: counters and gauges report their value under their own name;
// histograms contribute <name>_count, <name>_mean, <name>_p50 and
// <name>_p99. This is the feed the meta-monitor turns back into monitor
// values, so the event engine can set thresholds on the stack's own
// health.
func (r *Registry) Walk(fn func(name string, v float64)) {
	for _, nm := range r.list() {
		switch nm.m.kind {
		case kindCounter:
			fn(nm.name, float64(nm.m.c.Load()))
		case kindCounterFunc:
			fn(nm.name, float64(nm.m.cf()))
		case kindGauge:
			fn(nm.name, nm.m.g.Load())
		case kindGaugeFunc:
			fn(nm.name, nm.m.gf())
		case kindHistogram:
			s := nm.m.h.Snapshot()
			fn(nm.name+"_count", float64(s.Count))
			fn(nm.name+"_mean", s.Mean())
			fn(nm.name+"_p50", s.Quantile(0.50))
			fn(nm.name+"_p99", s.Quantile(0.99))
		}
	}
}
