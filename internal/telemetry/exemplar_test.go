package telemetry

import (
	"testing"
	"time"
)

func TestHistogramExemplar(t *testing.T) {
	var h Histogram
	if v, tr := h.Exemplar(); v != 0 || tr != 0 {
		t.Fatalf("fresh histogram exemplar = %d/%x", v, tr)
	}
	h.ObserveTraceAt(0, 100, 0) // untraced: counted, no exemplar
	if _, tr := h.Exemplar(); tr != 0 {
		t.Fatal("untraced observation set an exemplar")
	}
	h.ObserveTraceAt(0, 50, 0xaaaa)
	h.ObserveTraceAt(1, 500, 0xbbbb)
	h.ObserveTraceAt(2, 200, 0xcccc) // smaller than current max: ignored
	v, tr := h.Exemplar()
	if v != 500 || tr != 0xbbbb {
		t.Fatalf("exemplar = %d/%x, want 500/bbbb", v, tr)
	}
	if s := h.Snapshot(); s.Count != 4 {
		t.Fatalf("observations not all counted: %d", s.Count)
	}
}

func TestSpanRecordTraced(t *testing.T) {
	tr := NewTracer()
	sp := tr.Slot("node001")
	sp.RecordTraced(StageIngest, 10*time.Microsecond, 4, 0x1234)
	sp.Record(StageIngest, 20*time.Microsecond, 5) // unsampled tick keeps the trace
	snap, ok := tr.Lookup("node001")
	if !ok {
		t.Fatal("span missing")
	}
	st := snap.Stages[StageIngest]
	if st.Dur != 20*time.Microsecond || st.Trace != 0x1234 {
		t.Fatalf("ingest sample = %+v, want fresh dur + retained trace", st)
	}
	if got := sp.StageTrace(StageIngest); got != 0x1234 {
		t.Fatalf("StageTrace = %x", got)
	}
	if got := tr.StageTrace("node001", StageIngest); got != 0x1234 {
		t.Fatalf("Tracer.StageTrace = %x", got)
	}
	if got := tr.StageTrace("ghost", StageIngest); got != 0 {
		t.Fatalf("ghost StageTrace = %x", got)
	}
	var nilSpan *Span
	nilSpan.RecordTraced(StageIngest, time.Second, 1, 1) // must not panic
	if nilSpan.StageTrace(StageIngest) != 0 {
		t.Fatal("nil span StageTrace")
	}
}
