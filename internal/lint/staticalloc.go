package lint

import (
	"bytes"
	"fmt"
	"go/ast"
	"go/token"
	"os/exec"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// runStaticalloc turns the compiler's escape analysis into a lint
// gate: any "escapes to heap" / "moved to heap" decision landing inside
// a //cwx:hotpath function is a finding. The runtime alloc-gate tests
// (testing.AllocsPerRun) stay as the behavioral backstop; this is the
// compile-time proof — it fires on the PR that introduces the escape,
// on the exact line, without needing the workload that would exercise
// it.
//
// The escape decisions arrive pre-parsed in Config.Escapes (see
// GoBuildEscapes): running the build is the caller's job, because Run
// analyzes source and must not shell out. A nil slice skips the
// analyzer; an empty non-nil slice means "the build reported no
// escapes" and is a valid, silent input.
func runStaticalloc(prog *program) {
	if prog.cfg.Escapes == nil {
		return
	}
	type span struct {
		start, end int
		name       string
	}
	hot := make(map[string][]span) // file -> hotpath function line ranges
	for _, p := range prog.passes {
		for _, f := range p.pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil || !hasDirective(fd.Doc, "//cwx:hotpath") {
					continue
				}
				start := prog.fset.Position(fd.Pos())
				end := prog.fset.Position(fd.End())
				name := fd.Name.Name
				if fd.Recv != nil && len(fd.Recv.List) > 0 {
					name = exprText(fd.Recv.List[0].Type) + "." + name
				}
				hot[start.Filename] = append(hot[start.Filename], span{start.Line, end.Line, name})
			}
		}
	}
	// One finding per source position: a generic function compiled for
	// several shapes reports the same escape once per shape with only
	// the go.shape name differing.
	seen := make(map[string]bool)
	for _, esc := range prog.cfg.Escapes {
		for _, sp := range hot[esc.File] {
			if esc.Line < sp.start || esc.Line > sp.end {
				continue
			}
			key := fmt.Sprintf("%s:%d:%d", esc.File, esc.Line, esc.Col)
			if seen[key] {
				continue
			}
			seen[key] = true
			prog.reportAt(token.Position{Filename: esc.File, Line: esc.Line, Column: esc.Col}, "staticalloc",
				"heap escape in //cwx:hotpath function %s: %s (compiler escape analysis; restructure to keep the value on the stack or //cwx:allow with a reason)",
				sp.name, esc.Message)
			break
		}
	}
}

// EscapeLine is one escape decision from `go build -gcflags=-m`.
type EscapeLine struct {
	File    string // absolute path
	Line    int
	Col     int
	Message string // "x escapes to heap", "moved to heap: buf", ...
}

// ParseEscapes extracts the heap-escape decisions from compiler -m
// output. Only "escapes to heap" and "moved to heap" lines are kept
// (inlining and bounds-check chatter is dropped); relative paths are
// resolved against dir, matching how `go build` prints them when run
// there.
func ParseEscapes(output, dir string) []EscapeLine {
	var out []EscapeLine
	for _, line := range strings.Split(output, "\n") {
		line = strings.TrimSpace(line)
		if !strings.Contains(line, "escapes to heap") && !strings.Contains(line, "moved to heap") {
			continue
		}
		// file.go:line:col: message
		rest := line
		var parts [3]string
		ok := true
		for i := 0; i < 3; i++ {
			j := strings.Index(rest, ":")
			if j < 0 {
				ok = false
				break
			}
			parts[i] = rest[:j]
			rest = rest[j+1:]
		}
		if !ok {
			continue
		}
		ln, err1 := strconv.Atoi(parts[1])
		col, err2 := strconv.Atoi(parts[2])
		if err1 != nil || err2 != nil {
			continue
		}
		file := parts[0]
		if !filepath.IsAbs(file) {
			file = filepath.Join(dir, file)
		}
		out = append(out, EscapeLine{File: file, Line: ln, Col: col, Message: strings.TrimSpace(rest)})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].File != out[j].File {
			return out[i].File < out[j].File
		}
		if out[i].Line != out[j].Line {
			return out[i].Line < out[j].Line
		}
		return out[i].Col < out[j].Col
	})
	return out
}

// GoBuildEscapes runs `go build -gcflags=-m` over patterns in dir and
// parses the escape decisions. The build artifacts are discarded; the
// compiler output replays from the build cache on unchanged code, so
// this is cheap on every lint run after the first.
func GoBuildEscapes(dir string, patterns ...string) ([]EscapeLine, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{"build", "-gcflags=-m"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var out bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &out
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("lint: go build -gcflags=-m: %v\n%s", err, out.String())
	}
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	return ParseEscapes(out.String(), abs), nil
}
