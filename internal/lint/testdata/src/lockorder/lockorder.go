// Package lockorder is analyzer testdata: lockrank coverage, a seeded
// A→B / B→A inversion detected through an interprocedural witness
// chain, same-class re-entry, and an unranked acquisition cycle.
package lockorder

import "sync"

type A struct {
	mu sync.Mutex //cwx:lockrank alpha 10
}

type B struct {
	mu sync.Mutex //cwx:lockrank beta 20
}

type C struct {
	mu sync.Mutex //cwx:lockrank gamma 30
}

// N is in scope but undeclared in the lattice: coverage finding.
type N struct {
	mu sync.Mutex // want `lockorder: mutex field lockorder.N.mu has no //cwx:lockrank directive`
}

// ascending acquires alpha then beta: the declared order, no finding.
func ascending(a *A, b *B) {
	a.mu.Lock()
	defer a.mu.Unlock()
	b.mu.Lock()
	b.mu.Unlock()
}

// descending holds beta and reaches an alpha acquisition two calls
// down: the B→A half of the inversion, reported with the full witness
// chain through middle and leaf.
func descending(a *A, b *B) {
	b.mu.Lock()
	defer b.mu.Unlock()
	middle(a) // want `lockorder: lock order inversion in descending: acquiring alpha .* level 10. while holding beta .* level 20.*witness: lockorder\.go:\d+ -> lockorder\.go:\d+ -> lockorder\.go:\d+`
}

func middle(a *A) {
	leaf(a)
}

func leaf(a *A) {
	a.mu.Lock()
	a.mu.Unlock()
}

// reentry takes gamma twice: self-deadlock for a plain Mutex.
func reentry(c *C) {
	c.mu.Lock()
	c.mu.Lock() // want `lockorder: lock gamma .* acquired while already held in reentry`
	c.mu.Unlock()
	c.mu.Unlock()
}

// branchRelease unlocks before the nested acquisition on one branch:
// the lexical region closes, so no beta is held at the alpha Lock.
func branchRelease(a *A, b *B) {
	b.mu.Lock()
	b.mu.Unlock()
	a.mu.Lock()
	a.mu.Unlock()
}

// X and Y are deliberately unranked (each gets a coverage finding) and
// acquired in both orders: the cycle detector names the loop.
type X struct {
	mu sync.Mutex // want `lockorder: mutex field lockorder.X.mu has no //cwx:lockrank directive`
}

type Y struct {
	mu sync.Mutex // want `lockorder: mutex field lockorder.Y.mu has no //cwx:lockrank directive`
}

func xThenY(x *X, y *Y) {
	x.mu.Lock()
	defer x.mu.Unlock()
	y.mu.Lock() // want `lockorder: lock acquisition cycle lockorder\.X\.mu -> lockorder\.Y\.mu -> lockorder\.X\.mu`
	y.mu.Unlock()
}

func yThenX(x *X, y *Y) {
	y.mu.Lock()
	defer y.mu.Unlock()
	x.mu.Lock()
	x.mu.Unlock()
}
