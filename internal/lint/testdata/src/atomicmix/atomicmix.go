// Package atomicmix is analyzer testdata: a field published with
// sync/atomic must never be touched bare.
package atomicmix

import "sync/atomic"

type stats struct {
	hits  uint64
	plain uint64
}

func (s *stats) hit() {
	atomic.AddUint64(&s.hits, 1)
}

func (s *stats) snapshot() uint64 {
	return atomic.LoadUint64(&s.hits)
}

func (s *stats) raced() uint64 {
	s.hits = 0    // want `atomicmix: struct field hits is accessed via sync/atomic elsewhere`
	return s.hits // want `atomicmix: struct field hits is accessed via sync/atomic elsewhere`
}

func (s *stats) fine() uint64 {
	s.plain++
	return s.plain
}
